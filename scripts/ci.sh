#!/usr/bin/env bash
# CI gate: tier-1 tests + benchmark smoke + a bounded fuzz budget.
#
#   scripts/ci.sh            # full gate (configure + build + 3 ctest passes)
#   PF_FUZZ_ITERS=200 scripts/ci.sh   # deeper fuzz pass
#   PF_CI_BUILD_DIR=out scripts/ci.sh # use a different build tree
#
# The fuzz suite (ctest -L tier2-fuzz) is deterministic: PF_TEST_SEED pins
# the generator stream (defaults baked into pf::testing), and every failure
# prints the seed plus a shrunk, copy-pasteable repro. PF_FUZZ_ITERS bounds
# the iteration budget so the gate stays fast; the deep run is
# PF_FUZZ_ITERS=1000 on a schedule, not on every commit.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${PF_CI_BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
FUZZ_ITERS="${PF_FUZZ_ITERS:-50}"

echo "== configure + build (${BUILD}, -j${JOBS})"
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== tier-1 tests"
ctest --test-dir "$BUILD" -L tier1 --output-on-failure -j "$JOBS"

echo "== service smoke (crash recovery gate)"
ctest --test-dir "$BUILD" -R service_smoke --output-on-failure

echo "== campaign smoke (campaign crash recovery gate)"
ctest --test-dir "$BUILD" -R campaign_smoke --output-on-failure

echo "== benchmark smoke"
ctest --test-dir "$BUILD" -L bench-smoke --output-on-failure

echo "== bounded fuzz (PF_FUZZ_ITERS=${FUZZ_ITERS})"
PF_FUZZ_ITERS="$FUZZ_ITERS" \
  ctest --test-dir "$BUILD" -L tier2-fuzz --output-on-failure

# Backend A/B golden suites under ASan+UBSan: the batched lockstep kernel
# and the word-parallel PlaneMemory are the places where raw SoA indexing
# and lane masks could hide out-of-bounds or UB that the bit-identity tests
# alone would not surface. Build a separate sanitized tree (PF_SANITIZE
# plumbs into -fsanitize=) and run exactly the suites that drive both
# backends over the same grids/populations. PF_SKIP_SANITIZE=1 opts out
# (e.g. toolchains without libasan).
if [[ "${PF_SKIP_SANITIZE:-0}" != "1" ]]; then
  SAN_BUILD="${BUILD}-asan"
  echo "== backend A/B under sanitizers (${SAN_BUILD}, address,undefined)"
  cmake -B "$SAN_BUILD" -S . -DPF_SANITIZE=address,undefined >/dev/null
  cmake --build "$SAN_BUILD" -j "$JOBS" \
    --target test_dram test_analysis test_memsim test_march test_fuzz
  ctest --test-dir "$SAN_BUILD" --output-on-failure -j "$JOBS" \
    -R 'BatchedColumn|CircuitReuse|EnginePlan|PlaneMemory|PopulationAB'

  # SearchAB: the march-search optimizer mutates candidate tests in a hot
  # loop (element/op erase + crossover splices) and walks per-unit
  # detection bit vectors — exactly the indexing ASan/UBSan should watch.
  # Runs the full Search* suite plus the seeded FuzzSearch containment
  # property at a bounded iteration budget.
  echo "== SearchAB under sanitizers (${SAN_BUILD})"
  PF_FUZZ_ITERS="$FUZZ_ITERS" \
    ctest --test-dir "$SAN_BUILD" --output-on-failure -j "$JOBS" \
    -R 'Search|FuzzSearch'
fi

echo "== ci gate passed"
