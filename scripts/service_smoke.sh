#!/usr/bin/env bash
# Sweep-service crash-recovery gate.
#
#   scripts/service_smoke.sh path/to/pf_served path/to/pf_submit [workdir]
#
# Drives the REAL binaries through the service's whole crash-safety story:
#
#   1. cold miss   — submit a tiny grid, expect "computed"
#   2. warm hit    — resubmit, expect "cache-hit" with the SAME sha
#   3. kill -9     — submit a throttled job, SIGKILL the server mid-sweep
#   4. restart     — resubmit: the crashed journal resumes, the result sha
#                    must equal a never-crashed reference run, and any
#                    partial cache entry is quarantined, never served
#   5. final hit   — resubmit once more, expect a verified cache hit
#
# Exit 0 on success; any deviation fails the gate. Registered as a tier-1
# ctest target (service_smoke) and run by scripts/ci.sh.
set -euo pipefail

SERVED="${1:?usage: service_smoke.sh pf_served pf_submit [workdir]}"
SUBMIT="${2:?usage: service_smoke.sh pf_served pf_submit [workdir]}"
WORK="${3:-$(mktemp -d)}"
rm -rf "$WORK"  # a reused workdir (ctest rerun) must not start warm
mkdir -p "$WORK"

SOCK="$WORK/pf.sock"
STORE="$WORK/store"
REF_STORE="$WORK/ref-store"
REF_SOCK="$WORK/ref.sock"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

start_server() {  # $1 = store dir, $2 = socket
  "$SERVED" --socket "$2" --store "$1" --workers 2 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if "$SUBMIT" --socket "$2" --ping >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  fail "server did not come up on $2"
}

stop_server() {
  "$SUBMIT" --socket "$1" --shutdown >/dev/null 2>&1 || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

# Tiny job; --throttle-ms widens the kill window for step 3.
submit() {  # $1 = socket, extra flags after
  local sock="$1"; shift
  "$SUBMIT" --socket "$sock" --defect open --site 4 --sos 1r1 \
            --r-points 3 --u-points 3 --quiet "$@"
}

sha_of() { awk '{print $4}' <<<"$1"; }

echo "== reference run (never crashed)"
start_server "$REF_STORE" "$REF_SOCK"
REF_OUT="$(submit "$REF_SOCK")" || fail "reference submit failed"
REF_SHA="$(sha_of "$REF_OUT")"
[ -n "$REF_SHA" ] || fail "no reference sha in: $REF_OUT"
stop_server "$REF_SOCK"

echo "== 1. cold miss"
start_server "$STORE" "$SOCK"
OUT1="$(submit "$SOCK")" || fail "cold submit failed"
grep -q "computed" <<<"$OUT1" || fail "expected computed, got: $OUT1"
[ "$(sha_of "$OUT1")" = "$REF_SHA" ] || fail "cold sha != reference sha"

echo "== 2. warm hit"
OUT2="$(submit "$SOCK")" || fail "warm submit failed"
grep -q "cache-hit" <<<"$OUT2" || fail "expected cache-hit, got: $OUT2"
[ "$(sha_of "$OUT2")" = "$REF_SHA" ] || fail "hit sha != reference sha"

echo "== 3. SIGKILL mid-job"
# A different grid (fresh key) throttled to ~100 ms per point: the journal
# accumulates rows while we aim kill -9 at the middle of the sweep.
submit "$SOCK" --u-points 4 --throttle-ms 100 >/dev/null 2>&1 &
CLIENT_PID=$!
JOURNAL=""
for _ in $(seq 1 100); do
  JOURNAL="$(ls "$STORE"/jobs/*.journal.csv 2>/dev/null | head -1 || true)"
  if [ -n "$JOURNAL" ] && [ "$(grep -c '^[0-9]' "$JOURNAL" 2>/dev/null || true)" -ge 2 ]; then
    break
  fi
  sleep 0.05
done
[ -n "$JOURNAL" ] || fail "no journal appeared for the throttled job"
kill -9 "$SERVER_PID" || fail "could not SIGKILL the server"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$CLIENT_PID" 2>/dev/null || true
[ -f "$JOURNAL" ] || fail "journal vanished with the crash"

echo "== 4. restart + resubmit resumes and matches a clean run"
start_server "$STORE" "$SOCK"
# Reference for the 3x4 grid from a fresh, never-crashed server/store.
"$SERVED" --socket "$REF_SOCK" --store "$WORK/ref2-store" --workers 2 &
REF2_PID=$!
for _ in $(seq 1 100); do
  "$SUBMIT" --socket "$REF_SOCK" --ping >/dev/null 2>&1 && break
  sleep 0.05
done
REF2_OUT="$(submit "$REF_SOCK" --u-points 4)" || fail "3x4 reference failed"
REF2_SHA="$(sha_of "$REF2_OUT")"
"$SUBMIT" --socket "$REF_SOCK" --shutdown >/dev/null 2>&1 || true
wait "$REF2_PID" 2>/dev/null || true

OUT4="$(submit "$SOCK" --u-points 4)" || fail "post-crash resubmit failed"
grep -q "computed" <<<"$OUT4" || fail "expected recompute, got: $OUT4"
[ "$(sha_of "$OUT4")" = "$REF2_SHA" ] || \
  fail "post-crash sha $(sha_of "$OUT4") != clean-run sha $REF2_SHA"
# The committed manifest must prove the crashed journal was RESUMED, not
# thrown away: at least one point restored from disk.
KEY4="$(awk '{print $2}' <<<"$OUT4")"
MANIFEST="$STORE/cache/$KEY4/manifest.json"
[ -f "$MANIFEST" ] || fail "no manifest at $MANIFEST"
RESUMED="$(grep -o '"resumed":[0-9]*' "$MANIFEST" | cut -d: -f2)"
[ "${RESUMED:-0}" -ge 1 ] || \
  fail "expected resumed >= 1 in manifest, got '${RESUMED:-}'"
ls "$STORE"/cache/*.corrupt* >/dev/null 2>&1 && \
  echo "   (partial entry quarantined, as designed)"

echo "== 5. final verified hit"
OUT5="$(submit "$SOCK" --u-points 4)" || fail "final resubmit failed"
grep -q "cache-hit" <<<"$OUT5" || fail "expected cache-hit, got: $OUT5"
[ "$(sha_of "$OUT5")" = "$REF2_SHA" ] || fail "final hit sha mismatch"
stop_server "$SOCK"

echo "service_smoke: PASS"
