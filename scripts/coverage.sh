#!/usr/bin/env bash
# Line coverage of src/ under the tier-1 + fuzz test suites, using raw gcov
# (no gcovr/lcov dependency).
#
#   scripts/coverage.sh                  # configure+build+test+report
#   scripts/coverage.sh --aggregate-only # report from an existing run
#   PF_COVERAGE_BUILD_DIR=build-cov scripts/coverage.sh
#
# Uses a dedicated instrumented build tree (default build-cov) so coverage
# objects never mix with the regular build. The report is per-source-file
# executed/executable line counts plus a repo total; EXPERIMENTS.md records
# the baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
BUILD="${PF_COVERAGE_BUILD_DIR:-build-cov}"
case "$BUILD" in /*) ;; *) BUILD="$ROOT/$BUILD" ;; esac
JOBS="$(nproc 2>/dev/null || echo 2)"
GCOV="${GCOV:-gcov}"

if [[ "${1:-}" != "--aggregate-only" ]]; then
  echo "== instrumented configure + build (${BUILD})"
  cmake -B "$BUILD" -S . -DPF_COVERAGE=ON -DPF_BUILD_BENCH=OFF >/dev/null
  cmake --build "$BUILD" -j "$JOBS"
  echo "== running tier-1 + fuzz suites under instrumentation"
  find "$BUILD" -name '*.gcda' -delete
  ctest --test-dir "$BUILD" -L 'tier1|tier2-fuzz' --output-on-failure \
    -j "$JOBS"
fi

echo "== aggregating with ${GCOV}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
find "$BUILD" -name '*.gcda' -print0 |
  (cd "$SCRATCH" && xargs -0 -n 16 "$GCOV" -r -s "$ROOT" >/dev/null 2>&1 \
     || true)

# Each .gcov line is "  count:  lineno:source"; count is a number (hit),
# '#####'/'=====' (executable, missed) or '-' (not executable). A source
# file exercised by several test binaries yields several .gcov files; a
# line counts as hit if ANY of them hit it.
awk -F':' '
  {
    gsub(/^[ \t]+/, "", $1); gsub(/^[ \t]+/, "", $2)
    if ($2 == "0") { if ($3 == "Source") src = $4; next }
    if ($1 == "-") next
    key = src SUBSEP $2
    executable[key] = src
    if ($1 != "#####" && $1 != "=====") hit[key] = 1
  }
  END {
    for (key in executable) {
      src = executable[key]
      if (src !~ /(^|\/)src\//) continue  # report the library, not tests
      total[src]++
      if (key in hit) covered[src]++
    }
    for (src in total)
      print src, covered[src] + 0, total[src]
  }' "$SCRATCH"/*.gcov | sort |
awk '
  BEGIN { printf "%-58s %9s %9s %7s\n", "file", "covered", "lines", "pct" }
  {
    printf "%-58s %9d %9d %6.1f%%\n", $1, $2, $3, 100.0 * $2 / $3
    gc += $2; gt += $3
  }
  END {
    if (gt > 0)
      printf "%-58s %9d %9d %6.1f%%\n", "TOTAL (src/)", gc, gt,
             100.0 * gc / gt
  }'
