#!/usr/bin/env bash
# Campaign crash-recovery gate.
#
#   scripts/campaign_smoke.sh path/to/pf_campaign [workdir]
#
# Drives the REAL pf_campaign binary through the campaign layer's whole
# crash-safety story:
#
#   1. control  — run a throttled multi-job campaign to completion on a
#                 pristine store; keep its report as the reference
#   2. kill -9  — rerun the same spec in a fresh workdir, SIGKILL the
#                 process once the campaign journal shows the first DONE
#                 job (demonstrably mid-campaign); no report may exist
#   3. resume   — rerun the same command: finished jobs restore from the
#                 campaign journal, the interrupted sweep resumes from its
#                 own journal, exit 0
#   4. compare  — the resumed report must be byte-identical to the control
#
# Exit 0 on success; any deviation fails the gate. Registered as a tier-1
# ctest target (campaign_smoke) and run by scripts/ci.sh.
set -euo pipefail

CAMPAIGN="${1:?usage: campaign_smoke.sh pf_campaign [workdir]}"
WORK="${2:-$(mktemp -d)}"
rm -rf "$WORK"  # a reused workdir (ctest rerun) must not start warm
mkdir -p "$WORK"

CHILD_PID=""
cleanup() {
  [ -n "$CHILD_PID" ] && kill -9 "$CHILD_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() { echo "campaign_smoke: FAIL: $*" >&2; exit 1; }

# Four distinct throttled sweep jobs (20 ms x 16 points each widens the
# kill window) plus a duplicate of the first for a cross-job dedup hit.
SPEC="$WORK/spec.json"
cat >"$SPEC" <<'EOF'
{"name":"smoke","jobs":[
  {"id":"j1","job":{"open_site":4,"sos":"1r1","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j2","job":{"open_site":4,"sos":"0w0","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j3","job":{"open_site":4,"sos":"0r0","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j4","job":{"open_site":4,"sos":"1w1","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j1-again","deps":["j1"],"job":{"open_site":4,"sos":"1r1","r_points":4,"u_points":4,"throttle_ms":20}}
]}
EOF

run_campaign() {  # $1 = dir; extra flags after
  local dir="$1"; shift
  "$CAMPAIGN" --spec "$SPEC" --store "$dir/store" \
              --journal "$dir/journal.csv" --report "$dir/report.txt" \
              --quiet "$@"
}

echo "== 1. control run (never crashed)"
mkdir -p "$WORK/control"
run_campaign "$WORK/control" || fail "control campaign failed"
CONTROL="$WORK/control/report.txt"
[ -s "$CONTROL" ] || fail "control run wrote no report"
grep -q '^job j1-again DONE' "$CONTROL" || fail "dedup job missing from report"

echo "== 2. SIGKILL mid-campaign"
DIR="$WORK/crash"
mkdir -p "$DIR"
# A simple command with &, NOT the run_campaign wrapper: $! must be the
# pf_campaign binary itself — the SIGKILL below has to hit the campaign
# mid-flight, not a wrapper subshell that leaves it running.
"$CAMPAIGN" --spec "$SPEC" --store "$DIR/store" \
            --journal "$DIR/journal.csv" --report "$DIR/report.txt" \
            --quiet >/dev/null 2>&1 &
CHILD_PID=$!
# Wait until the campaign journal has recorded the first DONE job: the
# child is provably mid-campaign, with later jobs still pending.
DEADLINE=$((SECONDS + 60))
while [ "$SECONDS" -lt "$DEADLINE" ]; do
  if [ "$(grep -c ',DONE,' "$DIR/journal.csv" 2>/dev/null || true)" -ge 1 ]; then
    break
  fi
  sleep 0.02
done
[ "$(grep -c ',DONE,' "$DIR/journal.csv" 2>/dev/null || true)" -ge 1 ] || \
  fail "campaign never journaled a DONE job"
kill -9 "$CHILD_PID" || fail "could not SIGKILL the campaign"
wait "$CHILD_PID" 2>/dev/null || true
CHILD_PID=""
[ -f "$DIR/journal.csv" ] || fail "campaign journal vanished with the crash"
[ ! -f "$DIR/report.txt" ] || fail "a killed campaign must not write a report"

echo "== 3. resume"
run_campaign "$DIR" || fail "resumed campaign failed (exit $?)"
[ -s "$DIR/report.txt" ] || fail "resumed run wrote no report"

echo "== 4. byte-identical report"
cmp -s "$DIR/report.txt" "$CONTROL" || {
  diff "$CONTROL" "$DIR/report.txt" >&2 || true
  fail "resumed report differs from the control run"
}

echo "campaign_smoke: PASS"
