// The EnginePlan API contract: resolved_plan pass-through and validation
// (EnginePlan is the only spelling — the PR 8 deprecated circuit/warm_start
// shims are gone), the batched-requires-reuse invariant, and the
// SosSession::set_sim_options override travelling through clone() (the
// per-worker fan-out path).
#include <gtest/gtest.h>

#include "pf/analysis/execution.hpp"
#include "pf/analysis/region.hpp"
#include "pf/analysis/sos_runner.hpp"
#include "pf/util/error.hpp"

namespace pf::analysis {
namespace {

using spice::SolverBackend;

TEST(EnginePlan, ResolvedPlanPassesThroughExplicitPlanFields) {
  ExecutionPolicy policy;
  EnginePlan plan = resolved_plan(policy);
  EXPECT_EQ(plan.backend, SolverBackend::kScalar);
  EXPECT_EQ(plan.circuit_mode, CircuitMode::kReuse);
  EXPECT_FALSE(plan.warm_start);
  EXPECT_FALSE(plan.adaptive);

  policy.plan.backend = SolverBackend::kBatched;
  policy.plan.warm_start = true;
  policy.plan.adaptive = true;
  plan = resolved_plan(policy);
  EXPECT_EQ(plan.backend, SolverBackend::kBatched);
  EXPECT_TRUE(plan.warm_start);
  EXPECT_TRUE(plan.adaptive);
}

TEST(EnginePlan, ExplicitPlanIsPreservedVerbatim) {
  // With the deprecated loose fields gone, resolved_plan is pure
  // pass-through + validation: an explicit plan must come back verbatim.
  ExecutionPolicy planned;
  planned.plan.circuit_mode = CircuitMode::kRebuild;
  planned.plan.warm_start = true;
  EXPECT_EQ(resolved_plan(planned).circuit_mode, CircuitMode::kRebuild);
  EXPECT_TRUE(resolved_plan(planned).warm_start);
}

TEST(EnginePlan, BatchedBackendRequiresCircuitReuse) {
  // Lanes of a batched row are seeded from one shared compiled session;
  // there is no per-point rebuild to speak of, so the combination is an
  // error at plan-resolution time, before any circuit is built.
  ExecutionPolicy policy;
  policy.plan.backend = SolverBackend::kBatched;
  policy.plan.circuit_mode = CircuitMode::kRebuild;
  EXPECT_THROW(resolved_plan(policy), pf::Error);

  SweepSpec spec;
  spec.params = dram::DramParams{};
  spec.defect = dram::Defect::open(dram::OpenSite::kBitLineOuter, 1e6);
  spec.sos = faults::Sos::parse("1r1");
  spec.r_axis = {1e6};
  spec.u_axis = {0.0, 3.3};
  EXPECT_THROW(sweep_region(spec, policy), pf::Error);
}

TEST(EnginePlan, SetSimOptionsIsCarriedIntoClones) {
  // The session-level options override must survive clone(): the parallel
  // sweep fans a configured prototype out to per-worker replicas, and a
  // replica solving with different numerics would silently break the
  // bit-identity contract.
  const dram::DramParams params;
  const auto defect = dram::Defect::open(dram::OpenSite::kBitLineOuter, 1e6);
  SosSession session(params, defect);

  spice::SimOptions tightened = params.sim;
  tightened.dt_initial *= 0.25;
  tightened.max_nr_iters += 40;
  session.set_sim_options(tightened);
  EXPECT_EQ(session.column().params().sim.dt_initial, tightened.dt_initial);
  EXPECT_EQ(session.column().params().sim.max_nr_iters, tightened.max_nr_iters);

  SosSession replica = session.clone();
  EXPECT_EQ(replica.column().params().sim.dt_initial, tightened.dt_initial);
  EXPECT_EQ(replica.column().params().sim.max_nr_iters, tightened.max_nr_iters);

  // And the override is semantically live: the replica's run under its
  // carried options equals a fresh run_sos under the same options.
  const auto lines = dram::floating_lines_for(defect, params);
  ASSERT_FALSE(lines.empty());
  const faults::Sos sos = faults::Sos::parse("1r1");
  const SosOutcome reused = replica.run(1e6, tightened, &lines[0], 1.1, sos);
  dram::DramParams fresh_params = params;
  fresh_params.sim = tightened;
  const SosOutcome fresh = run_sos(fresh_params, defect, &lines[0], 1.1, sos);
  EXPECT_EQ(reused.final_state, fresh.final_state);
  EXPECT_EQ(reused.read_result, fresh.read_result);
  EXPECT_EQ(reused.faulty, fresh.faulty);
  EXPECT_EQ(reused.ffm, fresh.ffm);
}

}  // namespace
}  // namespace pf::analysis
