// Region sweeps and the partial-fault identification rule, on coarse grids
// (the full-resolution sweeps live in the bench harnesses).
#include <gtest/gtest.h>

#include <cmath>

#include "pf/analysis/partial.hpp"
#include "pf/analysis/region.hpp"
#include "pf/faults/ffm.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

SweepSpec bitline_open_spec(const char* sos_text) {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse(sos_text);
  spec.r_axis = pf::logspace(30e3, 10e6, 5);
  spec.u_axis = pf::linspace(0.0, 3.3, 6);
  return spec;
}

TEST(RegionSweep, Figure3aShape) {
  // Paper Figure 3(a): SOS 1r1 on a bit-line open shows RDF1 only for LOW
  // floating voltages; above a threshold no fault is observed.
  const RegionMap map = sweep_region(bitline_open_spec("1r1"));
  EXPECT_GT(map.count(Ffm::kRDF1), 0u);
  // At the top row (largest R_def), the fault band is a proper low-U band.
  const size_t top = map.grid().height() - 1;
  const auto band = map.u_band(Ffm::kRDF1, top);
  ASSERT_FALSE(band.empty());
  EXPECT_LT(band.hull().hi, 2.0) << "fault must vanish at high U";
  EXPECT_LE(band.hull().lo, 0.5) << "fault present at low U";
  EXPECT_FALSE(map.has_fully_covered_row(Ffm::kRDF1));
}

TEST(RegionSweep, Figure3aIdentifiesPartialRdf1) {
  const RegionMap map = sweep_region(bitline_open_spec("1r1"));
  const auto findings = identify_partial_faults(map);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ffm, Ffm::kRDF1);
  EXPECT_TRUE(findings[0].partial);
  EXPECT_LT(findings[0].best_coverage, 0.8);
  EXPECT_GT(findings[0].min_r_def, 0.0);
}

TEST(RegionSweep, Figure3bCompletedSosIndependentOfU) {
  // Paper Figure 3(b): with the completing w0 to a same-BL cell, the fault
  // covers the entire floating-voltage axis at large R_def.
  const RegionMap map = sweep_region(bitline_open_spec("1v [w0BL] r1v"));
  EXPECT_TRUE(map.has_fully_covered_row(Ffm::kRDF1));
  EXPECT_TRUE(is_completed(map, Ffm::kRDF1));
}

TEST(RegionSweep, CompletedThresholdMatchesPartialMinimum) {
  // Section 3: the completed fault's R_def threshold equals the minimum
  // R_def of the partial region (within one grid step).
  const RegionMap partial = sweep_region(bitline_open_spec("1r1"));
  const RegionMap completed =
      sweep_region(bitline_open_spec("1v [w0BL] r1v"));
  const double r_partial = partial.min_r(Ffm::kRDF1);
  const double r_completed = completed.min_r(Ffm::kRDF1);
  EXPECT_NEAR(std::log10(r_completed), std::log10(r_partial), 0.8);
}

TEST(RegionSweep, FaultFreeRegionIsEmpty) {
  // A tiny open behaves like a benign socket: no fault anywhere.
  SweepSpec spec = bitline_open_spec("1r1");
  spec.r_axis = {20.0, 100.0};
  const RegionMap map = sweep_region(spec);
  EXPECT_TRUE(map.observed_ffms().empty());
  EXPECT_TRUE(std::isnan(map.min_r(Ffm::kRDF1)));
}

TEST(RegionSweep, MinRIsNanForEveryAbsentFfm) {
  // min_r must signal "never observed" with NaN — not 0, not an axis
  // endpoint — for every FFM in the taxonomy, and for the solve-failure
  // marker on a sweep with no failures.
  SweepSpec spec = bitline_open_spec("1r1");
  spec.r_axis = {20.0, 100.0};
  const RegionMap map = sweep_region(spec);
  for (Ffm ffm : faults::all_ffms()) {
    EXPECT_TRUE(std::isnan(map.min_r(ffm))) << faults::ffm_name(ffm);
    EXPECT_TRUE(map.u_band(ffm, 0).empty()) << faults::ffm_name(ffm);
  }
  EXPECT_TRUE(std::isnan(map.min_r(Ffm::kSolveFailed)));
}

TEST(RegionSweep, MinRIsFiniteOnlyForObservedFfms) {
  const RegionMap map = sweep_region(bitline_open_spec("1r1"));
  for (Ffm ffm : faults::all_ffms()) {
    const double r = map.min_r(ffm);
    if (map.count(ffm) > 0) {
      EXPECT_FALSE(std::isnan(r)) << faults::ffm_name(ffm);
      EXPECT_GE(r, map.spec().r_axis.front());
      EXPECT_LE(r, map.spec().r_axis.back());
    } else {
      EXPECT_TRUE(std::isnan(r)) << faults::ffm_name(ffm);
    }
  }
}

TEST(RegionSweep, RenderShowsGlyphAndLegend) {
  const RegionMap map = sweep_region(bitline_open_spec("1r1"));
  const std::string art = map.render("Fig 3(a)");
  EXPECT_NE(art.find("Fig 3(a)"), std::string::npos);
  EXPECT_NE(art.find('R'), std::string::npos);
  EXPECT_NE(art.find("R = RDF1"), std::string::npos);
  EXPECT_NE(art.find("U [V]"), std::string::npos);
}

TEST(RegionSweep, DefaultAxesSane) {
  const auto r = default_r_axis(7);
  EXPECT_DOUBLE_EQ(r.front(), 10e3);
  EXPECT_DOUBLE_EQ(r.back(), 10e6);
  const auto u = default_u_axis(DramParams{}, 5);
  EXPECT_DOUBLE_EQ(u.front(), 0.0);
  EXPECT_DOUBLE_EQ(u.back(), 3.3);
}

TEST(RegionSweep, BadFloatingLineIndexRejected) {
  SweepSpec spec = bitline_open_spec("1r1");
  spec.floating_line_index = 5;
  EXPECT_THROW(sweep_region(spec), pf::Error);
}

}  // namespace
}  // namespace pf::analysis
