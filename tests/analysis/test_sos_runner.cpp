// SOS execution on the electrical column: fault-free expectations, the
// paper's Figure 1 partial RDF1, completing-operation behaviour.
#include <gtest/gtest.h>

#include "pf/analysis/sos_runner.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

const DramParams& params() {
  static const DramParams p;
  return p;
}

TEST(SosRunner, FaultFreeMemoryPassesAllBaseSoses) {
  for (const char* text : {"0", "1", "0w0", "0w1", "1w0", "1w1", "0r0", "1r1"}) {
    const SosOutcome out =
        run_sos(params(), Defect::none(), nullptr, 0.0, Sos::parse(text));
    EXPECT_FALSE(out.faulty) << text;
    EXPECT_EQ(out.ffm, Ffm::kUnknown) << text;
  }
}

TEST(SosRunner, ReadResultReported) {
  const SosOutcome out =
      run_sos(params(), Defect::none(), nullptr, 0.0, Sos::parse("1r1"));
  EXPECT_EQ(out.read_result, 1);
  EXPECT_EQ(out.final_state, 1);
}

TEST(SosRunner, WriteSosHasNoReadResult) {
  const SosOutcome out =
      run_sos(params(), Defect::none(), nullptr, 0.0, Sos::parse("0w1"));
  EXPECT_EQ(out.read_result, -1);
  EXPECT_EQ(out.final_state, 1);
}

TEST(SosRunner, BitLineOpenLowFloatIsRdf1) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  const auto lines = dram::floating_lines_for(defect, params());
  const SosOutcome out =
      run_sos(params(), defect, &lines[0], 0.0, Sos::parse("1r1"));
  ASSERT_TRUE(out.faulty);
  EXPECT_EQ(out.ffm, Ffm::kRDF1);
  EXPECT_EQ(out.observed.to_string(), "<1r1/0/0>");
}

TEST(SosRunner, BitLineOpenHighFloatIsFaultFree) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  const auto lines = dram::floating_lines_for(defect, params());
  const SosOutcome out =
      run_sos(params(), defect, &lines[0], 3.0, Sos::parse("1r1"));
  EXPECT_FALSE(out.faulty);
}

TEST(SosRunner, CompletedSosFaultsAtAnyFloat) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  const auto lines = dram::floating_lines_for(defect, params());
  const Sos completed = Sos::parse("1v [w0BL] r1v");
  for (double u : {0.0, 1.1, 2.2, 3.3}) {
    const SosOutcome out = run_sos(params(), defect, &lines[0], u, completed);
    EXPECT_TRUE(out.faulty) << "U = " << u;
    EXPECT_EQ(out.ffm, Ffm::kRDF1) << "U = " << u;
  }
}

TEST(SosRunner, StateFaultSosUsesIdleCycle) {
  // Word-line open with the gate floating high: the op-free SOS "0" must
  // observe the SF0 (cell charged by the precharge cycle).
  const auto defect = Defect::open(OpenSite::kWordLine, 100e6);
  const auto lines = dram::floating_lines_for(defect, params());
  const SosOutcome out =
      run_sos(params(), defect, &lines[0], params().vpp, Sos::parse("0"));
  ASSERT_TRUE(out.faulty);
  EXPECT_EQ(out.ffm, Ffm::kSF0);
}

TEST(SosRunner, StateFaultGateLowIsFaultFree) {
  const auto defect = Defect::open(OpenSite::kWordLine, 100e6);
  const auto lines = dram::floating_lines_for(defect, params());
  const SosOutcome out =
      run_sos(params(), defect, &lines[0], 0.0, Sos::parse("0"));
  EXPECT_FALSE(out.faulty);
}

TEST(SosRunner, AggressorInitialStateIsApplied) {
  const SosOutcome out = run_sos(params(), Defect::none(), nullptr, 0.0,
                                 Sos::parse("0a 1v r1v"));
  EXPECT_FALSE(out.faulty);
  EXPECT_EQ(out.read_result, 1);
}

}  // namespace
}  // namespace pf::analysis
