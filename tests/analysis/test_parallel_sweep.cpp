// The parallel sweep engine behind ExecutionPolicy: any thread count must
// produce BIT-IDENTICAL results to the serial engine (grids, stats totals,
// index-ordered failure logs, Table 1 rows), the checkpoint journal must
// stay correct under concurrent writers, and injected solver faults must
// stay scoped to the worker/point they target.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "pf/analysis/completion.hpp"
#include "pf/analysis/execution.hpp"
#include "pf/analysis/region.hpp"
#include "pf/analysis/table1.hpp"
#include "pf/dram/column.hpp"
#include "pf/spice/fault_injection.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using spice::testing::InjectedFault;
using spice::testing::InjectionSpec;
using spice::testing::ScopedFaultPlan;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

InjectionSpec non_convergence(int fail_attempts) {
  InjectionSpec s;
  s.kind = InjectedFault::kNonConvergence;
  s.fail_attempts = fail_attempts;
  return s;
}

std::string temp_journal(const char* name) {
  return ::testing::TempDir() + name;
}

void expect_same_stats(const SweepStats& a, const SweepStats& b) {
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.resumed, b.resumed);
  EXPECT_EQ(a.failure_log, b.failure_log);
}

TEST(ExecutionPolicy_, WorkerCountResolution) {
  EXPECT_EQ(resolve_worker_count(1), 1);
  EXPECT_EQ(resolve_worker_count(5), 5);
  EXPECT_GE(resolve_worker_count(0), 1);  // hardware concurrency, >= 1
  EXPECT_EQ(resolve_worker_count(-3), 1);
}

TEST(ParallelSweep, BitIdenticalAcrossThreadCounts) {
  const SweepSpec spec = small_spec();
  const RegionMap serial = sweep_region(spec);
  for (const int threads : {1, 2, 8}) {
    ExecutionPolicy policy;
    policy.threads = threads;
    const RegionMap parallel = sweep_region(spec, policy);
    EXPECT_EQ(parallel.to_csv(), serial.to_csv()) << threads << " threads";
    EXPECT_EQ(parallel.render("t"), serial.render("t"));
    expect_same_stats(parallel.solve_stats(), serial.solve_stats());
  }
}

TEST(ParallelSweep, StatsAndFailureLogDeterministicUnderInjection) {
  // Mixed plan: one recoverable hiccup, two unrecoverable points. An
  // 8-thread run must agree with the serial run on every stats total and
  // on the ORDER of the failure log (index-ordered merge).
  const SweepSpec spec = small_spec();
  const auto plan = [] {
    return std::map<std::string, InjectionSpec>{
        {grid_point_key(1, 0), non_convergence(1)},
        {grid_point_key(0, 1), non_convergence(100)},
        {grid_point_key(3, 2), non_convergence(100)}};
  };
  SweepStats serial_stats;
  std::string serial_csv;
  {
    ScopedFaultPlan armed(plan());
    ExecutionPolicy policy;
    policy.retry.max_attempts = 2;
    const RegionMap map = sweep_region(spec, policy);
    serial_stats = map.solve_stats();
    serial_csv = map.to_csv();
  }
  EXPECT_EQ(serial_stats.failed, 2u);
  EXPECT_EQ(serial_stats.retries, 3u);  // 1 recovery + 2 x 1 failed retry
  {
    ScopedFaultPlan armed(plan());
    ExecutionPolicy policy;
    policy.retry.max_attempts = 2;
    policy.threads = 8;
    const RegionMap map = sweep_region(spec, policy);
    EXPECT_EQ(map.to_csv(), serial_csv);
    expect_same_stats(map.solve_stats(), serial_stats);
    ASSERT_EQ(map.solve_stats().failure_log.size(), 2u);
    // Index order: (iy=1, ix=0) before (iy=2, ix=3).
    EXPECT_NE(map.solve_stats().failure_log[0].find("R_def="),
              std::string::npos);
  }
}

TEST(ParallelSweep, InjectedFaultOnOneWorkerDegradesOnlyThatPoint) {
  // One unrecoverable point in an 8-thread run: the thread-local injection
  // context must scope the fault to the worker running that experiment —
  // every other point must match the clean serial map.
  const SweepSpec spec = small_spec();
  const RegionMap clean = sweep_region(spec);
  ScopedFaultPlan armed({{grid_point_key(2, 1), non_convergence(100)}});
  ExecutionPolicy policy;
  policy.threads = 8;
  policy.retry.max_attempts = 2;
  const RegionMap map = sweep_region(spec, policy);
  EXPECT_EQ(map.failed_points(), 1u);
  EXPECT_EQ(map.grid().at(2, 1), Ffm::kSolveFailed);
  for (size_t iy = 0; iy < map.grid().height(); ++iy)
    for (size_t ix = 0; ix < map.grid().width(); ++ix) {
      if (ix == 2 && iy == 1) continue;
      EXPECT_EQ(map.grid().at(ix, iy), clean.grid().at(ix, iy))
          << "point (" << ix << ", " << iy << ") contaminated";
    }
}

TEST(ParallelSweep, JournalWrittenByParallelRunResumesSerially) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("parallel_to_serial.csv");
  std::remove(path.c_str());
  const RegionMap clean = sweep_region(spec);

  // 8-thread run with two unrecoverable points, journal armed: concurrent
  // workers append 12 rows (10 solved + 2 FAIL) through the mutex.
  {
    ScopedFaultPlan armed({{grid_point_key(1, 0), non_convergence(100)},
                           {grid_point_key(2, 2), non_convergence(100)}});
    ExecutionPolicy policy;
    policy.threads = 8;
    policy.retry.max_attempts = 2;
    policy.journal_path = path;
    const RegionMap map = sweep_region(spec, policy);
    EXPECT_EQ(map.failed_points(), 2u);
  }

  // Serial resume, faults gone: the 10 solved points restore from the
  // journal, only the 2 FAIL rows re-run, and the map equals a clean sweep.
  {
    ExecutionPolicy policy;
    policy.journal_path = path;
    const RegionMap map = sweep_region(spec, policy);
    EXPECT_EQ(map.solve_stats().resumed, 10u);
    EXPECT_EQ(map.solve_stats().attempted, 2u);
    EXPECT_EQ(map.failed_points(), 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(ParallelSweep, JournalWrittenSeriallyResumesUnderEightThreads) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("serial_to_parallel.csv");
  std::remove(path.c_str());
  const RegionMap clean = sweep_region(spec);

  {
    ScopedFaultPlan armed({{grid_point_key(0, 0), non_convergence(100)},
                           {grid_point_key(3, 1), non_convergence(100)}});
    ExecutionPolicy policy;
    policy.retry.max_attempts = 2;
    policy.journal_path = path;
    sweep_region(spec, policy);
  }
  {
    ExecutionPolicy policy;
    policy.threads = 8;
    policy.journal_path = path;
    const RegionMap map = sweep_region(spec, policy);
    EXPECT_EQ(map.solve_stats().resumed, 10u);
    EXPECT_EQ(map.solve_stats().attempted, 2u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(ParallelSweep, ProgressCallbackReportsEveryPoint) {
  const SweepSpec spec = small_spec();
  for (const int threads : {1, 4}) {
    std::vector<size_t> seen_done;
    size_t seen_total = 0;
    ExecutionPolicy policy;
    policy.threads = threads;
    // Serialized by the runner: no synchronization needed in the callback.
    policy.progress = [&](size_t done, size_t total) {
      seen_done.push_back(done);
      seen_total = total;
    };
    sweep_region(spec, policy);
    EXPECT_EQ(seen_total, 12u);
    // One callback per point, counting each completion exactly once
    // (callbacks may arrive out of counter order under threads).
    std::sort(seen_done.begin(), seen_done.end());
    ASSERT_EQ(seen_done.size(), 12u) << threads << " threads";
    for (size_t i = 0; i < seen_done.size(); ++i)
      EXPECT_EQ(seen_done[i], i + 1);
  }
}

TEST(ParallelSweep, RecordFailuresOffStillThrowsUnderThreads) {
  const SweepSpec spec = small_spec();
  ScopedFaultPlan armed({{grid_point_key(1, 1), non_convergence(100)}});
  ExecutionPolicy policy;
  policy.threads = 8;
  policy.retry.max_attempts = 2;
  policy.record_failures = false;
  try {
    sweep_region(spec, policy);
    FAIL() << "must rethrow the unrecoverable point";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("attempt 2/2"), std::string::npos) << what;
    EXPECT_NE(what.find("R_def="), std::string::npos) << what;
  }
}

TEST(ParallelCompletion, VerdictIndependentOfThreadCount) {
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = {10e6};
  spec.probe_u = pf::linspace(0.0, 3.3, 4);
  spec.max_prefix_ops = 1;

  const CompletionResult serial = search_completing_ops(spec);
  spec.exec.threads = 4;
  const CompletionResult parallel = search_completing_ops(spec);
  ASSERT_EQ(parallel.possible, serial.possible);
  EXPECT_EQ(parallel.candidates_evaluated, serial.candidates_evaluated);
  if (serial.possible) {
    EXPECT_EQ(parallel.completed.to_string(), serial.completed.to_string());
  }
}

TEST(ParallelTable1, RowsIdenticalAcrossThreadCounts) {
  Table1Options options;
  options.sites = {OpenSite::kBitLineOuter};
  options.r_points = 5;
  options.u_points = 5;
  options.max_prefix_ops = 1;
  options.fallback_windows = 2;
  options.probe_u_points = 4;

  const std::string serial =
      format_table1(generate_table1(DramParams{}, options));
  options.exec.threads = 8;
  const std::string parallel =
      format_table1(generate_table1(DramParams{}, options));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelColumns, DistinctClonedColumnsRunConcurrently) {
  // The per-worker state model of the engine: distinct columns built from
  // the same prototype (clone_fresh) must run concurrently without
  // interfering — every thread sees its own correct read-back.
  const dram::DramColumn prototype(DramParams{}, Defect::none());
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&prototype, &wrong, t] {
      dram::DramColumn column = prototype.clone_fresh();
      const int value = t % 2;
      column.write(dram::DramColumn::kVictim, value);
      if (column.read(dram::DramColumn::kVictim) != value) ++wrong;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace pf::analysis
