// Empirical verification of the complementary-defect mapping [Al-Ars00]
// behind Table 1's "Com. FFM" column: the mirrored bit-line open (Open 4',
// the same open on the COMPLEMENT line) must produce the data-complement of
// Open 4's partial fault, with the data-complement completing operation.
#include <gtest/gtest.h>

#include "pf/analysis/completion.hpp"
#include "pf/analysis/partial.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

RegionMap sweep(OpenSite site, const char* sos) {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(site, 1e6);
  spec.sos = Sos::parse(sos);
  spec.r_axis = pf::logspace(100e3, 10e6, 5);
  spec.u_axis = pf::linspace(0.0, 3.3, 6);
  return sweep_region(spec);
}

TEST(ComplementaryDefect, MirroredOpenYieldsComplementFfm) {
  // Open 4 + SOS 1r1 -> partial RDF1. Open 4' + the complement SOS 0r0 ->
  // partial RDF0 (= complement_ffm(RDF1)).
  const RegionMap original = sweep(OpenSite::kBitLineOuter, "1r1");
  const RegionMap mirrored = sweep(OpenSite::kBitLineOuterComp, "0r0");
  const auto f_orig = identify_partial_faults(original);
  const auto f_mirr = identify_partial_faults(mirrored);
  ASSERT_EQ(f_orig.size(), 1u);
  ASSERT_EQ(f_mirr.size(), 1u);
  EXPECT_EQ(f_orig[0].ffm, Ffm::kRDF1);
  EXPECT_EQ(f_mirr[0].ffm, faults::complement_ffm(f_orig[0].ffm));
  EXPECT_TRUE(f_mirr[0].partial);
}

TEST(ComplementaryDefect, SecondFfmPairAlsoMirrors) {
  // Open 4 also produces a partial RDF0 on 0r0 (floating BT high); the
  // mirrored defect produces the complementary partial RDF1 on 1r1
  // (floating BC high) — the second paired row of Table 1.
  const RegionMap original = sweep(OpenSite::kBitLineOuter, "0r0");
  const RegionMap mirrored = sweep(OpenSite::kBitLineOuterComp, "1r1");
  const auto f_orig = identify_partial_faults(original);
  const auto f_mirr = identify_partial_faults(mirrored);
  ASSERT_EQ(f_orig.size(), 1u);
  ASSERT_EQ(f_mirr.size(), 1u);
  EXPECT_EQ(f_orig[0].ffm, Ffm::kRDF0);
  EXPECT_EQ(f_mirr[0].ffm, faults::complement_ffm(f_orig[0].ffm));
}

TEST(ComplementaryDefect, CompletingOperationIsTheDataComplement) {
  // Open 4: <1v [w0BL] r1v/0/0>.  Open 4': <0v [w1BL] r0v/1/1> — exactly
  // the FP complement, as Table 1's paired rows state.
  const RegionMap map = sweep(OpenSite::kBitLineOuterComp, "0r0");
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuterComp, 1e6);
  spec.base.sos = Sos::parse("0r0");
  spec.probe_u = pf::linspace(0.0, 3.3, 5);
  spec.max_prefix_ops = 1;
  const CompletionResult result =
      search_completing_ops_with_fallback(spec, map, Ffm::kRDF0);
  ASSERT_TRUE(result.possible);
  EXPECT_EQ(result.completed.to_string(), "<0v [w1BL] r0v/1/1>");
  EXPECT_EQ(result.completed.to_string(),
            faults::FaultPrimitive::parse("<1v [w0BL] r1v/0/0>")
                .complement()
                .to_string());
}

TEST(ComplementaryDefect, MirroredBandIsAtHighFloatVoltages) {
  // Open 4's RDF1 band sits at LOW floating voltage; the mirrored defect's
  // RDF0 band sits at... also LOW complement-line voltage (the complement
  // line must fail to balance the read of a 0) — but against the
  // *complement data*, which is the point of the mapping.
  const RegionMap mirrored = sweep(OpenSite::kBitLineOuterComp, "0r0");
  const size_t top = mirrored.grid().height() - 1;
  const auto band = mirrored.u_band(Ffm::kRDF0, top);
  ASSERT_FALSE(band.empty());
  EXPECT_LT(band.hull().hi, 2.5) << "band bounded above";
}

TEST(ComplementaryDefect, NamedAndNumbered) {
  EXPECT_EQ(dram::defect_name(Defect::open(OpenSite::kBitLineOuterComp, 1e6)),
            "Open 4'");
  EXPECT_EQ(dram::open_number(OpenSite::kBitLineOuterComp), 4);
  const auto lines = dram::floating_lines_for(
      Defect::open(OpenSite::kBitLineOuterComp, 1e6), DramParams{});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].label, "Bit line (complement)");
}

}  // namespace
}  // namespace pf::analysis
