// End-to-end robustness of the sweep engine: solver faults injected at
// chosen grid points must be retried under the policy, degrade to explicit
// Ffm::kSolveFailed cells when unrecoverable, survive checkpoint/resume,
// and never contaminate the fault classification.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/completion.hpp"
#include "pf/analysis/partial.hpp"
#include "pf/analysis/region.hpp"
#include "pf/spice/fault_injection.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using spice::testing::InjectedFault;
using spice::testing::InjectionSpec;
using spice::testing::ScopedFaultPlan;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

InjectionSpec non_convergence(int fail_attempts) {
  InjectionSpec s;
  s.kind = InjectedFault::kNonConvergence;
  s.fail_attempts = fail_attempts;
  return s;
}

std::string temp_journal(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(RobustSweep, CleanSweepIsBitIdenticalUnderRobustDefaults) {
  // No injected faults: the robust engine must reproduce the figures
  // exactly, whatever the retry configuration (attempt 1 always runs the
  // caller's options).
  const SweepSpec spec = small_spec();
  const RegionMap plain = sweep_region(spec);
  ExecutionPolicy heavy;
  heavy.retry.max_attempts = 7;
  heavy.retry.dt_initial_scale = 0.01;
  const RegionMap robust = sweep_region(spec, heavy);
  EXPECT_EQ(plain.to_csv(), robust.to_csv());
  EXPECT_EQ(plain.render("t"), robust.render("t"));
  EXPECT_EQ(plain.failed_points(), 0u);
  EXPECT_DOUBLE_EQ(plain.observed_fraction(), 1.0);
  EXPECT_EQ(robust.solve_stats().solved, 12u);
  EXPECT_EQ(robust.solve_stats().retries, 0u);
}

TEST(RobustSweep, RetryRecoversTransientNonConvergence) {
  const SweepSpec spec = small_spec();
  const RegionMap clean = sweep_region(spec);

  // 2 of 12 grid points (>= 5%) fail twice each, then recover: inside a
  // 3-attempt budget every point must be solved, and the map must match the
  // clean sweep bit for bit.
  ScopedFaultPlan plan({{grid_point_key(0, 1), non_convergence(2)},
                        {grid_point_key(2, 2), non_convergence(2)}});
  ExecutionPolicy opt;
  opt.retry.max_attempts = 3;
  const RegionMap map = sweep_region(spec, opt);

  EXPECT_EQ(map.failed_points(), 0u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  EXPECT_EQ(map.solve_stats().solved, 12u);
  EXPECT_EQ(map.solve_stats().retries, 4u);  // 2 points x 2 failed attempts
  EXPECT_EQ(spice::testing::injections_performed(), 4u);
}

TEST(RobustSweep, UnrecoverablePointsDegradeToSolveFailedCells) {
  const SweepSpec spec = small_spec();
  const size_t top = spec.r_axis.size() - 1;
  // One failure in the top row's no-fault corner (u = 3.3) and one in the
  // bottom row: both unrecoverable.
  ScopedFaultPlan plan({{grid_point_key(3, top), non_convergence(100)},
                        {grid_point_key(3, 0), non_convergence(100)}});
  ExecutionPolicy opt;
  opt.retry.max_attempts = 2;
  const RegionMap map = sweep_region(spec, opt);

  // The sweep completed the full grid and marked exactly the injected
  // points, each retried at most the configured budget.
  EXPECT_EQ(map.failed_points(), 2u);
  EXPECT_EQ(map.grid().at(3, top), Ffm::kSolveFailed);
  EXPECT_EQ(map.grid().at(3, 0), Ffm::kSolveFailed);
  EXPECT_EQ(map.solve_stats().failed, 2u);
  EXPECT_EQ(map.solve_stats().solved, 10u);
  EXPECT_EQ(spice::testing::injections_performed(), 4u);  // 2 points x budget
  EXPECT_NEAR(map.observed_fraction(), 10.0 / 12.0, 1e-12);

  // Failures carry structured context for sweep-level logs.
  ASSERT_EQ(map.solve_stats().failure_log.size(), 2u);
  const std::string& log0 = map.solve_stats().failure_log[0];
  EXPECT_NE(log0.find("injected non-convergence"), std::string::npos) << log0;
  EXPECT_NE(log0.find("defect="), std::string::npos) << log0;
  EXPECT_NE(log0.find("R_def="), std::string::npos) << log0;
  EXPECT_NE(log0.find("U="), std::string::npos) << log0;
  EXPECT_NE(log0.find("SOS=1r1"), std::string::npos) << log0;
  EXPECT_NE(log0.find("attempt 2/2"), std::string::npos) << log0;

  // Failed cells are holes in the observation, not fault models.
  for (Ffm f : map.observed_ffms()) EXPECT_NE(f, Ffm::kSolveFailed);
  for (const auto& finding : identify_partial_faults(map))
    EXPECT_NE(finding.ffm, Ffm::kSolveFailed);

  // Rendering and CSV state the degradation explicitly.
  const std::string art = map.render("degraded");
  EXPECT_NE(art.find('x'), std::string::npos);
  EXPECT_NE(art.find("x = solve failed"), std::string::npos) << art;
  EXPECT_NE(art.find("2 of 12 grid points unsolved"), std::string::npos)
      << art;
  EXPECT_NE(map.to_csv().find("FAIL"), std::string::npos);

  // RegionMap accessors over failed cells: min_r picks the lowest failed
  // row; u_band isolates the failed cell without touching the real FFM's
  // band on the same row.
  EXPECT_DOUBLE_EQ(map.min_r(Ffm::kSolveFailed), spec.r_axis[0]);
  const auto failed_band = map.u_band(Ffm::kSolveFailed, top);
  ASSERT_FALSE(failed_band.empty());
  EXPECT_NEAR(failed_band.hull().lo, spec.u_axis[3] - 0.55, 0.01);
  const auto rdf1_band = map.u_band(Ffm::kRDF1, top);
  ASSERT_FALSE(rdf1_band.empty());
  EXPECT_LT(rdf1_band.hull().hi, failed_band.hull().lo)
      << "the failed cell must not bleed into the real FFM's band";
}

TEST(RobustSweep, RecordFailuresOffRethrowsWithContext) {
  const SweepSpec spec = small_spec();
  ScopedFaultPlan plan({{grid_point_key(1, 1), non_convergence(100)}});
  ExecutionPolicy opt;
  opt.retry.max_attempts = 2;
  opt.record_failures = false;
  try {
    sweep_region(spec, opt);
    FAIL() << "must rethrow the unrecoverable point";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("attempt 2/2"), std::string::npos) << what;
    EXPECT_NE(what.find("R_def="), std::string::npos) << what;
  }
}

TEST(RobustSweep, JournalResumeSkipsSolvedPointsAndRetriesFailedOnes) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("resume_journal.csv");
  std::remove(path.c_str());
  const RegionMap clean = sweep_region(spec);

  // First run: two unrecoverable points, journal armed.
  {
    ScopedFaultPlan plan({{grid_point_key(1, 0), non_convergence(100)},
                          {grid_point_key(2, 2), non_convergence(100)}});
    ExecutionPolicy opt;
    opt.retry.max_attempts = 2;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.failed_points(), 2u);
    EXPECT_EQ(map.solve_stats().resumed, 0u);
  }

  // Second run, faults gone (plan disarmed): only the 2 failed points are
  // re-attempted, the other 10 come from the journal, and the final map is
  // indistinguishable from a clean sweep.
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.solve_stats().resumed, 10u);
    EXPECT_EQ(map.solve_stats().attempted, 2u);
    EXPECT_EQ(map.failed_points(), 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }

  // Third run: everything resumes, nothing is re-simulated.
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.solve_stats().resumed, 12u);
    EXPECT_EQ(map.solve_stats().attempted, 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(RobustSweep, JournalOfDifferentSweepIsRejected) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("mismatch_journal.csv");
  std::remove(path.c_str());
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    sweep_region(spec, opt);
  }
  SweepSpec other = small_spec();
  other.sos = Sos::parse("0w0");
  ExecutionPolicy opt;
  opt.journal_path = path;
  EXPECT_THROW(sweep_region(other, opt), pf::Error);
  std::remove(path.c_str());
}

TEST(RobustSweep, TruncatedJournalRowIsDroppedNotFatal) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("truncated_journal.csv");
  std::remove(path.c_str());
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    sweep_region(spec, opt);
  }
  // Simulate a crash mid-append: drop the clean-completion trailer the
  // finished run wrote, then chop the last data row in half.
  {
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    const size_t trailer = all.rfind("# pf-sweep-journal END");
    ASSERT_NE(trailer, std::string::npos);
    all.resize(trailer);
    std::ofstream out(path, std::ios::trunc);
    out << all.substr(0, all.size() - 7);
  }
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 11u);
  EXPECT_EQ(map.solve_stats().attempted, 1u);
  std::remove(path.c_str());
}

TEST(RobustCompletion, UnsolvableProbesRejectCandidatesGracefully) {
  // Every probe experiment of the completion search fails: the search must
  // terminate with "not possible" and an honest solver_failures count
  // instead of throwing away the catalogue run.
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = {1e6};
  spec.probe_u = {0.0, 1.65, 3.3};
  spec.max_prefix_ops = 1;
  spec.exec.retry.max_attempts = 1;

  std::map<std::string, InjectionSpec> plan;
  for (double u : spec.probe_u)
    plan[completion_key(1e6, u)] = non_convergence(1000000);
  ScopedFaultPlan scoped(plan);

  const CompletionResult result = search_completing_ops(spec);
  EXPECT_FALSE(result.possible);
  EXPECT_GT(result.candidates_evaluated, 0);
  EXPECT_GT(result.solver_failures, 0u);
}

TEST(RobustCompletion, SearchStillSucceedsWhenFaultsAreRecoverable) {
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = {10e6};
  spec.probe_u = {0.0, 3.3};
  spec.max_prefix_ops = 1;
  spec.exec.retry.max_attempts = 3;

  // The first probe point hiccups twice, then recovers.
  ScopedFaultPlan scoped(
      {{completion_key(10e6, 0.0), non_convergence(2)}});
  const CompletionResult result = search_completing_ops(spec);
  EXPECT_TRUE(result.possible);
  EXPECT_EQ(result.solver_failures, 0u);
}

}  // namespace
}  // namespace pf::analysis
