// SweepJournal unit surface — the API contracts test_journal_v2.cpp's
// corruption fixtures take for granted: fingerprint identity (what it hashes
// and what it deliberately ignores), rows_appended() accounting, finalize()
// idempotence, loading a path that does not exist, and FAIL-row bookkeeping.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/region.hpp"
#include "pf/util/error.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

SweepSpec base_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(CheckpointUnit, FingerprintIsStableForEqualSpecs) {
  EXPECT_EQ(SweepJournal::fingerprint(base_spec()),
            SweepJournal::fingerprint(base_spec()));
}

TEST(CheckpointUnit, FingerprintCoversTheSweepIdentity) {
  const uint64_t base = SweepJournal::fingerprint(base_spec());

  SweepSpec s = base_spec();
  s.defect = Defect::open(OpenSite::kCell, 1e6);
  EXPECT_NE(SweepJournal::fingerprint(s), base) << "defect site ignored";

  s = base_spec();
  s.sos = Sos::parse("0r0");
  EXPECT_NE(SweepJournal::fingerprint(s), base) << "SOS ignored";

  s = base_spec();
  s.floating_line_index = 1;
  EXPECT_NE(SweepJournal::fingerprint(s), base)
      << "floating line index ignored";

  s = base_spec();
  s.r_axis[1] *= 1.01;
  EXPECT_NE(SweepJournal::fingerprint(s), base) << "r_axis value ignored";

  s = base_spec();
  s.u_axis.push_back(3.4);
  EXPECT_NE(SweepJournal::fingerprint(s), base) << "u_axis shape ignored";
}

TEST(CheckpointUnit, FingerprintIgnoresDramParams) {
  // Documented contract: params are NOT part of the identity — a journal is
  // only as valid as the parameter set it was recorded under, and resuming
  // a sweep with tweaked capacitances is the caller's responsibility.
  SweepSpec s = base_spec();
  s.params.c_cell *= 2.0;
  s.params.t_access *= 0.5;
  EXPECT_EQ(SweepJournal::fingerprint(s),
            SweepJournal::fingerprint(base_spec()));
}

TEST(CheckpointUnit, LoadOfMissingFileIsAnEmptyFreshStart) {
  const auto r = SweepJournal::load(temp_path("cpu_missing.csv"), base_spec());
  EXPECT_TRUE(r.entries.empty());
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.fail_rows, 0u);
  EXPECT_FALSE(r.clean_end);
  EXPECT_FALSE(r.quarantined);
  EXPECT_EQ(r.version, 0);
}

TEST(CheckpointUnit, RowsAppendedCountsOnlyThisObject) {
  const SweepSpec spec = base_spec();
  const std::string path = temp_path("cpu_rows.csv");
  {
    SweepJournal j(path, spec);
    EXPECT_EQ(j.rows_appended(), 0u);
    j.append({0, 0, Ffm::kRDF1, 1}, spec.r_axis[0], spec.u_axis[0]);
    j.append({1, 0, Ffm::kUnknown, 2}, spec.r_axis[0], spec.u_axis[1]);
    EXPECT_EQ(j.rows_appended(), 2u);
  }
  // A second journal object resuming the same file starts its own count.
  SweepJournal j2(path, spec);
  EXPECT_EQ(j2.rows_appended(), 0u);
  j2.append({2, 0, Ffm::kSolveFailed, 3}, spec.r_axis[0], spec.u_axis[2]);
  EXPECT_EQ(j2.rows_appended(), 1u);
  j2.finalize();

  const auto r = SweepJournal::load(path, spec);
  EXPECT_EQ(r.entries.size() + r.fail_rows, 3u);
  EXPECT_TRUE(r.clean_end);
}

TEST(CheckpointUnit, FinalizeIsIdempotent) {
  const SweepSpec spec = base_spec();
  const std::string path = temp_path("cpu_finalize.csv");
  {
    SweepJournal j(path, spec);
    j.append({0, 0, Ffm::kUnknown, 1}, spec.r_axis[0], spec.u_axis[0]);
    j.finalize();
    j.finalize();  // must not write a second trailer
  }
  std::ifstream in(path);
  std::string line;
  size_t trailers = 0;
  while (std::getline(in, line))
    if (line.find("END") != std::string::npos) ++trailers;
  EXPECT_EQ(trailers, 1u);
  EXPECT_TRUE(SweepJournal::load(path, spec).clean_end);
}

TEST(CheckpointUnit, FailRowsAreCountedButNotResumed) {
  const SweepSpec spec = base_spec();
  const std::string path = temp_path("cpu_fail.csv");
  {
    SweepJournal j(path, spec);
    j.append({0, 0, Ffm::kRDF1, 1}, spec.r_axis[0], spec.u_axis[0]);
    j.append({1, 0, Ffm::kSolveFailed, 3}, spec.r_axis[0], spec.u_axis[1]);
    j.append({2, 0, Ffm::kSolveFailed, 3}, spec.r_axis[0], spec.u_axis[2]);
    j.finalize();
  }
  const auto r = SweepJournal::load(path, spec);
  // FAIL rows are valid (counted) but excluded from entries, so a resumed
  // sweep re-attempts those points with its own retry policy.
  EXPECT_EQ(r.fail_rows, 2u);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].ix, 0u);
  EXPECT_EQ(r.entries[0].iy, 0u);
  EXPECT_EQ(r.entries[0].ffm, Ffm::kRDF1);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(CheckpointUnit, UnknownFfmRoundTripsAsSolvedNoFault) {
  // Entry::ffm == kUnknown means "solved, no fault observed" — it must be
  // resumed (skipped on re-run), not confused with FAIL.
  const SweepSpec spec = base_spec();
  const std::string path = temp_path("cpu_unknown.csv");
  {
    SweepJournal j(path, spec);
    j.append({3, 2, Ffm::kUnknown, 1}, spec.r_axis[2], spec.u_axis[3]);
    j.finalize();
  }
  const auto r = SweepJournal::load(path, spec);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].ix, 3u);
  EXPECT_EQ(r.entries[0].iy, 2u);
  EXPECT_EQ(r.entries[0].ffm, Ffm::kUnknown);
  EXPECT_EQ(r.entries[0].attempts, 1);
  EXPECT_EQ(r.fail_rows, 0u);
}

TEST(CheckpointUnit, ResumedJournalRejectsADifferentSweep) {
  const SweepSpec spec = base_spec();
  const std::string path = temp_path("cpu_mismatch.csv");
  {
    SweepJournal j(path, spec);
    j.append({0, 0, Ffm::kRDF1, 1}, spec.r_axis[0], spec.u_axis[0]);
  }
  SweepSpec other = base_spec();
  other.sos = Sos::parse("0w1r1");
  EXPECT_THROW(SweepJournal::load(path, other), pf::Error);
  EXPECT_THROW(SweepJournal(path, other), pf::Error);
}

}  // namespace
}  // namespace pf::analysis
