// Journal v2 integrity model, exercised fixture by fixture: truncated final
// row, flipped byte (CRC mismatch), unknown version tag (quarantine),
// missing END trailer, and transparent v1-format resume. Every corruption
// must recover the maximum valid prefix and re-attempt the rest — resume is
// never worse than a fresh start, whatever is on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/region.hpp"
#include "pf/util/crc32.hpp"
#include "pf/util/error.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

std::string temp_journal(const char* name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string hex16_of(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// A freshly written, finalized journal covering the whole 3x4 grid.
std::string make_complete_journal(const SweepSpec& spec, const char* name) {
  const std::string path = temp_journal(name);
  std::remove(path.c_str());
  ExecutionPolicy opt;
  opt.journal_path = path;
  sweep_region(spec, opt);
  return path;
}

TEST(JournalV2, CompleteRunEndsWithSelfValidatingTrailer) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_trailer.csv");
  const auto lines = lines_of(read_file(path));
  ASSERT_GE(lines.size(), 2u + 12u + 1u);  // header, columns, rows, trailer
  EXPECT_EQ(lines.front(), "# pf-sweep-journal v2 fingerprint=" +
                               hex16_of(SweepJournal::fingerprint(spec)));
  EXPECT_EQ(lines[1], "iy,ix,r_def,u,ffm,attempts,crc");
  EXPECT_EQ(lines.back(), "# pf-sweep-journal END fingerprint=" +
                              hex16_of(SweepJournal::fingerprint(spec)));

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.version, 2);
  EXPECT_TRUE(loaded.clean_end);
  EXPECT_EQ(loaded.entries.size(), 12u);
  EXPECT_EQ(loaded.dropped, 0u);
  EXPECT_FALSE(loaded.quarantined);
  std::remove(path.c_str());
}

TEST(JournalV2, EveryRowCarriesItsOwnCrc) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_crc.csv");
  for (const std::string& line : lines_of(read_file(path))) {
    if (line.empty() || line[0] == '#' || line == "iy,ix,r_def,u,ffm,attempts,crc")
      continue;
    const size_t crc_pos = line.rfind(',');
    ASSERT_NE(crc_pos, std::string::npos);
    char expect[9];
    std::snprintf(expect, sizeof(expect), "%08x",
                  pf::crc32(std::string_view(line).substr(0, crc_pos)));
    EXPECT_EQ(line.substr(crc_pos + 1), expect) << line;
  }
  std::remove(path.c_str());
}

TEST(JournalV2, TruncatedFinalRowRecoversThePrefix) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_trunc.csv");
  std::string all = read_file(path);
  const size_t trailer = all.rfind("# pf-sweep-journal END");
  ASSERT_NE(trailer, std::string::npos);
  all.resize(trailer);                       // crash: no trailer...
  write_file(path, all.substr(0, all.size() - 5));  // ...and a torn last row

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.entries.size(), 11u);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_FALSE(loaded.clean_end);
  EXPECT_FALSE(loaded.quarantined);

  // Resuming re-attempts exactly the lost point and reproduces the map.
  const RegionMap clean = sweep_region(spec);
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 11u);
  EXPECT_EQ(map.solve_stats().attempted, 1u);
  EXPECT_EQ(map.solve_stats().journal_dropped, 1u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  std::remove(path.c_str());
}

TEST(JournalV2, FlippedByteFailsTheCrcAndDropsOnlyThatRow) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_flip.csv");
  std::vector<std::string> lines = lines_of(read_file(path));
  // Flip one byte inside the FFM field of the third data row: the row still
  // parses as CSV, but its CRC no longer matches.
  std::string& victim = lines[4];
  const size_t mid = victim.find(',', victim.find(',') + 1) + 1;
  victim[mid] = victim[mid] == '9' ? '8' : '9';
  std::string rebuilt;
  for (const std::string& l : lines) rebuilt += l + '\n';
  write_file(path, rebuilt);

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.entries.size(), 11u);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_TRUE(loaded.clean_end);  // the trailer itself is intact

  const RegionMap clean = sweep_region(spec);
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 11u);
  EXPECT_EQ(map.solve_stats().attempted, 1u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  std::remove(path.c_str());
}

TEST(JournalV2, UnknownVersionTagQuarantinesAndRestartsFresh) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_version.csv");
  std::string all = read_file(path);
  const size_t v = all.find("v2");
  ASSERT_NE(v, std::string::npos);
  all.replace(v, 2, "v9");
  write_file(path, all);

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_TRUE(loaded.quarantined);
  EXPECT_TRUE(loaded.entries.empty());
  // The evidence is preserved next to the original path...
  EXPECT_FALSE(read_file(path + ".corrupt").empty());
  // ...and the journal path itself is gone until a writer recreates it.
  EXPECT_TRUE(read_file(path).empty());

  const RegionMap clean = sweep_region(spec);
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 0u);
  EXPECT_EQ(map.solve_stats().attempted, 12u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST(JournalV2, GarbageHeaderQuarantinesInsteadOfThrowing) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("jv2_garbage.csv");
  write_file(path, "this is not a journal\n1,2,3\n");

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_TRUE(loaded.quarantined);
  EXPECT_TRUE(loaded.entries.empty());
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST(JournalV2, RepeatedQuarantinesGetCounterSuffixesAndNeverOverwrite) {
  // Two corrupt journals landing on the same path must BOTH survive as
  // evidence: the first goes to <path>.corrupt, the second to
  // <path>.corrupt.1 — never clobbering the first.
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("jv2_collide.csv");
  std::remove((path + ".corrupt").c_str());
  std::remove((path + ".corrupt.1").c_str());

  write_file(path, "garbage one\n");
  EXPECT_TRUE(SweepJournal::load(path, spec).quarantined);
  write_file(path, "garbage two\n");
  EXPECT_TRUE(SweepJournal::load(path, spec).quarantined);

  EXPECT_EQ(read_file(path + ".corrupt"), "garbage one\n");
  EXPECT_EQ(read_file(path + ".corrupt.1"), "garbage two\n");
  std::remove((path + ".corrupt").c_str());
  std::remove((path + ".corrupt.1").c_str());
}

TEST(JournalV2, SweepStatsCountQuarantines) {
  // The sweep driver surfaces a quarantine in its stats — a campaign log
  // that silently restarted a corrupt journal would read as "all intact".
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("jv2_quarantine_stats.csv");
  write_file(path, "not a journal header\n");

  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().journal_quarantined, 1u);
  EXPECT_EQ(map.solve_stats().resumed, 0u);
  EXPECT_EQ(map.solve_stats().attempted, 12u);

  // A clean rerun over the fresh journal quarantines nothing.
  const RegionMap rerun = sweep_region(spec, opt);
  EXPECT_EQ(rerun.solve_stats().journal_quarantined, 0u);
  EXPECT_EQ(rerun.solve_stats().resumed, 12u);
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST(JournalV2, MissingEndTrailerReadsAsInterrupted) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_noend.csv");
  std::string all = read_file(path);
  const size_t trailer = all.rfind("# pf-sweep-journal END");
  ASSERT_NE(trailer, std::string::npos);
  write_file(path, all.substr(0, trailer));

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_FALSE(loaded.clean_end);
  EXPECT_EQ(loaded.entries.size(), 12u);  // every row is still valid
  EXPECT_EQ(loaded.dropped, 0u);

  // A resume over a complete-but-unfinalized journal re-runs nothing and
  // writes the trailer, making the next load clean.
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 12u);
  EXPECT_EQ(map.solve_stats().attempted, 0u);
  EXPECT_TRUE(SweepJournal::load(path, spec).clean_end);
  std::remove(path.c_str());
}

TEST(JournalV2, TornTrailerIsNotACleanEnd) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_torntrail.csv");
  std::string all = read_file(path);
  if (all.back() == '\n') all.pop_back();
  write_file(path, all.substr(0, all.size() - 3));  // trailer loses 3 chars

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_FALSE(loaded.clean_end);  // a torn trailer never reads as complete
  EXPECT_EQ(loaded.entries.size(), 12u);
  std::remove(path.c_str());
}

TEST(JournalV2, V1JournalResumesTransparently) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_journal("jv2_v1compat.csv");
  // Hand-write a PR 1 journal: v1 header, no CRC column, 6-field rows, no
  // trailer; include one FAIL row (re-attempted) and one garbage row
  // (dropped under the lenient v1 rules).
  {
    const RegionMap clean = sweep_region(spec);
    std::ostringstream os;
    os << "# pf-sweep-journal v1 fingerprint="
       << hex16_of(SweepJournal::fingerprint(spec)) << '\n'
       << "iy,ix,r_def,u,ffm,attempts\n";
    size_t written = 0;
    for (size_t iy = 0; iy < spec.r_axis.size(); ++iy)
      for (size_t ix = 0; ix < spec.u_axis.size(); ++ix) {
        if (written == 5) {
          os << iy << ',' << ix << ',' << spec.r_axis[iy] << ','
             << spec.u_axis[ix] << ",FAIL,3\n";
        } else if (written == 7) {
          os << "garbage row that does not parse\n";
        } else if (written < 10) {
          const Ffm f = clean.grid().at(ix, iy);
          os << iy << ',' << ix << ',' << spec.r_axis[iy] << ','
             << spec.u_axis[ix] << ','
             << (f == Ffm::kUnknown ? "-" : faults::ffm_name(f)) << ",1\n";
        }
        ++written;
      }
    write_file(path, os.str());
  }

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.version, 1);
  EXPECT_EQ(loaded.entries.size(), 8u);  // 10 written - FAIL - garbage
  EXPECT_EQ(loaded.fail_rows, 1u);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_FALSE(loaded.clean_end);

  // Resume re-runs the FAIL point, the garbage point and the 2 never-run
  // points, appends CRC'd v2 rows after the v1 rows, and the final map is
  // bit-identical to an uninterrupted run.
  const RegionMap clean = sweep_region(spec);
  ExecutionPolicy opt;
  opt.journal_path = path;
  const RegionMap map = sweep_region(spec, opt);
  EXPECT_EQ(map.solve_stats().resumed, 8u);
  EXPECT_EQ(map.solve_stats().attempted, 4u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());

  // The mixed-format file now loads fully: v1 rows unchecked, v2 rows
  // CRC-checked, trailer present.
  const SweepJournal::LoadResult reloaded = SweepJournal::load(path, spec);
  EXPECT_EQ(reloaded.entries.size(), 12u);
  EXPECT_TRUE(reloaded.clean_end);
  std::remove(path.c_str());
}

TEST(JournalV2, SixFieldRowUnderV2HeaderIsATruncationArtifact) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_sixfield.csv");
  std::vector<std::string> lines = lines_of(read_file(path));
  // Chop the CRC field off a data row: under a v2 header this is exactly
  // what a torn write looks like, and must be dropped even though it would
  // be a well-formed v1 row.
  std::string& victim = lines[3];
  victim.resize(victim.rfind(','));
  std::string rebuilt;
  for (const std::string& l : lines) rebuilt += l + '\n';
  write_file(path, rebuilt);

  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.entries.size(), 11u);
  EXPECT_EQ(loaded.dropped, 1u);
  std::remove(path.c_str());
}

TEST(JournalV2, MismatchedFingerprintStillThrows) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_mismatch.csv");
  SweepSpec other = spec;
  other.sos = Sos::parse("0w0");
  EXPECT_THROW(SweepJournal::load(path, other), pf::Error);
  std::remove(path.c_str());
}

TEST(JournalV2, DuplicateRowsKeepTheLastOccurrence) {
  const SweepSpec spec = small_spec();
  const std::string path = make_complete_journal(spec, "jv2_dup.csv");
  // Append a CRC-valid duplicate of point (0,0) recording a different FFM.
  {
    SweepJournal journal(path, spec);
    SweepJournal::Entry e;
    e.ix = 0;
    e.iy = 0;
    e.ffm = Ffm::kRDF1;
    e.attempts = 9;
    journal.append(e, spec.r_axis[0], spec.u_axis[0]);
  }
  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_EQ(loaded.entries.size(), 12u);
  bool found = false;
  for (const SweepJournal::Entry& e : loaded.entries)
    if (e.ix == 0 && e.iy == 0) {
      found = true;
      EXPECT_EQ(e.ffm, Ffm::kRDF1);
      EXPECT_EQ(e.attempts, 9);
    }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf::analysis
