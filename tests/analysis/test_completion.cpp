// Completing-operation search and the Section 4 relations between partial
// and completed faults.
#include <gtest/gtest.h>

#include "pf/analysis/completion.hpp"
#include "pf/analysis/partial.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

const DramParams& params() {
  static const DramParams p;
  return p;
}

TEST(Completion, FindsBitLineCompleterForPartialRdf1) {
  // The paper's flagship example: Open 4 partial RDF1 is completed by a
  // write-0 somewhere on the victim's bit line.
  SweepSpec sweep;
  sweep.params = params();
  sweep.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  sweep.sos = Sos::parse("1r1");
  sweep.r_axis = pf::logspace(100e3, 10e6, 4);
  sweep.u_axis = pf::linspace(0.0, 3.3, 5);
  const RegionMap map = sweep_region(sweep);

  CompletionSpec spec;
  spec.params = params();
  spec.defect = sweep.defect;
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = choose_probe_rows(map, Ffm::kRDF1, 2);
  ASSERT_FALSE(spec.probe_r.empty());
  spec.probe_u = pf::linspace(0.0, 3.3, 5);
  spec.max_prefix_ops = 2;

  const CompletionResult result = search_completing_ops(spec);
  ASSERT_TRUE(result.possible);
  // The completed FP keeps the RDF1 behaviour and uses completing ops.
  EXPECT_EQ(faults::classify(result.completed), Ffm::kRDF1);
  EXPECT_TRUE(result.completed.sos.has_completing_ops());
  EXPECT_GT(result.sos_runs, 0u);

  // Section 4 relations: the completed fault has at least as many cells and
  // operations as its partial counterpart.
  const auto base = Sos::parse("1r1");
  EXPECT_GE(result.completed.sos.num_cells(), base.num_cells());
  EXPECT_GE(result.completed.sos.num_ops(), base.num_ops());
}

TEST(Completion, CompletedFpForBitLineOpenIsThePapersRow) {
  // With victim-first candidate ordering the search lands exactly on the
  // paper's Table 1 entry for Opens 3-5: <1v [w0BL] r1v/0/0>.
  SweepSpec sweep;
  sweep.params = params();
  sweep.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  sweep.sos = Sos::parse("1r1");
  sweep.r_axis = pf::logspace(300e3, 10e6, 3);
  sweep.u_axis = pf::linspace(0.0, 3.3, 5);
  const RegionMap map = sweep_region(sweep);

  CompletionSpec spec;
  spec.params = params();
  spec.defect = sweep.defect;
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = choose_probe_rows(map, Ffm::kRDF1, 2);
  spec.probe_u = pf::linspace(0.0, 3.3, 5);
  spec.max_prefix_ops = 1;
  const CompletionResult result = search_completing_ops(spec);
  ASSERT_TRUE(result.possible);
  EXPECT_EQ(result.completed.to_string(), "<1v [w0BL] r1v/0/0>");
}

TEST(Completion, WordLineStateFaultNotPossible) {
  // Open 9: the floating word line cannot be manipulated by memory
  // operations, so the SF0 cannot be completed (Table 1 "Not possible").
  CompletionSpec spec;
  spec.params = params();
  spec.defect = Defect::open(OpenSite::kWordLine, 100e6);
  spec.base = faults::FaultPrimitive::parse("<0/1/->");
  spec.probe_r = {100e6};
  spec.probe_u = {0.0, params().vpp};  // gate low and gate high
  spec.max_prefix_ops = 2;
  const CompletionResult result = search_completing_ops(spec);
  EXPECT_FALSE(result.possible);
  EXPECT_GT(result.candidates_evaluated, 0);
}

TEST(Completion, ProbeRowSelectionSpreadsRows) {
  SweepSpec sweep;
  sweep.params = params();
  sweep.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  sweep.sos = Sos::parse("1r1");
  sweep.r_axis = pf::logspace(100e3, 10e6, 6);
  sweep.u_axis = pf::linspace(0.0, 3.3, 5);
  const RegionMap map = sweep_region(sweep);
  const auto rows = choose_probe_rows(map, Ffm::kRDF1, 3);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_LT(rows.front(), rows.back());
  // No probe rows for an FFM that never appears.
  EXPECT_TRUE(choose_probe_rows(map, Ffm::kWDF0, 3).empty());
}

TEST(Completion, RejectsEmptyProbes) {
  CompletionSpec spec;
  spec.params = params();
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  EXPECT_THROW(search_completing_ops(spec), pf::Error);
}

}  // namespace
}  // namespace pf::analysis
