// Golden equivalence of the compile-once circuit pipeline: sweeps that
// REUSE a per-worker compiled column (restamp + reset per point, the
// CircuitMode::kReuse default) must reproduce the per-point rebuild path
// bit for bit — same CSV, same rendering, same stats — serially and under
// a worker pool, with the warm-start knob, and with the fault-injection and
// journal machinery layered on top.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/completion.hpp"
#include "pf/analysis/region.hpp"
#include "pf/analysis/robust.hpp"
#include "pf/spice/fault_injection.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using spice::testing::InjectedFault;
using spice::testing::InjectionSpec;
using spice::testing::ScopedFaultPlan;

SweepSpec small_spec(const char* sos = "1r1") {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse(sos);
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

RegionMap rebuild_reference(const SweepSpec& spec) {
  ExecutionPolicy rebuild;
  rebuild.circuit = CircuitMode::kRebuild;
  return sweep_region(spec, rebuild);
}

void expect_equivalent(const RegionMap& reference, const RegionMap& map,
                       const char* what) {
  EXPECT_EQ(reference.to_csv(), map.to_csv()) << what;
  EXPECT_EQ(reference.render("t"), map.render("t")) << what;
  EXPECT_EQ(reference.solve_stats().solved, map.solve_stats().solved) << what;
  EXPECT_EQ(reference.solve_stats().failed, map.solve_stats().failed) << what;
  EXPECT_EQ(reference.solve_stats().retries, map.solve_stats().retries)
      << what;
}

TEST(CircuitReuse, ReuseIsBitIdenticalToRebuildAtAnyThreadCount) {
  // THE golden-equivalence property of the compile-once refactor, on both a
  // read SOS and an operation-free state-fault SOS (which exercises the
  // idle-cycle observation path).
  for (const char* sos : {"1r1", "1"}) {
    const SweepSpec spec = small_spec(sos);
    const RegionMap reference = rebuild_reference(spec);
    EXPECT_EQ(reference.failed_points(), 0u) << sos;
    for (int threads : {1, 4}) {
      ExecutionPolicy reuse;
      reuse.threads = threads;
      reuse.circuit = CircuitMode::kReuse;
      const RegionMap map = sweep_region(spec, reuse);
      expect_equivalent(reference, map,
                        (std::string(sos) + " @threads=" +
                         std::to_string(threads)).c_str());
    }
  }
}

TEST(CircuitReuse, WarmStartMatchesTheRebuildMap) {
  // Warm start replays power-up from the previous point's end state, so the
  // solver trajectories differ — but every observable level is
  // re-established, so the REGION MAP must still match the rebuild path
  // bit for bit, serial and parallel.
  const SweepSpec spec = small_spec();
  const RegionMap reference = rebuild_reference(spec);
  for (int threads : {1, 4}) {
    ExecutionPolicy warm;
    warm.threads = threads;
    warm.warm_start = true;
    const RegionMap map = sweep_region(spec, warm);
    EXPECT_EQ(reference.to_csv(), map.to_csv()) << threads << " threads";
    EXPECT_EQ(map.failed_points(), 0u);
  }
}

TEST(CircuitReuse, SessionRunMatchesFreshRunSosAcrossRestamps) {
  // Drive one session through the R/U/options variations a sweep performs
  // and compare every outcome field against a fresh-build run_sos.
  const SweepSpec spec = small_spec();
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  ASSERT_FALSE(lines.empty());
  SosSession session(spec.params, spec.defect);

  spice::SimOptions tightened = spec.params.sim;
  tightened.dt_initial *= 0.25;
  tightened.max_nr_iters += 40;

  const struct {
    double r;
    double u;
    const spice::SimOptions* opts;
  } points[] = {
      {1e6, 0.0, &spec.params.sim},   // restamp-free repeat of the build R
      {1e6, 2.2, &spec.params.sim},   // same row: snapshot-restore path
      {10e6, 1.1, &spec.params.sim},  // new row: power-up replay
      {10e6, 1.1, &tightened},        // option change: replay under retry opts
      {250e3, 3.3, &spec.params.sim}, // back down, options restored
  };
  for (const auto& p : points) {
    const SosOutcome reused =
        session.run(p.r, *p.opts, &lines[0], p.u, spec.sos);
    dram::DramParams params = spec.params;
    params.sim = *p.opts;
    Defect defect = spec.defect;
    defect.resistance = p.r;
    const SosOutcome fresh = run_sos(params, defect, &lines[0], p.u, spec.sos);
    EXPECT_EQ(reused.final_state, fresh.final_state) << p.r << " " << p.u;
    EXPECT_EQ(reused.read_result, fresh.read_result) << p.r << " " << p.u;
    EXPECT_EQ(reused.faulty, fresh.faulty) << p.r << " " << p.u;
    EXPECT_EQ(reused.ffm, fresh.ffm) << p.r << " " << p.u;
  }
}

TEST(CircuitReuse, InjectedFaultsRetryIdenticallyThroughReuse) {
  // The deterministic injection harness must behave exactly as on the
  // rebuild path: one injection per failed attempt, full recovery inside
  // the budget, bit-identical final map.
  const SweepSpec spec = small_spec();
  const RegionMap clean = rebuild_reference(spec);

  InjectionSpec fail_twice;
  fail_twice.kind = InjectedFault::kNonConvergence;
  fail_twice.fail_attempts = 2;
  ScopedFaultPlan plan({{grid_point_key(1, 0), fail_twice},
                        {grid_point_key(3, 2), fail_twice}});
  ExecutionPolicy reuse;
  reuse.retry.max_attempts = 3;
  ASSERT_EQ(reuse.circuit, CircuitMode::kReuse);
  const RegionMap map = sweep_region(spec, reuse);

  EXPECT_EQ(map.failed_points(), 0u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  EXPECT_EQ(map.solve_stats().retries, 4u);
  EXPECT_EQ(spice::testing::injections_performed(), 4u);
}

TEST(CircuitReuse, JournalResumeThroughReusedColumns) {
  // Interrupted-run shape: a journaled kReuse sweep degrades two injected
  // points, then a second parallel kReuse run resumes the journal, re-runs
  // only those two and lands on the rebuild path's clean map.
  const SweepSpec spec = small_spec();
  const RegionMap clean = rebuild_reference(spec);
  const std::string path =
      ::testing::TempDir() + "reuse_resume_journal.csv";
  std::remove(path.c_str());

  {
    InjectionSpec dead;
    dead.kind = InjectedFault::kNonConvergence;
    dead.fail_attempts = 100;
    ScopedFaultPlan plan({{grid_point_key(0, 0), dead},
                          {grid_point_key(2, 1), dead}});
    ExecutionPolicy opt;
    opt.retry.max_attempts = 2;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.failed_points(), 2u);
  }
  {
    ExecutionPolicy opt;
    opt.threads = 4;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.solve_stats().resumed, 10u);
    EXPECT_EQ(map.solve_stats().attempted, 2u);
    EXPECT_EQ(map.failed_points(), 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(CircuitReuse, CompletionSearchVerdictMatchesRebuild) {
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = {10e6};
  spec.probe_u = {0.0, 1.65, 3.3};
  spec.max_prefix_ops = 1;

  spec.exec.circuit = CircuitMode::kRebuild;
  const CompletionResult rebuild = search_completing_ops(spec);
  spec.exec.circuit = CircuitMode::kReuse;
  const CompletionResult reuse = search_completing_ops(spec);

  EXPECT_EQ(rebuild.possible, reuse.possible);
  EXPECT_EQ(rebuild.candidates_evaluated, reuse.candidates_evaluated);
  EXPECT_EQ(rebuild.sos_runs, reuse.sos_runs);  // serial: exact counts
  if (rebuild.possible) {
    EXPECT_EQ(rebuild.completed.to_string(), reuse.completed.to_string());
  }
}

}  // namespace
}  // namespace pf::analysis
