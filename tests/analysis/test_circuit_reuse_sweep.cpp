// Golden equivalence of the execution engine across the whole plan matrix:
// {scalar, batched} backends x {dense, adaptive} sweep modes x {1, N}
// worker threads must reproduce the per-point rebuild path's map — the
// dense modes bit for bit (same CSV, same rendering, same stats), the
// adaptive modes boundary-identically (same grid, with inferred points in
// the stats) — with the fault-injection and journal machinery layered on
// top of every combination.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/completion.hpp"
#include "pf/analysis/region.hpp"
#include "pf/analysis/robust.hpp"
#include "pf/spice/fault_injection.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using spice::SolverBackend;
using spice::testing::InjectedFault;
using spice::testing::InjectionSpec;
using spice::testing::ScopedFaultPlan;

SweepSpec small_spec(const char* sos = "1r1") {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse(sos);
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

/// A wider row (9 U points) so the adaptive tracer has seed gaps to infer
/// across; the map's fault bands at this resolution are wider than the
/// seed stride, which is the regime adaptive mode is exact in.
SweepSpec wide_spec() {
  SweepSpec spec = small_spec();
  spec.u_axis = pf::linspace(0.0, 3.3, 9);
  return spec;
}

RegionMap rebuild_reference(const SweepSpec& spec) {
  ExecutionPolicy rebuild;
  rebuild.plan.circuit_mode = CircuitMode::kRebuild;
  return sweep_region(spec, rebuild);
}

void expect_equivalent(const RegionMap& reference, const RegionMap& map,
                       const std::string& what) {
  EXPECT_EQ(reference.to_csv(), map.to_csv()) << what;
  EXPECT_EQ(reference.render("t"), map.render("t")) << what;
  EXPECT_EQ(reference.solve_stats().solved, map.solve_stats().solved) << what;
  EXPECT_EQ(reference.solve_stats().failed, map.solve_stats().failed) << what;
  EXPECT_EQ(reference.solve_stats().retries, map.solve_stats().retries)
      << what;
}

TEST(CircuitReuse, ReuseIsBitIdenticalToRebuildAtAnyThreadCount) {
  // THE golden-equivalence property of the compile-once refactor, on both a
  // read SOS and an operation-free state-fault SOS (which exercises the
  // idle-cycle observation path), for BOTH solver backends: the batched
  // dense sweep must land on the same map, stats included.
  for (const char* sos : {"1r1", "1"}) {
    const SweepSpec spec = small_spec(sos);
    const RegionMap reference = rebuild_reference(spec);
    EXPECT_EQ(reference.failed_points(), 0u) << sos;
    for (SolverBackend backend :
         {SolverBackend::kScalar, SolverBackend::kBatched}) {
      for (int threads : {1, 4}) {
        ExecutionPolicy reuse;
        reuse.threads = threads;
        reuse.plan.circuit_mode = CircuitMode::kReuse;
        reuse.plan.backend = backend;
        const RegionMap map = sweep_region(spec, reuse);
        expect_equivalent(reference, map,
                          std::string(sos) + " @threads=" +
                              std::to_string(threads) + " backend=" +
                              spice::solver_backend_name(backend));
      }
    }
  }
}

TEST(CircuitReuse, AdaptiveTracingMatchesTheDenseMap) {
  // Adaptive boundary tracing must land on the same GRID as the dense
  // sweep (bands at this resolution are wider than the seed stride) while
  // actually inferring points instead of solving them — under both
  // backends and thread counts.
  const SweepSpec spec = wide_spec();
  const RegionMap reference = rebuild_reference(spec);
  ASSERT_EQ(reference.failed_points(), 0u);
  for (SolverBackend backend :
       {SolverBackend::kScalar, SolverBackend::kBatched}) {
    for (int threads : {1, 4}) {
      ExecutionPolicy adaptive;
      adaptive.threads = threads;
      adaptive.plan.backend = backend;
      adaptive.plan.adaptive = true;
      const RegionMap map = sweep_region(spec, adaptive);
      const std::string what =
          std::string("threads=") + std::to_string(threads) + " backend=" +
          spice::solver_backend_name(backend);
      EXPECT_EQ(reference.to_csv(), map.to_csv()) << what;
      EXPECT_EQ(reference.render("t"), map.render("t")) << what;
      EXPECT_GT(map.solve_stats().inferred, 0u) << what;
      EXPECT_LT(map.solve_stats().attempted,
                spec.r_axis.size() * spec.u_axis.size())
          << what << ": adaptive mode must not evaluate the full grid";
      EXPECT_EQ(map.solve_stats().attempted + map.solve_stats().inferred,
                spec.r_axis.size() * spec.u_axis.size())
          << what;
    }
  }
}

TEST(CircuitReuse, SessionRunMatchesFreshRunSosAcrossRestamps) {
  // Drive one session through the R/U/options variations a sweep performs
  // and compare every outcome field against a fresh-build run_sos.
  const SweepSpec spec = small_spec();
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  ASSERT_FALSE(lines.empty());
  SosSession session(spec.params, spec.defect);

  spice::SimOptions tightened = spec.params.sim;
  tightened.dt_initial *= 0.25;
  tightened.max_nr_iters += 40;

  const struct {
    double r;
    double u;
    const spice::SimOptions* opts;
  } points[] = {
      {1e6, 0.0, &spec.params.sim},   // restamp-free repeat of the build R
      {1e6, 2.2, &spec.params.sim},   // same row: snapshot-restore path
      {10e6, 1.1, &spec.params.sim},  // new row: power-up replay
      {10e6, 1.1, &tightened},        // option change: replay under retry opts
      {250e3, 3.3, &spec.params.sim}, // back down, options restored
  };
  for (const auto& p : points) {
    const SosOutcome reused =
        session.run(p.r, *p.opts, &lines[0], p.u, spec.sos);
    dram::DramParams params = spec.params;
    params.sim = *p.opts;
    Defect defect = spec.defect;
    defect.resistance = p.r;
    const SosOutcome fresh = run_sos(params, defect, &lines[0], p.u, spec.sos);
    EXPECT_EQ(reused.final_state, fresh.final_state) << p.r << " " << p.u;
    EXPECT_EQ(reused.read_result, fresh.read_result) << p.r << " " << p.u;
    EXPECT_EQ(reused.faulty, fresh.faulty) << p.r << " " << p.u;
    EXPECT_EQ(reused.ffm, fresh.ffm) << p.r << " " << p.u;
  }
}

TEST(CircuitReuse, RunBatchMatchesScalarSessionRuns) {
  // The sweep backend's unit of work, checked directly: one run_batch call
  // over a row of U lanes vs one scalar session run per lane.
  const SweepSpec spec = small_spec();
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  ASSERT_FALSE(lines.empty());
  SosSession scalar_session(spec.params, spec.defect);
  SosSession batch_session(spec.params, spec.defect);
  const std::vector<double> us = {0.0, 1.1, 2.2, 3.3};
  for (double r : spec.r_axis) {
    const auto lanes = batch_session.run_batch(r, spec.params.sim, &lines[0],
                                               us, spec.sos);
    ASSERT_EQ(lanes.size(), us.size());
    for (size_t l = 0; l < us.size(); ++l) {
      ASSERT_TRUE(lanes[l].solved) << lanes[l].error;
      const SosOutcome ref =
          scalar_session.run(r, spec.params.sim, &lines[0], us[l], spec.sos);
      EXPECT_EQ(lanes[l].outcome.final_state, ref.final_state)
          << r << " " << us[l];
      EXPECT_EQ(lanes[l].outcome.read_result, ref.read_result)
          << r << " " << us[l];
      EXPECT_EQ(lanes[l].outcome.faulty, ref.faulty) << r << " " << us[l];
      EXPECT_EQ(lanes[l].outcome.ffm, ref.ffm) << r << " " << us[l];
    }
  }
}

TEST(CircuitReuse, InjectedFaultsRetryIdenticallyThroughReuse) {
  // The deterministic injection harness must behave exactly as on the
  // rebuild path: one injection per failed attempt, full recovery inside
  // the budget, bit-identical final map. With the batched backend armed
  // injection routes the affected rows through the scalar retry loop, so
  // the counts are identical there too.
  const SweepSpec spec = small_spec();
  const RegionMap clean = rebuild_reference(spec);

  for (SolverBackend backend :
       {SolverBackend::kScalar, SolverBackend::kBatched}) {
    InjectionSpec fail_twice;
    fail_twice.kind = InjectedFault::kNonConvergence;
    fail_twice.fail_attempts = 2;
    ScopedFaultPlan plan({{grid_point_key(1, 0), fail_twice},
                          {grid_point_key(3, 2), fail_twice}});
    ExecutionPolicy reuse;
    reuse.retry.max_attempts = 3;
    reuse.plan.backend = backend;
    ASSERT_EQ(reuse.plan.circuit_mode, CircuitMode::kReuse);
    const RegionMap map = sweep_region(spec, reuse);

    EXPECT_EQ(map.failed_points(), 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
    EXPECT_EQ(map.solve_stats().retries, 4u);
    EXPECT_EQ(spice::testing::injections_performed(), 4u);
  }
}

TEST(CircuitReuse, JournalResumeThroughBatchedRows) {
  // Interrupted-run shape across backends: a journaled sweep degrades two
  // injected points, then a second parallel BATCHED run resumes the
  // journal, re-runs only those two (as one-lane rows) and lands on the
  // rebuild path's clean map.
  const SweepSpec spec = small_spec();
  const RegionMap clean = rebuild_reference(spec);
  const std::string path =
      ::testing::TempDir() + "reuse_resume_journal.csv";
  std::remove(path.c_str());

  {
    InjectionSpec dead;
    dead.kind = InjectedFault::kNonConvergence;
    dead.fail_attempts = 100;
    ScopedFaultPlan plan({{grid_point_key(0, 0), dead},
                          {grid_point_key(2, 1), dead}});
    ExecutionPolicy opt;
    opt.retry.max_attempts = 2;
    opt.journal_path = path;
    opt.plan.backend = SolverBackend::kBatched;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.failed_points(), 2u);
  }
  {
    ExecutionPolicy opt;
    opt.threads = 4;
    opt.journal_path = path;
    opt.plan.backend = SolverBackend::kBatched;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.solve_stats().resumed, 10u);
    EXPECT_EQ(map.solve_stats().attempted, 2u);
    EXPECT_EQ(map.failed_points(), 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(CircuitReuse, AdaptiveJournalResumesIntoDenseAndBack) {
  // A journal written by an adaptive batched sweep (evaluated points with
  // attempts >= 1, inferred points with attempts = 0) must resume into a
  // dense scalar rerun with nothing left to do — the maps agree, so the
  // rerun is a pure restore.
  const SweepSpec spec = wide_spec();
  const RegionMap clean = rebuild_reference(spec);
  const std::string path =
      ::testing::TempDir() + "adaptive_resume_journal.csv";
  std::remove(path.c_str());
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    opt.plan.backend = SolverBackend::kBatched;
    opt.plan.adaptive = true;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  {
    ExecutionPolicy opt;
    opt.journal_path = path;
    const RegionMap map = sweep_region(spec, opt);
    EXPECT_EQ(map.solve_stats().resumed,
              spec.r_axis.size() * spec.u_axis.size());
    EXPECT_EQ(map.solve_stats().attempted, 0u);
    EXPECT_EQ(map.to_csv(), clean.to_csv());
  }
  std::remove(path.c_str());
}

TEST(CircuitReuse, CompletionSearchVerdictMatchesRebuild) {
  CompletionSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.base = faults::FaultPrimitive::parse("<1r1/0/0>");
  spec.probe_r = {10e6};
  spec.probe_u = {0.0, 1.65, 3.3};
  spec.max_prefix_ops = 1;

  spec.exec.plan.circuit_mode = CircuitMode::kRebuild;
  const CompletionResult rebuild = search_completing_ops(spec);
  spec.exec.plan.circuit_mode = CircuitMode::kReuse;
  const CompletionResult reuse = search_completing_ops(spec);

  EXPECT_EQ(rebuild.possible, reuse.possible);
  EXPECT_EQ(rebuild.candidates_evaluated, reuse.candidates_evaluated);
  EXPECT_EQ(rebuild.sos_runs, reuse.sos_runs);  // serial: exact counts
  if (rebuild.possible) {
    EXPECT_EQ(rebuild.completed.to_string(), reuse.completed.to_string());
  }

  // The batched backend probes whole rows at once, so early-exit run counts
  // differ by design; the VERDICT must not.
  spec.exec.plan.backend = SolverBackend::kBatched;
  const CompletionResult batched = search_completing_ops(spec);
  EXPECT_EQ(rebuild.possible, batched.possible);
  if (rebuild.possible) {
    EXPECT_EQ(rebuild.completed.to_string(), batched.completed.to_string());
  }
}

}  // namespace
}  // namespace pf::analysis
