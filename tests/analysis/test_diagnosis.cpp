// Fault-dictionary diagnosis from march fail signatures.
#include <gtest/gtest.h>

#include "pf/analysis/diagnosis.hpp"
#include "pf/march/library.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramColumn;
using dram::DramParams;
using dram::OpenSite;

std::vector<Defect> candidate_set() {
  return {
      Defect::open(OpenSite::kBitLineOuter, 10e6),
      Defect::open(OpenSite::kCell, 400e3),
      Defect::open(OpenSite::kIoPath, 100e6),
      Defect::open(OpenSite::kPrecharge, 10e6),
      Defect::short_to_ground(500.0),
      Defect::bridge(500.0),
  };
}

TEST(Diagnosis, SignatureKeyIsCanonical) {
  march::MarchResult pass;
  EXPECT_EQ(signature_key(pass), "PASS");
  march::MarchResult fail;
  fail.fails.push_back({1, 2, 1, 0});
  fail.fails.push_back({3, 0, 0, 1});
  EXPECT_EQ(signature_key(fail), "e1@2:1>0;e3@0:0>1;");
}

TEST(Diagnosis, FaultFreeColumnSignatureIsPass) {
  EXPECT_EQ(simulate_signature(march::march_pf(), DramParams{},
                               Defect::none()),
            "PASS");
}

TEST(Diagnosis, DictionaryRecoversTheInjectedDefect) {
  const auto dict = FaultDictionary::build(march::march_pf(), DramParams{},
                                           candidate_set());
  EXPECT_EQ(dict.size(), candidate_set().size());
  for (const Defect& truth : candidate_set()) {
    DramColumn dut(DramParams{}, truth);
    const auto matches = dict.diagnose(dut);
    ASSERT_FALSE(matches.empty()) << dram::defect_name(truth);
    bool found = false;
    for (const auto& m : matches)
      found |= m.kind == truth.kind && m.site == truth.site;
    EXPECT_TRUE(found) << dram::defect_name(truth) << " not among "
                       << matches.size() << " matches";
  }
}

TEST(Diagnosis, DistinctSignaturesSeparateSomeDefects) {
  const auto dict = FaultDictionary::build(march::march_pf(), DramParams{},
                                           candidate_set());
  EXPECT_GE(dict.distinct_signatures(), 3u);
  EXPECT_LT(dict.distinct_signatures(), dict.size())
      << "some defects alias under a single test (expected)";
}

TEST(Diagnosis, MultiTestDictionaryReducesAmbiguity) {
  const auto single = FaultDictionary::build(march::march_pf(), DramParams{},
                                             candidate_set());
  const auto multi = FaultDictionary::build(
      {march::march_pf(), march::march_c_minus(), march::mats_plus()},
      DramParams{}, candidate_set());
  // More tests can only refine the partition (never merge signatures). The
  // residual groups here — Opens 3/4/5 and short-vs-bridge — are genuinely
  // electrically equivalent on this column, so equality is legitimate.
  EXPECT_GE(multi.distinct_signatures(), single.distinct_signatures());
  // And it still recovers every defect.
  for (const Defect& truth : candidate_set()) {
    DramColumn dut(DramParams{}, truth);
    const auto matches = multi.diagnose(dut);
    bool found = false;
    for (const auto& m : matches)
      found |= m.kind == truth.kind && m.site == truth.site;
    EXPECT_TRUE(found) << dram::defect_name(truth);
  }
}

TEST(Diagnosis, UnknownSignatureReturnsNothing) {
  const auto dict = FaultDictionary::build(march::march_pf(), DramParams{},
                                           candidate_set());
  EXPECT_TRUE(dict.lookup("e9@9:1>0;|").empty());
  EXPECT_TRUE(dict.lookup("PASS|").empty());
}

TEST(Diagnosis, FaultFreeDutYieldsNoCandidates) {
  const auto dict = FaultDictionary::build(march::march_pf(), DramParams{},
                                           candidate_set());
  DramColumn healthy(DramParams{}, Defect::none());
  EXPECT_TRUE(dict.diagnose(healthy).empty());
}

TEST(Diagnosis, DictionaryKeepsItsTestsInOrder) {
  const auto dict = FaultDictionary::build(
      {march::march_pf(), march::mats_plus()}, DramParams{}, candidate_set());
  ASSERT_EQ(dict.tests().size(), 2u);
  EXPECT_EQ(dict.tests()[0].name, march::march_pf().name);
  EXPECT_EQ(dict.tests()[1].name, march::mats_plus().name);
  EXPECT_EQ(dict.size(), candidate_set().size());
  EXPECT_LE(dict.distinct_signatures(), dict.size());
  EXPECT_GE(dict.distinct_signatures(), 1u);
}

TEST(Diagnosis, SignatureOfComposesPerTestSignatures) {
  // signature_of must be exactly the '|'-joined per-test simulate_signature
  // keys — the dictionary's entries are built the same way, so any format
  // drift between the two paths silently breaks every lookup.
  const Defect truth = Defect::open(OpenSite::kCell, 400e3);
  const auto dict = FaultDictionary::build(
      {march::march_pf(), march::mats_plus()}, DramParams{}, candidate_set());
  DramColumn dut(DramParams{}, truth);
  const std::string combined = dict.signature_of(dut);
  const std::string expected =
      simulate_signature(march::march_pf(), DramParams{}, truth) + "|" +
      simulate_signature(march::mats_plus(), DramParams{}, truth) + "|";
  EXPECT_EQ(combined, expected);
  // And the combined key resolves through lookup() just like diagnose().
  bool found = false;
  for (const auto& m : dict.lookup(combined))
    found |= m.kind == truth.kind && m.site == truth.site;
  EXPECT_TRUE(found);
}

TEST(Diagnosis, AllPassCombinedKeyNeverMatchesADefect) {
  // Every multi-test spelling of "no fails anywhere" must yield no
  // candidates, even if some candidate happened to pass every test too.
  const auto dict = FaultDictionary::build(
      {march::march_pf(), march::mats_plus()}, DramParams{}, candidate_set());
  EXPECT_TRUE(dict.lookup("PASS|PASS|").empty());
  EXPECT_TRUE(dict.lookup("PASS").empty());
}

TEST(Diagnosis, SingleTestBuildEqualsOneElementVectorBuild) {
  const auto a = FaultDictionary::build(march::march_pf(), DramParams{},
                                        candidate_set());
  const auto b = FaultDictionary::build(
      std::vector<march::MarchTest>{march::march_pf()}, DramParams{},
      candidate_set());
  ASSERT_EQ(a.tests().size(), 1u);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.distinct_signatures(), b.distinct_signatures());
  DramColumn dut(DramParams{}, candidate_set().front());
  EXPECT_EQ(a.signature_of(dut), b.signature_of(dut));
}

TEST(Diagnosis, ResistanceVariantsOftenShareSignatures) {
  // Two R_def values of the same open in its saturated regime produce the
  // same fail log — diagnosis identifies the LOCATION, not the resistance.
  const auto k1 = simulate_signature(
      march::march_pf(), DramParams{},
      Defect::open(OpenSite::kBitLineOuter, 5e6));
  const auto k2 = simulate_signature(
      march::march_pf(), DramParams{},
      Defect::open(OpenSite::kBitLineOuter, 50e6));
  EXPECT_EQ(k1, k2);
}

}  // namespace
}  // namespace pf::analysis
