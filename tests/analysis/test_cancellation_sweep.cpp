// Cooperative cancellation across the sweep engine, and the NaN/Inf guards
// between the solver and FFM classification. The headline property: a
// cancelled-then-resumed N-thread sweep produces a region map bit-identical
// to an uninterrupted serial run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/region.hpp"
#include "pf/analysis/sos_runner.hpp"
#include "pf/spice/fault_injection.hpp"
#include "pf/util/cancellation.hpp"
#include "pf/util/error.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using spice::testing::InjectedFault;
using spice::testing::InjectionSpec;
using spice::testing::ScopedFaultPlan;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 3);
  spec.u_axis = pf::linspace(0.0, 3.3, 4);
  return spec;
}

std::string temp_journal(const char* name) {
  return ::testing::TempDir() + name;
}

InjectionSpec nan_voltage(int fail_attempts) {
  InjectionSpec s;
  s.kind = InjectedFault::kNanVoltage;
  s.fail_attempts = fail_attempts;
  return s;
}

TEST(SweepCancellation, PreCancelledTokenStopsBeforeAnyPoint) {
  const SweepSpec spec = small_spec();
  for (int threads : {1, 4}) {
    ExecutionPolicy policy;
    policy.threads = threads;
    policy.cancel.request_cancellation();
    EXPECT_THROW(sweep_region(spec, policy), pf::CancelledError)
        << threads << " threads";
  }
}

TEST(SweepCancellation, CancelledErrorIsNotAConvergenceError) {
  // Retry loops catch ConvergenceError (a pf::Error); CancelledError must
  // not be caught by a ConvergenceError handler, or cancellation would be
  // retried like a solver hiccup.
  const pf::CancelledError e("cancelled");
  const pf::Error* as_base = &e;
  EXPECT_EQ(dynamic_cast<const ConvergenceError*>(as_base), nullptr);
  EXPECT_NE(dynamic_cast<const pf::CancelledError*>(as_base), nullptr);
}

TEST(SweepCancellation, SolverWatchdogSeesTheTokenMidPoint) {
  // The token reaches the Simulator through DramParams::sim, so a trip
  // aborts the in-flight transient at the next accepted step — not after
  // the grid point completes.
  SweepSpec spec = small_spec();
  spec.params.sim.cancel.request_cancellation();
  Defect defect = spec.defect;
  defect.resistance = spec.r_axis[0];
  const auto lines = dram::floating_lines_for(defect, spec.params);
  ASSERT_FALSE(lines.empty());
  EXPECT_THROW(
      run_sos(spec.params, defect, &lines[0], spec.u_axis[1], spec.sos),
      pf::CancelledError);
}

TEST(SweepCancellation, ExpiredDeadlineAbortsTheSweep) {
  const SweepSpec spec = small_spec();
  ExecutionPolicy policy;
  policy.deadline_seconds = 1e-9;
  try {
    sweep_region(spec, policy);
    FAIL() << "deadline must abort the sweep";
  } catch (const pf::CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline expired"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepCancellation, DeadlineAndCancelArmingInTheSamePointStopsOnce) {
  // Both triggers arming in the SAME grid point (the progress callback trips
  // the token and arms an already-expired deadline) must behave exactly like
  // one trigger: one CancelledError, the drained prefix journaled, no FAIL
  // rows, and a resume that is bit-identical to an uninterrupted run. The
  // tie-break is deterministic: an explicit cancellation is reported over a
  // deadline expiry (first-arm-wins at the shared-state level; the reason
  // check order breaks the same-instant tie).
  const SweepSpec spec = small_spec();
  const RegionMap serial = sweep_region(spec);
  for (int threads : {1, 4}) {
    const std::string path = temp_journal("cancel_both_journal.csv");
    std::remove(path.c_str());
    ExecutionPolicy policy;
    policy.threads = threads;
    policy.journal_path = path;
    policy.progress = [&policy](size_t done, size_t /*total*/) {
      if (done >= 3) {
        policy.cancel.request_cancellation();
        policy.cancel.arm_deadline_after(1e-12);  // expires immediately
      }
    };
    try {
      sweep_region(spec, policy);
      FAIL() << "both triggers must abort the sweep (" << threads
             << " threads)";
    } catch (const pf::CancelledError& e) {
      EXPECT_NE(std::string(e.what()).find("cancellation requested"),
                std::string::npos)
          << e.what();
    }
    const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
    EXPECT_GE(loaded.entries.size(), 3u);
    EXPECT_EQ(loaded.fail_rows, 0u) << "a cancelled point must never be "
                                       "recorded as a solver failure";
    EXPECT_EQ(loaded.dropped, 0u);
    EXPECT_FALSE(loaded.clean_end);

    ExecutionPolicy resume;
    resume.threads = threads;
    resume.journal_path = path;
    const RegionMap map = sweep_region(spec, resume);
    EXPECT_EQ(map.solve_stats().failed, 0u);
    EXPECT_EQ(map.to_csv(), serial.to_csv()) << threads << " threads";
    std::remove(path.c_str());
  }
}

TEST(SweepCancellation, PreArmedDeadlineAndCancelReportCancellation) {
  // Same-instant tie at sweep start: both already tripped before the first
  // point. The sweep stops before any work and the deterministic tie-break
  // reports the explicit cancellation.
  const SweepSpec spec = small_spec();
  ExecutionPolicy policy;
  policy.cancel.request_cancellation();
  policy.cancel.arm_deadline_after(1e-12);
  EXPECT_TRUE(policy.cancel.deadline_expired() ||
              policy.cancel.cancellation_requested());
  try {
    sweep_region(spec, policy);
    FAIL() << "pre-armed triggers must abort the sweep";
  } catch (const pf::CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("cancellation requested"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepCancellation, CancelledParallelSweepResumesBitIdentical) {
  // THE acceptance property: cancel a 4-thread journaled sweep partway,
  // resume it, and require the final map bit-identical to an uninterrupted
  // serial run. Cancelled points must never be recorded as failures.
  const SweepSpec spec = small_spec();
  const RegionMap serial = sweep_region(spec);  // uninterrupted reference
  const std::string path = temp_journal("cancel_resume_journal.csv");
  std::remove(path.c_str());

  ExecutionPolicy policy;
  policy.threads = 4;
  policy.journal_path = path;
  policy.progress = [&policy](size_t done, size_t /*total*/) {
    if (done >= 3) policy.cancel.request_cancellation();
  };
  EXPECT_THROW(sweep_region(spec, policy), pf::CancelledError);

  // The journal holds the drained prefix: at least the 3 points that
  // completed before the trip, all CRC-valid, no END trailer, no FAIL rows.
  const SweepJournal::LoadResult loaded = SweepJournal::load(path, spec);
  EXPECT_GE(loaded.entries.size(), 3u);
  EXPECT_LT(loaded.entries.size(), 12u);
  EXPECT_EQ(loaded.dropped, 0u);
  EXPECT_EQ(loaded.fail_rows, 0u);
  EXPECT_FALSE(loaded.clean_end);

  // Resume with a fresh policy (new token) and 4 threads.
  ExecutionPolicy resume;
  resume.threads = 4;
  resume.journal_path = path;
  const RegionMap map = sweep_region(spec, resume);
  EXPECT_EQ(map.solve_stats().resumed, loaded.entries.size());
  EXPECT_EQ(map.solve_stats().attempted, 12u - loaded.entries.size());
  EXPECT_EQ(map.solve_stats().failed, 0u);
  EXPECT_EQ(map.to_csv(), serial.to_csv());
  EXPECT_TRUE(SweepJournal::load(path, spec).clean_end);
  std::remove(path.c_str());
}

TEST(SweepCancellation, SerialCancelAlsoResumesBitIdentical) {
  const SweepSpec spec = small_spec();
  const RegionMap serial = sweep_region(spec);
  const std::string path = temp_journal("cancel_serial_journal.csv");
  std::remove(path.c_str());

  ExecutionPolicy policy;
  policy.journal_path = path;
  policy.progress = [&policy](size_t done, size_t /*total*/) {
    if (done == 5) policy.cancel.request_cancellation();
  };
  EXPECT_THROW(sweep_region(spec, policy), pf::CancelledError);
  EXPECT_EQ(SweepJournal::load(path, spec).entries.size(), 5u);

  ExecutionPolicy resume;
  resume.journal_path = path;
  const RegionMap map = sweep_region(spec, resume);
  EXPECT_EQ(map.solve_stats().resumed, 5u);
  EXPECT_EQ(map.solve_stats().attempted, 7u);
  EXPECT_EQ(map.to_csv(), serial.to_csv());
  std::remove(path.c_str());
}

TEST(NanGuard, UnrecoverableNanVoltageDegradesToSolveFailed) {
  // A silently diverged solve (all node voltages NaN, no exception from the
  // engine) must surface as kSolveFailed — never threshold into a bogus
  // fault primitive, never pass as "no fault".
  const SweepSpec spec = small_spec();
  ScopedFaultPlan plan({{grid_point_key(1, 1), nan_voltage(100)}});
  ExecutionPolicy policy;
  policy.retry.max_attempts = 2;
  const RegionMap map = sweep_region(spec, policy);
  EXPECT_EQ(map.failed_points(), 1u);
  EXPECT_EQ(map.grid().at(1, 1), Ffm::kSolveFailed);
  EXPECT_EQ(map.solve_stats().failed, 1u);
  ASSERT_EQ(map.solve_stats().failure_log.size(), 1u);
  EXPECT_NE(map.solve_stats().failure_log[0].find("non-finite"),
            std::string::npos)
      << map.solve_stats().failure_log[0];
}

TEST(NanGuard, TransientNanVoltageIsRetriedToABitIdenticalMap) {
  const SweepSpec spec = small_spec();
  const RegionMap clean = sweep_region(spec);
  ScopedFaultPlan plan({{grid_point_key(0, 0), nan_voltage(1)},
                        {grid_point_key(2, 1), nan_voltage(1)}});
  ExecutionPolicy policy;
  policy.retry.max_attempts = 3;
  const RegionMap map = sweep_region(spec, policy);
  EXPECT_EQ(map.failed_points(), 0u);
  EXPECT_EQ(map.to_csv(), clean.to_csv());
  EXPECT_EQ(map.solve_stats().retries, 2u);
  EXPECT_GE(spice::testing::injections_performed(), 2u);
}

}  // namespace
}  // namespace pf::analysis
