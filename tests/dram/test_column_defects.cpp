// Defective-column behaviour: the electrical mechanisms behind the paper's
// partial faults, exercised directly (no analysis engine yet).
#include <gtest/gtest.h>

#include "pf/dram/column.hpp"

namespace pf::dram {
namespace {

DramParams params() { return DramParams{}; }

TEST(DefectColumn, SmallOpenIsBenign) {
  DramColumn col(params(), Defect::open(OpenSite::kBitLineOuter, 100.0));
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 1);
  col.write(0, 0);
  EXPECT_EQ(col.read(0), 0);
}

// The paper's Figure 1 scenario: a large bit-line open between precharge
// devices and cells. A read-1 works when the floating BL was left high (the
// w1 preconditioned it), but fails destructively when the BL is pulled low
// first — the partial RDF1.
TEST(DefectColumn, BitLineOpenPartialRdf1) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  DramColumn col(params(), defect);
  const auto lines = floating_lines_for(defect, params());
  ASSERT_EQ(lines.size(), 1u);

  // Initialize victim to 1; w1 preconditions the floating BL high.
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 1) << "preconditioned BL must read correctly";

  // Re-initialize, then force the floating BL low: the r1 must now fail and
  // destroy the cell (RDF1 = <1r1/0/0>).
  col.write(0, 1);
  col.apply_floating_voltage(lines[0], 0.0);
  EXPECT_EQ(col.read(0), 0) << "floating-low BL must flip the read";
  EXPECT_EQ(col.cell_logical(0), 0) << "read must be destructive";
}

TEST(DefectColumn, BitLineOpenHighFloatDoesNotFault) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  DramColumn col(params(), defect);
  const auto lines = floating_lines_for(defect, params());
  col.write(0, 1);
  col.apply_floating_voltage(lines[0], 3.0);
  EXPECT_EQ(col.read(0), 1);
  EXPECT_EQ(col.cell_logical(0), 1);
}

// The completing operation of the paper: a w0 to ANOTHER cell on the same
// bit line pulls the floating BL low, so the subsequent r1 always senses the
// fault — <1v [w0BL] r1v/0/0> holds for any initial BL voltage.
TEST(DefectColumn, CompletingWriteZeroSensitizesForAnyFloat) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  const auto lines = floating_lines_for(defect, params());
  for (double u : {0.0, 1.0, 2.0, 3.3}) {
    DramColumn col(params(), defect);
    col.write(0, 1);
    col.apply_floating_voltage(lines[0], u);
    col.write(1, 0);  // completing w0 to the same-BL aggressor
    EXPECT_EQ(col.read(0), 0) << "U = " << u;
    EXPECT_EQ(col.cell_logical(0), 0) << "U = " << u;
  }
}

// Cell open (Open 1): with a large R_def the cell cannot be charged or
// discharged within one write window, and reads fail for defect resistances
// in the paper's 100 kOhm..1 MOhm decade.
TEST(DefectColumn, CellOpenBlocksReads) {
  DramColumn col(params(), Defect::open(OpenSite::kCell, 10e6));
  col.write(0, 1);
  // The stored node barely moved: far from a written 1.
  EXPECT_LT(col.cell_voltage(0), 1.0);
}

TEST(DefectColumn, CellOpenReadZeroFailsWithHighCellFloat) {
  const auto defect = Defect::open(OpenSite::kCell, 400e3);
  DramColumn col(params(), defect);
  col.write(0, 0);
  col.set_cell_voltage(0, 0.8);  // floating cell voltage (Figure 4 sweep)
  EXPECT_EQ(col.read(0), 1)
      << "large R_def blocks the cell's pull-down: bit line stays above the "
         "offset reference and the r0 returns 1";
}

TEST(DefectColumn, CellOpenReadZeroWorksAtSmallRdefSameFloat) {
  const auto defect = Defect::open(OpenSite::kCell, 20e3);
  DramColumn col(params(), defect);
  col.write(0, 0);
  col.set_cell_voltage(0, 0.8);
  EXPECT_EQ(col.read(0), 0)
      << "small R_def lets the 0.8 V cell pull the bit line below reference";
}

TEST(DefectColumn, CellOpenIsolatedCellReadsOne) {
  // With a huge open the bit line receives no signal at all and the offset
  // reference makes the read return 1 for ANY floating cell voltage.
  const auto defect = Defect::open(OpenSite::kCell, 50e6);
  for (double u : {0.0, 1.0, 2.0, 3.3}) {
    DramColumn col(params(), defect);
    col.write(0, 0);
    col.set_cell_voltage(0, u);
    EXPECT_EQ(col.read(0), 1) << "U = " << u;
  }
}

// Word-line open (Open 9): when the floating gate is high, the cell is
// permanently connected and the precharge charges it up — the state fault
// SF0 the paper describes; operations cannot control the gate voltage.
TEST(DefectColumn, WordLineOpenHighGateCausesStateFault) {
  const auto defect = Defect::open(OpenSite::kWordLine, 100e6);
  DramColumn col(params(), defect);
  const auto lines = floating_lines_for(defect, params());
  ASSERT_EQ(lines.size(), 1u);
  col.set_cell_voltage(0, 0.0);  // cell stores 0
  col.apply_floating_voltage(lines[0], 4.5);
  col.idle_cycle();  // precharge with the cell connected
  EXPECT_GT(col.cell_voltage(0), 1.3) << "cell charged up toward VBLEQ";
  EXPECT_EQ(col.cell_logical(0), 1) << "SF0: the stored 0 became a 1";
}

TEST(DefectColumn, WordLineOpenLowGateIsolatesCell) {
  const auto defect = Defect::open(OpenSite::kWordLine, 100e6);
  DramColumn col(params(), defect);
  const auto lines = floating_lines_for(defect, params());
  col.set_cell_voltage(0, 3.3);
  col.apply_floating_voltage(lines[0], 0.0);
  col.read(0);  // word line cannot reach the gate
  EXPECT_GT(col.cell_voltage(0), 3.0) << "cell unreachable, keeps its charge";
}

TEST(DefectColumn, IoOpenBuffersRetainOldData) {
  // Open 8: the output buffer cannot be driven by reads; it retains the last
  // written value (incorrect read faults guarded by the buffer state).
  DramColumn col(params(), Defect::open(OpenSite::kIoPath, 100e6));
  col.write(1, 1);  // shared IO leaves buffer = 1 (driver side of the open)
  EXPECT_EQ(col.output_buffer(), 1);
  col.set_cell_voltage(0, 0.0);
  EXPECT_EQ(col.read(0), 1) << "read cannot update the buffer through the open";
}

TEST(DefectColumn, HardShortToGroundKillsStoredOnes) {
  DramColumn col(params(), Defect::short_to_ground(100.0));
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 0);
}

TEST(DefectColumn, WeakShortIsBenign) {
  DramColumn col(params(), Defect::short_to_ground(100e9));
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 1);
}

TEST(DefectColumn, FloatingLineMetadataMatchesPaperSection2) {
  const DramParams p;
  EXPECT_EQ(floating_lines_for(Defect::open(OpenSite::kCell, 1e6), p)[0].label,
            "Memory cell");
  EXPECT_EQ(
      floating_lines_for(Defect::open(OpenSite::kPrecharge, 1e6), p)[0].label,
      "Bit line");
  EXPECT_EQ(
      floating_lines_for(Defect::open(OpenSite::kWordLine, 1e6), p)[0].label,
      "Word line");
  const auto o7 = floating_lines_for(Defect::open(OpenSite::kSenseAmp, 1e6), p);
  ASSERT_EQ(o7.size(), 2u);
  EXPECT_EQ(o7[0].label, "Reference cell");
  EXPECT_EQ(o7[1].label, "Output buffer");
  EXPECT_TRUE(o7[1].ties_output_buffer);
  // Shorts and bridges float nothing (Section 2).
  EXPECT_TRUE(floating_lines_for(Defect::bridge(1e3), p).empty());
  EXPECT_TRUE(floating_lines_for(Defect::short_to_vdd(1e3), p).empty());
}

TEST(DefectColumn, DefectNamesReadable) {
  EXPECT_EQ(defect_name(Defect::open(OpenSite::kBitLineOuter, 1e6)), "Open 4");
  EXPECT_EQ(defect_name(Defect::none()), "fault-free");
  EXPECT_EQ(open_number(OpenSite::kWordLine), 9);
  EXPECT_EQ(Defect::open(OpenSite::kCell, 150e3).to_string(),
            "Open 1 (R_def = 150 kOhm)");
}

}  // namespace
}  // namespace pf::dram
