// Parameterized DRAM-column properties: data storage across the full
// address/value space, data-background complement symmetry, benign-defect
// thresholds per open site.
#include <gtest/gtest.h>

#include <tuple>

#include "pf/dram/column.hpp"

namespace pf::dram {
namespace {

// --- every (address, value) pair stores and reads back -------------------

class StorageProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StorageProperty, WriteReadRoundTrip) {
  const auto [addr, value] = GetParam();
  DramColumn col(DramParams{}, Defect::none());
  col.write(addr, value);
  EXPECT_EQ(col.read(addr), value);
  // And again after an intervening opposite write elsewhere.
  col.write((addr + 1) % DramColumn::kNumCells, 1 - value);
  EXPECT_EQ(col.read(addr), value);
}

INSTANTIATE_TEST_SUITE_P(AllCells, StorageProperty,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(0, 1)));

// --- complement data background behaves symmetrically --------------------

class ComplementSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(ComplementSymmetry, PatternAndComplementBothHold) {
  const int pattern = GetParam();
  DramColumn col(DramParams{}, Defect::none());
  for (int a = 0; a < DramColumn::kNumCells; ++a)
    col.write(a, (pattern >> a) & 1);
  for (int a = 0; a < DramColumn::kNumCells; ++a)
    EXPECT_EQ(col.read(a), (pattern >> a) & 1) << "pattern " << pattern;
  for (int a = 0; a < DramColumn::kNumCells; ++a)
    col.write(a, 1 - ((pattern >> a) & 1));
  for (int a = 0; a < DramColumn::kNumCells; ++a)
    EXPECT_EQ(col.read(a), 1 - ((pattern >> a) & 1)) << "pattern " << pattern;
}

INSTANTIATE_TEST_SUITE_P(AllBackgrounds, ComplementSymmetry,
                         ::testing::Range(0, 16));

// --- small opens are benign at every site ---------------------------------

class BenignOpenProperty : public ::testing::TestWithParam<OpenSite> {};

TEST_P(BenignOpenProperty, HundredOhmOpenDoesNotDisturbOperation) {
  DramColumn col(DramParams{}, Defect::open(GetParam(), 100.0));
  col.write(0, 1);
  col.write(1, 0);
  EXPECT_EQ(col.read(0), 1);
  EXPECT_EQ(col.read(1), 0);
  col.write(0, 0);
  EXPECT_EQ(col.read(0), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, BenignOpenProperty,
    ::testing::Values(OpenSite::kCell, OpenSite::kRefCell,
                      OpenSite::kPrecharge, OpenSite::kBitLineOuter,
                      OpenSite::kBitLineMid, OpenSite::kBitLineSense,
                      OpenSite::kSenseAmp, OpenSite::kIoPath,
                      OpenSite::kWordLine),
    [](const auto& param_info) {
      return "Open" + std::to_string(open_number(param_info.param));
    });

// --- huge opens always disturb something ----------------------------------

class SevereOpenProperty : public ::testing::TestWithParam<OpenSite> {};

TEST_P(SevereOpenProperty, GigaohmOpenBreaksSomeOperation) {
  // With the line truly floating, at least one of the four basic checks
  // must fail (which one depends on the site).
  DramColumn col(DramParams{}, Defect::open(GetParam(), 1e9));
  int failures = 0;
  col.write(0, 1);
  failures += col.read(0) != 1;
  col.write(0, 0);
  failures += col.read(0) != 0;
  col.write(1, 1);
  failures += col.read(1) != 1;
  failures += col.read(0) != 0;
  EXPECT_GT(failures, 0) << defect_name(Defect::open(GetParam(), 1e9));
}

INSTANTIATE_TEST_SUITE_P(
    ArraySites, SevereOpenProperty,
    ::testing::Values(OpenSite::kCell, OpenSite::kPrecharge,
                      OpenSite::kBitLineOuter, OpenSite::kBitLineMid,
                      OpenSite::kBitLineSense, OpenSite::kSenseAmp,
                      OpenSite::kIoPath, OpenSite::kWordLine),
    [](const auto& param_info) {
      return "Open" + std::to_string(open_number(param_info.param));
    });

// --- cell threshold consistency -------------------------------------------

TEST(ColumnProperties, ReadThresholdSeparatesStoredLevels) {
  const DramParams p;
  DramColumn col(p, Defect::none());
  // A cell just above the threshold reads 1, just below reads 0.
  col.write(0, 0);
  col.set_cell_voltage(0, p.cell_read_threshold() + 0.15);
  EXPECT_EQ(col.read(0), 1);
  col.write(0, 0);
  col.set_cell_voltage(0, p.cell_read_threshold() - 0.15);
  EXPECT_EQ(col.read(0), 0);
}

}  // namespace
}  // namespace pf::dram
