// The batched whole-row engine against its own contract: a BatchedColumnRun
// advancing N lanes in lockstep must reproduce N independent scalar
// DramColumn runs BIT FOR BIT — node voltages, output buffers, read values
// and solver statistics. This is the foundation the batched sweep backend's
// map identity rests on (pf/analysis/region.hpp), checked here without the
// analysis engine in the loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pf/dram/batched_column.hpp"
#include "pf/dram/column.hpp"
#include "pf/util/error.hpp"

namespace pf::dram {
namespace {

DramParams params() { return DramParams{}; }

// One scalar reference trajectory: pristine clone, floating-line injection,
// w1 v / r1 v — the paper's Figure 1 scenario, whose outcome depends
// strongly on U (benign at high U, destructive RDF1 at low U).
struct ScalarRef {
  int read_value = -1;
  int buffer = -1;
  std::vector<double> cells;
  spice::SimStats stats;
};

ScalarRef scalar_reference(const DramColumn& donor, const FloatingLine& line,
                           double u) {
  DramColumn col = donor.clone_fresh();
  col.write(0, 1);
  col.apply_floating_voltage(line, u);
  ScalarRef ref;
  ref.read_value = col.read(0);
  ref.buffer = col.output_buffer();
  for (int addr = 0; addr < col.num_cells(); ++addr)
    ref.cells.push_back(col.cell_voltage(addr));
  ref.stats = col.sim_stats();
  return ref;
}

TEST(BatchedColumn, LockstepMatchesScalarBitForBit) {
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  DramColumn donor(params(), defect);
  const auto lines = floating_lines_for(defect, params());
  ASSERT_EQ(lines.size(), 1u);
  // Lanes spanning the whole U range: fault and no-fault classes mixed, so
  // per-lane Newton trajectories genuinely diverge (different step counts).
  const std::vector<double> us = {0.0, 0.8, 1.65, 2.4, 3.3};

  std::vector<ScalarRef> refs;
  for (double u : us) refs.push_back(scalar_reference(donor, lines[0], u));

  // Same experiment, one lockstep batch. Lanes are seeded from the state
  // AFTER the shared initializing write (exactly how the sweep backend
  // seeds a row), so run the write on a scalar clone first.
  DramColumn seeded = donor.clone_fresh();
  seeded.write(0, 1);
  // A batch seeded pre-injection must replay the remaining ops identically;
  // the donor column passed to the constructor only provides the template
  // and phase schedule.
  BatchedColumnRun batch(donor, us.size());
  for (size_t l = 0; l < us.size(); ++l) {
    // Re-derive the post-write state per lane from the SAME snapshot.
    batch.load_state(l, seeded.save_state());
    batch.apply_floating_voltage(l, lines[0], us[l]);
  }
  batch.read(0);

  for (size_t l = 0; l < us.size(); ++l) {
    SCOPED_TRACE("lane " + std::to_string(l) + " u=" + std::to_string(us[l]));
    ASSERT_FALSE(batch.lane_failed(l)) << batch.lane_error(l);
    EXPECT_EQ(batch.read_value(l, 0), refs[l].read_value);
    EXPECT_EQ(batch.output_buffer(l), refs[l].buffer);
    for (int addr = 0; addr < donor.num_cells(); ++addr)
      EXPECT_EQ(batch.cell_voltage(l, addr), refs[l].cells[size_t(addr)])
          << "cell " << addr << " voltage must match bit for bit";
    EXPECT_EQ(batch.lane_stats(l).steps, refs[l].stats.steps);
    EXPECT_EQ(batch.lane_stats(l).nr_iterations, refs[l].stats.nr_iterations);
    EXPECT_EQ(batch.lane_stats(l).rejected_steps,
              refs[l].stats.rejected_steps);
  }
}

TEST(BatchedColumn, FullOperationSequenceMatchesScalar) {
  // A longer mixed sequence (write both polarities, aggressor ops, idle)
  // through a mid-resistance defect, checked against scalar clones.
  const auto defect = Defect::open(OpenSite::kCell, 1e6);
  DramParams p = params();
  DramColumn donor(p, defect);
  const auto lines = floating_lines_for(defect, p);
  ASSERT_FALSE(lines.empty());
  const std::vector<double> us = {0.3, 1.65, 3.0};

  std::vector<ScalarRef> refs;
  for (double u : us) {
    DramColumn col = donor.clone_fresh();
    col.apply_floating_voltage(lines[0], u);
    col.write(1, 0);
    col.write(0, 1);
    col.idle_cycle();
    ScalarRef ref;
    ref.read_value = col.read(0);
    ref.buffer = col.output_buffer();
    for (int addr = 0; addr < col.num_cells(); ++addr)
      ref.cells.push_back(col.cell_voltage(addr));
    ref.stats = col.sim_stats();
    refs.push_back(ref);
  }

  BatchedColumnRun batch(donor, us.size());
  for (size_t l = 0; l < us.size(); ++l) {
    batch.load_state(l, donor.save_state());
    batch.apply_floating_voltage(l, lines[0], us[l]);
  }
  batch.write(1, 0);
  batch.write(0, 1);
  batch.idle_cycle();
  batch.read(0);

  for (size_t l = 0; l < us.size(); ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    ASSERT_FALSE(batch.lane_failed(l)) << batch.lane_error(l);
    EXPECT_EQ(batch.read_value(l, 0), refs[l].read_value);
    EXPECT_EQ(batch.output_buffer(l), refs[l].buffer);
    for (int addr = 0; addr < donor.num_cells(); ++addr)
      EXPECT_EQ(batch.cell_voltage(l, addr), refs[l].cells[size_t(addr)]);
    EXPECT_EQ(batch.lane_stats(l).steps, refs[l].stats.steps);
    EXPECT_EQ(batch.lane_stats(l).nr_iterations, refs[l].stats.nr_iterations);
    EXPECT_EQ(batch.lane_stats(l).rejected_steps,
              refs[l].stats.rejected_steps);
  }
}

TEST(BatchedColumn, RefusesWallClockWatchdog) {
  // The batched engine is deterministic by construction; a wall-clock
  // watchdog would make lane failure timing-dependent, so the constructor
  // refuses it outright instead of silently ignoring it.
  DramColumn donor(params(), Defect::open(OpenSite::kBitLineOuter, 1e6));
  spice::SimOptions opts = donor.params().sim;
  opts.max_wall_seconds = 1.0;
  donor.set_sim_options(opts);
  EXPECT_THROW(BatchedColumnRun(donor, 2), pf::Error);
}

TEST(BatchedColumn, SolverBackendNamesRoundTrip) {
  using spice::SolverBackend;
  EXPECT_EQ(spice::parse_solver_backend("scalar"), SolverBackend::kScalar);
  EXPECT_EQ(spice::parse_solver_backend("batched"), SolverBackend::kBatched);
  EXPECT_STREQ(spice::solver_backend_name(SolverBackend::kScalar), "scalar");
  EXPECT_STREQ(spice::solver_backend_name(SolverBackend::kBatched), "batched");
  EXPECT_THROW(spice::parse_solver_backend("simd"), pf::Error);
}

}  // namespace
}  // namespace pf::dram
