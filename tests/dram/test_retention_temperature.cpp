// Electrical data retention (leaky-cell defect + pause) and the
// temperature model.
#include <gtest/gtest.h>

#include "pf/dram/column.hpp"
#include "pf/march/library.hpp"
#include "pf/march/test.hpp"

namespace pf::dram {
namespace {

TEST(RetentionCircuit, HealthyCellHoldsThroughMillisecondPause) {
  DramColumn col(DramParams{}, Defect::none());
  col.write(0, 1);
  col.pause(1e-3);
  EXPECT_EQ(col.read(0), 1);
}

TEST(RetentionCircuit, LeakyCellLosesStoredOne) {
  // R_leak = 10 GOhm on a 30 fF cell: tau = 0.3 ms. After 2 ms the 1 is
  // gone. (Real retention-grade leakage is teraohm-scale; the healthy
  // column's gmin floor corresponds to tau ~ 7 ms.)
  DramColumn col(DramParams{}, Defect::leaky_cell(10e9));
  col.write(0, 1);
  col.pause(2e-3);
  EXPECT_LT(col.cell_voltage(0), 0.1);
  EXPECT_EQ(col.read(0), 0);
}

TEST(RetentionCircuit, LeakyCellHoldsZero) {
  DramColumn col(DramParams{}, Defect::leaky_cell(10e9));
  col.write(0, 0);
  col.pause(2e-3);
  EXPECT_EQ(col.read(0), 0) << "leak to ground cannot corrupt a stored 0";
}

TEST(RetentionCircuit, LeakIsImmediateOperationSafe) {
  // Without pauses the leak is invisible: operations are ns-scale.
  DramColumn col(DramParams{}, Defect::leaky_cell(10e9));
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 1);
}

TEST(RetentionCircuit, DrfMarchDetectsLeakyCellOnCircuit) {
  {
    DramColumn col(DramParams{}, Defect::leaky_cell(10e9));
    const auto plain =
        march::run_march(march::mats_plus(), col, DramColumn::kNumCells);
    EXPECT_FALSE(plain.detected) << "no delays: the leak is invisible";
  }
  {
    DramColumn col(DramParams{}, Defect::leaky_cell(10e9));
    const auto drf = march::run_march(march::mats_plus_drf(), col,
                                      DramColumn::kNumCells,
                                      /*delay_seconds=*/2e-3);
    EXPECT_TRUE(drf.detected);
  }
}

TEST(Temperature, NominalIsIdentity) {
  const DramParams p;
  const DramParams q = p.at_temperature(27.0);
  EXPECT_DOUBLE_EQ(q.access.k, p.access.k);
  EXPECT_DOUBLE_EQ(q.access.vt, p.access.vt);
}

TEST(Temperature, HotSiliconIsSlowerAndLeakier) {
  const DramParams p;
  const DramParams hot = p.at_temperature(100.0);
  EXPECT_LT(hot.access.k, p.access.k) << "mobility falls with temperature";
  EXPECT_LT(hot.access.vt, p.access.vt) << "threshold falls with temperature";
  EXPECT_LT(DramParams::leakage_scale(100.0), 0.01)
      << "leakage grows >100x from 27C to 100C";
  EXPECT_GT(DramParams::leakage_scale(-20.0), 10.0);
}

TEST(Temperature, ColumnStillOperatesHotAndCold) {
  for (double celsius : {-20.0, 27.0, 85.0, 125.0}) {
    DramColumn col(DramParams{}.at_temperature(celsius), Defect::none());
    col.write(0, 1);
    col.write(1, 0);
    EXPECT_EQ(col.read(0), 1) << celsius << " C";
    EXPECT_EQ(col.read(1), 0) << celsius << " C";
  }
}

TEST(Temperature, HotLeakyCellFailsAtResistanceThatPassesCold) {
  // The companion-study effect: the same physical leak (nominal 300 GOhm,
  // tau ~ 9 ms) is benign at 27 C but fails retention at 100 C (leakage
  // ~160x larger, tau ~ 57 us).
  const double r_nominal = 300e9;
  {
    DramColumn col(DramParams{}, Defect::leaky_cell(r_nominal));
    col.write(0, 1);
    col.pause(1e-3);
    EXPECT_EQ(col.read(0), 1) << "27 C: holds";
  }
  {
    const double r_hot = r_nominal * DramParams::leakage_scale(100.0);
    DramColumn col(DramParams{}.at_temperature(100.0),
                   Defect::leaky_cell(r_hot));
    col.write(0, 1);
    col.pause(1e-3);
    EXPECT_EQ(col.read(0), 0) << "100 C: decayed";
  }
}

TEST(Temperature, OutOfRangeRejected) {
  EXPECT_THROW(DramParams{}.at_temperature(500.0), pf::Error);
}

TEST(DefectNames, NewKindsReadable) {
  EXPECT_EQ(defect_name(Defect::leaky_cell(1e9)), "Leaky cell");
  EXPECT_EQ(defect_name(Defect::cell_bridge(1e3)), "Bridge cell-cell");
}

TEST(CellBridge, HardBridgeCouplesNeighbours) {
  // A hard bridge between the two same-BL cells makes them share charge:
  // writing opposite values leaves both at an intermediate level and at
  // least one reads back wrong.
  DramColumn col(DramParams{}, Defect::cell_bridge(1e3));
  col.write(0, 1);
  col.write(1, 0);
  const int r0 = col.read(0);
  const int r1 = col.read(1);
  EXPECT_FALSE(r0 == 1 && r1 == 0) << "bridge must corrupt one of the pair";
}

TEST(CellBridge, WeakBridgeIsBenign) {
  DramColumn col(DramParams{}, Defect::cell_bridge(100e9));
  col.write(0, 1);
  col.write(1, 0);
  EXPECT_EQ(col.read(0), 1);
  EXPECT_EQ(col.read(1), 0);
}

}  // namespace
}  // namespace pf::dram
