// Fault-free DRAM column behaviour: storage, read-back, non-destructive
// reads, polarity handling on the complement bit line, output buffer.
#include <gtest/gtest.h>

#include "pf/dram/column.hpp"

namespace pf::dram {
namespace {

class FaultFreeColumn : public ::testing::Test {
 protected:
  DramParams params;
  DramColumn col{params, Defect::none()};
};

TEST_F(FaultFreeColumn, PowerUpStateIsAllZero) {
  for (int a = 0; a < DramColumn::kNumCells; ++a)
    EXPECT_EQ(col.cell_logical(a), 0) << "addr " << a;
}

TEST_F(FaultFreeColumn, WriteOneReadOne) {
  for (int a = 0; a < DramColumn::kNumCells; ++a) {
    col.write(a, 1);
    EXPECT_EQ(col.read(a), 1) << "addr " << a;
  }
}

TEST_F(FaultFreeColumn, WriteZeroReadZero) {
  for (int a = 0; a < DramColumn::kNumCells; ++a) {
    col.write(a, 1);
    col.write(a, 0);
    EXPECT_EQ(col.read(a), 0) << "addr " << a;
  }
}

TEST_F(FaultFreeColumn, ReadsAreNonDestructive) {
  col.write(0, 1);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(col.read(0), 1);
  col.write(0, 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(col.read(0), 0);
}

TEST_F(FaultFreeColumn, CellsAreIndependent) {
  col.write(0, 1);
  col.write(1, 0);
  col.write(2, 1);
  col.write(3, 0);
  EXPECT_EQ(col.read(0), 1);
  EXPECT_EQ(col.read(1), 0);
  EXPECT_EQ(col.read(2), 1);
  EXPECT_EQ(col.read(3), 0);
}

TEST_F(FaultFreeColumn, StoredLevelsAreFullRail) {
  col.write(0, 1);
  EXPECT_GT(col.cell_voltage(0), params.vdd - 0.3);
  col.write(1, 0);
  EXPECT_LT(col.cell_voltage(1), 0.3);
}

TEST_F(FaultFreeColumn, ComplementSidePolarityCancels) {
  // The write drive and the read sense both invert on the complement bit
  // line, so the storage voltage stays in phase with the logical value —
  // but the raw IO/output-buffer data is inverted for BC-attached cells.
  col.write(2, 1);
  EXPECT_GT(col.cell_voltage(2), params.vdd - 0.3);
  EXPECT_EQ(col.cell_logical(2), 1);
  EXPECT_EQ(col.output_buffer(), 0) << "raw IO data is inverted on BC";
  col.write(3, 0);
  EXPECT_LT(col.cell_voltage(3), 0.3);
  EXPECT_EQ(col.cell_logical(3), 0);
  EXPECT_EQ(col.output_buffer(), 1);
}

TEST_F(FaultFreeColumn, ReferenceLevelSitsBelowPrecharge) {
  // The dummy-cell reference offset that makes an isolated bit line read as
  // 1 — the asymmetry behind the paper's Figure 4.
  EXPECT_LT(params.reference_level(), params.vbleq);
  EXPECT_GT(params.reference_level(), params.vbleq - 0.2);
  EXPECT_NEAR(params.cell_read_threshold(), 1.24, 0.1);
}

TEST_F(FaultFreeColumn, RestoreAfterReadRefreshesCell) {
  col.write(0, 1);
  // Degrade the stored level (models leakage), then read: the read must
  // sense correctly and restore the full level.
  col.set_cell_voltage(0, 2.4);
  EXPECT_EQ(col.read(0), 1);
  EXPECT_GT(col.cell_voltage(0), params.vdd - 0.3);
}

TEST_F(FaultFreeColumn, WritesUpdateOutputBufferViaSharedIo) {
  col.write(0, 1);
  EXPECT_EQ(col.output_buffer(), 1);
  col.write(0, 0);
  EXPECT_EQ(col.output_buffer(), 0);
}

TEST_F(FaultFreeColumn, IdleCycleKeepsData) {
  col.write(0, 1);
  col.write(1, 0);
  col.idle_cycle();
  EXPECT_EQ(col.read(0), 1);
  EXPECT_EQ(col.read(1), 0);
}

TEST_F(FaultFreeColumn, OverwriteWithoutIntermediateRead) {
  col.write(0, 1);
  col.write(0, 1);
  EXPECT_EQ(col.read(0), 1);
  col.write(0, 0);
  col.write(0, 0);
  EXPECT_EQ(col.read(0), 0);
}

TEST_F(FaultFreeColumn, BadAddressRejected) {
  EXPECT_THROW(col.write(-1, 0), pf::Error);
  EXPECT_THROW(col.write(4, 0), pf::Error);
  EXPECT_THROW(col.cell_voltage(99), pf::Error);
}

TEST_F(FaultFreeColumn, BadValueRejected) {
  EXPECT_THROW(col.write(0, 2), pf::Error);
  EXPECT_THROW(col.set_output_buffer(5), pf::Error);
}

}  // namespace
}  // namespace pf::dram
