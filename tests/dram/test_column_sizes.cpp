// Parameterized column sizes: correctness must be size-independent, and the
// partial-fault mechanism must hold with more cells per bit line.
#include <gtest/gtest.h>

#include "pf/dram/column.hpp"
#include "pf/march/library.hpp"
#include "pf/march/test.hpp"

namespace pf::dram {
namespace {

class ColumnSize : public ::testing::TestWithParam<int> {
 protected:
  DramParams params() const {
    DramParams p;
    p.cells_per_bl = GetParam();
    return p;
  }
};

TEST_P(ColumnSize, AllAddressesStoreIndependently) {
  DramColumn col(params(), Defect::none());
  ASSERT_EQ(col.num_cells(), 2 * GetParam());
  for (int a = 0; a < col.num_cells(); ++a) col.write(a, a % 2);
  for (int a = 0; a < col.num_cells(); ++a)
    EXPECT_EQ(col.read(a), a % 2) << "addr " << a;
}

TEST_P(ColumnSize, MarchPfPassesFaultFree) {
  DramColumn col(params(), Defect::none());
  EXPECT_FALSE(
      march::run_march(march::march_pf(), col, col.num_cells()).detected);
}

TEST_P(ColumnSize, MarchPfStillDetectsBitLineOpen) {
  DramColumn col(params(), Defect::open(OpenSite::kBitLineOuter, 10e6));
  EXPECT_TRUE(
      march::run_march(march::march_pf(), col, col.num_cells()).detected);
}

TEST_P(ColumnSize, CompletingOperationWorksFromAnySameBlAggressor) {
  // The paper's w0_BL may target ANY cell on the victim's bit line.
  const auto defect = Defect::open(OpenSite::kBitLineOuter, 10e6);
  const auto lines = floating_lines_for(defect, params());
  for (int aggressor = 1; aggressor < GetParam(); ++aggressor) {
    DramColumn col(params(), defect);
    col.write(0, 1);
    col.apply_floating_voltage(lines[0], 3.3);
    col.write(aggressor, 0);  // completing w0 via this aggressor
    EXPECT_EQ(col.read(0), 0) << "aggressor " << aggressor;
  }
}

INSTANTIATE_TEST_SUITE_P(CellsPerBitLine, ColumnSize, ::testing::Values(2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return std::to_string(param_info.param) + "perBL";
                         });

TEST(ColumnSizeLimits, RejectsTooFewCells) {
  DramParams p;
  p.cells_per_bl = 1;
  EXPECT_THROW(DramColumn(p, Defect::none()), pf::Error);
}

}  // namespace
}  // namespace pf::dram
