// Coverage for pf/util/error.hpp: the PF_CHECK / PF_CHECK_MSG message
// format and the exception hierarchy every pf_* library relies on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "pf/util/error.hpp"

namespace pf {
namespace {

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(PF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PF_CHECK_MSG(true, "never " << "streamed"));
}

TEST(Error, CheckMessageCarriesFileLineAndExpression) {
  try {
    PF_CHECK(2 + 2 == 5);
    FAIL() << "PF_CHECK must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("check failed: 2 + 2 == 5"), std::string::npos)
        << what;
  }
}

TEST(Error, CheckMsgAppendsStreamedMessage) {
  const int x = -3;
  try {
    PF_CHECK_MSG(x > 0, "x=" << x << " must be positive");
    FAIL() << "PF_CHECK_MSG must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed: x > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("— x=-3 must be positive"), std::string::npos) << what;
  }
}

TEST(Error, CheckMsgEvaluatesMessageLazily) {
  // The streamed message must not be evaluated when the check passes.
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  PF_CHECK_MSG(true, "count=" << count());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(PF_CHECK_MSG(false, "count=" << count()), Error);
  EXPECT_EQ(evaluations, 1);
}

TEST(Error, HierarchyParseErrorIsCatchableAsError) {
  const auto raise = [] { throw ParseError("bad notation"); };
  EXPECT_THROW(raise(), ParseError);
  try {
    raise();
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad notation");
  }
}

TEST(Error, HierarchyConvergenceErrorIsCatchableAsError) {
  const auto raise = [] { throw ConvergenceError("diverged"); };
  EXPECT_THROW(raise(), ConvergenceError);
  try {
    raise();
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "diverged");
  }
}

TEST(Error, HierarchyRootsInStdRuntimeError) {
  // Callers that only know the standard library still see pf failures.
  try {
    throw ConvergenceError("as runtime_error");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "as runtime_error");
  }
  // Siblings must not be confused with one another.
  bool caught_as_parse = false;
  try {
    throw ConvergenceError("not a parse error");
  } catch (const ParseError&) {
    caught_as_parse = true;
  } catch (const Error&) {
  }
  EXPECT_FALSE(caught_as_parse);
}

}  // namespace
}  // namespace pf
