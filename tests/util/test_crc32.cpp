// Coverage for pf/util/crc32.hpp: known-answer vectors (the zlib/IEEE
// convention the journal v2 rows rely on) and the streaming API.
#include <gtest/gtest.h>

#include <string>

#include "pf/util/crc32.hpp"

namespace pf {
namespace {

TEST(Crc32, KnownAnswerVectors) {
  // The check value every CRC-32/ISO-HDLC implementation must reproduce.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, SensitiveToEveryBit) {
  const std::string row = "0,1,10000,0.3,RDF1,2";
  const uint32_t base = crc32(row);
  for (size_t i = 0; i < row.size(); ++i) {
    std::string flipped = row;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32(flipped), base) << "flip at " << i;
  }
}

TEST(Crc32, StreamingMatchesOneShot) {
  const std::string text = "iy,ix,r_def,u,ffm,attempts";
  uint32_t state = crc32_init();
  state = crc32_update(state, text.substr(0, 7));
  state = crc32_update(state, text.substr(7));
  EXPECT_EQ(crc32_final(state), crc32(text));
}

}  // namespace
}  // namespace pf
