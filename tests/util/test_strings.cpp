#include "pf/util/strings.hpp"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(trim("  a b  c "), "a b  c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrimsFields) {
  const auto parts = split(" x ; y ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(Strings, SplitEmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitNonemptyDropsBlanks) {
  const auto parts = split_nonempty(", a, ,b ,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, JoinRoundTripsSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("RDF1 <0R0/1/1>"), "rdf1 <0r0/1/1>");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("march pf", "march"));
  EXPECT_FALSE(starts_with("ma", "march"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.25, 2), "0.25");
  EXPECT_EQ(format_double(-0.0), "0");
  EXPECT_EQ(format_double(150000.0), "150000");
}

TEST(Strings, FormatDoubleRespectsMaxDecimals) {
  EXPECT_EQ(format_double(1.23456789, 3), "1.235");
}

}  // namespace
}  // namespace pf
