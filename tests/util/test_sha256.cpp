// SHA-256 against FIPS 180-4 known-answer vectors, streaming equivalence,
// and the file-digest helper the result-cache manifests rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "pf/util/quarantine.hpp"
#include "pf/util/sha256.hpp"

namespace pf {
namespace {

TEST(Sha256, KnownAnswerVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MultiBlockAndStreamingAgree) {
  // 200 bytes spans block boundaries; chunked updates must match one-shot.
  std::string msg;
  for (int i = 0; i < 200; ++i) msg.push_back(char('a' + i % 26));
  Sha256 chunked;
  for (size_t i = 0; i < msg.size(); i += 7)
    chunked.update(msg.substr(i, 7));
  EXPECT_EQ(chunked.hex_digest(), sha256_hex(msg));
}

TEST(Sha256, FileDigestMatchesBufferDigest) {
  const std::string path = ::testing::TempDir() + "sha256_file.bin";
  const std::string payload = "r_def,u,ffm\n10000,0.3,RDF1\n";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  EXPECT_EQ(sha256_file_hex(path), sha256_hex(payload));
  std::remove(path.c_str());
  EXPECT_EQ(sha256_file_hex(path), "");  // unreadable = corrupt, not fatal
}

TEST(Quarantine, CounterSuffixNeverOverwritesEvidence) {
  const std::string path = ::testing::TempDir() + "quarantine_me.txt";
  auto write = [&](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  };
  std::remove((path + ".corrupt").c_str());
  std::remove((path + ".corrupt.1").c_str());
  std::remove((path + ".corrupt.2").c_str());

  write("first");
  EXPECT_EQ(quarantine_path(path), path + ".corrupt");
  write("second");
  EXPECT_EQ(quarantine_path(path), path + ".corrupt.1");
  write("third");
  EXPECT_EQ(quarantine_path(path), path + ".corrupt.2");

  auto read = [](const std::string& p) {
    std::ifstream in(p);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(read(path + ".corrupt"), "first");
  EXPECT_EQ(read(path + ".corrupt.1"), "second");
  EXPECT_EQ(read(path + ".corrupt.2"), "third");
  std::remove((path + ".corrupt").c_str());
  std::remove((path + ".corrupt.1").c_str());
  std::remove((path + ".corrupt.2").c_str());
}

TEST(Quarantine, MissingSourceFails) {
  EXPECT_EQ(quarantine_path(::testing::TempDir() + "no_such_artifact"), "");
}

}  // namespace
}  // namespace pf
