#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pf/util/ascii_plot.hpp"
#include "pf/util/csv.hpp"
#include "pf/util/error.hpp"
#include "pf/util/table.hpp"

namespace pf {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"FFM", "Open"});
  t.add_row({"RDF0", "Open 1"});
  t.add_row({"TF up", "Open 9"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| FFM   | Open   |"), std::string::npos);
  EXPECT_NE(s.find("| RDF0  | Open 1 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"name", "value"});
  t.add_row({"completed FP", "<1v [w0,BL] r1v/0/0>"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"<1v [w0,BL] r1v/0/0>\""), std::string::npos);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "pf_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"R_def", "U", "fp"});
    w.write_row({"150000", "1.6", "RDF0"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "R_def,U,fp\n150000,1.6,RDF0\n");
  std::remove(path.c_str());
}

TEST(AsciiPlot, RendersRegionGlyphs) {
  Grid2D<char> g(linspace(0.0, 3.3, 10), logspace(1e3, 1e6, 8), '\0');
  for (size_t ix = 0; ix < 4; ++ix)
    for (size_t iy = 4; iy < 8; ++iy) g.at(ix, iy) = '#';
  AsciiPlotOptions opt;
  opt.title = "RDF1 region";
  opt.y_log = true;
  const std::string s = render_region_map(g, opt);
  EXPECT_NE(s.find("RDF1 region"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
  EXPECT_NE(s.find("U [V]"), std::string::npos);
}

TEST(AsciiPlot, TopRowIsHighestY) {
  // The paper's figures put large R_def at the top; verify orientation.
  Grid2D<char> g(linspace(0.0, 1.0, 4), linspace(0.0, 1.0, 4), '\0');
  g.at(0, 3) = 'T';  // highest y
  AsciiPlotOptions opt;
  const std::string s = render_region_map(g, opt);
  const auto pos_t = s.find('T');
  ASSERT_NE(pos_t, std::string::npos);
  // 'T' must appear before (above) the axis line.
  EXPECT_LT(pos_t, s.find("+--"));
}

}  // namespace
}  // namespace pf
