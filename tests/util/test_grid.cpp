#include "pf/util/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pf/util/error.hpp"

namespace pf {
namespace {

TEST(Linspace, EndpointsExact) {
  const auto v = linspace(0.0, 3.3, 12);
  ASSERT_EQ(v.size(), 12u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.3);
}

TEST(Linspace, UniformSpacing) {
  const auto v = linspace(1.0, 2.0, 5);
  for (size_t i = 0; i + 1 < v.size(); ++i)
    EXPECT_NEAR(v[i + 1] - v[i], 0.25, 1e-12);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(2.5, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
}

TEST(Logspace, EndpointsExactAndMonotone) {
  const auto v = logspace(1e3, 1e7, 9);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_DOUBLE_EQ(v.front(), 1e3);
  EXPECT_DOUBLE_EQ(v.back(), 1e7);
  for (size_t i = 0; i + 1 < v.size(); ++i) EXPECT_LT(v[i], v[i + 1]);
}

TEST(Logspace, GeometricRatio) {
  const auto v = logspace(1.0, 100.0, 3);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
}

TEST(Logspace, RejectsNonPositiveBounds) {
  EXPECT_THROW(logspace(0.0, 10.0, 4), Error);
  EXPECT_THROW(logspace(-1.0, 10.0, 4), Error);
}

TEST(Grid2D, StoresAndRetrieves) {
  Grid2D<int> g(linspace(0, 1, 4), linspace(0, 1, 3), -1);
  EXPECT_EQ(g.width(), 4u);
  EXPECT_EQ(g.height(), 3u);
  EXPECT_EQ(g.at(2, 1), -1);
  g.at(2, 1) = 7;
  EXPECT_EQ(g.at(2, 1), 7);
  EXPECT_EQ(g.at(3, 2), -1);
}

TEST(Grid2D, BoundsChecked) {
  Grid2D<char> g(linspace(0, 1, 2), linspace(0, 1, 2), '.');
  EXPECT_THROW(g.at(2, 0), Error);
  EXPECT_THROW(g.at(0, 2), Error);
}

TEST(Grid2D, EmptyAxesRejected) {
  EXPECT_THROW((Grid2D<int>(std::vector<double>{}, linspace(0, 1, 2))), Error);
}

}  // namespace
}  // namespace pf
