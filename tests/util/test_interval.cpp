#include "pf/util/interval.hpp"

#include <gtest/gtest.h>

#include "pf/util/rng.hpp"

namespace pf {
namespace {

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0.0);
  EXPECT_FALSE(iv.contains(0.0));
}

TEST(Interval, ContainsEndpoints) {
  Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(2.001));
}

TEST(Interval, OverlapAndTouch) {
  Interval a{0.0, 1.0}, b{1.0, 2.0}, c{1.1, 2.0};
  EXPECT_TRUE(a.overlaps(b));  // closed intervals share the point 1.0
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.touches(c, 0.2));
  EXPECT_FALSE(a.touches(c, 0.05));
}

TEST(IntervalSet, InsertMergesOverlapping) {
  IntervalSet s;
  s.insert({0.0, 1.0});
  s.insert({0.5, 2.0});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.parts()[0], (Interval{0.0, 2.0}));
}

TEST(IntervalSet, InsertKeepsDisjointSorted) {
  IntervalSet s;
  s.insert({3.0, 4.0});
  s.insert({0.0, 1.0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.parts()[0], (Interval{0.0, 1.0}));
  EXPECT_EQ(s.parts()[1], (Interval{3.0, 4.0}));
}

TEST(IntervalSet, InsertWithEpsMergesNearbyBands) {
  // Grid-sampled observation bands are merged across one grid cell.
  IntervalSet s;
  s.insert({0.0, 1.0}, 0.15);
  s.insert({1.1, 2.0}, 0.15);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.parts()[0].hi, 2.0);
}

TEST(IntervalSet, InsertBridgingIntervalMergesAll) {
  IntervalSet s;
  s.insert({0.0, 1.0});
  s.insert({2.0, 3.0});
  s.insert({0.5, 2.5});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.parts()[0], (Interval{0.0, 3.0}));
}

TEST(IntervalSet, EmptyInsertIsNoop) {
  IntervalSet s;
  s.insert(Interval{});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CoversFullDomain) {
  IntervalSet s;
  s.insert({0.0, 3.3});
  EXPECT_TRUE(s.covers({0.0, 3.3}, 0.0));
  EXPECT_TRUE(s.covers({0.1, 3.2}, 0.0));
}

TEST(IntervalSet, CoverageDetectsGaps) {
  IntervalSet s;
  s.insert({0.0, 1.0});
  s.insert({2.0, 3.3});
  EXPECT_FALSE(s.covers({0.0, 3.3}, 0.5));
  EXPECT_TRUE(s.covers({0.0, 3.3}, 1.1));
}

TEST(IntervalSet, CoverageDetectsMissingEnds) {
  IntervalSet s;
  s.insert({0.5, 3.3});
  EXPECT_FALSE(s.covers({0.0, 3.3}, 0.2));  // hole at the bottom
  IntervalSet t;
  t.insert({0.0, 2.0});
  EXPECT_FALSE(t.covers({0.0, 3.3}, 0.2));  // hole at the top
}

TEST(IntervalSet, EmptySetCoversNothingButEmptyDomain) {
  IntervalSet s;
  EXPECT_FALSE(s.covers({0.0, 1.0}, 0.5));
  EXPECT_TRUE(s.covers(Interval{}, 0.0));
}

TEST(IntervalSet, HullAndLength) {
  IntervalSet s;
  s.insert({0.0, 1.0});
  s.insert({2.0, 2.5});
  EXPECT_EQ(s.hull(), (Interval{0.0, 2.5}));
  EXPECT_DOUBLE_EQ(s.total_length(), 1.5);
}

TEST(IntervalSet, ToStringIsReadable) {
  IntervalSet s;
  s.insert({0.0, 1.5});
  EXPECT_EQ(s.to_string(), "{[0, 1.5]}");
  EXPECT_EQ(IntervalSet{}.to_string(), "{}");
}

// Property: inserting random intervals always yields disjoint sorted parts,
// and total_length never exceeds the hull length.
TEST(IntervalSetProperty, RandomInsertInvariants) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet s;
    for (int i = 0; i < 40; ++i) {
      const double a = rng.next_double(0.0, 10.0);
      const double b = a + rng.next_double(0.0, 2.0);
      s.insert({a, b});
    }
    const auto& parts = s.parts();
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      EXPECT_LT(parts[i].hi, parts[i + 1].lo);
    }
    EXPECT_LE(s.total_length(), s.hull().length() + 1e-12);
    // Membership agrees with parts.
    for (int probe = 0; probe < 20; ++probe) {
      const double x = rng.next_double(0.0, 12.0);
      bool in_parts = false;
      for (const auto& p : parts) in_parts |= p.contains(x);
      EXPECT_EQ(s.contains(x), in_parts);
    }
  }
}

}  // namespace
}  // namespace pf
