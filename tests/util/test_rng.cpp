#include "pf/util/rng.hpp"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RangedDoubleRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double(1.5, 2.5);
    EXPECT_GE(d, 1.5);
    EXPECT_LT(d, 2.5);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(7), 7u);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);
}

TEST(Rng, RoughlyUniformBuckets) {
  Rng r(5);
  int buckets[8] = {0};
  const int n = 8000;
  for (int i = 0; i < n; ++i) buckets[r.next_below(8)]++;
  for (int b : buckets) {
    EXPECT_GT(b, n / 8 - 200);
    EXPECT_LT(b, n / 8 + 200);
  }
}

}  // namespace
}  // namespace pf
