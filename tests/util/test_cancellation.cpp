// Coverage for pf/util/cancellation.hpp: shared-state token semantics, the
// first-arm-wins deadline, and the SIGINT/SIGTERM handler installation.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <thread>

#include "pf/util/cancellation.hpp"
#include "pf/util/error.hpp"

namespace pf {
namespace {

TEST(CancellationToken, FreshTokenIsNotCancelled) {
  const CancellationToken token;
  EXPECT_FALSE(token.cancellation_requested());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), "not cancelled");
}

TEST(CancellationToken, CopiesShareCancellationState) {
  const CancellationToken token;
  const CancellationToken copy = token;
  copy.request_cancellation();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.cancellation_requested());
  EXPECT_EQ(token.reason(), "cancellation requested");
}

TEST(CancellationToken, DistinctTokensAreIndependent) {
  const CancellationToken a;
  const CancellationToken b;
  a.request_cancellation();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_FALSE(b.stop_requested());
}

TEST(CancellationToken, ExpiredDeadlineTripsStopRequested) {
  const CancellationToken token;
  token.arm_deadline_after(1e-9);  // effectively already expired
  // steady_clock has passed the 1 ns budget by the time we check; spin a
  // moment to be safe on a coarse clock.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.cancellation_requested());
  EXPECT_EQ(token.reason(), "deadline expired");
}

TEST(CancellationToken, FirstArmedDeadlineWins) {
  const CancellationToken token;
  token.arm_deadline_after(3600.0);  // far future
  // A later, already-expired deadline must NOT replace the armed one: the
  // per-sweep policy copies of a multi-sweep driver re-arm as no-ops.
  token.arm_deadline_after(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(token.deadline_expired());
}

TEST(CancellationToken, SameInstantCancelAndDeadlineTieBreaksToCancellation) {
  // When both triggers have armed by the time anyone looks (the "both arm in
  // the same point" case of a sweep), the token stops exactly once and the
  // reported reason deterministically prefers the explicit cancellation —
  // whichever order the two fired in.
  const CancellationToken token;
  token.arm_deadline_after(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  token.request_cancellation();
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.cancellation_requested());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), "cancellation requested");
}

TEST(CancellationToken, NonPositiveDeadlineNeverArms) {
  const CancellationToken token;
  token.arm_deadline_after(0.0);
  token.arm_deadline_after(-5.0);
  EXPECT_FALSE(token.deadline_expired());
}

TEST(SignalCancellation, SigintTripsTheTokenCooperatively) {
  const CancellationToken token;
  {
    SignalCancellation guard(token);
    EXPECT_FALSE(token.stop_requested());
    EXPECT_FALSE(SignalCancellation::signalled());
    std::raise(SIGINT);  // delivered synchronously to this thread
    EXPECT_TRUE(token.cancellation_requested());
    EXPECT_TRUE(SignalCancellation::signalled());
  }
  // Handlers restored: the token stays tripped but new installs start clean.
  const CancellationToken fresh;
  SignalCancellation guard(fresh);
  EXPECT_FALSE(SignalCancellation::signalled());
}

TEST(SignalCancellation, SigtermTripsTheToken) {
  SignalCancellation guard;
  std::raise(SIGTERM);
  EXPECT_TRUE(guard.token().stop_requested());
}

TEST(SignalCancellation, SecondLiveInstanceIsRejected) {
  SignalCancellation first;
  EXPECT_THROW(SignalCancellation second, pf::Error);
}

}  // namespace
}  // namespace pf
