// Parameterized properties over the whole march-test library.
#include <gtest/gtest.h>

#include <algorithm>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/memsim/memory.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Geometry;
using memsim::Guard;
using memsim::Memory;

class MarchLibraryProperty : public ::testing::TestWithParam<MarchTest> {};

TEST_P(MarchLibraryProperty, FaultFreeMemoryPasses) {
  Memory mem(Geometry{8, 4});
  EXPECT_FALSE(run_march(GetParam(), mem, mem.size()).detected);
}

TEST_P(MarchLibraryProperty, OpsExecutedMatchesDeclaredLength) {
  Memory mem(Geometry{8, 4});
  const auto result = run_march(GetParam(), mem, mem.size());
  EXPECT_EQ(result.ops_executed, GetParam().length(mem.size()));
  EXPECT_EQ(mem.operations_executed(), GetParam().length(mem.size()));
}

TEST_P(MarchLibraryProperty, NotationRoundTrips) {
  const MarchTest& t = GetParam();
  EXPECT_EQ(MarchTest::parse(t.to_string()), t);
}

TEST_P(MarchLibraryProperty, DetectsBothFullReadDestructiveFaults) {
  // Every test in the library (all contain at least one read of each
  // value after initialization) detects the unguarded RDF0 and RDF1.
  const Geometry g{8, 4};
  EXPECT_TRUE(
      evaluate_detection(GetParam(), g, Ffm::kRDF0, Guard::none()).detected_all)
      << GetParam().name;
  EXPECT_TRUE(
      evaluate_detection(GetParam(), g, Ffm::kRDF1, Guard::none()).detected_all)
      << GetParam().name;
}

TEST_P(MarchLibraryProperty, DetectsStuckStateFaults) {
  const Geometry g{8, 4};
  EXPECT_TRUE(
      evaluate_detection(GetParam(), g, Ffm::kSF0, Guard::none()).detected_all);
  EXPECT_TRUE(
      evaluate_detection(GetParam(), g, Ffm::kSF1, Guard::none()).detected_all);
}

TEST_P(MarchLibraryProperty, EveryElementHasOps) {
  for (const auto& e : GetParam().elements) EXPECT_FALSE(e.ops.empty());
}

TEST_P(MarchLibraryProperty, FirstElementInitializesBlind) {
  // Convention: the first element of every library test is write-only (it
  // cannot assume any initial memory state).
  const auto& first = GetParam().elements.front();
  for (const auto& op : first.ops)
    EXPECT_FALSE(op.is_read) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Library, MarchLibraryProperty, ::testing::ValuesIn(standard_tests()),
    [](const ::testing::TestParamInfo<MarchTest>& param_info) {
      std::string name = param_info.param.name;
      std::replace_if(name.begin(), name.end(),
                      [](char c) { return !std::isalnum(c); }, '_');
      return name + "_" + std::to_string(param_info.index);
    });

// --- guarded-fault detection is monotone in test strength ----------------

class GuardedRdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(GuardedRdfProperty, MarchPfDetectsGuardedRdfAtEveryColumnCount) {
  const int columns = GetParam();
  const Geometry g{8, columns};
  EXPECT_TRUE(evaluate_detection(march_pf(), g, Ffm::kRDF1,
                                 Guard::bit_line(0))
                  .detected_all)
      << columns << " columns";
  EXPECT_TRUE(evaluate_detection(march_pf(), g, Ffm::kRDF0,
                                 Guard::bit_line(1))
                  .detected_all)
      << columns << " columns";
}

INSTANTIATE_TEST_SUITE_P(ColumnCounts, GuardedRdfProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace pf::march
