// March execution and fault coverage, including the paper's headline result:
// the naive {m(w1,r1)} detects a full RDF1 but MISSES the partial RDF1,
// while March PF detects both.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/memsim/memory.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Geometry;
using memsim::Guard;
using memsim::Memory;

Geometry geom() { return Geometry{8, 4}; }

TEST(MarchRun, FaultFreeMemoryPassesEverything) {
  for (const MarchTest& t : standard_tests()) {
    Memory m(geom());
    const MarchResult r = run_march(t, m, m.size());
    EXPECT_FALSE(r.detected) << t.name;
    EXPECT_EQ(r.ops_executed, t.length(m.size())) << t.name;
  }
}

TEST(MarchRun, FailRecordsCarryLocation) {
  Memory m(geom());
  m.inject({5, Ffm::kRDF1, Guard::none()});
  const MarchResult r = run_march(mats_plus(), m, m.size());
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.fails.front().addr, 5);
  EXPECT_EQ(r.fails.front().expected, 1);
  EXPECT_EQ(r.fails.front().got, 0);
}

TEST(MarchRun, DownOrderVisitsDescending) {
  // A guard-free DRDF1 at the last address: March elements running down
  // visit it first; verify detection works in both orders.
  Memory m(geom());
  m.inject({m.size() - 1, Ffm::kDRDF1, Guard::none()});
  EXPECT_TRUE(run_march(march_y(), m, m.size()).detected);
}

TEST(Coverage, MarchCMinusDetectsStateTransitionAndReadFaults) {
  // March C- detects the SF/TF/RDF/IRF families but — classically — misses
  // deceptive read faults (no back-to-back reads) and write destructive
  // faults (no non-transition writes): 8 of the 12 static FFMs.
  const auto g = geom();
  // (WDF0 is caught by the initial m(w0) writing 0 onto the power-up zero
  // state; WDF1 would need a w1 onto a stored 1, which March C- never does.)
  for (Ffm ffm : {Ffm::kSF0, Ffm::kSF1, Ffm::kTFUp, Ffm::kTFDown, Ffm::kRDF0,
                  Ffm::kRDF1, Ffm::kIRF0, Ffm::kIRF1, Ffm::kWDF0}) {
    EXPECT_TRUE(
        evaluate_detection(march_c_minus(), g, ffm, Guard::none()).detected_all)
        << faults::ffm_name(ffm);
  }
  for (Ffm ffm : {Ffm::kDRDF0, Ffm::kDRDF1, Ffm::kWDF1}) {
    EXPECT_FALSE(
        evaluate_detection(march_c_minus(), g, ffm, Guard::none()).detected_all)
        << faults::ffm_name(ffm);
  }
  EXPECT_DOUBLE_EQ(static_ffm_coverage(march_c_minus(), g), 9.0 / 12.0);
}

TEST(Coverage, MarchSrDetectsDeceptiveReadFaults) {
  // March SR's double reads (r0,r0 / r1,r1) expose the flipped cell that a
  // deceptive read leaves behind.
  for (Ffm ffm : {Ffm::kDRDF0, Ffm::kDRDF1}) {
    EXPECT_TRUE(
        evaluate_detection(march_sr(), geom(), ffm, Guard::none()).detected_all)
        << faults::ffm_name(ffm);
  }
}

TEST(Coverage, MarchSsIsStaticFfmComplete) {
  // The defining property of March SS: all 12 static single-cell FFMs
  // (including DRDF via r,r pairs and WDF via non-transition writes).
  EXPECT_DOUBLE_EQ(static_ffm_coverage(march_ss(), geom()), 1.0);
}

TEST(Coverage, MatsMissesSomeFaults) {
  // MATS (4N) cannot detect everything (e.g. deceptive reads need a
  // re-read); its coverage must be strictly below 1.
  EXPECT_LT(static_ffm_coverage(mats(), geom()), 1.0);
}

TEST(PaperHeadline, NaiveTestDetectsFullRdf1) {
  const auto outcome = evaluate_detection(naive_w1r1(), geom(), Ffm::kRDF1,
                                          Guard::none());
  EXPECT_TRUE(outcome.detected_all);
}

TEST(PaperHeadline, NaiveTestMissesPartialRdf1) {
  // The introduction's point: the w1 preconditions the floating BL high, so
  // the following r1 never sees the guard condition.
  const auto outcome = evaluate_detection(naive_w1r1(), geom(), Ffm::kRDF1,
                                          Guard::bit_line(0));
  EXPECT_EQ(outcome.detected_count, 0);
}

TEST(PaperHeadline, MarchPfDetectsPartialRdf1Everywhere) {
  const auto outcome = evaluate_detection(march_pf(), geom(), Ffm::kRDF1,
                                          Guard::bit_line(0));
  EXPECT_TRUE(outcome.detected_all)
      << "escaped at victim " << outcome.first_escape;
}

TEST(PaperHeadline, MarchPfDetectsComplementaryPartialRdf0) {
  const auto outcome = evaluate_detection(march_pf(), geom(), Ffm::kRDF0,
                                          Guard::bit_line(1));
  EXPECT_TRUE(outcome.detected_all)
      << "escaped at victim " << outcome.first_escape;
}

TEST(PaperHeadline, BufferGuardedIrfsArePartiallyDetectedAtFpLevel) {
  // A buffer-guarded IRF modeled as a single-victim FP is only exposed when
  // some earlier operation left the (shared) buffer at the wrong level right
  // before the victim read; March PF achieves that for a subset of victim
  // locations. The full open-8 *defect* (reads never update the buffer at
  // all) is detected — that claim is verified against the electrical model
  // in the analysis/march integration tests.
  const auto irf0 =
      evaluate_detection(march_pf(), geom(), Ffm::kIRF0, Guard::buffer(1));
  EXPECT_GT(irf0.detected_count, 0);
  const auto irf1 =
      evaluate_detection(march_pf(), geom(), Ffm::kIRF1, Guard::buffer(0));
  EXPECT_GT(irf1.detected_count, 0);
}

TEST(PaperHeadline, HiddenFaultDetectedOnlyWhenActive) {
  // "Not possible" rows of Table 1: when the uncontrollable floating line
  // happens to activate the fault, tests see it; when not, nothing can.
  EXPECT_TRUE(evaluate_detection(march_pf(), geom(), Ffm::kSF0,
                                 Guard::hidden(true))
                  .detected_all);
  EXPECT_EQ(evaluate_detection(march_pf(), geom(), Ffm::kSF0,
                               Guard::hidden(false))
                .detected_count,
            0);
}

TEST(Coverage, PartialFaultsStrictlyHarderThanFull) {
  // Every classical test detects the full RDF1; several miss the partial.
  int full_detections = 0;
  int partial_detections = 0;
  for (const MarchTest& t : standard_tests()) {
    if (evaluate_detection(t, geom(), Ffm::kRDF1, Guard::none()).detected_all)
      ++full_detections;
    if (evaluate_detection(t, geom(), Ffm::kRDF1, Guard::bit_line(0))
            .detected_all)
      ++partial_detections;
  }
  EXPECT_EQ(full_detections, static_cast<int>(standard_tests().size()));
  EXPECT_LT(partial_detections, full_detections);
}

}  // namespace
}  // namespace pf::march
