// March-test synthesis: greedy assembly of tests for chosen fault sets.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/march/synthesis.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Guard;

SynthesisOptions small() {
  SynthesisOptions opt;
  opt.geometry = memsim::Geometry{4, 2};
  return opt;
}

TEST(Synthesis, TrivialTargetYieldsShortTest) {
  const auto result =
      synthesize_march({TargetFault::single(Ffm::kSF1)}, small());
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.test.ops_per_cell(), 4);
  // Verify independently.
  EXPECT_TRUE(evaluate_detection(result.test, small().geometry, Ffm::kSF1,
                                 Guard::none())
                  .detected_all);
}

TEST(Synthesis, CoversAllTwelveStaticFfms) {
  std::vector<TargetFault> targets;
  for (Ffm ffm : faults::all_ffms()) targets.push_back(TargetFault::single(ffm));
  const auto result = synthesize_march(targets, small());
  ASSERT_TRUE(result.success)
      << "detected " << result.detected_targets << "/" << result.total_targets
      << " with " << result.test.to_string();
  // Independent re-check of every target.
  for (Ffm ffm : faults::all_ffms()) {
    EXPECT_TRUE(evaluate_detection(result.test, small().geometry, ffm,
                                   Guard::none())
                    .detected_all)
        << faults::ffm_name(ffm);
  }
}

TEST(Synthesis, CoversThePapersPartialFaults) {
  // The Table 1 guarded faults March PF was built for: a synthesized test
  // must detect them too, at comparable or shorter length.
  const std::vector<TargetFault> targets = {
      TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kRDF0, Guard::bit_line(1)),
      TargetFault::single(Ffm::kIRF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kIRF0, Guard::bit_line(1)),
  };
  const auto result = synthesize_march(targets, small());
  ASSERT_TRUE(result.success) << result.test.to_string();
  EXPECT_LE(result.test.ops_per_cell(), march_pf().ops_per_cell());
}

TEST(Synthesis, SynthesizedTestsAreSelfConsistent) {
  const auto result = synthesize_march(
      {TargetFault::single(Ffm::kRDF1), TargetFault::single(Ffm::kDRDF0)},
      small());
  memsim::Memory clean(small().geometry);
  EXPECT_FALSE(run_march(result.test, clean, clean.size()).detected)
      << "synthesized test must pass a fault-free memory";
}

TEST(Synthesis, CouplingTargetsSupported) {
  using CfKind = faults::CouplingFault::Kind;
  const faults::CouplingFault cfst{CfKind::kState, 1, faults::Op::Kind::kWrite0,
                                   0};
  const auto result =
      synthesize_march({TargetFault::coupled(cfst)}, small());
  ASSERT_TRUE(result.success) << result.test.to_string();
  EXPECT_TRUE(evaluate_coupling_detection(result.test, small().geometry, cfst)
                  .detected_all);
}

TEST(Synthesis, ImpossibleTargetReportsFailure) {
  // An inactive hidden fault cannot be detected by anything.
  const auto result = synthesize_march(
      {TargetFault::single(Ffm::kSF0, Guard::hidden(false))}, small());
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.detected_targets, 0);
}

TEST(Synthesis, ReversePassPrunesElements) {
  // With a single easy target, the greedy + prune pipeline must not keep
  // more than the initialization plus two elements.
  const auto result =
      synthesize_march({TargetFault::single(Ffm::kRDF0)}, small());
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.test.elements.size(), 3u) << result.test.to_string();
}

TEST(Synthesis, TargetNamesReadable) {
  EXPECT_EQ(TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)).name(),
            "RDF1|BL=0");
  EXPECT_EQ(TargetFault::single(Ffm::kIRF0, Guard::buffer(1)).name(),
            "IRF0|buf=1");
  using CfKind = faults::CouplingFault::Kind;
  EXPECT_EQ(TargetFault::coupled(
                faults::CouplingFault{CfKind::kState, 1,
                                      faults::Op::Kind::kWrite0, 0})
                .name(),
            "CFst<1;0->1>");
}

TEST(Synthesis, RejectsEmptyTargetList) {
  EXPECT_THROW(synthesize_march({}, small()), pf::Error);
}

}  // namespace
}  // namespace pf::march
