// March-test synthesis: greedy assembly of tests for chosen fault sets.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/march/synthesis.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Guard;

SynthesisOptions small() {
  SynthesisOptions opt;
  opt.geometry = memsim::Geometry{4, 2};
  return opt;
}

TEST(Synthesis, TrivialTargetYieldsShortTest) {
  const auto result =
      synthesize_march({TargetFault::single(Ffm::kSF1)}, small());
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.test.ops_per_cell(), 4);
  // Verify independently.
  EXPECT_TRUE(evaluate_detection(result.test, small().geometry, Ffm::kSF1,
                                 Guard::none())
                  .detected_all);
}

TEST(Synthesis, CoversAllTwelveStaticFfms) {
  std::vector<TargetFault> targets;
  for (Ffm ffm : faults::all_ffms()) targets.push_back(TargetFault::single(ffm));
  const auto result = synthesize_march(targets, small());
  ASSERT_TRUE(result.success)
      << "detected " << result.detected_targets << "/" << result.total_targets
      << " with " << result.test.to_string();
  // Independent re-check of every target.
  for (Ffm ffm : faults::all_ffms()) {
    EXPECT_TRUE(evaluate_detection(result.test, small().geometry, ffm,
                                   Guard::none())
                    .detected_all)
        << faults::ffm_name(ffm);
  }
}

TEST(Synthesis, CoversThePapersPartialFaults) {
  // The Table 1 guarded faults March PF was built for: a synthesized test
  // must detect them too, at comparable or shorter length.
  const std::vector<TargetFault> targets = {
      TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kRDF0, Guard::bit_line(1)),
      TargetFault::single(Ffm::kIRF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kIRF0, Guard::bit_line(1)),
  };
  const auto result = synthesize_march(targets, small());
  ASSERT_TRUE(result.success) << result.test.to_string();
  EXPECT_LE(result.test.ops_per_cell(), march_pf().ops_per_cell());
}

TEST(Synthesis, SynthesizedTestsAreSelfConsistent) {
  const auto result = synthesize_march(
      {TargetFault::single(Ffm::kRDF1), TargetFault::single(Ffm::kDRDF0)},
      small());
  memsim::Memory clean(small().geometry);
  EXPECT_FALSE(run_march(result.test, clean, clean.size()).detected)
      << "synthesized test must pass a fault-free memory";
}

TEST(Synthesis, CouplingTargetsSupported) {
  using CfKind = faults::CouplingFault::Kind;
  const faults::CouplingFault cfst{CfKind::kState, 1, faults::Op::Kind::kWrite0,
                                   0};
  const auto result =
      synthesize_march({TargetFault::coupled(cfst)}, small());
  ASSERT_TRUE(result.success) << result.test.to_string();
  EXPECT_TRUE(evaluate_coupling_detection(result.test, small().geometry, cfst)
                  .detected_all);
}

TEST(Synthesis, ImpossibleTargetReportsFailure) {
  // An inactive hidden fault cannot be detected by anything.
  const auto result = synthesize_march(
      {TargetFault::single(Ffm::kSF0, Guard::hidden(false))}, small());
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.detected_targets, 0);
}

TEST(Synthesis, ReversePassPrunesElements) {
  // With a single easy target, the greedy + prune pipeline must not keep
  // more than the initialization plus two elements.
  const auto result =
      synthesize_march({TargetFault::single(Ffm::kRDF0)}, small());
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.test.elements.size(), 3u) << result.test.to_string();
}

TEST(Synthesis, TargetNamesReadable) {
  EXPECT_EQ(TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)).name(),
            "RDF1|BL=0");
  EXPECT_EQ(TargetFault::single(Ffm::kIRF0, Guard::buffer(1)).name(),
            "IRF0|buf=1");
  using CfKind = faults::CouplingFault::Kind;
  EXPECT_EQ(TargetFault::coupled(
                faults::CouplingFault{CfKind::kState, 1,
                                      faults::Op::Kind::kWrite0, 0})
                .name(),
            "CFst<1;0->1>");
}

TEST(Synthesis, RejectsEmptyTargetList) {
  EXPECT_THROW(synthesize_march({}, small()), pf::Error);
}

TEST(Synthesis, PrunedTestKeepsEveryDetectedUnitUnderPartialDetection) {
  // Regression: the reverse prune used to compare detected-unit COUNTS, so
  // under incomplete detection it could accept a drop that trades a
  // detected unit for a different one of equal count. The prune must only
  // accept drops whose detection is a SUPERSET of the kept test's: the
  // classes the grow phase covered stay fully covered after pruning.
  //
  // This mix is deliberately not fully synthesizable (the hidden-inactive
  // target is undetectable, and WDF0|BL=1 stalls the greedy grow loop in
  // this context), so the prune runs in the incomplete-detection regime
  // the bug lived in.
  std::vector<TargetFault> targets = {
      TargetFault::single(Ffm::kSF0, Guard::hidden(false)),  // undetectable
      TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kWDF0, Guard::bit_line(1)),
      TargetFault::single(Ffm::kTFDown),
  };
  const auto result = synthesize_march(targets, small());
  EXPECT_FALSE(result.success);
  EXPECT_GE(result.detected_targets, 2);
  // The classes the grow phase detects must survive the prune intact —
  // count-trading would let one of these lose units to the stalled WDF0.
  EXPECT_TRUE(evaluate_detection(result.test, small().geometry, Ffm::kRDF1,
                                 Guard::bit_line(0))
                  .detected_all)
      << result.test.to_string();
  EXPECT_TRUE(evaluate_detection(result.test, small().geometry, Ffm::kTFDown,
                                 Guard::none())
                  .detected_all)
      << result.test.to_string();
}

TEST(Synthesis, EvaluationsCountMarchPassesPerEngine) {
  // Regression for the evaluation accounting: the scalar engine pays one
  // march pass per fault instance, the plane engine one per candidate —
  // the reported `evaluations` must reflect the engine actually used.
  const std::vector<TargetFault> targets = {
      TargetFault::single(Ffm::kRDF1), TargetFault::single(Ffm::kWDF0)};
  SynthesisOptions plane = small();
  SynthesisOptions scalar = small();
  scalar.engine = MemEngine::kScalar;
  const auto plane_result = synthesize_march(targets, plane);
  const auto scalar_result = synthesize_march(targets, scalar);
  ASSERT_TRUE(plane_result.success);
  ASSERT_TRUE(scalar_result.success);
  EXPECT_GT(plane_result.evaluations, 0u);
  EXPECT_GT(scalar_result.evaluations, plane_result.evaluations);
  // Both engines assemble the same test (plane is A/B-identical to scalar).
  EXPECT_EQ(plane_result.test.to_string(), scalar_result.test.to_string());
}

TEST(Synthesis, GreedyIsDeterministic) {
  std::vector<TargetFault> targets;
  for (Ffm ffm : faults::all_ffms())
    targets.push_back(TargetFault::single(ffm));
  const auto a = synthesize_march(targets, small());
  const auto b = synthesize_march(targets, small());
  EXPECT_EQ(a.test.to_string(), b.test.to_string());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

}  // namespace
}  // namespace pf::march
