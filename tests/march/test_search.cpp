// The march-test search optimizer, verified end-to-end against the SCALAR
// oracle: every returned test is re-checked one fault instance at a time on
// the reference engine, every necessity witness is replayed (removing the
// cited piece really does let the cited target x victim escape), and the
// determinism contract (same seed + budget => byte-identical result) is
// enforced directly.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/march/search.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Guard;

const memsim::Geometry kGeom{4, 2};

SearchOptions small(std::uint64_t budget = 2000) {
  SearchOptions opt;
  opt.synthesis.geometry = kGeom;
  opt.synthesis.budget.max_evaluations = budget;
  return opt;
}

std::vector<PopulationClass> classes_for(const std::vector<TargetFault>& ts) {
  std::vector<PopulationClass> classes;
  for (const TargetFault& t : ts)
    classes.push_back(t.coupling.has_value()
                          ? PopulationClass::coupled(*t.coupling, t.guard)
                          : PopulationClass::single(t.ffm, t.guard));
  return classes;
}

/// The oracle: per-instance scalar evaluation of `test` over `targets`.
PopulationCoverage scalar_coverage(const MarchTest& test,
                                   const std::vector<TargetFault>& targets) {
  return evaluate_population(test, kGeom, classes_for(targets),
                             MemEngine::kScalar);
}

TEST(Search, ScalarOracleConfirmsEveryStandardSet) {
  for (const NamedTargetSet& set : standard_target_sets()) {
    const SearchResult result = search_march(set.targets, small());
    if (!result.success) continue;  // table1-full is not fully detectable
    // Fault-free self-consistency on the plain scalar memory.
    memsim::Memory clean(kGeom);
    EXPECT_FALSE(run_march(result.test, clean, clean.size()).detected)
        << set.name << ": " << result.test.to_string();
    // Every target class fully detected, judged instance by instance.
    const PopulationCoverage oracle = scalar_coverage(result.test, set.targets);
    for (const PopulationOutcome& po : oracle.classes)
      EXPECT_TRUE(po.outcome.detected_all)
          << set.name << ": " << po.cls.name() << " escapes "
          << result.test.to_string();
  }
}

TEST(Search, NeverWorseThanGreedyOrMarchPf) {
  for (const NamedTargetSet& set : standard_target_sets()) {
    const SearchResult result = search_march(set.targets, small());
    if (!result.success) continue;
    if (result.greedy.success)
      EXPECT_LE(result.ops_per_cell, result.greedy.test.ops_per_cell())
          << set.name;
    EXPECT_LE(result.ops_per_cell, march_pf().ops_per_cell()) << set.name;
  }
}

TEST(Search, CertificateReplaysOnTheScalarOracle) {
  const auto sets = standard_target_sets();
  const NamedTargetSet& set = sets[1];  // table1-read
  const SearchResult result = search_march(set.targets, small());
  ASSERT_TRUE(result.success);
  ASSERT_TRUE(result.certificate.complete);
  // 1-minimality: every element and (for multi-op elements) every op has a
  // witness.
  std::size_t expected = 0;
  for (const MarchElement& el : result.test.elements) {
    if (result.test.elements.size() > 1) ++expected;
    if (el.ops.size() > 1) expected += el.ops.size();
  }
  EXPECT_EQ(result.certificate.witnesses.size(), expected);

  for (const NecessityWitness& w : result.certificate.witnesses) {
    // Replay: remove the cited piece and re-judge on the scalar engine.
    MarchTest removed = result.test;
    ASSERT_LT(w.element, removed.elements.size());
    if (w.piece == NecessityWitness::Piece::kElement) {
      removed.elements.erase(removed.elements.begin() +
                             static_cast<std::ptrdiff_t>(w.element));
    } else {
      auto& ops = removed.elements[w.element].ops;
      ASSERT_GE(w.op, 0);
      ASSERT_LT(static_cast<std::size_t>(w.op), ops.size());
      ops.erase(ops.begin() + w.op);
    }
    if (w.reason == NecessityWitness::Reason::kInconsistent) {
      memsim::Memory clean(kGeom);
      EXPECT_TRUE(run_march(removed, clean, clean.size()).detected)
          << w.to_string(result.test);
      continue;
    }
    // The cited target must no longer be fully detected, and the cited
    // victim must be among the escapes.
    const PopulationCoverage oracle = scalar_coverage(removed, set.targets);
    bool found = false;
    for (const PopulationOutcome& po : oracle.classes) {
      if (po.cls.name() != w.target) continue;
      found = true;
      EXPECT_FALSE(po.outcome.detected_all) << w.to_string(result.test);
      ASSERT_LT(static_cast<std::size_t>(w.victim), po.detected.size());
      EXPECT_FALSE(po.detected[static_cast<std::size_t>(w.victim)])
          << w.to_string(result.test);
    }
    EXPECT_TRUE(found) << "witness cites unknown target " << w.target;
  }
}

TEST(Search, SameSeedSameBudgetIsByteIdentical) {
  const auto sets = standard_target_sets();
  const NamedTargetSet& set = sets[2];  // table1-write: a non-trivial trace
  const SearchResult a = search_march(set.targets, small());
  const SearchResult b = search_march(set.targets, small());
  EXPECT_EQ(a.test.to_string(), b.test.to_string());
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.certificate.witnesses.size(), b.certificate.witnesses.size());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].test.to_string(), b.trace[i].test.to_string());
    EXPECT_EQ(a.trace[i].evaluation, b.trace[i].evaluation);
    EXPECT_EQ(a.trace[i].move, b.trace[i].move);
  }
}

TEST(Search, DifferentSeedsMayDifferButStayVerified) {
  const auto sets = standard_target_sets();
  SearchOptions opt = small(500);
  opt.synthesis.budget.seed = 1234567;
  const SearchResult result = search_march(sets[3].targets, opt);
  ASSERT_TRUE(result.success);
  const PopulationCoverage oracle =
      scalar_coverage(result.test, sets[3].targets);
  for (const PopulationOutcome& po : oracle.classes)
    EXPECT_TRUE(po.outcome.detected_all) << po.cls.name();
}

TEST(Search, RespectsTheEvaluationBudget) {
  SearchOptions opt = small(64);
  opt.certify = false;  // certification is deadline-bounded, not eval-bounded
  const SearchResult result =
      search_march({TargetFault::single(Ffm::kRDF1)}, opt);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.budget_exhausted);
  // One in-flight score may overshoot by its own march passes, never more.
  EXPECT_LE(result.evaluations, 64u + 16u);
}

TEST(Search, PreCancelledTokenStillReturnsAFeasibleIncumbent) {
  SearchOptions opt = small();
  opt.synthesis.budget.cancel.request_cancellation();
  const SearchResult result =
      search_march({TargetFault::single(Ffm::kRDF1)}, opt);
  // Anytime contract: the seeding incumbent comes back, flagged cancelled,
  // with an incomplete certificate — never an exception.
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.certificate.complete);
  const PopulationCoverage oracle =
      scalar_coverage(result.test, {TargetFault::single(Ffm::kRDF1)});
  EXPECT_TRUE(oracle.classes[0].outcome.detected_all);
}

TEST(Search, ExtraIncumbentSeedsTheArchive) {
  const auto sets = standard_target_sets();
  const NamedTargetSet& set = sets.back();  // cfst-pair
  SearchOptions opt = small(0);             // seeding only, no SA loop
  opt.certify = false;
  opt.extra_incumbents.push_back(
      MarchTest::parse("{ u(r0,w1); u(r1,w0,r0) }", "journaled"));
  const SearchResult result = search_march(set.targets, opt);
  ASSERT_TRUE(result.success);
  // The 5N incumbent beats both greedy (6N) and March PF (16N).
  EXPECT_EQ(result.ops_per_cell, 5);
  bool seeded_from_incumbent = false;
  for (const SearchImprovement& imp : result.trace)
    seeded_from_incumbent |= imp.move == "seed:incumbent";
  EXPECT_TRUE(seeded_from_incumbent);
}

TEST(Search, InfeasibleExtraIncumbentsAreDropped) {
  SearchOptions opt = small(200);
  opt.certify = false;
  // Detects nothing / fails fault-free: both must be silently skipped.
  opt.extra_incumbents.push_back(MarchTest::parse("{ u(w0) }", "useless"));
  opt.extra_incumbents.push_back(MarchTest::parse("{ u(r1) }", "inconsistent"));
  const SearchResult result =
      search_march({TargetFault::single(Ffm::kRDF1)}, opt);
  EXPECT_TRUE(result.success);
  for (const SearchImprovement& imp : result.trace)
    EXPECT_NE(imp.move, "seed:incumbent");
}

TEST(Search, ImprovementCallbackSeesEveryTraceEntry) {
  const auto sets = standard_target_sets();
  SearchOptions opt = small(1000);
  std::vector<std::string> seen;
  opt.on_improvement = [&seen](const SearchImprovement& imp) {
    seen.push_back(imp.test.to_string());
  };
  const SearchResult result = search_march(sets[2].targets, opt);
  ASSERT_EQ(seen.size(), result.trace.size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], result.trace[i].test.to_string());
}

TEST(Search, UndetectableTargetReportsFailureUncertified) {
  const SearchResult result = search_march(
      {TargetFault::single(Ffm::kSF0, Guard::hidden(false))}, small(100));
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.certificate.complete);
  EXPECT_TRUE(result.trace.empty());
}

TEST(Search, RejectsEmptyTargetList) {
  EXPECT_THROW(search_march({}, small()), pf::Error);
}

TEST(Search, SynthesizeMarchRoutesThroughSearchStrategy) {
  const auto sets = standard_target_sets();
  SynthesisOptions opt;
  opt.geometry = kGeom;
  opt.strategy = SearchStrategy::kSearch;
  opt.budget.max_evaluations = 2000;
  const SynthesisResult via = synthesize_march(sets[2].targets, opt);
  ASSERT_TRUE(via.success);
  EXPECT_EQ(via.detected_targets, via.total_targets);
  // Same knobs through the direct entry point: identical test.
  const SearchResult direct = search_march(sets[2].targets, small());
  EXPECT_EQ(via.test.to_string(), direct.test.to_string());
  // Routed evaluations include both the search and its greedy seeding.
  EXPECT_EQ(via.evaluations, direct.evaluations + direct.greedy.evaluations);
}

TEST(Search, WitnessLinesNameThePieceAndTheEscape) {
  const auto sets = standard_target_sets();
  const SearchResult result = search_march(sets[1].targets, small());
  ASSERT_TRUE(result.certificate.complete);
  ASSERT_FALSE(result.certificate.witnesses.empty());
  for (const NecessityWitness& w : result.certificate.witnesses) {
    const std::string line = w.to_string(result.test);
    EXPECT_NE(line.find("=>"), std::string::npos) << line;
    if (w.reason == NecessityWitness::Reason::kEscape)
      EXPECT_NE(line.find(w.target), std::string::npos) << line;
    else
      EXPECT_NE(line.find("fault-free"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace pf::march
