// Word-oriented march application and the data-background requirement for
// intra-word coupling faults.
#include <gtest/gtest.h>

#include "pf/march/library.hpp"
#include "pf/march/word.hpp"
#include "pf/memsim/word_memory.hpp"

namespace pf::march {
namespace {

using faults::CouplingFault;
using faults::Op;
using memsim::WordMemory;
using CfKind = CouplingFault::Kind;

TEST(WordMemory, WordRoundTrip) {
  WordMemory mem(8, 8);
  EXPECT_EQ(mem.size(), 8);
  EXPECT_EQ(mem.width(), 8);
  mem.write(3, 0xA5);
  EXPECT_EQ(mem.read(3), 0xA5u);
  mem.write(3, 0x00);
  EXPECT_EQ(mem.read(3), 0x00u);
}

TEST(WordMemory, BitMappingIsWordMajor) {
  WordMemory mem(4, 8);
  EXPECT_EQ(mem.cell_of(0, 0), 0);
  EXPECT_EQ(mem.cell_of(0, 7), 7);
  EXPECT_EQ(mem.cell_of(1, 0), 8);
  mem.write(1, 0x01);
  EXPECT_EQ(mem.bits().cell(8), 1);
  EXPECT_EQ(mem.bits().cell(9), 0);
}

TEST(WordMemory, RejectsBadArguments) {
  EXPECT_THROW(WordMemory(0, 8), pf::Error);
  EXPECT_THROW(WordMemory(8, 0), pf::Error);
  EXPECT_THROW(WordMemory(8, 65), pf::Error);
  WordMemory mem(4, 8);
  EXPECT_THROW(mem.write(0, 0x100), pf::Error);
  EXPECT_THROW(mem.write(9, 0), pf::Error);
  EXPECT_THROW(mem.cell_of(0, 8), pf::Error);
}

TEST(Backgrounds, StandardSetSizeIsLogPlusOne) {
  EXPECT_EQ(standard_backgrounds(1).size(), 1u);
  EXPECT_EQ(standard_backgrounds(2).size(), 2u);
  EXPECT_EQ(standard_backgrounds(4).size(), 3u);
  EXPECT_EQ(standard_backgrounds(8).size(), 4u);
  EXPECT_EQ(standard_backgrounds(16).size(), 5u);
  EXPECT_EQ(standard_backgrounds(32).size(), 6u);
  EXPECT_EQ(standard_backgrounds(64).size(), 7u);
}

TEST(Backgrounds, EightBitPatternsAreTheClassicSet) {
  const auto b = standard_backgrounds(8);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x00u);
  EXPECT_EQ(b[1], 0xAAu);  // bit b set iff b odd: 10101010
  EXPECT_EQ(b[2], 0xCCu);  // 11001100
  EXPECT_EQ(b[3], 0xF0u);  // 11110000
}

TEST(Backgrounds, EveryBitPairIsDistinguished) {
  for (int width : {2, 4, 8, 16, 32, 64}) {
    const auto bgs = standard_backgrounds(width);
    for (int i = 0; i < width; ++i)
      for (int j = i + 1; j < width; ++j) {
        bool distinguished = false;
        for (std::uint64_t bg : bgs)
          distinguished |= ((bg >> i) & 1u) != ((bg >> j) & 1u);
        EXPECT_TRUE(distinguished)
            << "width " << width << " bits " << i << "," << j;
      }
  }
}

TEST(WordMarch, FaultFreePassesAllBackgrounds) {
  WordMemory mem(8, 8);
  const auto result = run_march_backgrounds(march_c_minus(), mem,
                                            standard_backgrounds(8));
  EXPECT_FALSE(result.detected);
  EXPECT_EQ(result.ops_executed, 4u * march_c_minus().length(8));
}

TEST(WordMarch, BitLevelFaultCaughtUnderSolidBackground) {
  WordMemory mem(8, 8);
  mem.bits().inject({mem.cell_of(2, 5), faults::Ffm::kRDF1,
                     memsim::Guard::none()});
  EXPECT_TRUE(run_march_word(march_c_minus(), mem, 0x00).detected);
}

TEST(WordMarch, IntraWordStateCouplingHidesUnderSolidBackground) {
  // CFst<1; 0->1> between two bits of the same word: with solid backgrounds
  // every bit of a word always carries the same value, so "aggressor bit 1
  // while victim bit 0" never occurs inside one word.
  WordMemory mem(8, 8);
  mem.bits().inject_coupling({mem.cell_of(2, 6), mem.cell_of(2, 1),
                              {CfKind::kState, 1, Op::Kind::kWrite0, 0},
                              memsim::Guard::none()});
  EXPECT_FALSE(run_march_word(march_c_minus(), mem, 0x00).detected)
      << "solid background cannot expose the intra-word state coupling";
}

TEST(WordMarch, IntraWordStateCouplingCaughtWithStandardBackgrounds) {
  WordMemory mem(8, 8);
  mem.bits().inject_coupling({mem.cell_of(2, 6), mem.cell_of(2, 1),
                              {CfKind::kState, 1, Op::Kind::kWrite0, 0},
                              memsim::Guard::none()});
  EXPECT_TRUE(run_march_backgrounds(march_c_minus(), mem,
                                    standard_backgrounds(8))
                  .detected);
}

TEST(WordMarch, EveryIntraWordBitPairCovered) {
  // Sweep the state coupling over every (aggressor, victim) bit pair of one
  // word: the standard background set exposes all of them (its defining
  // property: every bit pair differs in some background).
  for (int a = 0; a < 8; ++a) {
    for (int v = 0; v < 8; ++v) {
      if (a == v) continue;
      WordMemory mem(4, 8);
      mem.bits().inject_coupling({mem.cell_of(1, a), mem.cell_of(1, v),
                                  {CfKind::kState, 1, Op::Kind::kWrite0, 0},
                                  memsim::Guard::none()});
      EXPECT_TRUE(run_march_backgrounds(march_c_minus(), mem,
                                        standard_backgrounds(8))
                      .detected)
          << "bits " << a << "->" << v;
    }
  }
}

TEST(WordMarch, IntraWordWriteDisturbIsMaskedByTheWordWrite) {
  // A write-disturb between bits of the SAME word is physically masked:
  // the victim bit is written (strongly driven) by the very word write
  // whose aggressor bit would disturb it. No background can expose it —
  // this is a property of word-atomic writes, not a test weakness.
  WordMemory mem(8, 8);
  mem.bits().inject_coupling({mem.cell_of(2, 1), mem.cell_of(2, 6),
                              {CfKind::kDisturb, 1, Op::Kind::kWrite1, 0},
                              memsim::Guard::none()});
  EXPECT_FALSE(run_march_backgrounds(march_c_minus(), mem,
                                     standard_backgrounds(8))
                   .detected);
}

TEST(WordMemory, Width64RoundTrip) {
  WordMemory mem(2, 64);
  const std::uint64_t pattern = 0xDEADBEEFCAFEF00Dull;
  mem.write(1, pattern);
  EXPECT_EQ(mem.read(1), pattern);
  mem.write(1, ~std::uint64_t{0});
  EXPECT_EQ(mem.read(1), ~std::uint64_t{0});
  EXPECT_EQ(mem.cell_of(1, 63), 127);
}

TEST(WordMarch, Width64FaultFreePassesAllBackgrounds) {
  WordMemory mem(2, 64);
  const auto result = run_march_backgrounds(march_c_minus(), mem,
                                            standard_backgrounds(64));
  EXPECT_FALSE(result.detected);
  EXPECT_EQ(result.ops_executed, 7u * march_c_minus().length(2));
}

TEST(WordMarch, Width64IntraWordCouplingNeedsNonSolidBackground) {
  // CFst between bit 63 and bit 1 of one 64-bit word: invisible under the
  // solid background (all bits agree), exposed by the standard 7-background
  // set, which distinguishes every bit pair of a 64-bit word. This is the
  // behavior the width <= 32 limit used to make untestable.
  auto inject = [](WordMemory& mem) {
    mem.bits().inject_coupling({mem.cell_of(1, 63), mem.cell_of(1, 1),
                                {CfKind::kState, 1, Op::Kind::kWrite0, 0},
                                memsim::Guard::none()});
  };
  WordMemory solid(2, 64);
  inject(solid);
  EXPECT_FALSE(run_march_word(march_c_minus(), solid, 0x00).detected);
  WordMemory swept(2, 64);
  inject(swept);
  EXPECT_TRUE(run_march_backgrounds(march_c_minus(), swept,
                                    standard_backgrounds(64))
                  .detected);
}

TEST(WordMarch, Width64DoubleCheckerboardExposesAdjacentPairBits) {
  // The double-checkerboard stripe (period 4) distinguishes bits 2k and
  // 2k+2 where the plain checkerboard does not; verify on a 64-bit word.
  WordMemory mem(2, 64);
  mem.bits().inject_coupling({mem.cell_of(0, 2), mem.cell_of(0, 0),
                              {CfKind::kState, 1, Op::Kind::kWrite0, 0},
                              memsim::Guard::none()});
  const auto bgs = standard_backgrounds(64);
  // Solid and checkerboard agree on bits 0 and 2...
  EXPECT_FALSE(run_march_word(march_c_minus(), mem, bgs[0]).detected);
  EXPECT_FALSE(run_march_word(march_c_minus(), mem, bgs[1]).detected);
  // ...the double checkerboard splits them.
  EXPECT_TRUE(run_march_word(march_c_minus(), mem, bgs[2]).detected);
}

TEST(WordMarch, PartialFaultDetectionCarriesOver) {
  // The paper's guarded RDF1 at a word-memory bit cell: March PF still
  // catches it through the word interface.
  WordMemory mem(8, 8);
  mem.bits().inject({mem.cell_of(3, 2), faults::Ffm::kRDF1,
                     memsim::Guard::bit_line(0)});
  EXPECT_TRUE(run_march_word(march_pf(), mem, 0x00).detected);
}

}  // namespace
}  // namespace pf::march
