// March-test coverage of the two-cell coupling taxonomy (classic results:
// March C- detects unlinked static CFs; MATS+ misses most of them).
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"

namespace pf::march {
namespace {

using faults::CouplingFault;
using faults::Op;
using Kind = CouplingFault::Kind;
using memsim::Geometry;

Geometry geom() { return Geometry{3, 3}; }  // 9 cells: 72 ordered pairs

TEST(CouplingCoverage, MarchCMinusDetectsAllStateCouplings) {
  for (int a = 0; a <= 1; ++a)
    for (int v = 0; v <= 1; ++v) {
      const CouplingFault cf{Kind::kState, a, Op::Kind::kWrite0, v};
      EXPECT_TRUE(
          evaluate_coupling_detection(march_c_minus(), geom(), cf).detected_all)
          << cf.name();
    }
}

TEST(CouplingCoverage, MarchCMinusDetectsWriteDisturbs) {
  for (int wv = 0; wv <= 1; ++wv)
    for (int v = 0; v <= 1; ++v) {
      const CouplingFault cf{Kind::kDisturb, wv,
                             wv ? Op::Kind::kWrite1 : Op::Kind::kWrite0, v};
      EXPECT_TRUE(
          evaluate_coupling_detection(march_c_minus(), geom(), cf).detected_all)
          << cf.name();
    }
}

TEST(CouplingCoverage, MatsPlusMissesSomeStateCouplings) {
  int detected = 0;
  for (int a = 0; a <= 1; ++a)
    for (int v = 0; v <= 1; ++v) {
      const CouplingFault cf{Kind::kState, a, Op::Kind::kWrite0, v};
      detected +=
          evaluate_coupling_detection(mats_plus(), geom(), cf).detected_all;
    }
  EXPECT_LT(detected, 4) << "5N MATS+ cannot cover all CFst variants";
}

TEST(CouplingCoverage, CoverageOrderingMatchesTestStrength) {
  const double mats_cov = coupling_coverage(mats_plus(), geom());
  const double cminus_cov = coupling_coverage(march_c_minus(), geom());
  EXPECT_LE(mats_cov, cminus_cov);
  EXPECT_GT(cminus_cov, 0.5);
}

TEST(CouplingCoverage, DeceptiveReadCouplingsNeedDoubleReads) {
  // The matching-background deceptive coupling CFdr<0; r0> escapes March C-
  // (single reads) but March SR's r0,r0 pair exposes the flipped cell.
  const CouplingFault cfdr{Kind::kDeceptiveRead, 0, Op::Kind::kWrite0, 0};
  EXPECT_FALSE(
      evaluate_coupling_detection(march_c_minus(), geom(), cfdr).detected_all);
  EXPECT_TRUE(
      evaluate_coupling_detection(march_sr(), geom(), cfdr).detected_all);
  // The MIXED-background variant CFdr<1; r0> escapes even March SR: during
  // its double-read-0 passes every cell (including the aggressor) holds 0.
  const CouplingFault mixed{Kind::kDeceptiveRead, 1, Op::Kind::kWrite0, 0};
  EXPECT_FALSE(
      evaluate_coupling_detection(march_sr(), geom(), mixed).detected_all);
}

TEST(CouplingCoverage, MarchCMinusCatchesAllReadDestructiveCouplings) {
  // March C-'s r0/r1 passes run against BOTH aggressor backgrounds (the
  // up/down passes create 0/1 frontiers on each side of the victim).
  for (int a = 0; a <= 1; ++a)
    for (int v = 0; v <= 1; ++v) {
      const CouplingFault cf{Kind::kReadDestructive, a, Op::Kind::kWrite0, v};
      EXPECT_TRUE(
          evaluate_coupling_detection(march_c_minus(), geom(), cf).detected_all)
          << cf.name();
    }
}

TEST(CouplingCoverage, MarchPfCatchesMatchedBackgroundReadCouplings) {
  // March PF keeps uniform data backgrounds (it targets single-cell partial
  // faults), so it catches the matched-polarity CFrd variants and misses the
  // mixed ones — coupling coverage is not its design goal.
  const CouplingFault matched0{Kind::kReadDestructive, 0, Op::Kind::kWrite0, 0};
  const CouplingFault matched1{Kind::kReadDestructive, 1, Op::Kind::kWrite0, 1};
  EXPECT_TRUE(
      evaluate_coupling_detection(march_pf(), geom(), matched0).detected_all);
  EXPECT_TRUE(
      evaluate_coupling_detection(march_pf(), geom(), matched1).detected_all);
  const CouplingFault mixed{Kind::kReadDestructive, 1, Op::Kind::kWrite0, 0};
  EXPECT_FALSE(
      evaluate_coupling_detection(march_pf(), geom(), mixed).detected_all);
}

TEST(CouplingCoverage, PairCountIsOrderedPairs) {
  const CouplingFault cf{Kind::kState, 1, Op::Kind::kWrite0, 0};
  const auto outcome = evaluate_coupling_detection(march_c_minus(), geom(), cf);
  EXPECT_EQ(outcome.total_victims, 9 * 8);
}

}  // namespace
}  // namespace pf::march
