// March notation: parsing, printing, lengths.
#include <gtest/gtest.h>

#include "pf/march/library.hpp"
#include "pf/march/test.hpp"

namespace pf::march {
namespace {

TEST(MarchParse, SimpleTest) {
  const MarchTest t = MarchTest::parse("{ m(w0); u(r0,w1); d(r1,w0) }");
  ASSERT_EQ(t.elements.size(), 3u);
  EXPECT_EQ(t.elements[0].order, Order::kAny);
  EXPECT_EQ(t.elements[1].order, Order::kUp);
  EXPECT_EQ(t.elements[2].order, Order::kDown);
  EXPECT_EQ(t.elements[1].ops[0], MarchOp::r(0));
  EXPECT_EQ(t.elements[1].ops[1], MarchOp::w(1));
  EXPECT_EQ(t.ops_per_cell(), 5);
  EXPECT_EQ(t.length(64), 320u);
}

TEST(MarchParse, WhitespaceAndCaseTolerant) {
  const MarchTest t = MarchTest::parse("{M( w0 , w1 );  U(r1)}");
  ASSERT_EQ(t.elements.size(), 2u);
  EXPECT_EQ(t.elements[0].ops.size(), 2u);
}

TEST(MarchParse, RejectsMalformed) {
  EXPECT_THROW(MarchTest::parse(""), ParseError);
  EXPECT_THROW(MarchTest::parse("{ }"), ParseError);
  EXPECT_THROW(MarchTest::parse("{ x(w0) }"), ParseError);
  EXPECT_THROW(MarchTest::parse("{ m(w2) }"), ParseError);
  EXPECT_THROW(MarchTest::parse("{ m(q0) }"), ParseError);
  EXPECT_THROW(MarchTest::parse("{ m() }"), ParseError);
  EXPECT_THROW(MarchTest::parse("{ m w0 }"), ParseError);
}

TEST(MarchParse, RoundTrip) {
  for (const MarchTest& t : standard_tests()) {
    const MarchTest reparsed = MarchTest::parse(t.to_string(), t.name);
    EXPECT_EQ(reparsed, t) << t.name;
  }
}

TEST(MarchLibrary, MarchPfMatchesPaper) {
  const MarchTest t = march_pf();
  EXPECT_EQ(t.to_string(),
            "{ m(w0,w1); m(r1,w1,w0,w0,w1,r1); m(w1,w0); "
            "m(r0,w0,w1,w1,w0,r0) }");
  EXPECT_EQ(t.ops_per_cell(), 16);
  EXPECT_EQ(t.name, "March PF");
}

TEST(MarchLibrary, SecondHalfIsComplementOfFirst) {
  // March PF's elements 3-4 are the data-complement of elements 1-2 (the
  // test covers simulated and complementary partial faults symmetrically).
  const MarchTest t = march_pf();
  ASSERT_EQ(t.elements.size(), 4u);
  for (int pair = 0; pair < 2; ++pair) {
    const auto& a = t.elements[pair].ops;
    const auto& b = t.elements[pair + 2].ops;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].is_read, b[i].is_read);
      EXPECT_EQ(a[i].value, 1 - b[i].value);
    }
  }
}

TEST(MarchLibrary, ClassicTestLengths) {
  EXPECT_EQ(mats().ops_per_cell(), 4);
  EXPECT_EQ(mats_plus().ops_per_cell(), 5);
  EXPECT_EQ(mats_pp().ops_per_cell(), 6);
  EXPECT_EQ(march_x().ops_per_cell(), 6);
  EXPECT_EQ(march_y().ops_per_cell(), 8);
  EXPECT_EQ(march_c_minus().ops_per_cell(), 10);
  EXPECT_EQ(march_a().ops_per_cell(), 15);
  EXPECT_EQ(march_b().ops_per_cell(), 17);
  EXPECT_EQ(march_u().ops_per_cell(), 13);
  EXPECT_EQ(march_sr().ops_per_cell(), 14);
  EXPECT_EQ(march_lr().ops_per_cell(), 14);
  EXPECT_EQ(march_ss().ops_per_cell(), 22);
  EXPECT_EQ(naive_w1r1().ops_per_cell(), 2);
}

TEST(MarchLibrary, AllNamesUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& t : standard_tests()) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_TRUE(names.insert(t.name).second) << t.name;
  }
}

}  // namespace
}  // namespace pf::march
