// The A/B identity gates for the word-parallel coverage path: the plane
// engine's detection matrix must be byte-identical to the scalar reference
// (same per-instance bits, same DetectionOutcome including first_escape),
// while spending ONE march pass where the scalar engine spends one per
// instance.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/march/synthesis.hpp"

namespace pf::march {
namespace {

using faults::Ffm;
using memsim::Geometry;
using memsim::Guard;

/// Assert the two engines produced the same matrix for the same request.
void expect_identical(const PopulationCoverage& scalar,
                      const PopulationCoverage& plane,
                      const std::vector<PopulationClass>& classes) {
  ASSERT_EQ(scalar.classes.size(), classes.size());
  ASSERT_EQ(plane.classes.size(), classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    SCOPED_TRACE("class " + classes[c].name());
    EXPECT_EQ(scalar.classes[c].detected, plane.classes[c].detected);
    EXPECT_EQ(scalar.classes[c].outcome, plane.classes[c].outcome);
  }
}

TEST(PopulationAB, Table1CatalogueTimesMarchPfInOnePass) {
  // The ISSUE's acceptance gate: 12 guarded partial classes x March PF on
  // the tier-1 8x8 geometry, full matrix from ONE plane march pass,
  // byte-identical to the scalar per-victim reference.
  const Geometry geom{8, 8};
  const auto classes = table1_partial_classes();
  ASSERT_EQ(classes.size(), 12u);
  const auto scalar =
      evaluate_population(march_pf(), geom, classes, MemEngine::kScalar);
  const auto plane =
      evaluate_population(march_pf(), geom, classes, MemEngine::kPlane);
  expect_identical(scalar, plane, classes);

  // Cost accounting: one pass vs one run per instance.
  EXPECT_EQ(plane.march_passes, 1u);
  std::int64_t instances = 0;
  for (const auto& cls : classes) instances += cls.instances(geom);
  EXPECT_EQ(scalar.march_passes, static_cast<std::uint64_t>(instances));
  // Every plane cell-step advances the whole population.
  EXPECT_EQ(plane.cell_steps,
            march_pf().length(static_cast<std::uint64_t>(geom.num_cells())) *
                static_cast<std::uint64_t>(instances));
  // The paper's headline rows through the one-pass matrix: March PF clears
  // the guarded RDF classes everywhere (the IRF|buffer rows stay partial —
  // that boundary is the PaperHeadline suite's territory).
  for (const auto& po : plane.classes) {
    if (po.cls.ffm == Ffm::kRDF1 || po.cls.ffm == Ffm::kRDF0) {
      EXPECT_TRUE(po.outcome.detected_all) << po.cls.name();
      EXPECT_EQ(po.outcome.first_escape, -1) << po.cls.name();
    }
  }
}

TEST(PopulationAB, EveryStandardTestOnTable1Catalogue) {
  // Weaker tests leave escapes; the engines must agree on exactly which
  // instances escape, not just on the counts.
  const Geometry geom{4, 4};
  const auto classes = table1_partial_classes();
  for (const MarchTest& test : standard_tests()) {
    SCOPED_TRACE(test.name);
    const auto scalar =
        evaluate_population(test, geom, classes, MemEngine::kScalar);
    const auto plane =
        evaluate_population(test, geom, classes, MemEngine::kPlane);
    expect_identical(scalar, plane, classes);
    EXPECT_EQ(plane.march_passes, 1u);
  }
}

TEST(PopulationAB, FullCouplingTaxonomyOnSmallArray) {
  // All 32 two-cell coupling classes, expanded to every ordered pair of a
  // 2x2 array (12 pairs each): aggressor-major expansion order and the
  // victim-address first_escape convention must match the scalar path.
  const Geometry geom{2, 2};
  std::vector<PopulationClass> classes;
  for (const auto& cf : faults::all_coupling_faults())
    classes.push_back(PopulationClass::coupled(cf));
  for (const MarchTest& test : {march_ss(), march_c_minus(), mats_plus()}) {
    SCOPED_TRACE(test.name);
    const auto scalar =
        evaluate_population(test, geom, classes, MemEngine::kScalar);
    const auto plane =
        evaluate_population(test, geom, classes, MemEngine::kPlane);
    expect_identical(scalar, plane, classes);
  }
}

TEST(PopulationAB, GuardedCouplingClassesAgree) {
  // Coupling + partial-fault guard composition (beyond the Table 1
  // catalogue) through both engines.
  const Geometry geom{4, 2};
  std::vector<PopulationClass> classes;
  for (const auto& cf : faults::all_coupling_faults()) {
    classes.push_back(PopulationClass::coupled(cf, Guard::bit_line(0)));
    classes.push_back(PopulationClass::coupled(cf, Guard::buffer(1)));
  }
  const auto scalar =
      evaluate_population(march_pf(), geom, classes, MemEngine::kScalar);
  const auto plane =
      evaluate_population(march_pf(), geom, classes, MemEngine::kPlane);
  expect_identical(scalar, plane, classes);
}

TEST(PopulationAB, SingleClassEntryPointsAgreeAcrossEngines) {
  const Geometry geom{4, 4};
  for (const Ffm ffm : faults::all_ffms()) {
    for (const Guard& guard :
         {Guard::none(), Guard::bit_line(0), Guard::bit_line(1),
          Guard::buffer(0), Guard::buffer(1), Guard::hidden(true),
          Guard::hidden(false)}) {
      for (const MarchTest& test : {march_pf(), mats(), march_c_minus()}) {
        const DetectionOutcome scalar = evaluate_detection(
            test, geom, ffm, guard, MemEngine::kScalar);
        const DetectionOutcome plane = evaluate_detection(
            test, geom, ffm, guard, MemEngine::kPlane);
        EXPECT_EQ(scalar, plane)
            << test.name << " on " << PopulationClass::single(ffm, guard).name();
      }
    }
  }
}

TEST(PopulationAB, CoverageFractionsAgreeAcrossEngines) {
  const Geometry geom{4, 2};
  for (const MarchTest& test : standard_tests()) {
    SCOPED_TRACE(test.name);
    EXPECT_EQ(static_ffm_coverage(test, geom, MemEngine::kScalar),
              static_ffm_coverage(test, geom, MemEngine::kPlane));
    EXPECT_EQ(coupling_coverage(test, geom, MemEngine::kScalar),
              coupling_coverage(test, geom, MemEngine::kPlane));
  }
}

TEST(PopulationAB, HiddenInactiveGuardNeverDetects) {
  // A hidden- guard means the fault is never sensitized: both engines must
  // report zero detections with the first victim as the first escape.
  const Geometry geom{4, 4};
  const auto classes = {PopulationClass::single(Ffm::kRDF1,
                                                Guard::hidden(false))};
  for (const MemEngine engine : {MemEngine::kScalar, MemEngine::kPlane}) {
    const auto coverage =
        evaluate_population(march_pf(), geom, classes, engine);
    EXPECT_EQ(coverage.classes[0].outcome.detected_count, 0);
    EXPECT_EQ(coverage.classes[0].outcome.first_escape, 0);
    EXPECT_FALSE(coverage.classes[0].outcome.detected_all);
  }
}

TEST(PopulationAB, SynthesisFindsSameTestOnEitherEngine) {
  // The greedy synthesizer scores candidates through evaluate_population;
  // engine choice must affect only the cost (march passes), never the
  // search result.
  SynthesisOptions scalar_options;
  scalar_options.geometry = {4, 2};
  scalar_options.engine = MemEngine::kScalar;
  SynthesisOptions plane_options = scalar_options;
  plane_options.engine = MemEngine::kPlane;
  const std::vector<TargetFault> targets = {
      TargetFault::single(Ffm::kRDF1, Guard::bit_line(0)),
      TargetFault::single(Ffm::kIRF0, Guard::buffer(1)),
      TargetFault::single(Ffm::kTFUp),
  };
  const SynthesisResult scalar = synthesize_march(targets, scalar_options);
  const SynthesisResult plane = synthesize_march(targets, plane_options);
  EXPECT_EQ(scalar.test.to_string(), plane.test.to_string());
  EXPECT_EQ(scalar.detected_targets, plane.detected_targets);
  // kPlane pays one march pass per candidate scored; kScalar pays one per
  // candidate x instance.
  EXPECT_LT(plane.evaluations, scalar.evaluations);
}

}  // namespace
}  // namespace pf::march
