#include "pf/spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pf/util/rng.hpp"

namespace pf::spice {
namespace {

TEST(Matrix, ClearZeroesKeepingShape) {
  Matrix m(3, 3);
  m(1, 2) = 5.0;
  m.clear();
  EXPECT_EQ(m(1, 2), 0.0);
  EXPECT_EQ(m.rows(), 3u);
}

TEST(Lu, SolvesIdentity) {
  Matrix m(3, 3);
  for (size_t i = 0; i < 3; ++i) m(i, i) = 1.0;
  std::vector<size_t> perm;
  lu_factor(m, perm);
  std::vector<double> b{1.0, 2.0, 3.0};
  lu_solve(m, perm, b);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(Lu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 3;
  std::vector<size_t> perm;
  lu_factor(m, perm);
  std::vector<double> b{5, 10};
  lu_solve(m, perm, b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Lu, PivotsZeroDiagonal) {
  // Leading zero forces a row swap.
  Matrix m(2, 2);
  m(0, 0) = 0;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 0;
  std::vector<size_t> perm;
  lu_factor(m, perm);
  std::vector<double> b{3.0, 4.0};
  lu_solve(m, perm, b);
  EXPECT_NEAR(b[0], 4.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 2;
  m(1, 1) = 4;
  std::vector<size_t> perm;
  EXPECT_THROW(lu_factor(m, perm), pf::ConvergenceError);
}

// Property: for random well-conditioned systems, A x = b residual is tiny.
TEST(LuProperty, RandomSystemsResidual) {
  pf::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.next_below(20);
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
      double diag = 0;
      for (size_t c = 0; c < n; ++c) {
        a(r, c) = rng.next_double(-1.0, 1.0);
        diag += std::abs(a(r, c));
      }
      a(r, r) += diag + 1.0;  // diagonally dominant -> well conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.next_double(-5.0, 5.0);
    std::vector<double> b(n, 0.0);
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c) b[r] += a(r, c) * x_true[c];

    Matrix lu = a;
    std::vector<size_t> perm;
    lu_factor(lu, perm);
    lu_solve(lu, perm, b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
  }
}

}  // namespace
}  // namespace pf::spice
