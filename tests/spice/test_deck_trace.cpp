// Deck parser/serializer and the waveform trace recorder.
#include <gtest/gtest.h>

#include "pf/spice/deck.hpp"
#include "pf/spice/trace.hpp"

namespace pf::spice {
namespace {

TEST(DeckValues, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("3.3"), 3.3);
  EXPECT_DOUBLE_EQ(parse_value("30f"), 30e-15);
  EXPECT_DOUBLE_EQ(parse_value("100k"), 100e3);
  EXPECT_DOUBLE_EQ(parse_value("2.2meg"), 2.2e6);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("400u"), 400e-6);
  EXPECT_DOUBLE_EQ(parse_value("200p"), 200e-12);
  EXPECT_DOUBLE_EQ(parse_value("-1.5m"), -1.5e-3);
}

TEST(DeckValues, RejectsGarbage) {
  EXPECT_THROW(parse_value(""), ParseError);
  EXPECT_THROW(parse_value("abc"), ParseError);
  EXPECT_THROW(parse_value("1.5x"), ParseError);
}

TEST(DeckValues, FormatRoundTrips) {
  for (double v : {3.3, 30e-15, 100e3, 2.2e6, 1e9, 400e-6, 0.0, 1.65}) {
    EXPECT_NEAR(parse_value(format_value(v)), v, std::abs(v) * 1e-6 + 1e-30)
        << format_value(v);
  }
}

TEST(DeckParse, BuildsDividerCircuit) {
  const Netlist net = parse_deck(R"(
* a resistive divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
)");
  EXPECT_EQ(net.resistors().size(), 2u);
  EXPECT_EQ(net.vsources().size(), 1u);
  Simulator sim(net);
  sim.run_for(10e-9);
  EXPECT_NEAR(sim.node_voltage(net.find_node("mid").value()), 7.5, 1e-3);
}

TEST(DeckParse, RailsAndMosfets) {
  const Netlist net = parse_deck(R"(
.rail vdd 3.3
.rail gate 4.5
MN1 vdd gate out NMOS vt=0.7 k=400u lambda=0.02
C1 out 0 30f
.end
this text after .end is ignored
)");
  EXPECT_TRUE(net.is_rail(net.find_node("vdd").value()));
  ASSERT_EQ(net.mosfets().size(), 1u);
  EXPECT_DOUBLE_EQ(net.mosfets()[0].params.k, 400e-6);
  Simulator sim(net);
  sim.run_for(50e-9);
  EXPECT_NEAR(sim.node_voltage(net.find_node("out").value()), 3.3, 0.05);
}

TEST(DeckParse, ReportsLineNumbers) {
  try {
    parse_deck("R1 a b 1k\nXBAD x y z\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DeckParse, RejectsMalformedElements) {
  EXPECT_THROW(parse_deck("R1 a b"), ParseError);
  EXPECT_THROW(parse_deck("M1 d g s BJT"), ParseError);
  EXPECT_THROW(parse_deck("M1 d g s NMOS vt"), ParseError);
  EXPECT_THROW(parse_deck(".rail x"), ParseError);
  EXPECT_THROW(parse_deck(".frobnicate"), ParseError);
}

TEST(DeckRoundTrip, WriteParseEquivalentBehaviour) {
  const Netlist original = parse_deck(R"(
.rail vdd 3.3
V1 in 0 1.65
R1 in a 56k
C1 a 0 90f
MN1 vdd in a NMOS vt=0.7 k=300u lambda=0.02
MP1 a in 0 PMOS vt=0.8 k=200u lambda=0.02
)");
  const Netlist reparsed = parse_deck(write_deck(original));
  EXPECT_EQ(reparsed.resistors().size(), original.resistors().size());
  EXPECT_EQ(reparsed.capacitors().size(), original.capacitors().size());
  EXPECT_EQ(reparsed.mosfets().size(), original.mosfets().size());
  Simulator s1(original), s2(reparsed);
  s1.run_for(20e-9);
  s2.run_for(20e-9);
  EXPECT_NEAR(s1.node_voltage(original.find_node("a").value()),
              s2.node_voltage(reparsed.find_node("a").value()), 1e-9);
}

TEST(TraceRecorder, RecordsAndInterpolates) {
  Netlist n;
  const NodeId out = n.node("out");
  n.add_vsource("v", n.node("in"), kGround, 1.0);
  n.add_resistor("r", n.find_node("in").value(), out, 100e3);
  n.add_capacitor("c", out, kGround, 30e-15);
  Trace trace(n, {"out", "in"});
  Simulator sim(n);
  sim.run_for(20e-9, trace.callback());
  EXPECT_GT(trace.num_samples(), 10u);
  EXPECT_EQ(trace.num_probes(), 2u);
  // The output rises monotonically toward 1 V.
  EXPECT_LT(trace.sample_at(0, 1e-9), trace.sample_at(0, 10e-9));
  EXPECT_NEAR(trace.max_of(0), 1.0, 0.01);
  EXPECT_GE(trace.min_of(0), -1e-6);
  // Clamped sampling outside the record.
  EXPECT_DOUBLE_EQ(trace.sample_at(0, -1.0), trace.series(0).front());
  EXPECT_DOUBLE_EQ(trace.sample_at(0, 1.0), trace.series(0).back());
}

TEST(TraceRecorder, CsvHasHeaderAndRows) {
  Netlist n;
  n.add_capacitor("c", n.node("x"), kGround, 1e-15);
  n.add_resistor("r", n.find_node("x").value(), kGround, 1e6);
  Trace trace(n, {"x"});
  Simulator sim(n);
  sim.set_node_voltage(n.find_node("x").value(), 1.0);
  sim.run_for(1e-9, trace.callback());
  const std::string csv = trace.to_csv();
  EXPECT_EQ(csv.substr(0, 7), "time,x\n");
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TraceRecorder, ClearKeepsProbes) {
  Netlist n;
  n.add_capacitor("c", n.node("x"), kGround, 1e-15);
  n.add_resistor("r", n.find_node("x").value(), kGround, 1e6);
  Trace trace(n, {"x"});
  Simulator sim(n);
  sim.run_for(1e-9, trace.callback());
  trace.clear();
  EXPECT_EQ(trace.num_samples(), 0u);
  EXPECT_EQ(trace.num_probes(), 1u);
}

TEST(TraceRecorder, UnknownProbeRejected) {
  Netlist n;
  n.node("x");
  EXPECT_THROW(Trace(n, {"nope"}), pf::Error);
  EXPECT_THROW(Trace(n, {}), pf::Error);
}

TEST(DeckDramColumn, ColumnNetlistSerializes) {
  // The DRAM column's netlist (accessed indirectly: rebuild a small slice)
  // must round-trip through the deck format — spot-check with a mixed
  // circuit resembling one bit-line segment.
  const char* deck = R"(
.rail vdd 3.3
.rail pre 0
C1 bt0 0 10f
C2 bt1 0 40f
R1 bt0 bt1 10
MN1 vdd pre bt0 NMOS vt=0.7 k=400u lambda=0.02
)";
  const Netlist net = parse_deck(deck);
  const Netlist again = parse_deck(write_deck(net));
  EXPECT_EQ(write_deck(net), write_deck(again));
}

}  // namespace
}  // namespace pf::spice
