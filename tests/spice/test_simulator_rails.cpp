// Rail (known-voltage node) behaviour: elimination from the unknown vector,
// retargeting with slew, equivalence with voltage-source driving.
#include <gtest/gtest.h>

#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"

namespace pf::spice {
namespace {

TEST(SimRails, RailHoldsInitialValue) {
  Netlist n;
  const NodeId vdd = n.add_rail("vdd", 3.3);
  const NodeId out = n.node("out");
  n.add_resistor("r1", vdd, out, 1e3);
  n.add_resistor("r2", out, kGround, 1e3);
  Simulator sim(n);
  sim.run_for(5e-9);
  EXPECT_DOUBLE_EQ(sim.node_voltage(vdd), 3.3);
  EXPECT_NEAR(sim.node_voltage(out), 1.65, 1e-4);
}

TEST(SimRails, RailRetargetRampsLoad) {
  Netlist n;
  const NodeId ctl = n.add_rail("ctl", 0.0);
  const NodeId out = n.node("out");
  n.add_resistor("r", ctl, out, 1e3);
  n.add_capacitor("c", out, kGround, 1e-15);
  Simulator sim(n);
  sim.run_for(1e-9);
  sim.set_rail(ctl, 2.0, 1e-10);
  sim.run_for(5e-9);
  EXPECT_NEAR(sim.node_voltage(out), 2.0, 1e-3);
}

TEST(SimRails, RailMatchesVsourceDrivenCircuit) {
  // Same RC circuit driven by a rail and by a vsource must agree closely.
  auto build = [](bool use_rail) {
    Netlist n;
    NodeId in;
    if (use_rail) {
      in = n.add_rail("in", 0.0);
    } else {
      in = n.node("in");
      n.add_vsource("vin", in, kGround, 0.0);
    }
    const NodeId out = n.node("out");
    n.add_resistor("r", in, out, 50e3);
    n.add_capacitor("c", out, kGround, 40e-15);
    return n;
  };
  const Netlist nr = build(true);
  const Netlist nv = build(false);
  Simulator sr(nr), sv(nv);
  sr.run_for(1e-9);
  sv.run_for(1e-9);
  sr.set_rail(nr.find_node("in").value(), 3.0, 2e-10);
  sv.set_source(0, 3.0, 2e-10);
  sr.run_for(4e-9);
  sv.run_for(4e-9);
  EXPECT_NEAR(sr.node_voltage(nr.find_node("out").value()),
              sv.node_voltage(nv.find_node("out").value()), 2e-3);
}

TEST(SimRails, MosfetGateOnRailSwitches) {
  Netlist n;
  const NodeId gate = n.add_rail("wl", 0.0);
  const NodeId bl = n.add_rail("bl", 3.3);
  const NodeId cell = n.node("cell");
  n.add_nmos("acc", bl, gate, cell, MosParams{0.7, 400e-6, 0.02});
  n.add_capacitor("ccell", cell, kGround, 30e-15);
  Simulator sim(n);
  sim.run_for(2e-9);
  EXPECT_NEAR(sim.node_voltage(cell), 0.0, 0.01);  // gate low: isolated
  sim.set_rail(gate, 4.5);  // boosted word line
  sim.run_for(20e-9);
  EXPECT_NEAR(sim.node_voltage(cell), 3.3, 0.05);  // full level written
}

TEST(SimRails, CannotOverrideRailVoltage) {
  Netlist n;
  const NodeId r = n.add_rail("vdd", 3.3);
  n.add_resistor("rl", r, n.node("mid"), 1e3);
  n.add_resistor("rl2", n.node("mid"), kGround, 1e3);
  Simulator sim(n);
  EXPECT_THROW(sim.set_node_voltage(r, 0.0), pf::Error);
}

TEST(SimRails, VsourceOnRailRejected) {
  Netlist n;
  const NodeId r = n.add_rail("vdd", 3.3);
  EXPECT_THROW(n.add_vsource("v", r, kGround, 1.0), pf::Error);
}

TEST(SimRails, RailRedeclarationRejected) {
  Netlist n;
  n.node("x");
  EXPECT_THROW(n.add_rail("x", 1.0), pf::Error);
}

TEST(SimRails, RailFlagsQueryable) {
  Netlist n;
  const NodeId r = n.add_rail("vpp", 4.5);
  const NodeId x = n.node("plain");
  EXPECT_TRUE(n.is_rail(r));
  EXPECT_FALSE(n.is_rail(x));
  EXPECT_DOUBLE_EQ(n.rail_initial(r), 4.5);
  EXPECT_THROW(n.rail_initial(x), pf::Error);
}

TEST(SimRails, CapacitorToRampingRailInjectsCharge) {
  // A cap from a floating node to a stepping rail couples the step in
  // proportionally (bootstrapping) — checks the companion model uses the
  // rail's time-varying voltage.
  Netlist n;
  const NodeId boot = n.add_rail("boot", 0.0);
  const NodeId f = n.node("float");
  n.add_capacitor("cc", f, boot, 10e-15);
  n.add_capacitor("cg", f, kGround, 10e-15);
  Simulator sim(n);
  sim.run_for(1e-9);
  sim.set_rail(boot, 2.0, 2e-10);
  sim.run_for(2e-9);
  // Capacitive divider: df = 2.0 * 10/(10+10) = 1.0.
  EXPECT_NEAR(sim.node_voltage(f), 1.0, 0.02);
}

}  // namespace
}  // namespace pf::spice
