// Parameterized physics properties of the transient engine: closed-form RC
// behaviour and charge conservation over swept component values.
#include <gtest/gtest.h>

#include <cmath>

#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"
#include "pf/util/rng.hpp"

namespace pf::spice {
namespace {

// --- RC charging accuracy over an (R, C) grid ----------------------------

struct RcCase {
  double r;
  double c;
};

class RcChargeProperty : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcChargeProperty, MatchesClosedFormWithinTolerance) {
  const auto [r, c] = GetParam();
  const double tau = r * c;
  Netlist n;
  const NodeId in = n.node("in"), out = n.node("out");
  n.add_vsource("v", in, kGround, 1.0);
  n.add_resistor("r", in, out, r);
  n.add_capacitor("c", out, kGround, c);
  SimOptions opt;
  opt.default_slew = tau / 1000;
  // Resolve the time constant regardless of its absolute scale.
  opt.dt_max = tau / 25;
  opt.dt_initial = tau / 100;
  opt.dt_min = std::min(opt.dt_min, tau / 1e5);
  Simulator sim(n, opt);
  // Sample at 0.5, 1, 2 and 5 time constants.
  double t_prev = 0.0;
  for (double k : {0.5, 1.0, 2.0, 5.0}) {
    sim.run_for(tau * k - t_prev);
    t_prev = tau * k;
    const double expected = 1.0 - std::exp(-k);
    EXPECT_NEAR(sim.node_voltage(out), expected, 0.04)
        << "R=" << r << " C=" << c << " at t=" << k << " tau";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RcGrid, RcChargeProperty,
    ::testing::Values(RcCase{1e3, 10e-15}, RcCase{10e3, 30e-15},
                      RcCase{100e3, 30e-15}, RcCase{1e6, 30e-15},
                      RcCase{10e6, 90e-15}, RcCase{56e3, 90e-15},
                      RcCase{300e3, 5e-15}, RcCase{1e9, 5e-15}));

// --- charge sharing between two capacitors over random cases -------------

class ChargeSharingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChargeSharingProperty, FinalVoltageIsChargeWeightedAverage) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const double c1 = rng.next_double(5e-15, 100e-15);
    const double c2 = rng.next_double(5e-15, 100e-15);
    const double v1 = rng.next_double(0.0, 3.3);
    const double v2 = rng.next_double(0.0, 3.3);
    const double r = rng.next_double(100.0, 10e3);
    Netlist n;
    const NodeId a = n.node("a"), b = n.node("b");
    n.add_capacitor("c1", a, kGround, c1);
    n.add_capacitor("c2", b, kGround, c2);
    n.add_resistor("r", a, b, r);
    Simulator sim(n);
    sim.set_node_voltage(a, v1);
    sim.set_node_voltage(b, v2);
    sim.run_for(20 * r * (c1 * c2 / (c1 + c2)) + 1e-9);
    const double expected = (c1 * v1 + c2 * v2) / (c1 + c2);
    EXPECT_NEAR(sim.node_voltage(a), expected, 2e-3);
    EXPECT_NEAR(sim.node_voltage(b), expected, 2e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChargeSharingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- MOSFET pass-device levels over a gate-voltage sweep -----------------

class PassDeviceProperty : public ::testing::TestWithParam<double> {};

TEST_P(PassDeviceProperty, ChargesLoadToGateMinusVtOrSource) {
  const double vg = GetParam();
  const MosParams p{0.7, 400e-6, 0.02};
  Netlist n;
  const NodeId d = n.node("d"), g = n.node("g"), s = n.node("s");
  n.add_vsource("vd", d, kGround, 3.3);
  n.add_vsource("vg", g, kGround, vg);
  n.add_nmos("m", d, g, s, p);
  n.add_capacitor("cl", s, kGround, 30e-15);
  Simulator sim(n);
  sim.run_for(200e-9);
  const double expected = std::max(0.0, std::min(3.3, vg - p.vt));
  EXPECT_NEAR(sim.node_voltage(s), expected, 0.12) << "vg=" << vg;
}

INSTANTIATE_TEST_SUITE_P(GateSweep, PassDeviceProperty,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.3, 4.0, 4.5));

// --- energy sanity: a source-free RC network never gains voltage ---------

class PassiveDecayProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PassiveDecayProperty, MaxNodeVoltageNeverIncreases) {
  Rng rng(GetParam());
  Netlist n;
  const int kNodes = 5;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(n.node("n" + std::to_string(i)));
    n.add_capacitor("c" + std::to_string(i), nodes.back(), kGround,
                    rng.next_double(5e-15, 50e-15));
  }
  for (int i = 0; i + 1 < kNodes; ++i)
    n.add_resistor("r" + std::to_string(i), nodes[i], nodes[i + 1],
                   rng.next_double(1e3, 1e6));
  Simulator sim(n);
  double vmax_initial = 0;
  for (auto id : nodes) {
    const double v = rng.next_double(0.0, 3.3);
    sim.set_node_voltage(id, v);
    vmax_initial = std::max(vmax_initial, v);
  }
  double vmax_seen = 0;
  sim.run_for(100e-9, [&](double, const Simulator& s) {
    for (auto id : nodes) vmax_seen = std::max(vmax_seen, s.node_voltage(id));
  });
  EXPECT_LE(vmax_seen, vmax_initial + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassiveDecayProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace pf::spice
