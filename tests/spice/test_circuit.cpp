// The compile-once pipeline at the spice layer: an immutable CircuitTemplate
// (symbolic analysis, one per topology) stamping mutable CompiledCircuit run
// states. The load-bearing property for every sweep built on top: restamping
// a parameter and resetting the run state is BIT-IDENTICAL to building the
// whole stack afresh with that parameter baked into the netlist.
#include <gtest/gtest.h>

#include <memory>

#include "pf/spice/circuit.hpp"
#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"
#include "pf/util/error.hpp"

namespace pf::spice {
namespace {

constexpr double kVdd = 3.3;
constexpr double kVpp = 4.5;

MosParams nmos_params() { return MosParams{0.7, 400e-6, 0.02}; }

/// Source-free micro-column (rails only, so the compiled sparse path runs):
/// a word-line-gated access NMOS charging a storage cap from a bit-line cap
/// through a defect-socket resistor — one DRAM sweep experiment in
/// miniature.
Netlist micro_netlist(double r_def) {
  Netlist n;
  const NodeId wl = n.add_rail("wl", 0.0);
  const NodeId bl = n.node("bl");
  const NodeId acc = n.node("acc");
  const NodeId cell = n.node("cell");
  n.add_capacitor("cbl", bl, kGround, 90e-15);
  n.add_nmos("macc", bl, wl, acc, nmos_params());
  n.add_resistor("rdef", acc, cell, r_def);
  n.add_capacitor("ccell", cell, kGround, 30e-15);
  return n;
}

/// One access pulse: precharge the bit line, raise the word line, let the
/// cell charge through the socket, drop the word line again.
void run_pulse(CompiledCircuit& ckt) {
  const NodeId wl = *ckt.circuit_template().netlist().find_node("wl");
  const NodeId bl = *ckt.circuit_template().netlist().find_node("bl");
  ckt.set_node_voltage(bl, kVdd);
  ckt.set_rail(wl, kVpp);
  ckt.run_for(20e-9);
  ckt.set_rail(wl, 0.0);
  ckt.run_for(10e-9);
}

void expect_bit_identical(const CompiledCircuit& a, const CompiledCircuit& b) {
  const Netlist& net = a.circuit_template().netlist();
  ASSERT_EQ(net.node_count(), b.circuit_template().netlist().node_count());
  EXPECT_EQ(a.time(), b.time());
  for (NodeId n = 0; n < static_cast<NodeId>(net.node_count()); ++n)
    EXPECT_EQ(a.node_voltage(n), b.node_voltage(n)) << "node " << n;
  EXPECT_EQ(a.stats().steps, b.stats().steps);
  EXPECT_EQ(a.stats().nr_iterations, b.stats().nr_iterations);
  EXPECT_EQ(a.stats().rejected_steps, b.stats().rejected_steps);
}

TEST(CircuitTemplate, SourceFreeCircuitCompilesSparse) {
  const CircuitTemplate tpl(micro_netlist(1e6));
  EXPECT_TRUE(tpl.sparse());
  EXPECT_GT(tpl.nonzero_count(), 0u);

  // A voltage source forces the dense reference formulation.
  Netlist with_source = micro_netlist(1e6);
  with_source.add_vsource("vx", with_source.node("bl"), kGround, kVdd);
  EXPECT_FALSE(CircuitTemplate(with_source).sparse());
}

TEST(CircuitTemplate, ResistanceParamValidatesName) {
  const CircuitTemplate tpl(micro_netlist(1e6));
  const ParamHandle h = tpl.resistance_param("rdef");
  EXPECT_TRUE(h.valid());
  EXPECT_THROW(tpl.resistance_param("no_such_device"), pf::Error);
  // Capacitors and MOSFETs are not resistance parameters.
  EXPECT_THROW(tpl.resistance_param("ccell"), pf::Error);
}

TEST(CompiledCircuit, RestampThenResetMatchesFreshBuildBitwise) {
  // The sweep hot path: run at one R_def, restamp the socket through the
  // handle, reset, rerun — must equal a from-scratch build (new netlist,
  // new template, new circuit) with the resistance baked in, bit for bit.
  const auto tpl = std::make_shared<CircuitTemplate>(micro_netlist(1e6));
  CompiledCircuit reused(tpl, SimOptions{});
  run_pulse(reused);  // dirty every piece of run state at R = 1 MOhm

  const ParamHandle h = tpl->resistance_param("rdef");
  reused.set_resistance(h, 250e3);
  reused.reset_to_initial();
  run_pulse(reused);

  const auto fresh_tpl =
      std::make_shared<CircuitTemplate>(micro_netlist(250e3));
  CompiledCircuit fresh(fresh_tpl, SimOptions{});
  run_pulse(fresh);

  expect_bit_identical(reused, fresh);
  // Sanity: the experiment actually depends on the restamped value.
  const NodeId cell = *tpl->netlist().find_node("cell");
  EXPECT_GT(reused.node_voltage(cell), 1.0);
}

TEST(CompiledCircuit, SetResistanceRejectsNonPositive) {
  const auto tpl = std::make_shared<CircuitTemplate>(micro_netlist(1e6));
  CompiledCircuit ckt(tpl, SimOptions{});
  const ParamHandle h = tpl->resistance_param("rdef");
  EXPECT_THROW(ckt.set_resistance(h, 0.0), pf::Error);
  EXPECT_THROW(ckt.set_resistance(h, -5.0), pf::Error);
  EXPECT_THROW(ckt.set_resistance(ParamHandle{}, 1e3), pf::Error);
}

TEST(CompiledCircuit, SnapshotRestoreRetracesTheExactTrajectory) {
  const auto tpl = std::make_shared<CircuitTemplate>(micro_netlist(500e3));
  CompiledCircuit ckt(tpl, SimOptions{});
  const NodeId wl = *tpl->netlist().find_node("wl");
  const NodeId bl = *tpl->netlist().find_node("bl");

  ckt.set_node_voltage(bl, kVdd);
  ckt.set_rail(wl, kVpp);
  ckt.run_for(5e-9);
  const CompiledCircuit::State snap = ckt.save_state();

  ckt.run_for(15e-9);  // continue past the snapshot
  CompiledCircuit replay = ckt;  // run-state copy sharing the template
  replay.restore_state(snap);
  replay.run_for(15e-9);

  expect_bit_identical(ckt, replay);
}

TEST(CompiledCircuit, CopySharesTemplateAndEvolvesIndependently) {
  const auto tpl = std::make_shared<CircuitTemplate>(micro_netlist(1e6));
  CompiledCircuit a(tpl, SimOptions{});
  CompiledCircuit b = a;  // cheap clone: same template, own run state
  EXPECT_EQ(&a.circuit_template(), &b.circuit_template());

  run_pulse(a);
  const NodeId cell = *tpl->netlist().find_node("cell");
  EXPECT_EQ(b.time(), 0.0);  // b untouched by a's run
  run_pulse(b);
  EXPECT_EQ(a.node_voltage(cell), b.node_voltage(cell));
  expect_bit_identical(a, b);
}

TEST(CompiledCircuit, SparseAgreesWithDenseReferenceFormulation) {
  // The same physics expressed with a rail (compiled sparse path) and with
  // a voltage source (dense partial-pivot reference path) must land on the
  // same settled voltages. Not bitwise — different eliminations — but well
  // inside solver tolerance.
  Netlist rail_net;
  const NodeId vr = rail_net.add_rail("v", kVdd);
  const NodeId out_r = rail_net.node("out");
  rail_net.add_resistor("r", vr, out_r, 100e3);
  rail_net.add_capacitor("c", out_r, kGround, 30e-15);
  const auto rail_tpl = std::make_shared<CircuitTemplate>(rail_net);
  ASSERT_TRUE(rail_tpl->sparse());
  CompiledCircuit rail_ckt(rail_tpl, SimOptions{});
  rail_ckt.run_for(30e-9);  // 10 tau

  Netlist src_net;
  const NodeId vs = src_net.node("v");
  const NodeId out_s = src_net.node("out");
  src_net.add_vsource("vsrc", vs, kGround, kVdd);
  src_net.add_resistor("r", vs, out_s, 100e3);
  src_net.add_capacitor("c", out_s, kGround, 30e-15);
  const auto src_tpl = std::make_shared<CircuitTemplate>(src_net);
  ASSERT_FALSE(src_tpl->sparse());
  CompiledCircuit src_ckt(src_tpl, SimOptions{});
  src_ckt.run_for(30e-9);

  EXPECT_NEAR(rail_ckt.node_voltage(out_r), src_ckt.node_voltage(out_s),
              1e-4);
}

TEST(SimulatorFacade, ExposesThePipelinePieces) {
  Netlist n = micro_netlist(1e6);
  Simulator sim(n);
  ASSERT_NE(sim.circuit_template(), nullptr);
  EXPECT_TRUE(sim.circuit_template()->sparse());
  // The facade's run state IS the compiled circuit it exposes.
  sim.circuit().set_node_voltage(*n.find_node("bl"), 1.5);
  EXPECT_EQ(sim.node_voltage(*n.find_node("bl")), 1.5);
}

}  // namespace
}  // namespace pf::spice
