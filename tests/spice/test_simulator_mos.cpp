// MOSFET-level checks: pass-device threshold drop, inverter transfer,
// cross-coupled latch regeneration (the sense-amplifier core).
#include <gtest/gtest.h>

#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"

namespace pf::spice {
namespace {

constexpr double kVdd = 3.3;

MosParams nmos_params() { return MosParams{0.7, 400e-6, 0.02}; }
MosParams pmos_params() { return MosParams{0.8, 200e-6, 0.02}; }

TEST(SimMos, NmosPassDeviceDropsThreshold) {
  // NMOS gate at VDD passing VDD charges the load only to ~VDD - Vt.
  Netlist n;
  const NodeId d = n.node("d"), g = n.node("g"), s = n.node("s");
  n.add_vsource("vd", d, kGround, kVdd);
  n.add_vsource("vg", g, kGround, kVdd);
  n.add_nmos("m", d, g, s, nmos_params());
  n.add_capacitor("cl", s, kGround, 30e-15);
  Simulator sim(n);
  sim.run_for(50e-9);
  EXPECT_NEAR(sim.node_voltage(s), kVdd - 0.7, 0.1);
}

TEST(SimMos, NmosWithBoostedGatePassesFullLevel) {
  // Boosted word line (VPP = VDD + 1.2) passes a full VDD into the cell.
  Netlist n;
  const NodeId d = n.node("d"), g = n.node("g"), s = n.node("s");
  n.add_vsource("vd", d, kGround, kVdd);
  n.add_vsource("vg", g, kGround, kVdd + 1.2);
  n.add_nmos("m", d, g, s, nmos_params());
  n.add_capacitor("cl", s, kGround, 30e-15);
  Simulator sim(n);
  sim.run_for(50e-9);
  EXPECT_NEAR(sim.node_voltage(s), kVdd, 0.02);
}

TEST(SimMos, NmosDischargesToGroundFully) {
  Netlist n;
  const NodeId g = n.node("g"), s = n.node("cell");
  n.add_vsource("vg", g, kGround, kVdd);
  n.add_nmos("m", s, g, kGround, nmos_params());
  n.add_capacitor("cl", s, kGround, 30e-15);
  Simulator sim(n);
  sim.set_node_voltage(s, kVdd);
  sim.run_for(20e-9);
  EXPECT_NEAR(sim.node_voltage(s), 0.0, 0.01);
}

TEST(SimMos, CutoffIsolates) {
  Netlist n;
  const NodeId g = n.node("g"), s = n.node("cell"), d = n.node("bl");
  n.add_vsource("vg", g, kGround, 0.0);
  n.add_vsource("vbl", d, kGround, kVdd);
  n.add_nmos("m", d, g, s, nmos_params());
  n.add_capacitor("cl", s, kGround, 30e-15);
  Simulator sim(n);
  sim.set_node_voltage(s, 1.0);
  sim.run_for(20e-9);
  EXPECT_NEAR(sim.node_voltage(s), 1.0, 0.01);  // retained: device off
}

TEST(SimMos, InverterTransfersLogicLevels) {
  Netlist n;
  const NodeId vdd = n.node("vdd"), in = n.node("in"), out = n.node("out");
  n.add_vsource("vvdd", vdd, kGround, kVdd);
  const SourceId vin = n.add_vsource("vin", in, kGround, 0.0);
  n.add_pmos("mp", out, in, vdd, pmos_params());
  n.add_nmos("mn", out, in, kGround, nmos_params());
  n.add_capacitor("cl", out, kGround, 10e-15);
  Simulator sim(n);
  sim.run_for(10e-9);
  EXPECT_NEAR(sim.node_voltage(out), kVdd, 0.02);  // input low -> out high
  sim.set_source(vin, kVdd);
  sim.run_for(10e-9);
  EXPECT_NEAR(sim.node_voltage(out), 0.0, 0.02);  // input high -> out low
}

TEST(SimMos, CrossCoupledLatchAmplifiesSmallDifference) {
  // The sense-amplifier core: NMOS/PMOS cross-coupled pairs, enabled rails.
  // A 150 mV initial difference must regenerate to a full-rail split.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId bt = n.node("bt"), bc = n.node("bc");
  const NodeId san = n.node("san"), sap = n.node("sap");
  n.add_vsource("vvdd", vdd, kGround, kVdd);
  const SourceId sen = n.add_vsource("sen", n.node("se"), kGround, 0.0);
  const SourceId sep = n.add_vsource("sep", n.node("seb"), kGround, kVdd);
  n.add_nmos("mn1", bt, bc, san, nmos_params());
  n.add_nmos("mn2", bc, bt, san, nmos_params());
  n.add_pmos("mp1", bt, bc, sap, pmos_params());
  n.add_pmos("mp2", bc, bt, sap, pmos_params());
  n.add_nmos("men", san, n.node("se"), kGround, nmos_params());
  n.add_pmos("mep", sap, n.node("seb"), vdd, pmos_params());
  n.add_capacitor("cbt", bt, kGround, 90e-15);
  n.add_capacitor("cbc", bc, kGround, 90e-15);
  n.add_capacitor("csan", san, kGround, 5e-15);
  n.add_capacitor("csap", sap, kGround, 5e-15);

  Simulator sim(n);
  sim.set_node_voltage(bt, 2.55);
  sim.set_node_voltage(bc, 2.40);
  sim.run_for(1e-9);
  sim.set_source(sen, kVdd);
  sim.set_source(sep, 0.0);
  sim.run_for(8e-9);
  EXPECT_GT(sim.node_voltage(bt), kVdd - 0.25);
  EXPECT_LT(sim.node_voltage(bc), 0.25);
}

TEST(SimMos, CrossCoupledLatchResolvesOppositePolarity) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId bt = n.node("bt"), bc = n.node("bc");
  const NodeId san = n.node("san"), sap = n.node("sap");
  n.add_vsource("vvdd", vdd, kGround, kVdd);
  const SourceId sen = n.add_vsource("sen", n.node("se"), kGround, 0.0);
  const SourceId sep = n.add_vsource("sep", n.node("seb"), kGround, kVdd);
  n.add_nmos("mn1", bt, bc, san, nmos_params());
  n.add_nmos("mn2", bc, bt, san, nmos_params());
  n.add_pmos("mp1", bt, bc, sap, pmos_params());
  n.add_pmos("mp2", bc, bt, sap, pmos_params());
  n.add_nmos("men", san, n.node("se"), kGround, nmos_params());
  n.add_pmos("mep", sap, n.node("seb"), vdd, pmos_params());
  n.add_capacitor("cbt", bt, kGround, 90e-15);
  n.add_capacitor("cbc", bc, kGround, 90e-15);
  n.add_capacitor("csan", san, kGround, 5e-15);
  n.add_capacitor("csap", sap, kGround, 5e-15);

  Simulator sim(n);
  sim.set_node_voltage(bt, 2.40);
  sim.set_node_voltage(bc, 2.55);
  sim.run_for(1e-9);
  sim.set_source(sen, kVdd);
  sim.set_source(sep, 0.0);
  sim.run_for(8e-9);
  EXPECT_LT(sim.node_voltage(bt), 0.25);
  EXPECT_GT(sim.node_voltage(bc), kVdd - 0.25);
}

TEST(SimMos, PmosPullsUpFully) {
  Netlist n;
  const NodeId vdd = n.node("vdd"), out = n.node("out");
  n.add_vsource("vvdd", vdd, kGround, kVdd);
  n.add_vsource("vg", n.node("g"), kGround, 0.0);
  n.add_pmos("mp", out, n.node("g"), vdd, pmos_params());
  n.add_capacitor("cl", out, kGround, 20e-15);
  Simulator sim(n);
  sim.run_for(20e-9);
  EXPECT_NEAR(sim.node_voltage(out), kVdd, 0.02);
}

}  // namespace
}  // namespace pf::spice
