// The solver fault-injection hook, the iteration/wall watchdogs and the
// context carried by ConvergenceError — the spice-level half of the
// robustness layer (the sweep-level half lives in analysis tests).
#include <gtest/gtest.h>

#include <cmath>

#include "pf/spice/fault_injection.hpp"
#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"

namespace pf::spice {
namespace {

using testing::InjectedFault;
using testing::InjectionSpec;
using testing::ScopedFaultPlan;

/// A driven RC pair: enough structure for real Newton iterations.
Netlist rc_circuit() {
  Netlist n;
  const NodeId vdd = n.add_rail("vdd", 3.3);
  const NodeId x = n.node("x");
  const NodeId y = n.node("y");
  n.add_resistor("r1", vdd, x, 10e3);
  n.add_resistor("r2", x, y, 10e3);
  n.add_capacitor("c1", x, kGround, 30e-15);
  n.add_capacitor("c2", y, kGround, 30e-15);
  return n;
}

TEST(FaultInjection, DisarmedByDefault) {
  EXPECT_FALSE(testing::armed());
  EXPECT_EQ(testing::current_injection(), nullptr);
}

TEST(FaultInjection, InjectedNonConvergenceThrowsForArmedContextOnly) {
  ScopedFaultPlan plan(
      {{"pt", {InjectedFault::kNonConvergence, /*fail_attempts=*/1}}});
  EXPECT_TRUE(testing::armed());

  // A context not in the plan runs clean.
  testing::set_context("other");
  {
    const Netlist n = rc_circuit();
    Simulator sim(n);
    EXPECT_NO_THROW(sim.run_for(1e-9));
  }

  testing::set_context("pt");
  {
    const Netlist n = rc_circuit();
    Simulator sim(n);
    try {
      sim.run_for(1e-9);
      FAIL() << "injection must throw";
    } catch (const ConvergenceError& e) {
      EXPECT_NE(std::string(e.what()).find("injected non-convergence"),
                std::string::npos);
    }
  }
  EXPECT_EQ(testing::injections_performed(), 1u);

  // Second attempt of the same key: the point has recovered.
  testing::set_context("pt");
  {
    const Netlist n = rc_circuit();
    Simulator sim(n);
    EXPECT_NO_THROW(sim.run_for(1e-9));
    EXPECT_EQ(sim.stats().injected_faults, 0u);
  }
  testing::clear_context();
}

TEST(FaultInjection, SingularMatrixFlavourNamesThePivot) {
  ScopedFaultPlan plan(
      {{"pt", {InjectedFault::kSingularMatrix, /*fail_attempts=*/1}}});
  testing::set_context("pt");
  const Netlist n = rc_circuit();
  Simulator sim(n);
  try {
    sim.run_for(1e-9);
    FAIL() << "injection must throw";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos);
  }
  testing::clear_context();
}

TEST(FaultInjection, SlowConvergenceTripsIterationWatchdogOnly) {
  InjectionSpec slow;
  slow.kind = InjectedFault::kSlowConvergence;
  slow.fail_attempts = 1;
  slow.slow_penalty_iters = 5000;
  ScopedFaultPlan plan({{"pt", slow}});

  // Without a watchdog the run completes; the stats are merely inflated.
  testing::set_context("pt");
  {
    const Netlist n = rc_circuit();
    Simulator sim(n);
    EXPECT_NO_THROW(sim.run_for(1e-9));
    EXPECT_GE(sim.stats().nr_iterations, 5000u);
    EXPECT_EQ(sim.stats().injected_faults, 1u);
  }

  // With the budget below the penalty the watchdog converts slowness into a
  // bounded, reportable failure. (fail_attempts=1 was consumed above, so
  // re-arm a fresh plan.)
  ScopedFaultPlan plan2({{"pt", slow}});
  testing::set_context("pt");
  {
    const Netlist n = rc_circuit();
    SimOptions opt;
    opt.max_total_nr_iters = 1000;
    Simulator sim(n, opt);
    try {
      sim.run_for(1e-9);
      FAIL() << "watchdog must trip";
    } catch (const ConvergenceError& e) {
      EXPECT_NE(std::string(e.what()).find("iteration watchdog"),
                std::string::npos);
    }
  }
  testing::clear_context();
}

TEST(FaultInjection, CorruptVoltageIsSilentButWrong) {
  // The classification-mutation flavour: run_for returns NORMALLY, every
  // voltage stays finite, yet the levels are mirrored about corrupt_bias.
  // Nothing in the solver's own error machinery may notice — that is the
  // whole point; only the pf::testing differential oracle convicts it.
  Netlist n = rc_circuit();
  const NodeId x = *n.find_node("x");
  const NodeId y = *n.find_node("y");

  InjectionSpec corrupt;
  corrupt.kind = InjectedFault::kCorruptVoltage;
  corrupt.fail_attempts = 1 << 30;
  corrupt.corrupt_bias = 3.3;
  ScopedFaultPlan plan({{"pt", corrupt}});

  Simulator sim(n);
  sim.run_for(50e-9);  // context not set: settles cleanly despite the plan
  const double clean_x = sim.node_voltage(x);
  const double clean_y = sim.node_voltage(y);
  EXPECT_EQ(sim.stats().injected_faults, 0u);

  testing::set_context("pt");
  EXPECT_NO_THROW(sim.run_for(1e-9));
  EXPECT_GE(sim.stats().injected_faults, 1u);
  const double vx = sim.node_voltage(x);
  const double vy = sim.node_voltage(y);
  EXPECT_TRUE(std::isfinite(vx));
  EXPECT_TRUE(std::isfinite(vy));
  EXPECT_NEAR(vx, corrupt.corrupt_bias - clean_x, 1e-9);
  EXPECT_NEAR(vy, corrupt.corrupt_bias - clean_y, 1e-9);
  testing::clear_context();
}

TEST(Watchdog, IterationBudgetBoundsNaturalRuns) {
  const Netlist n = rc_circuit();
  SimOptions opt;
  opt.max_total_nr_iters = 3;  // absurdly small: trips within a few steps
  Simulator sim(n, opt);
  EXPECT_THROW(sim.run_for(1e-8), ConvergenceError);
}

TEST(Watchdog, WallClockBudgetBoundsLongRuns) {
  const Netlist n = rc_circuit();
  SimOptions opt;
  opt.max_wall_seconds = 1e-9;  // any measurable work exceeds a nanosecond
  Simulator sim(n, opt);
  EXPECT_THROW(sim.run_for(1e-6), ConvergenceError);
}

TEST(Watchdog, ZeroBudgetsMeanUnlimited) {
  const Netlist n = rc_circuit();
  Simulator sim(n);  // defaults: both watchdogs off
  EXPECT_NO_THROW(sim.run_for(1e-8));
  EXPECT_GT(sim.stats().nr_iterations, 3u);
}

TEST(ConvergenceContext, NaturalFailureNamesTimeStepAndWorstNode) {
  // vntol = 0 makes Newton formally unsatisfiable, so the step size
  // collapses below dt_min — deterministically, on any circuit.
  const Netlist n = rc_circuit();
  SimOptions opt;
  opt.vntol = 0.0;
  Simulator sim(n, opt);
  try {
    sim.run_for(1e-9);
    FAIL() << "must fail to converge";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed to converge at t="), std::string::npos)
        << what;
    EXPECT_NE(what.find("step h="), std::string::npos) << what;
    EXPECT_NE(what.find("worst residual node '"), std::string::npos) << what;
  }
}

TEST(ConvergenceContext, CeilingRunAppendsItsContextAndRestoresOptions) {
  const Netlist n = rc_circuit();
  SimOptions opt;
  opt.vntol = 0.0;
  Simulator sim(n, opt);
  const double dt_max_before = sim.options().dt_max;
  try {
    sim.run_for_with_ceiling(1e-6, 1e-8);
    FAIL() << "must fail to converge";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("relaxed-ceiling"),
              std::string::npos);
  }
  EXPECT_DOUBLE_EQ(sim.options().dt_max, dt_max_before);
}

}  // namespace
}  // namespace pf::spice
