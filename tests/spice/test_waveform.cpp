#include "pf/spice/waveform.hpp"

#include <gtest/gtest.h>

namespace pf::spice {
namespace {

TEST(Pwl, DcValueEverywhere) {
  Pwl w(2.5);
  EXPECT_DOUBLE_EQ(w.value(-1.0), 2.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(w.value(1e9), 2.5);
}

TEST(Pwl, LinearInterpolation) {
  Pwl w;
  w.add_point(0.0, 0.0);
  w.add_point(1.0, 2.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(0.25), 0.5);
}

TEST(Pwl, ClampsOutsideRange) {
  Pwl w;
  w.add_point(1.0, 5.0);
  w.add_point(2.0, 7.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(w.value(3.0), 7.0);
}

TEST(Pwl, RejectsDecreasingTime) {
  Pwl w;
  w.add_point(1.0, 0.0);
  EXPECT_THROW(w.add_point(0.5, 1.0), pf::Error);
}

TEST(Pwl, BreakpointsBetweenExclusive) {
  Pwl w;
  w.add_point(0.0, 0.0);
  w.add_point(1.0, 1.0);
  w.add_point(2.0, 0.0);
  const auto bp = w.breakpoints_between(0.0, 2.0);
  ASSERT_EQ(bp.size(), 1u);
  EXPECT_DOUBLE_EQ(bp[0], 1.0);
}

TEST(Pwl, CompactKeepsValueAtCut) {
  Pwl w;
  w.add_point(0.0, 0.0);
  w.add_point(2.0, 4.0);
  w.compact_before(1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 3.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.0);  // clamped to new first point
}

TEST(RampedLevel, IdleHoldsValue) {
  RampedLevel r(1.65);
  EXPECT_DOUBLE_EQ(r.value(0.0), 1.65);
  EXPECT_DOUBLE_EQ(r.value(5.0), 1.65);
}

TEST(RampedLevel, RampInterpolatesAndSettles) {
  RampedLevel r(0.0);
  r.retarget(1.0, 3.3, 0.2);
  EXPECT_DOUBLE_EQ(r.value(1.0), 0.0);
  EXPECT_NEAR(r.value(1.1), 1.65, 1e-12);
  EXPECT_DOUBLE_EQ(r.value(1.2), 3.3);
  EXPECT_DOUBLE_EQ(r.value(9.9), 3.3);
  EXPECT_DOUBLE_EQ(r.ramp_end(), 1.2);
}

TEST(RampedLevel, RetargetMidRampStartsFromCurrentValue) {
  RampedLevel r(0.0);
  r.retarget(0.0, 2.0, 1.0);
  // Halfway up (value 1.0), retarget back down.
  r.retarget(0.5, 0.0, 0.5);
  EXPECT_NEAR(r.value(0.5), 1.0, 1e-12);
  EXPECT_NEAR(r.value(0.75), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.value(1.0), 0.0);
}

TEST(RampedLevel, ZeroSlewIsStep) {
  RampedLevel r(0.0);
  r.retarget(1.0, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(r.value(1.0), 5.0);
}

}  // namespace
}  // namespace pf::spice
