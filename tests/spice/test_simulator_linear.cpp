// Physics checks of the transient engine on linear circuits with known
// closed-form behaviour: resistive dividers, RC charge/decay, charge sharing
// between floating capacitors (the mechanism behind every partial fault in
// the paper).
#include <gtest/gtest.h>

#include <cmath>

#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"

namespace pf::spice {
namespace {

TEST(SimLinear, ResistiveDividerSettles) {
  Netlist n;
  const NodeId top = n.node("top"), mid = n.node("mid");
  n.add_vsource("v", top, kGround, 10.0);
  n.add_resistor("r1", top, mid, 1e3);
  n.add_resistor("r2", mid, kGround, 3e3);
  Simulator sim(n);
  sim.run_for(10e-9);
  EXPECT_NEAR(sim.node_voltage(mid), 7.5, 1e-4);
}

TEST(SimLinear, RcChargeMatchesExponential) {
  Netlist n;
  const NodeId in = n.node("in"), out = n.node("out");
  n.add_vsource("v", in, kGround, 1.0);
  n.add_resistor("r", in, out, 100e3);   // tau = 100k * 30f = 3 ns
  n.add_capacitor("c", out, kGround, 30e-15);
  SimOptions opt;
  opt.default_slew = 1e-12;
  Simulator sim(n, opt);
  sim.run_for(3e-9);
  // v(t) = 1 - exp(-t/tau), t = tau -> 0.632. Backward Euler with the
  // adaptive step keeps a few-percent local error here.
  EXPECT_NEAR(sim.node_voltage(out), 1.0 - std::exp(-1.0), 0.03);
  sim.run_for(27e-9);  // 10 tau total: fully charged
  EXPECT_NEAR(sim.node_voltage(out), 1.0, 1e-3);
}

TEST(SimLinear, RcDecayFromInitialCondition) {
  Netlist n;
  const NodeId x = n.node("x");
  n.add_resistor("r", x, kGround, 200e3);
  n.add_capacitor("c", x, kGround, 50e-15);  // tau = 10 ns
  Simulator sim(n);
  sim.set_node_voltage(x, 2.0);
  sim.run_for(10e-9);
  EXPECT_NEAR(sim.node_voltage(x), 2.0 * std::exp(-1.0), 0.05);
}

TEST(SimLinear, FloatingCapacitorHoldsVoltage) {
  // A floating node (only gmin leak) must hold its overridden voltage over
  // the whole nanosecond timescale of a memory operation.
  Netlist n;
  const NodeId f = n.node("floating_bl");
  n.add_capacitor("cbl", f, kGround, 90e-15);
  Simulator sim(n);
  sim.set_node_voltage(f, 1.234);
  sim.run_for(50e-9);
  EXPECT_NEAR(sim.node_voltage(f), 1.234, 1e-4);
}

TEST(SimLinear, ChargeSharingBetweenTwoCaps) {
  // C1 = 30 fF at 3.3 V shares with C2 = 90 fF at 0.5 V through 1 kOhm.
  // Final voltage = (30*3.3 + 90*0.5) / 120 = 1.2 V.
  Netlist n;
  const NodeId a = n.node("a"), b = n.node("b");
  n.add_capacitor("c1", a, kGround, 30e-15);
  n.add_capacitor("c2", b, kGround, 90e-15);
  n.add_resistor("r", a, b, 1e3);
  Simulator sim(n);
  sim.set_node_voltage(a, 3.3);
  sim.set_node_voltage(b, 0.5);
  sim.run_for(20e-9);
  EXPECT_NEAR(sim.node_voltage(a), 1.2, 1e-3);
  EXPECT_NEAR(sim.node_voltage(b), 1.2, 1e-3);
}

TEST(SimLinear, ChargeSharingThroughLargeDefectIsPartial) {
  // Same circuit but through 1 MOhm: tau = 1e6 * 22.5f (series C) = 22.5 ns,
  // so after 5 ns the transfer must be visibly incomplete. This is the open-
  // defect mechanism: the operation window closes before equalization.
  Netlist n;
  const NodeId a = n.node("a"), b = n.node("b");
  n.add_capacitor("c1", a, kGround, 30e-15);
  n.add_capacitor("c2", b, kGround, 90e-15);
  n.add_resistor("r_def", a, b, 1e6);
  Simulator sim(n);
  sim.set_node_voltage(a, 3.3);
  sim.set_node_voltage(b, 0.0);
  sim.run_for(5e-9);
  EXPECT_GT(sim.node_voltage(a), 2.5);   // far from equalized 0.825
  EXPECT_LT(sim.node_voltage(b), 0.35);
}

TEST(SimLinear, SourceRampIsFollowed) {
  Netlist n;
  const NodeId out = n.node("out");
  const SourceId v = n.add_vsource("v", out, kGround, 0.0);
  n.add_resistor("load", out, kGround, 1e6);
  Simulator sim(n);
  sim.run_for(1e-9);
  sim.set_source(v, 3.3, 1e-9);
  sim.run_for(0.5e-9);
  EXPECT_NEAR(sim.node_voltage(out), 1.65, 0.02);
  sim.run_for(2e-9);
  EXPECT_NEAR(sim.node_voltage(out), 3.3, 1e-6);
}

TEST(SimLinear, OverriddenDrivenNodeSnapsBack) {
  Netlist n;
  const NodeId out = n.node("out");
  n.add_vsource("v", out, kGround, 2.5);
  Simulator sim(n);
  sim.run_for(1e-9);
  sim.set_node_voltage(out, 0.0);
  sim.run_for(1e-9);
  EXPECT_NEAR(sim.node_voltage(out), 2.5, 1e-6);
}

TEST(SimLinear, SeriesVoltageSourcesStack) {
  Netlist n;
  const NodeId a = n.node("a"), b = n.node("b");
  n.add_vsource("v1", a, kGround, 1.0);
  n.add_vsource("v2", b, a, 2.0);
  n.add_resistor("r", b, kGround, 1e3);
  Simulator sim(n);
  sim.run_for(5e-9);
  EXPECT_NEAR(sim.node_voltage(b), 3.0, 1e-6);
}

TEST(SimLinear, TimeAdvancesExactly) {
  Netlist n;
  n.add_resistor("r", n.node("x"), kGround, 1.0);
  n.add_vsource("v", n.node("x"), kGround, 1.0);
  Simulator sim(n);
  sim.run_for(3.7e-9);
  EXPECT_NEAR(sim.time(), 3.7e-9, 1e-18);
  sim.run_for(0.0);
  EXPECT_NEAR(sim.time(), 3.7e-9, 1e-18);
}

TEST(SimLinear, StatsAccumulate) {
  Netlist n;
  n.add_capacitor("c", n.node("x"), kGround, 1e-15);
  n.add_resistor("r", n.node("x"), kGround, 1e3);
  Simulator sim(n);
  sim.run_for(1e-9);
  EXPECT_GT(sim.stats().steps, 0u);
  EXPECT_GE(sim.stats().nr_iterations, sim.stats().steps);
}

TEST(SimLinear, StepCallbackSeesMonotoneTime) {
  Netlist n;
  n.add_capacitor("c", n.node("x"), kGround, 10e-15);
  n.add_resistor("r", n.node("x"), kGround, 1e4);
  Simulator sim(n);
  sim.set_node_voltage(n.find_node("x").value(), 1.0);
  double last_t = -1.0;
  size_t calls = 0;
  sim.run_for(2e-9, [&](double t, const Simulator&) {
    EXPECT_GT(t, last_t);
    last_t = t;
    ++calls;
  });
  EXPECT_GT(calls, 0u);
}

}  // namespace
}  // namespace pf::spice
