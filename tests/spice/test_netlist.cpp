#include "pf/spice/netlist.hpp"

#include <gtest/gtest.h>

namespace pf::spice {
namespace {

TEST(Netlist, GroundIsNodeZero) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_EQ(n.node_name(kGround), "0");
}

TEST(Netlist, NodeFindOrCreate) {
  Netlist n;
  const NodeId a = n.node("bl_t");
  EXPECT_EQ(n.node("bl_t"), a);
  EXPECT_NE(n.node("bl_c"), a);
  EXPECT_EQ(n.node_count(), 3u);  // ground + 2
  EXPECT_TRUE(n.find_node("bl_t").has_value());
  EXPECT_FALSE(n.find_node("nope").has_value());
}

TEST(Netlist, AddDevicesAndQuery) {
  Netlist n;
  const NodeId a = n.node("a"), b = n.node("b");
  n.add_resistor("r1", a, b, 1e3);
  n.add_capacitor("c1", b, kGround, 30e-15);
  const SourceId v = n.add_vsource("vdd", a, kGround, 3.3);
  n.add_nmos("m1", a, b, kGround, MosParams{});
  n.add_pmos("m2", b, a, kGround, MosParams{});
  EXPECT_EQ(n.resistors().size(), 1u);
  EXPECT_EQ(n.capacitors().size(), 1u);
  EXPECT_EQ(n.vsources().size(), 1u);
  EXPECT_EQ(n.mosfets().size(), 2u);
  EXPECT_TRUE(n.mosfets()[1].is_pmos);
  EXPECT_EQ(n.find_source("vdd"), v);
  EXPECT_THROW(n.find_source("vpp"), pf::Error);
}

TEST(Netlist, RejectsNonPositiveValues) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.add_resistor("r", a, kGround, 0.0), pf::Error);
  EXPECT_THROW(n.add_resistor("r", a, kGround, -5.0), pf::Error);
  EXPECT_THROW(n.add_capacitor("c", a, kGround, 0.0), pf::Error);
}

TEST(Netlist, SetResistanceUpdatesValue) {
  Netlist n;
  n.add_resistor("r_def", n.node("x"), n.node("y"), 1.0);
  n.set_resistance("r_def", 150e3);
  EXPECT_DOUBLE_EQ(n.resistors()[0].ohms, 150e3);
  EXPECT_THROW(n.set_resistance("missing", 1.0), pf::Error);
  EXPECT_THROW(n.set_resistance("r_def", -1.0), pf::Error);
}

TEST(Netlist, BadNodeIdRejected) {
  Netlist n;
  EXPECT_THROW(n.add_resistor("r", 99, kGround, 1.0), pf::Error);
  EXPECT_THROW(n.node_name(42), pf::Error);
}

}  // namespace
}  // namespace pf::spice
