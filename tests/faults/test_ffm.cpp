#include "pf/faults/ffm.hpp"

#include <gtest/gtest.h>

namespace pf::faults {
namespace {

TEST(FfmClassify, CanonicalFpsClassifyToThemselves) {
  for (Ffm ffm : all_ffms()) {
    EXPECT_EQ(classify(canonical_fp(ffm)), ffm) << ffm_name(ffm);
  }
}

TEST(FfmClassify, PaperTableOneCompletedFps) {
  // Completed FPs are classified by their final victim operation.
  EXPECT_EQ(classify(FaultPrimitive::parse("<[w1 w1 w0] r0/1/1>")),
            Ffm::kRDF0);
  EXPECT_EQ(classify(FaultPrimitive::parse("<0v [w1BL] r0v/1/1>")),
            Ffm::kRDF0);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1v [w0BL] r1v/0/0>")),
            Ffm::kRDF1);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1v [w1BL] r1v/0/1>")),
            Ffm::kDRDF1);
  EXPECT_EQ(classify(FaultPrimitive::parse("<0v [w1BL] r0v/0/1>")),
            Ffm::kIRF0);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1v [w0BL] r1v/1/0>")),
            Ffm::kIRF1);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1v [w0BL] w1v/0/->")),
            Ffm::kWDF1);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1v [w1BL] w0v/1/->")),
            Ffm::kTFDown);
}

TEST(FfmClassify, NonFaultIsUnknown) {
  FaultPrimitive ok;
  ok.sos = Sos::parse("1r1");
  ok.faulty_state = 1;
  ok.read_result = 1;
  EXPECT_EQ(classify(ok), Ffm::kUnknown);
}

TEST(FfmClassify, WriteWithReadResultIsUnknown) {
  FaultPrimitive fp;
  fp.sos = Sos::parse("0w1");
  fp.faulty_state = 0;
  fp.read_result = 1;  // nonsensical: writes have no output
  EXPECT_EQ(classify(fp), Ffm::kUnknown);
}

TEST(FfmClassify, AggressorFinalOpIsUnknown) {
  FaultPrimitive fp;
  fp.sos = Sos::parse("1v w0BL");
  fp.faulty_state = 0;
  fp.read_result = -1;
  EXPECT_EQ(classify(fp), Ffm::kUnknown);
}

TEST(FfmClassify, StateFaults) {
  EXPECT_EQ(classify(FaultPrimitive::parse("<0/1/->")), Ffm::kSF0);
  EXPECT_EQ(classify(FaultPrimitive::parse("<1/0/->")), Ffm::kSF1);
}

TEST(FfmComplement, MatchesPaperPairs) {
  // The Sim./Com. FFM column pairs of Table 1.
  EXPECT_EQ(complement_ffm(Ffm::kRDF0), Ffm::kRDF1);
  EXPECT_EQ(complement_ffm(Ffm::kRDF1), Ffm::kRDF0);
  EXPECT_EQ(complement_ffm(Ffm::kDRDF1), Ffm::kDRDF0);
  EXPECT_EQ(complement_ffm(Ffm::kIRF0), Ffm::kIRF1);
  EXPECT_EQ(complement_ffm(Ffm::kWDF1), Ffm::kWDF0);
  EXPECT_EQ(complement_ffm(Ffm::kTFUp), Ffm::kTFDown);
  EXPECT_EQ(complement_ffm(Ffm::kSF0), Ffm::kSF1);
}

TEST(FfmComplement, IsInvolution) {
  for (Ffm ffm : all_ffms())
    EXPECT_EQ(complement_ffm(complement_ffm(ffm)), ffm);
}

TEST(FfmComplement, AgreesWithFpComplement) {
  // Complementing the canonical FP and classifying it must equal the
  // complementary FFM.
  for (Ffm ffm : all_ffms()) {
    EXPECT_EQ(classify(canonical_fp(ffm).complement()), complement_ffm(ffm))
        << ffm_name(ffm);
  }
}

TEST(FfmNames, AllDistinctAndNonEmpty) {
  std::set<std::string_view> names;
  for (Ffm ffm : all_ffms()) {
    const auto name = ffm_name(ffm);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), 12u);
}

}  // namespace
}  // namespace pf::faults
