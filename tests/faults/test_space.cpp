// FP-space enumeration vs. the Section 4 closed form.
#include <gtest/gtest.h>

#include <set>

#include "pf/faults/ffm.hpp"
#include "pf/faults/space.hpp"

namespace pf::faults {
namespace {

TEST(FpSpace, ZeroOpsAreTheTwoStateFaults) {
  const auto fps = enumerate_single_cell_fps(0);
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_EQ(classify(fps[0]), Ffm::kSF0);
  EXPECT_EQ(classify(fps[1]), Ffm::kSF1);
}

TEST(FpSpace, OneOpYieldsTenFps) {
  // The paper: analysis with #O = 0 and 1 covers 2 + 10 = 12 FPs.
  const auto fps = enumerate_single_cell_fps(1);
  EXPECT_EQ(fps.size(), 10u);
  // They are exactly the ten canonical one-op FFMs.
  std::set<Ffm> seen;
  for (const auto& fp : fps) {
    const Ffm f = classify(fp);
    EXPECT_NE(f, Ffm::kUnknown) << fp.to_string();
    seen.insert(f);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_FALSE(seen.contains(Ffm::kSF0));
  EXPECT_FALSE(seen.contains(Ffm::kSF1));
}

TEST(FpSpace, ClosedFormMatchesEnumerationUpToFourOps) {
  for (int n = 0; n <= 4; ++n) {
    EXPECT_EQ(enumerate_single_cell_fps(n).size(), count_single_cell_fps(n))
        << "#O = " << n;
  }
}

TEST(FpSpace, CountsAreTwoThenTenTimesPowersOfThree) {
  EXPECT_EQ(count_single_cell_fps(0), 2u);
  EXPECT_EQ(count_single_cell_fps(1), 10u);
  EXPECT_EQ(count_single_cell_fps(2), 30u);
  EXPECT_EQ(count_single_cell_fps(3), 90u);
  EXPECT_EQ(count_single_cell_fps(4), 270u);
}

TEST(FpSpace, CumulativeGrowth) {
  EXPECT_EQ(cumulative_single_cell_fps(1), 12u);   // paper's "12 FPs"
  EXPECT_EQ(cumulative_single_cell_fps(4), 402u);  // straight-forward cost
}

TEST(FpSpace, AllEnumeratedAreFaults) {
  for (int n = 0; n <= 3; ++n)
    for (const auto& fp : enumerate_single_cell_fps(n))
      EXPECT_TRUE(fp.is_fault()) << fp.to_string();
}

TEST(FpSpace, AllEnumeratedAreDistinct) {
  for (int n = 0; n <= 3; ++n) {
    const auto fps = enumerate_single_cell_fps(n);
    std::set<std::string> keys;
    for (const auto& fp : fps) EXPECT_TRUE(keys.insert(fp.to_string()).second);
    EXPECT_EQ(keys.size(), fps.size());
  }
}

TEST(FpSpace, EnumeratedSosLengthsAreExact) {
  for (const auto& fp : enumerate_single_cell_fps(3)) {
    EXPECT_EQ(fp.sos.num_ops(), 3);
    EXPECT_EQ(fp.sos.num_cells(), 1);
  }
}

TEST(FpSpace, ReadsCarryExplicitExpectedValues) {
  for (const auto& fp : enumerate_single_cell_fps(2))
    for (const auto& op : fp.sos.ops) {
      if (op.is_read()) {
        EXPECT_GE(op.expected, 0);
      }
    }
}

TEST(FpSpace, ComplementClosesTheSpace) {
  // The complement of every enumerated FP is itself in the enumeration.
  const auto fps = enumerate_single_cell_fps(2);
  std::set<std::string> keys;
  for (const auto& fp : fps) keys.insert(fp.to_string());
  for (const auto& fp : fps)
    EXPECT_TRUE(keys.contains(fp.complement().to_string()))
        << fp.to_string();
}

}  // namespace
}  // namespace pf::faults
