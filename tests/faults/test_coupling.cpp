// The two-cell coupling-fault taxonomy (extension module).
#include <gtest/gtest.h>

#include <set>

#include "pf/faults/coupling.hpp"

namespace pf::faults {
namespace {

using Kind = CouplingFault::Kind;

TEST(Coupling, TaxonomyHasThirtyTwoFaults) {
  EXPECT_EQ(all_coupling_faults().size(), 32u);
}

TEST(Coupling, AllNamesDistinct) {
  std::set<std::string> names;
  for (const auto& cf : all_coupling_faults())
    EXPECT_TRUE(names.insert(cf.name()).second) << cf.name();
}

TEST(Coupling, NamesAreReadable) {
  CouplingFault cfst{Kind::kState, 1, Op::Kind::kWrite0, 0};
  EXPECT_EQ(cfst.name(), "CFst<1;0->1>");
  CouplingFault cfds{Kind::kDisturb, 1, Op::Kind::kWrite1, 0};
  EXPECT_EQ(cfds.name(), "CFds<w1a;0->1>");
  CouplingFault cfrd{Kind::kReadDestructive, 0, Op::Kind::kWrite0, 1};
  EXPECT_EQ(cfrd.name(), "CFrd<0;r1>");
}

TEST(Coupling, ToFpProducesTwoCellPrimitives) {
  CouplingFault cfds{Kind::kDisturb, 1, Op::Kind::kWrite1, 0};
  const FaultPrimitive fp = cfds.to_fp();
  EXPECT_EQ(fp.sos.num_cells(), 2);
  EXPECT_EQ(fp.to_string(), "<0v w1BL/1/->");
  EXPECT_TRUE(fp.is_fault());
}

TEST(Coupling, StateFaultFpHasNoOps) {
  CouplingFault cfst{Kind::kState, 1, Op::Kind::kWrite0, 0};
  const FaultPrimitive fp = cfst.to_fp();
  EXPECT_EQ(fp.sos.num_ops(), 0);
  EXPECT_EQ(fp.sos.initial_aggressor, 1);
  EXPECT_EQ(fp.faulty_state, 1);
}

TEST(Coupling, ReadFaultFpsCarryReadResults) {
  CouplingFault cfrd{Kind::kReadDestructive, 0, Op::Kind::kWrite0, 1};
  EXPECT_EQ(cfrd.to_fp().to_string(), "<0a 1v r1v/0/0>");
  CouplingFault cfir{Kind::kIncorrectRead, 0, Op::Kind::kWrite0, 0};
  EXPECT_EQ(cfir.to_fp().to_string(), "<0a 0v r0v/0/1>");
}

TEST(Coupling, EveryTaxonomyFpIsAFault) {
  for (const auto& cf : all_coupling_faults())
    EXPECT_TRUE(cf.to_fp().is_fault()) << cf.name();
}

TEST(Coupling, ComplementIsInvolutionAndStaysInTaxonomy) {
  const auto& all = all_coupling_faults();
  std::set<std::string> names;
  for (const auto& cf : all) names.insert(cf.name());
  for (const auto& cf : all) {
    EXPECT_EQ(cf.complement().complement(), cf) << cf.name();
    EXPECT_TRUE(names.contains(cf.complement().name())) << cf.name();
  }
}

TEST(Coupling, TransitionFpExpectationsAreConsistent) {
  CouplingFault cftr{Kind::kTransition, 1, Op::Kind::kWrite0, 0};
  const FaultPrimitive fp = cftr.to_fp();
  // Victim starts 0, writes 1, transition fails -> faulty state 0.
  EXPECT_EQ(fp.sos.expected_final_victim(), 1);
  EXPECT_EQ(fp.faulty_state, 0);
}

}  // namespace
}  // namespace pf::faults
