// Parameterized properties of the FP algebra over the enumerated space.
#include <gtest/gtest.h>

#include "pf/faults/ffm.hpp"
#include "pf/faults/space.hpp"

namespace pf::faults {
namespace {

class FpSpaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(FpSpaceProperty, ParsePrintRoundTripIsIdentity) {
  for (const auto& fp : enumerate_single_cell_fps(GetParam())) {
    const FaultPrimitive reparsed = FaultPrimitive::parse(fp.to_string());
    EXPECT_EQ(reparsed, fp) << fp.to_string();
  }
}

TEST_P(FpSpaceProperty, ComplementIsInvolution) {
  for (const auto& fp : enumerate_single_cell_fps(GetParam()))
    EXPECT_EQ(fp.complement().complement(), fp) << fp.to_string();
}

TEST_P(FpSpaceProperty, ComplementPreservesFaultiness) {
  for (const auto& fp : enumerate_single_cell_fps(GetParam()))
    EXPECT_TRUE(fp.complement().is_fault()) << fp.to_string();
}

TEST_P(FpSpaceProperty, ComplementPreservesMetrics) {
  for (const auto& fp : enumerate_single_cell_fps(GetParam())) {
    EXPECT_EQ(fp.complement().sos.num_ops(), fp.sos.num_ops());
    EXPECT_EQ(fp.complement().sos.num_cells(), fp.sos.num_cells());
  }
}

TEST_P(FpSpaceProperty, ClassificationCommutesWithComplement) {
  // classify(complement(fp)) == complement_ffm(classify(fp)) for every FP
  // in the space (kUnknown maps to kUnknown).
  for (const auto& fp : enumerate_single_cell_fps(GetParam())) {
    EXPECT_EQ(classify(fp.complement()), complement_ffm(classify(fp)))
        << fp.to_string();
  }
}

TEST_P(FpSpaceProperty, ExpectedReadMatchesLastOpDigit) {
  for (const auto& fp : enumerate_single_cell_fps(GetParam())) {
    const auto& ops = fp.sos.ops;
    if (!ops.empty() && ops.back().is_read()) {
      EXPECT_EQ(fp.sos.expected_read(), ops.back().expected)
          << fp.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UpToThreeOps, FpSpaceProperty,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace pf::faults
