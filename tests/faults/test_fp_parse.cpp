// Parsing and printing of the paper's FP / SOS notation, including the
// completing-operation brackets and aggressor subscripts.
#include <gtest/gtest.h>

#include "pf/faults/fp.hpp"

namespace pf::faults {
namespace {

TEST(SosParse, SimpleReadSos) {
  const Sos s = Sos::parse("1r1");
  EXPECT_EQ(s.initial_victim, 1);
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_TRUE(s.ops[0].is_read());
  EXPECT_EQ(s.ops[0].expected, 1);
  EXPECT_EQ(s.ops[0].target, CellRole::kVictim);
  EXPECT_EQ(s.num_cells(), 1);
  EXPECT_EQ(s.num_ops(), 1);
}

TEST(SosParse, SimpleWriteSos) {
  const Sos s = Sos::parse("0w1");
  EXPECT_EQ(s.initial_victim, 0);
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].kind, Op::Kind::kWrite1);
  EXPECT_EQ(s.expected_final_victim(), 1);
}

TEST(SosParse, StateOnlySos) {
  const Sos s = Sos::parse("1");
  EXPECT_EQ(s.initial_victim, 1);
  EXPECT_TRUE(s.ops.empty());
  EXPECT_EQ(s.num_cells(), 1);
  EXPECT_EQ(s.num_ops(), 0);
}

TEST(SosParse, CompletingBracketVictimOps) {
  const Sos s = Sos::parse("[w1 w1 w0] r0");
  EXPECT_EQ(s.initial_victim, -1);
  ASSERT_EQ(s.ops.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.ops[i].completing);
    EXPECT_EQ(s.ops[i].target, CellRole::kVictim);
  }
  EXPECT_FALSE(s.ops[3].completing);
  EXPECT_EQ(s.ops[3].expected, 0);
  EXPECT_EQ(s.expected_final_victim(), 0);
  EXPECT_EQ(s.num_ops(), 4);
  EXPECT_EQ(s.num_cells(), 1);
}

TEST(SosParse, AggressorBlSubscript) {
  const Sos s = Sos::parse("1v [w0BL] r1v");
  EXPECT_EQ(s.initial_victim, 1);
  ASSERT_EQ(s.ops.size(), 2u);
  EXPECT_EQ(s.ops[0].target, CellRole::kAggressorBl);
  EXPECT_TRUE(s.ops[0].completing);
  EXPECT_EQ(s.ops[1].target, CellRole::kVictim);
  EXPECT_EQ(s.num_cells(), 2);
  EXPECT_EQ(s.num_ops(), 2);
  EXPECT_TRUE(s.involves_aggressor());
}

TEST(SosParse, TwoCellSosFromTaxonomyPaper) {
  // "0a 0v w1a r1a r0v": #C = 2, #O = 3 (the paper's Section 4 example).
  const Sos s = Sos::parse("0a 0v w1a r1a r0v");
  EXPECT_EQ(s.initial_victim, 0);
  EXPECT_EQ(s.initial_aggressor, 0);
  EXPECT_EQ(s.num_cells(), 2);
  EXPECT_EQ(s.num_ops(), 3);
  EXPECT_EQ(s.ops[0].target, CellRole::kAggressorBl);
  EXPECT_EQ(s.ops[2].target, CellRole::kVictim);
}

TEST(SosParse, ExpectedReadTracksWrites) {
  EXPECT_EQ(Sos::parse("0w1r1").expected_read(), 1);
  EXPECT_EQ(Sos::parse("1r1").expected_read(), 1);
  EXPECT_EQ(Sos::parse("0w1").expected_read(), -1);  // ends in write
}

TEST(SosParse, RejectsMalformed) {
  EXPECT_THROW(Sos::parse(""), ParseError);
  EXPECT_THROW(Sos::parse("w"), ParseError);
  EXPECT_THROW(Sos::parse("wx"), ParseError);
  EXPECT_THROW(Sos::parse("[w0"), ParseError);
  EXPECT_THROW(Sos::parse("w0]"), ParseError);
  EXPECT_THROW(Sos::parse("[[w0]]"), ParseError);
  EXPECT_THROW(Sos::parse("r0 1"), ParseError);  // init after op
  EXPECT_THROW(Sos::parse("0 0"), ParseError);   // duplicate victim init
  EXPECT_THROW(Sos::parse("x"), ParseError);
}

TEST(SosRoundTrip, SimpleFormsPrintCompact) {
  EXPECT_EQ(Sos::parse("1r1").to_string(), "1r1");
  EXPECT_EQ(Sos::parse("0w1").to_string(), "0w1");
  EXPECT_EQ(Sos::parse("0").to_string(), "0");
  EXPECT_EQ(Sos::parse("0r0r0").to_string(), "0r0r0");
}

TEST(SosRoundTrip, BracketsAndSubscriptsPreserved) {
  EXPECT_EQ(Sos::parse("[w1 w1 w0] r0").to_string(), "[w1 w1 w0] r0");
  EXPECT_EQ(Sos::parse("1v [w0BL] r1v").to_string(), "1v [w0BL] r1v");
  EXPECT_EQ(Sos::parse("1v[w0bl]r1v").to_string(), "1v [w0BL] r1v");
}

TEST(SosRoundTrip, ParsePrintParseIsIdentity) {
  for (const char* text :
       {"1r1", "0w0", "1", "[w1 w1 w0] r0", "1v [w0BL] r1v",
        "0v [w1BL] r0v", "0a 0v w1a r1a r0v", "1v [w1BL] w0v"}) {
    const Sos s = Sos::parse(text);
    EXPECT_EQ(Sos::parse(s.to_string()), s) << text;
  }
}

TEST(FpParse, TableOneEntries) {
  const FaultPrimitive fp = FaultPrimitive::parse("<1v [w0BL] r1v/0/0>");
  EXPECT_EQ(fp.faulty_state, 0);
  EXPECT_EQ(fp.read_result, 0);
  EXPECT_EQ(fp.sos.num_cells(), 2);
  EXPECT_TRUE(fp.is_fault());
  EXPECT_EQ(fp.to_string(), "<1v [w0BL] r1v/0/0>");
}

TEST(FpParse, NoReadResultDash) {
  const FaultPrimitive fp = FaultPrimitive::parse("<0w1/0/->");
  EXPECT_EQ(fp.read_result, -1);
  EXPECT_TRUE(fp.is_fault());
  EXPECT_EQ(fp.to_string(), "<0w1/0/->");
}

TEST(FpParse, RejectsBadShape) {
  EXPECT_THROW(FaultPrimitive::parse("<0r0/1>"), ParseError);
  EXPECT_THROW(FaultPrimitive::parse("<0r0/x/1>"), ParseError);
  EXPECT_THROW(FaultPrimitive::parse("<0r0/1/2>"), ParseError);
}

TEST(FpFaultiness, NonDeviatingIsNotFault) {
  FaultPrimitive fp;
  fp.sos = Sos::parse("0r0");
  fp.faulty_state = 0;
  fp.read_result = 0;
  EXPECT_FALSE(fp.is_fault());
}

TEST(FpComplement, InvertsAllData) {
  const FaultPrimitive fp = FaultPrimitive::parse("<1v [w0BL] r1v/0/0>");
  const FaultPrimitive comp = fp.complement();
  EXPECT_EQ(comp.to_string(), "<0v [w1BL] r0v/1/1>");
  // Complement is an involution.
  EXPECT_EQ(comp.complement(), fp);
}

TEST(FpComplement, HandlesWritesAndDash) {
  const FaultPrimitive fp = FaultPrimitive::parse("<1v [w0BL] w1v/0/->");
  EXPECT_EQ(fp.complement().to_string(), "<0v [w1BL] w0v/1/->");
}

}  // namespace
}  // namespace pf::faults
