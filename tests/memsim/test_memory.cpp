// Behavioral memory: fault-free semantics and internal state tracking.
#include <gtest/gtest.h>

#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

TEST(Geometry, AddressMapping) {
  Geometry g{4, 8};
  EXPECT_EQ(g.num_cells(), 32);
  EXPECT_EQ(g.column_of(0), 0);
  EXPECT_EQ(g.column_of(9), 1);
  EXPECT_EQ(g.row_of(9), 1);
  EXPECT_FALSE(g.on_complement_bl(0));   // row 0: true BL
  EXPECT_TRUE(g.on_complement_bl(9));    // row 1: complement BL
  EXPECT_FALSE(g.on_complement_bl(17));  // row 2: true BL
}

TEST(Geometry, RawLevelInvertsOnComplementRows) {
  Geometry g{4, 4};
  EXPECT_EQ(g.raw_level(0, 1), 1);
  EXPECT_EQ(g.raw_level(4, 1), 0);  // row 1
  EXPECT_EQ(g.raw_level(4, 0), 1);
}

TEST(Memory, FaultFreeReadWrite) {
  Memory m(Geometry{4, 4});
  for (int a = 0; a < m.size(); ++a) {
    m.write(a, 1);
    EXPECT_EQ(m.read(a), 1);
    m.write(a, 0);
    EXPECT_EQ(m.read(a), 0);
  }
}

TEST(Memory, InitialStateAllZero) {
  Memory m(Geometry{2, 2});
  for (int a = 0; a < m.size(); ++a) EXPECT_EQ(m.cell(a), 0);
  EXPECT_EQ(m.bit_line_raw(0), -1);  // nothing driven yet
  EXPECT_EQ(m.buffer_raw(), -1);
}

TEST(Memory, WritesTrackBitLineRawWithPolarity) {
  Memory m(Geometry{4, 2});
  m.write(0, 1);  // row 0, column 0: true side
  EXPECT_EQ(m.bit_line_raw(0), 1);
  m.write(2, 1);  // row 1, column 0: complement side -> BT driven low
  EXPECT_EQ(m.bit_line_raw(0), 0);
  EXPECT_EQ(m.bit_line_raw(1), -1);  // other column untouched
}

TEST(Memory, ReadsRestoreBitLine) {
  Memory m(Geometry{4, 2});
  m.write(0, 1);
  m.write(1, 0);          // column 1
  EXPECT_EQ(m.read(0), 1);
  EXPECT_EQ(m.bit_line_raw(0), 1);  // restore drove the read value
}

TEST(Memory, BufferTracksLastRawIo) {
  Memory m(Geometry{4, 2});
  m.write(0, 1);
  EXPECT_EQ(m.buffer_raw(), 1);
  m.write(2, 1);  // complement row: raw 0
  EXPECT_EQ(m.buffer_raw(), 0);
  m.read(0);
  EXPECT_EQ(m.buffer_raw(), 1);
}

TEST(Memory, OperationCountAccumulates) {
  Memory m(Geometry{2, 2});
  m.write(0, 1);
  m.read(0);
  m.read(1);
  EXPECT_EQ(m.operations_executed(), 3u);
}

TEST(Memory, RejectsBadArguments) {
  Memory m(Geometry{2, 2});
  EXPECT_THROW(m.write(-1, 0), pf::Error);
  EXPECT_THROW(m.write(4, 0), pf::Error);
  EXPECT_THROW(m.write(0, 2), pf::Error);
  EXPECT_THROW(m.read(99), pf::Error);
  EXPECT_THROW(m.inject({99, faults::Ffm::kRDF0, Guard::none()}), pf::Error);
  EXPECT_THROW(m.inject({0, faults::Ffm::kUnknown, Guard::none()}), pf::Error);
}

}  // namespace
}  // namespace pf::memsim
