// Injected fault semantics: full FFMs, partial (guarded) faults, hidden
// (uncontrollable) guards.
#include <gtest/gtest.h>

#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

using faults::Ffm;

Geometry geom() { return Geometry{4, 2}; }  // victim 0 on true BL, column 0

TEST(FaultSemantics, FullRdf1FlipsAndDestroys) {
  Memory m(geom());
  m.inject({0, Ffm::kRDF1, Guard::none()});
  m.write(0, 1);
  EXPECT_EQ(m.read(0), 0);
  EXPECT_EQ(m.cell(0), 0);
}

TEST(FaultSemantics, Rdf1DoesNotAffectStoredZero) {
  Memory m(geom());
  m.inject({0, Ffm::kRDF1, Guard::none()});
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 0);
}

TEST(FaultSemantics, Drdf0ReadsCorrectButFlips) {
  Memory m(geom());
  m.inject({0, Ffm::kDRDF0, Guard::none()});
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 0) << "first (deceptive) read is correct";
  EXPECT_EQ(m.cell(0), 1);
  EXPECT_EQ(m.read(0), 1) << "the flipped state is visible afterwards";
}

TEST(FaultSemantics, Irf0MisreadsWithoutFlipping) {
  Memory m(geom());
  m.inject({0, Ffm::kIRF0, Guard::none()});
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 1);
  EXPECT_EQ(m.cell(0), 0);
  EXPECT_EQ(m.read(0), 1) << "misread persists because the cell is intact";
}

TEST(FaultSemantics, TransitionFaultBlocksUpTransition) {
  Memory m(geom());
  m.inject({0, Ffm::kTFUp, Guard::none()});
  m.write(0, 0);
  m.write(0, 1);  // up-transition fails
  EXPECT_EQ(m.read(0), 0);
}

TEST(FaultSemantics, Wdf1FlipsOnNonTransitionWrite) {
  Memory m(geom());
  m.inject({0, Ffm::kWDF1, Guard::none()});
  m.set_cell(0, 1);
  m.write(0, 1);  // non-transition write destroys
  EXPECT_EQ(m.cell(0), 0);
}

TEST(FaultSemantics, Sf0RaisesStoredZero) {
  Memory m(geom());
  m.inject({0, Ffm::kSF0, Guard::none()});
  m.write(0, 0);
  m.write(1, 1);  // any subsequent activity exposes the state fault
  EXPECT_EQ(m.read(0), 1);
}

TEST(PartialFaults, BitLineGuardControlsSensitization) {
  // The paper's partial RDF1: only sensitized when the true bit line of the
  // victim's column was left LOW.
  Memory m(geom());
  m.inject({0, Ffm::kRDF1, Guard::bit_line(0)});
  m.write(0, 1);           // BL left high by the write itself
  EXPECT_EQ(m.read(0), 1) << "w1 preconditioned the BL high: no fault";

  m.write(0, 1);
  m.write(2, 1);           // complement-row cell: drives the true BL LOW
  EXPECT_EQ(m.read(0), 0) << "completing operation sensitized the fault";
  EXPECT_EQ(m.cell(0), 0);
}

TEST(PartialFaults, SameBlWriteZeroAlsoCompletes) {
  Memory m(Geometry{4, 2});
  m.inject({0, Ffm::kRDF1, Guard::bit_line(0)});
  m.write(0, 1);
  m.write(4, 0);  // row 2, same column, true side: w0 drives BL low
  EXPECT_EQ(m.read(0), 0);
}

TEST(PartialFaults, OtherColumnWriteDoesNotComplete) {
  Memory m(geom());
  m.inject({0, Ffm::kRDF1, Guard::bit_line(0)});
  m.write(0, 1);
  m.write(1, 0);  // different column: BL of column 0 still high
  EXPECT_EQ(m.read(0), 1);
}

TEST(PartialFaults, BufferGuardedIrf) {
  // Open-8 style fault: r0 returns whatever the output buffer holds.
  Memory m(geom());
  m.inject({0, Ffm::kIRF0, Guard::buffer(1)});
  m.write(0, 0);  // buffer raw = 0
  EXPECT_EQ(m.read(0), 0) << "buffer holds 0: read happens to be correct";
  m.write(1, 1);  // buffer raw = 1 (same row, other column)
  EXPECT_EQ(m.read(0), 1) << "buffer holds 1: incorrect read";
}

TEST(PartialFaults, HiddenGuardActive) {
  Memory m(geom());
  m.inject({0, Ffm::kSF0, Guard::hidden(true)});
  m.write(0, 0);
  m.write(1, 0);
  EXPECT_EQ(m.read(0), 1);
}

TEST(PartialFaults, HiddenGuardInactiveNeverFires) {
  Memory m(geom());
  m.inject({0, Ffm::kSF0, Guard::hidden(false)});
  m.write(0, 0);
  for (int i = 0; i < 5; ++i) m.write(1, i % 2);
  EXPECT_EQ(m.read(0), 0);
}

TEST(PartialFaults, MultipleInjectedFaultsCoexist) {
  Memory m(geom());
  m.inject({0, Ffm::kRDF1, Guard::bit_line(0)});
  m.inject({1, Ffm::kIRF0, Guard::none()});
  m.write(0, 1);
  m.write(1, 0);
  EXPECT_EQ(m.read(1), 1);  // IRF0 at cell 1
  m.write(2, 1);            // completes the partial RDF1 at cell 0
  EXPECT_EQ(m.read(0), 0);
}

}  // namespace
}  // namespace pf::memsim
