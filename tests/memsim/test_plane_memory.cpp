// PlaneMemory: the word-parallel fault-population engine. Per-operation
// differential checks against the scalar Memory (the reference the lanes
// must be indistinguishable from), population bookkeeping, and the
// wide-address regression at 2^20 cells.
#include <gtest/gtest.h>

#include "pf/march/library.hpp"
#include "pf/march/test.hpp"
#include "pf/memsim/memory.hpp"
#include "pf/memsim/plane_memory.hpp"

namespace pf::memsim {
namespace {

using faults::CouplingFault;
using faults::Ffm;
using faults::Op;
using CfKind = CouplingFault::Kind;

Geometry geom() { return Geometry{4, 4}; }

/// All guard variants a population instance can carry.
std::vector<Guard> all_guards() {
  return {Guard::none(),   Guard::bit_line(0), Guard::bit_line(1),
          Guard::buffer(0), Guard::buffer(1),  Guard::hidden(true),
          Guard::hidden(false)};
}

TEST(PlaneMemory, RejectsBadPopulations) {
  EXPECT_THROW(PlaneMemory(geom(), {PopulationFault::single(
                               -1, Ffm::kRDF1, Guard::none())}),
               pf::Error);
  EXPECT_THROW(PlaneMemory(geom(), {PopulationFault::single(
                               16, Ffm::kRDF1, Guard::none())}),
               pf::Error);
  EXPECT_THROW(PlaneMemory(geom(), {PopulationFault::single(
                               0, Ffm::kUnknown, Guard::none())}),
               pf::Error);
  // Coupling: aggressor must be a distinct valid cell.
  const CouplingFault cf{CfKind::kState, 1, Op::Kind::kWrite0, 0};
  EXPECT_THROW(PlaneMemory(geom(), {PopulationFault::coupled(3, 3, cf)}),
               pf::Error);
  EXPECT_THROW(PlaneMemory(geom(), {PopulationFault::coupled(16, 3, cf)}),
               pf::Error);
}

TEST(PlaneMemory, EmptyPopulationActsFaultFree) {
  PlaneMemory plane(geom(), {});
  EXPECT_EQ(plane.population_size(), 0);
  plane.write(5, 1);
  EXPECT_EQ(plane.read(5, 1), 1);
  EXPECT_EQ(plane.read(0, 0), 0);
  EXPECT_EQ(plane.detected_count(), 0);
  EXPECT_EQ(plane.reference_cell(5), 1);
}

TEST(PlaneMemory, DetectedIndexBoundsChecked) {
  PlaneMemory plane(geom(),
                    {PopulationFault::single(2, Ffm::kRDF1, Guard::none())});
  EXPECT_FALSE(plane.detected(0));
  EXPECT_THROW(plane.detected(1), pf::Error);
  EXPECT_THROW(plane.detected(-1), pf::Error);
}

/// The core contract, checked operation by operation: lane i of the plane
/// behaves exactly like a scalar Memory with only instance i injected —
/// same victim cell state and the detect bit latches exactly when the
/// scalar machine's read deviates from the march expectation.
void check_lockstep(const Geometry& g,
                    const std::vector<PopulationFault>& population,
                    const std::vector<march::MarchOp>& ops,
                    const std::vector<std::int64_t>& addrs) {
  ASSERT_EQ(ops.size(), addrs.size());
  PlaneMemory plane(g, population);
  std::vector<Memory> scalars;
  for (const PopulationFault& f : population) {
    scalars.emplace_back(g);
    if (f.aggressor >= 0)
      scalars.back().inject_coupling({f.aggressor, f.victim, f.coupling,
                                      f.guard});
    else
      scalars.back().inject({f.victim, f.ffm, f.guard});
  }
  std::vector<bool> scalar_detect(population.size(), false);

  for (std::size_t k = 0; k < ops.size(); ++k) {
    const std::int64_t addr = addrs[k];
    if (ops[k].is_read) {
      const int ff = plane.read(addr, ops[k].value);
      // The return value is the fault-free machine's result, i.e. the
      // restored (unfaulted) cell content.
      ASSERT_EQ(ff, plane.reference_cell(addr)) << "after op " << k;
      for (std::size_t i = 0; i < scalars.size(); ++i) {
        const int got = scalars[i].read(addr);
        if (got != ops[k].value) scalar_detect[i] = true;
      }
    } else {
      plane.write(addr, ops[k].value);
      for (Memory& m : scalars) m.write(addr, ops[k].value);
    }
    for (std::size_t i = 0; i < scalars.size(); ++i) {
      // State-type faults (SF, CFst) are scheduled differently: the scalar
      // engine applies them at the START of the next operation, the plane
      // at the END of this one. Observed behavior (reads, detection) is
      // identical, but the between-ops cell snapshot differs — so compare
      // the victim cell only for non-state instances.
      const PopulationFault& f = population[i];
      const bool state_type =
          f.aggressor >= 0
              ? f.coupling.kind == CouplingFault::Kind::kState
              : (f.ffm == Ffm::kSF0 || f.ffm == Ffm::kSF1);
      if (!state_type)
        ASSERT_EQ(plane.victim_cell(static_cast<std::int64_t>(i)),
                  scalars[i].cell(f.victim))
            << "instance " << i << " after op " << k;
      ASSERT_EQ(plane.detected(static_cast<std::int64_t>(i)),
                scalar_detect[i])
          << "instance " << i << " after op " << k;
    }
  }
}

TEST(PlaneMemory, LockstepWithScalarForEveryFfmAndGuard) {
  // A short but eventful schedule: write both levels, re-read, hammer the
  // victim column and a different column (bit-line / buffer traffic the
  // guards key on).
  using MO = march::MarchOp;
  const std::vector<MO> ops = {MO::w(0), MO::r(0), MO::w(1), MO::r(1),
                               MO::r(1), MO::w(0), MO::w(0), MO::r(0),
                               MO::w(1), MO::r(1)};
  for (const Ffm ffm : faults::all_ffms()) {
    for (const Guard& guard : all_guards()) {
      std::vector<PopulationFault> population;
      for (std::int64_t v : {std::int64_t{0}, std::int64_t{5},
                             std::int64_t{15}})
        population.push_back(PopulationFault::single(v, ffm, guard));
      for (const std::int64_t target : {std::int64_t{5}, std::int64_t{6}}) {
        std::vector<std::int64_t> addrs(ops.size(), target);
        check_lockstep(geom(), population, ops, addrs);
      }
    }
  }
}

TEST(PlaneMemory, LockstepWithScalarForCouplingFaults) {
  using MO = march::MarchOp;
  // Drive aggressor and victim alternately, both data levels.
  const std::vector<MO> ops = {MO::w(1), MO::w(0), MO::r(0), MO::w(1),
                               MO::r(1), MO::w(0), MO::r(0), MO::r(0)};
  const std::vector<std::int64_t> addrs = {2, 7, 7, 7, 7, 2, 7, 7};
  for (const CouplingFault& cf : faults::all_coupling_faults()) {
    for (const Guard& guard :
         {Guard::none(), Guard::bit_line(0), Guard::hidden(true)}) {
      // Aggressor 2 and victim 7 share no column in the 4x4 geometry;
      // also test the shared-column pair (3, 7).
      check_lockstep(geom(),
                     {PopulationFault::coupled(2, 7, cf, guard),
                      PopulationFault::coupled(3, 7, cf, guard),
                      PopulationFault::coupled(7, 2, cf, guard)},
                     ops, addrs);
    }
  }
}

TEST(PlaneMemory, PopulationsAreIndependentDespiteSharedColumns) {
  // Two guarded RDF1 instances whose victims share a column: in ONE scalar
  // machine the first victim's corrupted restore would re-arm the second's
  // bit-line guard; as separate lanes each must behave like its own
  // single-injection machine. Victims 1 and 13 share column 1 of the 4x4.
  using MO = march::MarchOp;
  const std::vector<MO> ops = {MO::w(1), MO::w(1), MO::r(1), MO::r(1)};
  const std::vector<std::int64_t> addrs = {1, 13, 1, 13};
  check_lockstep(geom(),
                 {PopulationFault::single(1, Ffm::kRDF1, Guard::bit_line(0)),
                  PopulationFault::single(13, Ffm::kRDF1, Guard::bit_line(0))},
                 ops, addrs);
}

TEST(PlaneMemory, DetectStaysStickyAcrossLaterCorrectReads) {
  PlaneMemory plane(geom(),
                    {PopulationFault::single(3, Ffm::kRDF1, Guard::none())});
  plane.write(3, 1);
  EXPECT_EQ(plane.read(3, 1), 1);  // fault-free result; lane 0 read 0
  EXPECT_TRUE(plane.detected(0));
  // The RDF flipped the cell to 0; reading as 0 is now "correct" for the
  // faulty lane, but the sticky flag must not clear.
  plane.write(3, 0);
  (void)plane.read(3, 0);
  EXPECT_TRUE(plane.detected(0));
  EXPECT_EQ(plane.detected_count(), 1);
}

TEST(PlaneMemory, MoreThan64LanesSpanBatches) {
  // 100 instances = 2 batches; every guard-none RDF1 must be caught by a
  // w1-r1 sweep, regardless of which batch its lane landed in.
  const Geometry g{16, 8};  // 128 cells
  std::vector<PopulationFault> population;
  for (std::int64_t v = 0; v < 100; ++v)
    population.push_back(PopulationFault::single(v, Ffm::kRDF1, Guard::none()));
  PlaneMemory plane(g, population);
  const auto ops = march::run_march_population(
      march::MarchTest::parse("{ u(w1); u(r1) }"), plane, g.num_cells());
  EXPECT_EQ(ops, 2u * 128u);
  EXPECT_EQ(plane.detected_count(), 100);
  EXPECT_EQ(plane.lane_steps(), ops * 100u);
}

TEST(PlaneMemory, WideAddressRegressionAtMillionCells) {
  // Satellite of the int64 widening: 2^20 cells overflows int arithmetic
  // in num_cells()-squared contexts and strains 32-bit address loops. A
  // sparse population keeps the memory footprint O(population).
  const Geometry g{16384, 64};
  ASSERT_EQ(g.num_cells(), std::int64_t{1} << 20);
  const std::int64_t last = g.num_cells() - 1;
  PlaneMemory plane(g, {PopulationFault::single(0, Ffm::kRDF1,
                                                Guard::bit_line(0)),
                        PopulationFault::single(last / 2, Ffm::kRDF1,
                                                Guard::bit_line(0)),
                        PopulationFault::single(last, Ffm::kRDF1,
                                                Guard::bit_line(0))});
  march::run_march_population(march::mats_plus(), plane, g.num_cells());
  // MATS+ has no w0-preconditioned r1 on a floating-low bit line; what
  // matters here is address integrity, checked against the scalar engine
  // at the extreme addresses.
  for (const std::int64_t victim : {std::int64_t{0}, last / 2, last}) {
    Memory mem(g);
    mem.inject({victim, Ffm::kRDF1, Guard::bit_line(0)});
    const auto r = march::run_march(march::mats_plus(), mem, mem.size());
    const std::int64_t i = victim == 0 ? 0 : (victim == last / 2 ? 1 : 2);
    EXPECT_EQ(plane.detected(i), r.detected) << "victim " << victim;
  }
}

TEST(Geometry, NumCellsIsWide) {
  // 65536 x 65536 = 2^32 cells: representable only past 32 bits.
  const Geometry g{65536, 65536};
  EXPECT_EQ(g.num_cells(), std::int64_t{1} << 32);
  EXPECT_EQ(g.column_of((std::int64_t{1} << 32) - 1), 65535);
  EXPECT_EQ(g.row_of((std::int64_t{1} << 32) - 1), 65535);
}

}  // namespace
}  // namespace pf::memsim
