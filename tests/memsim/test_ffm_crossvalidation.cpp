// Cross-validation between the FP algebra (pf_faults) and the behavioral
// memory (pf_memsim): injecting an FFM and executing its canonical FP's SOS
// must reproduce exactly the canonical <F, R>.
#include <gtest/gtest.h>

#include "pf/faults/ffm.hpp"
#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

using faults::CellRole;
using faults::FaultPrimitive;
using faults::Ffm;

struct SosObservation {
  int final_state = -1;
  int read_result = -1;
};

SosObservation execute_canonical(Memory& mem, int victim,
                                 const faults::Sos& sos) {
  // FP initialization is abstract state-setting, not an operation (a write
  // would itself trigger write faults like WDF0 during initialization).
  if (sos.initial_victim >= 0) mem.set_cell(victim, sos.initial_victim);
  SosObservation obs;
  for (const auto& op : sos.ops) {
    const int addr = op.target == CellRole::kVictim ? victim : victim + 1;
    if (op.is_read())
      obs.read_result = mem.read(addr);
    else
      mem.write(addr, op.write_value());
  }
  // State faults need some subsequent activity to act.
  if (sos.ops.empty()) mem.write(victim + 1, 0);
  obs.final_state = mem.cell(victim);
  return obs;
}

class FfmSemantics : public ::testing::TestWithParam<Ffm> {};

TEST_P(FfmSemantics, CanonicalFpReproducesInjectedBehaviour) {
  const Ffm ffm = GetParam();
  const FaultPrimitive canon = faults::canonical_fp(ffm);
  Memory mem(Geometry{4, 2});
  const int victim = 0;
  mem.inject({victim, ffm, Guard::none()});
  const SosObservation obs = execute_canonical(mem, victim, canon.sos);
  EXPECT_EQ(obs.final_state, canon.faulty_state) << faults::ffm_name(ffm);
  EXPECT_EQ(obs.read_result, canon.read_result) << faults::ffm_name(ffm);
}

TEST_P(FfmSemantics, ComplementSosIsFaultFreeUnderInjection) {
  // The data-complement SOS must NOT trigger the (data-specific) FFM:
  // e.g. an injected RDF1 leaves 0r0 completely healthy.
  const Ffm ffm = GetParam();
  const FaultPrimitive comp = faults::canonical_fp(ffm).complement();
  Memory mem(Geometry{4, 2});
  const int victim = 0;
  mem.inject({victim, ffm, Guard::none()});
  const SosObservation obs = execute_canonical(mem, victim, comp.sos);
  const int healthy_state = comp.sos.expected_final_victim();
  const int healthy_read = comp.sos.expected_read();
  if (ffm != Ffm::kSF0 && ffm != Ffm::kSF1) {
    EXPECT_EQ(obs.final_state, healthy_state) << faults::ffm_name(ffm);
    EXPECT_EQ(obs.read_result, healthy_read) << faults::ffm_name(ffm);
  }
}

TEST_P(FfmSemantics, UnsatisfiedGuardSuppressesTheFault) {
  const Ffm ffm = GetParam();
  const FaultPrimitive canon = faults::canonical_fp(ffm);
  Memory mem(Geometry{4, 2});
  const int victim = 0;
  // A hidden guard that is inactive must make the memory fault-free.
  mem.inject({victim, ffm, Guard::hidden(false)});
  const SosObservation obs = execute_canonical(mem, victim, canon.sos);
  EXPECT_EQ(obs.final_state, canon.sos.expected_final_victim())
      << faults::ffm_name(ffm);
  EXPECT_EQ(obs.read_result, canon.sos.expected_read())
      << faults::ffm_name(ffm);
}

INSTANTIATE_TEST_SUITE_P(
    AllFfms, FfmSemantics, ::testing::ValuesIn(faults::all_ffms()),
    [](const ::testing::TestParamInfo<Ffm>& param_info) {
      return std::string(faults::ffm_name(param_info.param));
    });

}  // namespace
}  // namespace pf::memsim
