// Data-retention faults and the pause ("Del") mechanism.
#include <gtest/gtest.h>

#include "pf/march/library.hpp"
#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

Geometry geom() { return Geometry{4, 2}; }

TEST(Retention, CellDecaysAfterRetentionTime) {
  Memory m(geom());
  m.inject_retention({0, 1, 1e-3});
  m.write(0, 1);
  m.pause(0.4e-3);
  EXPECT_EQ(m.cell(0), 1) << "below the retention time";
  m.pause(0.7e-3);
  EXPECT_EQ(m.cell(0), 0) << "accumulated pause crossed the threshold";
}

TEST(Retention, OnlyTheLostValueDecays) {
  Memory m(geom());
  m.inject_retention({0, 1, 1e-3});
  m.write(0, 0);
  m.pause(10e-3);
  EXPECT_EQ(m.cell(0), 0) << "a stored 0 is unaffected by a DRF1";
}

TEST(Retention, AccessRefreshesTheCell) {
  Memory m(geom());
  m.inject_retention({0, 1, 1e-3});
  m.write(0, 1);
  m.pause(0.6e-3);
  EXPECT_EQ(m.read(0), 1);  // read restores: clock restarts
  m.pause(0.6e-3);
  EXPECT_EQ(m.cell(0), 1) << "0.6 ms since the refresh: still holding";
  m.pause(0.6e-3);
  EXPECT_EQ(m.cell(0), 0);
}

TEST(Retention, OtherCellsUnaffected) {
  Memory m(geom());
  m.inject_retention({0, 1, 1e-3});
  m.write(0, 1);
  m.write(1, 1);
  m.pause(5e-3);
  EXPECT_EQ(m.cell(0), 0);
  EXPECT_EQ(m.cell(1), 1);
}

TEST(Retention, RejectsBadInjection) {
  Memory m(geom());
  EXPECT_THROW(m.inject_retention({99, 1, 1e-3}), pf::Error);
  EXPECT_THROW(m.inject_retention({0, 2, 1e-3}), pf::Error);
  EXPECT_THROW(m.inject_retention({0, 1, 0.0}), pf::Error);
}

TEST(Retention, DrfTestDetectsWhatMatsPlusMisses) {
  // The classical result: without delay elements a retention fault passes
  // (every read happens right after the preceding write); with them the
  // decayed value is caught.
  {
    Memory m(geom());
    m.inject_retention({2, 1, 1e-3});
    const auto result = march::run_march(march::mats_plus(), m, m.size());
    EXPECT_FALSE(result.detected);
  }
  {
    Memory m(geom());
    m.inject_retention({2, 1, 1e-3});
    const auto result = march::run_march(march::mats_plus_drf(), m, m.size(),
                                         /*delay_seconds=*/2e-3);
    EXPECT_TRUE(result.detected);
  }
}

TEST(Retention, Drf0VariantAlsoCaught) {
  Memory m(geom());
  m.inject_retention({1, 0, 1e-3});
  const auto result = march::run_march(march::mats_plus_drf(), m, m.size(),
                                       /*delay_seconds=*/2e-3);
  EXPECT_TRUE(result.detected);
}

TEST(Retention, ShortDelayEscapesTheDrfTest) {
  Memory m(geom());
  m.inject_retention({2, 1, 10e-3});
  const auto result = march::run_march(march::mats_plus_drf(), m, m.size(),
                                       /*delay_seconds=*/1e-3);
  EXPECT_FALSE(result.detected) << "delay shorter than the retention time";
}

TEST(Retention, DelayNotationRoundTrips) {
  const auto t = march::mats_plus_drf();
  EXPECT_TRUE(t.has_delays());
  EXPECT_EQ(t.to_string(), "{ m(w0); del; u(r0,w1); del; d(r1,w0) }");
  EXPECT_EQ(march::MarchTest::parse(t.to_string()), t);
  EXPECT_EQ(t.ops_per_cell(), 5) << "delays are not operations";
}

}  // namespace
}  // namespace pf::memsim
