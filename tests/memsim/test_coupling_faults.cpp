// Coupling-fault injection semantics, cross-validated against the taxonomy's
// defining fault primitives.
#include <gtest/gtest.h>

#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

using faults::CouplingFault;
using faults::Op;
using Kind = CouplingFault::Kind;

Geometry geom() { return Geometry{4, 2}; }

TEST(CouplingSemantics, StateCouplingForcesVictim) {
  Memory m(geom());
  // CFst<1; 0->1>: victim (cell 2) cannot stay 0 while aggressor (cell 1)
  // holds 1.
  m.inject_coupling({1, 2, {Kind::kState, 1, Op::Kind::kWrite0, 0}, Guard::none()});
  m.write(2, 0);
  m.write(1, 1);
  EXPECT_EQ(m.read(2), 1);
  // With the aggressor at 0 the victim holds.
  m.write(1, 0);
  m.write(2, 0);
  m.write(3, 1);  // unrelated activity
  EXPECT_EQ(m.read(2), 0);
}

TEST(CouplingSemantics, WriteDisturbFlipsVictim) {
  Memory m(geom());
  // CFds<w1a; 0->1>: writing 1 to the aggressor flips a victim storing 0.
  m.inject_coupling({0, 3, {Kind::kDisturb, 1, Op::Kind::kWrite1, 0}, Guard::none()});
  m.write(3, 0);
  m.write(0, 1);
  EXPECT_EQ(m.read(3), 1);
  // Writing 0 to the aggressor does not disturb.
  m.write(3, 0);
  m.write(0, 0);
  EXPECT_EQ(m.read(3), 0);
}

TEST(CouplingSemantics, ReadDisturbFlipsVictim) {
  Memory m(geom());
  // CFds<r1a; 1->0>: reading a 1 from the aggressor flips a victim at 1.
  m.inject_coupling({0, 1, {Kind::kDisturb, 1, Op::Kind::kRead, 1}, Guard::none()});
  m.write(0, 1);
  m.write(1, 1);
  EXPECT_EQ(m.read(0), 1);  // the disturbing read
  EXPECT_EQ(m.read(1), 0);
}

TEST(CouplingSemantics, TransitionCouplingBlocksWrite) {
  Memory m(geom());
  // CFtr<1; 0w1>: the victim's up-transition fails while aggressor holds 1.
  m.inject_coupling({2, 0, {Kind::kTransition, 1, Op::Kind::kWrite0, 0}, Guard::none()});
  m.write(2, 1);
  m.write(0, 0);
  m.write(0, 1);  // fails
  EXPECT_EQ(m.read(0), 0);
  m.write(2, 0);
  m.write(0, 0);
  m.write(0, 1);  // aggressor at 0: succeeds
  EXPECT_EQ(m.read(0), 1);
}

TEST(CouplingSemantics, WriteDestructiveCoupling) {
  Memory m(geom());
  // CFwd<0; w1>: non-transition w1 on the victim flips it while aggressor 0.
  m.inject_coupling({1, 0, {Kind::kWriteDestructive, 0, Op::Kind::kWrite0, 1}, Guard::none()});
  m.write(1, 0);
  m.write(0, 1);
  m.write(0, 1);  // non-transition write destroys
  EXPECT_EQ(m.read(0), 0);
}

TEST(CouplingSemantics, ReadDestructiveCoupling) {
  Memory m(geom());
  m.inject_coupling({1, 0, {Kind::kReadDestructive, 1, Op::Kind::kWrite0, 1}, Guard::none()});
  m.write(1, 1);
  m.write(0, 1);
  EXPECT_EQ(m.read(0), 0);  // wrong output
  EXPECT_EQ(m.cell(0), 0);  // destroyed
}

TEST(CouplingSemantics, DeceptiveReadCoupling) {
  Memory m(geom());
  m.inject_coupling({1, 0, {Kind::kDeceptiveRead, 1, Op::Kind::kWrite0, 0}, Guard::none()});
  m.write(1, 1);
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 0);  // deceptively correct
  EXPECT_EQ(m.cell(0), 1);  // but flipped
}

TEST(CouplingSemantics, IncorrectReadCoupling) {
  Memory m(geom());
  m.inject_coupling({1, 0, {Kind::kIncorrectRead, 1, Op::Kind::kWrite0, 0}, Guard::none()});
  m.write(1, 1);
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 1);
  EXPECT_EQ(m.cell(0), 0);
}

TEST(CouplingSemantics, GuardComposesWithCoupling) {
  Memory m(geom());
  // A PARTIAL coupling fault: only sensitized while the victim's bit line
  // was left low.
  m.inject_coupling({1, 0, {Kind::kReadDestructive, 1, Op::Kind::kWrite0, 1},
                     Guard::bit_line(0)});
  m.write(1, 1);
  m.write(0, 1);
  EXPECT_EQ(m.read(0), 1) << "BL high after the victim's own write";
  m.write(0, 1);
  m.write(2, 1);  // complement row: drives the true BL low
  m.write(1, 1);  // keep the aggressor condition, also BL low (row 0? no: addr 1 row 0 -> BL high)
  m.write(2, 1);  // re-establish BL low
  EXPECT_EQ(m.read(0), 0);
}

TEST(CouplingSemantics, RejectsBadInjection) {
  Memory m(geom());
  EXPECT_THROW(m.inject_coupling({0, 0, {}, Guard::none()}), pf::Error);
  EXPECT_THROW(m.inject_coupling({0, 99, {}, Guard::none()}), pf::Error);
  EXPECT_THROW(m.inject_coupling({-1, 1, {}, Guard::none()}), pf::Error);
}

TEST(CouplingSemantics, ClearFaultsRemovesCouplings) {
  Memory m(geom());
  m.inject_coupling({1, 0, {Kind::kIncorrectRead, 1, Op::Kind::kWrite0, 0}, Guard::none()});
  m.clear_faults();
  m.write(1, 1);
  m.write(0, 0);
  EXPECT_EQ(m.read(0), 0);
}

// Cross-validation: executing each taxonomy fault's defining FP reproduces
// its <F, R> exactly.
class CouplingCrossValidation
    : public ::testing::TestWithParam<CouplingFault> {};

TEST_P(CouplingCrossValidation, DefiningFpReproduces) {
  const CouplingFault cf = GetParam();
  const faults::FaultPrimitive fp = cf.to_fp();
  Memory m(geom());
  const int victim = 0, aggressor = 1;
  m.inject_coupling({aggressor, victim, cf, Guard::none()});
  if (fp.sos.initial_aggressor >= 0)
    m.set_cell(aggressor, fp.sos.initial_aggressor);
  if (fp.sos.initial_victim >= 0) m.set_cell(victim, fp.sos.initial_victim);
  int read_result = -1;
  for (const auto& op : fp.sos.ops) {
    const int addr =
        op.target == faults::CellRole::kVictim ? victim : aggressor;
    if (op.is_read()) {
      const int got = m.read(addr);
      if (op.target == faults::CellRole::kVictim) read_result = got;
    } else {
      m.write(addr, op.write_value());
    }
  }
  if (fp.sos.ops.empty()) m.write(3, 0);  // let state couplings act
  EXPECT_EQ(m.cell(victim), fp.faulty_state) << cf.name();
  EXPECT_EQ(read_result, fp.read_result) << cf.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllCouplings, CouplingCrossValidation,
    ::testing::ValuesIn(faults::all_coupling_faults()),
    [](const ::testing::TestParamInfo<CouplingFault>& param_info) {
      std::string n = param_info.param.name();
      std::string out;
      for (char c : n)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out + "_" + std::to_string(param_info.index);
    });

}  // namespace
}  // namespace pf::memsim
