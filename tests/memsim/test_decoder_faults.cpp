// Address-decoder faults (AF classes) and their detection by march tests —
// the classical result that any march with an increasing and a decreasing
// verified pass (MATS+ and stronger) detects all AFs.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/memsim/memory.hpp"

namespace pf::memsim {
namespace {

using Kind = InjectedDecoderFault::Kind;

Geometry geom() { return Geometry{4, 2}; }

TEST(DecoderFaults, NoAccessLosesWrites) {
  Memory m(geom());
  m.inject_decoder({Kind::kNoAccess, 3, 0});
  m.write(3, 1);
  EXPECT_EQ(m.cell(3), 0) << "the write never reached the cell";
}

TEST(DecoderFaults, NoAccessReadsReturnStaleBuffer) {
  Memory m(geom());
  m.inject_decoder({Kind::kNoAccess, 3, 0});
  m.write(2, 1);  // row 1 (complement): buffer raw = 0
  // addr 3 is also row 1: local view of raw 0 is logical 1.
  EXPECT_EQ(m.read(3), 1);
  m.write(2, 0);  // buffer raw = 1 -> local 0
  EXPECT_EQ(m.read(3), 0);
}

TEST(DecoderFaults, WrongCellRedirectsBothOperations) {
  Memory m(geom());
  m.inject_decoder({Kind::kWrongCell, 1, 2});
  m.write(1, 1);
  EXPECT_EQ(m.cell(2), 1) << "write landed on the wrong cell";
  EXPECT_EQ(m.cell(1), 0);
  EXPECT_EQ(m.read(1), 1) << "read also comes from the wrong cell";
}

TEST(DecoderFaults, MultiCellWritesBoth) {
  Memory m(geom());
  m.inject_decoder({Kind::kMultiCell, 0, 3});
  m.write(0, 1);
  EXPECT_EQ(m.cell(0), 1);
  EXPECT_EQ(m.cell(3), 1);
}

TEST(DecoderFaults, MultiCellReadIsWiredAndAndDestructive) {
  Memory m(geom());
  m.inject_decoder({Kind::kMultiCell, 0, 3});
  m.set_cell(0, 1);
  m.set_cell(3, 0);
  EXPECT_EQ(m.read(0), 0) << "wired-AND: the 0 wins";
  EXPECT_EQ(m.cell(0), 0) << "restore wrote the AND back";
}

TEST(DecoderFaults, OtherAddressesUnaffected) {
  Memory m(geom());
  m.inject_decoder({Kind::kWrongCell, 1, 2});
  m.write(0, 1);
  m.write(3, 1);
  EXPECT_EQ(m.read(0), 1);
  EXPECT_EQ(m.read(3), 1);
}

TEST(DecoderFaults, RejectsBadInjection) {
  Memory m(geom());
  EXPECT_THROW(m.inject_decoder({Kind::kNoAccess, 99, 0}), pf::Error);
  EXPECT_THROW(m.inject_decoder({Kind::kWrongCell, 0, 99}), pf::Error);
  EXPECT_THROW(m.inject_decoder({Kind::kMultiCell, 1, 1}), pf::Error);
}

// --- march detection -------------------------------------------------------

class DecoderDetection : public ::testing::TestWithParam<InjectedDecoderFault> {
 protected:
  bool detected_by(const march::MarchTest& test) {
    Memory m(geom());
    m.inject_decoder(GetParam());
    return march::run_march(test, m, m.size()).detected;
  }
};

TEST_P(DecoderDetection, MatsPlusDetects) {
  // The classical claim MATS+ was designed for.
  EXPECT_TRUE(detected_by(march::mats_plus()));
}

TEST_P(DecoderDetection, MarchCMinusDetects) {
  EXPECT_TRUE(detected_by(march::march_c_minus()));
}

TEST(DecoderFaults, MarchPfMissesSomeAddressFaults) {
  // March PF does NOT satisfy the classical AF detection condition (it has
  // no ascending (rx,..,w!x) / descending (r!x,..,wx) pair — its read
  // elements end in the value they read, and all its elements march in the
  // same order). It targets partial faults; decoder coverage needs a
  // classical test alongside it.
  Memory m(geom());
  m.inject_decoder({Kind::kWrongCell, 1, 6});
  EXPECT_FALSE(march::run_march(march::march_pf(), m, m.size()).detected);
}

INSTANTIATE_TEST_SUITE_P(
    AfVariants, DecoderDetection,
    ::testing::Values(InjectedDecoderFault{Kind::kNoAccess, 0, 0},
                      InjectedDecoderFault{Kind::kNoAccess, 7, 0},
                      InjectedDecoderFault{Kind::kWrongCell, 1, 6},
                      InjectedDecoderFault{Kind::kWrongCell, 6, 1},
                      InjectedDecoderFault{Kind::kMultiCell, 2, 5},
                      InjectedDecoderFault{Kind::kMultiCell, 5, 2}),
    [](const ::testing::TestParamInfo<InjectedDecoderFault>& param_info) {
      const auto& f = param_info.param;
      const char* kind = f.kind == Kind::kNoAccess    ? "NoAccess"
                         : f.kind == Kind::kWrongCell ? "WrongCell"
                                                      : "MultiCell";
      return std::string(kind) + "_" + std::to_string(f.addr) + "_" +
             std::to_string(f.other);
    });

}  // namespace
}  // namespace pf::memsim
