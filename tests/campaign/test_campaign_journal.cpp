// Campaign-journal corruption drills (ISSUE satellite): truncated tail,
// CRC-corrupted record, unreadable header -> .corrupt[.N] quarantine,
// fingerprint pinning, the torn-write injection site, and sequence
// continuity across resumes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "pf/campaign/fault_injection.hpp"
#include "pf/campaign/journal.hpp"
#include "pf/util/error.hpp"

namespace pf::campaign {
namespace {

using service::Json;
using service::JsonObject;

CampaignSpec two_job_spec() {
  CampaignSpec spec;
  spec.name = "journal-test";
  CampaignJob a;
  a.id = "a";
  a.sweep.r_points = 3;
  a.sweep.u_points = 3;
  CampaignJob b = a;
  b.id = "b";
  b.deps = {"a"};
  spec.jobs = {a, b};
  return spec;
}

std::string temp_path(const char* tag) {
  const std::string path = ::testing::TempDir() + tag;
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  return path;
}

Json done_detail(const std::string& sha) {
  JsonObject obj;
  obj["key"] = Json("00000000deadbeef");
  obj["sha256"] = Json(sha);
  obj["cached"] = Json(false);
  return Json(std::move(obj));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

TEST(CampaignJournal, RoundTripsRecordsAndTrailer) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_roundtrip.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    journal.done("a", done_detail("aa"));
    journal.begin("b");
    JsonObject fail;
    fail["error"] = Json("solver exploded, with a comma");
    fail["attempts"] = Json(2);
    journal.failed("b", Json(std::move(fail)));
    journal.finalize();
    journal.finalize();  // idempotent
  }
  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_TRUE(loaded.clean_end);
  EXPECT_EQ(loaded.dropped, 0u);
  EXPECT_TRUE(loaded.interrupted.empty());
  ASSERT_EQ(loaded.terminal.size(), 2u);
  EXPECT_EQ(loaded.terminal.at("a").event, CampaignJournal::Event::kDone);
  EXPECT_EQ(loaded.terminal.at("a").detail.string_or("sha256", ""), "aa");
  EXPECT_EQ(loaded.terminal.at("b").event, CampaignJournal::Event::kFailed);
  // The detail JSON contains a comma — the positional row parse must keep
  // it intact.
  EXPECT_EQ(loaded.terminal.at("b").detail.string_or("error", ""),
            "solver exploded, with a comma");
  EXPECT_EQ(loaded.max_seq, 4u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, BeginWithoutTerminalIsInterrupted) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_interrupted.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    journal.done("a", done_detail("aa"));
    journal.begin("b");
    // no terminal for b, no trailer: the crash shape
  }
  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_FALSE(loaded.clean_end);
  ASSERT_EQ(loaded.interrupted.size(), 1u);
  EXPECT_EQ(loaded.interrupted[0], "b");
  EXPECT_EQ(loaded.terminal.count("a"), 1u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, TruncatedTailRowIsDroppedNotTrusted) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_truncated.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    journal.done("a", done_detail("aa"));
  }
  // Emulate kill -9 mid-append: chop the last row in half.
  std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  text.resize(text.size() - text.size() / 4);
  write_file(path, text);

  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_EQ(loaded.terminal.count("a"), 0u) << "the torn DONE must not count";
  ASSERT_EQ(loaded.interrupted.size(), 1u) << "its BEGIN row survives";
  EXPECT_EQ(loaded.interrupted[0], "a");
  std::remove(path.c_str());
}

TEST(CampaignJournal, CrcCorruptedRecordIsDropped) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_bitrot.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    journal.done("a", done_detail("aa"));
    journal.begin("b");
    journal.done("b", done_detail("bb"));
  }
  // Flip one byte inside job a's DONE detail (sha "aa" -> "ax").
  std::string text = read_file(path);
  const size_t pos = text.find("\"aa\"");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = 'x';
  write_file(path, text);

  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_EQ(loaded.terminal.count("a"), 0u);
  EXPECT_EQ(loaded.terminal.count("b"), 1u)
      << "rows after the corrupt one still load";
  std::remove(path.c_str());
}

TEST(CampaignJournal, UnreadableHeaderQuarantinesToCorrupt) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_garbage.csv");
  write_file(path, "this is not a campaign journal\n1,2,3\n");

  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_TRUE(loaded.quarantined);
  EXPECT_TRUE(loaded.terminal.empty());
  std::ifstream moved(path + ".corrupt");
  EXPECT_TRUE(moved.is_open()) << "original bytes must be preserved aside";
  std::ifstream original(path);
  EXPECT_FALSE(original.is_open()) << "the journal path must be free again";
  std::remove((path + ".corrupt").c_str());
}

TEST(CampaignJournal, FingerprintMismatchThrows) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_foreign.csv");
  { CampaignJournal journal(path, spec); }

  CampaignSpec other = spec;
  other.jobs[0].sweep.u_points = 4;
  try {
    CampaignJournal::load(path, other);
    FAIL() << "a foreign journal must be rejected, not silently reused";
  } catch (const pf::Error& e) {
    EXPECT_NE(std::string(e.what()).find("delete it to start over"),
              std::string::npos);
  }
  EXPECT_THROW(CampaignJournal(path, other), pf::Error);
  std::remove(path.c_str());
}

TEST(CampaignJournal, TornWriteInjectionProducesDroppableRow) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_torn.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    testing::ScopedCampaignFault fault("torn_campaign_journal=a");
    journal.done("a", done_detail("aa"));  // torn mid-payload
    EXPECT_EQ(testing::faults_fired(), 1u);
    journal.begin("b");
    journal.done("b", done_detail("bb"));  // budget spent: written whole
  }
  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_EQ(loaded.terminal.count("a"), 0u);
  ASSERT_EQ(loaded.interrupted.size(), 1u);
  EXPECT_EQ(loaded.interrupted[0], "a");
  EXPECT_EQ(loaded.terminal.count("b"), 1u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, SequenceContinuesAcrossResume) {
  const CampaignSpec spec = two_job_spec();
  const std::string path = temp_path("cj_seq.csv");
  {
    CampaignJournal journal(path, spec);
    journal.begin("a");
    journal.done("a", done_detail("aa"));
  }
  const auto first = CampaignJournal::load(path, spec);
  EXPECT_EQ(first.max_seq, 2u);
  {
    CampaignJournal journal(path, spec, first.max_seq + 1);
    journal.begin("b");
    journal.done("b", done_detail("bb"));
    journal.finalize();
  }
  const auto loaded = CampaignJournal::load(path, spec);
  EXPECT_TRUE(loaded.clean_end);
  EXPECT_EQ(loaded.max_seq, 4u);
  EXPECT_EQ(loaded.terminal.size(), 2u);
  EXPECT_EQ(loaded.dropped, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf::campaign
