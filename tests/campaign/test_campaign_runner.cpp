// CampaignRunner acceptance: the ISSUE's >= 8-job campaign with one
// deterministically-failing job (independents complete, the failure is
// quarantined with error context, only dependents are blocked), cross-job
// dedup, session reuse, bounded retry, interrupted-campaign resume with a
// byte-identical report, and the custom-job dependency contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "pf/analysis/region.hpp"
#include "pf/campaign/fault_injection.hpp"
#include "pf/campaign/runner.hpp"
#include "pf/util/cancellation.hpp"
#include "pf/util/error.hpp"

namespace pf::campaign {
namespace {

using service::Json;
using service::JsonObject;

CampaignJob sweep_job(const std::string& id, const std::string& sos,
                      std::vector<std::string> deps = {}) {
  CampaignJob job;
  job.id = id;
  job.kind = CampaignJob::Kind::kSweep;
  job.deps = std::move(deps);
  job.sweep.defect_kind = "open";
  job.sweep.open_site = 4;
  job.sweep.sos_text = sos;
  job.sweep.r_points = 3;
  job.sweep.u_points = 3;
  return job;
}

/// The acceptance campaign: 9 jobs, one of them ("flaky") made to fail
/// terminally by the job_fail_once site with a budget >= max_job_attempts.
///
///   s1 --+--> c1 (custom)         flaky --> d1 --> d2
///   s2 (dup of s1: dedup)
///   s3 (same row-family as s1: session reuse)
///   s4
CampaignSpec acceptance_spec() {
  CampaignSpec spec;
  spec.name = "acceptance";
  spec.jobs.push_back(sweep_job("s1", "1r1"));
  spec.jobs.push_back(sweep_job("s2", "1r1"));  // identical fingerprint
  spec.jobs.push_back(sweep_job("s3", "0w0"));
  spec.jobs.push_back(sweep_job("s4", "0r0"));
  spec.jobs.push_back(sweep_job("flaky", "1w1"));
  spec.jobs.push_back(sweep_job("d1", "1", {"flaky"}));
  spec.jobs.push_back(sweep_job("d2", "0", {"d1"}));

  CampaignJob c1;
  c1.id = "c1";
  c1.kind = CampaignJob::Kind::kCustom;
  c1.deps = {"s1"};
  c1.custom = [](const DepContext& ctx) {
    const analysis::RegionMap& map = ctx.map("s1");
    JsonObject obj;
    obj["cells"] = Json(map.spec().r_axis.size() * map.spec().u_axis.size());
    return Json(std::move(obj));
  };
  spec.jobs.push_back(c1);

  CampaignJob c2;
  c2.id = "c2";
  c2.kind = CampaignJob::Kind::kCustom;
  c2.deps = {"c1"};
  c2.custom = [](const DepContext& ctx) {
    return Json(ctx.payload("c1").number_or("cells", -1));
  };
  spec.jobs.push_back(c2);
  return spec;
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CampaignRunner, IsolatesFailureDedupsAndReusesSessions) {
  const std::string dir = fresh_dir("camp_acceptance");
  testing::ScopedCampaignFault fault("job_fail_once=flaky:2");

  const CampaignSpec spec = acceptance_spec();
  CampaignOptions options;
  options.store_root = dir + "/store";
  options.journal_path = dir + "/journal.csv";
  options.max_job_attempts = 2;
  const CampaignResult result = run_campaign(spec, options);

  // The failing job is terminally quarantined with its error context...
  const JobResult& flaky = result.jobs.at("flaky");
  EXPECT_EQ(flaky.state, JobState::kJobFailed);
  EXPECT_EQ(flaky.attempts, 2);
  EXPECT_NE(flaky.detail.string_or("error", "").find("injected"),
            std::string::npos);
  EXPECT_EQ(testing::faults_fired(), 2u);

  // ...only its dependents are blocked (transitively, each naming the
  // dependency that blocked it)...
  EXPECT_EQ(result.jobs.at("d1").state, JobState::kJobBlocked);
  EXPECT_EQ(result.jobs.at("d1").detail.string_or("blocked_by", ""), "flaky");
  EXPECT_EQ(result.jobs.at("d2").state, JobState::kJobBlocked);
  EXPECT_EQ(result.jobs.at("d2").detail.string_or("blocked_by", ""), "d1");

  // ...and every independent job ran to completion.
  for (const char* id : {"s1", "s2", "s3", "s4", "c1", "c2"})
    EXPECT_EQ(result.jobs.at(id).state, JobState::kJobDone) << id;
  EXPECT_EQ(result.stats.done, 6u);
  EXPECT_EQ(result.stats.failed, 1u);
  EXPECT_EQ(result.stats.blocked, 2u);
  EXPECT_FALSE(result.all_done());

  // Cross-job dedup: s2's fingerprint equals s1's, so it was served from
  // the memo/store, bit-identical.
  EXPECT_TRUE(result.jobs.at("s2").cached);
  EXPECT_GE(result.stats.dedup_hits, 1u);
  EXPECT_EQ(result.jobs.at("s2").sha256, result.jobs.at("s1").sha256);
  EXPECT_EQ(result.jobs.at("s2").key, result.jobs.at("s1").key);

  // Session reuse: s3/s4/flaky share s1's row-family (same defect and
  // temperature), so compiled sessions were handed across jobs.
  EXPECT_GE(result.stats.session_hits, 1u);

  // Custom chain: c1 saw s1's CSV-reconstructed map, c2 saw c1's payload.
  EXPECT_EQ(result.jobs.at("c1").detail.get("payload").number_or("cells", 0),
            9.0);
  EXPECT_EQ(result.jobs.at("c2").detail.get("payload").as_number(), 9.0);

  // Resume keeps the quarantine: no faults armed, yet flaky stays FAILED
  // and nothing recomputes.
  {
    testing::ScopedCampaignFault disarm("");
    const CampaignResult resumed = run_campaign(spec, options);
    EXPECT_EQ(resumed.jobs.at("flaky").state, JobState::kJobFailed);
    EXPECT_TRUE(resumed.jobs.at("flaky").resumed);
    EXPECT_EQ(resumed.jobs.at("s1").state, JobState::kJobDone);
    EXPECT_TRUE(resumed.jobs.at("s1").resumed);
    EXPECT_GE(resumed.stats.resumed, 7u);
    EXPECT_EQ(resumed.report(spec), result.report(spec))
        << "a resumed campaign must report byte-identically";

    // retry_failed lifts the quarantine: the whole DAG completes.
    CampaignOptions retry = options;
    retry.retry_failed = true;
    const CampaignResult healed = run_campaign(spec, retry);
    EXPECT_TRUE(healed.all_done());
    EXPECT_EQ(healed.jobs.at("d1").state, JobState::kJobDone);
    EXPECT_EQ(healed.jobs.at("d2").state, JobState::kJobDone);
  }
}

TEST(CampaignRunner, RetryRecoversFromTransientFailure) {
  testing::ScopedCampaignFault fault("job_fail_once=s1:1");
  CampaignSpec spec;
  spec.name = "transient";
  spec.jobs = {sweep_job("s1", "1r1")};
  CampaignOptions options;
  options.max_job_attempts = 2;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(result.jobs.at("s1").state, JobState::kJobDone);
  EXPECT_EQ(result.jobs.at("s1").attempts, 2);
  EXPECT_EQ(result.stats.retries, 1u);
  EXPECT_TRUE(result.all_done());
}

TEST(CampaignRunner, MemoDedupWorksWithoutStoreOrJournal) {
  CampaignSpec spec;
  spec.name = "memo";
  spec.jobs = {sweep_job("a", "1r1"), sweep_job("b", "1r1")};
  const CampaignResult result = run_campaign(spec, CampaignOptions{});
  EXPECT_TRUE(result.all_done());
  EXPECT_EQ(result.stats.dedup_hits, 1u);
  EXPECT_EQ(result.jobs.at("a").csv, result.jobs.at("b").csv);
}

TEST(CampaignRunner, SessionReuseIsBitIdentical) {
  // The same job computed alone (cold session) and after a same-family
  // predecessor (reused session) must hash identically.
  CampaignSpec alone;
  alone.name = "alone";
  alone.jobs = {sweep_job("x", "0w0")};
  const CampaignResult cold = run_campaign(alone, CampaignOptions{});
  ASSERT_TRUE(cold.all_done());

  CampaignSpec paired;
  paired.name = "paired";
  paired.jobs = {sweep_job("warmup", "1r1"), sweep_job("x", "0w0")};
  const CampaignResult warm = run_campaign(paired, CampaignOptions{});
  ASSERT_TRUE(warm.all_done());
  EXPECT_GE(warm.stats.session_hits, 1u);
  EXPECT_EQ(warm.jobs.at("x").sha256, cold.jobs.at("x").sha256);
  EXPECT_EQ(warm.jobs.at("x").csv, cold.jobs.at("x").csv);
}

TEST(CampaignRunner, InterruptedCampaignResumesByteIdentically) {
  CampaignSpec spec;
  spec.name = "interrupt";
  spec.jobs = {sweep_job("j1", "1r1"), sweep_job("j2", "0w0"),
               sweep_job("j3", "0r0"), sweep_job("j4", "1w1")};

  // Control: one uninterrupted run.
  const std::string control_dir = fresh_dir("camp_control");
  CampaignOptions control;
  control.store_root = control_dir + "/store";
  control.journal_path = control_dir + "/journal.csv";
  const std::string control_report =
      run_campaign(spec, control).report(spec);

  // Interrupted: cancel the campaign after two jobs finished; the journal
  // keeps them, the in-flight job re-runs on resume.
  const std::string dir = fresh_dir("camp_interrupt");
  CampaignOptions options;
  options.store_root = dir + "/store";
  options.journal_path = dir + "/journal.csv";
  pf::CancellationToken token;
  options.exec.cancel = token;
  options.on_event = [&token](const CampaignEvent& event) {
    if (event.kind == CampaignEvent::Kind::kDone && event.finished >= 2)
      token.request_cancellation();
  };
  EXPECT_THROW(run_campaign(spec, options), pf::CancelledError);

  CampaignOptions resume;
  resume.store_root = options.store_root;
  resume.journal_path = options.journal_path;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_TRUE(resumed.all_done());
  EXPECT_GE(resumed.stats.resumed, 2u);
  EXPECT_EQ(resumed.report(spec), control_report)
      << "kill + resume must be indistinguishable from an uninterrupted run";
}

TEST(CampaignRunner, CustomJobMustDeclareItsDependencies) {
  CampaignSpec spec;
  spec.name = "undeclared";
  spec.jobs = {sweep_job("s1", "1r1"), sweep_job("s2", "0w0")};
  CampaignJob sneaky;
  sneaky.id = "sneaky";
  sneaky.kind = CampaignJob::Kind::kCustom;
  sneaky.deps = {"s1"};
  sneaky.custom = [](const DepContext& ctx) {
    return Json(ctx.map("s2").to_csv());  // s2 is NOT a declared dependency
  };
  spec.jobs.push_back(sneaky);

  CampaignOptions options;
  options.max_job_attempts = 1;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(result.jobs.at("sneaky").state, JobState::kJobFailed);
  EXPECT_NE(result.jobs.at("sneaky").detail.string_or("error", "")
                .find("without declaring"),
            std::string::npos);
  EXPECT_EQ(result.jobs.at("s2").state, JobState::kJobDone)
      << "the custom job's failure must stay isolated";
}

TEST(CampaignRunner, InvalidSpecThrowsBeforeAnythingRuns) {
  CampaignSpec spec;
  spec.name = "cyclic";
  spec.jobs = {sweep_job("a", "1r1", {"b"}), sweep_job("b", "1r1", {"a"})};
  EXPECT_THROW(run_campaign(spec, CampaignOptions{}), pf::Error);
}

}  // namespace
}  // namespace pf::campaign
