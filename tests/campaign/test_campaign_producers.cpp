// Golden A/B for the campaign producers: the Table 1 catalogue and the
// completion search, run through a campaign, must match the pre-campaign
// implementations exactly (same rows, same completed FPs, same formatted
// table) — coarse grids, like tests/analysis/test_table1.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pf/analysis/region.hpp"
#include "pf/analysis/table1.hpp"
#include "pf/campaign/producers.hpp"

namespace pf::campaign {
namespace {

using analysis::Table1Options;
using analysis::Table1Row;
using dram::OpenSite;
using faults::Ffm;

Table1Options coarse(std::vector<OpenSite> sites) {
  Table1Options opt;
  opt.sites = std::move(sites);
  opt.r_points = 5;
  opt.u_points = 5;
  opt.max_prefix_ops = 1;
  opt.fallback_windows = 2;
  opt.probe_u_points = 4;
  return opt;
}

void expect_rows_identical(const std::vector<Table1Row>& direct,
                           const std::vector<Table1Row>& via) {
  ASSERT_EQ(direct.size(), via.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].sim_ffm, via[i].sim_ffm) << "row " << i;
    EXPECT_EQ(direct[i].com_ffm, via[i].com_ffm) << "row " << i;
    EXPECT_EQ(direct[i].site, via[i].site) << "row " << i;
    EXPECT_EQ(direct[i].initialized_voltage, via[i].initialized_voltage)
        << "row " << i;
    EXPECT_EQ(direct[i].completable, via[i].completable) << "row " << i;
    EXPECT_EQ(direct[i].completed.to_string(), via[i].completed.to_string())
        << "row " << i;
    EXPECT_EQ(direct[i].min_r_def, via[i].min_r_def) << "row " << i;
    EXPECT_EQ(direct[i].band_coverage, via[i].band_coverage) << "row " << i;
  }
  EXPECT_EQ(analysis::format_table1(direct), analysis::format_table1(via));
}

TEST(CampaignProducers, Table1CampaignShapesTheExpectedDag) {
  const CampaignSpec spec = table1_campaign(coarse({OpenSite::kBitLineOuter}));
  // Open 4 floats one line: 8 base-SOS sweeps + 1 per-site analysis job.
  ASSERT_EQ(spec.jobs.size(), 9u);
  spec.validate();
  const CampaignJob& analysis_job = spec.jobs.back();
  EXPECT_EQ(analysis_job.id, "open4-analysis");
  EXPECT_EQ(analysis_job.kind, CampaignJob::Kind::kCustom);
  EXPECT_EQ(analysis_job.deps.size(), 8u);
  EXPECT_EQ(spec.jobs[0].id, "open4-line0-sos0");
  EXPECT_EQ(spec.jobs[0].sweep.sos_text, "0");
  EXPECT_EQ(spec.jobs[0].sweep.r_min, 10e3);
  EXPECT_EQ(spec.jobs[0].sweep.r_max, 10e6);
}

TEST(CampaignProducers, Table1ViaCampaignMatchesDirectGeneration) {
  const Table1Options options = coarse({OpenSite::kBitLineOuter});
  const auto direct = analysis::generate_table1(dram::DramParams{}, options);

  CampaignResult result;
  const auto via =
      generate_table1_via_campaign(options, CampaignOptions{}, &result);
  EXPECT_TRUE(result.all_done());
  expect_rows_identical(direct, via);

  // Sanity on the known Open 4 content (mirrors test_table1).
  const auto it =
      std::find_if(via.begin(), via.end(),
                   [](const Table1Row& r) { return r.sim_ffm == Ffm::kRDF1; });
  ASSERT_NE(it, via.end());
  ASSERT_TRUE(it->completable);
  EXPECT_EQ(it->completed.to_string(), "<1v [w0BL] r1v/0/0>");
}

TEST(CampaignProducers, Table1ViaCampaignSurvivesStoreAndResume) {
  const Table1Options options = coarse({OpenSite::kWordLine});
  const auto direct = analysis::generate_table1(dram::DramParams{}, options);

  const std::string dir = ::testing::TempDir() + "producers_table1";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CampaignOptions campaign;
  campaign.store_root = dir + "/store";
  campaign.journal_path = dir + "/journal.csv";

  const auto cold = generate_table1_via_campaign(options, campaign);
  expect_rows_identical(direct, cold);

  // A full re-run restores everything from the journal/store — analysis
  // included — and still reassembles the identical table.
  CampaignResult resumed_result;
  const auto resumed =
      generate_table1_via_campaign(options, campaign, &resumed_result);
  EXPECT_GE(resumed_result.stats.resumed, resumed_result.jobs.size() - 1);
  expect_rows_identical(direct, resumed);
}

TEST(CampaignProducers, CompletionCampaignMatchesDirectSearch) {
  service::JobSpec sweep;
  sweep.defect_kind = "open";
  sweep.open_site = 4;
  sweep.sos_text = "1r1";
  sweep.r_points = 5;
  sweep.u_points = 5;

  CompletionCampaignOptions options;
  options.ffm = Ffm::kRDF1;
  options.probe_u_points = 4;
  options.max_prefix_ops = 1;
  options.fallback_windows = 2;

  // Direct: sweep + search, the pre-campaign wiring.
  const analysis::SweepSpec sspec = sweep.to_sweep_spec();
  const analysis::RegionMap map = analysis::sweep_region(sspec);
  analysis::CompletionSpec cspec;
  cspec.params = sspec.params;
  cspec.defect = sspec.defect;
  cspec.floating_line_index = sspec.floating_line_index;
  cspec.base.sos = sspec.sos;
  const auto lines = dram::floating_lines_for(sspec.defect, sspec.params);
  cspec.probe_u = pf::linspace(lines[0].min_v, lines[0].max_v,
                               options.probe_u_points);
  cspec.max_prefix_ops = options.max_prefix_ops;
  const analysis::CompletionResult direct =
      analysis::search_completing_ops_with_fallback(
          cspec, map, options.ffm, 1, options.fallback_windows);

  const CampaignSpec spec = completion_campaign(sweep, options);
  ASSERT_EQ(spec.jobs.size(), 2u);
  const CampaignResult result = run_campaign(spec, CampaignOptions{});
  ASSERT_TRUE(result.all_done());
  const analysis::CompletionResult via = completion_from_result(result);

  EXPECT_EQ(direct.possible, via.possible);
  ASSERT_TRUE(via.possible);
  EXPECT_EQ(direct.completed.to_string(), via.completed.to_string());
  EXPECT_EQ(direct.candidates_evaluated, via.candidates_evaluated);
  EXPECT_EQ(direct.sos_runs, via.sos_runs);
}

TEST(CampaignProducers, SearchCampaignMatchesDirectSearch) {
  SearchCampaignOptions options;
  options.max_evaluations = 500;
  options.sets = {march::standard_target_sets().back()};  // cfst-pair

  const CampaignSpec spec = search_campaign(options);
  ASSERT_EQ(spec.jobs.size(), 2u);  // one set + summary
  spec.validate();
  EXPECT_EQ(spec.jobs[0].id, "search-cfst-pair");
  const CampaignResult result = run_campaign(spec, CampaignOptions{});
  ASSERT_TRUE(result.all_done());

  const auto entries = search_from_result(spec, result);
  ASSERT_EQ(entries.size(), 1u);

  // Direct run with the same knobs: identical test (the search is
  // deterministic, the campaign only wraps it).
  march::SearchOptions direct_options;
  direct_options.synthesis.geometry = options.geometry;
  direct_options.synthesis.budget.seed = options.seed;
  direct_options.synthesis.budget.max_evaluations = options.max_evaluations;
  const march::SearchResult direct =
      march::search_march(options.sets[0].targets, direct_options);
  EXPECT_EQ(entries[0].test.to_string(), direct.test.to_string());
  EXPECT_EQ(entries[0].success, direct.success);
  EXPECT_EQ(entries[0].ops_per_cell, direct.ops_per_cell);
  EXPECT_EQ(entries[0].certificate_complete, direct.certificate.complete);
}

TEST(CampaignProducers, SearchCampaignJournalsAndResumesIncumbents) {
  const std::string dir = ::testing::TempDir() + "producers_search";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SearchCampaignOptions options;
  options.max_evaluations = 500;
  options.sets = {march::standard_target_sets().back()};  // cfst-pair
  options.incumbent_dir = dir + "/incumbents";

  CampaignOptions campaign;
  campaign.journal_path = dir + "/journal.csv";

  const CampaignSpec spec = search_campaign(options);
  const CampaignResult cold = run_campaign(spec, campaign);
  ASSERT_TRUE(cold.all_done());
  const auto cold_entries = search_from_result(spec, cold);
  ASSERT_EQ(cold_entries.size(), 1u);

  // Per-improvement journaling left the best incumbent on disk, parseable
  // and identical to the returned test (the last improvement IS the best).
  const std::string incumbent_path =
      options.incumbent_dir + "/cfst-pair.incumbent";
  ASSERT_TRUE(std::filesystem::exists(incumbent_path));
  std::ifstream in(incumbent_path);
  std::string notation;
  std::getline(in, notation);
  EXPECT_EQ(march::MarchTest::parse(notation).to_string(),
            cold_entries[0].test.to_string());

  // Resume: the journal restores the DONE job without re-running it.
  const CampaignResult resumed = run_campaign(search_campaign(options),
                                              campaign);
  ASSERT_TRUE(resumed.all_done());
  EXPECT_GE(resumed.stats.resumed, 1u);
  const auto resumed_entries =
      search_from_result(search_campaign(options), resumed);
  EXPECT_EQ(resumed_entries[0].test.to_string(),
            cold_entries[0].test.to_string());

  // A cold re-run (fresh journal) seeds the search from the journaled
  // incumbent: with a ZERO budget the optimizer cannot rediscover the 5N
  // test, so reproducing it proves the incumbent file was loaded.
  SearchCampaignOptions warm = options;
  warm.max_evaluations = 0;
  CampaignOptions fresh;
  const CampaignSpec warm_spec = search_campaign(warm);
  const CampaignResult warm_result = run_campaign(warm_spec, fresh);
  ASSERT_TRUE(warm_result.all_done());
  const auto warm_entries = search_from_result(warm_spec, warm_result);
  EXPECT_EQ(warm_entries[0].test.to_string(),
            cold_entries[0].test.to_string());
  EXPECT_LT(warm_entries[0].ops_per_cell, 6);  // better than greedy's 6N
}

}  // namespace
}  // namespace pf::campaign
