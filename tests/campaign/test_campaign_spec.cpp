// CampaignSpec: validation (ids, deps, cycles — real and injected), the
// deterministic topological order, the fingerprint, and the spec-file JSON
// round trip.
#include <gtest/gtest.h>

#include <fstream>

#include "pf/campaign/fault_injection.hpp"
#include "pf/campaign/spec.hpp"
#include "pf/util/error.hpp"

namespace pf::campaign {
namespace {

CampaignJob sweep_job(const std::string& id,
                      std::vector<std::string> deps = {}) {
  CampaignJob job;
  job.id = id;
  job.kind = CampaignJob::Kind::kSweep;
  job.deps = std::move(deps);
  job.sweep.r_points = 3;
  job.sweep.u_points = 3;
  return job;
}

CampaignJob custom_job(const std::string& id,
                       std::vector<std::string> deps = {}) {
  CampaignJob job;
  job.id = id;
  job.kind = CampaignJob::Kind::kCustom;
  job.deps = std::move(deps);
  job.custom = [](const DepContext&) { return service::Json(true); };
  return job;
}

TEST(CampaignSpec, RejectsEmptyCampaign) {
  CampaignSpec spec;
  EXPECT_THROW(spec.validate(), pf::Error);
}

TEST(CampaignSpec, RejectsBadAndDuplicateIds) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("ok"), sweep_job("has space")};
  EXPECT_THROW(spec.validate(), pf::Error);
  spec.jobs = {sweep_job("twin"), sweep_job("twin")};
  EXPECT_THROW(spec.validate(), pf::Error);
  spec.jobs = {sweep_job("")};
  EXPECT_THROW(spec.validate(), pf::Error);
}

TEST(CampaignSpec, RejectsBadDependencies) {
  CampaignSpec self;
  self.jobs = {sweep_job("a", {"a"})};
  EXPECT_THROW(self.validate(), pf::Error);

  CampaignSpec unknown;
  unknown.jobs = {sweep_job("a", {"ghost"})};
  EXPECT_THROW(unknown.validate(), pf::Error);

  CampaignSpec twice;
  twice.jobs = {sweep_job("a"), sweep_job("b", {"a", "a"})};
  EXPECT_THROW(twice.validate(), pf::Error);

  CampaignSpec no_fn;
  no_fn.jobs = {sweep_job("a")};
  no_fn.jobs.push_back({});
  no_fn.jobs.back().id = "c";
  no_fn.jobs.back().kind = CampaignJob::Kind::kCustom;
  EXPECT_THROW(no_fn.validate(), pf::Error);
}

TEST(CampaignSpec, RejectsDependencyCycleNamingItsJobs) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("a", {"c"}), sweep_job("b", {"a"}),
               sweep_job("c", {"b"}), sweep_job("free")};
  try {
    spec.validate();
    FAIL() << "cycle must be rejected";
  } catch (const pf::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos);
    EXPECT_NE(what.find("\"a\""), std::string::npos);
    EXPECT_NE(what.find("\"b\""), std::string::npos);
    EXPECT_NE(what.find("\"c\""), std::string::npos);
    EXPECT_EQ(what.find("\"free\""), std::string::npos)
        << "jobs off the cycle must not be blamed";
  }
}

TEST(CampaignSpec, DepCycleInjectionForcesTheErrorPath) {
  CampaignSpec spec;
  spec.name = "clean";
  spec.jobs = {sweep_job("a"), sweep_job("b", {"a"})};
  spec.validate();  // acyclic: passes

  testing::ScopedCampaignFault fault("dep_cycle=clean");
  try {
    spec.validate();
    FAIL() << "injected cycle must be reported";
  } catch (const pf::Error& e) {
    EXPECT_NE(std::string(e.what()).find("(injected)"), std::string::npos);
  }
  EXPECT_EQ(testing::faults_fired(), 1u);
  spec.validate();  // budget spent: clean again
}

TEST(CampaignSpec, TopoOrderIsDeterministicDeclarationOrderAmongReady) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("z", {"m"}), sweep_job("a"), sweep_job("m", {"a"}),
               sweep_job("b")};
  const std::vector<size_t> order = spec.topo_order();
  // Declaration-order scan, cascading within a pass: z waits, a places,
  // m's dependency is already placed so m follows immediately, then b;
  // pass 2 places z. Deterministic for a given declaration order.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(spec.jobs[order[0]].id, "a");
  EXPECT_EQ(spec.jobs[order[1]].id, "m");
  EXPECT_EQ(spec.jobs[order[2]].id, "b");
  EXPECT_EQ(spec.jobs[order[3]].id, "z");
}

TEST(CampaignSpec, FingerprintCoversIdsDepsAndSweepKeys) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("a"), sweep_job("b", {"a"})};
  const uint64_t base = spec.fingerprint();

  CampaignSpec renamed = spec;
  renamed.jobs[1].id = "b2";
  renamed.jobs[1].deps = {"a"};
  EXPECT_NE(renamed.fingerprint(), base);

  CampaignSpec rewired = spec;
  rewired.jobs[1].deps.clear();
  EXPECT_NE(rewired.fingerprint(), base);

  CampaignSpec regridded = spec;
  regridded.jobs[0].sweep.u_points = 4;  // different sweep cache key
  EXPECT_NE(regridded.fingerprint(), base);

  EXPECT_EQ(CampaignSpec(spec).fingerprint(), base);
}

TEST(CampaignSpec, JsonRoundTripPreservesJobsAndOrder) {
  CampaignSpec spec;
  spec.name = "roundtrip";
  spec.jobs = {sweep_job("first"), sweep_job("second", {"first"})};
  spec.jobs[1].sweep.sos_text = "0w0";
  spec.jobs[1].sweep.r_min = 1e4;
  spec.jobs[1].sweep.r_max = 1e6;

  const CampaignSpec back = CampaignSpec::from_json(spec.to_json());
  EXPECT_EQ(back.name, "roundtrip");
  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[0].id, "first");
  EXPECT_EQ(back.jobs[1].id, "second");
  ASSERT_EQ(back.jobs[1].deps.size(), 1u);
  EXPECT_EQ(back.jobs[1].deps[0], "first");
  EXPECT_EQ(back.jobs[1].sweep.sos_text, "0w0");
  EXPECT_EQ(back.fingerprint(), spec.fingerprint());
}

TEST(CampaignSpec, CustomJobsCannotSerializeToSpecFiles) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("a"), custom_job("analyze", {"a"})};
  spec.validate();
  EXPECT_THROW(spec.to_json(), pf::Error);
}

TEST(CampaignSpec, FromJsonAppliesWireAdmissionBounds) {
  CampaignSpec spec;
  spec.jobs = {sweep_job("big")};
  spec.jobs[0].sweep.r_points = 999;  // beyond JobLimits::max_axis_points
  EXPECT_THROW(CampaignSpec::from_json(spec.to_json()), pf::ParseError);
}

TEST(CampaignSpec, LoadFileReadsAndValidates) {
  const std::string path = ::testing::TempDir() + "campaign_spec_test.json";
  CampaignSpec spec;
  spec.name = "fromfile";
  spec.jobs = {sweep_job("a"), sweep_job("b", {"a"})};
  {
    std::ofstream out(path, std::ios::trunc);
    out << spec.to_json().dump();
  }
  const CampaignSpec back = CampaignSpec::load_file(path);
  EXPECT_EQ(back.name, "fromfile");
  EXPECT_EQ(back.jobs.size(), 2u);
  EXPECT_THROW(CampaignSpec::load_file(path + ".missing"), pf::Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf::campaign
