// Shrinker unit properties on synthetic predicates (no electrical solves):
// greedy delta debugging must reach a 1-minimal case, keep every candidate
// well-formed, and normalize the execution mode of the repro.
#include <gtest/gtest.h>

#include "pf/testing/shrink.hpp"

namespace pf::testing {
namespace {

using faults::CellRole;
using faults::Op;
using faults::Sos;

FuzzCase big_case() {
  FuzzCase c;
  c.site = dram::OpenSite::kBitLineOuter;
  c.sos = Sos::parse("0a 1v [w1BL] w0BL r1v r0BL");
  c.r_axis = {1e4, 1e5, 1e6};
  c.u_axis = {0.0, 1.1, 2.2, 3.3};
  c.threads = 3;
  c.warm_start = true;
  c.circuit = analysis::CircuitMode::kRebuild;
  c.tweaks = {{"c_cell", 0.9}, {"t_sense", 1.1}};
  return c;
}

TEST(FuzzShrink, ReducesGridToTheCulpritPoint) {
  // The "bug" needs R = 1e5 and U = 2.2 present in the grid.
  const auto fails = [](const FuzzCase& c) {
    const bool has_r = std::find(c.r_axis.begin(), c.r_axis.end(), 1e5) !=
                       c.r_axis.end();
    const bool has_u = std::find(c.u_axis.begin(), c.u_axis.end(), 2.2) !=
                       c.u_axis.end();
    return has_r && has_u;
  };
  const ShrinkResult r = shrink_case(big_case(), fails);
  EXPECT_EQ(r.minimal.r_axis, std::vector<double>{1e5});
  EXPECT_EQ(r.minimal.u_axis, std::vector<double>{2.2});
  EXPECT_TRUE(r.minimal.tweaks.empty());
  EXPECT_TRUE(r.minimal.sos.ops.empty()) << r.minimal.describe();
  EXPECT_GT(r.accepted, 0);
}

TEST(FuzzShrink, EveryCandidateIsWellFormed) {
  int evaluated = 0;
  const auto fails = [&](const FuzzCase& c) {
    ++evaluated;
    EXPECT_TRUE(sos_well_formed(c.sos)) << c.sos.to_string();
    // The bug needs at least one victim read.
    for (const Op& op : c.sos.ops)
      if (op.is_read() && op.target == CellRole::kVictim) return true;
    return false;
  };
  const ShrinkResult r = shrink_case(big_case(), fails);
  EXPECT_EQ(r.evaluations, evaluated);
  // 1-minimal: exactly the read (plus the initialization its digit needs).
  ASSERT_EQ(r.minimal.sos.ops.size(), 1u);
  EXPECT_TRUE(r.minimal.sos.ops[0].is_read());
  EXPECT_EQ(r.minimal.sos.ops[0].target, CellRole::kVictim);
  EXPECT_TRUE(sos_well_formed(r.minimal.sos));
}

TEST(FuzzShrink, NormalizesExecutionMode) {
  const auto fails = [](const FuzzCase&) { return true; };  // always fails
  const ShrinkResult r = shrink_case(big_case(), fails);
  EXPECT_EQ(r.minimal.threads, 1);
  EXPECT_FALSE(r.minimal.warm_start);
  EXPECT_EQ(r.minimal.circuit, analysis::CircuitMode::kReuse);
  EXPECT_EQ(r.minimal.r_axis.size(), 1u);
  EXPECT_EQ(r.minimal.u_axis.size(), 1u);
}

TEST(FuzzShrink, ReportCarriesSeedAndReproCommand) {
  const ShrinkResult r =
      shrink_case(big_case(), [](const FuzzCase&) { return true; });
  const std::string report = shrink_report(r, 0xabcd);
  EXPECT_NE(report.find("43981"), std::string::npos) << report;  // 0xabcd
  EXPECT_NE(report.find("defect_explorer 4"), std::string::npos) << report;
  EXPECT_NE(report.find(r.minimal.sos.to_string()), std::string::npos);
}

TEST(FuzzShrink, KeepsTheFailingTweakOnly) {
  const auto fails = [](const FuzzCase& c) {
    for (const ParamTweak& t : c.tweaks)
      if (t.field == "t_sense") return true;
    return false;
  };
  const ShrinkResult r = shrink_case(big_case(), fails);
  ASSERT_EQ(r.minimal.tweaks.size(), 1u);
  EXPECT_EQ(r.minimal.tweaks[0].field, "t_sense");
}

}  // namespace
}  // namespace pf::testing
