// Differential fuzz: the word-parallel population engine vs the scalar
// reference (DESIGN.md §10/§13). Two harnesses:
//
//  * whole-matrix: random geometry x random march test x random guarded
//    class set through evaluate_population on BOTH engines — the detection
//    matrices must be identical bit for bit;
//  * lockstep: random operation sequences (including patterns no march test
//    produces, e.g. address ping-pong with inconsistent expectations)
//    driven simultaneously into a PlaneMemory and per-instance scalar
//    Memory machines, comparing victim state and detect flags after every
//    operation.
//
// Deterministic by default; PF_TEST_SEED picks the run, PF_FUZZ_ITERS the
// budget. Failures carry the seed banner plus a per-iteration repro trace
// (geometry, test, classes).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/memsim/memory.hpp"
#include "pf/memsim/plane_memory.hpp"
#include "pf/testing/generators.hpp"

namespace pf::testing {
namespace {

using faults::CouplingFault;
using faults::Ffm;
using march::MarchTest;
using march::MemEngine;
using march::PopulationClass;
using memsim::Geometry;
using memsim::Guard;
using memsim::Memory;
using memsim::PlaneMemory;
using memsim::PopulationFault;

Guard random_guard(Rng& rng) {
  switch (rng.next_below(5)) {
    case 0: return Guard::none();
    case 1: return Guard::bit_line(static_cast<int>(rng.next_below(2)));
    case 2: return Guard::buffer(static_cast<int>(rng.next_below(2)));
    case 3: return Guard::hidden(true);
    default: return Guard::hidden(false);
  }
}

Ffm random_ffm(Rng& rng) {
  const auto& ffms = faults::all_ffms();
  return ffms[rng.next_below(ffms.size())];
}

CouplingFault random_coupling(Rng& rng) {
  const auto& cfs = faults::all_coupling_faults();
  return cfs[rng.next_below(cfs.size())];
}

TEST(FuzzPopulation, MatrixIdenticalAcrossEngines) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(40);
  SCOPED_TRACE(fuzz_banner("population.matrix", seed, iters));
  Rng rng(seed);

  std::vector<MarchTest> tests = march::standard_tests();
  tests.push_back(march::naive_w1r1());

  for (int iter = 0; iter < iters; ++iter) {
    const Geometry geom{2 + static_cast<int>(rng.next_below(4)),
                        2 + static_cast<int>(rng.next_below(4))};
    const MarchTest& test = tests[rng.next_below(tests.size())];

    // 1..5 guarded FFM classes plus at most 2 coupling classes (coupling
    // expands quadratically; the scalar reference pays one march run per
    // instance).
    std::vector<PopulationClass> classes;
    const std::size_t n_single = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < n_single; ++i)
      classes.push_back(
          PopulationClass::single(random_ffm(rng), random_guard(rng)));
    const std::size_t n_coupled = rng.next_below(3);
    for (std::size_t i = 0; i < n_coupled; ++i)
      classes.push_back(
          PopulationClass::coupled(random_coupling(rng), random_guard(rng)));

    std::ostringstream repro;
    repro << "iter " << iter << ": " << geom.num_rows << "x"
          << geom.num_columns << ", test " << test.name << ", classes [";
    for (const auto& cls : classes) repro << " " << cls.name();
    repro << " ]";
    SCOPED_TRACE(repro.str());

    const auto scalar =
        march::evaluate_population(test, geom, classes, MemEngine::kScalar);
    const auto plane =
        march::evaluate_population(test, geom, classes, MemEngine::kPlane);
    ASSERT_EQ(scalar.classes.size(), plane.classes.size());
    EXPECT_EQ(plane.march_passes, 1u);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      SCOPED_TRACE("class " + classes[c].name());
      ASSERT_EQ(scalar.classes[c].detected, plane.classes[c].detected);
      ASSERT_EQ(scalar.classes[c].outcome, plane.classes[c].outcome);
    }
  }
}

TEST(FuzzPopulation, LockstepUnderRandomOperationSequences) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(60);
  SCOPED_TRACE(fuzz_banner("population.lockstep", seed, iters));
  Rng rng(seed);

  for (int iter = 0; iter < iters; ++iter) {
    const Geometry geom{2 + static_cast<int>(rng.next_below(4)),
                        2 + static_cast<int>(rng.next_below(4))};
    const std::int64_t cells = geom.num_cells();

    // A random population of 1..70 instances (always crossing the 64-lane
    // batch boundary eventually), duplicates and shared columns allowed.
    const std::size_t n = 1 + rng.next_below(70);
    std::vector<PopulationFault> population;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t victim = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(cells)));
      if (rng.next_below(4) == 0 && cells > 1) {
        std::int64_t aggressor = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(cells - 1)));
        if (aggressor >= victim) ++aggressor;
        population.push_back(PopulationFault::coupled(
            aggressor, victim, random_coupling(rng), random_guard(rng)));
      } else {
        population.push_back(PopulationFault::single(
            victim, random_ffm(rng), random_guard(rng)));
      }
    }

    std::ostringstream repro;
    repro << "iter " << iter << ": " << geom.num_rows << "x"
          << geom.num_columns << ", population " << n;
    SCOPED_TRACE(repro.str());

    PlaneMemory plane(geom, population);
    std::vector<Memory> scalars;
    std::vector<bool> scalar_detect(population.size(), false);
    for (const PopulationFault& f : population) {
      scalars.emplace_back(geom);
      if (f.aggressor >= 0)
        scalars.back().inject_coupling(
            {f.aggressor, f.victim, f.coupling, f.guard});
      else
        scalars.back().inject({f.victim, f.ffm, f.guard});
    }

    const int n_ops = 8 + static_cast<int>(rng.next_below(40));
    for (int k = 0; k < n_ops; ++k) {
      const std::int64_t addr = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(cells)));
      const int value = static_cast<int>(rng.next_below(2));
      if (rng.next_bool()) {
        // `value` doubles as the march expectation — deliberately often
        // wrong, which exercises the detect latch on both sides.
        const int ff = plane.read(addr, value);
        ASSERT_EQ(ff, plane.reference_cell(addr)) << "op " << k;
        for (std::size_t i = 0; i < scalars.size(); ++i)
          if (scalars[i].read(addr) != value) scalar_detect[i] = true;
      } else {
        plane.write(addr, value);
        for (Memory& m : scalars) m.write(addr, value);
      }
      for (std::size_t i = 0; i < scalars.size(); ++i) {
        const auto idx = static_cast<std::int64_t>(i);
        // State-type faults (SF, CFst) act at start-of-next-op in the
        // scalar engine vs end-of-op in the plane — the between-ops cell
        // snapshot legitimately differs; the detect flags never do.
        const PopulationFault& f = population[i];
        const bool state_type =
            f.aggressor >= 0
                ? f.coupling.kind == CouplingFault::Kind::kState
                : (f.ffm == Ffm::kSF0 || f.ffm == Ffm::kSF1);
        if (!state_type)
          ASSERT_EQ(plane.victim_cell(idx), scalars[i].cell(f.victim))
              << "instance " << i << " after op " << k;
        ASSERT_EQ(plane.detected(idx), scalar_detect[i])
            << "instance " << i << " after op " << k;
      }
    }
  }
}

}  // namespace
}  // namespace pf::testing
