// Mutation-smoke: the harness is only trustworthy if it CATCHES defects.
// Plant classification mutations and solver faults through the
// pf::spice::testing injection hooks and require the differential oracle to
// convict them — and the shrinker to produce a minimal repro.
#include <gtest/gtest.h>

#include "pf/analysis/robust.hpp"
#include "pf/spice/fault_injection.hpp"
#include "pf/testing/oracle.hpp"
#include "pf/testing/shrink.hpp"

namespace pf::testing {
namespace {

namespace inj = pf::spice::testing;

FuzzCase fixed_case() {
  // First case of the default-seed stream: deterministic, known clean
  // (FuzzDifferential.ElectricalAndBehavioralLayersAgree covers the stream).
  Rng rng(kDefaultFuzzSeed);
  return random_case(rng, {});
}

TEST(FuzzMutation, CleanBaselinePasses) {
  const TrialResult r = run_differential_trial(fixed_case());
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.cells_checked, 0u);
}

TEST(FuzzMutation, PlantedCorruptionIsConvictedAndShrunk) {
  const FuzzCase c = fixed_case();
  // A silently WRONG solver on one grid point's experiment key: every
  // voltage mirrored, classification corrupted, nothing thrown. Only the
  // differential check can see it.
  inj::ScopedFaultPlan plan(
      {{analysis::grid_point_key(0, 0),
        {inj::InjectedFault::kCorruptVoltage, 1 << 30, 0, 3.3}}});
  const TrialResult r = run_differential_trial(c);
  ASSERT_FALSE(r.ok) << "planted kCorruptVoltage survived the oracle";
  EXPECT_NE(r.failure.find("referee"), std::string::npos) << r.failure;
  EXPECT_GT(inj::injections_performed(), 0u);

  // The shrinker must reduce the case to a handful of grid points and emit
  // a copy-pasteable repro.
  const ShrinkResult shrunk = shrink_case(c, [](const FuzzCase& cand) {
    try {
      return !run_differential_trial(cand).ok;
    } catch (const std::exception&) {
      return true;
    }
  });
  EXPECT_LE(shrunk.minimal.r_axis.size() * shrunk.minimal.u_axis.size(), 2u)
      << shrunk.minimal.describe();
  EXPECT_EQ(shrunk.minimal.threads, 1);
  const std::string report = shrink_report(shrunk, kDefaultFuzzSeed);
  EXPECT_NE(report.find("PF_TEST_SEED"), std::string::npos);
  EXPECT_NE(report.find("defect_explorer"), std::string::npos);
  // The minimal case still fails under the plan...
  EXPECT_FALSE(run_differential_trial(shrunk.minimal).ok);
}

TEST(FuzzMutation, MinimalCasePassesOnceThePlanIsGone) {
  FuzzCase c = fixed_case();
  FuzzCase minimal;
  {
    inj::ScopedFaultPlan plan(
        {{analysis::grid_point_key(0, 0),
          {inj::InjectedFault::kCorruptVoltage, 1 << 30, 0, 3.3}}});
    minimal = shrink_case(c, [](const FuzzCase& cand) {
                return !run_differential_trial(cand).ok;
              }).minimal;
  }
  // Disarmed, the shrunk repro is clean: the failure was the mutation, not
  // the stack.
  EXPECT_TRUE(run_differential_trial(minimal).ok);
}

TEST(FuzzMutation, UnrecoverableNanVoltageIsConvicted) {
  // kNanVoltage past the retry budget degrades the sweep cell to FAIL; the
  // injection-free referee solves the point, and the disagreement convicts
  // the planted fault.
  const FuzzCase c = fixed_case();
  inj::ScopedFaultPlan plan({{analysis::grid_point_key(0, 0),
                              {inj::InjectedFault::kNanVoltage, 1 << 30}}});
  const TrialResult r = run_differential_trial(c);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("FAIL"), std::string::npos) << r.failure;
}

TEST(FuzzMutation, RecoverableInjectionStaysClean) {
  // A fault that recovers within the retry budget must NOT trip the oracle:
  // retry/backoff absorbs it and the final classification is sound.
  const FuzzCase c = fixed_case();
  inj::ScopedFaultPlan plan(
      {{analysis::grid_point_key(0, 0),
        {inj::InjectedFault::kNonConvergence, /*fail_attempts=*/1}}});
  const TrialResult r = run_differential_trial(c);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(inj::injections_performed(), 0u)
      << "the injection plan never fired — the smoke test is vacuous";
}

}  // namespace
}  // namespace pf::testing
