// Electrical differential + metamorphic fuzz suite (DESIGN.md §10).
//
// Budgets are deliberately small by default — each iteration runs real
// transient sweeps — and scale with PF_FUZZ_ITERS (scripts/ci.sh gives the
// suite a bounded budget; PF_FUZZ_ITERS=1000 is the deep overnight run).
// Every failure prints the seed banner plus a shrunk, copy-pasteable repro.
#include <gtest/gtest.h>

#include <algorithm>

#include "pf/testing/oracle.hpp"
#include "pf/testing/shrink.hpp"

namespace pf::testing {
namespace {

using faults::Ffm;

bool trial_fails(const FuzzCase& c) {
  try {
    return !run_differential_trial(c).ok;
  } catch (const std::exception&) {
    return true;  // a throw from the stack under test is a failure too
  }
}

void report_failure(const FuzzCase& c, const std::string& why,
                    uint64_t seed) {
  const ShrinkResult shrunk = shrink_case(c, trial_fails);
  ADD_FAILURE() << why << "\n" << shrink_report(shrunk, seed);
}

TEST(FuzzDifferential, ElectricalAndBehavioralLayersAgree) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(12);
  SCOPED_TRACE(fuzz_banner("differential.oracle", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    FuzzCase c = random_case(rng);
    c.threads = (i % 2) ? 3 : 1;  // the oracle must hold in both modes
    const TrialResult r = run_differential_trial(c);
    if (!r.ok) {
      report_failure(c, "iteration " + std::to_string(i) + ": " + r.failure,
                     seed);
      return;  // one shrunk repro at a time
    }
  }
}

TEST(FuzzDifferential, GridIsBitIdenticalAcrossExecutionModes) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(3);
  SCOPED_TRACE(fuzz_banner("differential.modes", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const FuzzCase c = random_case(rng);
    const analysis::SweepSpec spec = c.sweep_spec();
    analysis::ExecutionPolicy reference;  // serial, reuse, cold
    const auto base = sweep_region(spec, reference);

    analysis::ExecutionPolicy threaded;
    threaded.threads = 3;
    analysis::ExecutionPolicy rebuild;
    rebuild.plan.circuit_mode = analysis::CircuitMode::kRebuild;
    analysis::ExecutionPolicy warm;
    warm.plan.warm_start = true;
    analysis::ExecutionPolicy batched;
    batched.plan.backend = spice::SolverBackend::kBatched;
    for (const auto* policy : {&threaded, &rebuild, &warm, &batched}) {
      const auto other = sweep_region(spec, *policy);
      ASSERT_EQ(base.grid().data(), other.grid().data())
          << c.describe() << " (threads=" << policy->threads << ", circuit="
          << (policy->plan.circuit_mode == analysis::CircuitMode::kReuse
                  ? "reuse"
                  : "rebuild")
          << ", warm=" << policy->plan.warm_start << ", backend="
          << spice::solver_backend_name(policy->plan.backend) << ")";
    }
  }
}

bool bitline_site(dram::OpenSite s) {
  using O = dram::OpenSite;
  return s == O::kPrecharge || s == O::kBitLineOuter || s == O::kBitLineMid ||
         s == O::kBitLineSense || s == O::kBitLineOuterComp;
}

// Metamorphic: for a FULL finding (sensitized at every floating voltage of
// some row), prepending a completing bit-line write whose driven level
// agrees with the grid point's floating level must not remove the fault
// there — the completing operation merely establishes the state the line
// already floats at. (Opposite-polarity completions legitimately move band
// edges, so points near vdd/2 or of mismatched polarity are out of scope.)
TEST(FuzzDifferential, MatchedCompletingOpsAreNeutralOnFullFaults) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(8);
  SCOPED_TRACE(fuzz_banner("differential.completing", seed, iters));
  Rng rng(seed);
  int qualified = 0;
  for (int i = 0; i < iters || qualified == 0; ++i) {
    if (i >= 16 * std::max(iters, 1)) break;  // give up hunting politely
    const FuzzCase c = random_case(rng);
    if (!bitline_site(c.site) || c.sos.has_completing_ops() ||
        c.sos.ops.empty())
      continue;
    const double vdd = c.params().vdd;
    const analysis::RegionMap base = sweep_region(c.sweep_spec(), {});
    for (const auto& f : identify_partial_faults(base)) {
      if (f.partial) continue;
      for (int level = 0; level <= 1; ++level) {
        faults::Sos completed = c.sos;
        faults::Op op;
        op.kind = level ? faults::Op::Kind::kWrite1
                        : faults::Op::Kind::kWrite0;
        op.target = faults::CellRole::kAggressorBl;
        op.completing = true;
        completed.ops.insert(completed.ops.begin(), op);
        if (!sos_well_formed(completed)) continue;
        const int driven = c.site == dram::OpenSite::kBitLineOuterComp
                               ? 1 - level
                               : level;
        analysis::SweepSpec spec = c.sweep_spec();
        spec.sos = completed;
        const analysis::RegionMap comp = sweep_region(spec, {});
        ++qualified;
        for (size_t iy = 0; iy < base.grid().height(); ++iy) {
          for (size_t ix = 0; ix < base.grid().width(); ++ix) {
            const double u = c.u_axis[ix];
            if (std::abs(u - vdd / 2) < 0.2 * vdd) continue;
            if ((u > vdd / 2 ? 1 : 0) != driven) continue;
            if (base.grid().at(ix, iy) != f.ffm) continue;
            ASSERT_EQ(comp.grid().at(ix, iy), f.ffm)
                << c.describe() << ": full " << faults::ffm_name(f.ffm)
                << " lost at (R=" << c.r_axis[iy] << ", U=" << u
                << ") after prepending [" << op.to_string() << "]";
          }
        }
      }
    }
  }
  EXPECT_GT(qualified, 0) << "generator produced no qualifying case";
}

// Metamorphic: the complementary defect (Open 4') with the data-complement
// SOS observes exactly the data-complement FFM set of Open 4 [Al-Ars00].
TEST(FuzzDifferential, ComplementaryDefectMirrorsObservedFfms) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(6);
  SCOPED_TRACE(fuzz_banner("differential.complement", seed, iters));
  Rng rng(seed);
  CaseGenConfig cfg;
  cfg.sites = {dram::OpenSite::kBitLineOuter};
  for (int i = 0; i < iters; ++i) {
    const FuzzCase c = random_case(rng, cfg);
    const analysis::RegionMap base = sweep_region(c.sweep_spec(), {});
    faults::FaultPrimitive fp;
    fp.sos = c.sos;
    analysis::SweepSpec mirrored = c.sweep_spec();
    mirrored.defect.site = dram::OpenSite::kBitLineOuterComp;
    mirrored.sos = fp.complement().sos;
    const analysis::RegionMap comp = sweep_region(mirrored, {});

    std::vector<Ffm> want;
    for (const Ffm f : base.observed_ffms())
      want.push_back(faults::complement_ffm(f));
    std::sort(want.begin(), want.end());
    std::vector<Ffm> got = comp.observed_ffms();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, want) << c.describe();
  }
}

}  // namespace
}  // namespace pf::testing
