// Randomized march-search properties (DESIGN.md §10/§14): random guarded
// target sets through search_march, checking on every iteration that
//
//  * the returned test passes a fault-free memory (self-consistency);
//  * search coverage CONTAINS greedy coverage per fault unit — the
//    optimizer may shorten the test but never trades away a unit the
//    greedy assembler already detected;
//  * a successful result is confirmed by the scalar oracle.
//
// Deterministic by default; PF_TEST_SEED picks the run, PF_FUZZ_ITERS the
// budget. Each iteration seeds its own Rng from fuzz_case_seed(seed, iter),
// so a failure replays in isolation:
//   march_workbench --search --fuzz-case SEED:ITER
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "pf/march/coverage.hpp"
#include "pf/march/search.hpp"
#include "pf/memsim/memory.hpp"
#include "pf/testing/generators.hpp"

namespace pf::testing {
namespace {

using march::MemEngine;
using march::PopulationClass;
using march::PopulationCoverage;
using march::SearchOptions;
using march::SearchResult;
using march::SynthesisOptions;
using march::SynthesisResult;
using march::TargetFault;
using memsim::Geometry;

const Geometry kGeom{4, 2};

std::vector<PopulationClass> classes_for(const std::vector<TargetFault>& ts) {
  std::vector<PopulationClass> classes;
  for (const TargetFault& t : ts)
    classes.push_back(t.coupling.has_value()
                          ? PopulationClass::coupled(*t.coupling, t.guard)
                          : PopulationClass::single(t.ffm, t.guard));
  return classes;
}

/// Per-unit detection bits of `test` over `targets`, classes concatenated.
std::vector<bool> detection_bits(const march::MarchTest& test,
                                 const std::vector<TargetFault>& targets,
                                 MemEngine engine) {
  const PopulationCoverage coverage =
      march::evaluate_population(test, kGeom, classes_for(targets), engine);
  std::vector<bool> bits;
  for (const march::PopulationOutcome& po : coverage.classes)
    bits.insert(bits.end(), po.detected.begin(), po.detected.end());
  return bits;
}

std::string describe(const std::vector<TargetFault>& targets) {
  std::ostringstream out;
  for (const TargetFault& t : targets) out << " " << t.name();
  return out.str();
}

TEST(FuzzSearch, CoverageContainsGreedyAndPassesFaultFree) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(12);
  std::printf("%s", fuzz_banner("search", seed, iters).c_str());

  for (int iter = 0; iter < iters; ++iter) {
    Rng rng(fuzz_case_seed(seed, iter));
    const std::vector<TargetFault> targets = random_target_set(rng);
    std::ostringstream repro;
    repro << "repro: march_workbench --search --fuzz-case " << seed << ":"
          << iter << " | targets:" << describe(targets);
    SCOPED_TRACE(repro.str());

    SynthesisOptions greedy_opts;
    greedy_opts.geometry = kGeom;
    const SynthesisResult greedy =
        march::synthesize_march(targets, greedy_opts);

    SearchOptions opt;
    opt.synthesis.geometry = kGeom;
    opt.synthesis.budget.max_evaluations = 800;
    opt.certify = false;
    const SearchResult result = march::search_march(targets, opt);

    // Fault-free pass: the optimizer never returns an inconsistent test.
    memsim::Memory clean(kGeom);
    EXPECT_FALSE(march::run_march(result.test, clean, clean.size()).detected)
        << result.test.to_string();

    // Per-unit containment: everything greedy detects, search detects.
    const std::vector<bool> greedy_bits =
        detection_bits(greedy.test, targets, MemEngine::kPlane);
    const std::vector<bool> search_bits =
        detection_bits(result.test, targets, MemEngine::kPlane);
    ASSERT_EQ(greedy_bits.size(), search_bits.size());
    for (std::size_t i = 0; i < greedy_bits.size(); ++i)
      EXPECT_LE(greedy_bits[i], search_bits[i])
          << "unit " << i << " detected by greedy "
          << greedy.test.to_string() << " but not by search "
          << result.test.to_string();

    // Success claims are held to the scalar oracle.
    if (result.success) {
      const std::vector<bool> oracle =
          detection_bits(result.test, targets, MemEngine::kScalar);
      for (std::size_t i = 0; i < oracle.size(); ++i)
        EXPECT_TRUE(oracle[i]) << "unit " << i << " escapes on the scalar "
                               << "oracle: " << result.test.to_string();
      if (greedy.success)
        EXPECT_LE(result.ops_per_cell, greedy.test.ops_per_cell());
    }
  }
}

TEST(FuzzSearch, SameCaseSeedReplaysTheSameTargetSet) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(8);
  for (int iter = 0; iter < iters; ++iter) {
    Rng a(fuzz_case_seed(seed, iter));
    Rng b(fuzz_case_seed(seed, iter));
    const auto ta = random_target_set(a);
    const auto tb = random_target_set(b);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i)
      EXPECT_EQ(ta[i].name(), tb[i].name());
  }
}

}  // namespace
}  // namespace pf::testing
