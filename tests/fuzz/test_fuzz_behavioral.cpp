// Behavioral half of the differential oracle, exercised exhaustively and
// randomly: guard semantics of every (FFM, guard) combination and the
// calibrated March SS / March PF detection guarantees the oracle relies on.
#include <gtest/gtest.h>

#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/testing/oracle.hpp"

namespace pf::testing {
namespace {

using faults::Ffm;
using memsim::Guard;

memsim::Geometry geom() { return memsim::Geometry{4, 2}; }

TEST(FuzzBehavioral, ExposureMatchesGuardForEveryFfmGuardCombo) {
  for (const Ffm ffm : faults::all_ffms()) {
    for (const Guard& guard :
         {Guard::none(), Guard::bit_line(0), Guard::bit_line(1),
          Guard::buffer(0), Guard::buffer(1), Guard::hidden(true),
          Guard::hidden(false)}) {
      EXPECT_EQ(check_behavioral_exposure(geom(), ffm, guard), "")
          << faults::ffm_name(ffm);
    }
  }
}

TEST(FuzzBehavioral, MarchSsDetectsEveryFullStaticFfm) {
  for (const Ffm ffm : faults::all_ffms()) {
    const auto d = march::evaluate_detection(march::march_ss(), geom(), ffm,
                                             Guard::none());
    EXPECT_TRUE(d.detected_all) << faults::ffm_name(ffm) << ": "
                                << d.detected_count << "/" << d.total_victims;
  }
}

// The March PF guarantee table the oracle asserts against (calibrated; see
// oracle.cpp march_pf_detects_all). Read-type partials are caught at every
// address under bit-line guards of either level; transition faults only
// when the guard level matches the level their sensitizing write leaves on
// the bit line; WDF/DRDF are outside March PF's 16N repertoire.
TEST(FuzzBehavioral, MarchPfBitLineGuaranteeTable) {
  const auto all = [&](Ffm ffm, int level) {
    return march::evaluate_detection(march::march_pf(), geom(), ffm,
                                     Guard::bit_line(level))
        .detected_all;
  };
  for (const Ffm ffm :
       {Ffm::kSF0, Ffm::kSF1, Ffm::kRDF0, Ffm::kRDF1, Ffm::kIRF0,
        Ffm::kIRF1}) {
    EXPECT_TRUE(all(ffm, 0)) << faults::ffm_name(ffm);
    EXPECT_TRUE(all(ffm, 1)) << faults::ffm_name(ffm);
  }
  EXPECT_TRUE(all(Ffm::kTFUp, 0));
  EXPECT_FALSE(all(Ffm::kTFUp, 1));
  EXPECT_FALSE(all(Ffm::kTFDown, 0));
  EXPECT_TRUE(all(Ffm::kTFDown, 1));
  for (const Ffm ffm : {Ffm::kWDF0, Ffm::kWDF1, Ffm::kDRDF0, Ffm::kDRDF1}) {
    EXPECT_FALSE(all(ffm, 0)) << faults::ffm_name(ffm);
    EXPECT_FALSE(all(ffm, 1)) << faults::ffm_name(ffm);
  }
}

TEST(FuzzBehavioral, MarchPfBufferGuardedReadsDetectedSomewhere) {
  for (const Ffm ffm : {Ffm::kSF0, Ffm::kSF1, Ffm::kRDF0, Ffm::kRDF1,
                        Ffm::kIRF0, Ffm::kIRF1}) {
    for (int level = 0; level <= 1; ++level) {
      const auto d = march::evaluate_detection(march::march_pf(), geom(), ffm,
                                               Guard::buffer(level));
      EXPECT_GT(d.detected_count, 0)
          << faults::ffm_name(ffm) << " buffer(" << level << ")";
    }
  }
}

TEST(FuzzBehavioral, DerivedGuardsFollowTheSiteFamily) {
  using O = dram::OpenSite;
  const double vdd = 3.3;
  // Full findings never need a guard.
  for (const O site : {O::kCell, O::kBitLineOuter, O::kIoPath}) {
    const auto g = derive_guard(site, /*partial=*/false, 0.5, vdd);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->kind, Guard::Kind::kNone);
  }
  // Bit-line opens guard on the band's level; the complement-line open
  // inverts it (its floating line is the complement bit line).
  auto g = derive_guard(O::kBitLineOuter, true, 0.2, vdd);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, Guard::Kind::kBitLine);
  EXPECT_EQ(g->value, 0);
  g = derive_guard(O::kBitLineOuter, true, 3.0, vdd);
  EXPECT_EQ(g->value, 1);
  g = derive_guard(O::kBitLineOuterComp, true, 3.0, vdd);
  EXPECT_EQ(g->value, 0);
  g = derive_guard(O::kIoPath, true, 3.0, vdd);
  EXPECT_EQ(g->kind, Guard::Kind::kBuffer);
  EXPECT_EQ(g->value, 1);
  g = derive_guard(O::kWordLine, true, 1.0, vdd);
  EXPECT_EQ(g->kind, Guard::Kind::kHidden);
  // Cell-internal opens have no operation-controllable behavioral guard.
  EXPECT_FALSE(derive_guard(O::kCell, true, 1.0, vdd).has_value());
  EXPECT_FALSE(derive_guard(O::kRefCell, true, 1.0, vdd).has_value());
}

TEST(FuzzBehavioral, RandomGuardedInjectionsBehaveConsistently) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(500);
  SCOPED_TRACE(fuzz_banner("behavioral.random", seed, iters));
  Rng rng(seed);
  const auto& ffms = faults::all_ffms();
  for (int i = 0; i < iters; ++i) {
    const Ffm ffm = ffms[rng.next_below(ffms.size())];
    Guard guard;
    switch (rng.next_below(4)) {
      case 0: guard = Guard::none(); break;
      case 1: guard = Guard::bit_line(static_cast<int>(rng.next_below(2))); break;
      case 2: guard = Guard::buffer(static_cast<int>(rng.next_below(2))); break;
      default: guard = Guard::hidden(rng.next_bool()); break;
    }
    // Larger random geometries: the guard semantics must not depend on the
    // array size or on the victim's row polarity handling baked into
    // check_behavioral_exposure's victim (address 0).
    const memsim::Geometry g{2 + static_cast<int>(rng.next_below(6)) * 2,
                             2 + static_cast<int>(rng.next_below(3))};
    ASSERT_EQ(check_behavioral_exposure(g, ffm, guard), "")
        << faults::ffm_name(ffm) << " rows=" << g.num_rows
        << " cols=" << g.num_columns;
  }
}

}  // namespace
}  // namespace pf::testing
