// Pure-algebra property suite: generator well-formedness, SOS notation
// round-trips and the 0<->1 data-complement symmetry of FP classification.
// No electrical simulation — the iteration budget is generous.
#include <gtest/gtest.h>

#include <cstdlib>

#include "pf/faults/ffm.hpp"
#include "pf/testing/generators.hpp"

namespace pf::testing {
namespace {

using faults::Ffm;
using faults::FaultPrimitive;
using faults::Sos;

TEST(FuzzAlgebra, GeneratedSosesAreWellFormedAndRoundTrip) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(2000);
  SCOPED_TRACE(fuzz_banner("algebra.sos", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const Sos sos = random_sos(rng);
    ASSERT_TRUE(sos_well_formed(sos)) << sos.to_string();
    const Sos reparsed = Sos::parse(sos.to_string());
    ASSERT_EQ(reparsed, sos) << sos.to_string();
  }
}

TEST(FuzzAlgebra, ClassificationCommutesWithDataComplement) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(2000);
  SCOPED_TRACE(fuzz_banner("algebra.complement", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    FaultPrimitive fp;
    fp.sos = random_sos(rng);
    // Random <F, R> that deviates somewhere, so fp is a fault whenever the
    // taxonomy has a slot for it.
    const int expect_f = fp.sos.expected_final_victim();
    fp.faulty_state = expect_f >= 0 ? 1 - expect_f
                                    : static_cast<int>(rng.next_below(2));
    const int expect_r = fp.sos.expected_read();
    fp.read_result =
        expect_r < 0 ? -1
                     : (rng.next_bool() ? 1 - expect_r : expect_r);
    const Ffm direct = faults::classify(fp);
    const Ffm mirrored = faults::classify(fp.complement());
    ASSERT_EQ(mirrored, faults::complement_ffm(direct))
        << fp.to_string() << " -> " << faults::ffm_name(direct)
        << " but complement " << fp.complement().to_string() << " -> "
        << faults::ffm_name(mirrored);
    // The complement is an involution on the classification.
    ASSERT_EQ(faults::classify(fp.complement().complement()), direct);
  }
}

TEST(FuzzAlgebra, CanonicalFpsClassifyBackToTheirFfm) {
  for (const Ffm ffm : faults::all_ffms()) {
    ASSERT_EQ(faults::classify(faults::canonical_fp(ffm)), ffm);
    ASSERT_EQ(faults::complement_ffm(faults::complement_ffm(ffm)), ffm);
  }
}

TEST(FuzzAlgebra, TweaksStayInRangeAndApply) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(500);
  SCOPED_TRACE(fuzz_banner("algebra.tweaks", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto tweaks = random_tweaks(rng, 3);
    ASSERT_LE(tweaks.size(), 3u);
    for (const ParamTweak& t : tweaks) {
      ASSERT_GE(t.factor, 0.85);
      ASSERT_LE(t.factor, 1.18);
      const auto& fields = tweakable_fields();
      ASSERT_NE(std::find(fields.begin(), fields.end(), t.field),
                fields.end());
    }
    (void)apply_tweaks(tweaks);  // must not throw for generated tweaks
  }
  EXPECT_THROW(apply_tweaks({{"vdd", 1.1}}), pf::Error)
      << "supplies must not be tweakable";
}

TEST(FuzzAlgebra, GeneratedCasesAreRunnableExperiments) {
  const uint64_t seed = fuzz_seed();
  const int iters = fuzz_iters(500);
  SCOPED_TRACE(fuzz_banner("algebra.cases", seed, iters));
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const FuzzCase c = random_case(rng);
    ASSERT_TRUE(sos_well_formed(c.sos)) << c.describe();
    ASSERT_FALSE(c.r_axis.empty());
    ASSERT_FALSE(c.u_axis.empty());
    ASSERT_TRUE(std::is_sorted(c.r_axis.begin(), c.r_axis.end()));
    ASSERT_TRUE(std::is_sorted(c.u_axis.begin(), c.u_axis.end()));
    double lo = 0.0, hi = 0.0;
    site_r_range(c.site, &lo, &hi);
    ASSERT_GE(c.r_axis.front(), lo * 0.999);
    ASSERT_LE(c.r_axis.back(), hi * 1.001);
    // The repro recipe carries the seed and a runnable command.
    const std::string repro = c.repro(seed);
    ASSERT_NE(repro.find("PF_TEST_SEED"), std::string::npos);
    ASSERT_NE(repro.find("defect_explorer"), std::string::npos);
  }
}

TEST(FuzzAlgebra, SeedAndItersEnvOverrides) {
  // Save the invoker's settings; this test owns the env only briefly.
  const char* old_seed = std::getenv("PF_TEST_SEED");
  const std::string saved_seed = old_seed ? old_seed : "";
  const char* old_iters = std::getenv("PF_FUZZ_ITERS");
  const std::string saved_iters = old_iters ? old_iters : "";

  ASSERT_EQ(setenv("PF_TEST_SEED", "12345", 1), 0);
  ASSERT_EQ(setenv("PF_FUZZ_ITERS", "7", 1), 0);
  EXPECT_EQ(fuzz_seed(), 12345u);
  EXPECT_EQ(fuzz_iters(100), 7);
  ASSERT_EQ(setenv("PF_TEST_SEED", "0xdead", 1), 0);
  EXPECT_EQ(fuzz_seed(), 0xdeadu);
  ASSERT_EQ(setenv("PF_TEST_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(fuzz_seed(), kDefaultFuzzSeed);
  ASSERT_EQ(setenv("PF_FUZZ_ITERS", "-3", 1), 0);
  EXPECT_EQ(fuzz_iters(100), 100);
  unsetenv("PF_TEST_SEED");
  unsetenv("PF_FUZZ_ITERS");
  EXPECT_EQ(fuzz_seed(), kDefaultFuzzSeed);
  EXPECT_EQ(fuzz_iters(42), 42);

  if (!saved_seed.empty()) setenv("PF_TEST_SEED", saved_seed.c_str(), 1);
  if (!saved_iters.empty()) setenv("PF_FUZZ_ITERS", saved_iters.c_str(), 1);
}

}  // namespace
}  // namespace pf::testing
