// Kill-and-resume, end to end on the real binary: spawn a 4-thread
// defect_explorer sweep with a journal, kill it mid-run (SIGINT for the
// cooperative drain path, SIGKILL for the crash path), then resume and
// require the recovered region map bit-identical to an uninterrupted serial
// run. This is the acceptance test of the crash-safe-journal + graceful-
// shutdown work: whatever way the process dies, the journal never lies.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/region.hpp"
#include "pf/util/cancellation.hpp"

namespace pf::analysis {
namespace {

using dram::Defect;
using dram::DramParams;
using dram::OpenSite;
using faults::Sos;

// Mirrors `defect_explorer 4 "1r1" 13 12 <prefix>`: Open 4 has exactly one
// floating line, so the run writes one journal at <prefix>-line0.csv.
constexpr int kRPoints = 13;
constexpr int kUPoints = 12;

SweepSpec explorer_spec() {
  SweepSpec spec;
  spec.params = DramParams{};
  spec.defect = Defect::open(OpenSite::kBitLineOuter, 1e6);
  spec.sos = Sos::parse("1r1");
  spec.r_axis = default_r_axis(kRPoints);
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  spec.u_axis = pf::linspace(lines[0].min_v, lines[0].max_v, kUPoints);
  return spec;
}

/// Spawn defect_explorer with stdout discarded; stderr goes to `stderr_path`
/// when given (so tests can observe shutdown-path progress), else discarded.
/// `extra_flag` prepends one extra option. Returns the pid.
pid_t spawn_explorer(const std::string& journal_prefix,
                     const char* extra_flag = nullptr,
                     const std::string& stderr_path = "") {
  const pid_t pid = fork();
  if (pid == 0) {
    const int devnull = open("/dev/null", O_WRONLY);
    dup2(devnull, STDOUT_FILENO);
    if (stderr_path.empty()) {
      dup2(devnull, STDERR_FILENO);
    } else {
      const int err = open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                           0644);
      dup2(err, STDERR_FILENO);
    }
    if (extra_flag != nullptr)
      execl(PF_DEFECT_EXPLORER_PATH, PF_DEFECT_EXPLORER_PATH, extra_flag,
            "--threads", "4", "4", "1r1", "13", "12", journal_prefix.c_str(),
            static_cast<char*>(nullptr));
    else
      execl(PF_DEFECT_EXPLORER_PATH, PF_DEFECT_EXPLORER_PATH, "--threads", "4",
            "4", "1r1", "13", "12", journal_prefix.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

size_t journal_data_rows(const std::string& path) {
  std::ifstream in(path);
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '#' && line.rfind("iy,", 0) != 0) ++rows;
  return rows;
}

/// Block until the journal holds at least `rows` data rows (the child is
/// mid-sweep) or the deadline passes.
bool wait_for_rows(const std::string& path, size_t rows, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (journal_data_rows(path) >= rows) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

int wait_status(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

void kill_resume_roundtrip(const char* tag, int signal_to_send) {
  const std::string prefix = ::testing::TempDir() + tag;
  const std::string journal = prefix + "-line0.csv";
  std::remove(journal.c_str());

  // Phase 1: start the 4-thread sweep and kill it once it is demonstrably
  // mid-run (journal exists, a few points are committed, most are not).
  const pid_t pid = spawn_explorer(prefix);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_rows(journal, 3, 30.0))
      << "child never reached 3 journaled points";
  ASSERT_EQ(kill(pid, signal_to_send), 0);
  const int status = wait_status(pid);
  if (signal_to_send == SIGKILL) {
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  } else {
    // Cooperative path: drained, flushed, distinct resumable exit status.
    ASSERT_TRUE(WIFEXITED(status)) << "status " << status;
    EXPECT_EQ(WEXITSTATUS(status), pf::kExitInterrupted);
  }

  // The interrupted journal must load: valid prefix recovered, no clean-end
  // trailer, at most one torn row (SIGKILL can land mid-append).
  const SweepSpec spec = explorer_spec();
  const SweepJournal::LoadResult loaded = SweepJournal::load(journal, spec);
  EXPECT_GE(loaded.entries.size(), 3u);
  EXPECT_FALSE(loaded.clean_end);
  EXPECT_FALSE(loaded.quarantined);
  EXPECT_LE(loaded.dropped, 1u);

  // Phase 2: resume with the SAME command line; the child must finish and
  // exit cleanly without re-running the journaled points.
  const pid_t resumed = spawn_explorer(prefix);
  ASSERT_GT(resumed, 0);
  const int resumed_status = wait_status(resumed);
  ASSERT_TRUE(WIFEXITED(resumed_status));
  EXPECT_EQ(WEXITSTATUS(resumed_status), 0);

  // Phase 3: the resumed journal reconstructs a map bit-identical to an
  // uninterrupted serial in-process run of the same sweep.
  const SweepJournal::LoadResult final_load = SweepJournal::load(journal, spec);
  EXPECT_TRUE(final_load.clean_end);
  EXPECT_EQ(final_load.entries.size(),
            static_cast<size_t>(kRPoints * kUPoints));
  ExecutionPolicy from_journal;
  from_journal.journal_path = journal;
  const RegionMap resumed_map = sweep_region(spec, from_journal);
  EXPECT_EQ(resumed_map.solve_stats().attempted, 0u)
      << "resume must not re-simulate completed points";
  const RegionMap serial = sweep_region(spec);
  EXPECT_EQ(resumed_map.to_csv(), serial.to_csv());
  std::remove(journal.c_str());
}

/// Block until the file at `path` contains `needle` or the deadline passes.
bool wait_for_text(const std::string& path, const std::string& needle,
                   double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    const std::string text((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    if (text.find(needle) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(InterruptResume, SecondSignalForcesExitWithDistinctCode) {
  // Escalating shutdown: the first SIGINT starts the cooperative drain; if
  // the drain wedges (here: the --wedge-on-interrupt test hook parks the
  // process after draining), a second SIGINT must force an immediate exit
  // with pf::kExitForced — not hang, and not look like a clean interrupt.
  const std::string prefix = ::testing::TempDir() + "escalate_sweep";
  const std::string journal = prefix + "-line0.csv";
  const std::string errlog = prefix + ".stderr";
  std::remove(journal.c_str());
  std::remove(errlog.c_str());

  const pid_t pid = spawn_explorer(prefix, "--wedge-on-interrupt", errlog);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_rows(journal, 3, 30.0))
      << "child never reached 3 journaled points";
  ASSERT_EQ(kill(pid, SIGINT), 0);
  // Wait for the drain to finish and the process to park ("wedged" on
  // stderr) — only then is the second signal unambiguously an escalation.
  ASSERT_TRUE(wait_for_text(errlog, "wedged", 30.0))
      << "child never reached the wedge after the first SIGINT";
  ASSERT_EQ(kill(pid, SIGINT), 0);
  const int status = wait_status(pid);
  ASSERT_TRUE(WIFEXITED(status)) << "status " << status;
  EXPECT_EQ(WEXITSTATUS(status), pf::kExitForced);

  // Everything drained before the forced exit is on disk: the journal loads
  // as an interrupted-but-resumable tail, exactly like the SIGINT-only path.
  const SweepJournal::LoadResult loaded =
      SweepJournal::load(journal, explorer_spec());
  EXPECT_GE(loaded.entries.size(), 3u);
  EXPECT_FALSE(loaded.clean_end);
  EXPECT_FALSE(loaded.quarantined);
  std::remove(journal.c_str());
  std::remove(errlog.c_str());
}

TEST(InterruptResume, SigintDrainsFlushesAndResumesBitIdentical) {
  kill_resume_roundtrip("sigint_sweep", SIGINT);
}

TEST(InterruptResume, SigkillCrashTailRecoversAndResumesBitIdentical) {
  kill_resume_roundtrip("sigkill_sweep", SIGKILL);
}

}  // namespace
}  // namespace pf::analysis
