// Cross-module tooling: deck export of the real DRAM column, region-map CSV
// dumps, engine edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pf/analysis/region.hpp"
#include "pf/dram/column.hpp"
#include "pf/spice/deck.hpp"
#include "pf/spice/trace.hpp"

namespace pf {
namespace {

TEST(Tooling, DramColumnDeckRoundTrips) {
  // The full column netlist serializes to a deck and parses back into an
  // equivalent circuit (same element counts, identical re-serialization).
  dram::DramColumn column(dram::DramParams{},
                          dram::Defect::open(dram::OpenSite::kCell, 150e3));
  const std::string deck = spice::write_deck(column.netlist());
  EXPECT_NE(deck.find("rdef_cell"), std::string::npos);
  EXPECT_NE(deck.find("150k"), std::string::npos);
  EXPECT_NE(deck.find(".rail vdd 3.3"), std::string::npos);
  const spice::Netlist reparsed = spice::parse_deck(deck);
  EXPECT_EQ(reparsed.mosfets().size(), column.netlist().mosfets().size());
  EXPECT_EQ(reparsed.capacitors().size(),
            column.netlist().capacitors().size());
  EXPECT_EQ(spice::write_deck(reparsed), deck);
}

TEST(Tooling, DramColumnDeckSimulates) {
  // The re-parsed column deck is a live circuit: precharge it via its rails
  // and watch the bit line approach VBLEQ.
  dram::DramColumn column(dram::DramParams{}, dram::Defect::none());
  const spice::Netlist net =
      spice::parse_deck(spice::write_deck(column.netlist()));
  spice::Simulator sim(net);
  sim.set_rail(net.find_node("pre").value(), 4.5);
  sim.run_for(5e-9);
  EXPECT_NEAR(sim.node_voltage(net.find_node("bt1").value()), 1.65, 0.05);
}

TEST(Tooling, RegionMapCsvHasOneRowPerGridPoint) {
  analysis::SweepSpec spec;
  spec.params = dram::DramParams{};
  spec.defect = dram::Defect::open(dram::OpenSite::kBitLineOuter, 1e6);
  spec.sos = faults::Sos::parse("1r1");
  spec.r_axis = pf::logspace(1e6, 10e6, 2);
  spec.u_axis = pf::linspace(0.0, 3.3, 3);
  const auto map = analysis::sweep_region(spec);
  const std::string csv = map.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 2 * 3);
  EXPECT_EQ(csv.substr(0, 12), "r_def,u,ffm\n");
  EXPECT_NE(csv.find("RDF1"), std::string::npos);
}

TEST(Tooling, RelaxedCeilingMatchesTightIntegrationForSlowDecay) {
  // run_for_with_ceiling must agree with normal integration on a smooth
  // exponential (BE is L-stable; only resolution differs).
  auto build = [] {
    spice::Netlist n;
    const auto x = n.node("x");
    n.add_capacitor("c", x, spice::kGround, 30e-15);
    n.add_resistor("r", x, spice::kGround, 10e9);  // tau = 0.3 ms
    return n;
  };
  const spice::Netlist n1 = build(), n2 = build();
  spice::Simulator tight(n1), relaxed(n2);
  tight.set_node_voltage(1, 2.0);
  relaxed.set_node_voltage(1, 2.0);
  tight.run_for_with_ceiling(0.3e-3, 0.3e-3 / 2000);
  relaxed.run_for_with_ceiling(0.3e-3, 0.3e-3 / 50);
  EXPECT_NEAR(tight.node_voltage(1), relaxed.node_voltage(1), 0.02);
  EXPECT_NEAR(tight.node_voltage(1), 2.0 * std::exp(-1.0), 0.02);
}

TEST(Tooling, CeilingRestoredAfterRelaxedRun) {
  spice::Netlist n;
  const auto x = n.node("x");
  n.add_capacitor("c", x, spice::kGround, 30e-15);
  n.add_resistor("r", x, spice::kGround, 1e6);
  spice::Simulator sim(n);
  const double dt_max_before = sim.options().dt_max;
  sim.run_for_with_ceiling(1e-6, 1e-7);
  EXPECT_DOUBLE_EQ(sim.options().dt_max, dt_max_before);
}

TEST(Tooling, TraceOnDramColumnReadShowsSenseSplit) {
  dram::DramParams params;
  dram::DramColumn column(params, dram::Defect::none());
  column.write(0, 1);
  std::vector<double> bt3;
  column.set_trace([&](double, const dram::DramColumn& col) {
    bt3.push_back(col.node_voltage("bt3"));
  });
  EXPECT_EQ(column.read(0), 1);
  column.set_trace(nullptr);
  ASSERT_FALSE(bt3.empty());
  // During the read, BT3 must have swung from the precharge level to the
  // full restored rail.
  EXPECT_GT(*std::max_element(bt3.begin(), bt3.end()), 3.0);
}

}  // namespace
}  // namespace pf
