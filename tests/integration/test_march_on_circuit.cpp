// End-to-end integration: march tests executed on the electrical DRAM
// column (4 addresses) with injected defects. This is the defect-level
// verification of the paper's March PF claim — the behavioral memsim layer
// models single FPs, but a real defect bundles several partial faults, and
// detection happens through whichever manifests first.
#include <gtest/gtest.h>

#include "pf/dram/column.hpp"
#include "pf/march/library.hpp"
#include "pf/march/test.hpp"

namespace pf {
namespace {

using dram::Defect;
using dram::DramColumn;
using dram::DramParams;
using dram::OpenSite;
using march::MarchResult;
using march::run_march;

MarchResult run_on_circuit(const march::MarchTest& test, const Defect& defect) {
  DramColumn column(DramParams{}, defect);
  return run_march(test, column, DramColumn::kNumCells);
}

TEST(MarchOnCircuit, FaultFreeColumnPassesAllTests) {
  DramParams params;
  DramColumn column(params, Defect::none());
  for (const auto& test : march::standard_tests()) {
    column.power_up();
    EXPECT_FALSE(run_march(test, column, DramColumn::kNumCells).detected)
        << test.name;
  }
}

TEST(MarchOnCircuit, MarchPfDetectsBitLineOpen) {
  // Open 4 with a large R_def: the partial RDF1 defect. March PF's first
  // read element starts right after element 1 left the true bit line low
  // (the last cell written sits on the complement line).
  const auto result =
      run_on_circuit(march::march_pf(), Defect::open(OpenSite::kBitLineOuter, 10e6));
  EXPECT_TRUE(result.detected);
}

TEST(MarchOnCircuit, NaiveTestMissesBitLineOpen) {
  // The paper's introduction: {m(w1,r1)} preconditions the floating BL with
  // its own w1, so the defect escapes.
  const auto result =
      run_on_circuit(march::naive_w1r1(),
                     Defect::open(OpenSite::kBitLineOuter, 10e6));
  EXPECT_FALSE(result.detected);
}

TEST(MarchOnCircuit, MarchPfDetectsCellOpenAcrossDecade) {
  for (double r : {200e3, 400e3, 1e6, 10e6}) {
    const auto result =
        run_on_circuit(march::march_pf(), Defect::open(OpenSite::kCell, r));
    EXPECT_TRUE(result.detected) << "R_def = " << r;
  }
}

TEST(MarchOnCircuit, MarchPfDetectsIoPathOpen) {
  const auto result =
      run_on_circuit(march::march_pf(), Defect::open(OpenSite::kIoPath, 100e6));
  EXPECT_TRUE(result.detected);
}

TEST(MarchOnCircuit, NaiveTestMissesIoPathOpen) {
  // With the IO open, reads return the stale buffer, which the preceding
  // write of the same cell just set to the expected value.
  const auto result =
      run_on_circuit(march::naive_w1r1(), Defect::open(OpenSite::kIoPath, 100e6));
  EXPECT_FALSE(result.detected);
}

TEST(MarchOnCircuit, MarchPfDetectsPrechargeAndMidBitLineOpens) {
  EXPECT_TRUE(run_on_circuit(march::march_pf(),
                             Defect::open(OpenSite::kPrecharge, 10e6))
                  .detected);
  EXPECT_TRUE(run_on_circuit(march::march_pf(),
                             Defect::open(OpenSite::kBitLineMid, 10e6))
                  .detected);
}

TEST(MarchOnCircuit, HardShortDetectedByEveryTest) {
  for (const auto& test : march::standard_tests()) {
    EXPECT_TRUE(run_on_circuit(test, Defect::short_to_ground(100.0)).detected)
        << test.name;
  }
}

TEST(MarchOnCircuit, HardBridgeDetected) {
  EXPECT_TRUE(run_on_circuit(march::march_pf(), Defect::bridge(100.0)).detected);
}

TEST(MarchOnCircuit, SmallOpensEscapeEverything) {
  // A 1 kOhm open is electrically benign; no test should flag it.
  for (const auto& test : march::standard_tests()) {
    EXPECT_FALSE(
        run_on_circuit(test, Defect::open(OpenSite::kBitLineOuter, 1e3))
            .detected)
        << test.name;
  }
}

}  // namespace
}  // namespace pf
