// Kill-and-resume on the real pf_campaign binary (the campaign analog of
// test_interrupt_resume): run a throttled multi-job campaign, kill it
// mid-campaign — SIGKILL for the crash path, SIGINT for the cooperative
// drain (exit 75) — then rerun the same command and require the final
// report byte-identical to an uninterrupted control run.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "pf/util/cancellation.hpp"

namespace {

/// Four distinct throttled jobs (20 ms x 16 points each widens the kill
/// window) plus a duplicate of the first for a cross-job dedup hit.
const char* kSpecJson = R"({"name":"killtest","jobs":[
  {"id":"j1","job":{"open_site":4,"sos":"1r1","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j2","job":{"open_site":4,"sos":"0w0","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j3","job":{"open_site":4,"sos":"0r0","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j4","job":{"open_site":4,"sos":"1w1","r_points":4,"u_points":4,"throttle_ms":20}},
  {"id":"j1-again","deps":["j1"],"job":{"open_site":4,"sos":"1r1","r_points":4,"u_points":4,"throttle_ms":20}}
]})";

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_spec(const std::string& dir) {
  const std::string path = dir + "/spec.json";
  std::ofstream out(path, std::ios::trunc);
  out << kSpecJson;
  return path;
}

pid_t spawn_campaign(const std::string& spec, const std::string& dir,
                     const std::string& report_path) {
  const pid_t pid = fork();
  if (pid == 0) {
    setpgid(0, 0);  // own process group: signals hit only the child
    const int devnull = open("/dev/null", O_WRONLY);
    dup2(devnull, STDOUT_FILENO);
    dup2(devnull, STDERR_FILENO);
    const std::string store = dir + "/store";
    const std::string journal = dir + "/journal.csv";
    execl(PF_CAMPAIGN_PATH, PF_CAMPAIGN_PATH, "--spec", spec.c_str(),
          "--store", store.c_str(), "--journal", journal.c_str(), "--report",
          report_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

size_t count_done_records(const std::string& journal) {
  std::ifstream in(journal);
  size_t done = 0;
  std::string line;
  while (std::getline(in, line))
    if (line.find(",DONE,") != std::string::npos) ++done;
  return done;
}

/// Block until the campaign journal records at least `n` DONE jobs (the
/// child is demonstrably mid-campaign) or the deadline passes.
bool wait_for_done_jobs(const std::string& journal, size_t n,
                        double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (count_done_records(journal) >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

int wait_status(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string control_report() {
  static std::string report = [] {
    const std::string dir = fresh_dir("campaign_control");
    const std::string spec = write_spec(dir);
    const pid_t pid = spawn_campaign(spec, dir, dir + "/report.txt");
    const int status = wait_status(pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "uninterrupted control run must succeed";
    return read_file(dir + "/report.txt");
  }();
  return report;
}

void kill_resume_roundtrip(const char* tag, int signal_to_send) {
  const std::string control = control_report();
  ASSERT_FALSE(control.empty());

  const std::string dir = fresh_dir(tag);
  const std::string spec = write_spec(dir);
  const std::string journal = dir + "/journal.csv";
  const std::string report_path = dir + "/report.txt";

  // Phase 1: kill the campaign once at least one job is DONE and (by
  // throttle arithmetic) later jobs are still pending.
  const pid_t pid = spawn_campaign(spec, dir, report_path);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_done_jobs(journal, 1, 60.0))
      << "child never journaled a DONE job";
  ASSERT_EQ(kill(pid, signal_to_send), 0);
  const int status = wait_status(pid);
  if (signal_to_send == SIGKILL) {
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
  } else {
    // Cooperative drain: pf_campaign flushes and exits "interrupted,
    // resumable".
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), pf::kExitInterrupted);
  }
  ASSERT_FALSE(std::ifstream(report_path).is_open())
      << "a killed campaign must not have written its report";

  // Phase 2: rerun the same command; the journal restores the finished
  // jobs and the interrupted one re-runs from its sweep journal.
  const pid_t resume_pid = spawn_campaign(spec, dir, report_path);
  const int resume_status = wait_status(resume_pid);
  ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0);

  EXPECT_EQ(read_file(report_path), control)
      << "resumed campaign must report byte-identically to an "
         "uninterrupted run";
}

TEST(CampaignKillResume, Sigkill) { kill_resume_roundtrip("campaign_sigkill", SIGKILL); }

TEST(CampaignKillResume, Sigint) { kill_resume_roundtrip("campaign_sigint", SIGINT); }

}  // namespace
