// JobSpec validation/admission bounds and the crash-safe result cache:
// manifest-last commits, verify-on-read, quarantine of torn/corrupt
// entries, startup recovery, and the service-layer fault injections.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "pf/service/cache.hpp"
#include "pf/service/fault_injection.hpp"
#include "pf/service/job.hpp"
#include "pf/util/error.hpp"
#include "pf/util/sha256.hpp"

namespace fs = std::filesystem;

namespace pf::service {
namespace {

JobSpec tiny_job() {
  JobSpec job;
  job.defect_kind = "open";
  job.open_site = 4;
  job.r_points = 2;
  job.u_points = 2;
  return job;
}

std::string fresh_store(const std::string& name) {
  const std::string root = ::testing::TempDir() + name;
  fs::remove_all(root);
  return root;
}

TEST(JobSpec, JsonRoundTripIsExact) {
  JobSpec job = tiny_job();
  job.sos_text = "0w1r1";
  job.temperature_c = 85.0;
  job.threads = 4;
  job.deadline_seconds = 10.5;
  job.throttle_ms = 2.5;
  job.backend = "batched";
  job.adaptive = true;
  const JobSpec back = JobSpec::from_json(job.to_json());
  EXPECT_EQ(back.to_json().dump(), job.to_json().dump());
  EXPECT_EQ(back.cache_key(), job.cache_key());
  EXPECT_EQ(back.backend, "batched");
  EXPECT_TRUE(back.adaptive);
  // ...and the execution plan the workers see reflects the wire fields.
  const analysis::ExecutionPolicy policy = back.to_policy();
  EXPECT_EQ(policy.plan.backend, spice::SolverBackend::kBatched);
  EXPECT_TRUE(policy.plan.adaptive);
}

TEST(JobSpec, AdmissionRejectsOutOfBoundsRequests) {
  const auto parse = [](const std::string& text) {
    return JobSpec::from_json(Json::parse(text));
  };
  EXPECT_THROW(parse(R"({"defect_kind":"meteor"})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"r_points":1})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"r_points":65})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"r_points":60,"u_points":60})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"threads":64})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"deadline_seconds":7200})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"sos":"xyzzy"})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"open_site":11})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"floating_line_index":5})"), pf::ParseError);
  // Integer fields reject non-integral numbers: truncating {"open_site":
  // 2.7} would run a different job (and cache key) than the client wrote.
  EXPECT_THROW(parse(R"({"open_site":2.7})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"r_points":4.5})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"threads":1.5})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"max_attempts":0.5})"), pf::ParseError);
  // Shorts/bridges float no line — the paper's point — so there is
  // nothing to sweep and admission says so upfront.
  EXPECT_THROW(parse(R"({"defect_kind":"bridge"})"), pf::ParseError);
  EXPECT_THROW(parse("[1,2,3]"), pf::ParseError);
  // An unknown solver backend dies at the socket, not on a worker thread;
  // adaptive must be an actual boolean, not a truthy string.
  EXPECT_THROW(parse(R"({"backend":"simd"})"), pf::ParseError);
  EXPECT_THROW(parse(R"({"adaptive":"yes"})"), pf::ParseError);
}

TEST(JobSpec, CacheKeyIsSolverBackendInvariant) {
  // Batched dense sweeps are bit-identical to scalar ones (the batched
  // engine's contract, gated in tests/analysis), so the backend is an
  // execution knob: two jobs differing only in backend/adaptive must share
  // one cache entry. Structural, not incidental — cache_key() fingerprints
  // to_sweep_spec(), which the backend fields never enter.
  const JobSpec scalar = tiny_job();
  JobSpec batched = scalar;
  batched.backend = "batched";
  EXPECT_EQ(scalar.cache_key(), batched.cache_key());
  JobSpec adaptive = batched;
  adaptive.adaptive = true;
  EXPECT_EQ(scalar.cache_key(), adaptive.cache_key());
}

TEST(JobSpec, CacheKeyTracksResultIdentityNotExecutionKnobs) {
  const JobSpec base = tiny_job();
  JobSpec threads = base;
  threads.threads = 8;  // bit-identical results: same cache entry
  EXPECT_EQ(base.cache_key(), threads.cache_key());
  JobSpec throttled = base;
  throttled.throttle_ms = 5;
  EXPECT_EQ(base.cache_key(), throttled.cache_key());

  JobSpec hot = base;
  hot.temperature_c = 85.0;  // changes the result: different entry
  EXPECT_NE(base.cache_key(), hot.cache_key());
  JobSpec other_site = base;
  other_site.open_site = 6;
  EXPECT_NE(base.cache_key(), other_site.cache_key());
  JobSpec denser = base;
  denser.u_points = 3;
  EXPECT_NE(base.cache_key(), denser.cache_key());
}

TEST(ResultCache, CommitThenVerifiedHit) {
  ResultCache cache(fresh_store("cache_hit"));
  const JobSpec job = tiny_job();
  const std::string csv = "r_def,u,ffm\n1,0.5,none\n";
  Json stats;
  stats.set("solved", Json(4));
  const Json manifest = cache.commit(job, csv, stats);
  EXPECT_EQ(manifest.string_or("result_sha256", ""), pf::sha256_hex(csv));

  std::string got;
  Json got_manifest;
  ASSERT_TRUE(cache.get(job.cache_key(), &got, &got_manifest));
  EXPECT_EQ(got, csv);
  EXPECT_EQ(got_manifest.string_or("key", ""), key_hex(job.cache_key()));
  EXPECT_EQ(got_manifest.get("stats").number_or("solved", 0), 4);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().commits, 1u);
}

TEST(ResultCache, ManifestLessEntryIsQuarantinedNotServed) {
  const std::string root = fresh_store("cache_torn");
  ResultCache cache(root);
  const JobSpec job = tiny_job();
  // Fake a crash between result write and manifest write.
  const std::string dir = root + "/cache/" + key_hex(job.cache_key());
  fs::create_directories(dir);
  std::ofstream(dir + "/result.csv") << "half a resu";

  std::string got;
  EXPECT_FALSE(cache.get(job.cache_key(), &got, nullptr));
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(dir));
  EXPECT_TRUE(fs::exists(dir + ".corrupt"));  // evidence preserved
}

TEST(ResultCache, TamperedResultFailsShaVerificationAndQuarantines) {
  const std::string root = fresh_store("cache_rot");
  ResultCache cache(root);
  const JobSpec job = tiny_job();
  cache.commit(job, "r_def,u,ffm\n1,0.5,none\n", Json());
  const std::string dir = root + "/cache/" + key_hex(job.cache_key());
  std::ofstream(dir + "/result.csv", std::ios::trunc) << "bit rot!";

  EXPECT_FALSE(cache.get(job.cache_key(), nullptr, nullptr));
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir + ".corrupt"));
}

TEST(ResultCache, RecoverQuarantinesEveryInvalidEntryOnStartup) {
  const std::string root = fresh_store("cache_recover");
  {
    ResultCache cache(root);
    cache.commit(tiny_job(), "good\n", Json());
    // Two crashed commits from a previous life.
    fs::create_directories(root + "/cache/00000000deadbeef");
    std::ofstream(root + "/cache/00000000deadbeef/result.csv") << "torn";
    fs::create_directories(root + "/cache/00000000cafebabe");
  }
  ResultCache reopened(root);
  EXPECT_EQ(reopened.recover(), 2u);
  EXPECT_TRUE(fs::exists(root + "/cache/00000000deadbeef.corrupt"));
  std::string got;
  EXPECT_TRUE(reopened.get(tiny_job().cache_key(), &got, nullptr));
  EXPECT_EQ(got, "good\n");
  EXPECT_EQ(reopened.recover(), 0u);  // idempotent; valid entry untouched
}

TEST(ResultCache, InjectedTornWriteLeavesNoServableEntry) {
  const std::string root = fresh_store("cache_inject_torn");
  ResultCache cache(root);
  const JobSpec job = tiny_job();
  testing::ScopedServiceFault fault(testing::kTornCacheWrite);
  EXPECT_THROW(cache.commit(job, "full result bytes\n", Json()), pf::Error);
  EXPECT_EQ(testing::faults_fired(), 1u);

  // The torn entry exists on disk but must never be served.
  EXPECT_FALSE(cache.get(job.cache_key(), nullptr, nullptr));
  EXPECT_EQ(cache.stats().quarantined, 1u);

  // Injection fires once; the retried commit lands and verifies.
  cache.commit(job, "full result bytes\n", Json());
  std::string got;
  EXPECT_TRUE(cache.get(job.cache_key(), &got, nullptr));
  EXPECT_EQ(got, "full result bytes\n");
}

TEST(ResultCache, InjectedManifestFailureCommitsNothing) {
  const std::string root = fresh_store("cache_inject_manifest");
  ResultCache cache(root);
  const JobSpec job = tiny_job();
  testing::ScopedServiceFault fault(testing::kManifestWriteFail);
  EXPECT_THROW(cache.commit(job, "bytes\n", Json()), pf::Error);
  EXPECT_EQ(cache.stats().commits, 0u);
  EXPECT_FALSE(
      fs::exists(root + "/cache/" + key_hex(job.cache_key()) + "/manifest.json"));
}

TEST(ResultCache, JournalPathLifecycle) {
  const std::string root = fresh_store("cache_journal");
  ResultCache cache(root);
  const uint64_t key = tiny_job().cache_key();
  const std::string path = cache.journal_path(key);
  EXPECT_NE(path.find(key_hex(key)), std::string::npos);
  std::ofstream(path) << "# journal\n";
  EXPECT_TRUE(fs::exists(path));
  cache.discard_journal(key);
  EXPECT_FALSE(fs::exists(path));
  cache.discard_journal(key);  // idempotent on a missing journal
}

}  // namespace
}  // namespace pf::service
