// The service's JSON codec: round-trips, error offsets, deterministic
// serialization (manifest bytes must be reproducible), typed accessors.
#include <gtest/gtest.h>

#include "pf/service/json.hpp"
#include "pf/util/error.hpp"

namespace pf::service {
namespace {

TEST(Json, ParseDumpRoundTripsNestedDocument) {
  const std::string text =
      R"({"a":[1,2.5,true,null,"s"],"b":{"nested":-3},"c":""})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, ObjectKeysSerializeSorted) {
  // Insertion order must not leak into the bytes: the manifest SHA relies
  // on dump() being a pure function of the VALUE.
  Json a;
  a.set("zeta", Json(1));
  a.set("alpha", Json(2));
  Json b;
  b.set("alpha", Json(2));
  b.set("zeta", Json(1));
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.dump(), R"({"alpha":2,"zeta":1})");
}

TEST(Json, IntegersPrintWithoutExponentOrFraction) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(size_t(9000)).dump(), "9000");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.25).dump(), "0.25");
  const double reparsed =
      Json::parse(Json(0.1).dump()).as_number();
  EXPECT_EQ(reparsed, 0.1);  // %.17g round-trips exactly
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string raw = "line\nquote\"back\\slash\ttab";
  EXPECT_EQ(Json::parse(Json(raw).dump()).as_string(), raw);
  EXPECT_EQ(Json::parse(R"("Aé€")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");  // BMP \u escapes decode to UTF-8
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  try {
    Json::parse(R"({"a":1} trailing)");
    FAIL() << "expected ParseError";
  } catch (const pf::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte 8"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Json::parse(""), pf::ParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), pf::ParseError);
  EXPECT_THROW(Json::parse("\"raw\ncontrol\""), pf::ParseError);
  EXPECT_THROW(Json::parse("[1,2"), pf::ParseError);
  EXPECT_THROW(Json::parse("tru"), pf::ParseError);
}

TEST(Json, TypedFieldAccessors) {
  const Json obj = Json::parse(R"({"n":3,"s":"x","b":true})");
  EXPECT_EQ(obj.number_or("n", -1), 3);
  EXPECT_EQ(obj.number_or("missing", -1), -1);
  EXPECT_EQ(obj.string_or("s", "d"), "x");
  EXPECT_EQ(obj.string_or("missing", "d"), "d");
  EXPECT_TRUE(obj.bool_or("b", false));
  // A PRESENT key of the wrong type must not silently fall back.
  EXPECT_THROW(obj.number_or("s", -1), pf::Error);
  EXPECT_THROW(obj.string_or("n", "d"), pf::Error);
  EXPECT_TRUE(obj.get("missing").is_null());
  EXPECT_FALSE(obj.has("missing"));
  EXPECT_TRUE(obj.has("n"));
}

}  // namespace
}  // namespace pf::service
