// JobSpec r_min/r_max: the R-axis range override Table-1-as-campaign needs
// (per-site analyzed ranges). Wire round trip, admission validation, axis
// materialization and cache-key distinctness.
#include <gtest/gtest.h>

#include "pf/service/job.hpp"
#include "pf/util/error.hpp"

namespace pf::service {
namespace {

JobSpec ranged_job() {
  JobSpec job;
  job.defect_kind = "open";
  job.open_site = 4;
  job.r_points = 5;
  job.u_points = 5;
  job.r_min = 1e5;
  job.r_max = 1e9;
  return job;
}

TEST(JobAxis, RangeRoundTripsThroughTheWire) {
  const JobSpec job = ranged_job();
  const JobSpec back = JobSpec::from_json(job.to_json());
  EXPECT_EQ(back.r_min, 1e5);
  EXPECT_EQ(back.r_max, 1e9);
  EXPECT_EQ(back.cache_key(), job.cache_key());
}

TEST(JobAxis, DefaultRangeKeepsDefaultAxis) {
  JobSpec job = ranged_job();
  job.r_min = 0.0;
  job.r_max = 0.0;
  const analysis::SweepSpec spec = job.to_sweep_spec();
  const std::vector<double> expected = analysis::default_r_axis(5);
  ASSERT_EQ(spec.r_axis.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(spec.r_axis[i], expected[i]) << i;
}

TEST(JobAxis, ExplicitRangeProducesLogspacedAxis) {
  const analysis::SweepSpec spec = ranged_job().to_sweep_spec();
  ASSERT_EQ(spec.r_axis.size(), 5u);
  EXPECT_DOUBLE_EQ(spec.r_axis.front(), 1e5);
  EXPECT_DOUBLE_EQ(spec.r_axis.back(), 1e9);
  EXPECT_NEAR(spec.r_axis[1] / spec.r_axis[0], 10.0, 1e-9)
      << "the override axis must be log-spaced";
}

TEST(JobAxis, HalfSetOrInvertedRangeIsRejectedAtAdmission) {
  JobSpec only_min = ranged_job();
  only_min.r_max = 0.0;
  EXPECT_THROW(JobSpec::from_json(only_min.to_json()), pf::ParseError);

  JobSpec only_max = ranged_job();
  only_max.r_min = 0.0;
  EXPECT_THROW(JobSpec::from_json(only_max.to_json()), pf::ParseError);

  JobSpec inverted = ranged_job();
  inverted.r_min = 1e9;
  inverted.r_max = 1e5;
  EXPECT_THROW(JobSpec::from_json(inverted.to_json()), pf::ParseError);
}

TEST(JobAxis, RangeIsPartOfTheCacheKey) {
  const JobSpec ranged = ranged_job();
  JobSpec wider = ranged;
  wider.r_max = 1e10;
  JobSpec defaulted = ranged;
  defaulted.r_min = 0.0;
  defaulted.r_max = 0.0;
  EXPECT_NE(ranged.cache_key(), wider.cache_key());
  EXPECT_NE(ranged.cache_key(), defaulted.cache_key());

  // Execution knobs still do not split the cache.
  JobSpec threaded = ranged;
  threaded.threads = 8;
  EXPECT_EQ(ranged.cache_key(), threaded.cache_key());
}

}  // namespace
}  // namespace pf::service
