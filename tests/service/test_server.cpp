// The sweep service end to end, in process over real Unix sockets:
// admission control (invalid, queue-full, duplicate), verified cache hits,
// dropped-client and torn-commit fault injections, deadline cancellation
// with journaled resume.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "pf/service/client.hpp"
#include "pf/service/fault_injection.hpp"
#include "pf/service/server.hpp"
#include "pf/util/cancellation.hpp"

namespace fs = std::filesystem;

namespace pf::service {
namespace {

JobSpec tiny_job() {
  JobSpec job;
  job.defect_kind = "open";
  job.open_site = 4;
  job.r_points = 2;
  job.u_points = 2;
  return job;
}

/// A started server on fresh temp socket/store, stopped on destruction.
struct TestServer {
  explicit TestServer(const std::string& name, size_t queue_limit = 4,
                      int workers = 2, double io_timeout_ms = -1) {
    config.socket_path = ::testing::TempDir() + name + ".sock";
    config.store_root = ::testing::TempDir() + name + ".store";
    config.queue_limit = queue_limit;
    config.job_workers = workers;
    config.retry_after_ms = 17;
    if (io_timeout_ms >= 0) config.io_timeout_ms = io_timeout_ms;
    fs::remove_all(config.store_root);
    fs::remove(config.socket_path);
    server = std::make_unique<SweepServer>(config, token);
    server->start();
  }
  ~TestServer() { server->stop(); }

  const std::string& socket() const { return config.socket_path; }

  ServerConfig config;
  pf::CancellationToken token;
  std::unique_ptr<SweepServer> server;
};

/// Bare socket to the server, bypassing the well-formed client codec.
int raw_connect(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Send arbitrary bytes, return the first reply line ('' on EOF/error).
std::string raw_request(const std::string& socket_path,
                        const std::string& bytes) {
  const int fd = raw_connect(socket_path);
  if (fd < 0) return "";
  (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  std::string reply;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
  ::close(fd);
  return reply;
}

bool wait_until(const std::function<bool()>& done, double seconds = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

TEST(SweepServer, ComputesThenServesVerifiedCacheHit) {
  TestServer ts("srv_hit");
  const SubmitOutcome first = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(first.status, SubmitStatus::kResult);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(first.committed);
  EXPECT_EQ(first.sha256.size(), 64u);
  EXPECT_GT(first.progress_events, 0u);
  EXPECT_NE(first.csv.find("r_def"), std::string::npos);

  const SubmitOutcome second = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(second.status, SubmitStatus::kResult);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.sha256, first.sha256);
  EXPECT_EQ(second.csv, first.csv);
  EXPECT_EQ(second.progress_events, 0u);  // hits stream no progress

  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cache_hits_served, 1u);
  EXPECT_EQ(ts.server->cache().stats().commits, 1u);

  const Json pong = request(ts.socket(), "ping");
  EXPECT_EQ(pong.string_or("event", ""), "pong");
  const Json remote = request(ts.socket(), "stats");
  EXPECT_EQ(remote.number_or("completed", 0), 1);
}

TEST(SweepServer, MalformedAndInvalidSubmitsAreRejected) {
  TestServer ts("srv_invalid");
  JobSpec bad = tiny_job();
  bad.sos_text = "not an sos";
  const SubmitOutcome outcome = submit_job(ts.socket(), bad);
  EXPECT_EQ(outcome.status, SubmitStatus::kInvalid);
  EXPECT_NE(outcome.error_message.find("sos"), std::string::npos);
  EXPECT_EQ(ts.server->stats().rejected_invalid, 1u);
}

TEST(SweepServer, MistypedRequestIsRejectedNotFatal) {
  TestServer ts("srv_mistyped");
  // {"cmd":123} is valid JSON, so it clears the parser; the typed accessor
  // throws on the accept thread, which must reject — an uncaught exception
  // there would std::terminate the whole daemon.
  const std::string reply = raw_request(ts.socket(), "{\"cmd\":123}\n");
  EXPECT_NE(reply.find("\"rejected\""), std::string::npos);
  EXPECT_NE(reply.find("invalid"), std::string::npos);
  // Mistyped fields inside the job payload get the same treatment.
  const std::string reply2 = raw_request(
      ts.socket(), "{\"cmd\":\"submit\",\"job\":{\"r_points\":\"lots\"}}\n");
  EXPECT_NE(reply2.find("invalid"), std::string::npos);
  EXPECT_EQ(ts.server->stats().rejected_invalid, 2u);
  // The daemon survived and still serves.
  EXPECT_EQ(request(ts.socket(), "ping").string_or("event", ""), "pong");
}

TEST(SweepServer, StalledClientIsDroppedAfterIoTimeout) {
  TestServer ts("srv_stall", /*queue_limit=*/4, /*workers=*/2,
                /*io_timeout_ms=*/150);
  const int fd = raw_connect(ts.socket());
  ASSERT_GE(fd, 0);  // connected, never sends its request line
  // The accept thread services connections synchronously: without
  // SO_RCVTIMEO the stalled client above would wedge admission (and
  // stop()) forever and this ping would never be answered.
  EXPECT_EQ(request(ts.socket(), "ping").string_or("event", ""), "pong");
  char c = 0;
  EXPECT_EQ(::recv(fd, &c, 1, 0), 0);  // server closed the stalled socket
  ::close(fd);
}

TEST(SweepServer, OverloadRejectsImmediatelyWithRetryHint) {
  // One worker, queue of one. A slow job occupies the worker, a second
  // fills the queue; the third must bounce instantly with the hint.
  TestServer ts("srv_full", /*queue_limit=*/1, /*workers=*/1);
  JobSpec slow = tiny_job();
  slow.throttle_ms = 150;  // 4 points -> ~600 ms on the worker

  std::thread bg([&] { (void)submit_job(ts.socket(), slow); });
  ASSERT_TRUE(wait_until([&] { return ts.server->stats().accepted >= 1; }));

  JobSpec queued = tiny_job();
  queued.open_site = 6;  // distinct key
  std::thread bg2([&] { (void)submit_job(ts.socket(), queued); });
  ASSERT_TRUE(wait_until([&] { return ts.server->stats().accepted >= 2; }));

  JobSpec rejected_job = tiny_job();
  rejected_job.open_site = 1;  // distinct key again
  const SubmitOutcome outcome = submit_job(ts.socket(), rejected_job);
  EXPECT_EQ(outcome.status, SubmitStatus::kRejectedBusy);
  EXPECT_EQ(outcome.retry_after_ms, 17);
  EXPECT_GE(ts.server->stats().rejected_queue_full, 1u);

  // A duplicate of the RUNNING job is also turned away (its journal is
  // single-writer), with the same backoff contract — but counted as dedup
  // backoff, not overload.
  const SubmitOutcome dup = submit_job(ts.socket(), slow);
  EXPECT_EQ(dup.status, SubmitStatus::kRejectedBusy);
  EXPECT_EQ(ts.server->stats().rejected_in_flight, 1u);
  EXPECT_EQ(ts.server->stats().rejected_queue_full, 1u);

  bg.join();
  bg2.join();
}

TEST(SweepServer, GoneClientStillWarmsTheCache) {
  TestServer ts("srv_gone");
  {
    testing::ScopedServiceFault fault(testing::kDropAfterAccept);
    const SubmitOutcome dropped = submit_job(ts.socket(), tiny_job());
    EXPECT_EQ(dropped.status, SubmitStatus::kDisconnected);
    // The job must finish and commit with nobody listening.
    ASSERT_TRUE(
        wait_until([&] { return ts.server->cache().stats().commits >= 1; }));
  }
  const SubmitOutcome retry = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(retry.status, SubmitStatus::kResult);
  EXPECT_TRUE(retry.cached);
}

TEST(SweepServer, MidStreamDisconnectKeepsComputing) {
  TestServer ts("srv_midstream");
  {
    testing::ScopedServiceFault fault(testing::kDropMidStream);
    const SubmitOutcome dropped = submit_job(ts.socket(), tiny_job());
    EXPECT_EQ(dropped.status, SubmitStatus::kDisconnected);
    EXPECT_LE(dropped.progress_events, 1u);
    ASSERT_TRUE(
        wait_until([&] { return ts.server->cache().stats().commits >= 1; }));
  }
  const SubmitOutcome retry = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(retry.status, SubmitStatus::kResult);
  EXPECT_TRUE(retry.cached);
}

TEST(SweepServer, TornCommitServesUncachedThenRecomputesIdentically) {
  TestServer ts("srv_torn");
  std::string clean_sha;
  {
    testing::ScopedServiceFault fault(testing::kTornCacheWrite);
    const SubmitOutcome torn = submit_job(ts.socket(), tiny_job());
    // The commit tore, but the client still gets the full result.
    ASSERT_EQ(torn.status, SubmitStatus::kResult);
    EXPECT_FALSE(torn.committed);
    clean_sha = torn.sha256;
  }
  // Resubmit: the torn entry is quarantined (never served) and the sweep
  // recomputes to the identical content hash.
  const SubmitOutcome recomputed = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(recomputed.status, SubmitStatus::kResult);
  EXPECT_FALSE(recomputed.cached);
  EXPECT_TRUE(recomputed.committed);
  EXPECT_EQ(recomputed.sha256, clean_sha);
  EXPECT_GE(ts.server->cache().stats().quarantined, 1u);

  const SubmitOutcome hit = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(hit.status, SubmitStatus::kResult);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.sha256, clean_sha);
}

TEST(SweepServer, ManifestWriteFailureServesResultUncached) {
  TestServer ts("srv_diskfull");
  {
    testing::ScopedServiceFault fault(testing::kManifestWriteFail);
    const SubmitOutcome outcome = submit_job(ts.socket(), tiny_job());
    ASSERT_EQ(outcome.status, SubmitStatus::kResult);
    EXPECT_FALSE(outcome.committed);
    EXPECT_EQ(ts.server->cache().stats().commits, 0u);
  }
  const SubmitOutcome retry = submit_job(ts.socket(), tiny_job());
  ASSERT_EQ(retry.status, SubmitStatus::kResult);
  EXPECT_TRUE(retry.committed);
}

TEST(SweepServer, DeadlineCancelsJobAndJournalEnablesResume) {
  TestServer ts("srv_deadline");
  JobSpec doomed = tiny_job();
  doomed.throttle_ms = 100;
  doomed.deadline_seconds = 0.05;  // expires mid-sweep
  const SubmitOutcome cancelled = submit_job(ts.socket(), doomed);
  ASSERT_EQ(cancelled.status, SubmitStatus::kError);
  EXPECT_NE(cancelled.error_message.find("cancelled"), std::string::npos);
  // The journal survives the cancellation for resume.
  const std::string journal =
      ts.server->cache().journal_path(doomed.cache_key());
  EXPECT_TRUE(fs::exists(journal));

  // Resubmitting without the deadline resumes the journal and commits; the
  // manifest's sweep stats prove points were restored, not recomputed.
  JobSpec revived = tiny_job();
  const SubmitOutcome done = submit_job(ts.socket(), revived);
  ASSERT_EQ(done.status, SubmitStatus::kResult);
  EXPECT_TRUE(done.committed);
  EXPECT_FALSE(fs::exists(journal));  // discarded after the commit
  std::string csv;
  Json manifest;
  ASSERT_TRUE(ts.server->cache().get(revived.cache_key(), &csv, &manifest));
  EXPECT_GT(manifest.get("stats").number_or("resumed", 0), 0);
}

TEST(SweepServer, StopDrainsAndSocketDisappears) {
  ServerConfig config;
  config.socket_path = ::testing::TempDir() + "srv_stop.sock";
  config.store_root = ::testing::TempDir() + "srv_stop.store";
  fs::remove_all(config.store_root);
  pf::CancellationToken token;
  SweepServer server(config, token);
  server.start();
  EXPECT_EQ(request(config.socket_path, "ping").string_or("event", ""),
            "pong");
  server.stop();
  EXPECT_FALSE(fs::exists(config.socket_path));
  // stop() is idempotent.
  server.stop();
  const SubmitOutcome after = submit_job(config.socket_path, tiny_job());
  EXPECT_EQ(after.status, SubmitStatus::kDisconnected);
}

}  // namespace
}  // namespace pf::service
