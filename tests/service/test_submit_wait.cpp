// submit_job_wait against a genuinely saturated queue: the wait loop
// absorbs busy rejections (honouring the server's retry_after hint with
// capped geometric backoff) until capacity frees, and gives up — returning
// the last busy outcome — when the budget is smaller than the drain time.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pf/service/client.hpp"
#include "pf/service/server.hpp"
#include "pf/util/cancellation.hpp"

namespace fs = std::filesystem;

namespace pf::service {
namespace {

JobSpec slow_job(const std::string& sos) {
  JobSpec job;
  job.defect_kind = "open";
  job.open_site = 4;
  job.sos_text = sos;
  job.r_points = 3;
  job.u_points = 3;
  job.throttle_ms = 100.0;  // ~0.9 s per job: a wide saturation window
  return job;
}

struct TestServer {
  explicit TestServer(const std::string& name) {
    config.socket_path = ::testing::TempDir() + name + ".sock";
    config.store_root = ::testing::TempDir() + name + ".store";
    config.queue_limit = 1;
    config.job_workers = 1;
    config.retry_after_ms = 17;
    fs::remove_all(config.store_root);
    fs::remove(config.socket_path);
    server = std::make_unique<SweepServer>(config, token);
    server->start();
  }
  ~TestServer() { server->stop(); }

  ServerConfig config;
  pf::CancellationToken token;
  std::unique_ptr<SweepServer> server;
};

/// Fill the single worker + the one queue slot with slow jobs, then block
/// until the server's stats confirm both were accepted and neither has
/// finished: one is on the worker, the other holds the only queue slot.
/// (A probe *submit* cannot observe this — an accepted probe would block
/// for the full job and then be served from the cache forever after.)
void saturate(TestServer& ts, std::vector<std::future<SubmitOutcome>>& slots) {
  // The saturators hand-roll a minimal retry (NOT submit_job_wait — the
  // harness must not depend on the code under test): with one CPU the
  // second submit can land before the worker has popped the first job
  // off the queue and be rejected queue_full.
  const auto submit_until_accepted = [&ts](const char* sos) {
    for (;;) {
      const SubmitOutcome outcome =
          submit_job(ts.config.socket_path, slow_job(sos));
      if (outcome.status != SubmitStatus::kRejectedBusy) return outcome;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  slots.push_back(std::async(std::launch::async,
                             [=] { return submit_until_accepted("1r1"); }));
  slots.push_back(std::async(std::launch::async,
                             [=] { return submit_until_accepted("0w0"); }));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const Json stats = request(ts.config.socket_path, "stats");
    if (stats.number_or("accepted", 0.0) >= 2.0 &&
        stats.number_or("completed", 0.0) == 0.0)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "server never reported a saturated queue";
}

TEST(SubmitJobWait, AbsorbsBusyRejectionsUntilCapacityFrees) {
  TestServer ts("wait_absorb");
  std::vector<std::future<SubmitOutcome>> slots;
  saturate(ts, slots);

  // A duplicate of the queued saturator: rejected busy (in_flight) for
  // that job's whole queued+running lifetime — a wide, load-tolerant
  // window — then the resubmit is served from the warmed cache. The
  // queue_full rejection takes the identical client-side path but its
  // window (queue actually full) is too narrow to assert under a loaded
  // ctest -j run.
  WaitPolicy wait;
  wait.max_wait_seconds = 60.0;
  wait.initial_backoff_ms = 10.0;
  const SubmitOutcome outcome =
      submit_job_wait(ts.config.socket_path, slow_job("0w0"), wait);
  ASSERT_EQ(outcome.status, SubmitStatus::kResult);
  EXPECT_GE(outcome.busy_retries, 1u)
      << "the saturated phase must have been absorbed, not skipped";
  EXPECT_EQ(outcome.sha256.size(), 64u);

  for (auto& slot : slots)
    EXPECT_EQ(slot.get().status, SubmitStatus::kResult);
}

TEST(SubmitJobWait, GivesUpWhenBudgetSmallerThanDrain) {
  TestServer ts("wait_giveup");
  std::vector<std::future<SubmitOutcome>> slots;
  saturate(ts, slots);

  WaitPolicy wait;
  wait.max_wait_seconds = 0.2;  // far below the ~2 s drain time
  wait.initial_backoff_ms = 10.0;
  const auto start = std::chrono::steady_clock::now();
  const SubmitOutcome outcome =
      submit_job_wait(ts.config.socket_path, slow_job("0w0"), wait);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(outcome.status, SubmitStatus::kRejectedBusy)
      << "an exhausted budget must surface the last busy outcome";
  EXPECT_LT(elapsed, 2.0) << "giving up must not overstay the budget";

  for (auto& slot : slots)
    EXPECT_EQ(slot.get().status, SubmitStatus::kResult);
}

TEST(SubmitJobWait, ImmediateResultNeedsNoRetries) {
  TestServer ts("wait_idle");
  const SubmitOutcome outcome =
      submit_job_wait(ts.config.socket_path, slow_job("1r1"));
  ASSERT_EQ(outcome.status, SubmitStatus::kResult);
  EXPECT_EQ(outcome.busy_retries, 0u);
}

}  // namespace
}  // namespace pf::service
