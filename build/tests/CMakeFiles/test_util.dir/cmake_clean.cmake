file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_error.cpp.o"
  "CMakeFiles/test_util.dir/util/test_error.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_grid.cpp.o"
  "CMakeFiles/test_util.dir/util/test_grid.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_interval.cpp.o"
  "CMakeFiles/test_util.dir/util/test_interval.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_strings.cpp.o"
  "CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_table_csv.cpp.o"
  "CMakeFiles/test_util.dir/util/test_table_csv.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
