
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_error.cpp" "tests/CMakeFiles/test_util.dir/util/test_error.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_error.cpp.o.d"
  "/root/repo/tests/util/test_grid.cpp" "tests/CMakeFiles/test_util.dir/util/test_grid.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_grid.cpp.o.d"
  "/root/repo/tests/util/test_interval.cpp" "tests/CMakeFiles/test_util.dir/util/test_interval.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_interval.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_table_csv.cpp" "tests/CMakeFiles/test_util.dir/util/test_table_csv.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table_csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
