file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_complementary_defect.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_complementary_defect.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_completion.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_completion.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_diagnosis.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_diagnosis.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_region_partial.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_region_partial.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_robust_sweep.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_robust_sweep.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_sos_runner.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_sos_runner.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_table1.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_table1.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
