
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_complementary_defect.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_complementary_defect.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_complementary_defect.cpp.o.d"
  "/root/repo/tests/analysis/test_completion.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_completion.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_completion.cpp.o.d"
  "/root/repo/tests/analysis/test_diagnosis.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_diagnosis.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_diagnosis.cpp.o.d"
  "/root/repo/tests/analysis/test_region_partial.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_region_partial.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_region_partial.cpp.o.d"
  "/root/repo/tests/analysis/test_robust_sweep.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_robust_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_robust_sweep.cpp.o.d"
  "/root/repo/tests/analysis/test_sos_runner.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_sos_runner.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_sos_runner.cpp.o.d"
  "/root/repo/tests/analysis/test_table1.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_table1.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pf_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
