file(REMOVE_RECURSE
  "CMakeFiles/test_spice.dir/spice/test_deck_trace.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_deck_trace.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_fault_injection.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_fault_injection.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_properties.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_properties.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_simulator_linear.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_simulator_linear.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_simulator_mos.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_simulator_mos.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_simulator_rails.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_simulator_rails.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o.d"
  "test_spice"
  "test_spice.pdb"
  "test_spice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
