
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_deck_trace.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_deck_trace.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_deck_trace.cpp.o.d"
  "/root/repo/tests/spice/test_fault_injection.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_fault_injection.cpp.o.d"
  "/root/repo/tests/spice/test_matrix.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o.d"
  "/root/repo/tests/spice/test_netlist.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o.d"
  "/root/repo/tests/spice/test_properties.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_properties.cpp.o.d"
  "/root/repo/tests/spice/test_simulator_linear.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_linear.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_linear.cpp.o.d"
  "/root/repo/tests/spice/test_simulator_mos.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_mos.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_mos.cpp.o.d"
  "/root/repo/tests/spice/test_simulator_rails.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_rails.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_simulator_rails.cpp.o.d"
  "/root/repo/tests/spice/test_waveform.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
