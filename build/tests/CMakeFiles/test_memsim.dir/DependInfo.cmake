
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memsim/test_coupling_faults.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_coupling_faults.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_coupling_faults.cpp.o.d"
  "/root/repo/tests/memsim/test_decoder_faults.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_decoder_faults.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_decoder_faults.cpp.o.d"
  "/root/repo/tests/memsim/test_ffm_crossvalidation.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_ffm_crossvalidation.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_ffm_crossvalidation.cpp.o.d"
  "/root/repo/tests/memsim/test_memory.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_memory.cpp.o.d"
  "/root/repo/tests/memsim/test_memory_faults.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_memory_faults.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_memory_faults.cpp.o.d"
  "/root/repo/tests/memsim/test_retention.cpp" "tests/CMakeFiles/test_memsim.dir/memsim/test_retention.cpp.o" "gcc" "tests/CMakeFiles/test_memsim.dir/memsim/test_retention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
