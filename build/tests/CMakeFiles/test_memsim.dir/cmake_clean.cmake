file(REMOVE_RECURSE
  "CMakeFiles/test_memsim.dir/memsim/test_coupling_faults.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_coupling_faults.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_decoder_faults.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_decoder_faults.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_ffm_crossvalidation.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_ffm_crossvalidation.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_memory.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_memory.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_memory_faults.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_memory_faults.cpp.o.d"
  "CMakeFiles/test_memsim.dir/memsim/test_retention.cpp.o"
  "CMakeFiles/test_memsim.dir/memsim/test_retention.cpp.o.d"
  "test_memsim"
  "test_memsim.pdb"
  "test_memsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
