
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dram/test_column_defects.cpp" "tests/CMakeFiles/test_dram.dir/dram/test_column_defects.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/dram/test_column_defects.cpp.o.d"
  "/root/repo/tests/dram/test_column_faultfree.cpp" "tests/CMakeFiles/test_dram.dir/dram/test_column_faultfree.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/dram/test_column_faultfree.cpp.o.d"
  "/root/repo/tests/dram/test_column_properties.cpp" "tests/CMakeFiles/test_dram.dir/dram/test_column_properties.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/dram/test_column_properties.cpp.o.d"
  "/root/repo/tests/dram/test_column_sizes.cpp" "tests/CMakeFiles/test_dram.dir/dram/test_column_sizes.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/dram/test_column_sizes.cpp.o.d"
  "/root/repo/tests/dram/test_retention_temperature.cpp" "tests/CMakeFiles/test_dram.dir/dram/test_retention_temperature.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/dram/test_retention_temperature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/pf_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
