file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/dram/test_column_defects.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_column_defects.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_column_faultfree.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_column_faultfree.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_column_properties.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_column_properties.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_column_sizes.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_column_sizes.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/test_retention_temperature.cpp.o"
  "CMakeFiles/test_dram.dir/dram/test_retention_temperature.cpp.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
