
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/faults/test_coupling.cpp" "tests/CMakeFiles/test_faults.dir/faults/test_coupling.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/faults/test_coupling.cpp.o.d"
  "/root/repo/tests/faults/test_ffm.cpp" "tests/CMakeFiles/test_faults.dir/faults/test_ffm.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/faults/test_ffm.cpp.o.d"
  "/root/repo/tests/faults/test_fp_parse.cpp" "tests/CMakeFiles/test_faults.dir/faults/test_fp_parse.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/faults/test_fp_parse.cpp.o.d"
  "/root/repo/tests/faults/test_fp_properties.cpp" "tests/CMakeFiles/test_faults.dir/faults/test_fp_properties.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/faults/test_fp_properties.cpp.o.d"
  "/root/repo/tests/faults/test_space.cpp" "tests/CMakeFiles/test_faults.dir/faults/test_space.cpp.o" "gcc" "tests/CMakeFiles/test_faults.dir/faults/test_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
