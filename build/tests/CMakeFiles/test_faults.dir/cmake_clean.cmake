file(REMOVE_RECURSE
  "CMakeFiles/test_faults.dir/faults/test_coupling.cpp.o"
  "CMakeFiles/test_faults.dir/faults/test_coupling.cpp.o.d"
  "CMakeFiles/test_faults.dir/faults/test_ffm.cpp.o"
  "CMakeFiles/test_faults.dir/faults/test_ffm.cpp.o.d"
  "CMakeFiles/test_faults.dir/faults/test_fp_parse.cpp.o"
  "CMakeFiles/test_faults.dir/faults/test_fp_parse.cpp.o.d"
  "CMakeFiles/test_faults.dir/faults/test_fp_properties.cpp.o"
  "CMakeFiles/test_faults.dir/faults/test_fp_properties.cpp.o.d"
  "CMakeFiles/test_faults.dir/faults/test_space.cpp.o"
  "CMakeFiles/test_faults.dir/faults/test_space.cpp.o.d"
  "test_faults"
  "test_faults.pdb"
  "test_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
