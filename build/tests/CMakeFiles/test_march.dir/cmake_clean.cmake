file(REMOVE_RECURSE
  "CMakeFiles/test_march.dir/march/test_coupling_coverage.cpp.o"
  "CMakeFiles/test_march.dir/march/test_coupling_coverage.cpp.o.d"
  "CMakeFiles/test_march.dir/march/test_march_properties.cpp.o"
  "CMakeFiles/test_march.dir/march/test_march_properties.cpp.o.d"
  "CMakeFiles/test_march.dir/march/test_notation.cpp.o"
  "CMakeFiles/test_march.dir/march/test_notation.cpp.o.d"
  "CMakeFiles/test_march.dir/march/test_run_coverage.cpp.o"
  "CMakeFiles/test_march.dir/march/test_run_coverage.cpp.o.d"
  "CMakeFiles/test_march.dir/march/test_synthesis.cpp.o"
  "CMakeFiles/test_march.dir/march/test_synthesis.cpp.o.d"
  "CMakeFiles/test_march.dir/march/test_word_backgrounds.cpp.o"
  "CMakeFiles/test_march.dir/march/test_word_backgrounds.cpp.o.d"
  "test_march"
  "test_march.pdb"
  "test_march[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_march.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
