
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/march/test_coupling_coverage.cpp" "tests/CMakeFiles/test_march.dir/march/test_coupling_coverage.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_coupling_coverage.cpp.o.d"
  "/root/repo/tests/march/test_march_properties.cpp" "tests/CMakeFiles/test_march.dir/march/test_march_properties.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_march_properties.cpp.o.d"
  "/root/repo/tests/march/test_notation.cpp" "tests/CMakeFiles/test_march.dir/march/test_notation.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_notation.cpp.o.d"
  "/root/repo/tests/march/test_run_coverage.cpp" "tests/CMakeFiles/test_march.dir/march/test_run_coverage.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_run_coverage.cpp.o.d"
  "/root/repo/tests/march/test_synthesis.cpp" "tests/CMakeFiles/test_march.dir/march/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_synthesis.cpp.o.d"
  "/root/repo/tests/march/test_word_backgrounds.cpp" "tests/CMakeFiles/test_march.dir/march/test_word_backgrounds.cpp.o" "gcc" "tests/CMakeFiles/test_march.dir/march/test_word_backgrounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
