file(REMOVE_RECURSE
  "CMakeFiles/pf_memsim.dir/src/memory.cpp.o"
  "CMakeFiles/pf_memsim.dir/src/memory.cpp.o.d"
  "CMakeFiles/pf_memsim.dir/src/word_memory.cpp.o"
  "CMakeFiles/pf_memsim.dir/src/word_memory.cpp.o.d"
  "libpf_memsim.a"
  "libpf_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
