
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/src/memory.cpp" "src/memsim/CMakeFiles/pf_memsim.dir/src/memory.cpp.o" "gcc" "src/memsim/CMakeFiles/pf_memsim.dir/src/memory.cpp.o.d"
  "/root/repo/src/memsim/src/word_memory.cpp" "src/memsim/CMakeFiles/pf_memsim.dir/src/word_memory.cpp.o" "gcc" "src/memsim/CMakeFiles/pf_memsim.dir/src/word_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
