file(REMOVE_RECURSE
  "CMakeFiles/pf_spice.dir/src/deck.cpp.o"
  "CMakeFiles/pf_spice.dir/src/deck.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/fault_injection.cpp.o"
  "CMakeFiles/pf_spice.dir/src/fault_injection.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/matrix.cpp.o"
  "CMakeFiles/pf_spice.dir/src/matrix.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/netlist.cpp.o"
  "CMakeFiles/pf_spice.dir/src/netlist.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/simulator.cpp.o"
  "CMakeFiles/pf_spice.dir/src/simulator.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/trace.cpp.o"
  "CMakeFiles/pf_spice.dir/src/trace.cpp.o.d"
  "CMakeFiles/pf_spice.dir/src/waveform.cpp.o"
  "CMakeFiles/pf_spice.dir/src/waveform.cpp.o.d"
  "libpf_spice.a"
  "libpf_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
