file(REMOVE_RECURSE
  "libpf_spice.a"
)
