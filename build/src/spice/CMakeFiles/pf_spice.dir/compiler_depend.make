# Empty compiler generated dependencies file for pf_spice.
# This may be replaced when dependencies are built.
