
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/src/deck.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/deck.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/deck.cpp.o.d"
  "/root/repo/src/spice/src/fault_injection.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/fault_injection.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/fault_injection.cpp.o.d"
  "/root/repo/src/spice/src/matrix.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/matrix.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/matrix.cpp.o.d"
  "/root/repo/src/spice/src/netlist.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/netlist.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/netlist.cpp.o.d"
  "/root/repo/src/spice/src/simulator.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/simulator.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/simulator.cpp.o.d"
  "/root/repo/src/spice/src/trace.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/trace.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/trace.cpp.o.d"
  "/root/repo/src/spice/src/waveform.cpp" "src/spice/CMakeFiles/pf_spice.dir/src/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/pf_spice.dir/src/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
