file(REMOVE_RECURSE
  "CMakeFiles/pf_util.dir/src/ascii_plot.cpp.o"
  "CMakeFiles/pf_util.dir/src/ascii_plot.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/csv.cpp.o"
  "CMakeFiles/pf_util.dir/src/csv.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/grid.cpp.o"
  "CMakeFiles/pf_util.dir/src/grid.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/interval.cpp.o"
  "CMakeFiles/pf_util.dir/src/interval.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/log.cpp.o"
  "CMakeFiles/pf_util.dir/src/log.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/strings.cpp.o"
  "CMakeFiles/pf_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/pf_util.dir/src/table.cpp.o"
  "CMakeFiles/pf_util.dir/src/table.cpp.o.d"
  "libpf_util.a"
  "libpf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
