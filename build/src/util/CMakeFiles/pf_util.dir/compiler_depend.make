# Empty compiler generated dependencies file for pf_util.
# This may be replaced when dependencies are built.
