file(REMOVE_RECURSE
  "libpf_util.a"
)
