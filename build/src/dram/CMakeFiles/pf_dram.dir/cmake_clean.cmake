file(REMOVE_RECURSE
  "CMakeFiles/pf_dram.dir/src/column.cpp.o"
  "CMakeFiles/pf_dram.dir/src/column.cpp.o.d"
  "CMakeFiles/pf_dram.dir/src/defect.cpp.o"
  "CMakeFiles/pf_dram.dir/src/defect.cpp.o.d"
  "CMakeFiles/pf_dram.dir/src/params.cpp.o"
  "CMakeFiles/pf_dram.dir/src/params.cpp.o.d"
  "libpf_dram.a"
  "libpf_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
