file(REMOVE_RECURSE
  "libpf_dram.a"
)
