# Empty dependencies file for pf_dram.
# This may be replaced when dependencies are built.
