
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/src/column.cpp" "src/dram/CMakeFiles/pf_dram.dir/src/column.cpp.o" "gcc" "src/dram/CMakeFiles/pf_dram.dir/src/column.cpp.o.d"
  "/root/repo/src/dram/src/defect.cpp" "src/dram/CMakeFiles/pf_dram.dir/src/defect.cpp.o" "gcc" "src/dram/CMakeFiles/pf_dram.dir/src/defect.cpp.o.d"
  "/root/repo/src/dram/src/params.cpp" "src/dram/CMakeFiles/pf_dram.dir/src/params.cpp.o" "gcc" "src/dram/CMakeFiles/pf_dram.dir/src/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
