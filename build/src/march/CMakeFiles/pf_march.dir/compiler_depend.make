# Empty compiler generated dependencies file for pf_march.
# This may be replaced when dependencies are built.
