file(REMOVE_RECURSE
  "CMakeFiles/pf_march.dir/src/coverage.cpp.o"
  "CMakeFiles/pf_march.dir/src/coverage.cpp.o.d"
  "CMakeFiles/pf_march.dir/src/library.cpp.o"
  "CMakeFiles/pf_march.dir/src/library.cpp.o.d"
  "CMakeFiles/pf_march.dir/src/synthesis.cpp.o"
  "CMakeFiles/pf_march.dir/src/synthesis.cpp.o.d"
  "CMakeFiles/pf_march.dir/src/test.cpp.o"
  "CMakeFiles/pf_march.dir/src/test.cpp.o.d"
  "CMakeFiles/pf_march.dir/src/word.cpp.o"
  "CMakeFiles/pf_march.dir/src/word.cpp.o.d"
  "libpf_march.a"
  "libpf_march.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_march.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
