file(REMOVE_RECURSE
  "libpf_march.a"
)
