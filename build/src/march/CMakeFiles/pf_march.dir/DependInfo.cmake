
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/march/src/coverage.cpp" "src/march/CMakeFiles/pf_march.dir/src/coverage.cpp.o" "gcc" "src/march/CMakeFiles/pf_march.dir/src/coverage.cpp.o.d"
  "/root/repo/src/march/src/library.cpp" "src/march/CMakeFiles/pf_march.dir/src/library.cpp.o" "gcc" "src/march/CMakeFiles/pf_march.dir/src/library.cpp.o.d"
  "/root/repo/src/march/src/synthesis.cpp" "src/march/CMakeFiles/pf_march.dir/src/synthesis.cpp.o" "gcc" "src/march/CMakeFiles/pf_march.dir/src/synthesis.cpp.o.d"
  "/root/repo/src/march/src/test.cpp" "src/march/CMakeFiles/pf_march.dir/src/test.cpp.o" "gcc" "src/march/CMakeFiles/pf_march.dir/src/test.cpp.o.d"
  "/root/repo/src/march/src/word.cpp" "src/march/CMakeFiles/pf_march.dir/src/word.cpp.o" "gcc" "src/march/CMakeFiles/pf_march.dir/src/word.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
