
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/src/checkpoint.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/checkpoint.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/checkpoint.cpp.o.d"
  "/root/repo/src/analysis/src/completion.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/completion.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/completion.cpp.o.d"
  "/root/repo/src/analysis/src/diagnosis.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/diagnosis.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/diagnosis.cpp.o.d"
  "/root/repo/src/analysis/src/partial.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/partial.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/partial.cpp.o.d"
  "/root/repo/src/analysis/src/region.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/region.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/region.cpp.o.d"
  "/root/repo/src/analysis/src/robust.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/robust.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/robust.cpp.o.d"
  "/root/repo/src/analysis/src/sos_runner.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/sos_runner.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/sos_runner.cpp.o.d"
  "/root/repo/src/analysis/src/table1.cpp" "src/analysis/CMakeFiles/pf_analysis.dir/src/table1.cpp.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/src/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/pf_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
