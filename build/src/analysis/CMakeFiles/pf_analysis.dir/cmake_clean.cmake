file(REMOVE_RECURSE
  "CMakeFiles/pf_analysis.dir/src/checkpoint.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/checkpoint.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/completion.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/completion.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/diagnosis.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/diagnosis.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/partial.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/partial.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/region.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/region.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/robust.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/robust.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/sos_runner.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/sos_runner.cpp.o.d"
  "CMakeFiles/pf_analysis.dir/src/table1.cpp.o"
  "CMakeFiles/pf_analysis.dir/src/table1.cpp.o.d"
  "libpf_analysis.a"
  "libpf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
