file(REMOVE_RECURSE
  "libpf_faults.a"
)
