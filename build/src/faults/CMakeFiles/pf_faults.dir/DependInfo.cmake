
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/src/coupling.cpp" "src/faults/CMakeFiles/pf_faults.dir/src/coupling.cpp.o" "gcc" "src/faults/CMakeFiles/pf_faults.dir/src/coupling.cpp.o.d"
  "/root/repo/src/faults/src/ffm.cpp" "src/faults/CMakeFiles/pf_faults.dir/src/ffm.cpp.o" "gcc" "src/faults/CMakeFiles/pf_faults.dir/src/ffm.cpp.o.d"
  "/root/repo/src/faults/src/fp.cpp" "src/faults/CMakeFiles/pf_faults.dir/src/fp.cpp.o" "gcc" "src/faults/CMakeFiles/pf_faults.dir/src/fp.cpp.o.d"
  "/root/repo/src/faults/src/space.cpp" "src/faults/CMakeFiles/pf_faults.dir/src/space.cpp.o" "gcc" "src/faults/CMakeFiles/pf_faults.dir/src/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
