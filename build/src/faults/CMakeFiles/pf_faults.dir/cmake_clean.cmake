file(REMOVE_RECURSE
  "CMakeFiles/pf_faults.dir/src/coupling.cpp.o"
  "CMakeFiles/pf_faults.dir/src/coupling.cpp.o.d"
  "CMakeFiles/pf_faults.dir/src/ffm.cpp.o"
  "CMakeFiles/pf_faults.dir/src/ffm.cpp.o.d"
  "CMakeFiles/pf_faults.dir/src/fp.cpp.o"
  "CMakeFiles/pf_faults.dir/src/fp.cpp.o.d"
  "CMakeFiles/pf_faults.dir/src/space.cpp.o"
  "CMakeFiles/pf_faults.dir/src/space.cpp.o.d"
  "libpf_faults.a"
  "libpf_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
