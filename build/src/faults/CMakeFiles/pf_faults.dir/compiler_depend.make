# Empty compiler generated dependencies file for pf_faults.
# This may be replaced when dependencies are built.
