# Empty compiler generated dependencies file for inspect_column.
# This may be replaced when dependencies are built.
