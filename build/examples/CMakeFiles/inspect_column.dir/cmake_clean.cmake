file(REMOVE_RECURSE
  "CMakeFiles/inspect_column.dir/inspect_column.cpp.o"
  "CMakeFiles/inspect_column.dir/inspect_column.cpp.o.d"
  "inspect_column"
  "inspect_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
