file(REMOVE_RECURSE
  "CMakeFiles/march_workbench.dir/march_workbench.cpp.o"
  "CMakeFiles/march_workbench.dir/march_workbench.cpp.o.d"
  "march_workbench"
  "march_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/march_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
