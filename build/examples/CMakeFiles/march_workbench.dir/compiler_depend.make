# Empty compiler generated dependencies file for march_workbench.
# This may be replaced when dependencies are built.
