# Empty dependencies file for defect_explorer.
# This may be replaced when dependencies are built.
