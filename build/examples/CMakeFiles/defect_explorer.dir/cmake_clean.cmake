file(REMOVE_RECURSE
  "CMakeFiles/defect_explorer.dir/defect_explorer.cpp.o"
  "CMakeFiles/defect_explorer.dir/defect_explorer.cpp.o.d"
  "defect_explorer"
  "defect_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defect_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
