file(REMOVE_RECURSE
  "../bench/bench_table1_partial_faults"
  "../bench/bench_table1_partial_faults.pdb"
  "CMakeFiles/bench_table1_partial_faults.dir/bench_table1_partial_faults.cpp.o"
  "CMakeFiles/bench_table1_partial_faults.dir/bench_table1_partial_faults.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_partial_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
