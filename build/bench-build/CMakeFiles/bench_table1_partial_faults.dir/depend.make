# Empty dependencies file for bench_table1_partial_faults.
# This may be replaced when dependencies are built.
