file(REMOVE_RECURSE
  "../bench/bench_march_synthesis"
  "../bench/bench_march_synthesis.pdb"
  "CMakeFiles/bench_march_synthesis.dir/bench_march_synthesis.cpp.o"
  "CMakeFiles/bench_march_synthesis.dir/bench_march_synthesis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_march_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
