# Empty dependencies file for bench_march_synthesis.
# This may be replaced when dependencies are built.
