file(REMOVE_RECURSE
  "../bench/bench_march_pf"
  "../bench/bench_march_pf.pdb"
  "CMakeFiles/bench_march_pf.dir/bench_march_pf.cpp.o"
  "CMakeFiles/bench_march_pf.dir/bench_march_pf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_march_pf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
