# Empty dependencies file for bench_march_pf.
# This may be replaced when dependencies are built.
