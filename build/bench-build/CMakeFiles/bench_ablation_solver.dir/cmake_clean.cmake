file(REMOVE_RECURSE
  "../bench/bench_ablation_solver"
  "../bench/bench_ablation_solver.pdb"
  "CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o"
  "CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
