
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_retry_overhead.cpp" "bench-build/CMakeFiles/bench_retry_overhead.dir/bench_retry_overhead.cpp.o" "gcc" "bench-build/CMakeFiles/bench_retry_overhead.dir/bench_retry_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pf_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pf_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/pf_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
