file(REMOVE_RECURSE
  "../bench/bench_retry_overhead"
  "../bench/bench_retry_overhead.pdb"
  "CMakeFiles/bench_retry_overhead.dir/bench_retry_overhead.cpp.o"
  "CMakeFiles/bench_retry_overhead.dir/bench_retry_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retry_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
