# Empty dependencies file for bench_retry_overhead.
# This may be replaced when dependencies are built.
