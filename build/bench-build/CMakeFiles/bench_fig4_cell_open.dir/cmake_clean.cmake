file(REMOVE_RECURSE
  "../bench/bench_fig4_cell_open"
  "../bench/bench_fig4_cell_open.pdb"
  "CMakeFiles/bench_fig4_cell_open.dir/bench_fig4_cell_open.cpp.o"
  "CMakeFiles/bench_fig4_cell_open.dir/bench_fig4_cell_open.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cell_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
