# Empty compiler generated dependencies file for bench_fig4_cell_open.
# This may be replaced when dependencies are built.
