# Empty compiler generated dependencies file for bench_fig3_bitline_open.
# This may be replaced when dependencies are built.
