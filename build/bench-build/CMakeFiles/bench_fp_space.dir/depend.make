# Empty dependencies file for bench_fp_space.
# This may be replaced when dependencies are built.
