file(REMOVE_RECURSE
  "../bench/bench_fp_space"
  "../bench/bench_fp_space.pdb"
  "CMakeFiles/bench_fp_space.dir/bench_fp_space.cpp.o"
  "CMakeFiles/bench_fp_space.dir/bench_fp_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
