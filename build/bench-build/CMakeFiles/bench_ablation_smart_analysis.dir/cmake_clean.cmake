file(REMOVE_RECURSE
  "../bench/bench_ablation_smart_analysis"
  "../bench/bench_ablation_smart_analysis.pdb"
  "CMakeFiles/bench_ablation_smart_analysis.dir/bench_ablation_smart_analysis.cpp.o"
  "CMakeFiles/bench_ablation_smart_analysis.dir/bench_ablation_smart_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smart_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
