# Empty compiler generated dependencies file for bench_shorts_bridges.
# This may be replaced when dependencies are built.
