file(REMOVE_RECURSE
  "../bench/bench_shorts_bridges"
  "../bench/bench_shorts_bridges.pdb"
  "CMakeFiles/bench_shorts_bridges.dir/bench_shorts_bridges.cpp.o"
  "CMakeFiles/bench_shorts_bridges.dir/bench_shorts_bridges.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shorts_bridges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
