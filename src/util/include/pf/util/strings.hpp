// Small string utilities used by the notation parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pf {

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Split on a single character delimiter; elements are trimmed.
/// Empty elements are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Split on a delimiter, dropping empty elements after trimming.
std::vector<std::string> split_nonempty(std::string_view s, char delim);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style double formatting with trailing-zero trimming ("1.5", "0.25").
std::string format_double(double v, int max_decimals = 6);

}  // namespace pf
