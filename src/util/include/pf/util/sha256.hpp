// SHA-256 (FIPS 180-4) — the content hash behind the service result cache's
// golden-answer manifests.
//
// CRC-32 (pf/util/crc32.hpp) guards individual journal rows against bit rot;
// it is deliberately cheap and deliberately weak. A *served* result needs a
// stronger contract: the `.ans.sha` manifest discipline stores the SHA-256
// of the answer next to the answer, and every cache read recomputes and
// compares before a byte leaves the store. Self-contained implementation —
// no OpenSSL dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pf {

/// Streaming SHA-256. update() any number of times, then hex_digest() once.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalize and return the 64-char lowercase hex digest. The object is
  /// spent afterwards (construct a fresh one for another message).
  std::string hex_digest();

 private:
  void process_block(const uint8_t* block);

  uint32_t state_[8];
  uint64_t length_bits_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  bool finalized_ = false;
};

/// One-shot digest of an in-memory buffer.
std::string sha256_hex(std::string_view data);

/// Digest of a file's bytes; empty string when the file cannot be read
/// (callers treat an unreadable artifact exactly like a corrupt one).
std::string sha256_file_hex(const std::string& path);

}  // namespace pf
