// Error handling primitives shared by every pf_* library.
//
// The libraries signal contract violations and unrecoverable conditions with
// pf::Error (derived from std::runtime_error) so callers can distinguish
// library failures from standard-library failures. The PF_CHECK/PF_REQUIRE
// macros attach file:line context automatically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pf {

/// Base exception for all pf_* libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when parsing textual notation (FPs, march tests, netlists) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical solve fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when a CancellationToken stops an operation early (Ctrl-C, a
/// wall-clock deadline). Deliberately NOT a ConvergenceError: retry loops
/// must never re-attempt a cancelled experiment, and a cancelled point is
/// not a solver failure — it simply was not run to completion. Catch it at
/// the CLI layer to flush state and exit with pf::kExitInterrupted.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pf

/// Precondition / invariant check that throws pf::Error with context.
#define PF_CHECK(expr)                                                    \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pf::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");   \
  } while (false)

/// Check with an extra streamed message: PF_CHECK_MSG(x > 0, "x=" << x).
#define PF_CHECK_MSG(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream pf_check_os_;                                    \
      pf_check_os_ << msg;                                                \
      ::pf::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                        pf_check_os_.str());              \
    }                                                                     \
  } while (false)
