// Quarantine: move a corrupt artifact aside instead of deleting it.
//
// Crash-safe subsystems (the sweep journal, the service result cache) never
// destroy evidence: an unreadable journal or a failed-verification cache
// entry is renamed to `<path>.corrupt` and the campaign continues. When a
// second corruption lands on the same path — one flaky disk can produce
// many — the suffix gains a monotonic counter (`.corrupt.1`, `.corrupt.2`,
// ...) so earlier evidence is never overwritten.
#pragma once

#include <string>

namespace pf {

/// Rename `path` (file or directory) to the first free quarantine name:
/// `<path>.corrupt`, then `<path>.corrupt.1`, `<path>.corrupt.2`, ...
/// Returns the target path, or an empty string when the rename failed (the
/// caller then proceeds as if the artifact did not exist).
std::string quarantine_path(const std::string& path);

}  // namespace pf
