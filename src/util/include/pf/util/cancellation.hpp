// Cooperative cancellation for long-running sweeps.
//
// A production fault-analysis campaign is hours of solver time; the only
// *correct* way to stop one early is the path that also survives a crash:
// finish (or abandon) the in-flight grid points, flush the checkpoint
// journal, and exit with a resumable status. CancellationToken is the signal
// that threads that request through the whole execution stack:
//
//   CLI signal handler / caller --> ExecutionPolicy::cancel
//       --> ParallelGridRunner (checked between grid points)
//       --> SimOptions::cancel --> Simulator watchdog (checked mid-solve)
//
// A token is a copyable handle onto shared state (copies observe the same
// cancellation), with two trigger paths:
//
//   * request_cancellation() — explicit, async-signal-safe (an atomic
//     store), callable from a SIGINT handler or another thread;
//   * a wall-clock deadline armed once via arm_deadline_after(): the token
//     reports expiry when steady_clock passes it. Re-arming is a no-op, so
//     a multi-sweep driver that copies its ExecutionPolicy per sweep still
//     gets ONE global deadline, not one per sweep.
//
// Cancellation surfaces as pf::CancelledError, which is deliberately NOT a
// ConvergenceError: retry/backoff must never retry a cancelled experiment,
// and a cancelled point must never be recorded as a solver failure.
#pragma once

#include <atomic>
#include <memory>
#include <string>

namespace pf {

class CancellationToken {
 public:
  /// A fresh, independent token: not cancelled, no deadline.
  CancellationToken();

  /// Copies share state: cancelling any copy cancels them all.
  CancellationToken(const CancellationToken&) = default;
  CancellationToken& operator=(const CancellationToken&) = default;

  /// Trip the token. Async-signal-safe and thread-safe; idempotent.
  void request_cancellation() const noexcept;

  /// Arm the shared wall-clock deadline `seconds` from now. Only the FIRST
  /// arming takes effect (subsequent calls, e.g. from per-sweep policy
  /// copies, are no-ops); seconds <= 0 never arms. Thread-safe.
  void arm_deadline_after(double seconds) const noexcept;

  /// True once request_cancellation() was called on any copy.
  bool cancellation_requested() const noexcept;

  /// True once the armed deadline has passed (false while unarmed).
  bool deadline_expired() const noexcept;

  /// The one check execution layers use: cancelled or past deadline.
  bool stop_requested() const noexcept {
    return cancellation_requested() || deadline_expired();
  }

  /// "cancellation requested" or "deadline expired" — for error messages.
  std::string reason() const;

 private:
  friend class SignalCancellation;
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> deadline_ns{0};  ///< steady_clock ns; 0 = unarmed
  };
  std::shared_ptr<State> state_;
};

/// Exit status for "interrupted — resumable": distinct from both success
/// and hard failure so wrappers/CI can retry the command. (BSD sysexits'
/// EX_TEMPFAIL, the conventional "try again later" code.)
inline constexpr int kExitInterrupted = 75;

/// Exit status for a FORCED shutdown: a second SIGINT/SIGTERM arrived while
/// the graceful drain was still running (a wedged worker, a stuck solve), so
/// the process exited immediately without flushing. Distinct from both 0 and
/// kExitInterrupted so wrappers can tell "resumable, journal flushed" from
/// "killed mid-drain, journal holds whatever was flushed before the trip".
/// (BSD sysexits' EX_SOFTWARE.)
inline constexpr int kExitForced = 70;

/// RAII installation of SIGINT/SIGTERM handlers that trip `token`. The
/// FIRST signal requests cooperative cancellation (drain + flush + resumable
/// exit); a SECOND signal forces an immediate _exit(kExitForced) — a wedged
/// drain (stuck worker, hung solve) must never make the process unkillable
/// by Ctrl-C, and the distinct code tells wrappers the drain did not finish.
/// At most one instance may be live per process.
class SignalCancellation {
 public:
  /// Install handlers tripping a fresh token (retrieve it via token()).
  SignalCancellation() : SignalCancellation(CancellationToken()) {}
  explicit SignalCancellation(const CancellationToken& token);
  ~SignalCancellation();
  SignalCancellation(const SignalCancellation&) = delete;
  SignalCancellation& operator=(const SignalCancellation&) = delete;

  /// The token the installed handlers trip.
  const CancellationToken& token() const { return token_; }

  /// True once a handled signal tripped the token (to pick the exit path).
  static bool signalled() noexcept;

 private:
  CancellationToken token_;
};

}  // namespace pf
