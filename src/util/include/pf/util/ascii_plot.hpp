// ASCII rendering of region maps — reproduces the look of the paper's
// Figure 3 / Figure 4 (fault regions in the (R_def, U) plane) on a terminal.
#pragma once

#include <functional>
#include <string>

#include "pf/util/grid.hpp"

namespace pf {

struct AsciiPlotOptions {
  std::string title;
  std::string x_label = "U [V]";
  std::string y_label = "R [ohm]";
  bool y_log = false;       ///< label the y axis with log-spaced ticks
  char empty_cell = '.';    ///< glyph for "no fault"
  size_t max_rows = 40;     ///< grid rows are down-sampled to at most this
  size_t max_cols = 72;
};

/// Render a character grid. `glyph(ix, iy)` returns the character to draw for
/// grid cell (ix, iy); rows are drawn with the *last* y row on top so that
/// increasing y (e.g. R_def) points up, matching the paper's figures.
std::string render_region_map(size_t width, size_t height,
                              const std::vector<double>& x_axis,
                              const std::vector<double>& y_axis,
                              const std::function<char(size_t, size_t)>& glyph,
                              const AsciiPlotOptions& opt);

/// Convenience overload for Grid2D<char>.
std::string render_region_map(const Grid2D<char>& grid,
                              const AsciiPlotOptions& opt);

}  // namespace pf
