// Plain-text table formatter used by the bench harnesses to print the
// paper's tables (e.g. Table 1) in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace pf {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  std::string to_string() const;

  /// Render as CSV (no alignment padding).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pf
