// Closed-interval and interval-set arithmetic on the real line.
//
// The partial-fault rule of the paper (Section 3) asks whether a fault
// primitive is observed for a *limited range* of a floating voltage V_f, or
// for the entire physically reachable range. Region extraction therefore
// needs: unions of observation bands, coverage tests against the full axis,
// and band boundaries. IntervalSet provides exactly that.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pf {

/// A closed interval [lo, hi]. Empty iff lo > hi.
struct Interval {
  double lo = 1.0;
  double hi = 0.0;  // default-constructed interval is empty

  Interval() = default;
  Interval(double lo_, double hi_) : lo(lo_), hi(hi_) {}

  bool empty() const { return lo > hi; }
  double length() const { return empty() ? 0.0 : hi - lo; }
  bool contains(double x) const { return !empty() && lo <= x && x <= hi; }
  bool overlaps(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  /// True when the union of *this and o is a single interval
  /// (they overlap or touch within `eps`).
  bool touches(const Interval& o, double eps = 0.0) const {
    return !empty() && !o.empty() && lo <= o.hi + eps && o.lo <= hi + eps;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return (a.empty() && b.empty()) || (a.lo == b.lo && a.hi == b.hi);
  }

  std::string to_string() const;
};

/// A set of disjoint, sorted, non-touching closed intervals.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { insert(iv); }

  /// Insert an interval, merging with existing ones that overlap or touch
  /// within `merge_eps`.
  void insert(Interval iv, double merge_eps = 0.0);

  bool empty() const { return parts_.empty(); }
  size_t size() const { return parts_.size(); }
  const std::vector<Interval>& parts() const { return parts_; }

  bool contains(double x) const;
  double total_length() const;

  /// Smallest interval containing the whole set (empty set -> empty interval).
  Interval hull() const;

  /// True when the set covers [domain.lo, domain.hi] up to a slack of `eps`
  /// at each gap and at each end. This is the paper's test for a fault that
  /// is sensitized "for any initial voltage".
  bool covers(const Interval& domain, double eps) const;

  std::string to_string() const;

 private:
  std::vector<Interval> parts_;
};

}  // namespace pf
