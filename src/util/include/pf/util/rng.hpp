// Deterministic splitmix64-based RNG for property tests and randomized
// workloads. Header-only; seeded explicitly so every run is reproducible.
#pragma once

#include <cstdint>

namespace pf {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n) for n > 0.
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  uint64_t state_;
};

}  // namespace pf
