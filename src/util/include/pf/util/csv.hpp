// Minimal CSV writer used by the benches to dump region maps / sweep series
// so plots can be regenerated outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pf {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws pf::Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

 private:
  std::ofstream out_;
};

/// Quote a CSV field if needed (comma, quote or newline present).
std::string csv_escape(const std::string& field);

}  // namespace pf
