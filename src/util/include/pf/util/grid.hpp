// Axis generation and dense 2-D grids for (R_def, U) region maps.
#pragma once

#include <cstddef>
#include <vector>

#include "pf/util/error.hpp"

namespace pf {

/// Generate `n` linearly spaced samples over [lo, hi] (inclusive). n >= 1.
std::vector<double> linspace(double lo, double hi, size_t n);

/// Generate `n` logarithmically spaced samples over [lo, hi]; lo, hi > 0.
std::vector<double> logspace(double lo, double hi, size_t n);

/// Dense row-major 2-D grid of T with axis metadata. Rows index the y axis
/// (e.g. R_def), columns index the x axis (e.g. the floating voltage U).
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::vector<double> x_axis, std::vector<double> y_axis, T fill = T{})
      : x_(std::move(x_axis)), y_(std::move(y_axis)),
        data_(x_.size() * y_.size(), fill) {
    PF_CHECK(!x_.empty() && !y_.empty());
  }

  size_t width() const { return x_.size(); }
  size_t height() const { return y_.size(); }
  const std::vector<double>& x_axis() const { return x_; }
  const std::vector<double>& y_axis() const { return y_; }

  T& at(size_t ix, size_t iy) {
    PF_CHECK_MSG(ix < width() && iy < height(), "ix=" << ix << " iy=" << iy);
    return data_[iy * width() + ix];
  }
  const T& at(size_t ix, size_t iy) const {
    PF_CHECK_MSG(ix < width() && iy < height(), "ix=" << ix << " iy=" << iy);
    return data_[iy * width() + ix];
  }

  const std::vector<T>& data() const { return data_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<T> data_;
};

}  // namespace pf
