// Minimal leveled logger. Off by default; benches and examples raise the
// level to narrate long sweeps. Thread-safe: the level is atomic and lines
// are emitted whole (parallel sweep workers log concurrently).
#pragma once

#include <sstream>
#include <string>

namespace pf {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// Global log threshold (default kOff).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

/// Emit a warning line to stderr unconditionally (ignores the threshold).
/// For conditions the user must not miss — e.g. a quarantined or corrupt
/// checkpoint journal — where silence would read as "all data intact".
void log_warning(const std::string& msg);

}  // namespace pf

#define PF_LOG_INFO(msg)                                        \
  do {                                                          \
    if (::pf::log_level() >= ::pf::LogLevel::kInfo) {           \
      std::ostringstream pf_log_os_;                            \
      pf_log_os_ << msg;                                        \
      ::pf::log_line(::pf::LogLevel::kInfo, pf_log_os_.str());  \
    }                                                           \
  } while (false)

#define PF_LOG_WARN(msg)               \
  do {                                 \
    std::ostringstream pf_log_os_;     \
    pf_log_os_ << msg;                 \
    ::pf::log_warning(pf_log_os_.str()); \
  } while (false)

#define PF_LOG_DEBUG(msg)                                       \
  do {                                                          \
    if (::pf::log_level() >= ::pf::LogLevel::kDebug) {          \
      std::ostringstream pf_log_os_;                            \
      pf_log_os_ << msg;                                        \
      ::pf::log_line(::pf::LogLevel::kDebug, pf_log_os_.str()); \
    }                                                           \
  } while (false)
