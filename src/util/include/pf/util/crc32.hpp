// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte strings.
//
// Used by the sweep-journal v2 format (pf/analysis/checkpoint.hpp) to give
// every checkpoint row an integrity check: a bit flip, a partial flush or a
// torn write is detected and the row dropped on resume instead of silently
// corrupting the restart state. The implementation is the standard
// table-driven one — table built once, thread-safe to call concurrently.
#pragma once

#include <cstdint>
#include <string_view>

namespace pf {

/// CRC-32 of `data` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF — the
/// zlib/PNG convention, so values can be cross-checked with external tools).
uint32_t crc32(std::string_view data);

/// Continue a running CRC-32: feed chunks as
/// `crc = crc32_update(crc, chunk)` starting from crc32_init(), then
/// finalize with crc32_final(). crc32(s) == crc32_final(crc32_update(
/// crc32_init(), s)).
uint32_t crc32_init();
uint32_t crc32_update(uint32_t crc, std::string_view data);
uint32_t crc32_final(uint32_t crc);

}  // namespace pf
