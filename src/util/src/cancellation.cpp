#include "pf/util/cancellation.hpp"

#include <unistd.h>

#include <csignal>
#include <chrono>

#include "pf/util/error.hpp"

namespace pf {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CancellationToken::CancellationToken() : state_(std::make_shared<State>()) {}

void CancellationToken::request_cancellation() const noexcept {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

void CancellationToken::arm_deadline_after(double seconds) const noexcept {
  if (seconds <= 0.0) return;
  const int64_t deadline =
      now_ns() + static_cast<int64_t>(seconds * 1e9);
  int64_t unarmed = 0;
  // First arming wins: per-sweep copies of a driver policy re-arm as no-ops.
  state_->deadline_ns.compare_exchange_strong(unarmed, deadline,
                                              std::memory_order_relaxed);
}

bool CancellationToken::cancellation_requested() const noexcept {
  return state_->cancelled.load(std::memory_order_relaxed);
}

bool CancellationToken::deadline_expired() const noexcept {
  const int64_t deadline = state_->deadline_ns.load(std::memory_order_relaxed);
  return deadline != 0 && now_ns() >= deadline;
}

std::string CancellationToken::reason() const {
  if (cancellation_requested()) return "cancellation requested";
  if (deadline_expired()) return "deadline expired";
  return "not cancelled";
}

namespace {

// The signal handler can only touch lock-free atomics: a raw pointer to the
// installed token's cancelled flag and a trip counter. The SignalCancellation
// object keeps the owning shared state alive for as long as the handler is
// installed.
std::atomic<std::atomic<bool>*> g_cancel_flag{nullptr};
std::atomic<int> g_signal_count{0};

extern "C" void pf_cancellation_signal_handler(int signum) {
  (void)signum;
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
    // Second signal: the cooperative path is not draining fast enough (or a
    // worker is wedged) — exit NOW with the distinct forced-shutdown code.
    // _exit is async-signal-safe; no flushing, no destructors: everything
    // journaled before the first signal is already on disk (appends flush
    // per row), and whatever was in flight is lost by design.
    _exit(kExitForced);
  }
  std::atomic<bool>* flag = g_cancel_flag.load(std::memory_order_relaxed);
  if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
}

// Keeps the token state alive while handlers are installed.
CancellationToken g_installed_token;
bool g_installed = false;

}  // namespace

SignalCancellation::SignalCancellation(const CancellationToken& token)
    : token_(token) {
  PF_CHECK_MSG(!g_installed,
               "only one SignalCancellation may be live per process");
  g_installed = true;
  g_installed_token = token;
  g_signal_count.store(0, std::memory_order_relaxed);
  g_cancel_flag.store(&token.state_->cancelled, std::memory_order_relaxed);
  std::signal(SIGINT, pf_cancellation_signal_handler);
  std::signal(SIGTERM, pf_cancellation_signal_handler);
}

SignalCancellation::~SignalCancellation() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_cancel_flag.store(nullptr, std::memory_order_relaxed);
  g_installed_token = CancellationToken();
  g_installed = false;
}

bool SignalCancellation::signalled() noexcept {
  return g_signal_count.load(std::memory_order_relaxed) > 0;
}

}  // namespace pf
