#include "pf/util/crc32.hpp"

#include <array>

namespace pf {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

constexpr std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = make_table();

}  // namespace

uint32_t crc32_init() { return 0xFFFFFFFFu; }

uint32_t crc32_update(uint32_t crc, std::string_view data) {
  for (const char ch : data)
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc;
}

uint32_t crc32_final(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace pf
