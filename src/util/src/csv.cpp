#include "pf/util/csv.hpp"

#include "pf/util/error.hpp"

namespace pf {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  PF_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

}  // namespace pf
