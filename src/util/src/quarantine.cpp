#include "pf/util/quarantine.hpp"

#include <filesystem>
#include <string>

namespace pf {

std::string quarantine_path(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  // A bounded scan keeps the worst case sane; 10k corruptions of one path
  // means something far worse than bit rot is going on.
  for (int n = 0; n < 10000; ++n) {
    std::string target = path + ".corrupt";
    if (n > 0) target += "." + std::to_string(n);
    if (fs::exists(target, ec)) continue;
    fs::rename(path, target, ec);
    if (ec) return "";
    return target;
  }
  return "";
}

}  // namespace pf
