#include "pf/util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pf/util/strings.hpp"

namespace pf {
namespace {

std::string axis_value_label(double v, bool log_axis) {
  if (log_axis) {
    if (v >= 1e6) return format_double(v / 1e6, 2) + "M";
    if (v >= 1e3) return format_double(v / 1e3, 1) + "k";
  }
  return format_double(v, 2);
}

}  // namespace

std::string render_region_map(size_t width, size_t height,
                              const std::vector<double>& x_axis,
                              const std::vector<double>& y_axis,
                              const std::function<char(size_t, size_t)>& glyph,
                              const AsciiPlotOptions& opt) {
  PF_CHECK(width == x_axis.size() && height == y_axis.size());
  const size_t rows = std::min(height, opt.max_rows);
  const size_t cols = std::min(width, opt.max_cols);
  auto row_of = [&](size_t r) {
    return rows == 1 ? size_t{0} : (r * (height - 1)) / (rows - 1);
  };
  auto col_of = [&](size_t c) {
    return cols == 1 ? size_t{0} : (c * (width - 1)) / (cols - 1);
  };

  std::ostringstream os;
  if (!opt.title.empty()) os << opt.title << '\n';
  os << "  " << opt.y_label << '\n';

  const int label_w = 9;
  for (size_t r = rows; r-- > 0;) {
    const size_t iy = row_of(r);
    std::string label;
    // Tick label every few rows and on the extremes.
    if (r == 0 || r + 1 == rows || r % 5 == 0)
      label = axis_value_label(y_axis[iy], opt.y_log);
    os << ' ';
    os.width(label_w);
    os << label;
    os << " |";
    for (size_t c = 0; c < cols; ++c) os << glyph(col_of(c), iy);
    os << '\n';
  }
  os << ' ';
  os.width(label_w);
  os << ' ';
  os << " +";
  for (size_t c = 0; c < cols; ++c) os << '-';
  os << '\n';
  // x tick labels: ends and middle.
  std::string xt(cols + label_w + 3, ' ');
  auto put = [&](size_t col, const std::string& s) {
    const size_t pos = label_w + 3 + col;
    for (size_t i = 0; i < s.size() && pos + i < xt.size(); ++i)
      xt[pos + i] = s[i];
  };
  put(0, axis_value_label(x_axis.front(), false));
  if (cols >= 24)
    put(cols / 2, axis_value_label(x_axis[col_of(cols / 2)], false));
  const std::string last = axis_value_label(x_axis.back(), false);
  if (cols >= last.size()) put(cols - last.size(), last);
  os << xt << "  " << opt.x_label << '\n';
  return os.str();
}

std::string render_region_map(const Grid2D<char>& grid,
                              const AsciiPlotOptions& opt) {
  return render_region_map(
      grid.width(), grid.height(), grid.x_axis(), grid.y_axis(),
      [&](size_t ix, size_t iy) {
        const char c = grid.at(ix, iy);
        return c == '\0' ? opt.empty_cell : c;
      },
      opt);
}

}  // namespace pf
