#include "pf/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "pf/util/error.hpp"

namespace pf {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PF_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PF_CHECK_MSG(row.size() == header_.size(),
               "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<size_t> w(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << (c ? " | " : "| ") << r[c]
         << std::string(w[c] - r[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (size_t c = 0; c < header_.size(); ++c)
    os << (c ? "-+-" : "+-") << std::string(w[c], '-');
  os << "-+\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      // Quote fields containing commas.
      if (r[c].find(',') != std::string::npos)
        os << '"' << r[c] << '"';
      else
        os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace pf
