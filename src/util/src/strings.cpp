#include "pf/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace pf {

std::string trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto& part : split(s, delim))
    if (!part.empty()) out.push_back(std::move(part));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace pf
