#include "pf/util/grid.hpp"

#include <cmath>

namespace pf {

std::vector<double> linspace(double lo, double hi, size_t n) {
  PF_CHECK(n >= 1);
  std::vector<double> v(n);
  if (n == 1) {
    v[0] = lo;
    return v;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;  // avoid accumulated rounding at the top end
  return v;
}

std::vector<double> logspace(double lo, double hi, size_t n) {
  PF_CHECK_MSG(lo > 0 && hi > 0, "logspace needs positive bounds");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (auto& e : exps) e = std::pow(10.0, e);
  exps.back() = hi;
  if (!exps.empty()) exps.front() = lo;
  return exps;
}

}  // namespace pf
