#include "pf/util/interval.hpp"

#include <algorithm>
#include <sstream>

#include "pf/util/strings.hpp"

namespace pf {

std::string Interval::to_string() const {
  if (empty()) return "[]";
  return "[" + format_double(lo, 4) + ", " + format_double(hi, 4) + "]";
}

void IntervalSet::insert(Interval iv, double merge_eps) {
  if (iv.empty()) return;
  std::vector<Interval> out;
  out.reserve(parts_.size() + 1);
  for (const auto& p : parts_) {
    if (p.touches(iv, merge_eps)) {
      iv.lo = std::min(iv.lo, p.lo);
      iv.hi = std::max(iv.hi, p.hi);
    } else {
      out.push_back(p);
    }
  }
  out.push_back(iv);
  std::sort(out.begin(), out.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  parts_ = std::move(out);
}

bool IntervalSet::contains(double x) const {
  return std::any_of(parts_.begin(), parts_.end(),
                     [&](const Interval& p) { return p.contains(x); });
}

double IntervalSet::total_length() const {
  double s = 0;
  for (const auto& p : parts_) s += p.length();
  return s;
}

Interval IntervalSet::hull() const {
  if (parts_.empty()) return Interval{};
  return Interval{parts_.front().lo, parts_.back().hi};
}

bool IntervalSet::covers(const Interval& domain, double eps) const {
  if (domain.empty()) return true;
  if (parts_.empty()) return false;
  double reach = domain.lo;
  for (const auto& p : parts_) {
    if (p.lo > reach + eps) return false;  // gap before this part
    reach = std::max(reach, p.hi);
    if (reach + eps >= domain.hi) return true;
  }
  return reach + eps >= domain.hi;
}

std::string IntervalSet::to_string() const {
  if (parts_.empty()) return "{}";
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i) os << " u ";
    os << parts_[i].to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace pf
