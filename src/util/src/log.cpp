#include "pf/util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pf {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
// One line at a time: parallel sweep workers log concurrently and their
// lines must not interleave mid-character.
std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (log_level() >= level) {
    std::lock_guard<std::mutex> lock(log_mutex());
    std::cerr << "[pf] " << msg << '\n';
  }
}

void log_warning(const std::string& msg) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[pf] warning: " << msg << '\n';
}

}  // namespace pf
