#include "pf/util/log.hpp"

#include <iostream>

namespace pf {
namespace {
LogLevel g_level = LogLevel::kOff;
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (g_level >= level) std::cerr << "[pf] " << msg << '\n';
}

}  // namespace pf
