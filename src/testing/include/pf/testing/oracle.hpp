// The differential oracle of the property-based harness (DESIGN.md §10).
//
// One trial takes a FuzzCase, runs the electrical sweep under the case's
// execution mode, and then judges the result from three independent angles:
//
//   1. point referee — every grid cell is re-solved with the stateless
//      fresh-rebuild run_sos_robust under an EMPTY injection-context key and
//      the two classifications must agree cell for cell. Because the
//      fault-injection plan only fires for non-empty declared contexts, the
//      referee run is immune to any armed plan: a planted classification
//      mutation (kCorruptVoltage on a grid-point key) corrupts the sweep but
//      not the referee, and the disagreement convicts it. The same check is
//      the kReuse-vs-kRebuild / warm-start metamorphic invariant for free.
//   2. taxonomy audit — per faulty cell the observed fault primitive must
//      classify back to the cell's FFM, and partial/full status reported by
//      identify_partial_faults must match the band-coverage rule
//      re-derived from the map.
//   3. behavioral agreement — each electrical finding is mapped onto the
//      memsim layer (FFM + guard derived from the defect site and the
//      observation band) and must behave identically there: sensitized iff
//      the guard is satisfied, detected by March SS as a full fault, and —
//      for the bit-line-guarded partials the paper is about — detected by
//      March PF at every address.
//
// All checks report through TrialResult instead of throwing, so the
// shrinker can re-evaluate candidate simplifications cheaply.
#pragma once

#include <optional>
#include <string>

#include "pf/analysis/partial.hpp"
#include "pf/memsim/memory.hpp"
#include "pf/testing/generators.hpp"

namespace pf::testing {

struct OracleOptions {
  bool point_referee = true;  ///< re-solve every cell with fresh rebuilds
  bool behavioral = true;     ///< memsim guard + march agreement per finding
  /// Behavioral array: victim 0 sits on the true bit line of column 0 and
  /// address 4 (row 2, column 0) is its same-BL, same-polarity aggressor.
  memsim::Geometry geometry{4, 2};
  /// Retry policy of the referee runs (defaults match sweep_region's).
  analysis::RetryPolicy retry;
};

/// Verdict of one differential trial. `ok` is the conjunction of every
/// check; `failure` holds the first disagreement, phrased with enough
/// context (cell coordinates, FFM names, march counts) to act on.
struct TrialResult {
  bool ok = true;
  std::string failure;
  size_t cells_checked = 0;     ///< grid cells confirmed by the referee
  size_t findings_checked = 0;  ///< electrical findings mapped to memsim
  std::vector<analysis::PartialFaultFinding> findings;

  /// Record the first failure (later ones are dropped — the shrinker works
  /// on one disagreement at a time).
  void fail(const std::string& why) {
    if (ok) {
      ok = false;
      failure = why;
    }
  }
};

/// The memsim guard modelling a partial fault observed at `site` with an
/// observation band centred at `band_mid`:
///   * bit-line opens (Opens 3-7 and 4') guard on the victim's bit line
///     holding the band's level,
///   * the IO-path open (Open 8) guards on the output buffer,
///   * nullopt for sites the behavioral layer cannot model as an
///     operation-controllable guard (cell-internal opens, the word line).
/// Full (non-partial) findings map to Guard::none() for every site.
std::optional<memsim::Guard> derive_guard(dram::OpenSite site, bool partial,
                                          double band_mid, double vdd);

/// Run the full differential trial for one case.
TrialResult run_differential_trial(const FuzzCase& c,
                                   const OracleOptions& opts = {});

/// The behavioral half of check 3, exposed for direct property tests:
/// inject (ffm, guard) at victim 0 of `geometry`, execute the FFM's
/// canonical SOS with the guard state pre-set to `satisfied` or not, and
/// return "" when the memory deviates exactly when the guard is satisfied
/// (else a description of the disagreement).
std::string check_behavioral_exposure(const memsim::Geometry& geometry,
                                      faults::Ffm ffm,
                                      const memsim::Guard& guard);

}  // namespace pf::testing
