// Deterministic generators for the property-based / differential test
// harness (see DESIGN.md §10).
//
// Every randomized suite in tests/fuzz draws from one pf::Rng seeded by the
// PF_TEST_SEED environment variable (fixed default), so a CI failure is
// reproducible bit for bit by exporting the printed seed. The generators
// only produce *well-formed* inputs:
//
//   * random_sos emits sensitizing operation sequences whose read digits
//     match the fault-free data (tracking the simulated victim/aggressor
//     values), with optional initializing states, an optional completing
//     [w..] bracket and optional aggressor traffic — the arbitrary
//     decoupled operation sequences the Test Primitive literature asks for
//     instead of the fixed FP catalogue;
//   * random_tweaks perturbs DramParams within ±(a few tens of) percent of
//     the calibrated defaults, by named multiplicative factors so a
//     shrinker can drop them one at a time;
//   * random_case assembles a full differential experiment: an open-defect
//     site, an SOS, a small (R_def, U) grid inside the site's physically
//     meaningful resistance range, and an execution mode (threads, circuit
//     reuse, warm start).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pf/analysis/region.hpp"
#include "pf/march/synthesis.hpp"
#include "pf/util/rng.hpp"

namespace pf::testing {

/// Fixed default seed: CI runs are deterministic unless PF_TEST_SEED is set.
inline constexpr uint64_t kDefaultFuzzSeed = 0x5EED15C0FFEEULL;

/// Seed for this process's randomized tests: PF_TEST_SEED (decimal or 0x
/// hex) when set and parseable, else the fixed default.
uint64_t fuzz_seed();

/// Iteration budget: PF_FUZZ_ITERS when set and positive, else
/// `default_iters`. Suites pick defaults proportional to their per-trial
/// cost; the env var overrides all of them at once (CI knob).
int fuzz_iters(int default_iters);

/// One-line banner ("[fuzz] suite=... seed=... iters=...") printed by each
/// randomized suite so failures carry their reproduction recipe.
std::string fuzz_banner(const std::string& suite, uint64_t seed, int iters);

/// Derived per-iteration seed: fuzz suites that need an externally
/// replayable case (march_workbench --fuzz-case SEED:ITER) seed one Rng per
/// iteration from this instead of drawing from a shared stream, so a repro
/// does not have to replay every earlier iteration.
inline uint64_t fuzz_case_seed(uint64_t seed, int iter) {
  return seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(iter) +
                 0x5EA12C4ULL);
}

// --- DramParams perturbations ----------------------------------------------

/// A named multiplicative perturbation of one DramParams field.
struct ParamTweak {
  std::string field;
  double factor = 1.0;

  friend bool operator==(const ParamTweak&, const ParamTweak&) = default;
};

/// Fields random_tweaks may perturb (electrical sizings and timings; never
/// the supplies, which the floating-line U axis is defined against).
const std::vector<std::string>& tweakable_fields();

/// Defaults with every tweak applied (unknown field names throw pf::Error).
dram::DramParams apply_tweaks(const std::vector<ParamTweak>& tweaks);

/// Up to max_tweaks distinct fields, factors in [0.85, 1.18].
std::vector<ParamTweak> random_tweaks(Rng& rng, int max_tweaks = 2);

// --- SOS generation ---------------------------------------------------------

struct SosGenConfig {
  int max_body_ops = 3;          ///< non-completing operations
  bool allow_aggressor = true;   ///< BL-aggressor initial state + traffic
  bool allow_completing = true;  ///< optional [w..] completing bracket
};

/// A random well-formed SOS: every read digit equals the tracked fault-free
/// value of the addressed cell, and the sequence defines at least one
/// state (initialization or write) so its fault-free expectation exists.
faults::Sos random_sos(Rng& rng, const SosGenConfig& cfg = {});

/// True when every read's expected digit matches fault-free execution and
/// no cell is read before its value is defined (generators always satisfy
/// this; the shrinker uses it to reject ill-formed simplifications).
bool sos_well_formed(const faults::Sos& sos);

// --- Full differential cases ------------------------------------------------

/// One randomized differential experiment; the unit the fuzzer generates,
/// the oracle judges and the shrinker minimizes.
struct FuzzCase {
  std::vector<ParamTweak> tweaks;  ///< DramParams perturbation
  dram::OpenSite site = dram::OpenSite::kBitLineOuter;
  size_t floating_line_index = 0;
  faults::Sos sos;
  std::vector<double> r_axis;  ///< ascending R_def values
  std::vector<double> u_axis;  ///< ascending floating voltages
  int threads = 1;
  analysis::CircuitMode circuit = analysis::CircuitMode::kReuse;
  bool warm_start = false;

  dram::DramParams params() const { return apply_tweaks(tweaks); }
  dram::Defect defect() const;
  analysis::SweepSpec sweep_spec() const;

  /// Human-readable one-liner (site, SOS, axes, tweaks, execution mode).
  std::string describe() const;

  /// Copy-pasteable reproduction: the PF_TEST_SEED line for the fuzz run
  /// plus the defect_explorer command for the same (defect, SOS) map.
  std::string repro(uint64_t seed) const;
};

/// Physically meaningful R_def range for a site (mirrors Table1Options:
/// cell-internal opens up to 1 MOhm, the word-line open 100 kOhm..1 GOhm,
/// array/periphery opens 10 kOhm..10 MOhm).
void site_r_range(dram::OpenSite site, double* lo, double* hi);

struct CaseGenConfig {
  /// Open sites to draw from; empty = every site the analysis covers
  /// (including the complementary Open 4' but not the word line, whose
  /// hidden floating gate needs R_def decades outside the other sites'
  /// solver-friendly range — give it its own config when wanted).
  std::vector<dram::OpenSite> sites;
  int min_r_points = 2;
  int max_r_points = 3;
  int min_u_points = 3;
  int max_u_points = 4;
  int max_tweaks = 2;
  double p_canonical_sos = 0.5;  ///< draw from table1 base_soses() instead
  double p_completing = 0.35;    ///< chance the SOS carries a [w..] bracket
  int threads = 1;               ///< execution mode of the generated case
};

FuzzCase random_case(Rng& rng, const CaseGenConfig& cfg = {});

// --- March-search target sets ------------------------------------------------

/// A random guarded target set for the march-search fuzz suite: 1..4
/// guarded FFM targets plus at most one coupling target. Guards are drawn
/// from the detectable kinds only (hidden guards always active): an
/// inactive hidden fault is undetectable by construction and would make
/// every generated case trivially unsynthesizable. Deterministic in `rng`;
/// `march_workbench --search --fuzz-case SEED:ITER` replays the exact set
/// the fuzz suite drew at iteration ITER of seed SEED.
std::vector<march::TargetFault> random_target_set(Rng& rng);

}  // namespace pf::testing
