// Greedy delta-debugging shrinker for failing differential cases.
//
// Given a FuzzCase that a predicate judges FAILING, shrink_case greedily
// searches for a smaller case that still fails: normalize the execution
// mode, drop parameter tweaks, reduce the (R_def, U) grid toward a single
// point, and simplify the SOS operation by operation (candidates that are
// not well-formed SOSes are skipped, so every intermediate case is a valid
// experiment). Each accepted simplification restarts the pass list, so the
// result is 1-minimal: no single remaining simplification still fails.
//
// The predicate is called O(#components) times per accepted shrink; with
// the fuzz-sized grids (a handful of points) a full shrink costs a few
// dozen sweeps. The final case is rendered as a copy-pasteable repro
// (PF_TEST_SEED + defect_explorer command) for CI logs.
#pragma once

#include <functional>
#include <string>

#include "pf/testing/generators.hpp"

namespace pf::testing {

/// Returns true when the candidate case still FAILS (i.e. the bug is still
/// visible). Implementations should treat an exception from the stack under
/// test as a failure too.
using FailPredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase minimal;     ///< smallest failing case found
  int evaluations = 0;  ///< predicate calls spent
  int accepted = 0;     ///< simplifications that kept the failure
};

/// Greedily minimize `failing` under `still_fails`. `failing` is assumed to
/// fail (the predicate is not re-checked on entry).
ShrinkResult shrink_case(const FuzzCase& failing,
                         const FailPredicate& still_fails);

/// The failure report printed by fuzz suites: describe() of the minimal
/// case, the shrink statistics and the repro recipe.
std::string shrink_report(const ShrinkResult& result, uint64_t seed);

}  // namespace pf::testing
