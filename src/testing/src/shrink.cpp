#include "pf/testing/shrink.hpp"

#include <sstream>

namespace pf::testing {

namespace {

/// Try one candidate: accept it into `current` when it still fails.
bool try_candidate(FuzzCase& current, const FuzzCase& candidate,
                   const FailPredicate& still_fails, ShrinkResult& result) {
  ++result.evaluations;
  if (!still_fails(candidate)) return false;
  current = candidate;
  ++result.accepted;
  return true;
}

/// One pass over every single-component simplification. Returns true when
/// any candidate was accepted (the caller restarts until a fixpoint).
bool shrink_pass(FuzzCase& c, const FailPredicate& still_fails,
                 ShrinkResult& result) {
  // Execution-mode normalization: the minimal repro should be serial,
  // cold-started and on the default circuit path.
  if (c.threads != 1) {
    FuzzCase cand = c;
    cand.threads = 1;
    if (try_candidate(c, cand, still_fails, result)) return true;
  }
  if (c.warm_start) {
    FuzzCase cand = c;
    cand.warm_start = false;
    if (try_candidate(c, cand, still_fails, result)) return true;
  }
  if (c.circuit != analysis::CircuitMode::kReuse) {
    FuzzCase cand = c;
    cand.circuit = analysis::CircuitMode::kReuse;
    if (try_candidate(c, cand, still_fails, result)) return true;
  }

  // Drop parameter tweaks one at a time.
  for (size_t i = 0; i < c.tweaks.size(); ++i) {
    FuzzCase cand = c;
    cand.tweaks.erase(cand.tweaks.begin() + static_cast<long>(i));
    if (try_candidate(c, cand, still_fails, result)) return true;
  }

  // Reduce each axis toward a single sample: first try jumping straight to
  // one point (the common case — one grid cell disagrees), then dropping
  // individual samples.
  for (const auto axis : {&FuzzCase::r_axis, &FuzzCase::u_axis}) {
    const std::vector<double>& values = c.*axis;
    if (values.size() > 1) {
      for (size_t i = 0; i < values.size(); ++i) {
        FuzzCase cand = c;
        (cand.*axis).assign(1, values[i]);
        if (try_candidate(c, cand, still_fails, result)) return true;
      }
      for (size_t i = 0; i < values.size(); ++i) {
        FuzzCase cand = c;
        (cand.*axis).erase((cand.*axis).begin() + static_cast<long>(i));
        if (try_candidate(c, cand, still_fails, result)) return true;
      }
    }
  }

  // Simplify the SOS: drop operations one at a time, then the initial
  // states. Ill-formed candidates (a read whose digit no longer matches)
  // are skipped rather than evaluated.
  for (size_t i = 0; i < c.sos.ops.size(); ++i) {
    FuzzCase cand = c;
    cand.sos.ops.erase(cand.sos.ops.begin() + static_cast<long>(i));
    if (!sos_well_formed(cand.sos)) continue;
    if (try_candidate(c, cand, still_fails, result)) return true;
  }
  if (c.sos.initial_aggressor >= 0) {
    FuzzCase cand = c;
    cand.sos.initial_aggressor = -1;
    if (sos_well_formed(cand.sos) &&
        try_candidate(c, cand, still_fails, result))
      return true;
  }
  if (c.sos.initial_victim >= 0) {
    FuzzCase cand = c;
    cand.sos.initial_victim = -1;
    if (sos_well_formed(cand.sos) &&
        try_candidate(c, cand, still_fails, result))
      return true;
  }
  return false;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing,
                         const FailPredicate& still_fails) {
  ShrinkResult result;
  result.minimal = failing;
  while (shrink_pass(result.minimal, still_fails, result)) {
  }
  return result;
}

std::string shrink_report(const ShrinkResult& result, uint64_t seed) {
  std::ostringstream os;
  os << "shrunk to minimal failing case after " << result.evaluations
     << " evaluations (" << result.accepted << " accepted):\n"
     << "  " << result.minimal.describe() << "\n"
     << result.minimal.repro(seed);
  return os.str();
}

}  // namespace pf::testing
