#include "pf/testing/oracle.hpp"

#include <sstream>

#include "pf/analysis/robust.hpp"
#include "pf/march/coverage.hpp"
#include "pf/march/library.hpp"
#include "pf/spice/fault_injection.hpp"

namespace pf::testing {

using faults::Ffm;

std::optional<memsim::Guard> derive_guard(dram::OpenSite site, bool partial,
                                          double band_mid, double vdd) {
  if (!partial) return memsim::Guard::none();
  const bool high = band_mid > vdd / 2;
  switch (site) {
    case dram::OpenSite::kPrecharge:
    case dram::OpenSite::kBitLineOuter:
    case dram::OpenSite::kBitLineMid:
    case dram::OpenSite::kBitLineSense:
      return memsim::Guard::bit_line(high ? 1 : 0);
    case dram::OpenSite::kBitLineOuterComp:
      // The floating line is the COMPLEMENT bit line; its level maps to the
      // inverted raw level on the victim's true line.
      return memsim::Guard::bit_line(high ? 0 : 1);
    case dram::OpenSite::kIoPath:
      return memsim::Guard::buffer(high ? 1 : 0);
    case dram::OpenSite::kWordLine:
      // Uncontrollable floating gate: active as observed, but no march
      // operation changes it — modelled, but not mapped by the oracle
      // (detection depends only on whether the band was observed at all).
      return memsim::Guard::hidden(true);
    default:
      // Cell-internal opens (Opens 1-2) and the SA enable path have no
      // operation-controllable behavioral guard.
      return std::nullopt;
  }
}

namespace {

/// Execute `ffm`'s canonical SOS on a memory whose guard state is pre-set
/// to `satisfied` (ignored for kNone/kHidden guards) and return "" when the
/// deviation matches expectation (deviates iff sensitized), else a message.
std::string run_canonical(const memsim::Geometry& geometry, Ffm ffm,
                          const memsim::Guard& guard, bool satisfied) {
  const faults::FaultPrimitive fp = faults::canonical_fp(ffm);
  const faults::Sos& s = fp.sos;
  memsim::Memory m(geometry);
  m.inject({0, ffm, guard});
  if (s.initial_victim >= 0) m.set_cell(0, s.initial_victim);
  // Victim 0 sits on row 0 (true bit line), so victim-local guard values
  // equal raw levels.
  if (guard.kind == memsim::Guard::Kind::kBitLine)
    m.set_bit_line_raw(0, satisfied ? guard.value : 1 - guard.value);
  if (guard.kind == memsim::Guard::Kind::kBuffer)
    m.set_buffer_raw(satisfied ? guard.value : 1 - guard.value);

  const bool sensitized = guard.kind == memsim::Guard::Kind::kNone ||
                          (guard.kind == memsim::Guard::Kind::kHidden
                               ? guard.hidden_active
                               : satisfied);

  int last_read = -1;
  for (const faults::Op& op : s.ops) {
    if (op.is_read())
      last_read = m.read(0);
    else
      m.write(0, op.write_value());
  }
  // State faults have an operation-free SOS; any later access exposes them.
  // Touch another column so bit-line and buffer guard state stays as set
  // (address 1 is row 0 of column 1 — write of 0 leaves the buffer raw 0,
  // which only matters for buffer guards, handled above by presetting and
  // by SF guards never being buffer-kind in practice).
  if (s.ops.empty()) m.begin_atomic(), m.end_atomic();

  std::ostringstream why;
  const int expect_state =
      sensitized ? fp.faulty_state : s.expected_final_victim();
  if (m.cell(0) != expect_state)
    why << "final state " << m.cell(0) << ", expected " << expect_state;
  const int expect_read = sensitized ? fp.read_result : s.expected_read();
  if (expect_read >= 0 && last_read != expect_read)
    why << (why.str().empty() ? "" : "; ") << "final read " << last_read
        << ", expected " << expect_read;
  if (why.str().empty()) return "";
  std::ostringstream os;
  os << faults::ffm_name(ffm) << " canonical run ("
     << (sensitized ? "guard satisfied" : "guard unsatisfied")
     << "): " << why.str();
  return os.str();
}

/// The March-PF guarantee the oracle holds the behavioral layer to,
/// calibrated against the test's structure: March PF brackets its read
/// verifications with completing writes of BOTH polarities, so it fully
/// detects the guarded read-type partials (SF, RDF, IRF) regardless of the
/// guard level, and the transition faults whose guard level matches the
/// bit-line level their own sensitizing write leaves behind. Write
/// destructive and deceptive read faults are outside its 16N budget (March
/// SS covers them as full faults).
bool march_pf_detects_all(Ffm ffm, const memsim::Guard& guard) {
  switch (ffm) {
    case Ffm::kSF0:
    case Ffm::kSF1:
    case Ffm::kRDF0:
    case Ffm::kRDF1:
    case Ffm::kIRF0:
    case Ffm::kIRF1:
      // Guaranteed at every address for bit-line guards; for buffer guards
      // only the polarity-matched half of the addresses is guaranteed
      // (checked as detected_count > 0 by the caller).
      return guard.kind == memsim::Guard::Kind::kBitLine;
    case Ffm::kTFUp:
      return guard.kind == memsim::Guard::Kind::kBitLine && guard.value == 0;
    case Ffm::kTFDown:
      return guard.kind == memsim::Guard::Kind::kBitLine && guard.value == 1;
    default:
      return false;
  }
}

/// FFMs March PF is guaranteed to expose SOMEWHERE under a buffer guard.
bool march_pf_detects_some(Ffm ffm, const memsim::Guard& guard) {
  if (guard.kind != memsim::Guard::Kind::kBuffer) return false;
  switch (ffm) {
    case Ffm::kSF0:
    case Ffm::kSF1:
    case Ffm::kRDF0:
    case Ffm::kRDF1:
    case Ffm::kIRF0:
    case Ffm::kIRF1:
      return true;
    case Ffm::kTFUp:
      return guard.value == 0;
    case Ffm::kTFDown:
      return guard.value == 1;
    default:
      return false;
  }
}

}  // namespace

std::string check_behavioral_exposure(const memsim::Geometry& geometry,
                                      Ffm ffm, const memsim::Guard& guard) {
  std::string err = run_canonical(geometry, ffm, guard, /*satisfied=*/true);
  if (err.empty() && (guard.kind == memsim::Guard::Kind::kBitLine ||
                      guard.kind == memsim::Guard::Kind::kBuffer))
    err = run_canonical(geometry, ffm, guard, /*satisfied=*/false);
  return err;
}

TrialResult run_differential_trial(const FuzzCase& c,
                                   const OracleOptions& opts) {
  TrialResult t;
  const analysis::SweepSpec spec = c.sweep_spec();
  analysis::ExecutionPolicy policy;
  policy.threads = c.threads;
  policy.plan.circuit_mode = c.circuit;
  policy.plan.warm_start = c.warm_start;
  policy.retry = opts.retry;
  const analysis::RegionMap map = sweep_region(spec, policy);

  // --- 1. point referee: fresh rebuilds under an empty injection context ---
  if (opts.point_referee) {
    const auto lines = dram::floating_lines_for(spec.defect, spec.params);
    const dram::FloatingLine& line = lines[spec.floating_line_index];
    for (size_t iy = 0; iy < spec.r_axis.size() && t.ok; ++iy) {
      for (size_t ix = 0; ix < spec.u_axis.size() && t.ok; ++ix) {
        // The referee must never inherit an armed injection: its context
        // key stays empty and any stale thread-local context is dropped.
        spice::testing::clear_context();
        dram::Defect defect = spec.defect;
        defect.resistance = spec.r_axis[iy];
        analysis::ExperimentContext ctx;
        ctx.defect = dram::defect_name(defect);
        ctx.line = line.label;
        ctx.r_def = spec.r_axis[iy];
        ctx.u = spec.u_axis[ix];
        ctx.sos = spec.sos.to_string();
        const analysis::RobustOutcome ro =
            run_sos_robust(spec.params, defect, &line, spec.u_axis[ix],
                           spec.sos, opts.retry, ctx);
        const Ffm referee = !ro.solved ? Ffm::kSolveFailed
                            : ro.outcome.faulty ? ro.outcome.ffm
                                                : Ffm::kUnknown;
        const Ffm swept = map.grid().at(ix, iy);
        if (swept != referee) {
          std::ostringstream os;
          os << "cell (ix=" << ix << ", iy=" << iy
             << "; R=" << spec.r_axis[iy] << ", U=" << spec.u_axis[ix]
             << "): sweep classified " << faults::ffm_name(swept)
             << " but the fresh-rebuild referee says "
             << faults::ffm_name(referee);
          t.fail(os.str());
        } else if (ro.solved && ro.outcome.faulty &&
                   faults::classify(ro.outcome.observed) != ro.outcome.ffm) {
          std::ostringstream os;
          os << "cell (ix=" << ix << ", iy=" << iy << "): observed FP "
             << ro.outcome.observed.to_string()
             << " does not classify back to "
             << faults::ffm_name(ro.outcome.ffm);
          t.fail(os.str());
        }
        ++t.cells_checked;
      }
    }
  }

  // --- 2. taxonomy audit: partial status re-derived from the map ----------
  t.findings = identify_partial_faults(map);
  const pf::Interval domain = map.u_domain();
  const auto& u = spec.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (const analysis::PartialFaultFinding& f : t.findings) {
    bool any_proper = false;
    for (size_t iy = 0; iy < map.grid().height(); ++iy) {
      const pf::IntervalSet band = map.u_band(f.ffm, iy);
      if (!band.empty() && !band.covers(domain, step)) any_proper = true;
    }
    if (f.partial != any_proper) {
      std::ostringstream os;
      os << faults::ffm_name(f.ffm) << " reported "
         << (f.partial ? "partial" : "full")
         << " but the map's bands re-derive "
         << (any_proper ? "partial" : "full");
      t.fail(os.str());
    }
    if (analysis::is_completed(map, f.ffm) !=
        map.has_fully_covered_row(f.ffm))
      t.fail("is_completed disagrees with has_fully_covered_row");
  }

  // --- 3. behavioral agreement: memsim guard semantics + march detection --
  if (opts.behavioral) {
    for (const analysis::PartialFaultFinding& f : t.findings) {
      const double mid = 0.5 * (f.band_hull.lo + f.band_hull.hi);
      const std::optional<memsim::Guard> guard =
          derive_guard(spec.defect.site, f.partial, mid, spec.params.vdd);
      if (!guard) continue;
      const std::string err =
          check_behavioral_exposure(opts.geometry, f.ffm, *guard);
      if (!err.empty()) {
        t.fail("behavioral disagreement: " + err);
        continue;
      }
      // Any electrically observed static FFM, injected as a full fault,
      // must be caught by the complete test March SS.
      if (!march::evaluate_detection(march::march_ss(), opts.geometry, f.ffm,
                                     memsim::Guard::none())
               .detected_all)
        t.fail(std::string("March SS missed full ") +
               std::string(faults::ffm_name(f.ffm)));
      // The paper's claim: every completable partial fault in March PF's
      // repertoire is caught. The guarantee table is polarity-aware (see
      // march_pf_detects_all); FFMs outside it carry no March PF claim but
      // stay covered by the March SS full-fault check above.
      if (march_pf_detects_all(f.ffm, *guard)) {
        const march::DetectionOutcome d = march::evaluate_detection(
            march::march_pf(), opts.geometry, f.ffm, *guard);
        if (!d.detected_all) {
          std::ostringstream os;
          os << "March PF missed bit-line-guarded partial "
             << faults::ffm_name(f.ffm) << " (value=" << guard->value
             << "): " << d.detected_count << "/" << d.total_victims
             << ", first escape at " << d.first_escape;
          t.fail(os.str());
        }
      } else if (march_pf_detects_some(f.ffm, *guard)) {
        const march::DetectionOutcome d = march::evaluate_detection(
            march::march_pf(), opts.geometry, f.ffm, *guard);
        if (d.detected_count == 0) {
          std::ostringstream os;
          os << "March PF detected buffer-guarded partial "
             << faults::ffm_name(f.ffm) << " nowhere";
          t.fail(os.str());
        }
      }
      ++t.findings_checked;
    }
  }
  return t;
}

}  // namespace pf::testing
