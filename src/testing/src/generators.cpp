#include "pf/testing/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "pf/analysis/table1.hpp"
#include "pf/util/error.hpp"

namespace pf::testing {

using faults::CellRole;
using faults::Op;
using faults::Sos;

uint64_t fuzz_seed() {
  const char* env = std::getenv("PF_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const uint64_t parsed = std::strtoull(env, &end, 0);
    if (end != nullptr && *end == '\0') return parsed;
  }
  return kDefaultFuzzSeed;
}

int fuzz_iters(int default_iters) {
  const char* env = std::getenv("PF_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0)
      return static_cast<int>(parsed);
  }
  return default_iters;
}

std::string fuzz_banner(const std::string& suite, uint64_t seed, int iters) {
  std::ostringstream os;
  os << "[fuzz] suite=" << suite << " seed=" << seed << " iters=" << iters
     << "  (override with PF_TEST_SEED / PF_FUZZ_ITERS)";
  return os.str();
}

// --- DramParams perturbations ----------------------------------------------

namespace {

struct TweakTarget {
  const char* name;
  double dram::DramParams::* field;
};

// Multiplicative knobs: capacitances and timings. Device transconductances
// are perturbed through MosParams below; supplies stay fixed (the U axis
// and floating-line bounds are defined against them).
const TweakTarget kScalarTargets[] = {
    {"c_cell", &dram::DramParams::c_cell},
    {"c_ref", &dram::DramParams::c_ref},
    {"c_bl1", &dram::DramParams::c_bl1},
    {"c_bl3", &dram::DramParams::c_bl3},
    {"c_io", &dram::DramParams::c_io},
    {"t_access", &dram::DramParams::t_access},
    {"t_sense", &dram::DramParams::t_sense},
};

struct MosTweakTarget {
  const char* name;
  spice::MosParams dram::DramParams::* device;
};

const MosTweakTarget kMosTargets[] = {
    {"access.k", &dram::DramParams::access},
    {"sa_nmos.k", &dram::DramParams::sa_nmos},
};

}  // namespace

const std::vector<std::string>& tweakable_fields() {
  static const std::vector<std::string> fields = [] {
    std::vector<std::string> out;
    for (const TweakTarget& t : kScalarTargets) out.emplace_back(t.name);
    for (const MosTweakTarget& t : kMosTargets) out.emplace_back(t.name);
    return out;
  }();
  return fields;
}

dram::DramParams apply_tweaks(const std::vector<ParamTweak>& tweaks) {
  dram::DramParams p;
  for (const ParamTweak& tweak : tweaks) {
    bool applied = false;
    for (const TweakTarget& t : kScalarTargets)
      if (tweak.field == t.name) {
        p.*(t.field) *= tweak.factor;
        applied = true;
      }
    for (const MosTweakTarget& t : kMosTargets)
      if (tweak.field == t.name) {
        (p.*(t.device)).k *= tweak.factor;
        applied = true;
      }
    PF_CHECK_MSG(applied, "unknown DramParams tweak field '" << tweak.field
                                                            << "'");
  }
  return p;
}

std::vector<ParamTweak> random_tweaks(Rng& rng, int max_tweaks) {
  const auto& fields = tweakable_fields();
  std::vector<ParamTweak> out;
  if (max_tweaks <= 0) return out;
  const int n = static_cast<int>(rng.next_below(
      static_cast<uint64_t>(max_tweaks) + 1));
  std::vector<size_t> picked;
  for (int i = 0; i < n; ++i) {
    const size_t f = static_cast<size_t>(rng.next_below(fields.size()));
    if (std::find(picked.begin(), picked.end(), f) != picked.end()) continue;
    picked.push_back(f);
    out.push_back({fields[f], rng.next_double(0.85, 1.18)});
  }
  return out;
}

// --- SOS generation ---------------------------------------------------------

Sos random_sos(Rng& rng, const SosGenConfig& cfg) {
  Sos sos;
  // Tracked fault-free values (-1 = undefined).
  int victim = -1;
  int aggressor = -1;

  // Initializing states. The victim is initialized most of the time so that
  // read-ending (classifiable) sequences dominate.
  if (rng.next_double() < 0.85) {
    sos.initial_victim = static_cast<int>(rng.next_below(2));
    victim = sos.initial_victim;
  }
  if (cfg.allow_aggressor && rng.next_double() < 0.3) {
    sos.initial_aggressor = static_cast<int>(rng.next_below(2));
    aggressor = sos.initial_aggressor;
  }

  auto push_write = [&](CellRole role, bool completing) {
    Op op;
    op.kind = rng.next_bool() ? Op::Kind::kWrite1 : Op::Kind::kWrite0;
    op.target = role;
    op.completing = completing;
    (role == CellRole::kVictim ? victim : aggressor) = op.write_value();
    sos.ops.push_back(op);
  };
  auto push_read = [&](CellRole role) {
    const int value = role == CellRole::kVictim ? victim : aggressor;
    PF_CHECK(value >= 0);
    Op op;
    op.kind = Op::Kind::kRead;
    op.target = role;
    op.expected = value;
    sos.ops.push_back(op);
  };
  auto random_role = [&]() {
    return cfg.allow_aggressor && rng.next_double() < 0.25
               ? CellRole::kAggressorBl
               : CellRole::kVictim;
  };

  // Optional completing bracket: 1-2 writes ahead of the body, the paper's
  // [w..] prefix shape.
  if (cfg.allow_completing && rng.next_double() < 0.4) {
    const int n = 1 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < n; ++i) push_write(random_role(), /*completing=*/true);
  }

  const int body =
      static_cast<int>(rng.next_below(
          static_cast<uint64_t>(std::max(1, cfg.max_body_ops)) + 1));
  for (int i = 0; i < body; ++i) {
    const CellRole role = random_role();
    const int value = role == CellRole::kVictim ? victim : aggressor;
    if (value >= 0 && rng.next_bool())
      push_read(role);
    else
      push_write(role, /*completing=*/false);
  }
  // Bias toward classification-relevant endings: a final victim read when
  // the victim value is known.
  if (victim >= 0 && rng.next_double() < 0.6) push_read(CellRole::kVictim);

  // A sequence with no state at all has no fault-free expectation; anchor it.
  if (sos.initial_victim < 0 && sos.ops.empty()) {
    sos.initial_victim = static_cast<int>(rng.next_below(2));
  }
  return sos;
}

bool sos_well_formed(const faults::Sos& sos) {
  int victim = sos.initial_victim;
  int aggressor = sos.initial_aggressor;
  bool in_body = false;
  for (const Op& op : sos.ops) {
    if (op.completing && in_body) return false;  // bracket must be a prefix
    if (!op.completing) in_body = true;
    int& cell = op.target == CellRole::kVictim ? victim : aggressor;
    if (op.is_read()) {
      if (cell < 0 || op.expected != cell) return false;
      if (op.completing) return false;  // completing ops are writes
    } else {
      cell = op.write_value();
    }
  }
  return sos.initial_victim >= 0 || !sos.ops.empty();
}

// --- Full differential cases ------------------------------------------------

dram::Defect FuzzCase::defect() const {
  PF_CHECK(!r_axis.empty());
  return dram::Defect::open(site, r_axis.front());
}

analysis::SweepSpec FuzzCase::sweep_spec() const {
  analysis::SweepSpec spec;
  spec.params = params();
  spec.defect = defect();
  spec.floating_line_index = floating_line_index;
  spec.sos = sos;
  spec.r_axis = r_axis;
  spec.u_axis = u_axis;
  return spec;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << dram::defect_name(defect()) << ", SOS \"" << sos.to_string() << "\""
     << ", r_axis=[";
  for (size_t i = 0; i < r_axis.size(); ++i)
    os << (i ? ", " : "") << r_axis[i];
  os << "], u_axis=[";
  for (size_t i = 0; i < u_axis.size(); ++i)
    os << (i ? ", " : "") << u_axis[i];
  os << "], line=" << floating_line_index << ", threads=" << threads
     << ", circuit="
     << (circuit == analysis::CircuitMode::kReuse ? "reuse" : "rebuild")
     << (warm_start ? "+warm" : "");
  for (const ParamTweak& t : tweaks)
    os << ", " << t.field << "*=" << t.factor;
  return os.str();
}

std::string FuzzCase::repro(uint64_t seed) const {
  std::ostringstream os;
  os << "repro:\n"
     << "  PF_TEST_SEED=" << seed << "  # re-runs the whole fuzz suite\n"
     << "  case: " << describe() << "\n"
     << "  build/examples/defect_explorer " << dram::open_number(site) << " \""
     << sos.to_string() << "\" " << r_axis.size() << " " << u_axis.size()
     << "   # same (defect, SOS) family at default axes\n";
  return os.str();
}

void site_r_range(dram::OpenSite site, double* lo, double* hi) {
  switch (site) {
    case dram::OpenSite::kCell:
    case dram::OpenSite::kRefCell:
      *lo = 10e3;
      *hi = 1e6;
      return;
    case dram::OpenSite::kWordLine:
      *lo = 100e3;
      *hi = 1e9;
      return;
    default:
      *lo = 10e3;
      *hi = 10e6;
      return;
  }
}

FuzzCase random_case(Rng& rng, const CaseGenConfig& cfg) {
  static const std::vector<dram::OpenSite> kDefaultSites = {
      dram::OpenSite::kCell,          dram::OpenSite::kPrecharge,
      dram::OpenSite::kBitLineOuter,  dram::OpenSite::kBitLineMid,
      dram::OpenSite::kBitLineSense,  dram::OpenSite::kSenseAmp,
      dram::OpenSite::kIoPath,        dram::OpenSite::kBitLineOuterComp,
  };
  const std::vector<dram::OpenSite>& sites =
      cfg.sites.empty() ? kDefaultSites : cfg.sites;

  FuzzCase c;
  c.site = sites[rng.next_below(sites.size())];
  c.threads = cfg.threads;

  // SOS: canonical base catalogue or a random decoupled sequence.
  if (rng.next_double() < cfg.p_canonical_sos) {
    const auto bases = analysis::base_soses();
    c.sos = bases[rng.next_below(bases.size())];
    if (rng.next_double() < cfg.p_completing) {
      // Front-load a completing write, the paper's [w..] bracket.
      Op op;
      op.kind = rng.next_bool() ? Op::Kind::kWrite1 : Op::Kind::kWrite0;
      op.target = rng.next_bool() ? CellRole::kVictim : CellRole::kAggressorBl;
      op.completing = true;
      // Preserve well-formedness: a completing victim write redefines the
      // victim ahead of the body, so re-anchor the initial state digit-wise.
      Sos completed = c.sos;
      completed.ops.insert(completed.ops.begin(), op);
      if (sos_well_formed(completed)) c.sos = completed;
    }
  } else {
    SosGenConfig sg;
    sg.allow_completing = rng.next_double() < cfg.p_completing * 2;
    c.sos = random_sos(rng, sg);
  }

  // Axes: a short log window inside the site's meaningful range.
  double lo = 0.0, hi = 0.0;
  site_r_range(c.site, &lo, &hi);
  const double span = std::log10(hi / lo);
  const double w_lo = rng.next_double(0.0, span * 0.6);
  const double w_hi = rng.next_double(w_lo + span * 0.25, span);
  const int nr = cfg.min_r_points +
                 static_cast<int>(rng.next_below(static_cast<uint64_t>(
                     cfg.max_r_points - cfg.min_r_points + 1)));
  c.r_axis = pf::logspace(lo * std::pow(10.0, w_lo),
                          lo * std::pow(10.0, w_hi), nr);
  const int nu = cfg.min_u_points +
                 static_cast<int>(rng.next_below(static_cast<uint64_t>(
                     cfg.max_u_points - cfg.min_u_points + 1)));
  c.tweaks = random_tweaks(rng, cfg.max_tweaks);
  const dram::DramParams p = apply_tweaks(c.tweaks);
  c.u_axis = pf::linspace(0.0, p.vdd, nu);
  c.warm_start = false;
  c.circuit = analysis::CircuitMode::kReuse;
  return c;
}

std::vector<march::TargetFault> random_target_set(Rng& rng) {
  using march::TargetFault;
  const auto random_guard = [&rng] {
    switch (rng.next_below(4)) {
      case 0:
        return memsim::Guard::none();
      case 1:
        return memsim::Guard::bit_line(static_cast<int>(rng.next_below(2)));
      case 2:
        return memsim::Guard::buffer(static_cast<int>(rng.next_below(2)));
      default:
        return memsim::Guard::hidden(true);
    }
  };
  std::vector<TargetFault> targets;
  const auto& ffms = faults::all_ffms();
  const std::size_t n_single = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < n_single; ++i)
    targets.push_back(TargetFault::single(ffms[rng.next_below(ffms.size())],
                                          random_guard()));
  if (rng.next_below(3) == 0) {
    const auto& cfs = faults::all_coupling_faults();
    targets.push_back(TargetFault::coupled(cfs[rng.next_below(cfs.size())],
                                           random_guard()));
  }
  return targets;
}

}  // namespace pf::testing
