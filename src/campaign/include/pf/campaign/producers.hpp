// The repo's two multi-sweep drivers, rewritten as trivial CampaignSpec
// producers: instead of hand-rolled loops over sweeps (generate_table1's
// site x line x SOS nest, the completion example's sweep-then-search), each
// driver just DESCRIBES its jobs and lets the CampaignRunner own execution
// — journaling, kill -9 resume, retry/quarantine, cross-job dedup and
// session reuse come for free and behave identically for every driver.
//
// Both producers are golden-compatible: run through a campaign, the
// reassembled output is byte-identical to the pre-campaign implementation
// (generate_table1 / search_completing_ops_with_fallback) — sweeps restored
// from CSV reconstruct the exact RegionMap, analysis runs in a custom job
// with the same code path, and the final ordering is reproduced.
//
// The producers cover the wire JobSpec's parameter space: the reference
// DramParams (at the JobSpec temperature knob). Drivers needing bespoke
// parameter sets keep calling the analysis layer directly.
#pragma once

#include <vector>

#include "pf/analysis/completion.hpp"
#include "pf/analysis/table1.hpp"
#include "pf/campaign/runner.hpp"
#include "pf/campaign/spec.hpp"
#include "pf/march/coverage.hpp"
#include "pf/march/search.hpp"

namespace pf::campaign {

/// Table 1 as a campaign: one sweep job per (site, floating line, base SOS)
/// named "open{N}-line{L}-sos{S}", plus one custom analysis job per site
/// ("open{N}-analysis") depending on that site's sweeps — it identifies the
/// partial faults and runs the completion searches, exactly like the
/// matching slice of generate_table1. Sites/grid/ranges come from
/// `options`; options.exec drives the completion probes inside the analysis
/// jobs (the sweeps themselves run under CampaignOptions::exec).
CampaignSpec table1_campaign(const analysis::Table1Options& options = {});

/// Reassemble Table1Rows from a finished table1_campaign run. Byte-identical
/// to generate_table1(reference params, same options). Throws pf::Error when
/// an analysis job did not reach kJobDone.
std::vector<analysis::Table1Row> table1_rows_from_result(
    const CampaignSpec& spec, const CampaignResult& result);

/// Convenience wrapper: build the campaign, run it, reassemble the rows.
/// `result_out` (optional) receives the full campaign result (stats, per-job
/// states) for callers that want the robustness telemetry too.
std::vector<analysis::Table1Row> generate_table1_via_campaign(
    const analysis::Table1Options& options, const CampaignOptions& campaign,
    CampaignResult* result_out = nullptr);

struct CompletionCampaignOptions {
  faults::Ffm ffm = faults::Ffm::kUnknown;  ///< the partial FFM to complete
  size_t probe_u_points = 5;
  int max_prefix_ops = 3;
  size_t fallback_windows = 4;
  /// Exec for the completion probes (the base-map sweep runs under
  /// CampaignOptions::exec).
  analysis::ExecutionPolicy exec;
};

/// Completion search as a two-job campaign: "base-map" (the sweep whose
/// region map seeds the search) and "completion" (a custom job running
/// search_completing_ops_with_fallback on the reconstructed map).
CampaignSpec completion_campaign(const service::JobSpec& sweep,
                                 const CompletionCampaignOptions& options);

/// Extract the CompletionResult from a finished completion_campaign run.
/// Identical to calling search_completing_ops_with_fallback on the same
/// map. Throws pf::Error when the completion job did not reach kJobDone.
analysis::CompletionResult completion_from_result(const CampaignResult& result);

struct CoverageCampaignOptions {
  memsim::Geometry geometry{8, 8};
  /// Engine the per-test jobs evaluate with (kPlane: the whole class
  /// catalogue costs one march pass per test).
  march::MemEngine engine = march::MemEngine::kPlane;
  /// Tests to evaluate; empty = naive {m(w1,r1)} plus the standard library.
  std::vector<march::MarchTest> tests;
  /// Fault classes; empty = the paper's Table 1 partial-fault catalogue.
  std::vector<march::PopulationClass> classes;
};

/// Behavioral coverage matrix as a campaign: one custom job per march test
/// ("coverage-{test}") evaluating the whole class catalogue against the
/// population engine, plus a "coverage-summary" job that aggregates the
/// detected_all counts. Crash-safe like every campaign: finished tests are
/// restored from the journal on resume.
CampaignSpec coverage_campaign(const CoverageCampaignOptions& options = {});

/// One test's slice of a finished coverage_campaign run.
struct CoverageCampaignEntry {
  std::string test;
  std::string engine;
  std::uint64_t march_passes = 0;
  std::uint64_t cell_steps = 0;
  struct ClassResult {
    std::string name;
    march::DetectionOutcome outcome;
  };
  std::vector<ClassResult> classes;
};

/// Reassemble the coverage matrix from a finished coverage_campaign run, in
/// the spec's test order. Throws pf::Error when a coverage job did not
/// reach kJobDone.
std::vector<CoverageCampaignEntry> coverage_from_result(
    const CampaignSpec& spec, const CampaignResult& result);

struct SearchCampaignOptions {
  memsim::Geometry geometry{4, 2};
  /// Engine scoring candidates inside each search job (kPlane: one march
  /// pass per candidate); the scalar oracle check stays in the tests.
  march::MemEngine engine = march::MemEngine::kPlane;
  std::uint64_t seed = 0x5EA12C4ULL;
  std::uint64_t max_evaluations = 20000;
  /// Target sets to optimize; empty = march::standard_target_sets().
  std::vector<march::NamedTargetSet> sets;
  /// When non-empty, every improvement of a job's best incumbent is
  /// journaled to "<incumbent_dir>/<set-slug>.incumbent" (tmp + rename,
  /// march notation) and a resumed job re-seeds its search from that file —
  /// a kill -9 mid-search loses at most the work since the last
  /// improvement, not the incumbent itself. Empty disables the side
  /// journal (the campaign's own DONE journal still makes finished jobs
  /// crash-safe).
  std::string incumbent_dir;
};

/// March-test search as a campaign: one resumable custom job per target set
/// ("search-{set}") running search_march seeded from greedy, March PF and
/// the job's journaled incumbent (if any), plus a "search-summary" job that
/// counts strictly-shorter-than-greedy wins and complete certificates.
CampaignSpec search_campaign(const SearchCampaignOptions& options = {});

/// One target set's slice of a finished search_campaign run.
struct SearchCampaignEntry {
  std::string set;
  march::MarchTest test;
  bool success = false;
  int ops_per_cell = 0;
  int greedy_ops_per_cell = 0;
  bool shorter_than_greedy = false;
  bool certificate_complete = false;
  std::size_t witnesses = 0;
  std::uint64_t evaluations = 0;  ///< search + certification march passes
};

/// Reassemble per-set results from a finished search_campaign run, in the
/// spec's set order. Throws pf::Error when a search job did not reach
/// kJobDone.
std::vector<SearchCampaignEntry> search_from_result(
    const CampaignSpec& spec, const CampaignResult& result);

}  // namespace pf::campaign
