// A campaign: a DAG of sweep jobs plus in-process analysis jobs, the unit
// the CampaignRunner executes, journals and resumes. The ROADMAP's
// pf::campaign layer — the Table 1 driver, the completion search and
// every planned scenario item (corner matrices, fault populations) are
// expressed as producers of this one spec type.
//
// Two job kinds:
//
//   kSweep   a pf::service::JobSpec — the same wire-validated unit
//            pf_served runs — producing a RegionMap CSV, content-addressed
//            by JobSpec::cache_key() for cross-job dedup.
//   kCustom  an in-process function consuming its dependencies' results
//            (RegionMaps reconstructed from their canonical CSV, or
//            upstream custom payloads) and returning a JSON payload. Used
//            for analysis stages (partial-fault classification, completion
//            search). Not serializable: a spec FILE can only contain sweep
//            jobs; producers build custom jobs programmatically.
//
// Determinism note: a custom job always sees dependency maps
// reconstructed from their CSV bytes — never the richer in-memory map of
// a sweep that happened to run in the same process — so its output is
// identical whether the dependency was computed, deduped from the cache,
// or restored by a resume.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pf/analysis/region.hpp"
#include "pf/service/job.hpp"
#include "pf/service/json.hpp"

namespace pf::campaign {

/// What a custom job sees of its dependencies.
class DepContext {
 public:
  virtual ~DepContext() = default;
  /// The RegionMap of a SWEEP dependency (CSV-reconstructed; empty solve
  /// stats). Throws pf::Error for an id that is not a declared dependency
  /// or not a sweep job.
  virtual const analysis::RegionMap& map(const std::string& job_id) const = 0;
  /// The payload of a CUSTOM dependency (what its function returned).
  /// Throws pf::Error for an id that is not a declared custom dependency.
  virtual const service::Json& payload(const std::string& job_id) const = 0;
};

/// Body of a custom job. The returned JSON is the job's result: journaled
/// in its DONE record (so a resume restores it without re-running) and
/// visible to dependents via DepContext::payload. Throw to fail the job
/// (bounded retry, then terminal quarantine like any other job).
using CustomJobFn = std::function<service::Json(const DepContext&)>;

struct CampaignJob {
  enum class Kind { kSweep, kCustom };

  std::string id;  ///< unique, [A-Za-z0-9._-]{1,64} (journal/filename safe)
  Kind kind = Kind::kSweep;
  std::vector<std::string> deps;  ///< ids that must be kJobDone first

  service::JobSpec sweep;  ///< kSweep payload
  CustomJobFn custom;      ///< kCustom payload
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<CampaignJob> jobs;

  /// Reject malformed campaigns before anything runs: empty/duplicate/
  /// ill-formed ids, unknown or self dependencies, a custom job without a
  /// function, and dependency cycles (the error names the jobs on the
  /// cycle). Consults the dep_cycle injection site. Throws pf::Error.
  void validate() const;

  /// Indices of `jobs` in a deterministic topological order: among ready
  /// jobs, declaration order wins. Calls validate().
  std::vector<size_t> topo_order() const;

  /// Identity of this campaign for the journal header: folds every job's
  /// id, kind, dependencies and (for sweeps) result cache key. Custom
  /// jobs fold as opaque "custom" — the function itself cannot be
  /// fingerprinted, so a producer must keep a custom job's body
  /// deterministic for a given id if journals are to be resumed across
  /// processes (ours are: they are pure functions of their declared
  /// dependencies).
  uint64_t fingerprint() const;

  /// JSON encoding of a sweep-only campaign:
  ///   {"name": ..., "jobs": [{"id":..., "deps":[...], "job":{JobSpec}}]}
  /// Throws pf::Error if any job is kCustom (not serializable).
  service::Json to_json() const;

  /// Parse + validate a campaign document. JobSpec objects go through the
  /// same admission bounds as the wire (service::JobSpec::from_json).
  /// Throws pf::ParseError on malformed input; also runs validate().
  static CampaignSpec from_json(const service::Json& json,
                                const service::JobLimits& limits = {});

  /// from_json over a file's contents. Throws pf::Error when unreadable.
  static CampaignSpec load_file(const std::string& path,
                                const service::JobLimits& limits = {});
};

}  // namespace pf::campaign
