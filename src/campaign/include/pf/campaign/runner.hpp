// CampaignRunner: executes a CampaignSpec's job DAG with robustness as
// the design center.
//
//   * One resumable campaign journal (pf/campaign/journal.hpp): per-job
//     BEGIN / DONE / FAILED records, so kill -9 at any point resumes
//     exactly where it died — DONE jobs are restored (sweeps from the
//     result cache by key, custom jobs from the journaled payload),
//     FAILED jobs stay quarantined, the interrupted job re-runs (its own
//     sweep journal resumes its completed grid points).
//   * Per-job failure isolation: a failing job gets max_job_attempts
//     bounded retries with exponential backoff; exhausting them records
//     kJobFailed with the error context, its transitive dependents are
//     skipped as kJobBlocked, and every independent job still runs to
//     completion. Only pf::CancelledError aborts the whole campaign.
//   * Cross-job dedup: two jobs with the same result fingerprint
//     (JobSpec::cache_key) compute once — via the persistent ResultCache
//     when a store is configured, via an in-memory memo always — and the
//     hit is journaled as such ("cached": true).
//   * Shared-prefix session reuse: sweep jobs in the same row-family
//     (defect topology + temperature) hand their compiled SosSession from
//     job to job through an analysis::SessionCache, snapshot cache intact.
//
// Jobs are dispatched in deterministic topological order, one at a time —
// per-job parallelism comes from ExecutionPolicy::threads inside
// sweep_region, which keeps the journal order and every result
// bit-identical run to run. With a socket_path configured, sweep jobs are
// instead submitted to a running pf_served (absorbing busy rejections via
// submit_job_wait); custom jobs always run in-process.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "pf/analysis/execution.hpp"
#include "pf/campaign/spec.hpp"
#include "pf/service/json.hpp"

namespace pf::campaign {

/// Failure-isolation state machine (DESIGN.md §12):
///
///   kJobPending -> kJobRunning -> kJobDone
///                       |    \-> (retry, bounded) -> kJobFailed
///   kJobPending -> kJobBlocked   (a dependency is kJobFailed/kJobBlocked)
enum class JobState { kJobPending, kJobRunning, kJobDone, kJobFailed,
                      kJobBlocked };

const char* job_state_name(JobState state);

struct JobResult {
  JobState state = JobState::kJobPending;
  std::string key;     ///< sweep jobs: 16-hex result cache key
  std::string sha256;  ///< sweep jobs: result content hash
  std::string csv;     ///< sweep jobs: the RegionMap CSV
  service::Json detail;  ///< DONE detail / FAILED error context (journaled)
  bool cached = false;   ///< deduped from the result cache / memo
  bool resumed = false;  ///< restored from the campaign journal
  int attempts = 0;      ///< execution attempts this run (0 when restored)
};

struct CampaignStats {
  size_t done = 0;
  size_t failed = 0;
  size_t blocked = 0;
  size_t dedup_hits = 0;     ///< sweep results served without computing
  size_t resumed = 0;        ///< jobs restored from the campaign journal
  size_t retries = 0;        ///< attempts beyond the first, over all jobs
  size_t journal_dropped = 0;      ///< corrupt journal rows dropped
  size_t journal_quarantined = 0;  ///< unreadable journals moved aside
  size_t session_hits = 0;   ///< SessionCache take() hits (shared prefix)
  size_t session_misses = 0;
};

/// Job-level progress event (the CLI's watch output).
struct CampaignEvent {
  enum class Kind { kBegin, kRetry, kDone, kFailed, kBlocked, kResumed };
  Kind kind = Kind::kBegin;
  std::string job;
  int attempt = 0;       ///< on kBegin/kRetry
  bool cached = false;   ///< on kDone
  std::string message;   ///< error context on kRetry/kFailed/kBlocked
  size_t finished = 0;   ///< jobs in a terminal state so far
  size_t total = 0;
};

struct CampaignOptions {
  /// Result store root (the pf_served layout: cache/ + jobs/). Empty: no
  /// persistent cache — dedup falls back to the in-memory memo and
  /// interrupted sweep jobs lose their point-level progress.
  std::string store_root;

  /// Campaign journal path. Empty: no job-level checkpointing.
  std::string journal_path;

  /// Restore journaled results instead of recomputing (on by default; off
  /// forces a cold re-run into the same journal).
  bool resume = true;

  /// Re-attempt journaled FAILED jobs on resume instead of keeping them
  /// terminally quarantined.
  bool retry_failed = false;

  /// The one ExecutionPolicy every local sweep job runs under (threads,
  /// solver retry, engine plan, cancellation, deadline). Job-level wire
  /// knobs (JobSpec::threads etc.) apply only in socket mode, where the
  /// server owns execution. The policy's cancel/deadline bound the WHOLE
  /// campaign (first-arm-wins, like generate_table1's multi-sweep budget).
  analysis::ExecutionPolicy exec;

  /// Bounded per-job retry: total attempts per job (>= 1) and the backoff
  /// before attempt k, backoff_ms * 2^(k-2) milliseconds.
  int max_job_attempts = 2;
  double backoff_ms = 0.0;

  /// Non-empty: submit sweep jobs to the pf_served at this socket instead
  /// of running them in-process (busy rejections absorbed with capped
  /// backoff). Custom jobs still run locally.
  std::string socket_path;

  /// Job-level progress hook.
  std::function<void(const CampaignEvent&)> on_event;
};

struct CampaignResult {
  std::map<std::string, JobResult> jobs;  ///< by job id
  CampaignStats stats;

  /// Every job reached kJobDone.
  bool all_done() const;

  /// Deterministic human/machine-readable summary: one line per job in
  /// topological order (id, state, key, sha / failure context), then the
  /// stats. Byte-identical for byte-identical outcomes — the smoke test's
  /// A/B artifact.
  std::string report(const CampaignSpec& spec) const;
};

/// Execute the campaign. Throws pf::Error on an invalid spec (including
/// dependency cycles), pf::CancelledError when the policy's token trips
/// (the journal keeps everything finished so far). Per-job failures do
/// NOT throw — they are isolated into kJobFailed/kJobBlocked states.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options);

}  // namespace pf::campaign
