// Crash-safe campaign journal — the job-level analog of the sweep
// journal's v2 format (pf/analysis/checkpoint.hpp), one level up: where a
// sweep journal checkpoints grid POINTS, a campaign journal checkpoints
// JOBS, so a kill -9 at any moment costs at most the in-flight job's
// un-journaled grid points (which that job's own sweep journal covers).
//
// Format (CSV-ish; the detail field is a single-line JSON document and
// may itself contain commas, so rows are parsed positionally: the first
// three comma fields, the last comma field, and everything between is the
// detail):
//
//   # pf-campaign-journal v1 fingerprint=<16 hex>
//   seq,event,job,detail,crc
//   1,BEGIN,open4-line0-sos0,{},1a2b3c4d
//   2,DONE,open4-line0-sos0,{"key":"...","sha256":"...","cached":false},...
//   5,FAILED,flaky-job,{"error":"...","attempts":2},...
//   # pf-campaign-journal END fingerprint=<16 hex>
//
// The same three crash-safety rules as journal v2 apply:
//   * the header fingerprint (CampaignSpec::fingerprint) pins the journal
//     to one campaign; a mismatch is a caller error, an unreadable header
//     quarantines the file to <path>.corrupt[.N] and restarts fresh,
//   * every record carries a CRC-32 of its payload; a torn or bit-rotted
//     row is dropped (counted, never trusted) and the affected job simply
//     re-runs — resume is lossless minus the damaged rows,
//   * the END trailer is written only when the campaign ran to completion,
//     so its absence distinguishes "crashed mid-campaign" from "done".
//
// Record semantics (last occurrence wins per job, file is chronological):
//   BEGIN   the job started an execution attempt sequence. A BEGIN with no
//           later terminal record marks the job the crash interrupted.
//   DONE    the job completed; detail holds what a resume needs (sweep:
//           cache key + result sha + cached flag; custom: the payload).
//   FAILED  the job exhausted its retry budget; detail holds the error
//           context. Resume keeps it quarantined (terminal) unless the
//           runner is told to retry failed jobs.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pf/campaign/spec.hpp"
#include "pf/service/json.hpp"

namespace pf::campaign {

class CampaignJournal {
 public:
  enum class Event { kBegin, kDone, kFailed };

  struct Record {
    uint64_t seq = 0;
    Event event = Event::kBegin;
    std::string job;
    service::Json detail;
  };

  struct LoadResult {
    /// Last terminal (DONE/FAILED) record per job id.
    std::map<std::string, Record> terminal;
    /// Jobs with a BEGIN but no terminal record — interrupted mid-run.
    std::vector<std::string> interrupted;
    uint64_t max_seq = 0;      ///< highest sequence number seen
    size_t dropped = 0;        ///< corrupt/truncated rows dropped
    bool clean_end = false;    ///< END trailer present and last
    bool quarantined = false;  ///< unreadable journal moved to .corrupt[.N]
  };

  /// Campaign identity for the header (CampaignSpec::fingerprint).
  static uint64_t fingerprint(const CampaignSpec& spec);

  /// Recover a journal. Missing/empty file -> empty result. Unreadable
  /// header -> quarantine + empty result. Fingerprint mismatch -> throws
  /// pf::Error (the journal belongs to a different campaign; delete it to
  /// start over). Corrupt rows are dropped and counted.
  static LoadResult load(const std::string& path, const CampaignSpec& spec);

  /// Open for append, writing the v1 header if the file is fresh (after
  /// the same quarantine probe as load). `next_seq` continues the loaded
  /// sequence (LoadResult::max_seq + 1) so records stay totally ordered
  /// across resumes.
  CampaignJournal(const std::string& path, const CampaignSpec& spec,
                  uint64_t next_seq = 1);

  /// Append one record (thread-safe, flushed). The torn_campaign_journal
  /// injection site truncates the write mid-payload, leaving a row the
  /// next load must drop.
  void begin(const std::string& job);
  void done(const std::string& job, const service::Json& detail);
  void failed(const std::string& job, const service::Json& detail);

  /// Write the END trailer (idempotent).
  void finalize();

  size_t records_appended() const { return records_appended_; }

 private:
  void append(Event event, const std::string& job,
              const service::Json& detail);

  std::ofstream out_;
  std::mutex mu_;
  uint64_t fingerprint_ = 0;
  uint64_t next_seq_ = 1;
  size_t records_appended_ = 0;
  bool finalized_ = false;
};

}  // namespace pf::campaign
