// Deterministic fault injection for the CAMPAIGN layer — the analog of
// pf/service/fault_injection.hpp one level further up the stack. The
// solver hooks prove retry/degradation, the service hooks prove cache
// crash-safety; these prove the campaign's failure-isolation story: a job
// that fails deterministically, a campaign-journal record torn mid-write,
// and a dependency cycle reported at validation, each on demand.
//
// Faults are armed per *site*, optionally scoped to one job id, with a
// firing budget: "site[=job][:n]" fires the first n matching
// consultations (default 1) and is inert afterwards. Scoping plus a
// budget lets a test make exactly one job fail exactly max_attempts
// times — the terminal-quarantine path — while every other job runs
// clean. Arming is process-global via ScopedCampaignFault (RAII,
// in-process tests) or the PF_CAMPAIGN_FAULTS environment variable
// (forked pf_campaign binaries), read once at campaign start.
//
// Sites:
//   job_fail_once         the runner throws pf::Error at the start of a
//                         matching job attempt (before any sweep work).
//                         n = 1 proves retry; n >= max_attempts proves
//                         terminal quarantine + dependent blocking.
//   torn_campaign_journal CampaignJournal::append writes only half the
//                         record's payload — the on-disk shape of a
//                         kill -9 mid-append. The row fails its CRC on
//                         the next load and is dropped, not trusted.
//   dep_cycle             CampaignSpec::validate reports a dependency
//                         cycle even on an acyclic spec, driving the
//                         cycle-rejection path end to end (runner + CLI).
#pragma once

#include <string>

namespace pf::campaign::testing {

inline constexpr const char* kJobFailOnce = "job_fail_once";
inline constexpr const char* kTornCampaignJournal = "torn_campaign_journal";
inline constexpr const char* kDepCycle = "dep_cycle";

/// RAII arm/disarm, spec format "site[=job][:n],site[=job][:n]...".
/// n = how many matching consultations fire (1-based budget, default 1).
/// Replaces any previously armed plan; disarms on destruction.
class ScopedCampaignFault {
 public:
  explicit ScopedCampaignFault(const std::string& spec);
  ~ScopedCampaignFault();
  ScopedCampaignFault(const ScopedCampaignFault&) = delete;
  ScopedCampaignFault& operator=(const ScopedCampaignFault&) = delete;
};

/// Arm from a spec string without RAII (startup path for forked runners).
/// An empty spec disarms everything.
void arm_from_spec(const std::string& spec);

/// Arm from the PF_CAMPAIGN_FAULTS environment variable, if set.
void arm_from_env();

/// Consult a site for `arg` (the job id; empty for site-wide sites).
/// Returns true while the matching plan's firing budget lasts — the caller
/// must then fail in its documented way. Always false while disarmed —
/// one mutex-free atomic check.
bool should_fail(const char* site, const std::string& arg);

/// Faults actually fired since the last arm.
size_t faults_fired();

}  // namespace pf::campaign::testing
