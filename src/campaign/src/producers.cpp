#include "pf/campaign/producers.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>

#include "pf/dram/defect.hpp"
#include "pf/march/library.hpp"
#include "pf/util/error.hpp"
#include "pf/util/grid.hpp"
#include "pf/util/log.hpp"

namespace pf::campaign {
namespace {

using dram::OpenSite;
using faults::Ffm;
using faults::Sos;
using service::Json;
using service::JsonArray;
using service::JsonObject;

/// Inverse of dram::open_number for the sites a JobSpec can express
/// (service/job.cpp keeps the same table in its anonymous namespace).
OpenSite site_for_number(int n) {
  switch (n) {
    case 0: return OpenSite::kBitLineOuterComp;
    case 1: return OpenSite::kCell;
    case 2: return OpenSite::kRefCell;
    case 3: return OpenSite::kPrecharge;
    case 4: return OpenSite::kBitLineOuter;
    case 5: return OpenSite::kBitLineMid;
    case 6: return OpenSite::kBitLineSense;
    case 7: return OpenSite::kSenseAmp;
    case 8: return OpenSite::kIoPath;
    case 9: return OpenSite::kWordLine;
    default: throw pf::Error("campaign: bad open number " + std::to_string(n));
  }
}

std::string sweep_job_id(int open_number, size_t line, size_t sos) {
  return "open" + std::to_string(open_number) + "-line" +
         std::to_string(line) + "-sos" + std::to_string(sos);
}

std::string analysis_job_id(int open_number) {
  return "open" + std::to_string(open_number) + "-analysis";
}

/// The R_def range generate_table1 analyzes for a site.
void site_r_range(OpenSite site, const analysis::Table1Options& options,
                  double* r_min, double* r_max) {
  const bool cell_internal =
      site == OpenSite::kCell || site == OpenSite::kRefCell;
  *r_min = options.r_min;
  *r_max = cell_internal ? options.r_max_cell : options.r_max_default;
  if (site == OpenSite::kWordLine) {
    *r_min = options.r_min_wordline;
    *r_max = options.r_max_wordline;
  }
}

Json row_to_json(const analysis::Table1Row& row) {
  JsonObject obj;
  obj["sim_ffm"] = Json(std::string(faults::ffm_name(row.sim_ffm)));
  obj["com_ffm"] = Json(std::string(faults::ffm_name(row.com_ffm)));
  obj["open"] = Json(dram::open_number(row.site));
  obj["line"] = Json(row.initialized_voltage);
  obj["min_r_def"] = Json(row.min_r_def);
  obj["band_coverage"] = Json(row.band_coverage);
  obj["completable"] = Json(row.completable);
  if (row.completable) obj["completed"] = Json(row.completed.to_string());
  return Json(std::move(obj));
}

analysis::Table1Row row_from_json(const Json& json) {
  analysis::Table1Row row;
  row.sim_ffm = faults::ffm_by_name(json.get("sim_ffm").as_string());
  row.com_ffm = faults::ffm_by_name(json.get("com_ffm").as_string());
  row.site = site_for_number(int(json.get("open").as_number()));
  row.initialized_voltage = json.get("line").as_string();
  row.min_r_def = json.get("min_r_def").as_number();
  row.band_coverage = json.get("band_coverage").as_number();
  row.completable = json.get("completable").as_bool();
  if (row.completable)
    row.completed = faults::FaultPrimitive::parse(json.get("completed")
                                                      .as_string());
  return row;
}

/// One site's slice of generate_table1's analysis: identify the partial
/// faults on every (line, SOS) map, dedup per (FFM, line label) — the
/// original dedups on (FFM, site, line label) over a global row list, which
/// per-site slicing reproduces exactly — and run the completion search.
Json analyze_site(const DepContext& ctx, OpenSite site,
                  const analysis::Table1Options& options) {
  const dram::DramParams params;  // the wire JobSpec's reference params
  const dram::Defect proto = dram::Defect::open(site, 1e6);
  const auto lines = dram::floating_lines_for(proto, params);
  const std::vector<Sos> soses = analysis::base_soses();
  const int number = dram::open_number(site);

  std::vector<analysis::Table1Row> rows;
  for (size_t li = 0; li < lines.size(); ++li) {
    for (size_t si = 0; si < soses.size(); ++si) {
      const analysis::RegionMap& map = ctx.map(sweep_job_id(number, li, si));
      if (map.failed_points() > 0)
        PF_LOG_INFO("table1 sweep " << dram::defect_name(proto) << " / "
                                    << lines[li].label << " / "
                                    << soses[si].to_string()
                                    << ": observed only "
                                    << 100.0 * map.observed_fraction()
                                    << "% of the grid ("
                                    << map.failed_points()
                                    << " unsolved points)");
      for (const analysis::PartialFaultFinding& finding :
           analysis::identify_partial_faults(map)) {
        if (!finding.partial || finding.ffm == Ffm::kUnknown) continue;
        const bool dup = std::any_of(
            rows.begin(), rows.end(), [&](const analysis::Table1Row& r) {
              return r.sim_ffm == finding.ffm &&
                     r.initialized_voltage == lines[li].label;
            });
        if (dup) continue;
        PF_LOG_INFO("partial " << faults::ffm_name(finding.ffm) << " at "
                               << dram::defect_name(proto) << " / "
                               << lines[li].label);
        analysis::Table1Row row;
        row.sim_ffm = finding.ffm;
        row.com_ffm = faults::complement_ffm(finding.ffm);
        row.site = site;
        row.initialized_voltage = lines[li].label;
        row.min_r_def = finding.min_r_def;
        row.band_coverage = finding.best_coverage;

        analysis::CompletionSpec cspec;
        cspec.params = params;
        cspec.defect = proto;
        cspec.floating_line_index = li;
        cspec.base.sos = soses[si];
        cspec.probe_u = pf::linspace(lines[li].min_v, lines[li].max_v,
                                     options.probe_u_points);
        cspec.max_prefix_ops = options.max_prefix_ops;
        cspec.exec = options.exec;
        cspec.exec.journal_path.clear();  // probes are not journaled
        const analysis::CompletionResult comp =
            analysis::search_completing_ops_with_fallback(
                cspec, map, finding.ffm, /*rows_per_window=*/1,
                options.fallback_windows);
        row.completable = comp.possible;
        if (comp.possible) row.completed = comp.completed;
        rows.push_back(std::move(row));
      }
    }
  }

  JsonArray out;
  for (const analysis::Table1Row& row : rows) out.push_back(row_to_json(row));
  return Json(std::move(out));
}

}  // namespace

CampaignSpec table1_campaign(const analysis::Table1Options& options) {
  const dram::DramParams params;
  CampaignSpec spec;
  spec.name = "table1";
  for (const OpenSite site : options.sites) {
    const dram::Defect proto = dram::Defect::open(site, 1e6);
    const auto lines = dram::floating_lines_for(proto, params);
    const int number = dram::open_number(site);
    double r_min = 0.0, r_max = 0.0;
    site_r_range(site, options, &r_min, &r_max);

    CampaignJob analysis_job;
    analysis_job.id = analysis_job_id(number);
    analysis_job.kind = CampaignJob::Kind::kCustom;
    for (size_t li = 0; li < lines.size(); ++li) {
      size_t si = 0;
      for (const Sos& sos : analysis::base_soses()) {
        CampaignJob job;
        job.id = sweep_job_id(number, li, si);
        job.kind = CampaignJob::Kind::kSweep;
        job.sweep.defect_kind = "open";
        job.sweep.open_site = number;
        job.sweep.floating_line_index = li;
        job.sweep.sos_text = sos.to_string();
        job.sweep.r_points = options.r_points;
        job.sweep.u_points = options.u_points;
        job.sweep.r_min = r_min;
        job.sweep.r_max = r_max;
        job.sweep.threads = options.exec.threads;
        analysis_job.deps.push_back(job.id);
        spec.jobs.push_back(std::move(job));
        ++si;
      }
    }
    const analysis::Table1Options opts = options;  // closure-owned copy
    analysis_job.custom = [site, opts](const DepContext& ctx) {
      return analyze_site(ctx, site, opts);
    };
    spec.jobs.push_back(std::move(analysis_job));
  }
  return spec;
}

std::vector<analysis::Table1Row> table1_rows_from_result(
    const CampaignSpec& spec, const CampaignResult& result) {
  std::vector<analysis::Table1Row> rows;
  // Concatenate per-site row lists in site (declaration) order: that is the
  // exact pre-sort sequence generate_table1 builds, so the final std::sort
  // — tie order and all — reproduces its output byte for byte.
  for (const CampaignJob& job : spec.jobs) {
    if (job.kind != CampaignJob::Kind::kCustom) continue;
    const auto it = result.jobs.find(job.id);
    PF_CHECK_MSG(it != result.jobs.end() &&
                     it->second.state == JobState::kJobDone,
                 "campaign job \"" << job.id << "\" did not complete ("
                                   << (it == result.jobs.end()
                                           ? "missing"
                                           : job_state_name(it->second.state))
                                   << "); no Table 1 to assemble");
    for (const Json& row : it->second.detail.get("payload").as_array())
      rows.push_back(row_from_json(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const analysis::Table1Row& a, const analysis::Table1Row& b) {
              if (a.sim_ffm != b.sim_ffm) return a.sim_ffm < b.sim_ffm;
              return dram::open_number(a.site) < dram::open_number(b.site);
            });
  return rows;
}

std::vector<analysis::Table1Row> generate_table1_via_campaign(
    const analysis::Table1Options& options, const CampaignOptions& campaign,
    CampaignResult* result_out) {
  const CampaignSpec spec = table1_campaign(options);
  CampaignResult result = run_campaign(spec, campaign);
  std::vector<analysis::Table1Row> rows = table1_rows_from_result(spec, result);
  if (result_out != nullptr) *result_out = std::move(result);
  return rows;
}

CampaignSpec completion_campaign(const service::JobSpec& sweep,
                                 const CompletionCampaignOptions& options) {
  PF_CHECK_MSG(options.ffm != Ffm::kUnknown,
               "completion campaign needs a target FFM");
  CampaignSpec spec;
  spec.name = "completion";

  CampaignJob base;
  base.id = "base-map";
  base.kind = CampaignJob::Kind::kSweep;
  base.sweep = sweep;
  spec.jobs.push_back(std::move(base));

  CampaignJob search;
  search.id = "completion";
  search.kind = CampaignJob::Kind::kCustom;
  search.deps = {"base-map"};
  const CompletionCampaignOptions opts = options;
  search.custom = [sweep, opts](const DepContext& ctx) {
    const analysis::RegionMap& map = ctx.map("base-map");
    const analysis::SweepSpec sspec = sweep.to_sweep_spec();
    const auto lines = dram::floating_lines_for(sspec.defect, sspec.params);
    const dram::FloatingLine& line = lines[sspec.floating_line_index];

    analysis::CompletionSpec cspec;
    cspec.params = sspec.params;
    cspec.defect = sspec.defect;
    cspec.floating_line_index = sspec.floating_line_index;
    cspec.base.sos = sspec.sos;
    cspec.probe_u = pf::linspace(line.min_v, line.max_v,
                                 opts.probe_u_points);
    cspec.max_prefix_ops = opts.max_prefix_ops;
    cspec.exec = opts.exec;
    cspec.exec.journal_path.clear();
    const analysis::CompletionResult comp =
        analysis::search_completing_ops_with_fallback(
            cspec, map, opts.ffm, /*rows_per_window=*/1,
            opts.fallback_windows);

    JsonObject obj;
    obj["possible"] = Json(comp.possible);
    if (comp.possible) obj["completed"] = Json(comp.completed.to_string());
    obj["candidates_evaluated"] = Json(comp.candidates_evaluated);
    obj["sos_runs"] = Json(comp.sos_runs);
    obj["solver_failures"] = Json(comp.solver_failures);
    return Json(std::move(obj));
  };
  spec.jobs.push_back(std::move(search));
  return spec;
}

namespace {

/// Journal/filename-safe job-id slug of a march-test name ("March C-" ->
/// "march-c", "MATS+" -> "mats-p": '+'/'-' are what tells the MATS family
/// apart, so they get letter spellings instead of being squashed).
std::string test_slug(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (c == '+') {
      if (!slug.empty() && slug.back() != '-') slug += '-';
      slug += 'p';
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "test" : slug;
}

Json outcome_to_json(const march::DetectionOutcome& outcome) {
  JsonObject obj;
  obj["detected_all"] = Json(outcome.detected_all);
  obj["detected_count"] = Json(double(outcome.detected_count));
  obj["total_victims"] = Json(double(outcome.total_victims));
  obj["first_escape"] = Json(double(outcome.first_escape));
  return Json(std::move(obj));
}

march::DetectionOutcome outcome_from_json(const Json& json) {
  march::DetectionOutcome outcome;
  outcome.detected_all = json.get("detected_all").as_bool();
  outcome.detected_count = std::int64_t(json.get("detected_count").as_number());
  outcome.total_victims = std::int64_t(json.get("total_victims").as_number());
  outcome.first_escape = std::int64_t(json.get("first_escape").as_number());
  return outcome;
}

}  // namespace

CampaignSpec coverage_campaign(const CoverageCampaignOptions& options) {
  CoverageCampaignOptions opts = options;
  if (opts.tests.empty()) {
    opts.tests = march::standard_tests();
    opts.tests.insert(opts.tests.begin(), march::naive_w1r1());
  }
  if (opts.classes.empty()) opts.classes = march::table1_partial_classes();
  PF_CHECK_MSG(opts.geometry.num_rows > 0 && opts.geometry.num_columns > 0,
               "coverage campaign needs a non-empty geometry");

  CampaignSpec spec;
  spec.name = "coverage";
  CampaignJob summary;
  summary.id = "coverage-summary";
  summary.kind = CampaignJob::Kind::kCustom;

  for (const march::MarchTest& test : opts.tests) {
    CampaignJob job;
    job.id = "coverage-" + test_slug(test.name);
    job.kind = CampaignJob::Kind::kCustom;
    const march::MarchTest test_copy = test;
    const memsim::Geometry geometry = opts.geometry;
    const march::MemEngine engine = opts.engine;
    const std::vector<march::PopulationClass> classes = opts.classes;
    job.custom = [test_copy, geometry, engine, classes](const DepContext&) {
      const march::PopulationCoverage coverage =
          march::evaluate_population(test_copy, geometry, classes, engine);
      JsonObject obj;
      obj["test"] = Json(test_copy.name);
      obj["engine"] = Json(std::string(march::mem_engine_name(engine)));
      obj["march_passes"] = Json(double(coverage.march_passes));
      obj["cell_steps"] = Json(double(coverage.cell_steps));
      JsonArray rows;
      for (const march::PopulationOutcome& po : coverage.classes) {
        JsonObject row;
        row["name"] = Json(po.cls.name());
        row["outcome"] = outcome_to_json(po.outcome);
        rows.push_back(Json(std::move(row)));
      }
      obj["classes"] = Json(std::move(rows));
      return Json(std::move(obj));
    };
    summary.deps.push_back(job.id);
    spec.jobs.push_back(std::move(job));
  }

  const auto dep_ids = summary.deps;
  summary.custom = [dep_ids](const DepContext& ctx) {
    std::int64_t full = 0, cells_total = 0;
    double steps = 0.0;
    for (const std::string& id : dep_ids) {
      const Json& payload = ctx.payload(id);
      steps += payload.get("cell_steps").as_number();
      for (const Json& row : payload.get("classes").as_array()) {
        full += row.get("outcome").get("detected_all").as_bool();
        ++cells_total;
      }
    }
    JsonObject obj;
    obj["tests"] = Json(double(dep_ids.size()));
    obj["matrix_cells"] = Json(double(cells_total));
    obj["full_detections"] = Json(double(full));
    obj["cell_steps"] = Json(steps);
    return Json(std::move(obj));
  };
  spec.jobs.push_back(std::move(summary));
  return spec;
}

std::vector<CoverageCampaignEntry> coverage_from_result(
    const CampaignSpec& spec, const CampaignResult& result) {
  std::vector<CoverageCampaignEntry> entries;
  for (const CampaignJob& job : spec.jobs) {
    if (job.kind != CampaignJob::Kind::kCustom ||
        job.id == "coverage-summary" ||
        job.id.rfind("coverage-", 0) != 0)
      continue;
    const auto it = result.jobs.find(job.id);
    PF_CHECK_MSG(it != result.jobs.end() &&
                     it->second.state == JobState::kJobDone,
                 "coverage campaign job \"" << job.id << "\" did not complete");
    const Json& payload = it->second.detail.get("payload");
    CoverageCampaignEntry entry;
    entry.test = payload.get("test").as_string();
    entry.engine = payload.get("engine").as_string();
    entry.march_passes = std::uint64_t(payload.get("march_passes").as_number());
    entry.cell_steps = std::uint64_t(payload.get("cell_steps").as_number());
    for (const Json& row : payload.get("classes").as_array())
      entry.classes.push_back(
          {row.get("name").as_string(), outcome_from_json(row.get("outcome"))});
    entries.push_back(std::move(entry));
  }
  return entries;
}

analysis::CompletionResult completion_from_result(
    const CampaignResult& result) {
  const auto it = result.jobs.find("completion");
  PF_CHECK_MSG(it != result.jobs.end() &&
                   it->second.state == JobState::kJobDone,
               "completion campaign did not finish the search job");
  const Json& payload = it->second.detail.get("payload");
  analysis::CompletionResult comp;
  comp.possible = payload.get("possible").as_bool();
  if (comp.possible)
    comp.completed =
        faults::FaultPrimitive::parse(payload.get("completed").as_string());
  comp.candidates_evaluated = int(payload.number_or("candidates_evaluated", 0));
  comp.sos_runs = uint64_t(payload.number_or("sos_runs", 0));
  comp.solver_failures = uint64_t(payload.number_or("solver_failures", 0));
  return comp;
}

// --- march-search campaign ---------------------------------------------------

namespace {

/// Journal the improved incumbent with the cache's manifest-last
/// discipline (tmp + rename) so a kill -9 mid-write never leaves a torn
/// file for the resumed job to parse.
void write_incumbent(const std::string& path, const march::MarchTest& test) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // journaling is best-effort; the search goes on
    out << test.to_string() << "\n";
    out.flush();
    if (!out) return;
  }
  fs::rename(tmp, path, ec);
}

/// The last journaled incumbent, if the file exists and parses; an
/// unreadable / torn file is ignored (search_march drops infeasible
/// incumbents anyway, this only skips the obviously broken ones).
std::optional<march::MarchTest> read_incumbent(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string notation;
  std::getline(in, notation);
  try {
    return march::MarchTest::parse(notation, "journaled incumbent");
  } catch (const pf::Error&) {
    return std::nullopt;
  }
}

}  // namespace

CampaignSpec search_campaign(const SearchCampaignOptions& options) {
  SearchCampaignOptions opts = options;
  if (opts.sets.empty()) opts.sets = march::standard_target_sets();
  PF_CHECK_MSG(opts.geometry.num_rows > 0 && opts.geometry.num_columns > 0,
               "search campaign needs a non-empty geometry");
  PF_CHECK_MSG(!opts.sets.empty(), "search campaign needs target sets");

  CampaignSpec spec;
  spec.name = "march-search";
  CampaignJob summary;
  summary.id = "search-summary";
  summary.kind = CampaignJob::Kind::kCustom;

  for (const march::NamedTargetSet& set : opts.sets) {
    CampaignJob job;
    job.id = "search-" + test_slug(set.name);
    job.kind = CampaignJob::Kind::kCustom;
    const march::NamedTargetSet set_copy = set;
    const memsim::Geometry geometry = opts.geometry;
    const march::MemEngine engine = opts.engine;
    const std::uint64_t seed = opts.seed;
    const std::uint64_t max_evaluations = opts.max_evaluations;
    const std::string incumbent_path =
        opts.incumbent_dir.empty()
            ? std::string()
            : opts.incumbent_dir + "/" + test_slug(set.name) + ".incumbent";
    job.custom = [set_copy, geometry, engine, seed, max_evaluations,
                  incumbent_path](const DepContext&) {
      march::SearchOptions search;
      search.synthesis.geometry = geometry;
      search.synthesis.engine = engine;
      search.synthesis.budget.seed = seed;
      search.synthesis.budget.max_evaluations = max_evaluations;
      if (!incumbent_path.empty()) {
        if (auto journaled = read_incumbent(incumbent_path))
          search.extra_incumbents.push_back(std::move(*journaled));
        search.on_improvement = [incumbent_path](
                                    const march::SearchImprovement& imp) {
          write_incumbent(incumbent_path, imp.test);
        };
      }
      const march::SearchResult result =
          march::search_march(set_copy.targets, search);
      JsonObject obj;
      obj["set"] = Json(set_copy.name);
      obj["test"] = Json(result.test.to_string());
      obj["success"] = Json(result.success);
      obj["ops_per_cell"] = Json(double(result.ops_per_cell));
      obj["greedy_ops_per_cell"] =
          Json(double(result.greedy.test.ops_per_cell()));
      obj["greedy_success"] = Json(result.greedy.success);
      obj["evaluations"] = Json(double(result.evaluations));
      obj["certificate_complete"] = Json(result.certificate.complete);
      obj["witnesses"] = Json(double(result.certificate.witnesses.size()));
      obj["improvements"] = Json(double(result.trace.size()));
      return Json(std::move(obj));
    };
    summary.deps.push_back(job.id);
    spec.jobs.push_back(std::move(job));
  }

  const auto dep_ids = summary.deps;
  summary.custom = [dep_ids](const DepContext& ctx) {
    std::int64_t shorter = 0, certified = 0, solved = 0;
    double evaluations = 0.0;
    for (const std::string& id : dep_ids) {
      const Json& payload = ctx.payload(id);
      const bool success = payload.get("success").as_bool();
      solved += success;
      shorter += success && payload.get("greedy_success").as_bool() &&
                 payload.get("ops_per_cell").as_number() <
                     payload.get("greedy_ops_per_cell").as_number();
      certified += payload.get("certificate_complete").as_bool();
      evaluations += payload.get("evaluations").as_number();
    }
    JsonObject obj;
    obj["sets"] = Json(double(dep_ids.size()));
    obj["solved"] = Json(double(solved));
    obj["shorter_than_greedy"] = Json(double(shorter));
    obj["certified_minimal"] = Json(double(certified));
    obj["evaluations"] = Json(evaluations);
    return Json(std::move(obj));
  };
  spec.jobs.push_back(std::move(summary));
  return spec;
}

std::vector<SearchCampaignEntry> search_from_result(
    const CampaignSpec& spec, const CampaignResult& result) {
  std::vector<SearchCampaignEntry> entries;
  for (const CampaignJob& job : spec.jobs) {
    if (job.kind != CampaignJob::Kind::kCustom || job.id == "search-summary" ||
        job.id.rfind("search-", 0) != 0)
      continue;
    const auto it = result.jobs.find(job.id);
    PF_CHECK_MSG(it != result.jobs.end() &&
                     it->second.state == JobState::kJobDone,
                 "search campaign job \"" << job.id << "\" did not complete");
    const Json& payload = it->second.detail.get("payload");
    SearchCampaignEntry entry;
    entry.set = payload.get("set").as_string();
    entry.test = march::MarchTest::parse(payload.get("test").as_string(),
                                         "search(" + entry.set + ")");
    entry.success = payload.get("success").as_bool();
    entry.ops_per_cell = int(payload.get("ops_per_cell").as_number());
    entry.greedy_ops_per_cell =
        int(payload.get("greedy_ops_per_cell").as_number());
    entry.shorter_than_greedy =
        entry.success && payload.get("greedy_success").as_bool() &&
        entry.ops_per_cell < entry.greedy_ops_per_cell;
    entry.certificate_complete = payload.get("certificate_complete").as_bool();
    entry.witnesses = std::size_t(payload.get("witnesses").as_number());
    entry.evaluations = std::uint64_t(payload.get("evaluations").as_number());
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace pf::campaign
