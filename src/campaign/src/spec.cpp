#include "pf/campaign/spec.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "pf/campaign/fault_injection.hpp"
#include "pf/util/error.hpp"
#include "pf/util/strings.hpp"

namespace pf::campaign {
namespace {

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void fnv1a(uint64_t& hash, std::string_view s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash ^= '\x1f';  // field separator, so "ab"+"c" != "a"+"bc"
  hash *= 1099511628211ull;
}

}  // namespace

void CampaignSpec::validate() const {
  if (jobs.empty()) throw pf::Error("campaign \"" + name + "\" has no jobs");
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJob& job = jobs[i];
    if (!valid_id(job.id))
      throw pf::Error("campaign job #" + std::to_string(i) +
                      ": id must be 1-64 chars of [A-Za-z0-9._-], got \"" +
                      job.id + "\"");
    if (!index_of.emplace(job.id, i).second)
      throw pf::Error("campaign: duplicate job id \"" + job.id + "\"");
    if (job.kind == CampaignJob::Kind::kCustom && !job.custom)
      throw pf::Error("campaign job \"" + job.id +
                      "\": custom job without a function");
  }
  for (const CampaignJob& job : jobs) {
    std::set<std::string> seen;
    for (const std::string& dep : job.deps) {
      if (dep == job.id)
        throw pf::Error("campaign job \"" + job.id + "\" depends on itself");
      if (index_of.find(dep) == index_of.end())
        throw pf::Error("campaign job \"" + job.id +
                        "\" depends on unknown job \"" + dep + "\"");
      if (!seen.insert(dep).second)
        throw pf::Error("campaign job \"" + job.id +
                        "\" lists dependency \"" + dep + "\" twice");
    }
  }
  // Cycle check (and the dep_cycle injection site, which forces the error
  // path on an otherwise clean spec): peel jobs whose deps are all peeled;
  // whatever cannot be peeled sits on (or behind) a cycle.
  std::vector<char> ordered(jobs.size(), 0);
  size_t placed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (ordered[i]) continue;
      bool ready = true;
      for (const std::string& dep : jobs[i].deps)
        if (!ordered[index_of[dep]]) {
          ready = false;
          break;
        }
      if (ready) {
        ordered[i] = 1;
        ++placed;
        progress = true;
      }
    }
  }
  const bool injected = testing::should_fail(testing::kDepCycle, name);
  if (placed < jobs.size() || injected) {
    std::ostringstream os;
    os << "campaign \"" << name << "\": dependency cycle involving";
    if (injected && placed == jobs.size()) {
      os << " (injected)";
    } else {
      for (size_t i = 0; i < jobs.size(); ++i)
        if (!ordered[i]) os << " \"" << jobs[i].id << "\"";
    }
    throw pf::Error(os.str());
  }
}

std::vector<size_t> CampaignSpec::topo_order() const {
  validate();
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < jobs.size(); ++i) index_of[jobs[i].id] = i;
  std::vector<size_t> order;
  order.reserve(jobs.size());
  std::vector<char> placed(jobs.size(), 0);
  // Deterministic Kahn: each pass takes ready jobs in declaration order.
  // validate() proved acyclicity, so this terminates.
  while (order.size() < jobs.size()) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (placed[i]) continue;
      bool ready = true;
      for (const std::string& dep : jobs[i].deps)
        if (!placed[index_of[dep]]) {
          ready = false;
          break;
        }
      if (ready) {
        placed[i] = 1;
        order.push_back(i);
      }
    }
  }
  return order;
}

uint64_t CampaignSpec::fingerprint() const {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const CampaignJob& job : jobs) {
    fnv1a(hash, job.id);
    for (const std::string& dep : job.deps) fnv1a(hash, dep);
    if (job.kind == CampaignJob::Kind::kSweep)
      fnv1a(hash, service::key_hex(job.sweep.cache_key()));
    else
      fnv1a(hash, "custom");
  }
  return hash;
}

service::Json CampaignSpec::to_json() const {
  service::JsonArray jobs_json;
  for (const CampaignJob& job : jobs) {
    if (job.kind != CampaignJob::Kind::kSweep)
      throw pf::Error("campaign job \"" + job.id +
                      "\": custom jobs are in-process only and cannot be "
                      "serialized to a spec file");
    service::JsonObject obj;
    obj["id"] = service::Json(job.id);
    service::JsonArray deps;
    for (const std::string& dep : job.deps) deps.emplace_back(dep);
    obj["deps"] = service::Json(std::move(deps));
    obj["job"] = job.sweep.to_json();
    jobs_json.emplace_back(std::move(obj));
  }
  service::JsonObject root;
  root["name"] = service::Json(name);
  root["jobs"] = service::Json(std::move(jobs_json));
  return service::Json(std::move(root));
}

CampaignSpec CampaignSpec::from_json(const service::Json& json,
                                     const service::JobLimits& limits) {
  if (!json.is_object())
    throw pf::ParseError("campaign: document must be a JSON object");
  CampaignSpec spec;
  spec.name = json.string_or("name", spec.name);
  if (!json.has("jobs") || !json.get("jobs").is_array())
    throw pf::ParseError("campaign: missing \"jobs\" array");
  for (const service::Json& entry : json.get("jobs").as_array()) {
    if (!entry.is_object())
      throw pf::ParseError("campaign: each jobs[] entry must be an object");
    CampaignJob job;
    job.id = entry.string_or("id", "");
    if (entry.has("deps")) {
      if (!entry.get("deps").is_array())
        throw pf::ParseError("campaign job \"" + job.id +
                             "\": deps must be an array of job ids");
      for (const service::Json& dep : entry.get("deps").as_array()) {
        if (!dep.is_string())
          throw pf::ParseError("campaign job \"" + job.id +
                               "\": deps must be an array of job ids");
        job.deps.push_back(dep.as_string());
      }
    }
    if (!entry.has("job"))
      throw pf::ParseError("campaign job \"" + job.id +
                           "\": missing \"job\" (the sweep JobSpec)");
    job.sweep = service::JobSpec::from_json(entry.get("job"), limits);
    spec.jobs.push_back(std::move(job));
  }
  spec.validate();
  return spec;
}

CampaignSpec CampaignSpec::load_file(const std::string& path,
                                     const service::JobLimits& limits) {
  std::ifstream in(path);
  if (!in.is_open())
    throw pf::Error("campaign: cannot read spec file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(service::Json::parse(buffer.str()), limits);
}

}  // namespace pf::campaign
