#include "pf/campaign/journal.hpp"

#include <cinttypes>
#include <cstdio>

#include "pf/campaign/fault_injection.hpp"
#include "pf/util/crc32.hpp"
#include "pf/util/error.hpp"
#include "pf/util/log.hpp"
#include "pf/util/quarantine.hpp"
#include "pf/util/strings.hpp"

namespace pf::campaign {
namespace {

// Header: "# pf-campaign-journal v1 fingerprint=<16 hex>".
constexpr const char* kJournalTag = "# pf-campaign-journal ";
constexpr const char* kFingerprintField = "fingerprint=";
constexpr const char* kTrailerWord = "END";
constexpr const char* kColumnHeader = "seq,event,job,detail,crc";

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string hex8(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08" PRIx32, v);
  return buf;
}

bool is_hex(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string trailer_line(uint64_t fingerprint) {
  return std::string(kJournalTag) + kTrailerWord + ' ' + kFingerprintField +
         hex16(fingerprint);
}

const char* event_word(CampaignJournal::Event event) {
  switch (event) {
    case CampaignJournal::Event::kBegin: return "BEGIN";
    case CampaignJournal::Event::kDone: return "DONE";
    case CampaignJournal::Event::kFailed: return "FAILED";
  }
  return "?";
}

struct Header {
  int version = 0;  ///< 0 = unreadable
  std::string fingerprint;
};

Header parse_header(const std::string& line) {
  Header h;
  if (line.rfind(kJournalTag, 0) != 0) return h;
  const std::vector<std::string> fields =
      pf::split(pf::trim(line.substr(std::string(kJournalTag).size())), ' ');
  if (fields.size() != 2 || fields[0] != "v1") return h;
  const std::string fp_field(kFingerprintField);
  if (fields[1].rfind(fp_field, 0) != 0) return h;
  const std::string fp = fields[1].substr(fp_field.size());
  if (fp.size() != 16 || !is_hex(fp)) return h;
  h.version = 1;
  h.fingerprint = fp;
  return h;
}

bool quarantine(const std::string& path) {
  const std::string target = pf::quarantine_path(path);
  if (!target.empty())
    PF_LOG_WARN("campaign journal " << path << " is unreadable; quarantined "
                                    << "to " << target
                                    << " and restarting fresh");
  else
    PF_LOG_WARN("campaign journal " << path << " is unreadable and could "
                                    << "not be quarantined; overwriting");
  return !target.empty();
}

bool read_first_line(const std::string& path, std::string* line) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  return static_cast<bool>(std::getline(in, *line));
}

}  // namespace

uint64_t CampaignJournal::fingerprint(const CampaignSpec& spec) {
  return spec.fingerprint();
}

CampaignJournal::LoadResult CampaignJournal::load(const std::string& path,
                                                  const CampaignSpec& spec) {
  LoadResult result;
  std::ifstream in(path);
  if (!in.is_open()) return result;
  std::string header_line;
  if (!std::getline(in, header_line)) return result;  // empty file

  const Header header = parse_header(header_line);
  if (header.version == 0) {
    in.close();
    result.quarantined = quarantine(path);
    return result;
  }
  const std::string expected = hex16(fingerprint(spec));
  PF_CHECK_MSG(header.fingerprint == expected,
               "campaign journal " << path << " belongs to a different "
                                   << "campaign (fingerprint "
                                   << header.fingerprint << ", expected "
                                   << expected
                                   << "); delete it to start over");
  const std::string trailer = trailer_line(fingerprint(spec));

  // Recover chronologically: BEGIN marks a job in flight, DONE/FAILED
  // terminate it (last occurrence wins per job).
  std::map<std::string, char> in_flight;  // BEGIN seen, no terminal yet
  std::string line;
  bool last_is_trailer = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last_is_trailer = line == trailer;
    if (line[0] == '#' || line == kColumnHeader) continue;
    // Positional parse: "seq,event,job,<detail...>,crc". The detail is a
    // one-line JSON document and may contain commas, so it is everything
    // between the third and the last comma.
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
    const size_t c3 = c2 == std::string::npos ? c2 : line.find(',', c2 + 1);
    const size_t clast = line.rfind(',');
    if (c3 == std::string::npos || clast <= c3) {
      ++result.dropped;
      continue;
    }
    const uint32_t want = pf::crc32(std::string_view(line).substr(0, clast));
    if (line.substr(clast + 1) != hex8(want)) {
      ++result.dropped;
      continue;
    }
    Record record;
    const std::string event_text = line.substr(c1 + 1, c2 - c1 - 1);
    if (event_text == "BEGIN")
      record.event = Event::kBegin;
    else if (event_text == "DONE")
      record.event = Event::kDone;
    else if (event_text == "FAILED")
      record.event = Event::kFailed;
    else {
      ++result.dropped;
      continue;
    }
    record.job = line.substr(c2 + 1, c3 - c2 - 1);
    try {
      record.seq = std::stoull(line.substr(0, c1));
      record.detail = service::Json::parse(line.substr(c3 + 1, clast - c3 - 1));
    } catch (const std::exception&) {
      ++result.dropped;
      continue;
    }
    if (record.seq > result.max_seq) result.max_seq = record.seq;
    if (record.event == Event::kBegin) {
      in_flight[record.job] = 1;
    } else {
      in_flight.erase(record.job);
      result.terminal[record.job] = std::move(record);
    }
  }
  result.clean_end = last_is_trailer;
  for (const auto& [job, flag] : in_flight) result.interrupted.push_back(job);
  return result;
}

CampaignJournal::CampaignJournal(const std::string& path,
                                 const CampaignSpec& spec, uint64_t next_seq)
    : fingerprint_(fingerprint(spec)), next_seq_(next_seq) {
  bool fresh = true;
  std::string first_line;
  if (read_first_line(path, &first_line)) {
    const Header header = parse_header(first_line);
    if (header.version == 0) {
      if (!quarantine(path)) std::remove(path.c_str());
    } else {
      PF_CHECK_MSG(header.fingerprint == hex16(fingerprint_),
                   "campaign journal " << path << " belongs to a different "
                                       << "campaign; delete it to start over");
      fresh = false;
    }
  }
  out_.open(path, std::ios::app);
  PF_CHECK_MSG(out_.is_open(), "cannot open campaign journal " << path);
  if (fresh) {
    out_ << kJournalTag << "v1 " << kFingerprintField << hex16(fingerprint_)
         << '\n'
         << kColumnHeader << '\n';
    out_.flush();
  }
}

void CampaignJournal::append(Event event, const std::string& job,
                             const service::Json& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload = std::to_string(next_seq_++);
  payload += ',';
  payload += event_word(event);
  payload += ',';
  payload += job;
  payload += ',';
  payload += detail.is_null() ? "{}" : detail.dump();
  if (testing::should_fail(testing::kTornCampaignJournal, job)) {
    // Emulate a kill -9 mid-append: half the payload, no CRC. The row
    // fails its checksum on the next load and is dropped — the job simply
    // re-runs. (A newline keeps subsequent in-process appends parseable;
    // in a real crash there would be none.)
    out_ << payload.substr(0, payload.size() / 2) << '\n';
    out_.flush();
    return;
  }
  out_ << payload << ',' << hex8(pf::crc32(payload)) << '\n';
  out_.flush();
  ++records_appended_;
}

void CampaignJournal::begin(const std::string& job) {
  append(Event::kBegin, job, service::Json(service::JsonObject{}));
}

void CampaignJournal::done(const std::string& job,
                           const service::Json& detail) {
  append(Event::kDone, job, detail);
}

void CampaignJournal::failed(const std::string& job,
                             const service::Json& detail) {
  append(Event::kFailed, job, detail);
}

void CampaignJournal::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  out_ << trailer_line(fingerprint_) << '\n';
  out_.flush();
  finalized_ = true;
}

}  // namespace pf::campaign
