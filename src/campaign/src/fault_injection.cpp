#include "pf/campaign/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "pf/util/strings.hpp"

namespace pf::campaign::testing {
namespace {

struct Plan {
  std::string site;
  std::string arg;       ///< job id filter; empty matches every consultation
  size_t remaining = 0;  ///< firing budget left
};

std::atomic<bool> g_armed{false};
std::mutex g_mutex;
std::vector<Plan> g_plans;
size_t g_fired = 0;

void arm_locked(const std::string& spec) {
  g_plans.clear();
  g_fired = 0;
  for (const std::string& part : pf::split(spec, ',')) {
    const std::string entry = pf::trim(part);
    if (entry.empty()) continue;
    Plan plan;
    plan.remaining = 1;
    std::string head = entry;
    const size_t colon = head.rfind(':');
    if (colon != std::string::npos) {
      const std::string count = head.substr(colon + 1);
      // A trailing ":n" is a budget only when n parses; job ids cannot
      // contain ':' (spec validation), so there is no ambiguity.
      try {
        plan.remaining = std::stoul(count);
        head = head.substr(0, colon);
      } catch (const std::exception&) {
      }
    }
    const size_t eq = head.find('=');
    if (eq != std::string::npos) {
      plan.site = head.substr(0, eq);
      plan.arg = head.substr(eq + 1);
    } else {
      plan.site = head;
    }
    if (!plan.site.empty() && plan.remaining > 0)
      g_plans.push_back(std::move(plan));
  }
  g_armed.store(!g_plans.empty(), std::memory_order_release);
}

}  // namespace

ScopedCampaignFault::ScopedCampaignFault(const std::string& spec) {
  arm_from_spec(spec);
}

ScopedCampaignFault::~ScopedCampaignFault() { arm_from_spec(""); }

void arm_from_spec(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  arm_locked(spec);
}

void arm_from_env() {
  const char* spec = std::getenv("PF_CAMPAIGN_FAULTS");
  if (spec != nullptr && *spec != '\0') arm_from_spec(spec);
}

bool should_fail(const char* site, const std::string& arg) {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  for (Plan& plan : g_plans) {
    if (plan.remaining == 0 || plan.site != site) continue;
    if (!plan.arg.empty() && plan.arg != arg) continue;
    --plan.remaining;
    ++g_fired;
    return true;
  }
  return false;
}

size_t faults_fired() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_fired;
}

}  // namespace pf::campaign::testing
