#include "pf/campaign/runner.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "pf/analysis/session_cache.hpp"
#include "pf/campaign/fault_injection.hpp"
#include "pf/campaign/journal.hpp"
#include "pf/service/cache.hpp"
#include "pf/service/client.hpp"
#include "pf/util/error.hpp"
#include "pf/util/log.hpp"
#include "pf/util/sha256.hpp"

namespace pf::campaign {
namespace {

using service::Json;
using service::JsonObject;

Json stats_to_json(const analysis::SweepStats& stats) {
  JsonObject obj;
  obj["attempted"] = Json(stats.attempted);
  obj["solved"] = Json(stats.solved);
  obj["failed"] = Json(stats.failed);
  obj["retries"] = Json(stats.retries);
  obj["resumed"] = Json(stats.resumed);
  obj["journal_dropped"] = Json(stats.journal_dropped);
  obj["journal_quarantined"] = Json(stats.journal_quarantined);
  return Json(std::move(obj));
}

/// Row-family of a sweep job: everything that affects circuit COMPILATION
/// (defect topology + process parameters), nothing that is restamped per
/// experiment (resistance, SOS, engine options, initial voltages). Jobs
/// in the same family hand one compiled SosSession to each other.
std::string session_family(const service::JobSpec& job) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@T%.6f", job.temperature_c);
  return job.defect_kind + "#" + std::to_string(job.open_site) + buf;
}

/// One campaign execution. A class only to share state between the
/// per-job helpers; lifetime is the run_campaign call.
class Runner {
 public:
  Runner(const CampaignSpec& spec, const CampaignOptions& options)
      : spec_(spec), options_(options) {}

  CampaignResult run() {
    const std::vector<size_t> order = spec_.topo_order();  // validates

    if (!options_.store_root.empty()) {
      store_ = std::make_unique<service::ResultCache>(options_.store_root);
      store_->recover();
    }

    uint64_t next_seq = 1;
    std::map<std::string, CampaignJournal::Record> restored;
    if (!options_.journal_path.empty()) {
      if (options_.resume) {
        const CampaignJournal::LoadResult loaded =
            CampaignJournal::load(options_.journal_path, spec_);
        restored = loaded.terminal;
        next_seq = loaded.max_seq + 1;
        result_.stats.journal_dropped = loaded.dropped;
        if (loaded.quarantined) ++result_.stats.journal_quarantined;
        journal_was_clean_ = loaded.clean_end;
        if (loaded.dropped > 0)
          PF_LOG_WARN("campaign journal " << options_.journal_path
                                          << ": dropped " << loaded.dropped
                                          << " corrupt row(s); affected jobs "
                                          << "re-run");
        for (const std::string& job : loaded.interrupted)
          PF_LOG_INFO("campaign: job " << job
                                       << " was interrupted; re-running");
      }
      journal_ = std::make_unique<CampaignJournal>(options_.journal_path,
                                                   spec_, next_seq);
    }

    exec_ = options_.exec;
    if (!exec_.session_cache)
      exec_.session_cache = std::make_shared<analysis::SessionCache>();

    total_ = spec_.jobs.size();
    for (const size_t ji : order) run_one(spec_.jobs[ji], restored);

    const analysis::SessionCache::Stats ss = exec_.session_cache->stats();
    result_.stats.session_hits = ss.hits;
    result_.stats.session_misses = ss.misses;
    // Mark the journal cleanly complete — unless this was a fully restored
    // rerun of an already-clean journal (don't stack duplicate trailers).
    if (journal_ && !(journal_was_clean_ && journal_->records_appended() == 0))
      journal_->finalize();
    return std::move(result_);
  }

 private:
  void emit(CampaignEvent::Kind kind, const std::string& job, int attempt,
            bool cached, const std::string& message) {
    if (!options_.on_event) return;
    CampaignEvent event;
    event.kind = kind;
    event.job = job;
    event.attempt = attempt;
    event.cached = cached;
    event.message = message;
    event.finished = finished_;
    event.total = total_;
    options_.on_event(event);
  }

  void run_one(const CampaignJob& job,
               const std::map<std::string, CampaignJournal::Record>& restored) {
    JobResult& jr = result_.jobs[job.id];

    // Failure isolation: a dependency that is not kJobDone blocks this job
    // (and, transitively, its own dependents) — nothing else is touched.
    for (const std::string& dep : job.deps) {
      const JobResult& dr = result_.jobs[dep];
      if (dr.state == JobState::kJobDone) continue;
      jr.state = JobState::kJobBlocked;
      JsonObject detail;
      detail["blocked_by"] = Json(dep);
      jr.detail = Json(std::move(detail));
      ++result_.stats.blocked;
      ++finished_;
      emit(CampaignEvent::Kind::kBlocked, job.id, 0, false,
           "dependency " + dep + " is " + job_state_name(dr.state));
      return;
    }

    // Resume: restore the journaled terminal state when possible.
    const auto it = restored.find(job.id);
    if (it != restored.end()) {
      const CampaignJournal::Record& rec = it->second;
      if (rec.event == CampaignJournal::Event::kFailed &&
          !options_.retry_failed) {
        jr.state = JobState::kJobFailed;  // terminal quarantine survives
        jr.detail = rec.detail;
        jr.resumed = true;
        ++result_.stats.failed;
        ++result_.stats.resumed;
        ++finished_;
        emit(CampaignEvent::Kind::kFailed, job.id, 0, false,
             "quarantined (journaled failure: " +
                 rec.detail.string_or("error", "?") + ")");
        return;
      }
      if (rec.event == CampaignJournal::Event::kDone &&
          restore_done(job, rec, jr)) {
        jr.state = JobState::kJobDone;
        jr.resumed = true;
        ++result_.stats.done;
        ++result_.stats.resumed;
        ++finished_;
        emit(CampaignEvent::Kind::kResumed, job.id, 0, jr.cached, "");
        return;
      }
      // DONE but not restorable (e.g. the store is gone): fall through and
      // recompute — the journal is a checkpoint, not an oracle.
    }

    jr.state = JobState::kJobRunning;
    if (journal_) journal_->begin(job.id);
    const int max_attempts = std::max(1, options_.max_job_attempts);
    std::string last_error;
    bool ok = false;
    Json done_detail;
    for (int attempt = 1; attempt <= max_attempts && !ok; ++attempt) {
      jr.attempts = attempt;
      if (attempt > 1) {
        ++result_.stats.retries;
        emit(CampaignEvent::Kind::kRetry, job.id, attempt, false, last_error);
        if (options_.backoff_ms > 0) {
          const double ms =
              options_.backoff_ms * double(1 << (attempt - 2 > 30 ? 30 : attempt - 2));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      } else {
        emit(CampaignEvent::Kind::kBegin, job.id, attempt, false, "");
      }
      try {
        // Deterministic fault injection: fail a matching attempt before
        // any real work — the retry/quarantine path under test.
        if (testing::should_fail(testing::kJobFailOnce, job.id))
          throw pf::Error("injected job failure (job_fail_once)");
        done_detail = job.kind == CampaignJob::Kind::kSweep
                          ? execute_sweep(job, jr)
                          : execute_custom(job, jr);
        ok = true;
      } catch (const pf::CancelledError&) {
        // Campaign-level abort: the BEGIN record (no terminal) marks this
        // job interrupted; everything finished earlier is journaled.
        throw;
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    if (ok) {
      if (journal_) journal_->done(job.id, done_detail);
      jr.state = JobState::kJobDone;
      jr.detail = done_detail;
      ++result_.stats.done;
      ++finished_;
      emit(CampaignEvent::Kind::kDone, job.id, jr.attempts, jr.cached, "");
    } else {
      // Retry budget exhausted: terminal quarantine with error context.
      JsonObject detail;
      detail["error"] = Json(last_error);
      detail["attempts"] = Json(jr.attempts);
      Json failed_detail(std::move(detail));
      if (journal_) journal_->failed(job.id, failed_detail);
      jr.state = JobState::kJobFailed;
      jr.detail = std::move(failed_detail);
      ++result_.stats.failed;
      ++finished_;
      emit(CampaignEvent::Kind::kFailed, job.id, jr.attempts, false,
           last_error);
    }
  }

  /// Restore a journaled DONE job. Sweeps need the result bytes back
  /// (memo, then the store); custom jobs carry their payload in the
  /// record itself. Returns false when the bytes are gone — recompute.
  bool restore_done(const CampaignJob& job, const CampaignJournal::Record& rec,
                    JobResult& jr) {
    if (job.kind == CampaignJob::Kind::kCustom) {
      jr.detail = rec.detail;
      return true;
    }
    const uint64_t key = job.sweep.cache_key();
    jr.key = service::key_hex(key);
    jr.cached = rec.detail.bool_or("cached", false);
    const auto mit = memo_.find(key);
    if (mit != memo_.end()) {
      jr.csv = mit->second.first;
      jr.sha256 = mit->second.second;
      jr.detail = rec.detail;
      return true;
    }
    if (store_) {
      std::string csv;
      Json manifest;
      if (store_->get(key, &csv, &manifest)) {
        jr.sha256 = pf::sha256_hex(csv);
        jr.csv = std::move(csv);
        jr.detail = rec.detail;
        memo_[key] = {jr.csv, jr.sha256};
        return true;
      }
    }
    return false;
  }

  /// Run (or dedup) one sweep job; returns the DONE detail.
  Json execute_sweep(const CampaignJob& job, JobResult& jr) {
    const uint64_t key = job.sweep.cache_key();
    jr.key = service::key_hex(key);

    // Cross-job dedup: identical fingerprints compute once per campaign.
    // The in-memory memo covers store-less runs and saves the disk read;
    // the store covers previous campaigns and crashed runs.
    const auto mit = memo_.find(key);
    if (mit != memo_.end()) {
      jr.csv = mit->second.first;
      jr.sha256 = mit->second.second;
      jr.cached = true;
      ++result_.stats.dedup_hits;
      return done_detail(jr);
    }
    if (store_) {
      std::string csv;
      Json manifest;
      if (store_->get(key, &csv, &manifest)) {
        jr.sha256 = pf::sha256_hex(csv);
        jr.csv = std::move(csv);
        jr.cached = true;
        ++result_.stats.dedup_hits;
        memo_[key] = {jr.csv, jr.sha256};
        return done_detail(jr);
      }
    }

    if (!options_.socket_path.empty()) {
      // Remote mode: the pf_served owns execution (and its own cache);
      // absorb busy rejections instead of failing the job on a full queue.
      service::WaitPolicy wait;
      wait.max_wait_seconds = 3600.0;
      const service::SubmitOutcome outcome =
          service::submit_job_wait(options_.socket_path, job.sweep, wait);
      if (outcome.status != service::SubmitStatus::kResult)
        throw pf::Error("pf_served at " + options_.socket_path +
                        " did not produce a result: " +
                        (outcome.error_message.empty() ? "rejected busy"
                                                       : outcome.error_message));
      jr.csv = outcome.csv;
      jr.sha256 = outcome.sha256;
      jr.cached = outcome.cached;
      if (outcome.cached) ++result_.stats.dedup_hits;
      memo_[key] = {jr.csv, jr.sha256};
      return done_detail(jr);
    }

    // Local mode: one ExecutionPolicy for the whole campaign, plus the
    // per-job journal (point-level resume) and the session row-family.
    const analysis::SweepSpec sweep_spec = job.sweep.to_sweep_spec();
    analysis::ExecutionPolicy policy = exec_;
    policy.journal_path = store_ ? store_->journal_path(key) : std::string();
    policy.resume = true;
    policy.session_family = session_family(job.sweep);
    const double throttle_ms = job.sweep.throttle_ms;
    if (throttle_ms > 0) {
      const auto inner = exec_.progress;
      policy.progress = [throttle_ms, inner](size_t done, size_t total) {
        // Test hook: widen the kill -9 window, exactly like the server.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(throttle_ms));
        if (inner) inner(done, total);
      };
    }
    const analysis::RegionMap map = analysis::sweep_region(sweep_spec, policy);
    jr.csv = map.to_csv();
    jr.sha256 = pf::sha256_hex(jr.csv);
    jr.cached = false;
    if (store_) {
      try {
        store_->commit(job.sweep, jr.csv, stats_to_json(map.solve_stats()));
        store_->discard_journal(key);
      } catch (const pf::Error& e) {
        // A torn commit must not fail the job — the result is in hand and
        // the invalid entry is quarantined by the next get().
        PF_LOG_WARN("campaign: commit failed for " << jr.key << ": "
                                                   << e.what());
      }
    }
    memo_[key] = {jr.csv, jr.sha256};
    return done_detail(jr);
  }

  static Json done_detail(const JobResult& jr) {
    JsonObject detail;
    detail["key"] = Json(jr.key);
    detail["sha256"] = Json(jr.sha256);
    detail["cached"] = Json(jr.cached);
    return Json(std::move(detail));
  }

  /// Run one custom job; returns the DONE detail ({"payload": ...}).
  Json execute_custom(const CampaignJob& job, JobResult& jr) {
    (void)jr;
    class Ctx : public DepContext {
     public:
      Ctx(Runner& runner, const CampaignJob& job)
          : runner_(runner), job_(job) {}

      const analysis::RegionMap& map(const std::string& job_id) const override {
        const CampaignJob& dep = dep_job(job_id, CampaignJob::Kind::kSweep);
        auto& slot = runner_.parsed_maps_[job_id];
        if (!slot) {
          // Always reconstruct from the canonical CSV — computed, deduped
          // and resumed dependencies look identical to the consumer.
          const JobResult& dr = runner_.result_.jobs.at(job_id);
          slot = std::make_unique<analysis::RegionMap>(
              analysis::region_map_from_csv(dep.sweep.to_sweep_spec(),
                                            dr.csv));
        }
        return *slot;
      }

      const Json& payload(const std::string& job_id) const override {
        const CampaignJob& dep = dep_job(job_id, CampaignJob::Kind::kCustom);
        (void)dep;
        return runner_.result_.jobs.at(job_id).detail.get("payload");
      }

     private:
      const CampaignJob& dep_job(const std::string& job_id,
                                 CampaignJob::Kind kind) const {
        bool declared = false;
        for (const std::string& dep : job_.deps)
          if (dep == job_id) {
            declared = true;
            break;
          }
        PF_CHECK_MSG(declared, "campaign job \""
                                   << job_.id << "\" accessed \"" << job_id
                                   << "\" without declaring the dependency");
        for (const CampaignJob& candidate : runner_.spec_.jobs)
          if (candidate.id == job_id) {
            PF_CHECK_MSG(candidate.kind == kind,
                         "campaign job \"" << job_.id << "\": dependency \""
                                           << job_id
                                           << "\" is not of the kind "
                                           << "requested");
            return candidate;
          }
        throw pf::Error("campaign: unknown job \"" + job_id + "\"");
      }

      Runner& runner_;
      const CampaignJob& job_;
    };

    const Ctx ctx(*this, job);
    Json payload = job.custom(ctx);
    JsonObject detail;
    detail["payload"] = std::move(payload);
    return Json(std::move(detail));
  }

  const CampaignSpec& spec_;
  const CampaignOptions& options_;
  CampaignResult result_;
  analysis::ExecutionPolicy exec_;
  std::unique_ptr<service::ResultCache> store_;
  std::unique_ptr<CampaignJournal> journal_;
  bool journal_was_clean_ = false;
  std::map<uint64_t, std::pair<std::string, std::string>> memo_;  ///< key ->
                                                                  ///< csv,sha
  std::map<std::string, std::unique_ptr<analysis::RegionMap>> parsed_maps_;
  size_t finished_ = 0;
  size_t total_ = 0;
};

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kJobPending: return "PENDING";
    case JobState::kJobRunning: return "RUNNING";
    case JobState::kJobDone: return "DONE";
    case JobState::kJobFailed: return "FAILED";
    case JobState::kJobBlocked: return "BLOCKED";
  }
  return "?";
}

bool CampaignResult::all_done() const {
  for (const auto& [id, job] : jobs)
    if (job.state != JobState::kJobDone) return false;
  return stats.done == jobs.size() && !jobs.empty();
}

std::string CampaignResult::report(const CampaignSpec& spec) const {
  // Deterministic A/B artifact: everything that identifies the OUTCOME
  // (states, result hashes, payloads, error context) and nothing that
  // describes the JOURNEY (cached/resumed flags, attempt counts differ
  // between a cold run and a kill-9-resumed one by design).
  std::ostringstream os;
  os << "# pf-campaign report " << spec.name << "\n";
  for (const CampaignJob& job : spec.jobs) {
    const auto it = jobs.find(job.id);
    os << "job " << job.id << " ";
    if (it == jobs.end()) {
      os << "PENDING\n";
      continue;
    }
    const JobResult& jr = it->second;
    os << job_state_name(jr.state);
    switch (jr.state) {
      case JobState::kJobDone:
        if (job.kind == CampaignJob::Kind::kSweep)
          os << " key " << jr.key << " sha256 " << jr.sha256;
        else
          os << " payload " << jr.detail.get("payload").dump();
        break;
      case JobState::kJobFailed:
        os << " error " << jr.detail.string_or("error", "?");
        break;
      case JobState::kJobBlocked:
        os << " by " << jr.detail.string_or("blocked_by", "?");
        break;
      default:
        break;
    }
    os << "\n";
  }
  return os.str();
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  Runner runner(spec, options);
  return runner.run();
}

}  // namespace pf::campaign
