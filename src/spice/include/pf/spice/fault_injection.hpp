// Deterministic solver fault injection for robustness testing.
//
// The sweep-level robustness machinery (retry with tightened options,
// graceful per-point degradation, checkpoint/resume) is only trustworthy if
// it can be exercised on demand: natural non-convergence is rare and
// parameter-dependent. This hook lets a test or bench arm a process-global
// *injection plan* mapping experiment keys to solver faults. The driver of
// each experiment attempt declares its key with set_context() — one call per
// attempt — and the Simulator consults current_injection() at the start of
// every transient run:
//
//   kNonConvergence  -> run_for throws ConvergenceError immediately,
//   kSingularMatrix  -> run_for throws the singular-pivot flavour,
//   kSlowConvergence -> each run_for charges slow_penalty_iters Newton
//                       iterations to the stats, so an armed iteration
//                       watchdog (SimOptions::max_total_nr_iters) trips while
//                       an unguarded simulation merely reports inflated
//                       stats.
//
// A key fails its first `fail_attempts` attempts and then recovers, which is
// exactly the shape retry/backoff must handle. Disarmed (the default) the
// whole feature is one branch on an atomic bool — no overhead in production
// sweeps.
//
// Thread-safe: the declared context is thread-local (each parallel sweep
// worker scopes injections to its own current experiment) and the plan,
// attempt counters and injection tally are mutex-guarded. Arming/disarming
// (ScopedFaultPlan) must still happen while no experiments are in flight.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pf::spice::testing {

enum class InjectedFault {
  kNone,
  kNonConvergence,   ///< transient Newton loop gives up (ConvergenceError)
  kSingularMatrix,   ///< MNA pivot collapse (ConvergenceError, singular text)
  kSlowConvergence,  ///< Newton burns iterations; trips the iteration watchdog
  /// A silently diverged solve: run_for returns normally but leaves every
  /// unknown node voltage NaN. No exception from the engine — this exists
  /// to prove the observation/classification layer (sos_runner, the output
  /// latch) converts non-finite voltages into a retryable solver failure
  /// instead of a bogus fault primitive.
  kNanVoltage,
  /// A silently WRONG solve: run_for returns normally but every unknown
  /// node voltage is mirrored to (corrupt_bias - v), i.e. logic levels are
  /// inverted while staying finite. Unlike kNanVoltage nothing downstream
  /// can flag the point as unsolved — the FFM classification of the
  /// experiment simply comes out wrong. This is the planted *classification
  /// mutation* the differential test harness (pf::testing) must catch by
  /// disagreeing with an uncorrupted reference run.
  kCorruptVoltage,
};

struct InjectionSpec {
  InjectedFault kind = InjectedFault::kNone;
  /// How many attempts (set_context calls) of the key fail before the point
  /// recovers. Use a value above the retry budget for an unrecoverable point.
  int fail_attempts = 1;
  /// Newton iterations charged per run_for call by kSlowConvergence.
  uint64_t slow_penalty_iters = 200000;
  /// Mirror level used by kCorruptVoltage: each unknown node voltage v is
  /// replaced by (corrupt_bias - v), so 0 V and the default 3.3 V rail swap
  /// and mid levels barely move — finite, plausible, wrong.
  double corrupt_bias = 3.3;
};

/// RAII arm/disarm of the process-global injection plan. Arming replaces any
/// previous plan and resets the attempt and injection counters.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::map<std::string, InjectionSpec> plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// True while a plan is armed.
bool armed();

/// Declare the experiment attempt about to run. Each call counts one attempt
/// against the key's fail_attempts budget. No-op while disarmed.
void set_context(const std::string& key);

/// Forget the current context (e.g. when an attempt finishes), so unrelated
/// simulations do not inherit a stale injection.
void clear_context();

/// The injection the current context should suffer, or nullptr. Idempotent:
/// consulting it does not consume the attempt (set_context does).
const InjectionSpec* current_injection();

/// Faults actually applied by the Simulator since the plan was armed.
uint64_t injections_performed();

/// Called by the Simulator when it applies an injected fault.
void note_injection();

}  // namespace pf::spice::testing
