// Netlist representation for the MNA transient engine.
//
// Device set: resistor, capacitor, independent voltage source (retargetable
// ramped level), and square-law (Shichman-Hodges) NMOS/PMOS. This is the
// minimum set needed to model a DRAM cell-array column faithfully at the
// charge-sharing level: pass devices, precharge devices, cross-coupled sense
// amplifier, write drivers (source + series pass device) and resistive open
// defects (plain resistors spliced into signal lines).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pf/util/error.hpp"

namespace pf::spice {

/// Node handle; node 0 is always ground ("0"/"gnd").
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Handle to an independent voltage source (index into the source table).
using SourceId = int;

/// Square-law MOSFET parameters. `k` is the full transconductance factor
/// mu*Cox*W/L in A/V^2; `lambda` models channel-length modulation.
struct MosParams {
  double vt = 0.7;      ///< threshold voltage [V] (positive for both types)
  double k = 200e-6;    ///< transconductance factor [A/V^2]
  double lambda = 0.02; ///< channel-length modulation [1/V]
};

struct Resistor {
  std::string name;
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 1.0;
};

struct Capacitor {
  std::string name;
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 1e-15;
};

struct VSource {
  std::string name;
  NodeId pos = kGround;
  NodeId neg = kGround;
  double dc = 0.0;  ///< initial level; run-time value lives in the Simulator
};

struct Mosfet {
  std::string name;
  NodeId d = kGround;
  NodeId g = kGround;
  NodeId s = kGround;
  MosParams params;
  bool is_pmos = false;
};

/// A flat netlist. Build once, then hand to one or more Simulators.
class Netlist {
 public:
  Netlist();

  /// Find-or-create a named node.
  NodeId node(const std::string& name);

  /// Create a *rail*: a node whose voltage is prescribed (retargetable at run
  /// time through Simulator::set_rail) and therefore eliminated from the MNA
  /// unknown vector. Ideal for control signals (word lines, sense enables)
  /// and supplies whose branch current is not of interest — in the DRAM
  /// column this halves the matrix size. A rail cannot also be driven by a
  /// voltage source.
  NodeId add_rail(const std::string& name, double initial);
  bool is_rail(NodeId id) const;
  double rail_initial(NodeId id) const;
  /// Look up an existing node.
  std::optional<NodeId> find_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  size_t node_count() const { return node_names_.size(); }

  /// Add devices. Names must be unique per device class.
  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b, double farads);
  SourceId add_vsource(const std::string& name, NodeId pos, NodeId neg,
                       double dc);
  void add_nmos(const std::string& name, NodeId d, NodeId g, NodeId s,
                const MosParams& p);
  void add_pmos(const std::string& name, NodeId d, NodeId g, NodeId s,
                const MosParams& p);

  /// Change the value of an existing resistor (defect-resistance sweeps
  /// reuse one netlist instead of rebuilding). Simulators constructed
  /// before the change are unaffected; construct a new one after updating.
  void set_resistance(const std::string& name, double ohms);

  SourceId find_source(const std::string& name) const;

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> node_names_;
  std::vector<char> rail_flags_;          // parallel to node_names_
  std::vector<double> rail_initials_;     // parallel to node_names_
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace pf::spice
