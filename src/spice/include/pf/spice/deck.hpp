// Text netlist decks: a SPICE-flavoured format for building Netlists from
// files/strings and for dumping a built circuit (e.g. the DRAM column) for
// inspection or external simulation.
//
//   * comment lines start with '*' (or '#')
//   .rail VDD 3.3              a known-voltage rail node
//   R1   a   b   100k          resistor
//   C1   n   0   30f           capacitor
//   V1   in  0   2.5           independent voltage source
//   MN1  d   g   s  NMOS vt=0.7 k=400u lambda=0.02
//   MP1  d   g   s  PMOS
//   .end                       optional terminator
//
// Values accept the usual engineering suffixes (f p n u m k meg g t).
#pragma once

#include <string>

#include "pf/spice/netlist.hpp"

namespace pf::spice {

/// Parse an engineering-notation value ("4.5", "30f", "100k", "2.2meg").
/// Throws pf::ParseError on malformed input.
double parse_value(const std::string& text);

/// Render a value with an engineering suffix ("30f", "100k").
std::string format_value(double value);

/// Build a netlist from a deck. Throws pf::ParseError with the line number
/// on malformed input.
Netlist parse_deck(const std::string& deck);

/// Serialize a netlist as a deck (round-trips through parse_deck).
std::string write_deck(const Netlist& netlist);

}  // namespace pf::spice
