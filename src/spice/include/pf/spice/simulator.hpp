// Transient MNA engine.
//
// Integration: backward Euler with adaptive step control driven by Newton
// iteration counts (L-stable, which matters because the DRAM sequencer holds
// quasi-DC plateaus between sharp control edges). Nonlinear solve: damped
// Newton-Raphson with per-iteration voltage-step limiting and a gmin leak on
// every node so floating segments (the whole point of open-defect analysis)
// stay numerically well posed without changing charge-sharing behaviour on
// simulation timescales (gmin = 1e-12 S -> RC leak >> microseconds).
//
// Known-voltage nodes: ground and rails (Netlist::add_rail) are eliminated
// from the unknown vector; their device contributions are folded into the
// right-hand side. Control-heavy circuits like the DRAM column shrink their
// matrix by ~2x this way.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "pf/spice/matrix.hpp"
#include "pf/spice/netlist.hpp"
#include "pf/spice/waveform.hpp"
#include "pf/util/cancellation.hpp"

namespace pf::spice {

struct SimOptions {
  double dt_min = 1e-13;       ///< below this a failed step is fatal [s]
  double dt_max = 2e-10;       ///< step ceiling [s]
  double dt_initial = 1e-11;   ///< first step of each run_for segment [s]
  double vntol = 1e-6;         ///< node-voltage convergence tolerance [V]
  int max_nr_iters = 60;       ///< Newton iterations per step
  double gmin = 1e-12;         ///< leak conductance per node [S]
  double v_step_limit = 1.0;   ///< Newton damping clamp [V per iteration]
  double default_slew = 2e-10; ///< source/rail retarget ramp time [s]

  // Watchdogs over the Simulator's lifetime (one experiment when, as in the
  // sweep engines, a fresh column/simulator is built per attempt). Both
  // throw ConvergenceError when exceeded, so a pathological grid point is
  // bounded instead of hanging a production sweep.
  uint64_t max_total_nr_iters = 0;  ///< total Newton budget; 0 = unlimited
  double max_wall_seconds = 0.0;    ///< wall-clock budget [s]; 0 = unlimited

  /// Cooperative cancellation, checked once per accepted step alongside the
  /// watchdogs. When the token trips (Ctrl-C in a sweep CLI, a global
  /// deadline) the transient throws pf::CancelledError — NOT a
  /// ConvergenceError, so retry loops abandon the experiment instead of
  /// re-attempting it. The default token is never tripped.
  pf::CancellationToken cancel;
};

/// Statistics accumulated over the life of a Simulator (for the solver
/// ablation bench and for convergence regression tests).
struct SimStats {
  uint64_t steps = 0;
  uint64_t nr_iterations = 0;
  uint64_t rejected_steps = 0;
  uint64_t injected_faults = 0;  ///< faults applied by the test-only injector
};

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist, SimOptions options = {});

  double time() const { return t_; }
  const SimOptions& options() const { return options_; }
  const SimStats& stats() const { return stats_; }

  /// Current voltage of a node (ground returns 0, rails their level).
  double node_voltage(NodeId n) const;

  /// Override a node's state voltage. This is the floating-voltage
  /// initialization hook of the fault-analysis method: it rewrites the
  /// "previous" solution so the next step starts charge redistribution from
  /// the overridden value. Rails and ground cannot be overridden; overriding
  /// a node that a source holds has no lasting effect (the solver snaps it
  /// back within one step).
  void set_node_voltage(NodeId n, double volts);

  /// Retarget an independent source with the default (or given) slew.
  void set_source(SourceId s, double volts);
  void set_source(SourceId s, double volts, double slew);
  double source_value(SourceId s) const;

  /// Retarget a rail with the default (or given) slew.
  void set_rail(NodeId rail, double volts);
  void set_rail(NodeId rail, double volts, double slew);

  /// Called after every accepted step with (time, simulator).
  using StepCallback = std::function<void(double, const Simulator&)>;

  /// Advance the simulation by `duration` seconds.
  void run_for(double duration, const StepCallback& callback = {});

  /// Advance with a temporarily raised step ceiling: used for long idle
  /// stretches (retention pauses) where nothing switches and backward
  /// Euler's L-stability makes millisecond steps safe.
  void run_for_with_ceiling(double duration, double dt_max,
                            const StepCallback& callback = {});

 private:
  void load_system(double h, const std::vector<double>& v_prev,
                   double t_new);
  /// One backward-Euler step of size h; returns Newton iterations used or -1
  /// on non-convergence. On success commits the new state.
  int try_step(double h, double t_new);
  /// Apply an armed test-only injection (throws or charges iterations).
  /// Returns true when the injection consumed the transient (kNanVoltage):
  /// the caller must skip the solve, leaving the poisoned state committed.
  bool apply_injected_fault();
  /// Enforce SimOptions::max_total_nr_iters / max_wall_seconds / cancel.
  void check_watchdogs();

  const Netlist& net_;
  SimOptions options_;
  SimStats stats_;

  size_t n_nodes_ = 0;        // including ground and rails
  size_t n_node_unknowns_ = 0;
  size_t n_unknowns_ = 0;     // node unknowns + #vsources
  std::vector<int> unknown_of_node_;  // -1 for ground/rails
  std::vector<NodeId> node_of_unknown_;  // inverse map for diagnostics
  double t_ = 0.0;
  double dt_ = 0.0;

  // Failure diagnostics: the node with the largest undamped Newton delta in
  // the most recent try_step, so convergence errors can name it.
  NodeId worst_node_ = kGround;
  double worst_dv_ = 0.0;

  // Wall-clock watchdog anchor, started lazily by the first run_for.
  std::chrono::steady_clock::time_point wall_start_{};
  bool wall_started_ = false;

  std::vector<double> v_;        // node voltages incl. ground/rails, committed
  std::vector<double> branch_i_; // vsource branch currents, committed
  std::vector<RampedLevel> source_levels_;
  std::vector<RampedLevel> rail_levels_;  // indexed by NodeId (unused slots idle)

  // Scratch buffers reused across steps (no per-step allocation).
  Matrix g_;
  std::vector<double> rhs_;
  std::vector<size_t> perm_;
  std::vector<double> x_;       // candidate unknown vector
  std::vector<double> v_cand_;  // candidate node voltages incl. known nodes
  std::vector<double> v_prev_scratch_;
};

}  // namespace pf::spice
