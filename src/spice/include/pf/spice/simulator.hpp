// Backward-compatible facade over the compile-once circuit pipeline.
//
// Simulator keeps the original one-shot API — construct from a Netlist, run
// a transient — while the actual engine lives in CircuitTemplate +
// CompiledCircuit (pf/spice/circuit.hpp). Each Simulator compiles a private
// template from a frozen copy of the netlist; callers that evaluate the same
// topology many times (parameter sweeps) should build one CircuitTemplate
// and stamp CompiledCircuits from it instead.
//
// Engine notes (see circuit.hpp for the full story): backward Euler with
// adaptive step control, damped Newton-Raphson with per-iteration voltage
// step limiting, gmin leak on every node, and known-voltage (rail) nodes
// eliminated from the unknown vector. Circuits with voltage sources use the
// dense partial-pivot LU path — bit-identical to the pre-pipeline engine —
// while source-free circuits take the compiled sparse static-order path.
#pragma once

#include <functional>
#include <memory>

#include "pf/spice/circuit.hpp"

namespace pf::spice {

class Simulator {
 public:
  /// Compiles a private template from a copy of `netlist`: later mutation of
  /// the caller's netlist does not affect this Simulator (construct a new
  /// one after updating, as before).
  explicit Simulator(const Netlist& netlist, SimOptions options = {});

  double time() const { return ckt_.time(); }
  const SimOptions& options() const { return ckt_.options(); }
  const SimStats& stats() const { return ckt_.stats(); }

  /// Current voltage of a node (ground returns 0, rails their level).
  double node_voltage(NodeId n) const { return ckt_.node_voltage(n); }

  /// Override a node's state voltage. This is the floating-voltage
  /// initialization hook of the fault-analysis method: it rewrites the
  /// "previous" solution so the next step starts charge redistribution from
  /// the overridden value. Rails and ground cannot be overridden; overriding
  /// a node that a source holds has no lasting effect (the solver snaps it
  /// back within one step).
  void set_node_voltage(NodeId n, double volts) {
    ckt_.set_node_voltage(n, volts);
  }

  /// Retarget an independent source with the default (or given) slew.
  void set_source(SourceId s, double volts) { ckt_.set_source(s, volts); }
  void set_source(SourceId s, double volts, double slew) {
    ckt_.set_source(s, volts, slew);
  }
  double source_value(SourceId s) const { return ckt_.source_value(s); }

  /// Retarget a rail with the default (or given) slew.
  void set_rail(NodeId rail, double volts) { ckt_.set_rail(rail, volts); }
  void set_rail(NodeId rail, double volts, double slew) {
    ckt_.set_rail(rail, volts, slew);
  }

  /// Called after every accepted step with (time, simulator).
  using StepCallback = std::function<void(double, const Simulator&)>;

  /// Advance the simulation by `duration` seconds.
  void run_for(double duration, const StepCallback& callback = {});

  /// Advance with a temporarily raised step ceiling: used for long idle
  /// stretches (retention pauses) where nothing switches and backward
  /// Euler's L-stability makes millisecond steps safe.
  void run_for_with_ceiling(double duration, double dt_max,
                            const StepCallback& callback = {});

  /// The underlying pipeline pieces, for reuse-aware callers that want to
  /// snapshot/restore state or restamp parameters on the facade's circuit.
  const std::shared_ptr<const CircuitTemplate>& circuit_template() const {
    return tpl_;
  }
  CompiledCircuit& circuit() { return ckt_; }
  const CompiledCircuit& circuit() const { return ckt_; }

 private:
  std::shared_ptr<const CircuitTemplate> tpl_;
  CompiledCircuit ckt_;
};

}  // namespace pf::spice
