// Solver backends: scalar (one transient per CompiledCircuit) and batched
// (N transients advanced in lockstep over one shared CircuitTemplate).
//
// The batched backend exists because the sweep engines evaluate whole grid
// rows whose lanes differ ONLY in initial conditions — same topology, same
// defect resistance, same operation sequence. With the template's compiled
// elimination schedule shared across lanes, every factor/solve loop becomes
// a lane-inner loop over contiguous SoA storage that the compiler
// auto-vectorizes (SIMD across the U axis), and all schedule traversal and
// index arithmetic is paid once per row instead of once per point.
//
// Bit-identity contract: a lane of BatchedTransient retraces EXACTLY the
// floating-point trajectory of a scalar CompiledCircuit given the same
// starting state — same step-size decisions, same Newton iterations, same
// committed voltages and statistics. This holds because lanes never exchange
// data (each performs the scalar arithmetic on its own values, merely
// interleaved in time with the other lanes) and both engines compile the
// kernels in engine_internal.hpp. The golden A/B suite gates it.
//
// Divergence/fallback contract: lanes fail INDEPENDENTLY. A lane whose step
// control collapses below dt_min or whose Newton budget trips records the
// failure (lane_failed / lane_error) and stops advancing; the batch keeps
// going. Callers re-run failed lanes through the scalar robust-retry path,
// so a batched failure can cost only performance, never a wrong result.
// Cancellation is the one batch-wide event: it throws pf::CancelledError for
// the whole batch, matching the scalar engine's abandon-don't-retry rule.
//
// Deliberate non-features (the dispatcher routes such work to the scalar
// engine instead): wall-clock watchdogs (nondeterministic — which lane trips
// first depends on scheduling), solver fault injection (per-experiment
// thread-local context has no lane analogue), step callbacks, and circuits
// with voltage sources (no compiled sparse schedule to share).
#pragma once

#include <string>
#include <vector>

#include "pf/spice/circuit.hpp"

namespace pf::spice {

/// Which transient engine a sweep uses per grid point / per grid row.
enum class SolverBackend {
  kScalar,   ///< one CompiledCircuit per point (the reference engine)
  kBatched,  ///< whole-row lockstep lanes over one shared template
};

/// Stable names for flags, wire formats and logs: "scalar" / "batched".
const char* solver_backend_name(SolverBackend backend);

/// Inverse of solver_backend_name; throws pf::Error on an unknown name.
SolverBackend parse_solver_backend(const std::string& name);

/// N transient run states advanced in lockstep (see file comment for the
/// full contract). Not thread-safe; one BatchedTransient per thread.
///
/// Lanes share what a grid row shares — template, SimOptions, parameter
/// values (defect resistance), rail drive — and hold per-lane everything
/// that evolves: node voltages, step size, statistics, failure state.
/// Storage is lane-major SoA: element e of lane l lives at [e * lanes + l],
/// so per-element lane loops run over contiguous memory.
class BatchedTransient {
 public:
  /// Builds a batch from a donor run state: the donor's template, options
  /// and parameter values (resistances) are shared by every lane. Throws
  /// pf::Error when the template has no compiled sparse schedule (voltage
  /// sources present) or when options request a wall-clock watchdog.
  BatchedTransient(const CompiledCircuit& donor, size_t lanes);

  size_t lanes() const { return lanes_; }
  const SimOptions& options() const { return options_; }
  /// Common phase time: every run_for ends with all live lanes exactly at
  /// the same t, which is what lets rail retargeting stay batch-wide.
  double time() const { return t_; }

  /// Seed a lane from a scalar snapshot (CompiledCircuit::save_state of a
  /// circuit on the same template). Every lane must be seeded from the same
  /// phase point: the first load fixes the batch time and rail ramps, later
  /// loads must agree on t. Statistics are restored per lane, so watchdog
  /// budgets accrue exactly as they would in the scalar engine.
  void load_state(size_t lane, const CompiledCircuit::State& state);

  double node_voltage(size_t lane, NodeId n) const;
  /// Per-lane floating-voltage override (same rules as the scalar engine:
  /// neither ground nor a rail).
  void set_node_voltage(size_t lane, NodeId n, double volts);

  /// Batch-wide rail retarget with the default (or given) slew, applied at
  /// the common phase time — identical to each lane's scalar set_rail.
  void set_rail(NodeId rail, double volts);
  void set_rail(NodeId rail, double volts, double slew);

  /// Advance every live lane by `duration` seconds. Lane step control is
  /// fully independent (per-lane h, dt, Newton effort); the lockstep is in
  /// the execution schedule, not the numerics. Failed lanes are skipped.
  /// Throws pf::CancelledError batch-wide on cooperative cancellation.
  void run_for(double duration);

  /// Advance with a temporarily raised step ceiling (retention pauses),
  /// mirroring CompiledCircuit::run_for_with_ceiling.
  void run_for_with_ceiling(double duration, double dt_max);

  bool lane_failed(size_t lane) const { return failed_[check_lane(lane)]; }
  /// The failure message (scalar ConvergenceError format) of a failed lane.
  const std::string& lane_error(size_t lane) const {
    return error_[check_lane(lane)];
  }
  const SimStats& lane_stats(size_t lane) const {
    return stats_[check_lane(lane)];
  }

 private:
  enum class StepPhase : uint8_t { kIdle, kInNewton, kDone };

  size_t check_lane(size_t lane) const;
  /// Cancel throws batch-wide; a tripped Newton budget fails the lane and
  /// returns false.
  bool check_lane_watchdogs(size_t lane);
  void fail_lane(size_t lane, std::string message);

  void ensure_static_stamps();
  void ensure_rc_stamps(size_t lane, double h);
  void build_rhs_base(size_t lane, double h);
  void begin_step(size_t lane, double h, double t_new);
  /// One Newton iteration for every in-step lane; resolves lanes that
  /// converge (commit + accept) or exhaust/diverge (reject) this wave.
  void newton_wave(double t_stop, size_t& live);
  void resolve_accept(size_t lane, int iters);
  void resolve_reject(size_t lane, double t_stop, size_t& live);

  std::shared_ptr<const CircuitTemplate> tpl_;
  SimOptions options_;
  size_t lanes_ = 0;
  double t_ = 0.0;
  bool time_seeded_ = false;

  // Shared across lanes (identical by the row contract).
  std::vector<double> r_ohms_;
  std::vector<RampedLevel> rail_levels_;  // indexed by NodeId
  bool static_dirty_ = true;
  std::vector<double> g_static_;  // per slot (lane-invariant)

  // Per-lane scalars.
  std::vector<double> t_lane_;
  std::vector<double> dt_;
  std::vector<double> cached_h_;
  std::vector<SimStats> stats_;
  std::vector<char> failed_;
  std::vector<std::string> error_;
  std::vector<NodeId> worst_node_;
  std::vector<double> worst_dv_;

  // Lane-major SoA state and scratch ([element * lanes_ + lane]).
  std::vector<double> v_;         // committed node voltages incl. known nodes
  std::vector<double> v_prev_;    // previous committed solution, per step
  std::vector<double> v_cand_;    // candidate node voltages
  std::vector<double> x_;         // candidate unknowns, elimination order
  std::vector<double> g_rc_;      // g_static_ + capacitor geq, per slot
  std::vector<double> a_;         // working factor values, per slot
  std::vector<double> rhs_;
  std::vector<double> rhs_base_;
  std::vector<double> pivot_row_;  // packed U(k, j), per k

  // Per-run_for step bookkeeping (members to avoid per-call allocation).
  std::vector<StepPhase> step_phase_;
  std::vector<double> step_h_;
  std::vector<double> step_t_new_;
  std::vector<int> step_iter_;
  std::vector<uint64_t> steps_since_check_;
  std::vector<char> pivot_failed_;
};

}  // namespace pf::spice
