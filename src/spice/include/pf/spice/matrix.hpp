// Dense linear algebra for the MNA solver.
//
// Circuit matrices in this project are tiny (tens of unknowns), so a dense
// row-major matrix with partial-pivot LU is both simpler and faster than a
// sparse solver. The LU factorization works in place and reuses caller
// buffers so the transient loop performs no per-step allocation.
#pragma once

#include <cstddef>
#include <vector>

#include "pf/util/error.hpp"

namespace pf::spice {

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), a_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return a_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return a_[r * cols_ + c]; }

  /// Set every entry to zero (keeps the allocation).
  void clear();

  double* data() { return a_.data(); }
  const double* data() const { return a_.data(); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> a_;
};

/// In-place LU factorization with partial pivoting.
/// `perm` receives the row permutation. Throws pf::ConvergenceError when the
/// matrix is numerically singular (pivot below `min_pivot`).
void lu_factor(Matrix& a, std::vector<size_t>& perm, double min_pivot = 1e-30);

/// Solve L U x = P b for x using the output of lu_factor. `b` is overwritten
/// with the solution.
void lu_solve(const Matrix& lu, const std::vector<size_t>& perm,
              std::vector<double>& b);

}  // namespace pf::spice
