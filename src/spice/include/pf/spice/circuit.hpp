// Compile-once / stamp-many circuit pipeline.
//
// The sweep engines (src/analysis) evaluate the same circuit topology at
// thousands of (defect resistance, initial voltage) points. Splitting the old
// monolithic Simulator into two halves removes every per-point rebuild from
// that hot path:
//
//  * CircuitTemplate — the immutable "compiled" half: a frozen copy of the
//    netlist, the known/unknown node partition, and (when the circuit has no
//    voltage sources) the full symbolic factorization — a fill-reducing
//    minimum-degree permutation, the filled sparsity pattern as flat slot
//    arrays, a static elimination schedule, and per-device stamp plans that
//    resolve node -> matrix-slot indirection once. Building a template is the
//    expensive symbolic pass; it happens once per topology and is shared
//    (via shared_ptr) by any number of run states on any number of threads.
//
//  * CompiledCircuit — the mutable run state: node voltages, source/rail
//    ramp levels, time, step size, statistics, and the numeric matrix
//    values. It exposes the same transient API the old Simulator had
//    (set_rail / set_source / run_for / ...) plus what sweeps need:
//    ParamHandle-based restamping (set_resistance), deep state snapshots
//    (save_state / restore_state) and reset_to_initial(), which reproduces
//    the exact state of a freshly constructed circuit.
//
// Numerics: circuits WITH voltage sources keep the dense partial-pivot LU
// path, bit-for-bit identical to the old engine (generic spice decks are
// regression-tested against it). Circuits WITHOUT voltage sources — the DRAM
// column eliminates all supplies as rails — use the sparse static-order path
// compiled into the template. Both paths are fully deterministic: a restored
// snapshot or a reset_to_initial() run state retraces exactly the same
// floating-point trajectory as a freshly built one, which is what lets the
// analysis layer reuse circuits across grid points while keeping sweep
// results bit-identical to the rebuild-per-point baseline.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pf/spice/matrix.hpp"
#include "pf/spice/netlist.hpp"
#include "pf/spice/sim_options.hpp"
#include "pf/spice/waveform.hpp"

namespace pf::spice {

/// Typed handle to a numeric parameter a sweep varies without recompiling
/// the template — today always a resistance (defect resistance, cell leak).
/// Obtained from CircuitTemplate::resistance_param and applied with
/// CompiledCircuit::set_resistance. Handles are plain indices into the
/// template's device table: trivially copyable, valid for the template's
/// lifetime, and shared by every CompiledCircuit of that template.
struct ParamHandle {
  int index = -1;
  bool valid() const { return index >= 0; }
};

/// Immutable compiled topology. Thread-safe to share: everything here is
/// written once by the constructor and only read afterwards.
class CircuitTemplate {
 public:
  /// Compiles the netlist (taken by value: the template owns a frozen copy,
  /// so later mutation of the caller's netlist cannot desynchronize it).
  explicit CircuitTemplate(Netlist netlist);

  const Netlist& netlist() const { return net_; }

  /// Handle for restamping the named resistor on a CompiledCircuit.
  /// Throws pf::Error when no such resistor exists.
  ParamHandle resistance_param(const std::string& name) const;

  size_t node_count() const { return n_nodes_; }
  size_t unknown_count() const { return n_unknowns_; }
  /// True when the static-order sparse path is compiled in (no vsources).
  bool sparse() const { return sparse_; }
  /// Stored entries of the filled factor pattern (0 in dense mode).
  size_t nonzero_count() const { return nnz_; }

 private:
  friend class CompiledCircuit;
  friend class BatchedTransient;  // lockstep backend (solver_backend.hpp)

  void build_symbolic();

  // --- common to both engines -------------------------------------------
  Netlist net_;
  size_t n_nodes_ = 0;         // including ground and rails
  size_t n_node_unknowns_ = 0;
  size_t n_unknowns_ = 0;      // node unknowns + #vsources (dense mode)
  std::vector<int> unknown_of_node_;     // -1 for ground/rails
  std::vector<NodeId> node_of_unknown_;  // inverse map for diagnostics
  std::vector<NodeId> rail_nodes_;       // known nodes other than ground
  bool sparse_ = false;

  // --- sparse engine: permutation + filled pattern ----------------------
  size_t nnz_ = 0;
  std::vector<int> unknown_of_pos_;   // elimination order: position -> unknown
  std::vector<int> pos_of_unknown_;
  std::vector<NodeId> node_of_pos_;
  std::vector<int32_t> slot_of_;      // n*n permuted pattern, -1 = structural 0
  std::vector<int32_t> diag_slot_;    // per position

  // --- sparse engine: static elimination schedule -----------------------
  // Right-looking LU without pivoting over the filled pattern. For pivot
  // position k: rows_ lists the sub-diagonal entries of column k (these
  // become L), cols_ the super-diagonal entries of row k (these are U), and
  // upd_slots_ the target slot of every (row x col) rank-1 update, laid out
  // row-major per step. The same lists drive the triangular solves.
  struct FactorStep {
    uint32_t row_begin = 0, row_end = 0;  // into rows_
    uint32_t col_begin = 0, col_end = 0;  // into cols_
  };
  struct FactorRow {
    int32_t i = 0;          // row position
    int32_t ik_slot = 0;    // slot of (i, k)
    uint32_t upd_begin = 0; // into upd_slots_, one entry per step column
  };
  struct FactorCol {
    int32_t j = 0;          // column position
    int32_t kj_slot = 0;    // slot of (k, j)
  };
  std::vector<FactorStep> steps_;
  std::vector<FactorRow> rows_;
  std::vector<FactorCol> cols_;
  std::vector<int32_t> upd_slots_;

  // --- sparse engine: device stamp plans --------------------------------
  // Node -> slot indirection resolved at compile time; -1 marks a term that
  // folds into the RHS (known-node terminal) or vanishes (both known).
  struct ResistorPlan {
    int32_t saa = -1, sbb = -1, sab = -1, sba = -1;  // matrix slots
    int32_t pa = -1, pb = -1;  // permuted row of each terminal (-1 = known)
    NodeId a = kGround, b = kGround;
  };
  struct CapacitorPlan {
    int32_t saa = -1, sbb = -1, sab = -1, sba = -1;
    int32_t pa = -1, pb = -1;
    NodeId a = kGround, b = kGround;
    double farads = 0.0;
  };
  struct MosfetPlan {
    NodeId d = kGround, g = kGround, s = kGround;
    MosParams params;
    double sigma = 1.0;        // +1 NMOS, -1 PMOS
    int32_t pu[3] = {-1, -1, -1};    // permuted row of {g, d, s}
    int32_t slot[2][3] = {{-1, -1, -1}, {-1, -1, -1}};
    // slot[r][c]: row r in {d, s}, column c in {g, d, s}; -1 if either known.
  };
  std::vector<ResistorPlan> res_plans_;
  std::vector<int32_t> res_folds_;  // resistor indices with one known terminal
  std::vector<CapacitorPlan> cap_plans_;
  std::vector<MosfetPlan> mos_plans_;
};

/// Mutable run state over a shared CircuitTemplate. Copying a
/// CompiledCircuit is cheap relative to recompiling (it duplicates vectors,
/// never the symbolic pass) and yields an independent run state sharing the
/// same template — this is how DramColumn::clone_fresh hands each sweep
/// worker its own circuit. Not thread-safe itself: one CompiledCircuit per
/// thread.
class CompiledCircuit {
 public:
  explicit CompiledCircuit(std::shared_ptr<const CircuitTemplate> tpl,
                           SimOptions options = {});

  const CircuitTemplate& circuit_template() const { return *tpl_; }
  const std::shared_ptr<const CircuitTemplate>& template_ptr() const {
    return tpl_;
  }

  double time() const { return t_; }
  const SimOptions& options() const { return options_; }
  /// Replace the engine options (retry loops tighten tolerances between
  /// attempts). Leaves run state untouched: combine with reset_to_initial()
  /// to reproduce a fresh build under the new options.
  void set_options(const SimOptions& options);
  const SimStats& stats() const { return stats_; }

  /// Current voltage of a node (ground returns 0, rails their level).
  double node_voltage(NodeId n) const;

  /// Override a node's state voltage. This is the floating-voltage
  /// initialization hook of the fault-analysis method: it rewrites the
  /// "previous" solution so the next step starts charge redistribution from
  /// the overridden value. Rails and ground cannot be overridden; overriding
  /// a node that a source holds has no lasting effect (the solver snaps it
  /// back within one step).
  void set_node_voltage(NodeId n, double volts);

  /// Retarget an independent source with the default (or given) slew.
  void set_source(SourceId s, double volts);
  void set_source(SourceId s, double volts, double slew);
  double source_value(SourceId s) const;

  /// Retarget a rail with the default (or given) slew.
  void set_rail(NodeId rail, double volts);
  void set_rail(NodeId rail, double volts, double slew);

  /// Restamp a template parameter (defect resistance sweep hot path): takes
  /// effect from the next step, invalidating the cached static conductances
  /// but never the symbolic factorization.
  void set_resistance(ParamHandle h, double ohms);
  double resistance(ParamHandle h) const;

  /// Called after every accepted step with (time, circuit).
  using StepCallback = std::function<void(double, const CompiledCircuit&)>;

  /// Advance the simulation by `duration` seconds.
  void run_for(double duration, const StepCallback& callback = {});

  /// Advance with a temporarily raised step ceiling: used for long idle
  /// stretches (retention pauses) where nothing switches and backward
  /// Euler's L-stability makes millisecond steps safe.
  void run_for_with_ceiling(double duration, double dt_max,
                            const StepCallback& callback = {});

  /// Deep copy of everything that evolves during a transient: time, step
  /// size, node voltages, branch currents, in-flight ramps, and statistics
  /// (the Newton-budget watchdog counts over a run state's life, so restored
  /// state must restore the accrued count too). Parameter values and cached
  /// stamps are NOT part of a snapshot — they belong to the (circuit,
  /// parameters) configuration, not to the trajectory.
  struct State {
    double t = 0.0;
    double dt = 0.0;
    std::vector<double> v;
    std::vector<double> branch_i;
    std::vector<RampedLevel> sources;
    std::vector<RampedLevel> rails;
    SimStats stats;
  };
  State save_state() const;
  /// Restore a snapshot taken on a circuit of the same template. The wall-
  /// clock watchdog anchor restarts at the next run_for (wall time is a
  /// bound, not part of the deterministic trajectory).
  void restore_state(const State& state);

  /// Return the run state to exactly what a freshly constructed
  /// CompiledCircuit(tpl, options()) would hold — same voltages, ramps,
  /// time, zeroed statistics. Parameter overrides survive (they model the
  /// physical circuit, not the trajectory).
  void reset_to_initial();

 private:
  // The batched backend seeds its lanes from a donor run state (template,
  // options, parameter values) without widening the public API.
  friend class BatchedTransient;

  // Dense engine (verbatim port of the original Simulator: circuits with
  // voltage sources keep bit-identical numerics).
  void load_system_dense(double h, const std::vector<double>& v_prev,
                         double t_new);
  int try_step_dense(double h, double t_new);

  // Sparse static-order engine.
  void ensure_static_stamps();
  void ensure_rc_stamps(double h);
  void build_rhs_base(double h, const std::vector<double>& v_prev);
  bool factor_and_solve_sparse();  // false on a tiny pivot
  int try_step_sparse(double h, double t_new);

  int try_step(double h, double t_new);
  bool apply_injected_fault();
  void check_watchdogs();
  void init_state();  // shared by the constructor and reset_to_initial

  std::shared_ptr<const CircuitTemplate> tpl_;
  SimOptions options_;
  SimStats stats_;

  double t_ = 0.0;
  double dt_ = 0.0;

  // Failure diagnostics: the node with the largest undamped Newton delta in
  // the most recent try_step, so convergence errors can name it.
  NodeId worst_node_ = kGround;
  double worst_dv_ = 0.0;

  // Wall-clock watchdog anchor, started lazily by the first run_for.
  std::chrono::steady_clock::time_point wall_start_{};
  bool wall_started_ = false;

  std::vector<double> v_;        // node voltages incl. ground/rails, committed
  std::vector<double> branch_i_; // vsource branch currents, committed
  std::vector<RampedLevel> source_levels_;
  std::vector<RampedLevel> rail_levels_;  // indexed by NodeId (unused idle)

  // Parameter values, indexed like the template's resistor table.
  std::vector<double> r_ohms_;

  // Sparse numeric caches. All cache contents are pure functions of
  // (template, parameters, h), so a cache hit and a rebuild produce the
  // same bits — reuse cannot perturb results.
  bool static_dirty_ = true;
  std::vector<double> g_static_;  // resistors + gmin, per slot
  double cached_h_ = -1.0;
  std::vector<double> g_rc_;      // g_static_ + capacitor geq, per slot
  std::vector<double> a_;         // working factor values, per slot
  std::vector<double> rhs_base_;  // per-step RHS (known-node folds, companions)

  // Scratch buffers reused across steps (no per-step allocation).
  Matrix g_;                     // dense engine
  std::vector<size_t> perm_;     // dense engine
  std::vector<double> rhs_;
  std::vector<double> x_;        // candidate unknown vector
  std::vector<double> v_cand_;   // candidate node voltages incl. known nodes
  std::vector<double> v_prev_scratch_;
  std::vector<double> pivot_row_scratch_;  // packed U(k, j) values, per k
};

}  // namespace pf::spice
