// Source waveforms.
//
// The DRAM sequencer drives control signals by retargeting sources between
// transient segments; to keep Newton iterations well conditioned every
// retarget is applied as a finite-slew ramp rather than an ideal step.
#pragma once

#include <vector>

#include "pf/util/error.hpp"

namespace pf::spice {

/// Piecewise-linear waveform over absolute simulation time.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(double dc) { points_.push_back({0.0, dc}); }

  /// Append a breakpoint; times must be non-decreasing.
  void add_point(double t, double v);

  /// Value at time t: linear interpolation between breakpoints, clamped to
  /// the first/last value outside the breakpoint range.
  double value(double t) const;

  /// Times of breakpoints inside (t0, t1): used by the transient engine to
  /// land steps exactly on waveform corners.
  std::vector<double> breakpoints_between(double t0, double t1) const;

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  /// Drop breakpoints strictly before `t` (keeping the interpolated value at
  /// `t` as the new first point) to bound memory in long sequences.
  void compact_before(double t);

 private:
  struct Point {
    double t;
    double v;
  };
  std::vector<Point> points_;
};

/// A retargetable source value: current level plus an in-flight linear ramp.
/// This is the engine-facing handle the sequencer uses between segments.
class RampedLevel {
 public:
  explicit RampedLevel(double initial = 0.0)
      : start_v_(initial), end_v_(initial) {}

  /// Begin a linear ramp from value(t_now) to `target` over `slew` seconds.
  void retarget(double t_now, double target, double slew);

  double value(double t) const;

  /// End time of the in-flight ramp (== start time when idle).
  double ramp_end() const { return t_end_; }
  double target() const { return end_v_; }

 private:
  double t_start_ = 0.0;
  double t_end_ = 0.0;
  double start_v_ = 0.0;
  double end_v_ = 0.0;
};

}  // namespace pf::spice
