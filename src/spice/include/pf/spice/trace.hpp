// Waveform recording: attach a Trace to a Simulator run and collect named
// node series for inspection, assertions or CSV export.
#pragma once

#include <string>
#include <vector>

#include "pf/spice/netlist.hpp"
#include "pf/spice/simulator.hpp"

namespace pf::spice {

class Trace {
 public:
  /// Probe the given nodes (looked up by name in `netlist`).
  Trace(const Netlist& netlist, std::vector<std::string> probe_names);

  /// The callback to pass to Simulator::run_for.
  Simulator::StepCallback callback();

  size_t num_samples() const { return times_.size(); }
  size_t num_probes() const { return names_.size(); }
  const std::vector<std::string>& probe_names() const { return names_; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& series(size_t probe) const;

  /// Linear interpolation of probe `probe` at time t (clamped to the ends).
  double sample_at(size_t probe, double t) const;

  double min_of(size_t probe) const;
  double max_of(size_t probe) const;

  /// Drop all recorded samples (probes stay attached).
  void clear();

  /// CSV with a header row: time,<probe...>.
  std::string to_csv() const;

 private:
  std::vector<std::string> names_;
  std::vector<NodeId> nodes_;
  std::vector<double> times_;
  std::vector<std::vector<double>> values_;
};

}  // namespace pf::spice
