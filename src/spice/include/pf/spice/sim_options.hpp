// Engine knobs and statistics shared by the compile-once circuit pipeline
// (pf/spice/circuit.hpp) and its backward-compatible Simulator facade
// (pf/spice/simulator.hpp).
#pragma once

#include <cstdint>

#include "pf/util/cancellation.hpp"

namespace pf::spice {

struct SimOptions {
  double dt_min = 1e-13;       ///< below this a failed step is fatal [s]
  double dt_max = 2e-10;       ///< step ceiling [s]
  double dt_initial = 1e-11;   ///< first step of each run_for segment [s]
  double vntol = 1e-6;         ///< node-voltage convergence tolerance [V]
  int max_nr_iters = 60;       ///< Newton iterations per step
  double gmin = 1e-12;         ///< leak conductance per node [S]
  double v_step_limit = 1.0;   ///< Newton damping clamp [V per iteration]
  double default_slew = 2e-10; ///< source/rail retarget ramp time [s]

  // Watchdogs over the run state's lifetime (one experiment when, as in the
  // sweep engines, a fresh column/simulator — or a state-snapshot restore —
  // starts each attempt). Both throw ConvergenceError when exceeded, so a
  // pathological grid point is bounded instead of hanging a production
  // sweep.
  uint64_t max_total_nr_iters = 0;  ///< total Newton budget; 0 = unlimited
  double max_wall_seconds = 0.0;    ///< wall-clock budget [s]; 0 = unlimited

  /// Cooperative cancellation, checked once per accepted step alongside the
  /// watchdogs. When the token trips (Ctrl-C in a sweep CLI, a global
  /// deadline) the transient throws pf::CancelledError — NOT a
  /// ConvergenceError, so retry loops abandon the experiment instead of
  /// re-attempting it. The default token is never tripped.
  pf::CancellationToken cancel;
};

/// True when two option sets prescribe the same deterministic behaviour:
/// every numeric knob and watchdog budget equal. The cancellation token and
/// the wall-clock budget's progress are deliberately excluded — they bound
/// execution but never change a successful solve.
bool same_numerics(const SimOptions& a, const SimOptions& b);

/// Statistics accumulated over the life of a run state (for the solver
/// ablation bench and for convergence regression tests).
struct SimStats {
  uint64_t steps = 0;
  uint64_t nr_iterations = 0;
  uint64_t rejected_steps = 0;
  uint64_t injected_faults = 0;  ///< faults applied by the test-only injector
};

}  // namespace pf::spice
