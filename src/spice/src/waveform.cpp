#include "pf/spice/waveform.hpp"

#include <algorithm>

namespace pf::spice {

void Pwl::add_point(double t, double v) {
  PF_CHECK_MSG(points_.empty() || t >= points_.back().t,
               "PWL times must be non-decreasing");
  points_.push_back({t, v});
}

double Pwl::value(double t) const {
  PF_CHECK(!points_.empty());
  if (t <= points_.front().t) return points_.front().v;
  if (t >= points_.back().t) return points_.back().v;
  // Binary search for the segment containing t.
  size_t lo = 0, hi = points_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (points_[mid].t <= t)
      lo = mid;
    else
      hi = mid;
  }
  const auto& p0 = points_[lo];
  const auto& p1 = points_[hi];
  if (p1.t == p0.t) return p1.v;
  const double f = (t - p0.t) / (p1.t - p0.t);
  return p0.v + f * (p1.v - p0.v);
}

std::vector<double> Pwl::breakpoints_between(double t0, double t1) const {
  std::vector<double> out;
  for (const auto& p : points_)
    if (p.t > t0 && p.t < t1) out.push_back(p.t);
  return out;
}

void Pwl::compact_before(double t) {
  if (points_.size() < 2) return;
  const double v = value(t);
  auto first_kept = std::find_if(points_.begin(), points_.end(),
                                 [&](const Point& p) { return p.t >= t; });
  points_.erase(points_.begin(), first_kept);
  points_.insert(points_.begin(), Point{t, v});
}

void RampedLevel::retarget(double t_now, double target, double slew) {
  PF_CHECK(slew >= 0.0);
  start_v_ = value(t_now);
  t_start_ = t_now;
  t_end_ = t_now + slew;
  end_v_ = target;
}

double RampedLevel::value(double t) const {
  if (t >= t_end_ || t_end_ <= t_start_) return end_v_;
  if (t <= t_start_) return start_v_;
  const double f = (t - t_start_) / (t_end_ - t_start_);
  return start_v_ + f * (end_v_ - start_v_);
}

}  // namespace pf::spice
