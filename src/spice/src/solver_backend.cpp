#include "pf/spice/solver_backend.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pf/spice/fault_injection.hpp"
#include "engine_internal.hpp"

namespace pf::spice {

using detail::MosEval;
using detail::eval_square_law;
using detail::kMinPivot;

const char* solver_backend_name(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::kScalar: return "scalar";
    case SolverBackend::kBatched: return "batched";
  }
  return "?";
}

SolverBackend parse_solver_backend(const std::string& name) {
  if (name == "scalar") return SolverBackend::kScalar;
  if (name == "batched") return SolverBackend::kBatched;
  throw Error("unknown solver backend \"" + name +
              "\" (expected \"scalar\" or \"batched\")");
}

// ---------------------------------------------------------------------------
// BatchedTransient
// ---------------------------------------------------------------------------

BatchedTransient::BatchedTransient(const CompiledCircuit& donor, size_t lanes)
    : tpl_(donor.tpl_), options_(donor.options_), lanes_(lanes) {
  PF_CHECK_MSG(lanes_ > 0, "batched backend needs at least one lane");
  const CircuitTemplate& T = *tpl_;
  if (!T.sparse_)
    throw Error(
        "batched backend requires the compiled sparse path (the circuit has "
        "voltage sources); use the scalar backend");
  if (options_.max_wall_seconds > 0.0)
    throw Error(
        "batched backend refuses a wall-clock watchdog (which lane trips "
        "first would be nondeterministic); use the scalar backend");
  r_ohms_ = donor.r_ohms_;

  const size_t L = lanes_;
  const size_t n = T.n_node_unknowns_;
  g_static_.assign(T.nnz_, 0.0);
  g_rc_.assign(T.nnz_ * L, 0.0);
  a_.assign(T.nnz_ * L, 0.0);
  v_.assign(T.n_nodes_ * L, 0.0);
  v_prev_.assign(T.n_nodes_ * L, 0.0);
  v_cand_.assign(T.n_nodes_ * L, 0.0);
  x_.assign(n * L, 0.0);
  rhs_.assign(n * L, 0.0);
  rhs_base_.assign(n * L, 0.0);
  pivot_row_.assign(n * L, 0.0);
  rail_levels_.assign(T.n_nodes_, RampedLevel(0.0));

  t_lane_.assign(L, 0.0);
  dt_.assign(L, options_.dt_initial);
  cached_h_.assign(L, -1.0);
  stats_.assign(L, SimStats{});
  failed_.assign(L, 0);
  error_.assign(L, std::string());
  worst_node_.assign(L, kGround);
  worst_dv_.assign(L, 0.0);

  step_phase_.assign(L, StepPhase::kIdle);
  step_h_.assign(L, 0.0);
  step_t_new_.assign(L, 0.0);
  step_iter_.assign(L, 0);
  steps_since_check_.assign(L, 0);
  pivot_failed_.assign(L, 0);
}

size_t BatchedTransient::check_lane(size_t lane) const {
  PF_CHECK_MSG(lane < lanes_, "bad lane " << lane << " of " << lanes_);
  return lane;
}

void BatchedTransient::load_state(size_t lane,
                                  const CompiledCircuit::State& state) {
  check_lane(lane);
  const CircuitTemplate& T = *tpl_;
  PF_CHECK_MSG(state.v.size() == T.n_nodes_ &&
                   state.rails.size() == T.n_nodes_ && state.branch_i.empty() &&
                   state.sources.empty(),
               "state snapshot does not match this batch's template");
  if (!time_seeded_) {
    t_ = state.t;
    rail_levels_ = state.rails;
    time_seeded_ = true;
  } else {
    PF_CHECK_MSG(state.t == t_,
                 "lanes must be seeded from the same phase time (lane "
                     << lane << " at t=" << state.t << " s, batch at t=" << t_
                     << " s)");
  }
  const size_t L = lanes_;
  for (size_t nd = 0; nd < T.n_nodes_; ++nd) v_[nd * L + lane] = state.v[nd];
  t_lane_[lane] = state.t;
  dt_[lane] = state.dt;
  stats_[lane] = state.stats;
  failed_[lane] = 0;
  error_[lane].clear();
  worst_node_[lane] = kGround;
  worst_dv_[lane] = 0.0;
}

double BatchedTransient::node_voltage(size_t lane, NodeId n) const {
  check_lane(lane);
  PF_CHECK_MSG(n >= 0 && static_cast<size_t>(n) < tpl_->n_nodes_,
               "bad node " << n);
  return v_[static_cast<size_t>(n) * lanes_ + lane];
}

void BatchedTransient::set_node_voltage(size_t lane, NodeId n, double volts) {
  check_lane(lane);
  PF_CHECK_MSG(n > 0 && static_cast<size_t>(n) < tpl_->n_nodes_,
               "cannot override node " << n);
  PF_CHECK_MSG(!tpl_->net_.is_rail(n),
               "cannot override rail " << tpl_->net_.node_name(n));
  v_[static_cast<size_t>(n) * lanes_ + lane] = volts;
}

void BatchedTransient::set_rail(NodeId rail, double volts) {
  set_rail(rail, volts, options_.default_slew);
}

void BatchedTransient::set_rail(NodeId rail, double volts, double slew) {
  PF_CHECK_MSG(rail > 0 && static_cast<size_t>(rail) < tpl_->n_nodes_ &&
                   tpl_->net_.is_rail(rail),
               "node " << rail << " is not a rail");
  rail_levels_[rail].retarget(t_, volts, slew);
}

bool BatchedTransient::check_lane_watchdogs(size_t lane) {
  if (options_.cancel.stop_requested()) {
    std::ostringstream os;
    os << "solve cancelled (" << options_.cancel.reason()
       << ") at t=" << t_lane_[lane] << " s";
    throw CancelledError(os.str());
  }
  if (options_.max_total_nr_iters > 0 &&
      stats_[lane].nr_iterations > options_.max_total_nr_iters) {
    std::ostringstream os;
    os << "Newton iteration watchdog: " << stats_[lane].nr_iterations
       << " iterations exceed the budget of " << options_.max_total_nr_iters
       << " at t=" << t_lane_[lane] << " s";
    fail_lane(lane, os.str());
    return false;
  }
  return true;
}

void BatchedTransient::fail_lane(size_t lane, std::string message) {
  failed_[lane] = 1;
  error_[lane] = std::move(message);
}

void BatchedTransient::ensure_static_stamps() {
  if (!static_dirty_) return;
  const CircuitTemplate& T = *tpl_;
  std::fill(g_static_.begin(), g_static_.end(), 0.0);
  for (size_t i = 0; i < T.res_plans_.size(); ++i) {
    const auto& rp = T.res_plans_[i];
    const double g = 1.0 / r_ohms_[i];
    if (rp.saa >= 0) g_static_[rp.saa] += g;
    if (rp.sab >= 0) g_static_[rp.sab] -= g;
    if (rp.sbb >= 0) g_static_[rp.sbb] += g;
    if (rp.sba >= 0) g_static_[rp.sba] -= g;
  }
  for (size_t p = 0; p < T.n_node_unknowns_; ++p)
    g_static_[T.diag_slot_[p]] += options_.gmin;
  static_dirty_ = false;
  std::fill(cached_h_.begin(), cached_h_.end(), -1.0);
}

void BatchedTransient::ensure_rc_stamps(size_t lane, double h) {
  if (h == cached_h_[lane]) return;
  const CircuitTemplate& T = *tpl_;
  const size_t L = lanes_;
  for (size_t s = 0; s < T.nnz_; ++s) g_rc_[s * L + lane] = g_static_[s];
  for (const auto& cp : T.cap_plans_) {
    const double geq = cp.farads / h;
    if (cp.saa >= 0) g_rc_[static_cast<size_t>(cp.saa) * L + lane] += geq;
    if (cp.sab >= 0) g_rc_[static_cast<size_t>(cp.sab) * L + lane] -= geq;
    if (cp.sbb >= 0) g_rc_[static_cast<size_t>(cp.sbb) * L + lane] += geq;
    if (cp.sba >= 0) g_rc_[static_cast<size_t>(cp.sba) * L + lane] -= geq;
  }
  cached_h_[lane] = h;
}

void BatchedTransient::build_rhs_base(size_t lane, double h) {
  const CircuitTemplate& T = *tpl_;
  const size_t L = lanes_;
  for (size_t p = 0; p < T.n_node_unknowns_; ++p) rhs_base_[p * L + lane] = 0.0;
  // Known-node resistor terms fold into the RHS; known-node voltages are
  // fixed for the whole step (the lane's v_cand_ already holds them at
  // t_new). Same arithmetic and order as the scalar build_rhs_base.
  for (const int32_t i : T.res_folds_) {
    const auto& rp = T.res_plans_[i];
    const double g = 1.0 / r_ohms_[static_cast<size_t>(i)];
    if (rp.pa >= 0)
      rhs_base_[static_cast<size_t>(rp.pa) * L + lane] +=
          g * v_cand_[static_cast<size_t>(rp.b) * L + lane];
    else
      rhs_base_[static_cast<size_t>(rp.pb) * L + lane] +=
          g * v_cand_[static_cast<size_t>(rp.a) * L + lane];
  }
  for (const auto& cp : T.cap_plans_) {
    const double geq = cp.farads / h;
    if (cp.pa >= 0 && cp.pb < 0)
      rhs_base_[static_cast<size_t>(cp.pa) * L + lane] +=
          geq * v_cand_[static_cast<size_t>(cp.b) * L + lane];
    if (cp.pb >= 0 && cp.pa < 0)
      rhs_base_[static_cast<size_t>(cp.pb) * L + lane] +=
          geq * v_cand_[static_cast<size_t>(cp.a) * L + lane];
    const double icomp = geq * (v_prev_[static_cast<size_t>(cp.a) * L + lane] -
                                v_prev_[static_cast<size_t>(cp.b) * L + lane]);
    if (cp.pb >= 0) rhs_base_[static_cast<size_t>(cp.pb) * L + lane] -= icomp;
    if (cp.pa >= 0) rhs_base_[static_cast<size_t>(cp.pa) * L + lane] += icomp;
  }
}

void BatchedTransient::begin_step(size_t lane, double h, double t_new) {
  const CircuitTemplate& T = *tpl_;
  const size_t L = lanes_;
  const size_t n = T.n_node_unknowns_;
  // Start Newton from the committed solution (elimination-order layout).
  for (size_t p = 0; p < n; ++p)
    x_[p * L + lane] = v_[static_cast<size_t>(T.node_of_pos_[p]) * L + lane];
  for (size_t nd = 0; nd < T.n_nodes_; ++nd)
    v_prev_[nd * L + lane] = v_[nd * L + lane];
  // Known-node candidate voltages are fixed for the whole step.
  v_cand_[static_cast<size_t>(kGround) * L + lane] = 0.0;
  for (const NodeId r : T.rail_nodes_)
    v_cand_[static_cast<size_t>(r) * L + lane] = rail_levels_[r].value(t_new);

  ensure_static_stamps();
  ensure_rc_stamps(lane, h);
  build_rhs_base(lane, h);
}

void BatchedTransient::resolve_accept(size_t lane, int iters) {
  const double h = step_h_[lane];
  stats_[lane].steps++;
  t_lane_[lane] = step_t_new_[lane];
  // Step-size control from Newton effort (scalar run_for's rule).
  if (iters <= 3)
    dt_[lane] = std::min(h * 1.5, options_.dt_max);
  else if (iters > 8)
    dt_[lane] = std::max(h * 0.6, options_.dt_min);
  else
    dt_[lane] = h;
  step_phase_[lane] = StepPhase::kIdle;
}

void BatchedTransient::resolve_reject(size_t lane, double /*t_stop*/,
                                      size_t& live) {
  const CircuitTemplate& T = *tpl_;
  const double h = step_h_[lane];
  stats_[lane].rejected_steps++;
  dt_[lane] = h / 4.0;
  if (dt_[lane] < options_.dt_min) {
    std::ostringstream os;
    os << "transient failed to converge at t=" << t_lane_[lane]
       << " s (step h=" << h << " s rejected, next dt " << dt_[lane]
       << " s below dt_min=" << options_.dt_min << " s; worst residual node '"
       << T.net_.node_name(worst_node_[lane]) << "', |dv|=" << worst_dv_[lane]
       << " V)";
    fail_lane(lane, os.str());
    step_phase_[lane] = StepPhase::kDone;
    --live;
    return;
  }
  step_phase_[lane] = StepPhase::kIdle;
}

void BatchedTransient::newton_wave(double t_stop, size_t& live) {
  const CircuitTemplate& T = *tpl_;
  const size_t L = lanes_;
  const size_t n = T.n_node_unknowns_;

  // Scatter candidates and reload matrices for ALL lanes, branchlessly:
  // lanes not in a Newton iteration carry stale values, but every buffer
  // written here is recomputed each wave and only read back for in-step
  // lanes, so the garbage is harmless and the loops stay vectorizable.
  for (size_t p = 0; p < n; ++p) {
    const size_t vb = static_cast<size_t>(T.node_of_pos_[p]) * L;
    const size_t xb = p * L;
    for (size_t l = 0; l < L; ++l) v_cand_[vb + l] = x_[xb + l];
  }
  std::copy(g_rc_.begin(), g_rc_.end(), a_.begin());
  std::copy(rhs_base_.begin(), rhs_base_.end(), rhs_.begin());

  // MOSFET linearization, per lane (the runtime drain/source swap is a
  // per-lane decision). Exact scalar arithmetic and stamp order.
  for (const auto& m : T.mos_plans_) {
    for (size_t l = 0; l < L; ++l) {
      if (step_phase_[l] != StepPhase::kInNewton) continue;
      NodeId nd = m.d;
      NodeId ns = m.s;
      bool swapped = false;
      if (m.sigma * (v_cand_[static_cast<size_t>(nd) * L + l] -
                     v_cand_[static_cast<size_t>(ns) * L + l]) < 0.0) {
        std::swap(nd, ns);
        swapped = true;
      }
      const double vg = v_cand_[static_cast<size_t>(m.g) * L + l];
      const double vd = v_cand_[static_cast<size_t>(nd) * L + l];
      const double vs = v_cand_[static_cast<size_t>(ns) * L + l];
      const double vgs_eff = m.sigma * (vg - vs);
      const double vds_eff = m.sigma * (vd - vs);
      const MosEval e = eval_square_law(vgs_eff, vds_eff, m.params);
      const double ieq =
          m.sigma * e.ids - e.gm * vg - e.gds * vd + (e.gm + e.gds) * vs;
      const NodeId coef_nodes[3] = {m.g, nd, ns};
      const double coefs[3] = {e.gm, e.gds, -(e.gm + e.gds)};
      const int prow[2] = {swapped ? 2 : 1, swapped ? 1 : 2};  // pu index
      const int srow[2] = {swapped ? 1 : 0, swapped ? 0 : 1};  // slot row
      const int scol[3] = {0, swapped ? 2 : 1, swapped ? 1 : 2};
      const double signs[2] = {+1.0, -1.0};
      for (int r = 0; r < 2; ++r) {
        const int ir = m.pu[prow[r]];
        if (ir < 0) continue;
        rhs_[static_cast<size_t>(ir) * L + l] -= signs[r] * ieq;
        for (int c = 0; c < 3; ++c) {
          const double cf = signs[r] * coefs[c];
          const int32_t sl = m.slot[srow[r]][scol[c]];
          if (sl >= 0)
            a_[static_cast<size_t>(sl) * L + l] += cf;
          else
            rhs_[static_cast<size_t>(ir) * L + l] -=
                cf * v_cand_[static_cast<size_t>(coef_nodes[c]) * L + l];
        }
      }
    }
  }

  // Factor + triangular solves over the shared schedule, lane-inner. All
  // lanes are computed (a tiny or zero pivot yields IEEE inf/NaN garbage in
  // lanes already flagged or idle — discarded below); pivot checks apply
  // only to in-step lanes, matching the scalar early-out semantics because
  // a failed factorization's numbers are never committed.
  const int32_t* upd = T.upd_slots_.data();
  std::fill(pivot_failed_.begin(), pivot_failed_.end(), 0);
  for (size_t k = 0; k < n; ++k) {
    const auto& st = T.steps_[k];
    const size_t db = static_cast<size_t>(T.diag_slot_[k]) * L;
    for (size_t l = 0; l < L; ++l) {
      if (step_phase_[l] == StepPhase::kInNewton &&
          std::abs(a_[db + l]) < kMinPivot)
        pivot_failed_[l] = 1;
    }
    const uint32_t ncols = st.col_end - st.col_begin;
    double* pivrow = pivot_row_.data();
    for (uint32_t c = 0; c < ncols; ++c) {
      const size_t sb = static_cast<size_t>(T.cols_[st.col_begin + c].kj_slot) * L;
      for (size_t l = 0; l < L; ++l) pivrow[c * L + l] = a_[sb + l];
    }
    for (uint32_t r = st.row_begin; r < st.row_end; ++r) {
      const auto& row = T.rows_[r];
      const size_t ikb = static_cast<size_t>(row.ik_slot) * L;
      for (size_t l = 0; l < L; ++l) a_[ikb + l] /= a_[db + l];
      const int32_t* ij = upd + row.upd_begin;
      for (uint32_t c = 0; c < ncols; ++c) {
        const size_t tb = static_cast<size_t>(ij[c]) * L;
        const size_t pb = static_cast<size_t>(c) * L;
        for (size_t l = 0; l < L; ++l)
          a_[tb + l] -= a_[ikb + l] * pivrow[pb + l];
      }
    }
  }
  for (size_t k = 0; k < n; ++k) {
    const auto& st = T.steps_[k];
    const size_t kb = k * L;
    for (uint32_t r = st.row_begin; r < st.row_end; ++r) {
      const size_t ib = static_cast<size_t>(T.rows_[r].i) * L;
      const size_t sb = static_cast<size_t>(T.rows_[r].ik_slot) * L;
      for (size_t l = 0; l < L; ++l) rhs_[ib + l] -= a_[sb + l] * rhs_[kb + l];
    }
  }
  for (size_t k = n; k-- > 0;) {
    const auto& st = T.steps_[k];
    const size_t kb = k * L;
    for (uint32_t c = st.col_begin; c < st.col_end; ++c) {
      const size_t sb = static_cast<size_t>(T.cols_[c].kj_slot) * L;
      const size_t jb = static_cast<size_t>(T.cols_[c].j) * L;
      for (size_t l = 0; l < L; ++l) rhs_[kb + l] -= a_[sb + l] * rhs_[jb + l];
    }
    const size_t db = static_cast<size_t>(T.diag_slot_[k]) * L;
    for (size_t l = 0; l < L; ++l) rhs_[kb + l] /= a_[db + l];
  }

  // Damped update + convergence decision, per in-step lane, replicating the
  // scalar order exactly: delta tracking, clamp, finiteness guard BEFORE the
  // iteration counts, then commit-or-continue.
  for (size_t l = 0; l < L; ++l) {
    if (step_phase_[l] != StepPhase::kInNewton) continue;
    if (pivot_failed_[l]) {
      resolve_reject(l, t_stop, live);
      continue;
    }
    double max_dv = 0.0;
    size_t worst_p = 0;
    bool clamped = false;
    for (size_t p = 0; p < n; ++p) {
      double delta = rhs_[p * L + l] - x_[p * L + l];
      if (std::abs(delta) > max_dv) {
        max_dv = std::abs(delta);
        worst_p = p;
      }
      if (std::abs(delta) > options_.v_step_limit) {
        delta = std::copysign(options_.v_step_limit, delta);
        clamped = true;
      }
      x_[p * L + l] += delta;
    }
    worst_node_[l] = T.node_of_pos_[worst_p];
    worst_dv_[l] = max_dv;
    if (!std::isfinite(max_dv)) {
      resolve_reject(l, t_stop, live);
      continue;
    }
    stats_[l].nr_iterations++;
    if (!clamped && max_dv < options_.vntol) {
      // Commit.
      for (size_t p = 0; p < n; ++p)
        v_[static_cast<size_t>(T.node_of_pos_[p]) * L + l] = x_[p * L + l];
      for (const NodeId r : T.rail_nodes_)
        v_[static_cast<size_t>(r) * L + l] =
            rail_levels_[r].value(step_t_new_[l]);
      resolve_accept(l, step_iter_[l]);
    } else if (step_iter_[l] >= options_.max_nr_iters) {
      resolve_reject(l, t_stop, live);
    }
  }
}

void BatchedTransient::run_for(double duration) {
  PF_CHECK(duration >= 0.0);
  PF_CHECK_MSG(!testing::armed(),
               "batched backend cannot run under solver fault injection; "
               "route the row through the scalar backend");
  PF_CHECK_MSG(time_seeded_, "no lane loaded");
  const CircuitTemplate& T = *tpl_;
  const size_t L = lanes_;
  const double t_stop = t_ + duration;

  size_t live = 0;
  for (size_t l = 0; l < L; ++l) {
    steps_since_check_[l] = 0;
    step_phase_[l] = StepPhase::kDone;
    if (failed_[l]) continue;
    // Scalar run_for checks the watchdogs once up front...
    if (!check_lane_watchdogs(l)) continue;
    // ...then seeds the first step of the segment.
    dt_[l] = std::min(options_.dt_initial, duration > 0 ? duration : dt_[l]);
    step_phase_[l] = StepPhase::kIdle;
    ++live;
  }

  while (live > 0) {
    // Open a step on every idle lane (a lane whose last step resolved, or
    // that just entered the segment).
    for (size_t l = 0; l < L; ++l) {
      if (step_phase_[l] != StepPhase::kIdle) continue;
      if (t_lane_[l] >= t_stop - 1e-18) {
        t_lane_[l] = t_stop;
        step_phase_[l] = StepPhase::kDone;
        --live;
        continue;
      }
      ++steps_since_check_[l];
      if (options_.cancel.stop_requested() ||
          options_.max_total_nr_iters > 0 ||
          steps_since_check_[l] % 512 == 0) {
        if (!check_lane_watchdogs(l)) {
          step_phase_[l] = StepPhase::kDone;
          --live;
          continue;
        }
      }
      double h = std::min({dt_[l], options_.dt_max, t_stop - t_lane_[l]});
      // Land exactly on rail ramp corners so edges are not stepped over.
      for (const NodeId rail : T.rail_nodes_) {
        const double corner = rail_levels_[rail].ramp_end();
        if (corner > t_lane_[l] + 1e-18 && corner < t_lane_[l] + h)
          h = corner - t_lane_[l];
      }
      step_h_[l] = h;
      step_t_new_[l] = t_lane_[l] + h;
      begin_step(l, h, step_t_new_[l]);
      step_iter_[l] = 0;
      step_phase_[l] = StepPhase::kInNewton;
    }
    if (live == 0) break;
    for (size_t l = 0; l < L; ++l)
      if (step_phase_[l] == StepPhase::kInNewton) ++step_iter_[l];
    newton_wave(t_stop, live);
  }
  t_ = t_stop;
}

void BatchedTransient::run_for_with_ceiling(double duration, double dt_max) {
  const SimOptions saved = options_;
  options_.dt_max = dt_max;
  options_.dt_initial = dt_max / 10;
  try {
    run_for(duration);
  } catch (...) {
    options_ = saved;
    throw;
  }
  options_ = saved;
}

}  // namespace pf::spice
