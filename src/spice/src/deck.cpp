#include "pf/spice/deck.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

#include "pf/util/strings.hpp"

namespace pf::spice {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void fail(size_t line_no, const std::string& why) {
  throw ParseError("deck line " + std::to_string(line_no) + ": " + why);
}

MosParams parse_mos_params(const std::vector<std::string>& tokens,
                           size_t start, size_t line_no) {
  MosParams p;
  for (size_t i = start; i < tokens.size(); ++i) {
    const auto kv = pf::split(tokens[i], '=');
    if (kv.size() != 2) fail(line_no, "expected key=value, got " + tokens[i]);
    const std::string key = pf::to_lower(kv[0]);
    const double value = parse_value(kv[1]);
    if (key == "vt")
      p.vt = value;
    else if (key == "k")
      p.k = value;
    else if (key == "lambda")
      p.lambda = value;
    else
      fail(line_no, "unknown MOS parameter " + key);
  }
  return p;
}

}  // namespace

double parse_value(const std::string& text) {
  const std::string t = pf::to_lower(pf::trim(text));
  if (t.empty()) throw ParseError("empty value");
  size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw ParseError("bad value '" + text + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return v;
  if (suffix == "f") return v * 1e-15;
  if (suffix == "p") return v * 1e-12;
  if (suffix == "n") return v * 1e-9;
  if (suffix == "u") return v * 1e-6;
  if (suffix == "m") return v * 1e-3;
  if (suffix == "k") return v * 1e3;
  if (suffix == "meg") return v * 1e6;
  if (suffix == "g") return v * 1e9;
  if (suffix == "t") return v * 1e12;
  throw ParseError("unknown value suffix '" + suffix + "' in '" + text + "'");
}

std::string format_value(double value) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static const Scale kScales[] = {{1e12, "t"}, {1e9, "g"},   {1e6, "meg"},
                                  {1e3, "k"},  {1.0, ""},    {1e-3, "m"},
                                  {1e-6, "u"}, {1e-9, "n"},  {1e-12, "p"},
                                  {1e-15, "f"}};
  if (value == 0.0) return "0";
  const double mag = std::abs(value);
  for (const Scale& s : kScales) {
    if (mag >= s.factor * 0.99999) {
      return pf::format_double(value / s.factor, 6) + s.suffix;
    }
  }
  return pf::format_double(value / 1e-15, 6) + "f";
}

Netlist parse_deck(const std::string& deck) {
  Netlist net;
  size_t line_no = 0;
  for (const std::string& raw : pf::split(deck, '\n')) {
    ++line_no;
    const std::string line = pf::trim(raw);
    if (line.empty() || line[0] == '*' || line[0] == '#') continue;
    const auto tokens = tokenize(line);
    const std::string head = pf::to_lower(tokens[0]);
    if (head == ".end") break;
    if (head == ".rail") {
      if (tokens.size() != 3) fail(line_no, ".rail needs NAME VALUE");
      net.add_rail(tokens[1], parse_value(tokens[2]));
      continue;
    }
    if (head[0] == '.') fail(line_no, "unknown directive " + tokens[0]);

    const char kind = static_cast<char>(
        std::toupper(static_cast<unsigned char>(head[0])));
    switch (kind) {
      case 'R': {
        if (tokens.size() != 4) fail(line_no, "R needs NAME A B VALUE");
        net.add_resistor(tokens[0], net.node(tokens[1]), net.node(tokens[2]),
                         parse_value(tokens[3]));
        break;
      }
      case 'C': {
        if (tokens.size() != 4) fail(line_no, "C needs NAME A B VALUE");
        net.add_capacitor(tokens[0], net.node(tokens[1]), net.node(tokens[2]),
                          parse_value(tokens[3]));
        break;
      }
      case 'V': {
        if (tokens.size() != 4) fail(line_no, "V needs NAME POS NEG VALUE");
        net.add_vsource(tokens[0], net.node(tokens[1]), net.node(tokens[2]),
                        parse_value(tokens[3]));
        break;
      }
      case 'M': {
        if (tokens.size() < 5) fail(line_no, "M needs NAME D G S NMOS|PMOS");
        const std::string model = pf::to_lower(tokens[4]);
        const MosParams p = parse_mos_params(tokens, 5, line_no);
        if (model == "nmos")
          net.add_nmos(tokens[0], net.node(tokens[1]), net.node(tokens[2]),
                       net.node(tokens[3]), p);
        else if (model == "pmos")
          net.add_pmos(tokens[0], net.node(tokens[1]), net.node(tokens[2]),
                       net.node(tokens[3]), p);
        else
          fail(line_no, "unknown MOS model " + tokens[4]);
        break;
      }
      default:
        fail(line_no, std::string("unknown element kind '") + head[0] + "'");
    }
  }
  return net;
}

std::string write_deck(const Netlist& net) {
  std::ostringstream os;
  os << "* netlist: " << net.node_count() << " nodes, "
     << net.resistors().size() << " R, " << net.capacitors().size() << " C, "
     << net.vsources().size() << " V, " << net.mosfets().size() << " M\n";
  for (size_t n = 1; n < net.node_count(); ++n) {
    const NodeId id = static_cast<NodeId>(n);
    if (net.is_rail(id))
      os << ".rail " << net.node_name(id) << ' '
         << format_value(net.rail_initial(id)) << '\n';
  }
  for (const auto& r : net.resistors())
    os << r.name << ' ' << net.node_name(r.a) << ' ' << net.node_name(r.b)
       << ' ' << format_value(r.ohms) << '\n';
  for (const auto& c : net.capacitors())
    os << c.name << ' ' << net.node_name(c.a) << ' ' << net.node_name(c.b)
       << ' ' << format_value(c.farads) << '\n';
  for (const auto& v : net.vsources())
    os << v.name << ' ' << net.node_name(v.pos) << ' ' << net.node_name(v.neg)
       << ' ' << format_value(v.dc) << '\n';
  for (const auto& m : net.mosfets()) {
    os << m.name << ' ' << net.node_name(m.d) << ' ' << net.node_name(m.g)
       << ' ' << net.node_name(m.s) << (m.is_pmos ? " PMOS" : " NMOS")
       << " vt=" << format_value(m.params.vt)
       << " k=" << format_value(m.params.k)
       << " lambda=" << pf::format_double(m.params.lambda, 6) << '\n';
  }
  os << ".end\n";
  return os.str();
}

}  // namespace pf::spice
