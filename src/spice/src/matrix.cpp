#include "pf/spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace pf::spice {

void Matrix::clear() {
  std::memset(a_.data(), 0, a_.size() * sizeof(double));
}

void lu_factor(Matrix& a, std::vector<size_t>& perm, double min_pivot) {
  const size_t n = a.rows();
  PF_CHECK(a.cols() == n);
  perm.resize(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest magnitude in column k at or below row k.
    size_t piv = k;
    double best = std::abs(a(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < min_pivot)
      throw ConvergenceError("singular MNA matrix (pivot " +
                             std::to_string(best) + " at column " +
                             std::to_string(k) + ")");
    if (piv != k) {
      for (size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(perm[k], perm[piv]);
    }
    const double inv_pivot = 1.0 / a(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double m = a(r, k) * inv_pivot;
      a(r, k) = m;
      if (m == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) a(r, c) -= m * a(k, c);
    }
  }
}

void lu_solve(const Matrix& lu, const std::vector<size_t>& perm,
              std::vector<double>& b) {
  const size_t n = lu.rows();
  PF_CHECK(b.size() == n && perm.size() == n);
  // Apply permutation.
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  // Forward substitution (unit lower triangle).
  for (size_t r = 1; r < n; ++r) {
    double s = x[r];
    for (size_t c = 0; c < r; ++c) s -= lu(r, c) * x[c];
    x[r] = s;
  }
  // Back substitution.
  for (size_t r = n; r-- > 0;) {
    double s = x[r];
    for (size_t c = r + 1; c < n; ++c) s -= lu(r, c) * x[c];
    x[r] = s / lu(r, r);
  }
  b = std::move(x);
}

}  // namespace pf::spice
