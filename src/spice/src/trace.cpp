#include "pf/spice/trace.hpp"

#include <algorithm>
#include <sstream>

#include "pf/util/strings.hpp"

namespace pf::spice {

Trace::Trace(const Netlist& netlist, std::vector<std::string> probe_names)
    : names_(std::move(probe_names)) {
  PF_CHECK_MSG(!names_.empty(), "trace needs at least one probe");
  for (const auto& name : names_) {
    const auto id = netlist.find_node(name);
    PF_CHECK_MSG(id.has_value(), "no node named " << name);
    nodes_.push_back(*id);
  }
  values_.resize(names_.size());
}

Simulator::StepCallback Trace::callback() {
  return [this](double t, const Simulator& sim) {
    times_.push_back(t);
    for (size_t i = 0; i < nodes_.size(); ++i)
      values_[i].push_back(sim.node_voltage(nodes_[i]));
  };
}

const std::vector<double>& Trace::series(size_t probe) const {
  PF_CHECK_MSG(probe < values_.size(), "bad probe index " << probe);
  return values_[probe];
}

double Trace::sample_at(size_t probe, double t) const {
  const auto& v = series(probe);
  PF_CHECK_MSG(!v.empty(), "trace is empty");
  if (t <= times_.front()) return v.front();
  if (t >= times_.back()) return v.back();
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  const size_t hi = static_cast<size_t>(it - times_.begin());
  const size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return v[lo] + f * (v[hi] - v[lo]);
}

double Trace::min_of(size_t probe) const {
  const auto& v = series(probe);
  PF_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Trace::max_of(size_t probe) const {
  const auto& v = series(probe);
  PF_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

void Trace::clear() {
  times_.clear();
  for (auto& v : values_) v.clear();
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "time";
  for (const auto& n : names_) os << ',' << n;
  os << '\n';
  for (size_t k = 0; k < times_.size(); ++k) {
    os << times_[k];
    for (const auto& v : values_) os << ',' << v[k];
    os << '\n';
  }
  return os.str();
}

}  // namespace pf::spice
