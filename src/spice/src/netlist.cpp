#include "pf/spice/netlist.hpp"

namespace pf::spice {

Netlist::Netlist() {
  node_names_.push_back("0");
  rail_flags_.push_back(0);
  rail_initials_.push_back(0.0);
  node_index_["0"] = kGround;
  node_index_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  if (auto it = node_index_.find(name); it != node_index_.end())
    return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  rail_flags_.push_back(0);
  rail_initials_.push_back(0.0);
  node_index_[name] = id;
  return id;
}

NodeId Netlist::add_rail(const std::string& name, double initial) {
  PF_CHECK_MSG(!node_index_.contains(name), "rail " << name << " already a node");
  const NodeId id = node(name);
  rail_flags_[id] = 1;
  rail_initials_[id] = initial;
  return id;
}

bool Netlist::is_rail(NodeId id) const {
  check_node(id);
  return rail_flags_[id] != 0;
}

double Netlist::rail_initial(NodeId id) const {
  check_node(id);
  PF_CHECK_MSG(rail_flags_[id], node_names_[id] << " is not a rail");
  return rail_initials_[id];
}

std::optional<NodeId> Netlist::find_node(const std::string& name) const {
  if (auto it = node_index_.find(name); it != node_index_.end())
    return it->second;
  return std::nullopt;
}

const std::string& Netlist::node_name(NodeId id) const {
  PF_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < node_names_.size(),
               "bad node id " << id);
  return node_names_[id];
}

void Netlist::check_node(NodeId id) const {
  PF_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < node_names_.size(),
               "bad node id " << id);
}

void Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                           double ohms) {
  check_node(a);
  check_node(b);
  PF_CHECK_MSG(ohms > 0, "resistor " << name << " needs positive resistance");
  resistors_.push_back({name, a, b, ohms});
}

void Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b,
                            double farads) {
  check_node(a);
  check_node(b);
  PF_CHECK_MSG(farads > 0, "capacitor " << name << " needs positive value");
  capacitors_.push_back({name, a, b, farads});
}

SourceId Netlist::add_vsource(const std::string& name, NodeId pos, NodeId neg,
                              double dc) {
  check_node(pos);
  check_node(neg);
  PF_CHECK_MSG(!rail_flags_[pos] && !rail_flags_[neg],
               "vsource " << name << " may not drive a rail node");
  vsources_.push_back({name, pos, neg, dc});
  return static_cast<SourceId>(vsources_.size() - 1);
}

void Netlist::add_nmos(const std::string& name, NodeId d, NodeId g, NodeId s,
                       const MosParams& p) {
  check_node(d);
  check_node(g);
  check_node(s);
  mosfets_.push_back({name, d, g, s, p, /*is_pmos=*/false});
}

void Netlist::add_pmos(const std::string& name, NodeId d, NodeId g, NodeId s,
                       const MosParams& p) {
  check_node(d);
  check_node(g);
  check_node(s);
  mosfets_.push_back({name, d, g, s, p, /*is_pmos=*/true});
}

void Netlist::set_resistance(const std::string& name, double ohms) {
  PF_CHECK_MSG(ohms > 0, "resistance must be positive");
  for (auto& r : resistors_) {
    if (r.name == name) {
      r.ohms = ohms;
      return;
    }
  }
  throw Error("set_resistance: no resistor named " + name);
}

SourceId Netlist::find_source(const std::string& name) const {
  for (size_t i = 0; i < vsources_.size(); ++i)
    if (vsources_[i].name == name) return static_cast<SourceId>(i);
  throw Error("no voltage source named " + name);
}

}  // namespace pf::spice
