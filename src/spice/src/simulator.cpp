#include "pf/spice/simulator.hpp"

namespace pf::spice {

Simulator::Simulator(const Netlist& netlist, SimOptions options)
    : tpl_(std::make_shared<CircuitTemplate>(netlist)),
      ckt_(tpl_, std::move(options)) {}

void Simulator::run_for(double duration, const StepCallback& callback) {
  if (!callback) {
    ckt_.run_for(duration);
    return;
  }
  ckt_.run_for(duration, [this, &callback](double t, const CompiledCircuit&) {
    callback(t, *this);
  });
}

void Simulator::run_for_with_ceiling(double duration, double dt_max,
                                     const StepCallback& callback) {
  if (!callback) {
    ckt_.run_for_with_ceiling(duration, dt_max);
    return;
  }
  ckt_.run_for_with_ceiling(
      duration, dt_max,
      [this, &callback](double t, const CompiledCircuit&) {
        callback(t, *this);
      });
}

}  // namespace pf::spice
