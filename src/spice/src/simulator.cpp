#include "pf/spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "pf/spice/fault_injection.hpp"

namespace pf::spice {
namespace {

/// Square-law drain current and small-signal parameters, NMOS convention,
/// evaluated for vds >= 0 (callers normalize polarity/type first).
struct MosEval {
  double ids = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

MosEval eval_square_law(double vgs, double vds, const MosParams& p) {
  MosEval e;
  const double vov = vgs - p.vt;
  if (vov <= 0.0) return e;  // cutoff
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode region.
    const double core = vov * vds - 0.5 * vds * vds;
    e.ids = p.k * core * clm;
    e.gm = p.k * vds * clm;
    e.gds = p.k * (vov - vds) * clm + p.k * core * p.lambda;
  } else {
    // Saturation.
    const double core = 0.5 * vov * vov;
    e.ids = p.k * core * clm;
    e.gm = p.k * vov * clm;
    e.gds = p.k * core * p.lambda;
  }
  return e;
}

}  // namespace

Simulator::Simulator(const Netlist& netlist, SimOptions options)
    : net_(netlist), options_(options) {
  n_nodes_ = net_.node_count();
  unknown_of_node_.assign(n_nodes_, -1);
  rail_levels_.assign(n_nodes_, RampedLevel(0.0));
  int next = 0;
  for (size_t n = 1; n < n_nodes_; ++n) {
    if (net_.is_rail(static_cast<NodeId>(n))) {
      rail_levels_[n] = RampedLevel(net_.rail_initial(static_cast<NodeId>(n)));
    } else {
      unknown_of_node_[n] = next++;
      node_of_unknown_.push_back(static_cast<NodeId>(n));
    }
  }
  n_node_unknowns_ = static_cast<size_t>(next);
  n_unknowns_ = n_node_unknowns_ + net_.vsources().size();
  PF_CHECK_MSG(n_unknowns_ > 0, "netlist has no unknowns");
  v_.assign(n_nodes_, 0.0);
  for (size_t n = 1; n < n_nodes_; ++n)
    if (net_.is_rail(static_cast<NodeId>(n)))
      v_[n] = net_.rail_initial(static_cast<NodeId>(n));
  branch_i_.assign(net_.vsources().size(), 0.0);
  source_levels_.reserve(net_.vsources().size());
  for (const auto& src : net_.vsources()) source_levels_.emplace_back(src.dc);
  g_ = Matrix(n_unknowns_, n_unknowns_);
  rhs_.resize(n_unknowns_);
  x_.resize(n_unknowns_);
  v_cand_.resize(n_nodes_);
  v_prev_scratch_.resize(n_nodes_);
  dt_ = options_.dt_initial;
}

double Simulator::node_voltage(NodeId n) const {
  PF_CHECK_MSG(n >= 0 && static_cast<size_t>(n) < n_nodes_, "bad node " << n);
  return v_[n];
}

void Simulator::set_node_voltage(NodeId n, double volts) {
  PF_CHECK_MSG(n > 0 && static_cast<size_t>(n) < n_nodes_,
               "cannot override node " << n);
  PF_CHECK_MSG(!net_.is_rail(n), "cannot override rail " << net_.node_name(n));
  v_[n] = volts;
}

void Simulator::set_source(SourceId s, double volts) {
  set_source(s, volts, options_.default_slew);
}

void Simulator::set_source(SourceId s, double volts, double slew) {
  PF_CHECK_MSG(s >= 0 && static_cast<size_t>(s) < source_levels_.size(),
               "bad source " << s);
  source_levels_[s].retarget(t_, volts, slew);
}

double Simulator::source_value(SourceId s) const {
  PF_CHECK_MSG(s >= 0 && static_cast<size_t>(s) < source_levels_.size(),
               "bad source " << s);
  return source_levels_[s].value(t_);
}

void Simulator::set_rail(NodeId rail, double volts) {
  set_rail(rail, volts, options_.default_slew);
}

void Simulator::set_rail(NodeId rail, double volts, double slew) {
  PF_CHECK_MSG(rail > 0 && static_cast<size_t>(rail) < n_nodes_ &&
                   net_.is_rail(rail),
               "node " << rail << " is not a rail");
  rail_levels_[rail].retarget(t_, volts, slew);
}

void Simulator::load_system(double h, const std::vector<double>& v_prev,
                            double t_new) {
  g_.clear();
  std::fill(rhs_.begin(), rhs_.end(), 0.0);

  // Conductance between two nodes; known-node terms fold into the RHS.
  auto stamp_g = [&](NodeId a, NodeId b, double g) {
    const int ia = unknown_of_node_[a];
    const int ib = unknown_of_node_[b];
    if (ia >= 0) {
      g_(ia, ia) += g;
      if (ib >= 0)
        g_(ia, ib) -= g;
      else
        rhs_[ia] += g * v_cand_[b];
    }
    if (ib >= 0) {
      g_(ib, ib) += g;
      if (ia >= 0)
        g_(ib, ia) -= g;
      else
        rhs_[ib] += g * v_cand_[a];
    }
  };
  // Constant current i flowing out of `from` into `to`.
  auto stamp_i = [&](NodeId from, NodeId to, double i) {
    const int ifrom = unknown_of_node_[from];
    const int ito = unknown_of_node_[to];
    if (ifrom >= 0) rhs_[ifrom] -= i;
    if (ito >= 0) rhs_[ito] += i;
  };

  for (const auto& r : net_.resistors()) stamp_g(r.a, r.b, 1.0 / r.ohms);

  for (const auto& c : net_.capacitors()) {
    const double geq = c.farads / h;
    const double v_ab_prev = v_prev[c.a] - v_prev[c.b];
    stamp_g(c.a, c.b, geq);
    // Companion source: i(a->b) = geq * (v_ab - v_ab_prev); the constant part
    // geq*v_ab_prev flows b->a.
    stamp_i(c.b, c.a, geq * v_ab_prev);
  }

  // gmin leak from every unknown node.
  for (size_t u = 0; u < n_node_unknowns_; ++u) g_(u, u) += options_.gmin;

  // Voltage sources: branch current unknowns after the node block.
  const auto& sources = net_.vsources();
  for (size_t k = 0; k < sources.size(); ++k) {
    const auto& src = sources[k];
    const size_t row = n_node_unknowns_ + k;
    const int ip = unknown_of_node_[src.pos];
    const int in = unknown_of_node_[src.neg];
    if (ip >= 0) {
      g_(ip, row) += 1.0;
      g_(row, ip) += 1.0;
    }
    if (in >= 0) {
      g_(in, row) -= 1.0;
      g_(row, in) -= 1.0;
    }
    rhs_[row] = source_levels_[k].value(t_new);
  }

  // MOSFETs: normalize polarity (PMOS mirrors through sign flip) and
  // source/drain order (symmetric device), then stamp the linearization
  //   I(d->s) = ieq + gm*vg + gds*vd - (gm+gds)*vs.
  for (const auto& m : net_.mosfets()) {
    const double sigma = m.is_pmos ? -1.0 : 1.0;
    NodeId nd = m.d;
    NodeId ns = m.s;
    if (sigma * (v_cand_[nd] - v_cand_[ns]) < 0.0) std::swap(nd, ns);
    const double vgs_eff = sigma * (v_cand_[m.g] - v_cand_[ns]);
    const double vds_eff = sigma * (v_cand_[nd] - v_cand_[ns]);
    const MosEval e = eval_square_law(vgs_eff, vds_eff, m.params);
    const double ieq = sigma * e.ids - e.gm * v_cand_[m.g] -
                       e.gds * v_cand_[nd] +
                       (e.gm + e.gds) * v_cand_[ns];
    const NodeId coef_nodes[3] = {m.g, nd, ns};
    const double coefs[3] = {e.gm, e.gds, -(e.gm + e.gds)};
    // KCL: +I at effective drain, -I at effective source.
    const NodeId rows[2] = {nd, ns};
    const double signs[2] = {+1.0, -1.0};
    for (int r = 0; r < 2; ++r) {
      const int ir = unknown_of_node_[rows[r]];
      if (ir < 0) continue;
      rhs_[ir] -= signs[r] * ieq;
      for (int cidx = 0; cidx < 3; ++cidx) {
        const int iu = unknown_of_node_[coef_nodes[cidx]];
        const double c = signs[r] * coefs[cidx];
        if (iu >= 0)
          g_(ir, iu) += c;
        else
          rhs_[ir] -= c * v_cand_[coef_nodes[cidx]];
      }
    }
  }
}

int Simulator::try_step(double h, double t_new) {
  // Start Newton from the committed solution.
  for (size_t n = 1; n < n_nodes_; ++n) {
    const int u = unknown_of_node_[n];
    if (u >= 0) x_[u] = v_[n];
  }
  for (size_t k = 0; k < branch_i_.size(); ++k)
    x_[n_node_unknowns_ + k] = branch_i_[k];

  std::vector<double>& v_prev = v_prev_scratch_;
  v_prev = v_;

  for (int iter = 1; iter <= options_.max_nr_iters; ++iter) {
    // Candidate node voltages: unknowns from x_, known nodes at t_new.
    v_cand_[kGround] = 0.0;
    for (size_t n = 1; n < n_nodes_; ++n) {
      const int u = unknown_of_node_[n];
      v_cand_[n] = u >= 0 ? x_[u] : rail_levels_[n].value(t_new);
    }
    load_system(h, v_prev, t_new);
    std::vector<double>& sol = rhs_;  // solved in place
    try {
      lu_factor(g_, perm_);
      lu_solve(g_, perm_, sol);
    } catch (const ConvergenceError&) {
      return -1;
    }
    // Damped update with per-node step limiting; convergence measured on the
    // undamped node-voltage deltas.
    double max_dv = 0.0;
    size_t worst_u = 0;
    bool clamped = false;
    for (size_t u = 0; u < n_unknowns_; ++u) {
      double delta = sol[u] - x_[u];
      if (u < n_node_unknowns_) {
        if (std::abs(delta) > max_dv) {
          max_dv = std::abs(delta);
          worst_u = u;
        }
        if (std::abs(delta) > options_.v_step_limit) {
          delta = std::copysign(options_.v_step_limit, delta);
          clamped = true;
        }
      }
      x_[u] += delta;
    }
    if (worst_u < node_of_unknown_.size()) {
      worst_node_ = node_of_unknown_[worst_u];
      worst_dv_ = max_dv;
    }
    if (!std::isfinite(max_dv)) return -1;
    stats_.nr_iterations++;
    if (!clamped && max_dv < options_.vntol) {
      // Commit.
      for (size_t n = 1; n < n_nodes_; ++n) {
        const int u = unknown_of_node_[n];
        v_[n] = u >= 0 ? x_[u] : rail_levels_[n].value(t_new);
      }
      for (size_t k = 0; k < branch_i_.size(); ++k)
        branch_i_[k] = x_[n_node_unknowns_ + k];
      return iter;
    }
  }
  return -1;
}

void Simulator::run_for_with_ceiling(double duration, double dt_max,
                                     const StepCallback& callback) {
  const SimOptions saved = options_;
  options_.dt_max = dt_max;
  options_.dt_initial = dt_max / 10;
  try {
    run_for(duration, callback);
  } catch (const ConvergenceError& e) {
    // Rethrow with the ceiling context attached: a sweep-level log must be
    // able to tell a retention-pause failure from an ordinary step failure.
    options_ = saved;
    std::ostringstream os;
    os << e.what() << " [during relaxed-ceiling run: dt_max=" << dt_max
       << " s]";
    throw ConvergenceError(os.str());
  } catch (...) {
    options_ = saved;
    throw;
  }
  options_ = saved;
}

bool Simulator::apply_injected_fault() {
  const testing::InjectionSpec* inj = testing::current_injection();
  if (inj == nullptr) return false;
  switch (inj->kind) {
    case testing::InjectedFault::kNone:
      return false;
    case testing::InjectedFault::kNonConvergence: {
      testing::note_injection();
      stats_.injected_faults++;
      std::ostringstream os;
      os << "injected non-convergence at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
    case testing::InjectedFault::kSingularMatrix: {
      testing::note_injection();
      stats_.injected_faults++;
      std::ostringstream os;
      os << "injected singular MNA matrix (pivot 0) at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
    case testing::InjectedFault::kSlowConvergence:
      testing::note_injection();
      stats_.injected_faults++;
      stats_.nr_iterations += inj->slow_penalty_iters;
      return false;
    case testing::InjectedFault::kNanVoltage:
      // A silently diverged solve: the transient "completes" but every
      // unknown node is left non-finite. No exception here — the point is
      // to prove the classification layer refuses to read NaN as data.
      testing::note_injection();
      stats_.injected_faults++;
      for (size_t n = 1; n < n_nodes_; ++n)
        if (unknown_of_node_[n] >= 0)
          v_[n] = std::numeric_limits<double>::quiet_NaN();
      return true;
  }
  return false;
}

void Simulator::check_watchdogs() {
  if (options_.cancel.stop_requested()) {
    std::ostringstream os;
    os << "solve cancelled (" << options_.cancel.reason() << ") at t=" << t_
       << " s";
    throw CancelledError(os.str());
  }
  if (options_.max_total_nr_iters > 0 &&
      stats_.nr_iterations > options_.max_total_nr_iters) {
    std::ostringstream os;
    os << "Newton iteration watchdog: " << stats_.nr_iterations
       << " iterations exceed the budget of " << options_.max_total_nr_iters
       << " at t=" << t_ << " s";
    throw ConvergenceError(os.str());
  }
  if (options_.max_wall_seconds > 0.0 && wall_started_) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start_;
    if (elapsed.count() > options_.max_wall_seconds) {
      std::ostringstream os;
      os << "wall-clock watchdog: " << elapsed.count()
         << " s exceed the budget of " << options_.max_wall_seconds
         << " s at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
  }
}

void Simulator::run_for(double duration, const StepCallback& callback) {
  PF_CHECK(duration >= 0.0);
  if (options_.max_wall_seconds > 0.0 && !wall_started_) {
    wall_start_ = std::chrono::steady_clock::now();
    wall_started_ = true;
  }
  const double t_stop = t_ + duration;
  if (testing::armed() && apply_injected_fault()) {
    // kNanVoltage consumed the transient: the poisoned state stays
    // committed and time advances as if the solve had succeeded.
    t_ = t_stop;
    return;
  }
  check_watchdogs();
  dt_ = std::min(options_.dt_initial, duration > 0 ? duration : dt_);
  uint64_t steps_since_wall_check = 0;
  while (t_ < t_stop - 1e-18) {
    ++steps_since_wall_check;
    // Cancellation is checked every step (two relaxed atomic loads); the
    // costlier wall-clock watchdog keeps its 512-step throttle unless the
    // Newton-budget watchdog forces a full check anyway.
    if (options_.cancel.stop_requested() ||
        options_.max_total_nr_iters > 0 || steps_since_wall_check % 512 == 0)
      check_watchdogs();
    double h = std::min({dt_, options_.dt_max, t_stop - t_});
    // Land exactly on source/rail ramp corners so edges are not stepped over.
    auto clamp_corner = [&](double corner) {
      if (corner > t_ + 1e-18 && corner < t_ + h) h = corner - t_;
    };
    for (const auto& lvl : source_levels_) clamp_corner(lvl.ramp_end());
    for (size_t n = 1; n < n_nodes_; ++n)
      if (unknown_of_node_[n] < 0) clamp_corner(rail_levels_[n].ramp_end());
    const double t_new = t_ + h;
    const int iters = try_step(h, t_new);
    if (iters < 0) {
      stats_.rejected_steps++;
      dt_ = h / 4.0;
      if (dt_ < options_.dt_min) {
        std::ostringstream os;
        os << "transient failed to converge at t=" << t_ << " s (step h=" << h
           << " s rejected, next dt " << dt_ << " s below dt_min="
           << options_.dt_min << " s; worst residual node '"
           << net_.node_name(worst_node_) << "', |dv|=" << worst_dv_ << " V)";
        throw ConvergenceError(os.str());
      }
      continue;
    }
    stats_.steps++;
    t_ = t_new;
    if (callback) callback(t_, *this);
    // Step-size control from Newton effort.
    if (iters <= 3)
      dt_ = std::min(h * 1.5, options_.dt_max);
    else if (iters > 8)
      dt_ = std::max(h * 0.6, options_.dt_min);
    else
      dt_ = h;
  }
  t_ = t_stop;
}

}  // namespace pf::spice
