#include "pf/spice/circuit.hpp"

#include <algorithm>
#include <bit>
#include <climits>
#include <cmath>
#include <limits>
#include <sstream>

#include "pf/spice/fault_injection.hpp"
#include "engine_internal.hpp"

namespace pf::spice {

// Both transient engines (this scalar one and the batched lockstep backend)
// share the square-law evaluation and the pivot floor via engine_internal.hpp
// so their numerics cannot drift apart.
using detail::MosEval;
using detail::eval_square_law;
using detail::kMinPivot;

bool same_numerics(const SimOptions& a, const SimOptions& b) {
  return a.dt_min == b.dt_min && a.dt_max == b.dt_max &&
         a.dt_initial == b.dt_initial && a.vntol == b.vntol &&
         a.max_nr_iters == b.max_nr_iters && a.gmin == b.gmin &&
         a.v_step_limit == b.v_step_limit &&
         a.default_slew == b.default_slew &&
         a.max_total_nr_iters == b.max_total_nr_iters &&
         a.max_wall_seconds == b.max_wall_seconds;
}

// ---------------------------------------------------------------------------
// CircuitTemplate
// ---------------------------------------------------------------------------

CircuitTemplate::CircuitTemplate(Netlist netlist) : net_(std::move(netlist)) {
  n_nodes_ = net_.node_count();
  unknown_of_node_.assign(n_nodes_, -1);
  int next = 0;
  for (size_t n = 1; n < n_nodes_; ++n) {
    if (net_.is_rail(static_cast<NodeId>(n))) {
      rail_nodes_.push_back(static_cast<NodeId>(n));
    } else {
      unknown_of_node_[n] = next++;
      node_of_unknown_.push_back(static_cast<NodeId>(n));
    }
  }
  n_node_unknowns_ = static_cast<size_t>(next);
  n_unknowns_ = n_node_unknowns_ + net_.vsources().size();
  PF_CHECK_MSG(n_unknowns_ > 0, "netlist has no unknowns");
  // Voltage sources need branch-current unknowns whose rows break the node
  // pattern's near-symmetry; those circuits stay on the dense partial-pivot
  // path (bit-identical to the pre-pipeline engine). Source-free circuits —
  // the DRAM column models every supply as a rail — get the compiled sparse
  // path.
  sparse_ = net_.vsources().empty();
  if (sparse_) build_symbolic();
}

ParamHandle CircuitTemplate::resistance_param(const std::string& name) const {
  const auto& rs = net_.resistors();
  for (size_t i = 0; i < rs.size(); ++i)
    if (rs[i].name == name) return ParamHandle{static_cast<int>(i)};
  throw Error("resistance_param: no resistor named " + name);
}

void CircuitTemplate::build_symbolic() {
  const size_t n = n_node_unknowns_;
  const size_t W = (n + 63) / 64;

  // Structural pattern as a symmetric adjacency bitset (one row of W words
  // per unknown). MOSFET stamps are structurally unsymmetric (gate column,
  // no gate row); symmetrizing costs a few stored zeros and makes the
  // classic fill analysis below valid.
  std::vector<uint64_t> adj(n * W, 0);
  auto set_sym = [&](int i, int j) {
    if (i < 0 || j < 0) return;
    adj[static_cast<size_t>(i) * W + static_cast<size_t>(j) / 64] |=
        uint64_t{1} << (static_cast<size_t>(j) % 64);
    adj[static_cast<size_t>(j) * W + static_cast<size_t>(i) / 64] |=
        uint64_t{1} << (static_cast<size_t>(i) % 64);
  };
  for (size_t i = 0; i < n; ++i) set_sym(static_cast<int>(i), static_cast<int>(i));
  for (const auto& r : net_.resistors())
    set_sym(unknown_of_node_[r.a], unknown_of_node_[r.b]);
  for (const auto& c : net_.capacitors())
    set_sym(unknown_of_node_[c.a], unknown_of_node_[c.b]);
  for (const auto& m : net_.mosfets()) {
    const int ud = unknown_of_node_[m.d];
    const int ug = unknown_of_node_[m.g];
    const int us = unknown_of_node_[m.s];
    set_sym(ud, ug);
    set_sym(ud, us);
    set_sym(us, ug);
  }

  // Minimum-degree ordering with symbolic fill: repeatedly eliminate the
  // unknown with the fewest remaining neighbors (ties -> lowest index, so
  // the order — and therefore the numerics — is deterministic), turning its
  // neighborhood into a clique. Afterwards `adj` holds the filled pattern.
  std::vector<uint64_t> remaining(W, 0);
  for (size_t i = 0; i < n; ++i) remaining[i / 64] |= uint64_t{1} << (i % 64);
  unknown_of_pos_.reserve(n);
  std::vector<uint64_t> nb(W);
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    int best_deg = INT_MAX;
    for (size_t u = 0; u < n; ++u) {
      if (!((remaining[u / 64] >> (u % 64)) & 1)) continue;
      int deg = 0;
      for (size_t w = 0; w < W; ++w)
        deg += std::popcount(adj[u * W + w] & remaining[w]);
      if (deg < best_deg) {
        best_deg = deg;
        best = static_cast<int>(u);
      }
    }
    unknown_of_pos_.push_back(best);
    remaining[static_cast<size_t>(best) / 64] &=
        ~(uint64_t{1} << (static_cast<size_t>(best) % 64));
    for (size_t w = 0; w < W; ++w)
      nb[w] = adj[static_cast<size_t>(best) * W + w] & remaining[w];
    for (size_t i = 0; i < n; ++i)
      if ((nb[i / 64] >> (i % 64)) & 1)
        for (size_t w = 0; w < W; ++w) adj[i * W + w] |= nb[w];
  }
  pos_of_unknown_.assign(n, -1);
  for (size_t p = 0; p < n; ++p) pos_of_unknown_[unknown_of_pos_[p]] = static_cast<int>(p);
  node_of_pos_.reserve(n);
  for (size_t p = 0; p < n; ++p)
    node_of_pos_.push_back(node_of_unknown_[unknown_of_pos_[p]]);

  // Filled pattern in elimination (permuted) index space; slots row-major.
  slot_of_.assign(n * n, -1);
  diag_slot_.assign(n, -1);
  int32_t next_slot = 0;
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = 0; q < n; ++q) {
      const size_t up = static_cast<size_t>(unknown_of_pos_[p]);
      const size_t uq = static_cast<size_t>(unknown_of_pos_[q]);
      const bool nz = p == q || ((adj[up * W + uq / 64] >> (uq % 64)) & 1);
      if (!nz) continue;
      slot_of_[p * n + q] = next_slot;
      if (p == q) diag_slot_[p] = next_slot;
      ++next_slot;
    }
  }
  nnz_ = static_cast<size_t>(next_slot);

  // Flat elimination schedule. The fill lemma guarantees every rank-1
  // update target (i,j) — with (i,k) and (k,j) in the filled pattern and
  // k < i,j — is itself in the filled pattern, so all slots resolve.
  for (size_t k = 0; k < n; ++k) {
    FactorStep st;
    st.row_begin = static_cast<uint32_t>(rows_.size());
    for (size_t i = k + 1; i < n; ++i)
      if (slot_of_[i * n + k] >= 0)
        rows_.push_back({static_cast<int32_t>(i), slot_of_[i * n + k], 0});
    st.row_end = static_cast<uint32_t>(rows_.size());
    st.col_begin = static_cast<uint32_t>(cols_.size());
    for (size_t j = k + 1; j < n; ++j)
      if (slot_of_[k * n + j] >= 0)
        cols_.push_back({static_cast<int32_t>(j), slot_of_[k * n + j]});
    st.col_end = static_cast<uint32_t>(cols_.size());
    for (uint32_t r = st.row_begin; r < st.row_end; ++r) {
      rows_[r].upd_begin = static_cast<uint32_t>(upd_slots_.size());
      for (uint32_t c = st.col_begin; c < st.col_end; ++c) {
        const int32_t sl =
            slot_of_[static_cast<size_t>(rows_[r].i) * n +
                     static_cast<size_t>(cols_[c].j)];
        PF_CHECK_MSG(sl >= 0, "symbolic fill missed slot");
        upd_slots_.push_back(sl);
      }
    }
    steps_.push_back(st);
  }

  // Device stamp plans: resolve node -> slot indirection once.
  auto pos_of_node = [&](NodeId nd) {
    const int u = unknown_of_node_[nd];
    return u < 0 ? -1 : pos_of_unknown_[u];
  };
  auto slot_at = [&](int p, int q) {
    return (p >= 0 && q >= 0)
               ? slot_of_[static_cast<size_t>(p) * n + static_cast<size_t>(q)]
               : int32_t{-1};
  };
  const auto& rs = net_.resistors();
  res_plans_.reserve(rs.size());
  for (size_t i = 0; i < rs.size(); ++i) {
    ResistorPlan rp;
    rp.a = rs[i].a;
    rp.b = rs[i].b;
    rp.pa = pos_of_node(rs[i].a);
    rp.pb = pos_of_node(rs[i].b);
    rp.saa = slot_at(rp.pa, rp.pa);
    rp.sbb = slot_at(rp.pb, rp.pb);
    rp.sab = slot_at(rp.pa, rp.pb);
    rp.sba = slot_at(rp.pb, rp.pa);
    res_plans_.push_back(rp);
    if ((rp.pa >= 0) != (rp.pb >= 0))
      res_folds_.push_back(static_cast<int32_t>(i));
  }
  for (const auto& c : net_.capacitors()) {
    CapacitorPlan cp;
    cp.a = c.a;
    cp.b = c.b;
    cp.farads = c.farads;
    cp.pa = pos_of_node(c.a);
    cp.pb = pos_of_node(c.b);
    cp.saa = slot_at(cp.pa, cp.pa);
    cp.sbb = slot_at(cp.pb, cp.pb);
    cp.sab = slot_at(cp.pa, cp.pb);
    cp.sba = slot_at(cp.pb, cp.pa);
    cap_plans_.push_back(cp);
  }
  for (const auto& m : net_.mosfets()) {
    MosfetPlan mp;
    mp.d = m.d;
    mp.g = m.g;
    mp.s = m.s;
    mp.params = m.params;
    mp.sigma = m.is_pmos ? -1.0 : 1.0;
    const int pg = pos_of_node(m.g);
    const int pd = pos_of_node(m.d);
    const int ps = pos_of_node(m.s);
    mp.pu[0] = pg;
    mp.pu[1] = pd;
    mp.pu[2] = ps;
    const int rowsp[2] = {pd, ps};
    const int colsp[3] = {pg, pd, ps};
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < 3; ++c) mp.slot[r][c] = slot_at(rowsp[r], colsp[c]);
    mos_plans_.push_back(mp);
  }
}

// ---------------------------------------------------------------------------
// CompiledCircuit
// ---------------------------------------------------------------------------

CompiledCircuit::CompiledCircuit(std::shared_ptr<const CircuitTemplate> tpl,
                                 SimOptions options)
    : tpl_(std::move(tpl)), options_(options) {
  PF_CHECK_MSG(tpl_ != nullptr, "CompiledCircuit requires a template");
  const CircuitTemplate& T = *tpl_;
  r_ohms_.reserve(T.net_.resistors().size());
  for (const auto& r : T.net_.resistors()) r_ohms_.push_back(r.ohms);
  if (T.sparse_) {
    g_static_.assign(T.nnz_, 0.0);
    g_rc_.assign(T.nnz_, 0.0);
    a_.assign(T.nnz_, 0.0);
    rhs_base_.assign(T.n_node_unknowns_, 0.0);
    rhs_.assign(T.n_node_unknowns_, 0.0);
    x_.assign(T.n_node_unknowns_, 0.0);
    pivot_row_scratch_.assign(T.n_node_unknowns_, 0.0);
  } else {
    g_ = Matrix(T.n_unknowns_, T.n_unknowns_);
    rhs_.resize(T.n_unknowns_);
    x_.resize(T.n_unknowns_);
  }
  v_cand_.resize(T.n_nodes_);
  v_prev_scratch_.resize(T.n_nodes_);
  init_state();
}

void CompiledCircuit::init_state() {
  const CircuitTemplate& T = *tpl_;
  t_ = 0.0;
  dt_ = options_.dt_initial;
  stats_ = SimStats{};
  worst_node_ = kGround;
  worst_dv_ = 0.0;
  wall_started_ = false;
  v_.assign(T.n_nodes_, 0.0);
  rail_levels_.assign(T.n_nodes_, RampedLevel(0.0));
  for (NodeId r : T.rail_nodes_) {
    const double initial = T.net_.rail_initial(r);
    v_[r] = initial;
    rail_levels_[r] = RampedLevel(initial);
  }
  branch_i_.assign(T.net_.vsources().size(), 0.0);
  source_levels_.clear();
  source_levels_.reserve(T.net_.vsources().size());
  for (const auto& src : T.net_.vsources()) source_levels_.emplace_back(src.dc);
}

void CompiledCircuit::reset_to_initial() { init_state(); }

void CompiledCircuit::set_options(const SimOptions& options) {
  if (options.gmin != options_.gmin)
    static_dirty_ = true;  // gmin feeds the cached static stamps
  options_ = options;
}

double CompiledCircuit::node_voltage(NodeId n) const {
  PF_CHECK_MSG(n >= 0 && static_cast<size_t>(n) < tpl_->n_nodes_,
               "bad node " << n);
  return v_[n];
}

void CompiledCircuit::set_node_voltage(NodeId n, double volts) {
  PF_CHECK_MSG(n > 0 && static_cast<size_t>(n) < tpl_->n_nodes_,
               "cannot override node " << n);
  PF_CHECK_MSG(!tpl_->net_.is_rail(n),
               "cannot override rail " << tpl_->net_.node_name(n));
  v_[n] = volts;
}

void CompiledCircuit::set_source(SourceId s, double volts) {
  set_source(s, volts, options_.default_slew);
}

void CompiledCircuit::set_source(SourceId s, double volts, double slew) {
  PF_CHECK_MSG(s >= 0 && static_cast<size_t>(s) < source_levels_.size(),
               "bad source " << s);
  source_levels_[s].retarget(t_, volts, slew);
}

double CompiledCircuit::source_value(SourceId s) const {
  PF_CHECK_MSG(s >= 0 && static_cast<size_t>(s) < source_levels_.size(),
               "bad source " << s);
  return source_levels_[s].value(t_);
}

void CompiledCircuit::set_rail(NodeId rail, double volts) {
  set_rail(rail, volts, options_.default_slew);
}

void CompiledCircuit::set_rail(NodeId rail, double volts, double slew) {
  PF_CHECK_MSG(rail > 0 && static_cast<size_t>(rail) < tpl_->n_nodes_ &&
                   tpl_->net_.is_rail(rail),
               "node " << rail << " is not a rail");
  rail_levels_[rail].retarget(t_, volts, slew);
}

void CompiledCircuit::set_resistance(ParamHandle h, double ohms) {
  PF_CHECK_MSG(h.valid() && static_cast<size_t>(h.index) < r_ohms_.size(),
               "bad resistance handle");
  PF_CHECK_MSG(ohms > 0.0, "resistance must be positive, got " << ohms);
  r_ohms_[static_cast<size_t>(h.index)] = ohms;
  static_dirty_ = true;
}

double CompiledCircuit::resistance(ParamHandle h) const {
  PF_CHECK_MSG(h.valid() && static_cast<size_t>(h.index) < r_ohms_.size(),
               "bad resistance handle");
  return r_ohms_[static_cast<size_t>(h.index)];
}

CompiledCircuit::State CompiledCircuit::save_state() const {
  State st;
  st.t = t_;
  st.dt = dt_;
  st.v = v_;
  st.branch_i = branch_i_;
  st.sources = source_levels_;
  st.rails = rail_levels_;
  st.stats = stats_;
  return st;
}

void CompiledCircuit::restore_state(const State& state) {
  PF_CHECK_MSG(state.v.size() == tpl_->n_nodes_ &&
                   state.rails.size() == tpl_->n_nodes_ &&
                   state.branch_i.size() == branch_i_.size() &&
                   state.sources.size() == source_levels_.size(),
               "state snapshot does not match this circuit's template");
  t_ = state.t;
  dt_ = state.dt;
  v_ = state.v;
  branch_i_ = state.branch_i;
  source_levels_ = state.sources;
  rail_levels_ = state.rails;
  stats_ = state.stats;
  worst_node_ = kGround;
  worst_dv_ = 0.0;
  wall_started_ = false;
}

// --- dense engine (verbatim port of the original Simulator) ----------------

void CompiledCircuit::load_system_dense(double h,
                                        const std::vector<double>& v_prev,
                                        double t_new) {
  const CircuitTemplate& T = *tpl_;
  g_.clear();
  std::fill(rhs_.begin(), rhs_.end(), 0.0);

  // Conductance between two nodes; known-node terms fold into the RHS.
  auto stamp_g = [&](NodeId a, NodeId b, double g) {
    const int ia = T.unknown_of_node_[a];
    const int ib = T.unknown_of_node_[b];
    if (ia >= 0) {
      g_(ia, ia) += g;
      if (ib >= 0)
        g_(ia, ib) -= g;
      else
        rhs_[ia] += g * v_cand_[b];
    }
    if (ib >= 0) {
      g_(ib, ib) += g;
      if (ia >= 0)
        g_(ib, ia) -= g;
      else
        rhs_[ib] += g * v_cand_[a];
    }
  };
  // Constant current i flowing out of `from` into `to`.
  auto stamp_i = [&](NodeId from, NodeId to, double i) {
    const int ifrom = T.unknown_of_node_[from];
    const int ito = T.unknown_of_node_[to];
    if (ifrom >= 0) rhs_[ifrom] -= i;
    if (ito >= 0) rhs_[ito] += i;
  };

  const auto& rs = T.net_.resistors();
  for (size_t i = 0; i < rs.size(); ++i)
    stamp_g(rs[i].a, rs[i].b, 1.0 / r_ohms_[i]);

  for (const auto& c : T.net_.capacitors()) {
    const double geq = c.farads / h;
    const double v_ab_prev = v_prev[c.a] - v_prev[c.b];
    stamp_g(c.a, c.b, geq);
    // Companion source: i(a->b) = geq * (v_ab - v_ab_prev); the constant part
    // geq*v_ab_prev flows b->a.
    stamp_i(c.b, c.a, geq * v_ab_prev);
  }

  // gmin leak from every unknown node.
  for (size_t u = 0; u < T.n_node_unknowns_; ++u) g_(u, u) += options_.gmin;

  // Voltage sources: branch current unknowns after the node block.
  const auto& sources = T.net_.vsources();
  for (size_t k = 0; k < sources.size(); ++k) {
    const auto& src = sources[k];
    const size_t row = T.n_node_unknowns_ + k;
    const int ip = T.unknown_of_node_[src.pos];
    const int in = T.unknown_of_node_[src.neg];
    if (ip >= 0) {
      g_(ip, row) += 1.0;
      g_(row, ip) += 1.0;
    }
    if (in >= 0) {
      g_(in, row) -= 1.0;
      g_(row, in) -= 1.0;
    }
    rhs_[row] = source_levels_[k].value(t_new);
  }

  // MOSFETs: normalize polarity (PMOS mirrors through sign flip) and
  // source/drain order (symmetric device), then stamp the linearization
  //   I(d->s) = ieq + gm*vg + gds*vd - (gm+gds)*vs.
  for (const auto& m : T.net_.mosfets()) {
    const double sigma = m.is_pmos ? -1.0 : 1.0;
    NodeId nd = m.d;
    NodeId ns = m.s;
    if (sigma * (v_cand_[nd] - v_cand_[ns]) < 0.0) std::swap(nd, ns);
    const double vgs_eff = sigma * (v_cand_[m.g] - v_cand_[ns]);
    const double vds_eff = sigma * (v_cand_[nd] - v_cand_[ns]);
    const MosEval e = eval_square_law(vgs_eff, vds_eff, m.params);
    const double ieq = sigma * e.ids - e.gm * v_cand_[m.g] -
                       e.gds * v_cand_[nd] +
                       (e.gm + e.gds) * v_cand_[ns];
    const NodeId coef_nodes[3] = {m.g, nd, ns};
    const double coefs[3] = {e.gm, e.gds, -(e.gm + e.gds)};
    // KCL: +I at effective drain, -I at effective source.
    const NodeId rows[2] = {nd, ns};
    const double signs[2] = {+1.0, -1.0};
    for (int r = 0; r < 2; ++r) {
      const int ir = T.unknown_of_node_[rows[r]];
      if (ir < 0) continue;
      rhs_[ir] -= signs[r] * ieq;
      for (int cidx = 0; cidx < 3; ++cidx) {
        const int iu = T.unknown_of_node_[coef_nodes[cidx]];
        const double c = signs[r] * coefs[cidx];
        if (iu >= 0)
          g_(ir, iu) += c;
        else
          rhs_[ir] -= c * v_cand_[coef_nodes[cidx]];
      }
    }
  }
}

int CompiledCircuit::try_step_dense(double h, double t_new) {
  const CircuitTemplate& T = *tpl_;
  // Start Newton from the committed solution.
  for (size_t n = 1; n < T.n_nodes_; ++n) {
    const int u = T.unknown_of_node_[n];
    if (u >= 0) x_[u] = v_[n];
  }
  for (size_t k = 0; k < branch_i_.size(); ++k)
    x_[T.n_node_unknowns_ + k] = branch_i_[k];

  std::vector<double>& v_prev = v_prev_scratch_;
  v_prev = v_;

  for (int iter = 1; iter <= options_.max_nr_iters; ++iter) {
    // Candidate node voltages: unknowns from x_, known nodes at t_new.
    v_cand_[kGround] = 0.0;
    for (size_t n = 1; n < T.n_nodes_; ++n) {
      const int u = T.unknown_of_node_[n];
      v_cand_[n] = u >= 0 ? x_[u] : rail_levels_[n].value(t_new);
    }
    load_system_dense(h, v_prev, t_new);
    std::vector<double>& sol = rhs_;  // solved in place
    try {
      lu_factor(g_, perm_);
      lu_solve(g_, perm_, sol);
    } catch (const ConvergenceError&) {
      return -1;
    }
    // Damped update with per-node step limiting; convergence measured on the
    // undamped node-voltage deltas.
    double max_dv = 0.0;
    size_t worst_u = 0;
    bool clamped = false;
    for (size_t u = 0; u < T.n_unknowns_; ++u) {
      double delta = sol[u] - x_[u];
      if (u < T.n_node_unknowns_) {
        if (std::abs(delta) > max_dv) {
          max_dv = std::abs(delta);
          worst_u = u;
        }
        if (std::abs(delta) > options_.v_step_limit) {
          delta = std::copysign(options_.v_step_limit, delta);
          clamped = true;
        }
      }
      x_[u] += delta;
    }
    if (worst_u < T.node_of_unknown_.size()) {
      worst_node_ = T.node_of_unknown_[worst_u];
      worst_dv_ = max_dv;
    }
    if (!std::isfinite(max_dv)) return -1;
    stats_.nr_iterations++;
    if (!clamped && max_dv < options_.vntol) {
      // Commit.
      for (size_t n = 1; n < T.n_nodes_; ++n) {
        const int u = T.unknown_of_node_[n];
        v_[n] = u >= 0 ? x_[u] : rail_levels_[n].value(t_new);
      }
      for (size_t k = 0; k < branch_i_.size(); ++k)
        branch_i_[k] = x_[T.n_node_unknowns_ + k];
      return iter;
    }
  }
  return -1;
}

// --- sparse static-order engine --------------------------------------------

void CompiledCircuit::ensure_static_stamps() {
  if (!static_dirty_) return;
  const CircuitTemplate& T = *tpl_;
  std::fill(g_static_.begin(), g_static_.end(), 0.0);
  for (size_t i = 0; i < T.res_plans_.size(); ++i) {
    const auto& rp = T.res_plans_[i];
    const double g = 1.0 / r_ohms_[i];
    if (rp.saa >= 0) g_static_[rp.saa] += g;
    if (rp.sab >= 0) g_static_[rp.sab] -= g;
    if (rp.sbb >= 0) g_static_[rp.sbb] += g;
    if (rp.sba >= 0) g_static_[rp.sba] -= g;
  }
  for (size_t p = 0; p < T.n_node_unknowns_; ++p)
    g_static_[T.diag_slot_[p]] += options_.gmin;
  static_dirty_ = false;
  cached_h_ = -1.0;  // g_rc_ derives from g_static_
}

void CompiledCircuit::ensure_rc_stamps(double h) {
  if (h == cached_h_) return;
  const CircuitTemplate& T = *tpl_;
  std::copy(g_static_.begin(), g_static_.end(), g_rc_.begin());
  for (const auto& cp : T.cap_plans_) {
    const double geq = cp.farads / h;
    if (cp.saa >= 0) g_rc_[cp.saa] += geq;
    if (cp.sab >= 0) g_rc_[cp.sab] -= geq;
    if (cp.sbb >= 0) g_rc_[cp.sbb] += geq;
    if (cp.sba >= 0) g_rc_[cp.sba] -= geq;
  }
  cached_h_ = h;
}

void CompiledCircuit::build_rhs_base(double h,
                                     const std::vector<double>& v_prev) {
  const CircuitTemplate& T = *tpl_;
  std::fill(rhs_base_.begin(), rhs_base_.end(), 0.0);
  // Known-node resistor terms fold into the RHS; known-node voltages are
  // fixed for the whole step (v_cand_ already holds them at t_new).
  for (const int32_t i : T.res_folds_) {
    const auto& rp = T.res_plans_[i];
    const double g = 1.0 / r_ohms_[static_cast<size_t>(i)];
    if (rp.pa >= 0)
      rhs_base_[rp.pa] += g * v_cand_[rp.b];
    else
      rhs_base_[rp.pb] += g * v_cand_[rp.a];
  }
  for (const auto& cp : T.cap_plans_) {
    const double geq = cp.farads / h;
    if (cp.pa >= 0 && cp.pb < 0) rhs_base_[cp.pa] += geq * v_cand_[cp.b];
    if (cp.pb >= 0 && cp.pa < 0) rhs_base_[cp.pb] += geq * v_cand_[cp.a];
    // Companion source: constant part geq*v_ab_prev flows b->a.
    const double icomp = geq * (v_prev[cp.a] - v_prev[cp.b]);
    if (cp.pb >= 0) rhs_base_[cp.pb] -= icomp;
    if (cp.pa >= 0) rhs_base_[cp.pa] += icomp;
  }
}

bool CompiledCircuit::factor_and_solve_sparse() {
  const CircuitTemplate& T = *tpl_;
  const size_t n = T.n_node_unknowns_;
  const int32_t* upd = T.upd_slots_.data();
  // Right-looking LU over the compiled schedule; U keeps the pivots, L is
  // unit-diagonal with multipliers stored in the sub-diagonal slots.
  for (size_t k = 0; k < n; ++k) {
    const auto& st = T.steps_[k];
    const double pivot = a_[T.diag_slot_[k]];
    if (std::abs(pivot) < kMinPivot) return false;
    const uint32_t ncols = st.col_end - st.col_begin;
    // Pack the pivot row U(k, j) once per k; every eliminated row below
    // reads it ncols times (same arithmetic, one less indirection).
    double* pivrow = pivot_row_scratch_.data();
    for (uint32_t c = 0; c < ncols; ++c)
      pivrow[c] = a_[T.cols_[st.col_begin + c].kj_slot];
    for (uint32_t r = st.row_begin; r < st.row_end; ++r) {
      const auto& row = T.rows_[r];
      const double l = a_[row.ik_slot] / pivot;
      a_[row.ik_slot] = l;
      const int32_t* ij = upd + row.upd_begin;
      for (uint32_t c = 0; c < ncols; ++c) a_[ij[c]] -= l * pivrow[c];
    }
  }
  // Forward substitution (unit L).
  for (size_t k = 0; k < n; ++k) {
    const auto& st = T.steps_[k];
    const double bk = rhs_[k];
    for (uint32_t r = st.row_begin; r < st.row_end; ++r)
      rhs_[T.rows_[r].i] -= a_[T.rows_[r].ik_slot] * bk;
  }
  // Backward substitution.
  for (size_t k = n; k-- > 0;) {
    const auto& st = T.steps_[k];
    double s = rhs_[k];
    for (uint32_t c = st.col_begin; c < st.col_end; ++c)
      s -= a_[T.cols_[c].kj_slot] * rhs_[T.cols_[c].j];
    rhs_[k] = s / a_[T.diag_slot_[k]];
  }
  return true;
}

int CompiledCircuit::try_step_sparse(double h, double t_new) {
  const CircuitTemplate& T = *tpl_;
  const size_t n = T.n_node_unknowns_;
  // Start Newton from the committed solution (elimination-order layout).
  for (size_t p = 0; p < n; ++p) x_[p] = v_[T.node_of_pos_[p]];
  std::vector<double>& v_prev = v_prev_scratch_;
  v_prev = v_;
  // Known-node candidate voltages are fixed for the whole step.
  v_cand_[kGround] = 0.0;
  for (const NodeId r : T.rail_nodes_) v_cand_[r] = rail_levels_[r].value(t_new);

  ensure_static_stamps();
  ensure_rc_stamps(h);
  build_rhs_base(h, v_prev);

  for (int iter = 1; iter <= options_.max_nr_iters; ++iter) {
    for (size_t p = 0; p < n; ++p) v_cand_[T.node_of_pos_[p]] = x_[p];
    std::copy(g_rc_.begin(), g_rc_.end(), a_.begin());
    std::copy(rhs_base_.begin(), rhs_base_.end(), rhs_.begin());

    // MOSFET linearization, same normalization as the dense engine. The
    // runtime drain/source swap permutes within the compiled slot set, so
    // the sparsity pattern is swap-invariant.
    for (const auto& m : T.mos_plans_) {
      NodeId nd = m.d;
      NodeId ns = m.s;
      bool swapped = false;
      if (m.sigma * (v_cand_[nd] - v_cand_[ns]) < 0.0) {
        std::swap(nd, ns);
        swapped = true;
      }
      const double vgs_eff = m.sigma * (v_cand_[m.g] - v_cand_[ns]);
      const double vds_eff = m.sigma * (v_cand_[nd] - v_cand_[ns]);
      const MosEval e = eval_square_law(vgs_eff, vds_eff, m.params);
      const double ieq = m.sigma * e.ids - e.gm * v_cand_[m.g] -
                         e.gds * v_cand_[nd] +
                         (e.gm + e.gds) * v_cand_[ns];
      const NodeId coef_nodes[3] = {m.g, nd, ns};
      const double coefs[3] = {e.gm, e.gds, -(e.gm + e.gds)};
      const int prow[2] = {swapped ? 2 : 1, swapped ? 1 : 2};  // pu index
      const int srow[2] = {swapped ? 1 : 0, swapped ? 0 : 1};  // slot row
      const int scol[3] = {0, swapped ? 2 : 1, swapped ? 1 : 2};
      const double signs[2] = {+1.0, -1.0};
      for (int r = 0; r < 2; ++r) {
        const int ir = m.pu[prow[r]];
        if (ir < 0) continue;
        rhs_[ir] -= signs[r] * ieq;
        for (int c = 0; c < 3; ++c) {
          const double cf = signs[r] * coefs[c];
          const int32_t sl = m.slot[srow[r]][scol[c]];
          if (sl >= 0)
            a_[sl] += cf;
          else
            rhs_[ir] -= cf * v_cand_[coef_nodes[c]];
        }
      }
    }

    if (!factor_and_solve_sparse()) return -1;

    double max_dv = 0.0;
    size_t worst_p = 0;
    bool clamped = false;
    for (size_t p = 0; p < n; ++p) {
      double delta = rhs_[p] - x_[p];
      if (std::abs(delta) > max_dv) {
        max_dv = std::abs(delta);
        worst_p = p;
      }
      if (std::abs(delta) > options_.v_step_limit) {
        delta = std::copysign(options_.v_step_limit, delta);
        clamped = true;
      }
      x_[p] += delta;
    }
    worst_node_ = T.node_of_pos_[worst_p];
    worst_dv_ = max_dv;
    if (!std::isfinite(max_dv)) return -1;
    stats_.nr_iterations++;
    if (!clamped && max_dv < options_.vntol) {
      // Commit.
      for (size_t p = 0; p < n; ++p) v_[T.node_of_pos_[p]] = x_[p];
      for (const NodeId r : T.rail_nodes_)
        v_[r] = rail_levels_[r].value(t_new);
      return iter;
    }
  }
  return -1;
}

int CompiledCircuit::try_step(double h, double t_new) {
  return tpl_->sparse_ ? try_step_sparse(h, t_new) : try_step_dense(h, t_new);
}

// --- transient loop (shared) -----------------------------------------------

void CompiledCircuit::run_for_with_ceiling(double duration, double dt_max,
                                           const StepCallback& callback) {
  const SimOptions saved = options_;
  options_.dt_max = dt_max;
  options_.dt_initial = dt_max / 10;
  try {
    run_for(duration, callback);
  } catch (const ConvergenceError& e) {
    // Rethrow with the ceiling context attached: a sweep-level log must be
    // able to tell a retention-pause failure from an ordinary step failure.
    options_ = saved;
    std::ostringstream os;
    os << e.what() << " [during relaxed-ceiling run: dt_max=" << dt_max
       << " s]";
    throw ConvergenceError(os.str());
  } catch (...) {
    options_ = saved;
    throw;
  }
  options_ = saved;
}

bool CompiledCircuit::apply_injected_fault() {
  const testing::InjectionSpec* inj = testing::current_injection();
  if (inj == nullptr) return false;
  switch (inj->kind) {
    case testing::InjectedFault::kNone:
      return false;
    case testing::InjectedFault::kNonConvergence: {
      testing::note_injection();
      stats_.injected_faults++;
      std::ostringstream os;
      os << "injected non-convergence at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
    case testing::InjectedFault::kSingularMatrix: {
      testing::note_injection();
      stats_.injected_faults++;
      std::ostringstream os;
      os << "injected singular MNA matrix (pivot 0) at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
    case testing::InjectedFault::kSlowConvergence:
      testing::note_injection();
      stats_.injected_faults++;
      stats_.nr_iterations += inj->slow_penalty_iters;
      return false;
    case testing::InjectedFault::kNanVoltage:
      // A silently diverged solve: the transient "completes" but every
      // unknown node is left non-finite. No exception here — the point is
      // to prove the classification layer refuses to read NaN as data.
      testing::note_injection();
      stats_.injected_faults++;
      for (const NodeId n : tpl_->node_of_unknown_)
        v_[n] = std::numeric_limits<double>::quiet_NaN();
      return true;
    case testing::InjectedFault::kCorruptVoltage:
      // A silently WRONG solve: logic levels invert but stay finite, so no
      // guard anywhere can tell the state was never solved. Downstream FFM
      // classification is silently mutated — only a differential check
      // against an uncorrupted run can notice.
      testing::note_injection();
      stats_.injected_faults++;
      for (const NodeId n : tpl_->node_of_unknown_)
        v_[n] = inj->corrupt_bias - v_[n];
      return true;
  }
  return false;
}

void CompiledCircuit::check_watchdogs() {
  if (options_.cancel.stop_requested()) {
    std::ostringstream os;
    os << "solve cancelled (" << options_.cancel.reason() << ") at t=" << t_
       << " s";
    throw CancelledError(os.str());
  }
  if (options_.max_total_nr_iters > 0 &&
      stats_.nr_iterations > options_.max_total_nr_iters) {
    std::ostringstream os;
    os << "Newton iteration watchdog: " << stats_.nr_iterations
       << " iterations exceed the budget of " << options_.max_total_nr_iters
       << " at t=" << t_ << " s";
    throw ConvergenceError(os.str());
  }
  if (options_.max_wall_seconds > 0.0 && wall_started_) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start_;
    if (elapsed.count() > options_.max_wall_seconds) {
      std::ostringstream os;
      os << "wall-clock watchdog: " << elapsed.count()
         << " s exceed the budget of " << options_.max_wall_seconds
         << " s at t=" << t_ << " s";
      throw ConvergenceError(os.str());
    }
  }
}

void CompiledCircuit::run_for(double duration, const StepCallback& callback) {
  PF_CHECK(duration >= 0.0);
  const CircuitTemplate& T = *tpl_;
  if (options_.max_wall_seconds > 0.0 && !wall_started_) {
    wall_start_ = std::chrono::steady_clock::now();
    wall_started_ = true;
  }
  const double t_stop = t_ + duration;
  if (testing::armed() && apply_injected_fault()) {
    // kNanVoltage consumed the transient: the poisoned state stays
    // committed and time advances as if the solve had succeeded.
    t_ = t_stop;
    return;
  }
  check_watchdogs();
  dt_ = std::min(options_.dt_initial, duration > 0 ? duration : dt_);
  uint64_t steps_since_wall_check = 0;
  while (t_ < t_stop - 1e-18) {
    ++steps_since_wall_check;
    // Cancellation is checked every step (two relaxed atomic loads); the
    // costlier wall-clock watchdog keeps its 512-step throttle unless the
    // Newton-budget watchdog forces a full check anyway.
    if (options_.cancel.stop_requested() ||
        options_.max_total_nr_iters > 0 || steps_since_wall_check % 512 == 0)
      check_watchdogs();
    double h = std::min({dt_, options_.dt_max, t_stop - t_});
    // Land exactly on source/rail ramp corners so edges are not stepped over.
    auto clamp_corner = [&](double corner) {
      if (corner > t_ + 1e-18 && corner < t_ + h) h = corner - t_;
    };
    for (const auto& lvl : source_levels_) clamp_corner(lvl.ramp_end());
    for (const NodeId rail : T.rail_nodes_)
      clamp_corner(rail_levels_[rail].ramp_end());
    const double t_new = t_ + h;
    const int iters = try_step(h, t_new);
    if (iters < 0) {
      stats_.rejected_steps++;
      dt_ = h / 4.0;
      if (dt_ < options_.dt_min) {
        std::ostringstream os;
        os << "transient failed to converge at t=" << t_ << " s (step h=" << h
           << " s rejected, next dt " << dt_ << " s below dt_min="
           << options_.dt_min << " s; worst residual node '"
           << T.net_.node_name(worst_node_) << "', |dv|=" << worst_dv_
           << " V)";
        throw ConvergenceError(os.str());
      }
      continue;
    }
    stats_.steps++;
    t_ = t_new;
    if (callback) callback(t_, *this);
    // Step-size control from Newton effort.
    if (iters <= 3)
      dt_ = std::min(h * 1.5, options_.dt_max);
    else if (iters > 8)
      dt_ = std::max(h * 0.6, options_.dt_min);
    else
      dt_ = h;
  }
  t_ = t_stop;
}

}  // namespace pf::spice
