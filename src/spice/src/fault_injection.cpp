#include "pf/spice/fault_injection.hpp"

#include <atomic>
#include <mutex>

namespace pf::spice::testing {
namespace {

// The experiment key a worker thread declared for its current attempt.
// Thread-local so parallel sweep workers cannot inherit each other's
// injection scope: an injected fault hits exactly the grid point (and
// thread) whose key matches the plan.
thread_local std::string t_context;  // NOLINT(runtime/string)

struct InjectionState {
  std::atomic<bool> armed{false};
  std::mutex mu;  ///< guards plan, attempts_started and injections
  std::map<std::string, InjectionSpec> plan;
  std::map<std::string, int> attempts_started;
  uint64_t injections = 0;
};

InjectionState& state() {
  static InjectionState s;
  return s;
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan(std::map<std::string, InjectionSpec> plan) {
  InjectionState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = std::move(plan);
  s.attempts_started.clear();
  s.injections = 0;
  t_context.clear();
  s.armed.store(true, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  InjectionState& s = state();
  s.armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan.clear();
  s.attempts_started.clear();
  t_context.clear();
}

bool armed() { return state().armed.load(std::memory_order_acquire); }

void set_context(const std::string& key) {
  InjectionState& s = state();
  if (!armed()) return;
  t_context = key;
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.attempts_started[key];
}

void clear_context() { t_context.clear(); }

const InjectionSpec* current_injection() {
  InjectionState& s = state();
  if (!armed() || t_context.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.plan.find(t_context);
  if (it == s.plan.end()) return nullptr;
  const auto started = s.attempts_started.find(t_context);
  const int attempt = started == s.attempts_started.end() ? 0 : started->second;
  // The pointer stays valid after unlocking: the plan map is only mutated
  // by ScopedFaultPlan construction/destruction, never while armed.
  return attempt <= it->second.fail_attempts ? &it->second : nullptr;
}

uint64_t injections_performed() {
  InjectionState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.injections;
}

void note_injection() {
  InjectionState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.injections;
}

}  // namespace pf::spice::testing
