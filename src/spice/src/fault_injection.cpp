#include "pf/spice/fault_injection.hpp"

namespace pf::spice::testing {
namespace {

struct InjectionState {
  bool armed = false;
  std::map<std::string, InjectionSpec> plan;
  std::map<std::string, int> attempts_started;
  std::string context;
  uint64_t injections = 0;
};

InjectionState& state() {
  static InjectionState s;
  return s;
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan(std::map<std::string, InjectionSpec> plan) {
  InjectionState& s = state();
  s.armed = true;
  s.plan = std::move(plan);
  s.attempts_started.clear();
  s.context.clear();
  s.injections = 0;
}

ScopedFaultPlan::~ScopedFaultPlan() {
  InjectionState& s = state();
  s.armed = false;
  s.plan.clear();
  s.attempts_started.clear();
  s.context.clear();
}

bool armed() { return state().armed; }

void set_context(const std::string& key) {
  InjectionState& s = state();
  if (!s.armed) return;
  s.context = key;
  ++s.attempts_started[key];
}

void clear_context() { state().context.clear(); }

const InjectionSpec* current_injection() {
  InjectionState& s = state();
  if (!s.armed || s.context.empty()) return nullptr;
  const auto it = s.plan.find(s.context);
  if (it == s.plan.end()) return nullptr;
  const auto started = s.attempts_started.find(s.context);
  const int attempt = started == s.attempts_started.end() ? 0 : started->second;
  return attempt <= it->second.fail_attempts ? &it->second : nullptr;
}

uint64_t injections_performed() { return state().injections; }

void note_injection() { ++state().injections; }

}  // namespace pf::spice::testing
