// Numeric kernels shared by the scalar transient engine (circuit.cpp) and
// the batched lockstep backend (solver_backend.cpp).
//
// Bit-identity between the two engines rests on both compiling EXACTLY this
// arithmetic: the square-law evaluation and the pivot floor live here so a
// change to one engine cannot silently diverge from the other.
#pragma once

#include "pf/spice/netlist.hpp"

namespace pf::spice::detail {

/// Square-law drain current and small-signal parameters, NMOS convention,
/// evaluated for vds >= 0 (callers normalize polarity/type first).
struct MosEval {
  double ids = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

inline MosEval eval_square_law(double vgs, double vds, const MosParams& p) {
  MosEval e;
  const double vov = vgs - p.vt;
  if (vov <= 0.0) return e;  // cutoff
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode region.
    const double core = vov * vds - 0.5 * vds * vds;
    e.ids = p.k * core * clm;
    e.gm = p.k * vds * clm;
    e.gds = p.k * (vov - vds) * clm + p.k * core * p.lambda;
  } else {
    // Saturation.
    const double core = 0.5 * vov * vov;
    e.ids = p.k * core * clm;
    e.gm = p.k * vov * clm;
    e.gds = p.k * core * p.lambda;
  }
  return e;
}

constexpr double kMinPivot = 1e-30;

}  // namespace pf::spice::detail
