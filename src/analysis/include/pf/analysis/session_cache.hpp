// Cross-sweep SosSession reuse for campaign runners.
//
// Compiling a column (netlist, sparsity, elimination order, power-up) is
// the fixed cost of every sweep; a campaign running many sweeps over the
// same defect topology pays it once per *job* today. A SessionCache keyed
// by a caller-chosen "family" string lets consecutive sweeps that share a
// compiled-circuit prefix hand the session (including its
// post-initialization snapshot cache, see pf/analysis/sos_runner.hpp) from
// one job to the next.
//
// The family key is the caller's promise: two sweeps in the same family
// must agree on everything that affects compilation — DramParams and
// defect topology (kind + site). Per-point state (defect resistance, SOS,
// engine options, initial voltages) is restamped by SosSession::run, so it
// does NOT belong in the key. Reuse is bit-identical by the same contract
// that makes CircuitMode::kReuse bit-identical to kRebuild: reset()
// restores the pristine snapshot, and the snapshot cache validates its key
// (r_def, options, init states) before restoring.
//
// Thread safety: take()/put() are mutex-serialized. A taken session is
// owned exclusively by the caller until put() back; sweep_region only
// borrows for its worker-0 session (clones for other workers do not carry
// the snapshot cache anyway).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pf/analysis/sos_runner.hpp"

namespace pf::analysis {

class SessionCache {
 public:
  struct Stats {
    size_t hits = 0;    ///< take() calls that found a session
    size_t misses = 0;  ///< take() calls that found nothing
    size_t stored = 0;  ///< put() calls (replacing an entry still counts)
  };

  /// Remove and return the cached session for `family`, or nullptr. The
  /// caller owns the session until it put()s one back (there is at most
  /// one session per family; concurrent sweeps of the same family simply
  /// miss and compile their own).
  std::unique_ptr<SosSession> take(const std::string& family);

  /// Store `session` for later take(). A session already cached under the
  /// same family is replaced (last writer wins — both are equally valid).
  /// Null sessions and empty families are ignored.
  void put(const std::string& family, std::unique_ptr<SosSession> session);

  /// Drop every cached session.
  void clear();

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<SosSession>> by_family_;
  Stats stats_;
};

}  // namespace pf::analysis
