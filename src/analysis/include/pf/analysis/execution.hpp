// Unified execution API for the analysis drivers.
//
// Every headline result of the paper — the (R_def, U) region maps of
// Figures 3-4, the Table 1 partial-fault catalogue and the
// completing-operation search — is an embarrassingly parallel grid of
// independent transient experiments. One ExecutionPolicy carries every
// knob those drivers share (worker threads, solver retry/backoff, failure
// semantics, checkpoint journal, progress reporting), and one
// ParallelGridRunner dispatches their grid points to a fixed-size worker
// pool:
//
//   * each point runs on a private per-worker DramColumn: by default a
//     reused compiled column restamped per point (CircuitMode::kReuse, the
//     compile-once pipeline), optionally a fresh build per point — either
//     way no solver state is shared between workers (see DramColumn's
//     threading note),
//   * indices are claimed in ascending order from an atomic cursor, so a
//     1-thread parallel run visits points exactly like the serial loop,
//   * results land in caller-owned per-index slots and are merged by grid
//     index afterwards, which makes parallel results BIT-IDENTICAL to
//     serial ones (same per-point inputs, deterministic reduction order),
//   * journal appends and the progress callback are serialized internally,
//     so checkpoint/resume stays correct under concurrency.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "pf/analysis/robust.hpp"
#include "pf/spice/solver_backend.hpp"
#include "pf/util/cancellation.hpp"

namespace pf::analysis {

class SessionCache;

/// How the engine obtains and advances circuits for a sweep — the four
/// solver-side decisions that used to be scattered across loose
/// ExecutionPolicy fields. One EnginePlan travels with the policy through
/// every driver (sweep_region, generate_table1, the completion search) and
/// through the pf_served job codec, so a job means the same thing at every
/// layer.
struct EnginePlan {
  /// Which transient engine solves grid points. kScalar is the reference
  /// per-point engine; kBatched advances a whole grid row of U-lanes in
  /// lockstep on one shared template (SIMD across lanes) and falls back to
  /// the scalar robust path for any lane the lockstep pass could not solve.
  /// Batched dense sweeps are bit-identical to scalar ones.
  spice::SolverBackend backend = spice::SolverBackend::kScalar;

  /// How workers obtain circuits (see pf/analysis/sos_runner.hpp). kReuse
  /// (default) compiles once per sweep and restamps per point; kRebuild
  /// reconstructs everything per point (the reference escape hatch).
  /// kBatched requires kReuse: lanes are seeded from one shared session.
  CircuitMode circuit_mode = CircuitMode::kReuse;

  /// Opt-in warm start (requires kReuse + kScalar): power-up replays from
  /// the previous point's end state instead of the pristine snapshot.
  /// Region maps match the cold path; step counts need not. The batched
  /// backend ignores it (lanes always start from the pristine snapshot).
  bool warm_start = false;

  /// Adaptive boundary tracing: instead of evaluating every U-lane of a
  /// row, evaluate seed points, bisect between neighbours that disagree,
  /// and infer the agreeing gaps. Exact on maps whose rows are unions of
  /// bands wider than the seed stride (the paper's Figures 3-4 shape);
  /// narrower bands can be missed — see DESIGN.md §11. Works under either
  /// backend.
  bool adaptive = false;
};

/// Execution knobs shared by sweep_region, generate_table1 and the
/// completion search. Replaces PR 1's SweepOptions / Table1Options::sweep /
/// Table1Options::completion_retry / CompletionSpec::retry scatter.
struct ExecutionPolicy {
  /// Worker threads for grid dispatch: 1 (default) runs serially on the
  /// calling thread, 0 resolves to the hardware thread count, N > 1 uses a
  /// fixed pool of N workers. Any thread count produces bit-identical
  /// results; threads only change wall-clock time.
  int threads = 1;

  /// Per-experiment solver retry/backoff (see pf/analysis/robust.hpp).
  RetryPolicy retry;

  /// Solver-side decisions: backend, circuit lifecycle, warm start,
  /// adaptive tracing. Drivers read this through resolved_plan(), which
  /// validates it (kBatched requires kReuse).
  EnginePlan plan;

  /// Cross-sweep session reuse (see pf/analysis/session_cache.hpp). When
  /// both fields are set and plan.circuit_mode == kReuse, sweep_region
  /// borrows a previously compiled SosSession for `session_family` from the
  /// cache instead of compiling from scratch, and returns it (with its
  /// post-initialization snapshot cache intact) when the sweep completes.
  /// Campaign runners set the family to a key covering everything that
  /// affects compilation (defect topology + process parameters); results
  /// stay bit-identical because SosSession::run restamps and reset()s the
  /// borrowed column exactly like a fresh one.
  std::shared_ptr<SessionCache> session_cache;
  std::string session_family;

  /// Record unrecoverable points as Ffm::kSolveFailed cells (graceful
  /// degradation). When false the failure with the lowest grid index among
  /// the attempted points rethrows with full experiment context and the
  /// sweep result is discarded (workers stop claiming new points).
  bool record_failures = true;

  /// Non-empty: append every completed point to this CSV journal (see
  /// pf/analysis/checkpoint.hpp) and — when `resume` — skip points an
  /// earlier interrupted run already solved. Multi-sweep drivers
  /// (generate_table1) use it as a path *prefix*, one journal per sweep.
  std::string journal_path;
  bool resume = true;

  /// Optional per-point progress hook, called as progress(done, total)
  /// after every completed grid point. Invoked under the runner's mutex:
  /// the callback need not be thread-safe, but must be fast.
  std::function<void(size_t done, size_t total)> progress;

  /// Cooperative cancellation. The token is checked by ParallelGridRunner
  /// between grid points (workers stop claiming) and by the solver watchdog
  /// mid-point, so a signal handler or deadline tripping it stops the sweep
  /// within one Newton step, not one grid point. Copies of the policy share
  /// the token's state: tripping any copy trips them all. A cancelled run
  /// throws pf::CancelledError after in-flight points drain — with a
  /// journal armed, everything completed before the trip is already on
  /// disk, so the run is resumable.
  pf::CancellationToken cancel;

  /// Global wall-clock budget in seconds; <= 0 (default) = unlimited. The
  /// deadline is armed on the token's *shared* state the first time a
  /// runner sees the policy, so a multi-sweep driver (generate_table1)
  /// gets ONE budget across all its sweeps, not one per sweep.
  double deadline_seconds = 0.0;
};

/// The worker count `threads` resolves to (0 -> hardware concurrency,
/// never below 1).
int resolve_worker_count(int threads);

/// The effective EnginePlan of a policy: `policy.plan`, validated.
/// Throws pf::Error for plans the engine cannot execute
/// (kBatched + kRebuild). The PR 8 [[deprecated]] `circuit`/`warm_start`
/// forwarding shims are gone — EnginePlan is the only spelling.
EnginePlan resolved_plan(const ExecutionPolicy& policy);

/// Dispatches grid points to a fixed-size worker pool. One runner is
/// constructed per driver call; each run() spawns `workers() - 1` pool
/// threads (the calling thread is worker 0) and joins them before
/// returning, so no state leaks between runs.
class ParallelGridRunner {
 public:
  explicit ParallelGridRunner(const ExecutionPolicy& policy);

  /// Resolved worker count (>= 1).
  int workers() const { return workers_; }

  /// Run work(index, worker) for every index in [0, n). Indices are
  /// claimed in ascending order; `worker` is in [0, workers()) and stable
  /// for the duration of one work() call, so call sites can keep
  /// per-worker scratch state in a flat array. Results must go into
  /// per-index slots owned by the caller (distinct elements of a
  /// pre-sized vector are distinct memory locations — no locking needed).
  ///
  /// An exception thrown by work() cancels the run: workers stop claiming
  /// new indices, in-flight points finish, and the captured exception with
  /// the lowest index is rethrown on the calling thread. The progress
  /// callback of the policy is invoked (serialized) after every
  /// successfully completed index.
  ///
  /// Cooperative cancellation: the policy's token is checked before every
  /// index is claimed. Once it trips (signal, deadline), workers drain
  /// their in-flight point and run() throws pf::CancelledError on the
  /// calling thread. A pf::CancelledError thrown *by* work() (the solver
  /// watchdog saw the token mid-point) stops the run the same way — it is
  /// a cancellation, not a per-point error, so it never competes with real
  /// errors for the lowest-index slot.
  void run(size_t n, const std::function<void(size_t index, int worker)>& work)
      const;

 private:
  int workers_;
  std::function<void(size_t, size_t)> progress_;
  pf::CancellationToken cancel_;
};

}  // namespace pf::analysis
