// Crash-safe checkpoint/resume journal for long (R_def, U) sweeps — v2.
//
// A production-scale sweep appends one row per completed grid point to a
// journal file, flushed immediately, so an interrupted run (crash, kill,
// power loss, cooperative cancellation) can resume by re-reading the journal
// and skipping every point it already solved. Rows recording a solver
// failure (FAIL) are *not* skipped on resume: a later run — possibly with a
// different retry policy — gets another chance at them.
//
// v2 format (CSV after a tagged header; CRC-32 per row, END trailer):
//
//   # pf-sweep-journal v2 fingerprint=<16 hex digits>
//   iy,ix,r_def,u,ffm,attempts,crc
//   0,0,10000,0,-,1,1a2b3c4d
//   0,1,10000,0.3,RDF1,2,5e6f7a8b
//   1,3,31623,0.9,FAIL,3,9c0d1e2f
//   # pf-sweep-journal END fingerprint=<16 hex digits>
//
// Integrity model — the journal must never make resume *worse* than a
// fresh start, whatever is on disk:
//
//   * every data row carries the CRC-32 of its payload (the text before
//     ",crc"); a bit flip, a torn flush or a truncated tail fails the check
//     and the row is DROPPED (and counted), never trusted and never fatal —
//     that point simply re-runs;
//   * the END trailer is written by finalize() when a sweep runs to
//     completion; a journal whose last line is not a valid trailer is a
//     crashed/interrupted tail, which load() reports via clean_end so
//     callers can log "resuming an interrupted sweep";
//   * duplicate (iy, ix) rows keep the LAST occurrence (appends are
//     chronological, later = more recent);
//   * a file whose header is unreadable (not a journal tag, mangled
//     fingerprint field, unknown version) is QUARANTINED: renamed to
//     <path>.corrupt — or <path>.corrupt.1, .2, ... when earlier quarantined
//     evidence already holds that name — and the sweep restarts fresh; the
//     evidence is kept, the campaign keeps running (quarantines are counted
//     in SweepStats::journal_quarantined);
//   * a v1 journal (PR 1 format, no CRCs) loads transparently: its 6-field
//     rows are accepted unchecked, and the v2 writer appends CRC'd rows
//     after them (load() accepts both row shapes in one file). Under a v2
//     header a 6-field row is a truncation artifact and is dropped.
//
// The fingerprint hashes the sweep identity (defect, floating line, SOS
// notation, both axes); loading a journal written for a different sweep
// still throws — that is two live sweeps colliding on one path (caller
// error), not corruption. DramParams are not fingerprinted: a journal is
// only as valid as the parameter set it was recorded under.
//
// Concurrency: append() is the journal's single-writer path — a mutex
// serializes the workers of a parallel sweep, and every row is flushed
// before the mutex is released, so a crash loses at most the row being
// written. Rows may appear in any grid order; load() keys rows by (iy, ix)
// and does not care. A journal written by an N-thread run resumes correctly
// in a serial run and vice versa.
#pragma once

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "pf/analysis/region.hpp"

namespace pf::analysis {

class SweepJournal {
 public:
  struct Entry {
    size_t ix = 0;
    size_t iy = 0;
    faults::Ffm ffm = faults::Ffm::kUnknown;  ///< kUnknown = solved, no fault
    int attempts = 1;
  };

  /// What load() recovered, and how trustworthy the file looked.
  struct LoadResult {
    std::vector<Entry> entries;  ///< valid solved rows (FAIL rows excluded)
    size_t dropped = 0;     ///< corrupt/truncated/unparsable rows dropped
    size_t fail_rows = 0;   ///< valid FAIL rows seen (re-attempted on resume)
    bool clean_end = false; ///< file ends with a valid END trailer
    bool quarantined = false;  ///< unreadable file moved to <path>.corrupt
    int version = 0;        ///< header version (1 or 2); 0 = no/empty file
  };

  /// Sweep identity hash over defect, floating line, SOS and both axes.
  static uint64_t fingerprint(const SweepSpec& spec);

  /// Parse the journal at `path` (empty result when the file does not
  /// exist), recovering the maximum valid prefix of rows per the integrity
  /// model above. Throws pf::Error only when a readable journal belongs to
  /// a different sweep or a CRC-valid row indexes outside the grid.
  static LoadResult load(const std::string& path, const SweepSpec& spec);

  /// Open `path` for appending, writing the v2 header when the file is new
  /// or empty (an unreadable existing file is quarantined first, exactly as
  /// in load()). Throws pf::Error when the file cannot be opened.
  SweepJournal(const std::string& path, const SweepSpec& spec);

  /// Append one completed grid point and flush. Safe to call from multiple
  /// sweep workers concurrently (internally serialized).
  void append(const Entry& entry, double r_def, double u);

  /// Write the END trailer and flush — call when the sweep ran to
  /// completion (every grid point journaled). Idempotent per journal
  /// object. A journal destroyed without finalize() (crash, cancellation)
  /// has no trailer, which is exactly what marks it interrupted.
  void finalize();

  /// Rows appended through this object (excludes resumed/previous rows).
  size_t rows_appended() const { return rows_appended_; }

 private:
  std::mutex mu_;
  std::ofstream out_;
  uint64_t fingerprint_ = 0;
  size_t rows_appended_ = 0;
  bool finalized_ = false;
};

}  // namespace pf::analysis
