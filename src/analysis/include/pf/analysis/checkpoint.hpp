// Checkpoint/resume journal for long (R_def, U) sweeps.
//
// A production-scale sweep appends one CSV row per completed grid point to a
// journal file, flushed immediately, so an interrupted run (crash, kill,
// power loss) can resume by re-reading the journal and skipping every point
// it already solved. Rows recording a solver failure (FAIL) are *not*
// skipped on resume: a later run — possibly with a different retry policy —
// gets another chance at them.
//
// Format (plain CSV after a tagged header):
//
//   # pf-sweep-journal v1 fingerprint=<16 hex digits>
//   iy,ix,r_def,u,ffm,attempts
//   0,0,10000,0,-,1
//   0,1,10000,0.3,RDF1,2
//   1,3,31623,0.9,FAIL,3
//
// The fingerprint hashes the sweep identity (defect, floating line, SOS
// notation, both axes); loading a journal written for a different sweep
// throws instead of silently mixing grids. DramParams are not fingerprinted:
// a journal is only as valid as the parameter set it was recorded under. A
// truncated final row (crash mid-write) is tolerated and dropped.
//
// Concurrency: append() is the journal's single-writer path — a mutex
// serializes the workers of a parallel sweep, and every row is flushed
// before the mutex is released, so a crash loses at most the row being
// written. Rows may therefore appear in any grid order; load() keys rows by
// (iy, ix) and does not care. A journal written by an N-thread run resumes
// correctly in a serial run and vice versa.
#pragma once

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "pf/analysis/region.hpp"

namespace pf::analysis {

class SweepJournal {
 public:
  struct Entry {
    size_t ix = 0;
    size_t iy = 0;
    faults::Ffm ffm = faults::Ffm::kUnknown;  ///< kUnknown = solved, no fault
    int attempts = 1;
  };

  /// Sweep identity hash over defect, floating line, SOS and both axes.
  static uint64_t fingerprint(const SweepSpec& spec);

  /// Parse the journal at `path` (empty result when the file does not
  /// exist). Throws pf::Error when the fingerprint belongs to a different
  /// sweep or an index is outside the grid. FAIL rows are dropped so failed
  /// points are re-attempted on resume.
  static std::vector<Entry> load(const std::string& path,
                                 const SweepSpec& spec);

  /// Open `path` for appending, writing the header when the file is new or
  /// empty. Throws pf::Error when the file cannot be opened.
  SweepJournal(const std::string& path, const SweepSpec& spec);

  /// Append one completed grid point and flush. Safe to call from multiple
  /// sweep workers concurrently (internally serialized).
  void append(const Entry& entry, double r_def, double u);

 private:
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace pf::analysis
