// Defect diagnosis from march fail logs.
//
// A march test run produces a fail log (which reads failed, where, with
// what value). Different defects produce characteristically different logs;
// a *fault dictionary* built by simulating candidate defects on the
// electrical column maps observed fail signatures back to defect
// candidates. This turns the paper's analysis flow around: instead of
// asking "what faults does this defect cause", production debug asks "what
// defect explains this fail log".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pf/dram/column.hpp"
#include "pf/march/test.hpp"

namespace pf::analysis {

/// Canonical string form of a march fail log (element/address/expected/got
/// tuples in execution order), usable as a dictionary key. An empty log
/// canonicalizes to "PASS".
std::string signature_key(const march::MarchResult& result);

/// Run `test` on a fresh column with `defect` and return the signature.
std::string simulate_signature(const march::MarchTest& test,
                               const dram::DramParams& params,
                               const dram::Defect& defect);

struct DiagnosisMatch {
  dram::Defect defect;
  bool exact = true;  ///< key matched exactly (vs. nearest by fail overlap)
};

class FaultDictionary {
 public:
  /// Build by simulating every candidate defect under `test`.
  static FaultDictionary build(const march::MarchTest& test,
                               const dram::DramParams& params,
                               const std::vector<dram::Defect>& candidates);

  /// Build with SEVERAL tests: the signature concatenates each test's fail
  /// log (run on a fresh column each time). Defects that alias under one
  /// test usually separate under a second with different conditioning.
  static FaultDictionary build(const std::vector<march::MarchTest>& tests,
                               const dram::DramParams& params,
                               const std::vector<dram::Defect>& candidates);

  const std::vector<march::MarchTest>& tests() const { return tests_; }
  size_t size() const { return entries_.size(); }
  /// Number of distinct signatures (ambiguity = size() - distinct()).
  size_t distinct_signatures() const;

  /// Defects whose dictionary signature equals the observed one. Empty when
  /// the signature is unknown (including an all-PASS signature).
  std::vector<dram::Defect> lookup(const std::string& key) const;

  /// Combined signature of a device under test across the dictionary's
  /// tests (the device is NOT re-powered between tests; each test starts on
  /// a fresh column in build(), so diagnose uses fresh columns per test via
  /// the caller-provided factory below when exact state matters).
  std::string signature_of(dram::DramColumn& dut) const;

  /// Convenience: run the dictionary's tests on a device under test and
  /// look the combined signature up.
  std::vector<dram::Defect> diagnose(dram::DramColumn& dut) const;

 private:
  std::vector<march::MarchTest> tests_;
  std::vector<std::pair<std::string, dram::Defect>> entries_;
};

}  // namespace pf::analysis
