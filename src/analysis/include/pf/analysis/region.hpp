// Fault-primitive region maps in the (R_def, U) plane — the paper's
// Figures 3 and 4. One sweep fixes a defect site, a floating line and an
// SOS; each grid point runs the SOS with R_def on the y axis and the
// floating initial voltage U on the x axis, recording the observed FFM.
#pragma once

#include <string>
#include <vector>

#include "pf/analysis/sos_runner.hpp"
#include "pf/util/grid.hpp"
#include "pf/util/interval.hpp"

namespace pf::analysis {

struct SweepSpec {
  dram::DramParams params;
  dram::Defect defect;                 ///< resistance ignored (axis value used)
  size_t floating_line_index = 0;      ///< which of floating_lines_for(defect)
  faults::Sos sos;
  std::vector<double> r_axis;          ///< R_def values (log-spaced, ascending)
  std::vector<double> u_axis;          ///< floating voltages
};

/// Default axes used by the figure reproductions: log R in [10k, 10M],
/// linear U in [0, vdd].
std::vector<double> default_r_axis(size_t n = 13);
std::vector<double> default_u_axis(const dram::DramParams& params,
                                   size_t n = 12);

class RegionMap {
 public:
  RegionMap(SweepSpec spec, Grid2D<faults::Ffm> grid);

  const SweepSpec& spec() const { return spec_; }
  const Grid2D<faults::Ffm>& grid() const { return grid_; }

  /// All FFMs observed anywhere in the map.
  std::vector<faults::Ffm> observed_ffms() const;
  /// Grid points where `ffm` is observed.
  size_t count(faults::Ffm ffm) const;
  /// U values where `ffm` is observed at row `iy`, merged into bands
  /// (adjacent grid samples merge).
  Interval u_domain() const;
  pf::IntervalSet u_band(faults::Ffm ffm, size_t iy) const;
  /// Smallest R_def at which `ffm` is observed (NaN if never).
  double min_r(faults::Ffm ffm) const;
  /// True when some row's observation band covers the full U domain.
  bool has_fully_covered_row(faults::Ffm ffm) const;

  /// ASCII rendering in the style of the paper's figures ('.' = no fault;
  /// one glyph per FFM, with a legend).
  std::string render(const std::string& title) const;

  /// Machine-readable dump: one row per grid point (r_def, u, ffm).
  std::string to_csv() const;

 private:
  SweepSpec spec_;
  Grid2D<faults::Ffm> grid_;
};

/// Run the sweep (|r_axis| * |u_axis| SOS experiments).
RegionMap sweep_region(const SweepSpec& spec);

}  // namespace pf::analysis
