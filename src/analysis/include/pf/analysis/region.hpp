// Fault-primitive region maps in the (R_def, U) plane — the paper's
// Figures 3 and 4. One sweep fixes a defect site, a floating line and an
// SOS; each grid point runs the SOS with R_def on the y axis and the
// floating initial voltage U on the x axis, recording the observed FFM.
#pragma once

#include <string>
#include <vector>

#include "pf/analysis/execution.hpp"
#include "pf/analysis/sos_runner.hpp"
#include "pf/util/grid.hpp"
#include "pf/util/interval.hpp"

namespace pf::analysis {

struct SweepSpec {
  dram::DramParams params;
  dram::Defect defect;                 ///< resistance ignored (axis value used)
  size_t floating_line_index = 0;      ///< which of floating_lines_for(defect)
  faults::Sos sos;
  std::vector<double> r_axis;          ///< R_def values (log-spaced, ascending)
  std::vector<double> u_axis;          ///< floating voltages
};

/// Default axes used by the figure reproductions: log R in [10k, 10M],
/// linear U in [0, vdd].
std::vector<double> default_r_axis(size_t n = 13);
std::vector<double> default_u_axis(const dram::DramParams& params,
                                   size_t n = 12);

/// Solver bookkeeping of one sweep_region call, so partial-fault
/// classification can state how much of the grid it actually observed.
struct SweepStats {
  size_t attempted = 0;  ///< points run in this call (excludes resumed/inferred)
  size_t solved = 0;     ///< points that produced an observation
  size_t failed = 0;     ///< points recorded as Ffm::kSolveFailed
  size_t retries = 0;    ///< attempts beyond the first, over all points
  size_t resumed = 0;    ///< points restored from the journal
  size_t inferred = 0;   ///< adaptive-mode points filled without solving
  size_t journal_dropped = 0;  ///< corrupt journal rows dropped on resume
  size_t journal_quarantined = 0;  ///< unreadable journals moved to .corrupt[.N]
  std::vector<std::string> failure_log;  ///< context, one entry per failure
};

class RegionMap {
 public:
  RegionMap(SweepSpec spec, Grid2D<faults::Ffm> grid);
  RegionMap(SweepSpec spec, Grid2D<faults::Ffm> grid, SweepStats stats);

  const SweepSpec& spec() const { return spec_; }
  const Grid2D<faults::Ffm>& grid() const { return grid_; }

  /// Retry/failure bookkeeping of the sweep that produced this map.
  const SweepStats& solve_stats() const { return stats_; }
  /// Grid points whose experiment could not be solved (kSolveFailed cells).
  size_t failed_points() const;
  /// Fraction of grid points actually observed, in [0, 1].
  double observed_fraction() const;

  /// All FFMs observed anywhere in the map (kSolveFailed cells excluded:
  /// a solver failure is a hole in the observation, not an FFM).
  std::vector<faults::Ffm> observed_ffms() const;
  /// Grid points where `ffm` is observed.
  size_t count(faults::Ffm ffm) const;
  /// U values where `ffm` is observed at row `iy`, merged into bands
  /// (adjacent grid samples merge).
  Interval u_domain() const;
  pf::IntervalSet u_band(faults::Ffm ffm, size_t iy) const;
  /// Smallest R_def at which `ffm` is observed (NaN if never).
  double min_r(faults::Ffm ffm) const;
  /// True when some row's observation band covers the full U domain.
  bool has_fully_covered_row(faults::Ffm ffm) const;

  /// ASCII rendering in the style of the paper's figures ('.' = no fault;
  /// one glyph per FFM, 'x' = solve failed, with a legend).
  std::string render(const std::string& title) const;

  /// Machine-readable dump: one row per grid point (r_def, u, ffm); failed
  /// points dump as "FAIL".
  std::string to_csv() const;

 private:
  SweepSpec spec_;
  Grid2D<faults::Ffm> grid_;
  SweepStats stats_;
};

/// Run the sweep (|r_axis| * |u_axis| SOS experiments) under the execution
/// policy: grid points are dispatched to policy.threads workers, retried
/// under policy.retry, degraded to Ffm::kSolveFailed cells when
/// unrecoverable (unless policy.record_failures is off), journaled for
/// checkpoint/resume when policy.journal_path is set, and merged by grid
/// index. Any thread count returns a bit-identical RegionMap: same grid,
/// same SweepStats totals, same index-ordered failure_log.
///
/// Circuit lifecycle: with policy.plan.circuit_mode == CircuitMode::kReuse
/// (default) the circuit template — netlist, node map, sparsity pattern, elimination
/// order — is compiled ONCE per sweep; each worker owns a private
/// SosSession whose column is restamped (defect resistance via ParamHandle,
/// engine options in place) and reset() per grid point. Because reset() is
/// bit-identical to a fresh construction (pf/dram/column.hpp), the map
/// equals a CircuitMode::kRebuild sweep bit for bit at any thread count;
/// only wall-clock changes. policy.plan.warm_start additionally replays
/// power-up
/// from the previous point's end state instead of restoring the pristine
/// snapshot (same map, different solver trajectories).
///
/// Cancellation: when policy.cancel trips (signal handler, deadline) the
/// sweep drains in-flight points, journals them, and throws
/// pf::CancelledError — a later call with the same journal_path resumes
/// where it stopped and, because points are merged by grid index, yields a
/// map bit-identical to an uninterrupted run.
///
/// Engine plan (policy.plan, see pf/analysis/execution.hpp): with
/// backend == kBatched the unit of dispatch becomes one grid ROW — a
/// per-worker batched engine advances the row's U-lanes in lockstep and
/// any lane the lockstep pass cannot solve falls back to the scalar retry
/// loop, so the dense map stays bit-identical to the scalar backend's.
/// With plan.adaptive each row evaluates boundary-tracing seed points,
/// bisects between class-disagreeing neighbours, and fills agreeing gaps
/// by inference (SweepStats::inferred; journaled with attempts = 0) —
/// exact when every same-class band is at least as wide as the seed
/// stride, else narrow bands may be missed. Row-based modes report
/// progress per ROW, not per point, and ignore plan.warm_start.
RegionMap sweep_region(const SweepSpec& spec,
                       const ExecutionPolicy& policy = {});

/// Inverse of RegionMap::to_csv for a KNOWN spec: parses the header plus
/// |r_axis| * |u_axis| data rows (row-major) and takes the ffm column
/// ("-" = no fault, "FAIL" = kSolveFailed). The r/u columns are redundant
/// with the spec's axes (and printed at reduced precision), so they are
/// not parsed back. Solve stats are not representable in the CSV; the
/// returned map has empty SweepStats. Throws pf::ParseError on a wrong
/// header, malformed row, unknown FFM name or row-count mismatch.
RegionMap region_map_from_csv(const SweepSpec& spec, const std::string& csv);

}  // namespace pf::analysis
