// Fault-tolerant execution of single (defect, floating-voltage, SOS)
// experiments: retry with progressively tightened solver options, bounded by
// per-attempt watchdogs, with structured failure context.
//
// The paper's analysis grids (Figures 3-4, Table 1) are thousands of
// independent SPICE experiments; production-scale sweeps must survive a
// non-convergent point instead of discarding every completed one. This layer
// wraps run_sos:
//
//   attempt 1   the caller's SimOptions, plus watchdogs,
//   attempt k   dt_initial and dt_min shrunk, the Newton iteration cap
//               raised and the damping clamp tightened (all per RetryPolicy),
//
// until the attempt budget is exhausted. Every failure message carries the
// experiment context (defect, line, R_def, U, SOS notation, attempt count)
// so sweep-level logs are actionable. Deterministic fault injection for
// exercising these paths lives in pf/spice/fault_injection.hpp; the
// experiment keys used by the sweep engines are grid_point_key() and
// completion_key().
#pragma once

#include <string>

#include "pf/analysis/sos_runner.hpp"

namespace pf::analysis {

/// Knobs of the retry/backoff loop. Attempt 1 runs with the caller's
/// SimOptions (plus watchdogs); each later attempt applies the scales once
/// more.
struct RetryPolicy {
  int max_attempts = 3;             ///< total attempts per experiment
  double dt_initial_scale = 0.25;   ///< initial-timestep shrink per retry
  double dt_min_scale = 0.25;       ///< fatal-timestep floor shrink per retry
  int extra_nr_iters = 40;          ///< Newton cap increase per retry
  double v_step_limit_scale = 0.5;  ///< damping clamp shrink per retry

  /// Per-attempt watchdogs (mapped onto SimOptions); they bound a
  /// pathological grid point instead of letting it hang a sweep.
  uint64_t watchdog_nr_iters = 1000000;  ///< Newton budget (0 = off)
  double watchdog_wall_seconds = 0.0;    ///< wall budget [s] (0 = off)

  bool operator==(const RetryPolicy&) const = default;
};

/// Identification of one experiment, used for failure messages and as the
/// fault-injection context key.
struct ExperimentContext {
  std::string key;     ///< injection context (empty: no injection scoping)
  std::string defect;  ///< defect display name
  std::string line;    ///< floating-line label
  double r_def = 0.0;  ///< defect resistance [Ohm]
  double u = 0.0;      ///< floating initial voltage [V]
  std::string sos;     ///< SOS notation

  std::string describe() const;
};

/// Result of a retried experiment. When !solved, `outcome` is default
/// constructed and `error` holds the last failure with full context.
struct RobustOutcome {
  SosOutcome outcome;
  bool solved = false;
  int attempts = 0;  ///< attempts actually made
  std::string error;
};

/// The caller's SimOptions after `attempt - 1` tightening rounds, with the
/// policy's watchdogs applied.
spice::SimOptions tightened_sim_options(const spice::SimOptions& base,
                                        const RetryPolicy& policy,
                                        int attempt);

/// run_sos under the retry policy. Never throws for solver failures; any
/// pf::Error from the electrical experiment is converted into a failed
/// RobustOutcome after the attempt budget is spent. This overload rebuilds
/// a fresh column per attempt (CircuitMode::kRebuild semantics).
RobustOutcome run_sos_robust(const dram::DramParams& params,
                             const dram::Defect& defect,
                             const dram::FloatingLine* line, double u,
                             const faults::Sos& sos,
                             const RetryPolicy& policy,
                             const ExperimentContext& ctx,
                             bool idle_before_observe = false);

/// Same retry loop on a reused per-worker session (CircuitMode::kReuse):
/// attempt k restamps `defect.resistance` and the tightened options onto the
/// session's compiled column and resets it, which is bit-identical to
/// rebuilding — both overloads share one attempt-loop implementation, so the
/// fresh and reused flavors cannot drift. `base` supplies the attempt-1
/// SimOptions (including the sweep's cancellation token); `defect` must
/// match the topology the session was compiled for.
RobustOutcome run_sos_robust(SosSession& session,
                             const spice::SimOptions& base,
                             const dram::Defect& defect,
                             const dram::FloatingLine* line, double u,
                             const faults::Sos& sos,
                             const RetryPolicy& policy,
                             const ExperimentContext& ctx,
                             bool idle_before_observe = false,
                             bool warm_start = false);

/// Injection-context key used by sweep_region for the grid point (ix, iy).
std::string grid_point_key(size_t ix, size_t iy);

/// Injection-context key used by the completion search for a probe point.
std::string completion_key(double r_def, double u);

}  // namespace pf::analysis
