// Execution of a sensitizing operation sequence on the electrical DRAM
// column with floating-voltage injection — the measurement primitive of the
// paper's fault-analysis method (Section 3):
//
//   1. power the column up and apply the SOS's initializing states
//      (ordinary write operations),
//   2. override the defect's floating line to the probe voltage U,
//   3. apply the SOS's operations (completing prefix + sensitizing suffix),
//   4. observe the victim's final state F and the final read result R and
//      classify the deviation as a fault primitive / FFM.
#pragma once

#include "pf/dram/column.hpp"
#include "pf/dram/defect.hpp"
#include "pf/faults/ffm.hpp"
#include "pf/faults/fp.hpp"

namespace pf::analysis {

struct SosOutcome {
  int final_state = -1;  ///< victim's logical content after the SOS
  int read_result = -1;  ///< result of the SOS's final victim read (-1: none)
  bool faulty = false;   ///< deviates from the SOS's fault-free expectation
  faults::FaultPrimitive observed;  ///< SOS + observed <F, R>
  faults::Ffm ffm = faults::Ffm::kUnknown;  ///< classification (when faulty)
};

/// Run one (defect, floating-voltage, SOS) experiment on a fresh column.
/// `line` may be null (no override — nominal behaviour). For an
/// operation-free SOS (state faults) one idle precharge cycle runs between
/// the override and the observation, which is the paper's SF mechanism;
/// `idle_before_observe` forces that extra cycle for op-carrying SOSes too
/// (used when searching completing operations for state faults).
SosOutcome run_sos(const dram::DramParams& params, const dram::Defect& defect,
                   const dram::FloatingLine* line, double u,
                   const faults::Sos& sos, bool idle_before_observe = false);

/// Convenience overload reusing an existing column (caller must power_up()
/// between experiments).
SosOutcome run_sos_on(dram::DramColumn& column, const dram::FloatingLine* line,
                      double u, const faults::Sos& sos,
                      bool idle_before_observe = false);

}  // namespace pf::analysis
