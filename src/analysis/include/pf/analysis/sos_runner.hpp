// Execution of a sensitizing operation sequence on the electrical DRAM
// column with floating-voltage injection — the measurement primitive of the
// paper's fault-analysis method (Section 3):
//
//   1. power the column up and apply the SOS's initializing states
//      (ordinary write operations),
//   2. override the defect's floating line to the probe voltage U,
//   3. apply the SOS's operations (completing prefix + sensitizing suffix),
//   4. observe the victim's final state F and the final read result R and
//      classify the deviation as a fault primitive / FFM.
//
// There is exactly ONE implementation of that recipe — run_sos_on — and two
// ways to hand it a column:
//
//   * run_sos builds a fresh DramColumn per call (netlist + compiled
//     template + power-up). Simple, stateless, and the reference semantics
//     every reuse path must reproduce bit for bit.
//   * SosSession keeps a per-worker column alive across experiments and
//     reconfigures it per point through the compile-once pipeline: restamp
//     the defect resistance via its ParamHandle, swap engine options in
//     place, reset() to the pristine post-power-up state. Because reset()
//     is defined as bit-identical to a fresh construction (see
//     pf/dram/column.hpp), a session run and a run_sos call with the same
//     (R_def, options, U, SOS) return identical SosOutcomes.
#pragma once

#include <string>
#include <vector>

#include "pf/dram/column.hpp"
#include "pf/dram/defect.hpp"
#include "pf/faults/ffm.hpp"
#include "pf/faults/fp.hpp"

namespace pf::analysis {

struct SosOutcome {
  int final_state = -1;  ///< victim's logical content after the SOS
  int read_result = -1;  ///< result of the SOS's final victim read (-1: none)
  bool faulty = false;   ///< deviates from the SOS's fault-free expectation
  faults::FaultPrimitive observed;  ///< SOS + observed <F, R>
  faults::Ffm ffm = faults::Ffm::kUnknown;  ///< classification (when faulty)
};

/// How a sweep driver obtains the circuit for each grid point.
enum class CircuitMode {
  /// Per-worker compiled column, restamped + reset() per point. The compiled
  /// template is built once per sweep and shared by every worker; results
  /// are bit-identical to kRebuild at any thread count.
  kReuse,
  /// Fresh netlist + template + column per point (the pre-pipeline
  /// behaviour). Kept as the reference implementation and A/B escape hatch.
  kRebuild,
};

/// Run one (defect, floating-voltage, SOS) experiment on a fresh column.
/// `line` may be null (no override — nominal behaviour). For an
/// operation-free SOS (state faults) one idle precharge cycle runs between
/// the override and the observation, which is the paper's SF mechanism;
/// `idle_before_observe` forces that extra cycle for op-carrying SOSes too
/// (used when searching completing operations for state faults).
SosOutcome run_sos(const dram::DramParams& params, const dram::Defect& defect,
                   const dram::FloatingLine* line, double u,
                   const faults::Sos& sos, bool idle_before_observe = false);

/// The shared implementation behind run_sos and SosSession::run: executes
/// the SOS on `column`, which must be in the pristine post-power-up state
/// (fresh construction, reset(), or — for warm starts — a power_up() replay).
SosOutcome run_sos_on(dram::DramColumn& column, const dram::FloatingLine* line,
                      double u, const faults::Sos& sos,
                      bool idle_before_observe = false);

/// A reusable experiment context for one worker of a sweep: one compiled
/// column whose topology is fixed at construction and whose swept values
/// (defect resistance, engine options, floating voltage) are restamped per
/// run. Not thread-safe — give each worker its own session via clone().
class SosSession {
 public:
  /// Compiles the column once for (params, defect). The defect's
  /// `resistance` is only the initial stamp — each run() restamps it to
  /// that experiment's R_def through the template's ParamHandle.
  SosSession(const dram::DramParams& params, const dram::Defect& defect);

  /// A pristine replica sharing the compiled template (cheap run-state
  /// clone) — the per-worker fan-out hook of the parallel sweep engine.
  SosSession clone() const { return SosSession(column_.clone_fresh()); }

  const dram::DramColumn& column() const { return column_; }

  /// One experiment, bit-identical to
  ///   run_sos(params{sim = options}, defect{resistance = r_def}, ...)
  /// on a fresh column. With `warm_start` the column is NOT reset to
  /// pristine first: the power-up sequence replays from the previous
  /// experiment's end state (the opt-in R-sweep warm start; classifications
  /// match the cold path, exact node trajectories need not).
  ///
  /// Cold runs additionally cache the POST-INITIALIZATION snapshot: the
  /// SOS's initializing writes (step 1) happen before the floating voltage
  /// is injected (step 2), so consecutive experiments that share (R_def,
  /// numerics, initial states) — e.g. one grid row of a sweep, which varies
  /// only U — restore the snapshot instead of re-solving power-up and the
  /// initializing writes. Deterministic replay makes the restored state
  /// equal the re-solved state bit for bit, so outcomes are unaffected.
  SosOutcome run(double r_def, const spice::SimOptions& options,
                 const dram::FloatingLine* line, double u,
                 const faults::Sos& sos, bool idle_before_observe = false,
                 bool warm_start = false);

  /// Swap the underlying column's engine options in place, exactly like a
  /// per-run `options` argument would. The override is part of the
  /// session's configuration: clone() carries it into the replica (the
  /// clone copies the column's parameter block, engine options included).
  void set_sim_options(const spice::SimOptions& options) {
    column_.set_sim_options(options);
  }

  /// One lane of run_batch: the experiment's outcome, or the solver error
  /// that kept the lockstep pass from completing it. An unsolved lane says
  /// nothing about the grid point — callers re-run it through the scalar
  /// robust path.
  struct LaneOutcome {
    SosOutcome outcome;
    bool solved = false;
    std::string error;
  };

  /// A whole grid row in one call: every lane shares (r_def, options, sos)
  /// and varies only the floating-line voltage us[lane] — the batched
  /// backend's unit of work. All lanes are seeded from the same post-
  /// initialization snapshot that a cold run() would use, then advanced in
  /// lockstep by the batched solver (pf/spice/solver_backend.hpp). Solved
  /// lanes are bit-identical to a cold scalar run() at the same U.
  ///
  /// Requires options the batched engine accepts (max_wall_seconds == 0)
  /// and no armed test-only fault injection; callers gate on both and fall
  /// back to scalar execution otherwise.
  std::vector<LaneOutcome> run_batch(double r_def,
                                     const spice::SimOptions& options,
                                     const dram::FloatingLine* line,
                                     const std::vector<double>& us,
                                     const faults::Sos& sos,
                                     bool idle_before_observe = false);

 private:
  explicit SosSession(dram::DramColumn column) : column_(std::move(column)) {}

  /// Brings column_ to the post-initialization state for (r_def, options,
  /// sos initial states) — via the snapshot cache when valid, else by a
  /// reset() + replayed initializing writes (and re-caches).
  void ensure_post_init_state(double r_def, const spice::SimOptions& options,
                              const faults::Sos& sos);

  dram::DramColumn column_;

  // Post-initialization snapshot cache (valid for cold runs only; keyed on
  // the exact configuration that determines the pre-injection trajectory).
  dram::DramColumn::State init_state_;
  spice::SimOptions init_options_;
  double init_r_ = 0.0;
  int init_victim_ = -2;     // -2: cache empty (Sos uses -1 for "no init")
  int init_aggressor_ = -2;
  bool init_valid_ = false;
};

}  // namespace pf::analysis
