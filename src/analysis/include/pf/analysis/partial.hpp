// The paper's partial-fault identification rule (Section 3):
//
//   "Assume that a given memory defect results in a floating voltage V_f on
//    some signal line, and results in observing the fault FP1. If FP1 is
//    only observed for a limited range of V_f values, then completing
//    operations should be added to FP1 to ensure it is sensitized."
//
// Operationally: an FFM observed in a region map is *partial* when no
// R_def row's observation band covers the full floating-voltage domain,
// and *full* (already guaranteed sensitizable) when some row is covered.
#pragma once

#include <vector>

#include "pf/analysis/region.hpp"

namespace pf::analysis {

struct PartialFaultFinding {
  faults::Ffm ffm = faults::Ffm::kUnknown;
  bool partial = false;     ///< bounded V_f band -> needs completing ops
  double min_r_def = 0.0;   ///< smallest R_def where the FFM is observed
  pf::Interval band_hull;   ///< hull of the widest observation band
  double best_coverage = 0.0;  ///< widest row band length / domain length
};

/// Classify every FFM observed in the map.
std::vector<PartialFaultFinding> identify_partial_faults(const RegionMap& map);

/// True when the map demonstrates a *completed* fault: some R_def row's
/// band covers the entire floating-voltage domain (the paper's Figures 3(b)
/// and 4(b)).
bool is_completed(const RegionMap& map, faults::Ffm ffm);

}  // namespace pf::analysis
