// Search for *completing operations* (Sections 1, 3 and 4 of the paper):
// given a partial fault primitive, find a prefix of operations — writes to
// the victim or to another cell on the victim's bit line — that makes the
// fault sensitized for EVERY floating initial voltage.
//
// There is no closed-form rule for completing operations (the paper states
// this explicitly), so the search enumerates candidate prefixes in order of
// increasing #O and evaluates each candidate electrically on probe rows
// where the base fault was only partially observed. A candidate is accepted
// when it reproduces the base fault's exact <F, R> behaviour at every probe
// voltage on every probe row. When the enumeration is exhausted the fault is
// reported as not completable ("Not possible" in Table 1) — e.g. faults
// guarded by a floating word line, which memory operations cannot touch.
#pragma once

#include "pf/analysis/region.hpp"

namespace pf::analysis {

struct CompletionSpec {
  dram::DramParams params;
  dram::Defect defect;               ///< resistance ignored (probe rows used)
  size_t floating_line_index = 0;
  faults::FaultPrimitive base;       ///< the partial FP to complete
  std::vector<double> probe_r;       ///< R_def rows the candidate must cover
  std::vector<double> probe_u;       ///< floating voltages it must cover
  int max_prefix_ops = 3;
  /// Execution of the probe experiments: exec.retry is the per-probe solver
  /// retry/backoff; exec.threads > 1 evaluates each candidate's probe grid
  /// in parallel (the verdict — accepted, rejected, completed FP — is
  /// thread-count independent; journal/record_failures are ignored here).
  /// `exec.cancel` aborts the search with pf::CancelledError.
  ExecutionPolicy exec;
};

struct CompletionResult {
  bool possible = false;
  faults::FaultPrimitive completed;  ///< base with the completing bracket
  int candidates_evaluated = 0;
  /// Electrical experiments performed. Exact for serial runs; with
  /// exec.threads > 1 probes already in flight when a candidate is
  /// rejected still count, so the tally may differ slightly between
  /// thread counts (the verdict never does).
  uint64_t sos_runs = 0;
  /// Probe experiments unsolved after retries. The search degrades
  /// gracefully: an unsolvable probe rejects the candidate (a completion
  /// must be *demonstrated*, never assumed), so a nonzero count means
  /// "Not possible" verdicts may be pessimistic.
  uint64_t solver_failures = 0;
};

/// Probe rows for a completion search: up to `max_rows` R_def values where
/// the base fault was observed in a proper sub-band of the U domain.
std::vector<double> choose_probe_rows(const RegionMap& base_map,
                                      faults::Ffm ffm, size_t max_rows = 3);

/// All R_def rows where `ffm` is observed in a proper sub-band, ascending.
std::vector<double> partial_rows(const RegionMap& base_map, faults::Ffm ffm);

CompletionResult search_completing_ops(const CompletionSpec& spec);

/// Completion with row-window fallback: try to complete on the topmost
/// partial rows; when no candidate covers them (e.g. at R_def so large the
/// cell is unreachable and no operation can establish the faulty state),
/// retry on lower windows — but never more than `max_ratio_below_top` below
/// the topmost partial row. The restriction keeps the search inside the
/// regime where the line genuinely floats: far below it the "open" line is
/// merely slow and operations partially control it, which is outside the
/// paper's analysis (its figures cap each defect's R_def axis accordingly).
/// The base FP's <F, R> is re-observed per window at the band centre.
CompletionResult search_completing_ops_with_fallback(
    const CompletionSpec& spec_template, const RegionMap& base_map,
    faults::Ffm ffm, size_t rows_per_window = 1, size_t max_windows = 4,
    double max_ratio_below_top = 3.17);

}  // namespace pf::analysis
