// Generator for the paper's Table 1: "Partial faults observed in DRAM
// simulation" — one row per (FFM, open defect, floating line) whose fault
// analysis found a partial fault, with the completed FP (or "Not possible")
// and the complementary FFM the complementary defect would produce.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pf/analysis/completion.hpp"
#include "pf/analysis/partial.hpp"

namespace pf::analysis {

struct Table1Row {
  faults::Ffm sim_ffm = faults::Ffm::kUnknown;  ///< simulated partial FFM
  faults::Ffm com_ffm = faults::Ffm::kUnknown;  ///< complementary-defect FFM
  dram::OpenSite site = dram::OpenSite::kNone;
  std::string initialized_voltage;  ///< the floating line's label
  bool completable = false;
  faults::FaultPrimitive completed; ///< valid when completable
  double min_r_def = 0.0;
  double band_coverage = 0.0;       ///< widest partial band / domain
};

struct Table1Options {
  /// Opens to analyze (the paper's simulated subset by default; Open 2 was
  /// not simulated there and Open 6 produced no Table 1 rows).
  std::vector<dram::OpenSite> sites = {
      dram::OpenSite::kCell,         dram::OpenSite::kPrecharge,
      dram::OpenSite::kBitLineOuter, dram::OpenSite::kBitLineMid,
      dram::OpenSite::kSenseAmp,     dram::OpenSite::kIoPath,
      dram::OpenSite::kWordLine};
  size_t r_points = 9;
  size_t u_points = 9;
  int max_prefix_ops = 3;
  size_t probe_u_points = 5;
  size_t fallback_windows = 4;

  /// Analyzed R_def ranges, mirroring the paper's per-defect figure axes
  /// and the capacitance each open isolates: cell-internal opens are
  /// analyzed up to 1 MOhm (paper Figure 4, 30 fF storage node);
  /// array/periphery opens up to 10 MOhm (90 fF bit line); the word-line
  /// open up to 1 GOhm — its gate node is a few fF, so the genuinely
  /// floating regime (no DC re-drive within a test) only starts near a
  /// gigaohm, matching the paper's "cannot be manipulated by operations".
  double r_min = 10e3;
  double r_max_cell = 1e6;
  double r_max_default = 10e6;
  double r_min_wordline = 100e3;
  double r_max_wordline = 1e9;

  /// Execution of the underlying sweeps and completion probes: exec.threads
  /// workers per sweep/probe grid (Table 1 rows are thread-count
  /// independent), exec.retry for every experiment, failed grid points
  /// degrading to Ffm::kSolveFailed cells (never classified as FFMs), and
  /// unsolvable completion probes rejecting candidates instead of aborting
  /// the catalogue. `exec.journal_path` is used as a path *prefix* here —
  /// one journal per (site, line, SOS) sweep. `exec.progress` reports each
  /// sweep's points individually. `exec.cancel` / `exec.deadline_seconds`
  /// bound the whole catalogue: the deadline is armed once on the token's
  /// shared state, so every sweep and completion probe shares one budget.
  ExecutionPolicy exec;
};

/// The eight base sensitizing operation sequences of the #O <= 1 FP space.
std::vector<faults::Sos> base_soses();

/// Run the full analysis and return the table rows (ordered by FFM, then
/// open number).
std::vector<Table1Row> generate_table1(const dram::DramParams& params,
                                       const Table1Options& options);

/// Render in the paper's layout.
std::string format_table1(const std::vector<Table1Row>& rows);

}  // namespace pf::analysis
