#include "pf/analysis/region.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "pf/util/ascii_plot.hpp"
#include "pf/util/log.hpp"

namespace pf::analysis {

using faults::Ffm;

std::vector<double> default_r_axis(size_t n) {
  return pf::logspace(10e3, 10e6, n);
}

std::vector<double> default_u_axis(const dram::DramParams& params, size_t n) {
  return pf::linspace(0.0, params.vdd, n);
}

RegionMap::RegionMap(SweepSpec spec, Grid2D<Ffm> grid)
    : spec_(std::move(spec)), grid_(std::move(grid)) {}

std::vector<Ffm> RegionMap::observed_ffms() const {
  std::set<Ffm> seen;
  for (Ffm f : grid_.data())
    if (f != Ffm::kUnknown) seen.insert(f);
  return {seen.begin(), seen.end()};
}

size_t RegionMap::count(Ffm ffm) const {
  return static_cast<size_t>(
      std::count(grid_.data().begin(), grid_.data().end(), ffm));
}

Interval RegionMap::u_domain() const {
  return Interval{spec_.u_axis.front(), spec_.u_axis.back()};
}

pf::IntervalSet RegionMap::u_band(Ffm ffm, size_t iy) const {
  // Merge adjacent observed samples into bands: half a grid step of slack on
  // each side so neighbouring samples fuse.
  pf::IntervalSet band;
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t ix = 0; ix < grid_.width(); ++ix) {
    if (grid_.at(ix, iy) == ffm)
      band.insert({u[ix] - step / 2, u[ix] + step / 2}, step / 4);
  }
  return band;
}

double RegionMap::min_r(Ffm ffm) const {
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix)
      if (grid_.at(ix, iy) == ffm) return spec_.r_axis[iy];
  return std::nan("");
}

bool RegionMap::has_fully_covered_row(Ffm ffm) const {
  const Interval domain = u_domain();
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    if (u_band(ffm, iy).covers(domain, step)) return true;
  return false;
}

namespace {

char glyph_for(Ffm ffm) {
  switch (ffm) {
    case Ffm::kUnknown: return '?';
    case Ffm::kSF0: return 's';
    case Ffm::kSF1: return 'S';
    case Ffm::kTFUp: return 't';
    case Ffm::kTFDown: return 'T';
    case Ffm::kWDF0: return 'w';
    case Ffm::kWDF1: return 'W';
    case Ffm::kRDF0: return 'r';
    case Ffm::kRDF1: return 'R';
    case Ffm::kDRDF0: return 'd';
    case Ffm::kDRDF1: return 'D';
    case Ffm::kIRF0: return 'i';
    case Ffm::kIRF1: return 'I';
  }
  return '?';
}

}  // namespace

std::string RegionMap::render(const std::string& title) const {
  AsciiPlotOptions opt;
  opt.title = title;
  opt.y_log = true;
  opt.y_label = "R_def";
  const std::string plot = pf::render_region_map(
      grid_.width(), grid_.height(), spec_.u_axis, spec_.r_axis,
      [&](size_t ix, size_t iy) {
        const Ffm f = grid_.at(ix, iy);
        return f == Ffm::kUnknown ? '.' : glyph_for(f);
      },
      opt);
  std::ostringstream os;
  os << plot;
  const auto seen = observed_ffms();
  if (!seen.empty()) {
    os << "  legend:";
    for (Ffm f : seen) os << "  " << glyph_for(f) << " = " << faults::ffm_name(f);
    os << "  . = no fault\n";
  } else {
    os << "  (no fault observed anywhere)\n";
  }
  return os.str();
}

std::string RegionMap::to_csv() const {
  std::ostringstream os;
  os << "r_def,u,ffm\n";
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix) {
      const Ffm f = grid_.at(ix, iy);
      os << spec_.r_axis[iy] << ',' << spec_.u_axis[ix] << ','
         << (f == Ffm::kUnknown ? "-" : faults::ffm_name(f)) << '\n';
    }
  return os.str();
}

RegionMap sweep_region(const SweepSpec& spec) {
  PF_CHECK(!spec.r_axis.empty() && !spec.u_axis.empty());
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  PF_CHECK_MSG(spec.floating_line_index < lines.size(),
               "defect " << dram::defect_name(spec.defect)
                         << " has no floating line "
                         << spec.floating_line_index);
  const dram::FloatingLine& line = lines[spec.floating_line_index];

  Grid2D<Ffm> grid(spec.u_axis, spec.r_axis, Ffm::kUnknown);
  for (size_t iy = 0; iy < spec.r_axis.size(); ++iy) {
    dram::Defect defect = spec.defect;
    defect.resistance = spec.r_axis[iy];
    for (size_t ix = 0; ix < spec.u_axis.size(); ++ix) {
      const SosOutcome out =
          run_sos(spec.params, defect, &line, spec.u_axis[ix], spec.sos);
      if (out.faulty) grid.at(ix, iy) = out.ffm;
    }
    PF_LOG_DEBUG("sweep row R_def=" << spec.r_axis[iy] << " done");
  }
  return RegionMap(spec, std::move(grid));
}

}  // namespace pf::analysis
