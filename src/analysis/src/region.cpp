#include "pf/analysis/region.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "pf/analysis/checkpoint.hpp"
#include "pf/analysis/session_cache.hpp"
#include "pf/spice/fault_injection.hpp"
#include "pf/util/ascii_plot.hpp"
#include "pf/util/log.hpp"
#include "pf/util/strings.hpp"

namespace pf::analysis {

using faults::Ffm;

std::vector<double> default_r_axis(size_t n) {
  return pf::logspace(10e3, 10e6, n);
}

std::vector<double> default_u_axis(const dram::DramParams& params, size_t n) {
  return pf::linspace(0.0, params.vdd, n);
}

RegionMap::RegionMap(SweepSpec spec, Grid2D<Ffm> grid)
    : RegionMap(std::move(spec), std::move(grid), SweepStats{}) {}

RegionMap::RegionMap(SweepSpec spec, Grid2D<Ffm> grid, SweepStats stats)
    : spec_(std::move(spec)), grid_(std::move(grid)),
      stats_(std::move(stats)) {}

std::vector<Ffm> RegionMap::observed_ffms() const {
  std::set<Ffm> seen;
  for (Ffm f : grid_.data())
    if (f != Ffm::kUnknown && f != Ffm::kSolveFailed) seen.insert(f);
  return {seen.begin(), seen.end()};
}

size_t RegionMap::failed_points() const { return count(Ffm::kSolveFailed); }

double RegionMap::observed_fraction() const {
  const size_t total = grid_.width() * grid_.height();
  return total == 0 ? 1.0
                    : 1.0 - static_cast<double>(failed_points()) /
                                static_cast<double>(total);
}

size_t RegionMap::count(Ffm ffm) const {
  return static_cast<size_t>(
      std::count(grid_.data().begin(), grid_.data().end(), ffm));
}

Interval RegionMap::u_domain() const {
  return Interval{spec_.u_axis.front(), spec_.u_axis.back()};
}

pf::IntervalSet RegionMap::u_band(Ffm ffm, size_t iy) const {
  // Merge adjacent observed samples into bands: half a grid step of slack on
  // each side so neighbouring samples fuse.
  pf::IntervalSet band;
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t ix = 0; ix < grid_.width(); ++ix) {
    if (grid_.at(ix, iy) == ffm)
      band.insert({u[ix] - step / 2, u[ix] + step / 2}, step / 4);
  }
  return band;
}

double RegionMap::min_r(Ffm ffm) const {
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix)
      if (grid_.at(ix, iy) == ffm) return spec_.r_axis[iy];
  return std::nan("");
}

bool RegionMap::has_fully_covered_row(Ffm ffm) const {
  const Interval domain = u_domain();
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    if (u_band(ffm, iy).covers(domain, step)) return true;
  return false;
}

namespace {

char glyph_for(Ffm ffm) {
  switch (ffm) {
    case Ffm::kUnknown: return '?';
    case Ffm::kSF0: return 's';
    case Ffm::kSF1: return 'S';
    case Ffm::kTFUp: return 't';
    case Ffm::kTFDown: return 'T';
    case Ffm::kWDF0: return 'w';
    case Ffm::kWDF1: return 'W';
    case Ffm::kRDF0: return 'r';
    case Ffm::kRDF1: return 'R';
    case Ffm::kDRDF0: return 'd';
    case Ffm::kDRDF1: return 'D';
    case Ffm::kIRF0: return 'i';
    case Ffm::kIRF1: return 'I';
    case Ffm::kSolveFailed: return 'x';
  }
  return '?';
}

}  // namespace

std::string RegionMap::render(const std::string& title) const {
  AsciiPlotOptions opt;
  opt.title = title;
  opt.y_log = true;
  opt.y_label = "R_def";
  const std::string plot = pf::render_region_map(
      grid_.width(), grid_.height(), spec_.u_axis, spec_.r_axis,
      [&](size_t ix, size_t iy) {
        const Ffm f = grid_.at(ix, iy);
        return f == Ffm::kUnknown ? '.' : glyph_for(f);
      },
      opt);
  std::ostringstream os;
  os << plot;
  const auto seen = observed_ffms();
  const size_t failed = failed_points();
  if (!seen.empty()) {
    os << "  legend:";
    for (Ffm f : seen) os << "  " << glyph_for(f) << " = " << faults::ffm_name(f);
    os << "  . = no fault";
    if (failed > 0) os << "  x = solve failed";
    os << "\n";
  } else if (failed > 0) {
    os << "  legend:  x = solve failed  . = no fault\n";
  } else {
    os << "  (no fault observed anywhere)\n";
  }
  if (failed > 0)
    os << "  (" << failed << " of " << grid_.width() * grid_.height()
       << " grid points unsolved)\n";
  return os.str();
}

std::string RegionMap::to_csv() const {
  std::ostringstream os;
  os << "r_def,u,ffm\n";
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix) {
      const Ffm f = grid_.at(ix, iy);
      os << spec_.r_axis[iy] << ',' << spec_.u_axis[ix] << ','
         << (f == Ffm::kUnknown ? "-" : faults::ffm_name(f)) << '\n';
    }
  return os.str();
}

namespace {

/// Worker-side record of one grid point, merged into the RegionMap and
/// SweepStats in grid-index order after all workers join.
struct PointOutcome {
  Ffm ffm = Ffm::kUnknown;
  int attempts = 0;
  bool solved = false;
  bool inferred = false;  ///< adaptive fill — no experiment was run
  std::string error;
};

/// Adaptive boundary tracing over one grid row. Works on classes only; the
/// actual experiments are delegated to the caller's evaluator.
///
///   1. seed: both row ends plus every stride-4 multiple (resumed points
///      join for free),
///   2. bisect: between adjacent KNOWN points whose classes disagree,
///      evaluate the midpoint; repeat in waves until every disagreeing gap
///      is down to width 1 (a wave's midpoints batch nicely),
///   3. infer: interiors of agreeing gaps take the endpoints' class
///      without solving.
///
/// Exact whenever every same-class band of the true row is at least as
/// wide as the seed stride; a narrower band strictly inside an agreeing
/// gap is missed by construction (DESIGN.md §11).
class AdaptiveRowTracer {
 public:
  AdaptiveRowTracer(size_t width) : known_(width, 0), cls_(width, Ffm::kUnknown) {}

  void set_known(size_t ix, Ffm cls) {
    known_[ix] = 1;
    cls_[ix] = cls;
  }
  bool is_known(size_t ix) const { return known_[ix] != 0; }
  Ffm cls(size_t ix) const { return cls_[ix]; }

  /// Unknown seed indices (ascending).
  std::vector<size_t> seeds() const {
    std::vector<size_t> out;
    const size_t w = known_.size();
    for (size_t ix = 0; ix < w; ix += 4)
      if (!known_[ix]) out.push_back(ix);
    if (w > 1 && (w - 1) % 4 != 0 && !known_[w - 1]) out.push_back(w - 1);
    return out;
  }

  /// Midpoints of every gap between adjacent known points of disagreeing
  /// class (ascending); empty when bisection has converged.
  std::vector<size_t> bisection_wave() const {
    std::vector<size_t> mids;
    size_t prev = known_.size();  // sentinel: none yet
    for (size_t ix = 0; ix < known_.size(); ++ix) {
      if (!known_[ix]) continue;
      if (prev < ix && ix > prev + 1 && cls_[prev] != cls_[ix])
        mids.push_back(prev + (ix - prev) / 2);
      prev = ix;
    }
    return mids;
  }

  /// Interior indices of agreeing gaps with the class they inherit. Only
  /// valid after bisection converged (every remaining gap agrees).
  std::vector<std::pair<size_t, Ffm>> inferred_fill() const {
    std::vector<std::pair<size_t, Ffm>> out;
    size_t prev = known_.size();
    for (size_t ix = 0; ix < known_.size(); ++ix) {
      if (!known_[ix]) continue;
      if (prev < ix && ix > prev + 1 && cls_[prev] == cls_[ix])
        for (size_t j = prev + 1; j < ix; ++j) out.emplace_back(j, cls_[prev]);
      prev = ix;
    }
    return out;
  }

 private:
  std::vector<char> known_;
  std::vector<Ffm> cls_;
};

}  // namespace

RegionMap sweep_region(const SweepSpec& spec, const ExecutionPolicy& policy) {
  const EnginePlan plan = resolved_plan(policy);
  PF_CHECK(!spec.r_axis.empty() && !spec.u_axis.empty());
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  PF_CHECK_MSG(spec.floating_line_index < lines.size(),
               "defect " << dram::defect_name(spec.defect)
                         << " has no floating line "
                         << spec.floating_line_index);
  const dram::FloatingLine& line = lines[spec.floating_line_index];
  const std::string defect_label = dram::defect_name(spec.defect);
  const std::string sos_label = spec.sos.to_string();

  Grid2D<Ffm> grid(spec.u_axis, spec.r_axis, Ffm::kUnknown);
  SweepStats stats;
  Grid2D<char> done(spec.u_axis, spec.r_axis, 0);
  std::unique_ptr<SweepJournal> journal;
  bool journal_was_clean = false;
  if (!policy.journal_path.empty()) {
    if (policy.resume) {
      const SweepJournal::LoadResult loaded =
          SweepJournal::load(policy.journal_path, spec);
      for (const SweepJournal::Entry& e : loaded.entries) {
        grid.at(e.ix, e.iy) = e.ffm;
        done.at(e.ix, e.iy) = 1;
        ++stats.resumed;
      }
      stats.journal_dropped = loaded.dropped;
      if (loaded.quarantined) ++stats.journal_quarantined;
      journal_was_clean = loaded.clean_end;
      if (loaded.dropped > 0)
        PF_LOG_WARN("journal " << policy.journal_path << ": dropped "
                               << loaded.dropped
                               << " corrupt/truncated row(s); those points "
                               << "re-run");
      if (stats.resumed > 0)
        PF_LOG_INFO("resumed " << stats.resumed << " solved points from "
                               << policy.journal_path
                               << (loaded.clean_end
                                       ? ""
                                       : " (interrupted sweep, no END "
                                         "trailer)"));
    }
    journal = std::make_unique<SweepJournal>(policy.journal_path, spec);
  }

  // Workers see the sweep's cancellation token through the solver options,
  // so the watchdog can abandon a transient mid-point.
  SweepSpec run_spec = spec;
  run_spec.params.sim.cancel = policy.cancel;

  // Pending points in row-major grid order; index k of `results` belongs to
  // flat grid index pending[k], whatever worker solves it.
  const size_t width = spec.u_axis.size();
  std::vector<size_t> pending;
  pending.reserve(width * spec.r_axis.size());
  for (size_t iy = 0; iy < spec.r_axis.size(); ++iy)
    for (size_t ix = 0; ix < width; ++ix)
      if (!done.at(ix, iy)) pending.push_back(iy * width + ix);

  const ParallelGridRunner runner(policy);
  // Compile-once pipeline (EnginePlan::circuit_mode): one circuit template
  // is built per sweep and shared read-only; each worker lazily clones a
  // private session from it and restamps + resets that column per point
  // instead of rebuilding the netlist and re-running the symbolic analysis.
  // Under kRebuild every point constructs its own column inside run_sos
  // (the reference path). Either way the only mutable state shared between
  // workers is the journal (self-serializing).
  std::unique_ptr<SosSession> prototype;
  if (plan.circuit_mode == CircuitMode::kReuse && !pending.empty()) {
    // Cross-sweep reuse: a campaign runner hands compiled sessions from one
    // job to the next through a SessionCache keyed by row-family. A cache
    // hit skips the compile entirely and keeps the post-initialization
    // snapshot cache warm; a miss compiles exactly like before.
    if (policy.session_cache && !policy.session_family.empty())
      prototype = policy.session_cache->take(policy.session_family);
    if (prototype == nullptr) {
      dram::Defect proto_defect = spec.defect;
      proto_defect.resistance = spec.r_axis[pending.front() / width];
      prototype = std::make_unique<SosSession>(run_spec.params, proto_defect);
    }
  }
  // With a session cache armed, worker 0 runs experiments directly on the
  // prototype (clone() does not carry the snapshot cache, so only direct
  // reuse preserves it across jobs).
  const bool adopt_prototype = prototype != nullptr &&
                               policy.session_cache != nullptr &&
                               !policy.session_family.empty();
  std::vector<std::unique_ptr<SosSession>> sessions(
      static_cast<size_t>(runner.workers()));
  const auto session_for = [&](int worker) -> SosSession& {
    if (worker == 0 && adopt_prototype) return *prototype;
    std::unique_ptr<SosSession>& session =
        sessions[static_cast<size_t>(worker)];
    if (session == nullptr)
      session = std::make_unique<SosSession>(prototype->clone());
    return *session;
  };
  if (adopt_prototype && runner.workers() > 1) {
    // Worker 0 mutates the prototype from its first point on, so the other
    // workers' clones must be taken eagerly, before dispatch starts.
    for (int w = 1; w < runner.workers(); ++w)
      sessions[static_cast<size_t>(w)] =
          std::make_unique<SosSession>(prototype->clone());
  }
  const auto ctx_for = [&](size_t ix, size_t iy) {
    ExperimentContext ctx;
    ctx.key = grid_point_key(ix, iy);
    ctx.defect = defect_label;
    ctx.line = line.label;
    ctx.r_def = spec.r_axis[iy];
    ctx.u = spec.u_axis[ix];
    ctx.sos = sos_label;
    return ctx;
  };
  // The full scalar retry loop for one point (reference semantics; also the
  // per-lane fallback of the batched backend).
  const auto scalar_point = [&](size_t ix, size_t iy, int worker,
                                bool warm_start) {
    dram::Defect defect = spec.defect;
    defect.resistance = spec.r_axis[iy];
    if (prototype != nullptr)
      return run_sos_robust(session_for(worker), run_spec.params.sim, defect,
                            &line, spec.u_axis[ix], spec.sos, policy.retry,
                            ctx_for(ix, iy), /*idle_before_observe=*/false,
                            warm_start);
    return run_sos_robust(run_spec.params, defect, &line, spec.u_axis[ix],
                          spec.sos, policy.retry, ctx_for(ix, iy));
  };

  const bool row_based =
      plan.backend == spice::SolverBackend::kBatched || plan.adaptive;

  if (!row_based) {
    // Point-based dispatch (scalar dense): one runner index per pending
    // grid point.
    std::vector<PointOutcome> results(pending.size());
    runner.run(pending.size(), [&](size_t k, int worker) {
      const size_t iy = pending[k] / width;
      const size_t ix = pending[k] % width;
      const RobustOutcome ro = scalar_point(ix, iy, worker, plan.warm_start);
      PointOutcome& out = results[k];
      out.attempts = ro.attempts;
      out.solved = ro.solved;
      if (ro.solved) {
        if (ro.outcome.faulty) out.ffm = ro.outcome.ffm;
      } else {
        if (!policy.record_failures) throw ConvergenceError(ro.error);
        out.ffm = Ffm::kSolveFailed;
        out.error = ro.error;
      }
      if (journal) {
        SweepJournal::Entry e;
        e.ix = ix;
        e.iy = iy;
        e.ffm = out.ffm;
        e.attempts = ro.attempts;
        journal->append(e, spec.r_axis[iy], spec.u_axis[ix]);
      }
    });

    // Deterministic index-ordered merge: the grid cells and the stats
    // (including failure_log order) are independent of worker scheduling.
    for (size_t k = 0; k < pending.size(); ++k) {
      const PointOutcome& out = results[k];
      grid.at(pending[k] % width, pending[k] / width) = out.ffm;
      ++stats.attempted;
      stats.retries +=
          static_cast<size_t>(out.attempts > 0 ? out.attempts - 1 : 0);
      if (out.solved) {
        ++stats.solved;
      } else {
        ++stats.failed;
        stats.failure_log.push_back(out.error);
      }
    }
  } else {
    // Row-based dispatch (batched backend and/or adaptive tracing): one
    // runner index per grid row with pending points. Workers own whole
    // rows, so the per-point outcome slots below are written by exactly
    // one worker each.
    std::vector<PointOutcome> outcomes(width * spec.r_axis.size());
    std::vector<char> ran(width * spec.r_axis.size(), 0);
    std::vector<size_t> row_ids;
    for (size_t iy = 0; iy < spec.r_axis.size(); ++iy)
      for (size_t ix = 0; ix < width; ++ix)
        if (!done.at(ix, iy)) {
          row_ids.push_back(iy);
          break;
        }
    // The batched engine runs attempt-1 numerics; it refuses wall-clock
    // watchdogs (nondeterministic), so such policies run the row scalar.
    const spice::SimOptions attempt1 =
        tightened_sim_options(run_spec.params.sim, policy.retry, 1);
    const bool batch_rows = plan.backend == spice::SolverBackend::kBatched &&
                            attempt1.max_wall_seconds <= 0.0;

    runner.run(row_ids.size(), [&](size_t k, int worker) {
      const size_t iy = row_ids[k];
      const auto record = [&](size_t ix, const PointOutcome& out) {
        ran[iy * width + ix] = 1;
        if (journal) {
          SweepJournal::Entry e;
          e.ix = ix;
          e.iy = iy;
          e.ffm = out.ffm;
          e.attempts = out.attempts;
          journal->append(e, spec.r_axis[iy], spec.u_axis[ix]);
        }
      };
      // Evaluate a set of pending columns of this row (ascending ix): one
      // lockstep pass over all of them when the batched backend may run
      // (injection hooks disarmed), then the scalar retry loop for every
      // lane the lockstep pass could not solve — or for everything under
      // the scalar backend. Journal order inside a row is ascending ix.
      const auto evaluate = [&](const std::vector<size_t>& ixs) {
        std::vector<char> lane_done(ixs.size(), 0);
        // Lockstep only pays off with enough lanes to amortize the batch
        // setup (measured crossover ~6 on the Figure 3 circuit); short
        // waves — adaptive seeding and bisection probe 1-4 points — run
        // faster through the scalar session. Identical results either way
        // (that is the backend contract), so this is purely a wave-size
        // heuristic.
        if (batch_rows && ixs.size() >= 6 && !spice::testing::armed()) {
          std::vector<double> us;
          us.reserve(ixs.size());
          for (size_t ix : ixs) us.push_back(spec.u_axis[ix]);
          const auto lanes = session_for(worker).run_batch(
              spec.r_axis[iy], attempt1, &line, us, spec.sos);
          for (size_t i = 0; i < ixs.size(); ++i) {
            if (!lanes[i].solved) continue;  // scalar fallback below
            PointOutcome& out = outcomes[iy * width + ixs[i]];
            out.attempts = 1;
            out.solved = true;
            if (lanes[i].outcome.faulty) out.ffm = lanes[i].outcome.ffm;
            lane_done[i] = 1;
          }
        }
        for (size_t i = 0; i < ixs.size(); ++i) {
          const size_t ix = ixs[i];
          PointOutcome& out = outcomes[iy * width + ix];
          if (!lane_done[i]) {
            const RobustOutcome ro =
                scalar_point(ix, iy, worker, /*warm_start=*/false);
            out.attempts = ro.attempts;
            out.solved = ro.solved;
            if (ro.solved) {
              if (ro.outcome.faulty) out.ffm = ro.outcome.ffm;
            } else {
              if (!policy.record_failures) throw ConvergenceError(ro.error);
              out.ffm = Ffm::kSolveFailed;
              out.error = ro.error;
            }
          }
          record(ix, out);
        }
      };

      if (!plan.adaptive) {
        std::vector<size_t> ixs;
        for (size_t ix = 0; ix < width; ++ix)
          if (!done.at(ix, iy)) ixs.push_back(ix);
        evaluate(ixs);
        return;
      }

      // Adaptive boundary tracing: seed, bisect disagreeing gaps in
      // batchable waves, infer the interiors of agreeing gaps.
      AdaptiveRowTracer tracer(width);
      for (size_t ix = 0; ix < width; ++ix)
        if (done.at(ix, iy)) tracer.set_known(ix, grid.at(ix, iy));
      for (std::vector<size_t> wave = tracer.seeds();;) {
        if (!wave.empty()) {
          evaluate(wave);
          for (size_t ix : wave)
            tracer.set_known(ix, outcomes[iy * width + ix].ffm);
        }
        wave = tracer.bisection_wave();
        if (wave.empty()) break;
      }
      for (const auto& [ix, cls] : tracer.inferred_fill()) {
        PointOutcome& out = outcomes[iy * width + ix];
        out.ffm = cls;
        out.solved = true;
        out.inferred = true;
        out.attempts = 0;
        record(ix, out);
      }
    });

    // Deterministic merge in row-major grid order.
    for (size_t iy = 0; iy < spec.r_axis.size(); ++iy)
      for (size_t ix = 0; ix < width; ++ix) {
        if (!ran[iy * width + ix]) continue;
        const PointOutcome& out = outcomes[iy * width + ix];
        grid.at(ix, iy) = out.ffm;
        if (out.inferred) {
          ++stats.inferred;
          continue;
        }
        ++stats.attempted;
        stats.retries +=
            static_cast<size_t>(out.attempts > 0 ? out.attempts - 1 : 0);
        if (out.solved) {
          ++stats.solved;
        } else {
          ++stats.failed;
          stats.failure_log.push_back(out.error);
        }
      }
  }
  if (stats.failed > 0)
    PF_LOG_INFO("sweep degraded: " << stats.failed << " of "
                                   << grid.width() * grid.height()
                                   << " points unsolved after retries");
  // The sweep covered every grid point: mark the journal cleanly complete.
  // Skip only when nothing was appended to an already-clean journal (a
  // fully resumed rerun), so reruns do not stack duplicate trailers.
  if (journal && !(journal_was_clean && journal->rows_appended() == 0))
    journal->finalize();
  // Hand the compiled session back for the next sweep in this family. Only
  // reached on success: a cancelled or failed sweep drops the session (the
  // next borrower misses and recompiles — correct, just colder).
  if (adopt_prototype)
    policy.session_cache->put(policy.session_family, std::move(prototype));
  return RegionMap(spec, std::move(grid), std::move(stats));
}

RegionMap region_map_from_csv(const SweepSpec& spec, const std::string& csv) {
  const size_t width = spec.u_axis.size();
  const size_t height = spec.r_axis.size();
  PF_CHECK(width > 0 && height > 0);
  Grid2D<Ffm> grid(spec.u_axis, spec.r_axis, Ffm::kUnknown);
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) || pf::trim(line) != "r_def,u,ffm")
    throw pf::ParseError("region CSV: missing r_def,u,ffm header");
  size_t k = 0;
  while (std::getline(in, line)) {
    if (pf::trim(line).empty()) continue;
    const std::vector<std::string> fields = pf::split(line, ',');
    if (fields.size() != 3)
      throw pf::ParseError("region CSV: malformed row: " + line);
    if (k >= width * height)
      throw pf::ParseError("region CSV: more rows than grid points");
    const std::string name = pf::trim(fields[2]);
    Ffm f = Ffm::kUnknown;
    if (name != "-") {
      f = faults::ffm_by_name(name);
      if (f == Ffm::kUnknown)
        throw pf::ParseError("region CSV: unknown FFM name: " + name);
    }
    grid.at(k % width, k / width) = f;
    ++k;
  }
  if (k != width * height)
    throw pf::ParseError("region CSV: expected " +
                         std::to_string(width * height) + " rows, got " +
                         std::to_string(k));
  return RegionMap(spec, std::move(grid));
}

}  // namespace pf::analysis
