#include "pf/analysis/region.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "pf/analysis/checkpoint.hpp"
#include "pf/util/ascii_plot.hpp"
#include "pf/util/log.hpp"

namespace pf::analysis {

using faults::Ffm;

std::vector<double> default_r_axis(size_t n) {
  return pf::logspace(10e3, 10e6, n);
}

std::vector<double> default_u_axis(const dram::DramParams& params, size_t n) {
  return pf::linspace(0.0, params.vdd, n);
}

RegionMap::RegionMap(SweepSpec spec, Grid2D<Ffm> grid)
    : RegionMap(std::move(spec), std::move(grid), SweepStats{}) {}

RegionMap::RegionMap(SweepSpec spec, Grid2D<Ffm> grid, SweepStats stats)
    : spec_(std::move(spec)), grid_(std::move(grid)),
      stats_(std::move(stats)) {}

std::vector<Ffm> RegionMap::observed_ffms() const {
  std::set<Ffm> seen;
  for (Ffm f : grid_.data())
    if (f != Ffm::kUnknown && f != Ffm::kSolveFailed) seen.insert(f);
  return {seen.begin(), seen.end()};
}

size_t RegionMap::failed_points() const { return count(Ffm::kSolveFailed); }

double RegionMap::observed_fraction() const {
  const size_t total = grid_.width() * grid_.height();
  return total == 0 ? 1.0
                    : 1.0 - static_cast<double>(failed_points()) /
                                static_cast<double>(total);
}

size_t RegionMap::count(Ffm ffm) const {
  return static_cast<size_t>(
      std::count(grid_.data().begin(), grid_.data().end(), ffm));
}

Interval RegionMap::u_domain() const {
  return Interval{spec_.u_axis.front(), spec_.u_axis.back()};
}

pf::IntervalSet RegionMap::u_band(Ffm ffm, size_t iy) const {
  // Merge adjacent observed samples into bands: half a grid step of slack on
  // each side so neighbouring samples fuse.
  pf::IntervalSet band;
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t ix = 0; ix < grid_.width(); ++ix) {
    if (grid_.at(ix, iy) == ffm)
      band.insert({u[ix] - step / 2, u[ix] + step / 2}, step / 4);
  }
  return band;
}

double RegionMap::min_r(Ffm ffm) const {
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix)
      if (grid_.at(ix, iy) == ffm) return spec_.r_axis[iy];
  return std::nan("");
}

bool RegionMap::has_fully_covered_row(Ffm ffm) const {
  const Interval domain = u_domain();
  const auto& u = spec_.u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    if (u_band(ffm, iy).covers(domain, step)) return true;
  return false;
}

namespace {

char glyph_for(Ffm ffm) {
  switch (ffm) {
    case Ffm::kUnknown: return '?';
    case Ffm::kSF0: return 's';
    case Ffm::kSF1: return 'S';
    case Ffm::kTFUp: return 't';
    case Ffm::kTFDown: return 'T';
    case Ffm::kWDF0: return 'w';
    case Ffm::kWDF1: return 'W';
    case Ffm::kRDF0: return 'r';
    case Ffm::kRDF1: return 'R';
    case Ffm::kDRDF0: return 'd';
    case Ffm::kDRDF1: return 'D';
    case Ffm::kIRF0: return 'i';
    case Ffm::kIRF1: return 'I';
    case Ffm::kSolveFailed: return 'x';
  }
  return '?';
}

}  // namespace

std::string RegionMap::render(const std::string& title) const {
  AsciiPlotOptions opt;
  opt.title = title;
  opt.y_log = true;
  opt.y_label = "R_def";
  const std::string plot = pf::render_region_map(
      grid_.width(), grid_.height(), spec_.u_axis, spec_.r_axis,
      [&](size_t ix, size_t iy) {
        const Ffm f = grid_.at(ix, iy);
        return f == Ffm::kUnknown ? '.' : glyph_for(f);
      },
      opt);
  std::ostringstream os;
  os << plot;
  const auto seen = observed_ffms();
  const size_t failed = failed_points();
  if (!seen.empty()) {
    os << "  legend:";
    for (Ffm f : seen) os << "  " << glyph_for(f) << " = " << faults::ffm_name(f);
    os << "  . = no fault";
    if (failed > 0) os << "  x = solve failed";
    os << "\n";
  } else if (failed > 0) {
    os << "  legend:  x = solve failed  . = no fault\n";
  } else {
    os << "  (no fault observed anywhere)\n";
  }
  if (failed > 0)
    os << "  (" << failed << " of " << grid_.width() * grid_.height()
       << " grid points unsolved)\n";
  return os.str();
}

std::string RegionMap::to_csv() const {
  std::ostringstream os;
  os << "r_def,u,ffm\n";
  for (size_t iy = 0; iy < grid_.height(); ++iy)
    for (size_t ix = 0; ix < grid_.width(); ++ix) {
      const Ffm f = grid_.at(ix, iy);
      os << spec_.r_axis[iy] << ',' << spec_.u_axis[ix] << ','
         << (f == Ffm::kUnknown ? "-" : faults::ffm_name(f)) << '\n';
    }
  return os.str();
}

RegionMap sweep_region(const SweepSpec& spec, const SweepOptions& options) {
  PF_CHECK(!spec.r_axis.empty() && !spec.u_axis.empty());
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  PF_CHECK_MSG(spec.floating_line_index < lines.size(),
               "defect " << dram::defect_name(spec.defect)
                         << " has no floating line "
                         << spec.floating_line_index);
  const dram::FloatingLine& line = lines[spec.floating_line_index];
  const std::string defect_label = dram::defect_name(spec.defect);
  const std::string sos_label = spec.sos.to_string();

  Grid2D<Ffm> grid(spec.u_axis, spec.r_axis, Ffm::kUnknown);
  SweepStats stats;
  Grid2D<char> done(spec.u_axis, spec.r_axis, 0);
  std::unique_ptr<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      for (const SweepJournal::Entry& e :
           SweepJournal::load(options.journal_path, spec)) {
        grid.at(e.ix, e.iy) = e.ffm;
        done.at(e.ix, e.iy) = 1;
        ++stats.resumed;
      }
      if (stats.resumed > 0)
        PF_LOG_INFO("resumed " << stats.resumed << " solved points from "
                               << options.journal_path);
    }
    journal = std::make_unique<SweepJournal>(options.journal_path, spec);
  }

  for (size_t iy = 0; iy < spec.r_axis.size(); ++iy) {
    dram::Defect defect = spec.defect;
    defect.resistance = spec.r_axis[iy];
    for (size_t ix = 0; ix < spec.u_axis.size(); ++ix) {
      if (done.at(ix, iy)) continue;
      ExperimentContext ctx;
      ctx.key = grid_point_key(ix, iy);
      ctx.defect = defect_label;
      ctx.line = line.label;
      ctx.r_def = spec.r_axis[iy];
      ctx.u = spec.u_axis[ix];
      ctx.sos = sos_label;
      const RobustOutcome ro =
          run_sos_robust(spec.params, defect, &line, spec.u_axis[ix],
                         spec.sos, options.retry, ctx);
      ++stats.attempted;
      stats.retries += static_cast<size_t>(ro.attempts > 0 ? ro.attempts - 1
                                                           : 0);
      if (ro.solved) {
        ++stats.solved;
        if (ro.outcome.faulty) grid.at(ix, iy) = ro.outcome.ffm;
      } else {
        if (!options.record_failures) throw ConvergenceError(ro.error);
        grid.at(ix, iy) = Ffm::kSolveFailed;
        ++stats.failed;
        stats.failure_log.push_back(ro.error);
      }
      if (journal) {
        SweepJournal::Entry e;
        e.ix = ix;
        e.iy = iy;
        e.ffm = grid.at(ix, iy);
        e.attempts = ro.attempts;
        journal->append(e, spec.r_axis[iy], spec.u_axis[ix]);
      }
    }
    PF_LOG_DEBUG("sweep row R_def=" << spec.r_axis[iy] << " done");
  }
  if (stats.failed > 0)
    PF_LOG_INFO("sweep degraded: " << stats.failed << " of "
                                   << grid.width() * grid.height()
                                   << " points unsolved after retries");
  return RegionMap(spec, std::move(grid), std::move(stats));
}

RegionMap sweep_region(const SweepSpec& spec) {
  return sweep_region(spec, SweepOptions{});
}

}  // namespace pf::analysis
