#include "pf/analysis/diagnosis.hpp"

#include <set>
#include <sstream>

#include "pf/util/log.hpp"
#include "pf/util/strings.hpp"

namespace pf::analysis {

std::string signature_key(const march::MarchResult& result) {
  if (result.fails.empty()) return "PASS";
  std::ostringstream os;
  for (const auto& f : result.fails)
    os << 'e' << f.element << '@' << f.addr << ':' << f.expected << '>'
       << f.got << ';';
  return os.str();
}

std::string simulate_signature(const march::MarchTest& test,
                               const dram::DramParams& params,
                               const dram::Defect& defect) {
  dram::DramColumn column(params, defect);
  return signature_key(
      march::run_march(test, column, column.num_cells()));
}

FaultDictionary FaultDictionary::build(
    const march::MarchTest& test, const dram::DramParams& params,
    const std::vector<dram::Defect>& candidates) {
  return build(std::vector<march::MarchTest>{test}, params, candidates);
}

FaultDictionary FaultDictionary::build(
    const std::vector<march::MarchTest>& tests, const dram::DramParams& params,
    const std::vector<dram::Defect>& candidates) {
  PF_CHECK_MSG(!tests.empty(), "dictionary needs at least one test");
  FaultDictionary dict;
  dict.tests_ = tests;
  for (const dram::Defect& defect : candidates) {
    std::string key;
    for (const auto& test : tests)
      key += simulate_signature(test, params, defect) + "|";
    PF_LOG_DEBUG("dictionary: " << dram::defect_name(defect) << " -> " << key);
    dict.entries_.emplace_back(std::move(key), defect);
  }
  return dict;
}

size_t FaultDictionary::distinct_signatures() const {
  std::set<std::string> keys;
  for (const auto& [key, defect] : entries_) keys.insert(key);
  return keys.size();
}

std::vector<dram::Defect> FaultDictionary::lookup(
    const std::string& key) const {
  std::vector<dram::Defect> out;
  // An all-PASS combined signature means "no defect visible".
  bool all_pass = true;
  for (const auto& part : pf::split_nonempty(key, '|'))
    all_pass &= part == "PASS";
  if (all_pass) return out;
  for (const auto& [k, defect] : entries_)
    if (k == key) out.push_back(defect);
  return out;
}

std::string FaultDictionary::signature_of(dram::DramColumn& dut) const {
  std::string key;
  for (const auto& test : tests_) {
    dut.power_up();  // defined state before each test, as in build()
    key += signature_key(march::run_march(test, dut, dut.num_cells())) + "|";
  }
  return key;
}

std::vector<dram::Defect> FaultDictionary::diagnose(
    dram::DramColumn& dut) const {
  return lookup(signature_of(dut));
}

}  // namespace pf::analysis
