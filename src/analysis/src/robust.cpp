#include "pf/analysis/robust.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "pf/spice/fault_injection.hpp"
#include "pf/util/error.hpp"
#include "pf/util/log.hpp"

namespace pf::analysis {

std::string ExperimentContext::describe() const {
  std::ostringstream os;
  os << "defect=" << (defect.empty() ? "?" : defect);
  if (!line.empty()) os << ", line=" << line;
  os << ", R_def=" << r_def << " Ohm, U=" << u << " V";
  if (!sos.empty()) os << ", SOS=" << sos;
  return os.str();
}

spice::SimOptions tightened_sim_options(const spice::SimOptions& base,
                                        const RetryPolicy& policy,
                                        int attempt) {
  spice::SimOptions o = base;
  o.max_total_nr_iters = policy.watchdog_nr_iters;
  o.max_wall_seconds = policy.watchdog_wall_seconds;
  for (int k = 1; k < attempt; ++k) {
    o.dt_initial *= policy.dt_initial_scale;
    o.dt_min *= policy.dt_min_scale;
    o.max_nr_iters += policy.extra_nr_iters;
    o.v_step_limit *= policy.v_step_limit_scale;
  }
  return o;
}

namespace {

/// The retry loop shared by the rebuild and session overloads; `attempt_fn`
/// runs one attempt under the (already tightened) options it is given.
template <typename AttemptFn>
RobustOutcome robust_attempt_loop(const spice::SimOptions& base,
                                  const RetryPolicy& policy,
                                  const ExperimentContext& ctx,
                                  AttemptFn&& attempt_fn) {
  RobustOutcome ro;
  const int budget = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    ro.attempts = attempt;
    const spice::SimOptions tightened =
        tightened_sim_options(base, policy, attempt);
    if (spice::testing::armed() && !ctx.key.empty())
      spice::testing::set_context(ctx.key);
    try {
      ro.outcome = attempt_fn(tightened);
      ro.solved = true;
      spice::testing::clear_context();
      return ro;
    } catch (const pf::CancelledError&) {
      // Cancellation is not a solver failure: never retried, never recorded
      // as kSolveFailed — the sweep abandons the point and resumes it later.
      spice::testing::clear_context();
      throw;
    } catch (const pf::Error& e) {
      spice::testing::clear_context();
      std::ostringstream os;
      os << e.what() << " [" << ctx.describe() << ", attempt " << attempt
         << "/" << budget << "]";
      ro.error = os.str();
      if (attempt < budget)
        PF_LOG_INFO("retrying after solver failure: " << ro.error);
    }
  }
  PF_LOG_INFO("experiment unsolved after " << budget
                                           << " attempts: " << ro.error);
  return ro;
}

}  // namespace

RobustOutcome run_sos_robust(const dram::DramParams& params,
                             const dram::Defect& defect,
                             const dram::FloatingLine* line, double u,
                             const faults::Sos& sos,
                             const RetryPolicy& policy,
                             const ExperimentContext& ctx,
                             bool idle_before_observe) {
  return robust_attempt_loop(
      params.sim, policy, ctx, [&](const spice::SimOptions& tightened) {
        dram::DramParams attempt_params = params;
        attempt_params.sim = tightened;
        return run_sos(attempt_params, defect, line, u, sos,
                       idle_before_observe);
      });
}

RobustOutcome run_sos_robust(SosSession& session,
                             const spice::SimOptions& base,
                             const dram::Defect& defect,
                             const dram::FloatingLine* line, double u,
                             const faults::Sos& sos,
                             const RetryPolicy& policy,
                             const ExperimentContext& ctx,
                             bool idle_before_observe, bool warm_start) {
  PF_CHECK_MSG(defect.kind == session.column().defect().kind &&
                   defect.site == session.column().defect().site,
               "session compiled for a different defect topology");
  return robust_attempt_loop(
      base, policy, ctx, [&](const spice::SimOptions& tightened) {
        return session.run(defect.resistance, tightened, line, u, sos,
                           idle_before_observe, warm_start);
      });
}

std::string grid_point_key(size_t ix, size_t iy) {
  return "iy=" + std::to_string(iy) + ",ix=" + std::to_string(ix);
}

std::string completion_key(double r_def, double u) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "completion:r=%g,u=%g", r_def, u);
  return buf;
}

}  // namespace pf::analysis
