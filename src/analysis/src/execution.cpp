#include "pf/analysis/execution.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "pf/util/error.hpp"

namespace pf::analysis {
namespace {

[[noreturn]] void throw_cancelled(const pf::CancellationToken& token) {
  std::ostringstream os;
  os << "sweep cancelled (" << token.reason() << ")";
  throw pf::CancelledError(os.str());
}

}  // namespace

EnginePlan resolved_plan(const ExecutionPolicy& policy) {
  EnginePlan plan = policy.plan;
  if (plan.backend == spice::SolverBackend::kBatched &&
      plan.circuit_mode == CircuitMode::kRebuild)
    throw pf::Error(
        "the batched solver backend requires circuit reuse "
        "(EnginePlan{backend=batched, circuit_mode=rebuild} is not "
        "executable: lanes are seeded from one shared compiled session)");
  return plan;
}

int resolve_worker_count(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelGridRunner::ParallelGridRunner(const ExecutionPolicy& policy)
    : workers_(resolve_worker_count(policy.threads)),
      progress_(policy.progress),
      cancel_(policy.cancel) {
  // First-arm-wins on the shared token state: re-constructing a runner for
  // each sweep of a multi-sweep driver does not reset the global budget.
  if (policy.deadline_seconds > 0.0)
    cancel_.arm_deadline_after(policy.deadline_seconds);
}

void ParallelGridRunner::run(
    size_t n, const std::function<void(size_t, int)>& work) const {
  if (n == 0) return;
  const int pool =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(workers_), n));

  if (pool <= 1) {
    // Serial path: plain loop on the calling thread, exceptions propagate
    // directly (the first failing index is necessarily the lowest one).
    for (size_t i = 0; i < n; ++i) {
      if (cancel_.stop_requested()) throw_cancelled(cancel_);
      work(i, 0);
      if (progress_) progress_(i + 1, n);
    }
    return;
  }

  std::atomic<size_t> cursor{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> stop{false};
  std::mutex mu;  // serializes the progress callback and error capture
  size_t error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  const auto worker_body = [&](int worker) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (cancel_.stop_requested()) break;
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        work(i, worker);
      } catch (const pf::CancelledError&) {
        // The token tripped mid-point (solver watchdog). Not a per-point
        // error: the loop condition rethrows uniformly after the drain.
        break;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
        continue;
      }
      const size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress_) {
        std::lock_guard<std::mutex> lock(mu);
        progress_(completed, n);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(pool) - 1);
  for (int w = 1; w < pool; ++w) threads.emplace_back(worker_body, w);
  worker_body(0);  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  if (cancel_.stop_requested()) throw_cancelled(cancel_);
}

}  // namespace pf::analysis
