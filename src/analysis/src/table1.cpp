#include "pf/analysis/table1.hpp"

#include <algorithm>

#include "pf/util/log.hpp"
#include "pf/util/strings.hpp"
#include "pf/util/table.hpp"

namespace pf::analysis {

using dram::OpenSite;
using faults::Ffm;
using faults::Sos;

std::vector<Sos> base_soses() {
  std::vector<Sos> out;
  for (const char* text : {"0", "1", "0w0", "0w1", "1w0", "1w1", "0r0", "1r1"})
    out.push_back(Sos::parse(text));
  return out;
}

std::vector<Table1Row> generate_table1(const dram::DramParams& params,
                                       const Table1Options& options) {
  const ExecutionPolicy& exec = options.exec;
  std::vector<Table1Row> rows;
  for (OpenSite site : options.sites) {
    const dram::Defect proto = dram::Defect::open(site, 1e6);
    const bool cell_internal =
        site == OpenSite::kCell || site == OpenSite::kRefCell;
    double r_min = options.r_min;
    double r_max = cell_internal ? options.r_max_cell : options.r_max_default;
    if (site == OpenSite::kWordLine) {
      r_min = options.r_min_wordline;
      r_max = options.r_max_wordline;
    }
    const auto lines = dram::floating_lines_for(proto, params);
    for (size_t li = 0; li < lines.size(); ++li) {
      size_t sos_index = 0;
      for (const Sos& sos : base_soses()) {
        SweepSpec spec;
        spec.params = params;
        spec.defect = proto;
        spec.floating_line_index = li;
        spec.sos = sos;
        spec.r_axis = pf::logspace(r_min, r_max, options.r_points);
        spec.u_axis =
            pf::linspace(lines[li].min_v, lines[li].max_v, options.u_points);
        ExecutionPolicy sweep_exec = exec;
        if (!sweep_exec.journal_path.empty())
          sweep_exec.journal_path += "-open" +
                                     std::to_string(dram::open_number(site)) +
                                     "-line" + std::to_string(li) + "-sos" +
                                     std::to_string(sos_index) + ".csv";
        ++sos_index;
        const RegionMap map = sweep_region(spec, sweep_exec);
        if (map.failed_points() > 0)
          PF_LOG_INFO("table1 sweep "
                      << dram::defect_name(proto) << " / " << lines[li].label
                      << " / " << sos.to_string() << ": observed only "
                      << 100.0 * map.observed_fraction()
                      << "% of the grid (" << map.failed_points()
                      << " unsolved points)");
        for (const PartialFaultFinding& finding :
             identify_partial_faults(map)) {
          if (!finding.partial || finding.ffm == Ffm::kUnknown) continue;
          // Deduplicate: keep one row per (FFM, site, line label).
          const bool dup = std::any_of(
              rows.begin(), rows.end(), [&](const Table1Row& r) {
                return r.sim_ffm == finding.ffm && r.site == site &&
                       r.initialized_voltage == lines[li].label;
              });
          if (dup) continue;
          PF_LOG_INFO("partial " << faults::ffm_name(finding.ffm) << " at "
                                 << dram::defect_name(proto) << " / "
                                 << lines[li].label);
          Table1Row row;
          row.sim_ffm = finding.ffm;
          row.com_ffm = faults::complement_ffm(finding.ffm);
          row.site = site;
          row.initialized_voltage = lines[li].label;
          row.min_r_def = finding.min_r_def;
          row.band_coverage = finding.best_coverage;

          CompletionSpec cspec;
          cspec.params = params;
          cspec.defect = proto;
          cspec.floating_line_index = li;
          cspec.base.sos = sos;
          cspec.probe_u = pf::linspace(lines[li].min_v, lines[li].max_v,
                                       options.probe_u_points);
          cspec.max_prefix_ops = options.max_prefix_ops;
          cspec.exec = exec;
          cspec.exec.journal_path.clear();  // probes are not journaled
          const CompletionResult comp = search_completing_ops_with_fallback(
              cspec, map, finding.ffm, /*rows_per_window=*/1,
              options.fallback_windows);
          row.completable = comp.possible;
          if (comp.possible) row.completed = comp.completed;
          rows.push_back(std::move(row));
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Table1Row& a,
                                         const Table1Row& b) {
    if (a.sim_ffm != b.sim_ffm) return a.sim_ffm < b.sim_ffm;
    return dram::open_number(a.site) < dram::open_number(b.site);
  });
  return rows;
}

std::string format_table1(const std::vector<Table1Row>& rows) {
  pf::TextTable table({"Sim. FFM", "Com. FFM", "Open", "Completed FP",
                       "Initialized volt.", "min R_def [kOhm]"});
  for (const Table1Row& row : rows) {
    table.add_row({std::string(faults::ffm_name(row.sim_ffm)),
                   std::string(faults::ffm_name(row.com_ffm)),
                   "Open " + std::to_string(dram::open_number(row.site)),
                   row.completable ? row.completed.to_string()
                                   : "Not possible",
                   row.initialized_voltage,
                   pf::format_double(row.min_r_def / 1e3, 1)});
  }
  return table.to_string();
}

}  // namespace pf::analysis
