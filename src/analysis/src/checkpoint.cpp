#include "pf/analysis/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "pf/util/strings.hpp"

namespace pf::analysis {
namespace {

constexpr const char* kHeaderTag = "# pf-sweep-journal v1 fingerprint=";
constexpr const char* kColumnHeader = "iy,ix,r_def,u,ffm,attempts";

void fnv1a(uint64_t& hash, std::string_view s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash ^= '\x1f';  // field separator, so "ab"+"c" != "a"+"bc"
  hash *= 1099511628211ull;
}

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string axis_text(const std::vector<double>& axis) {
  std::ostringstream os;
  os.precision(17);
  for (const double v : axis) os << v << ';';
  return os.str();
}

}  // namespace

uint64_t SweepJournal::fingerprint(const SweepSpec& spec) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  fnv1a(hash, dram::defect_name(spec.defect));
  fnv1a(hash, std::to_string(spec.floating_line_index));
  fnv1a(hash, spec.sos.to_string());
  fnv1a(hash, axis_text(spec.r_axis));
  fnv1a(hash, axis_text(spec.u_axis));
  return hash;
}

std::vector<SweepJournal::Entry> SweepJournal::load(const std::string& path,
                                                    const SweepSpec& spec) {
  std::vector<Entry> entries;
  std::ifstream in(path);
  if (!in.is_open()) return entries;
  std::string header;
  if (!std::getline(in, header)) return entries;  // empty file
  PF_CHECK_MSG(header.rfind(kHeaderTag, 0) == 0,
               "not a sweep journal: " << path);
  const std::string expected = hex16(fingerprint(spec));
  const std::string found = pf::trim(header.substr(std::string(kHeaderTag).size()));
  PF_CHECK_MSG(found == expected,
               "journal " << path << " belongs to a different sweep"
                          << " (fingerprint " << found << ", expected "
                          << expected << "); delete it to start over");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line == kColumnHeader) continue;
    const std::vector<std::string> fields = pf::split(line, ',');
    // A truncated final row (crash mid-write) is dropped, which simply
    // re-runs that point on resume.
    if (fields.size() != 6) continue;
    Entry e;
    try {
      e.iy = std::stoul(fields[0]);
      e.ix = std::stoul(fields[1]);
      e.attempts = std::stoi(fields[5]);
    } catch (const std::exception&) {
      continue;
    }
    PF_CHECK_MSG(e.ix < spec.u_axis.size() && e.iy < spec.r_axis.size(),
                 "journal " << path << " row out of grid: " << line);
    if (fields[4] == "-") {
      e.ffm = faults::Ffm::kUnknown;
    } else {
      e.ffm = faults::ffm_by_name(fields[4]);
      if (e.ffm == faults::Ffm::kUnknown) continue;  // unreadable row
    }
    if (e.ffm == faults::Ffm::kSolveFailed) continue;  // re-attempt on resume
    entries.push_back(e);
  }
  return entries;
}

SweepJournal::SweepJournal(const std::string& path, const SweepSpec& spec) {
  const bool fresh = [&] {
    std::ifstream probe(path);
    return !probe.is_open() || probe.peek() == std::ifstream::traits_type::eof();
  }();
  out_.open(path, std::ios::app);
  PF_CHECK_MSG(out_.is_open(), "cannot open sweep journal " << path);
  if (fresh) {
    out_ << kHeaderTag << hex16(fingerprint(spec)) << '\n'
         << kColumnHeader << '\n';
    out_.flush();
  }
}

void SweepJournal::append(const Entry& entry, double r_def, double u) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << entry.iy << ',' << entry.ix << ',' << r_def << ',' << u << ','
       << (entry.ffm == faults::Ffm::kUnknown ? "-"
                                              : faults::ffm_name(entry.ffm))
       << ',' << entry.attempts << '\n';
  out_.flush();
}

}  // namespace pf::analysis
