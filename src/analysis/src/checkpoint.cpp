#include "pf/analysis/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "pf/util/crc32.hpp"
#include "pf/util/log.hpp"
#include "pf/util/quarantine.hpp"
#include "pf/util/strings.hpp"

namespace pf::analysis {
namespace {

// Header: "# pf-sweep-journal v<N> fingerprint=<16 hex>".
constexpr const char* kJournalTag = "# pf-sweep-journal ";
constexpr const char* kFingerprintField = "fingerprint=";
// Trailer: "# pf-sweep-journal END fingerprint=<16 hex>" — self-validating
// against the header fingerprint, so a torn trailer write reads as a
// crashed tail, never as a clean completion.
constexpr const char* kTrailerWord = "END";
constexpr const char* kColumnHeaderV1 = "iy,ix,r_def,u,ffm,attempts";
constexpr const char* kColumnHeaderV2 = "iy,ix,r_def,u,ffm,attempts,crc";

void fnv1a(uint64_t& hash, std::string_view s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash ^= '\x1f';  // field separator, so "ab"+"c" != "a"+"bc"
  hash *= 1099511628211ull;
}

std::string hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string hex8(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08" PRIx32, v);
  return buf;
}

std::string axis_text(const std::vector<double>& axis) {
  std::ostringstream os;
  os.precision(17);
  for (const double v : axis) os << v << ';';
  return os.str();
}

bool is_hex(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string trailer_line(uint64_t fingerprint) {
  return std::string(kJournalTag) + kTrailerWord + ' ' + kFingerprintField +
         hex16(fingerprint);
}

/// Parsed "# pf-sweep-journal ..." header line. version 0 = unreadable.
struct Header {
  int version = 0;
  std::string fingerprint;
};

Header parse_header(const std::string& line) {
  Header h;
  if (line.rfind(kJournalTag, 0) != 0) return h;
  const std::vector<std::string> fields =
      pf::split(pf::trim(line.substr(std::string(kJournalTag).size())), ' ');
  if (fields.size() != 2) return h;
  int version = 0;
  if (fields[0] == "v1")
    version = 1;
  else if (fields[0] == "v2")
    version = 2;
  else
    return h;
  const std::string fp_field(kFingerprintField);
  if (fields[1].rfind(fp_field, 0) != 0) return h;
  const std::string fp = fields[1].substr(fp_field.size());
  if (fp.size() != 16 || !is_hex(fp)) return h;
  h.version = version;
  h.fingerprint = fp;
  return h;
}

/// Move an unreadable journal out of the way, keeping the evidence. The
/// quarantine name gets a monotonic counter suffix when <path>.corrupt is
/// already taken, so a second corrupt journal at the same path never
/// overwrites the first. Returns false when the rename failed (the caller
/// then proceeds as if no journal existed; the open-for-append path will
/// truncate-write a fresh header).
bool quarantine(const std::string& path) {
  const std::string target = pf::quarantine_path(path);
  if (!target.empty())
    PF_LOG_WARN("journal " << path << " is unreadable; quarantined to "
                           << target << " and restarting fresh");
  else
    PF_LOG_WARN("journal " << path << " is unreadable and could not be "
                           << "quarantined; overwriting");
  return !target.empty();
}

/// First line of the file, or nullopt on missing/empty file.
bool read_first_line(const std::string& path, std::string* line) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  return static_cast<bool>(std::getline(in, *line));
}

}  // namespace

uint64_t SweepJournal::fingerprint(const SweepSpec& spec) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  fnv1a(hash, dram::defect_name(spec.defect));
  fnv1a(hash, std::to_string(spec.floating_line_index));
  fnv1a(hash, spec.sos.to_string());
  fnv1a(hash, axis_text(spec.r_axis));
  fnv1a(hash, axis_text(spec.u_axis));
  return hash;
}

SweepJournal::LoadResult SweepJournal::load(const std::string& path,
                                            const SweepSpec& spec) {
  LoadResult result;
  std::ifstream in(path);
  if (!in.is_open()) return result;
  std::string header_line;
  if (!std::getline(in, header_line)) return result;  // empty file

  const Header header = parse_header(header_line);
  if (header.version == 0) {
    // Not a recognizable journal header: a flipped byte in the tag, a
    // mangled fingerprint field, or an unknown version. The maximum valid
    // prefix is zero rows — quarantine and restart fresh.
    in.close();
    result.quarantined = quarantine(path);
    return result;
  }
  const std::string expected = hex16(fingerprint(spec));
  PF_CHECK_MSG(header.fingerprint == expected,
               "journal " << path << " belongs to a different sweep"
                          << " (fingerprint " << header.fingerprint
                          << ", expected " << expected
                          << "); delete it to start over");
  result.version = header.version;
  const std::string trailer = trailer_line(fingerprint(spec));

  // Recover row by row, keying by (iy, ix) with last-occurrence-wins (the
  // file is chronological). `last_significant` tracks whether the final
  // non-empty line is a valid trailer — the clean-completion marker.
  std::map<size_t, Entry> by_index;
  const size_t width = spec.u_axis.size();
  std::string line;
  bool last_is_trailer = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last_is_trailer = line == trailer;
    if (line[0] == '#' || line == kColumnHeaderV1 || line == kColumnHeaderV2)
      continue;
    std::vector<std::string> fields = pf::split(line, ',');
    // Row shapes: 7 fields = CRC'd v2 row (validated); 6 fields = legacy v1
    // row, accepted ONLY under a v1 header — under a v2 header every row
    // was written with a CRC, so 6 fields is a truncation artifact.
    bool checked = false;
    if (fields.size() == 7) {
      const size_t crc_pos = line.rfind(',');
      const uint32_t want = pf::crc32(std::string_view(line).substr(0, crc_pos));
      if (fields[6] != hex8(want)) {
        ++result.dropped;
        continue;
      }
      checked = true;
      fields.pop_back();
    } else if (fields.size() != 6 || header.version != 1) {
      ++result.dropped;
      continue;
    }
    Entry e;
    try {
      e.iy = std::stoul(fields[0]);
      e.ix = std::stoul(fields[1]);
      e.attempts = std::stoi(fields[5]);
    } catch (const std::exception&) {
      ++result.dropped;
      continue;
    }
    if (fields[4] == "-") {
      e.ffm = faults::Ffm::kUnknown;
    } else {
      e.ffm = faults::ffm_by_name(fields[4]);
      if (e.ffm == faults::Ffm::kUnknown &&
          fields[4] != faults::ffm_name(faults::Ffm::kSolveFailed)) {
        ++result.dropped;  // unreadable FFM name
        continue;
      }
    }
    // A CRC-valid row pointing outside the grid cannot happen by bit rot
    // (the fingerprint pins both axes) — treat as the caller error it is.
    // An unchecked legacy row gets the lenient v1 treatment: dropped.
    if (e.ix >= width || e.iy >= spec.r_axis.size()) {
      PF_CHECK_MSG(!checked, "journal " << path << " row out of grid: " << line);
      ++result.dropped;
      continue;
    }
    if (e.ffm == faults::Ffm::kSolveFailed) {
      ++result.fail_rows;  // re-attempt on resume
      by_index.erase(e.iy * width + e.ix);
      continue;
    }
    by_index[e.iy * width + e.ix] = e;
  }
  result.clean_end = last_is_trailer;
  result.entries.reserve(by_index.size());
  for (const auto& [index, entry] : by_index) result.entries.push_back(entry);
  return result;
}

SweepJournal::SweepJournal(const std::string& path, const SweepSpec& spec)
    : fingerprint_(fingerprint(spec)) {
  // Freshness probe, with the same quarantine rule as load(): never append
  // rows to a file we could not resume from.
  bool fresh = true;
  std::string first_line;
  if (read_first_line(path, &first_line)) {
    const Header header = parse_header(first_line);
    if (header.version == 0) {
      if (!quarantine(path)) std::remove(path.c_str());
    } else {
      PF_CHECK_MSG(header.fingerprint == hex16(fingerprint_),
                   "journal " << path << " belongs to a different sweep; "
                              << "delete it to start over");
      fresh = false;
    }
  }
  out_.open(path, std::ios::app);
  PF_CHECK_MSG(out_.is_open(), "cannot open sweep journal " << path);
  if (fresh) {
    out_ << kJournalTag << "v2 " << kFingerprintField << hex16(fingerprint_)
         << '\n'
         << kColumnHeaderV2 << '\n';
    out_.flush();
  }
}

void SweepJournal::append(const Entry& entry, double r_def, double u) {
  std::ostringstream row;
  row << entry.iy << ',' << entry.ix << ',' << r_def << ',' << u << ','
      << (entry.ffm == faults::Ffm::kUnknown ? "-"
                                             : faults::ffm_name(entry.ffm))
      << ',' << entry.attempts;
  const std::string payload = row.str();
  std::lock_guard<std::mutex> lock(mu_);
  out_ << payload << ',' << hex8(pf::crc32(payload)) << '\n';
  out_.flush();
  ++rows_appended_;
}

void SweepJournal::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  out_ << trailer_line(fingerprint_) << '\n';
  out_.flush();
  finalized_ = true;
}

}  // namespace pf::analysis
