#include "pf/analysis/session_cache.hpp"

namespace pf::analysis {

std::unique_ptr<SosSession> SessionCache::take(const std::string& family) {
  if (family.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_family_.find(family);
  if (it == by_family_.end() || !it->second) {
    ++stats_.misses;
    return nullptr;
  }
  std::unique_ptr<SosSession> session = std::move(it->second);
  by_family_.erase(it);
  ++stats_.hits;
  return session;
}

void SessionCache::put(const std::string& family,
                       std::unique_ptr<SosSession> session) {
  if (family.empty() || !session) return;
  std::lock_guard<std::mutex> lock(mu_);
  by_family_[family] = std::move(session);
  ++stats_.stored;
}

void SessionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_family_.clear();
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pf::analysis
