#include "pf/analysis/completion.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "pf/spice/fault_injection.hpp"
#include "pf/util/log.hpp"

namespace pf::analysis {

using faults::CellRole;
using faults::FaultPrimitive;
using faults::Op;
using faults::Sos;

std::vector<double> partial_rows(const RegionMap& base_map, faults::Ffm ffm) {
  const pf::Interval domain = base_map.u_domain();
  const auto& u = base_map.spec().u_axis;
  const double step =
      u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
  std::vector<double> rows;
  for (size_t iy = 0; iy < base_map.grid().height(); ++iy) {
    const pf::IntervalSet band = base_map.u_band(ffm, iy);
    if (!band.empty() && !band.covers(domain, step))
      rows.push_back(base_map.spec().r_axis[iy]);
  }
  return rows;
}

std::vector<double> choose_probe_rows(const RegionMap& base_map,
                                      faults::Ffm ffm, size_t max_rows) {
  std::vector<double> partial_rows = analysis::partial_rows(base_map, ffm);
  if (partial_rows.size() <= max_rows) return partial_rows;
  // Probe from the TOP of the partial region: at large R_def the defect
  // dominates and the floating line genuinely floats. Rows near the lower
  // boundary are marginal (and the paper's own completed faults only hold
  // above a threshold R_def — Figure 4(b)).
  const size_t n = partial_rows.size();
  std::vector<size_t> indices = {n - 1};
  if (max_rows >= 2) indices.push_back((3 * (n - 1)) / 4);
  if (max_rows >= 3) indices.push_back((n - 1) / 2);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<double> picked;
  for (size_t idx : indices) picked.push_back(partial_rows[idx]);
  return picked;
}

namespace {

/// Expected victim state just before the base SOS's operations (the value
/// the completing prefix must establish or preserve).
int required_entry_state(const Sos& base) { return base.initial_victim; }

struct Candidate {
  std::vector<Op> prefix;
  bool keeps_init = false;
};

/// Enumerate prefixes of exactly `len` operations over the vocabulary
/// {w0, w1} x {victim, same-BL aggressor}, ordered victim-first (prefer
/// lower #C among equals).
void enumerate_prefixes(int len, int required_state,
                        std::vector<Candidate>& out) {
  const Op vocab[4] = {
      {Op::Kind::kWrite0, CellRole::kVictim, true, -1},
      {Op::Kind::kWrite1, CellRole::kVictim, true, -1},
      {Op::Kind::kWrite0, CellRole::kAggressorBl, true, -1},
      {Op::Kind::kWrite1, CellRole::kAggressorBl, true, -1},
  };
  std::vector<int> idx(len, 0);
  while (true) {
    Candidate c;
    int last_victim_write = -1;
    for (int k = 0; k < len; ++k) {
      const Op& op = vocab[idx[k]];
      c.prefix.push_back(op);
      if (op.target == CellRole::kVictim) last_victim_write = op.write_value();
    }
    if (last_victim_write < 0) {
      // No victim write: the base initialization is kept (if it exists).
      c.keeps_init = true;
      out.push_back(std::move(c));
    } else if (required_state < 0 || last_victim_write == required_state) {
      // Prefix provides (and must match) the required entry state.
      c.keeps_init = false;
      out.push_back(std::move(c));
    }
    // Next combination.
    int k = len - 1;
    while (k >= 0 && ++idx[k] == 4) idx[k--] = 0;
    if (k < 0) break;
  }
}

}  // namespace

CompletionResult search_completing_ops(const CompletionSpec& spec) {
  PF_CHECK_MSG(!spec.probe_r.empty() && !spec.probe_u.empty(),
               "completion search needs probe rows and voltages");
  CompletionResult result;
  const ExecutionPolicy& policy = spec.exec;
  const EnginePlan plan = resolved_plan(policy);
  const ParallelGridRunner runner(policy);
  const Sos& base = spec.base.sos;
  const int entry_state = required_entry_state(base);
  const auto lines = dram::floating_lines_for(spec.defect, spec.params);
  PF_CHECK(spec.floating_line_index < lines.size());
  const dram::FloatingLine& line = lines[spec.floating_line_index];
  // State faults have no sensitizing operation; the candidate needs an idle
  // precharge cycle before observation (the mechanism that flips the cell).
  const bool is_state_fault = base.ops.empty();
  // Probe simulators see the search's cancellation token, so the solver
  // watchdog can abandon a probe mid-transient.
  dram::DramParams probe_params = spec.params;
  probe_params.sim.cancel = policy.cancel;

  // Compile-once pipeline: one template for the whole search, per-worker
  // sessions that persist ACROSS candidates — every probe restamps + resets
  // its worker's column (bit-identical to a fresh build), so the search
  // never reconstructs a netlist after this point. Probes always reset cold
  // (no warm start): candidate verdicts must not depend on probe order.
  std::unique_ptr<SosSession> prototype;
  if (plan.circuit_mode == CircuitMode::kReuse) {
    dram::Defect proto_defect = spec.defect;
    proto_defect.resistance = spec.probe_r.front();
    prototype = std::make_unique<SosSession>(probe_params, proto_defect);
  }
  std::vector<std::unique_ptr<SosSession>> sessions(
      static_cast<size_t>(runner.workers()));
  const auto session_for = [&](int worker) -> SosSession& {
    std::unique_ptr<SosSession>& session =
        sessions[static_cast<size_t>(worker)];
    if (session == nullptr)
      session = std::make_unique<SosSession>(prototype->clone());
    return *session;
  };
  // Batched backend: probes fan out one probe-R row at a time, all probe-U
  // lanes advancing in lockstep (resolved_plan guarantees kReuse). The
  // verdict predicate is identical; only the run/failure tallies may differ
  // from the scalar backend's early-exit counts.
  const spice::SimOptions attempt1 =
      tightened_sim_options(probe_params.sim, policy.retry, 1);
  const bool batch_rows = plan.backend == spice::SolverBackend::kBatched &&
                          attempt1.max_wall_seconds <= 0.0;

  for (int len = 1; len <= spec.max_prefix_ops; ++len) {
    std::vector<Candidate> candidates;
    enumerate_prefixes(len, entry_state, candidates);
    for (const Candidate& cand : candidates) {
      ++result.candidates_evaluated;
      Sos sos;
      sos.initial_victim = cand.keeps_init ? base.initial_victim : -1;
      sos.initial_aggressor = base.initial_aggressor;
      sos.ops = cand.prefix;
      sos.ops.insert(sos.ops.end(), base.ops.begin(), base.ops.end());

      // The candidate is accepted iff it reproduces the base <F, R> at
      // EVERY probe point — an order-independent predicate, so the probe
      // grid fans out over the worker pool. `rejected` cancels the probes
      // still pending (serial runs reproduce PR 1's early-exit counts
      // exactly; parallel runs may charge a few in-flight extras).
      std::atomic<bool> rejected{false};
      std::atomic<uint64_t> runs{0};
      std::atomic<uint64_t> failures{0};
      const size_t n_u = spec.probe_u.size();
      const auto scalar_probe = [&](double r, double u, int worker) {
        dram::Defect defect = spec.defect;
        defect.resistance = r;
        ExperimentContext ctx;
        ctx.key = completion_key(r, u);
        ctx.defect = dram::defect_name(spec.defect);
        ctx.line = line.label;
        ctx.r_def = r;
        ctx.u = u;
        ctx.sos = sos.to_string();
        if (prototype != nullptr)
          return run_sos_robust(session_for(worker), probe_params.sim, defect,
                                &line, u, sos, policy.retry, ctx,
                                is_state_fault);
        return run_sos_robust(probe_params, defect, &line, u, sos,
                              policy.retry, ctx, is_state_fault);
      };
      const auto judge = [&](const SosOutcome& out) {
        if (!out.faulty ||
            out.final_state != spec.base.faulty_state ||
            out.read_result != spec.base.read_result)
          rejected.store(true, std::memory_order_relaxed);
      };
      if (batch_rows) {
        runner.run(spec.probe_r.size(), [&](size_t k, int worker) {
          if (rejected.load(std::memory_order_relaxed)) return;
          const double r = spec.probe_r[k];
          std::vector<SosSession::LaneOutcome> lanes;
          const bool lockstep = !spice::testing::armed();
          if (lockstep)
            lanes = session_for(worker).run_batch(r, attempt1, &line,
                                                  spec.probe_u, sos,
                                                  is_state_fault);
          for (size_t j = 0; j < n_u; ++j) {
            if (rejected.load(std::memory_order_relaxed)) return;
            runs.fetch_add(1, std::memory_order_relaxed);
            if (lockstep && lanes[j].solved) {
              judge(lanes[j].outcome);
              continue;
            }
            const RobustOutcome ro = scalar_probe(r, spec.probe_u[j], worker);
            if (!ro.solved) {
              failures.fetch_add(1, std::memory_order_relaxed);
              rejected.store(true, std::memory_order_relaxed);
              return;
            }
            judge(ro.outcome);
          }
        });
      } else {
        runner.run(spec.probe_r.size() * n_u, [&](size_t k, int worker) {
          if (rejected.load(std::memory_order_relaxed)) return;
          const double r = spec.probe_r[k / n_u];
          const double u = spec.probe_u[k % n_u];
          runs.fetch_add(1, std::memory_order_relaxed);
          const RobustOutcome ro = scalar_probe(r, u, worker);
          if (!ro.solved) {
            // An unsolvable probe cannot demonstrate the completion; reject
            // the candidate and keep searching instead of aborting the
            // whole catalogue run.
            failures.fetch_add(1, std::memory_order_relaxed);
            rejected.store(true, std::memory_order_relaxed);
            return;
          }
          judge(ro.outcome);
        });
      }
      result.sos_runs += runs.load();
      result.solver_failures += failures.load();
      if (!rejected.load()) {
        result.possible = true;
        result.completed.sos = sos;
        result.completed.faulty_state = spec.base.faulty_state;
        result.completed.read_result = spec.base.read_result;
        PF_LOG_INFO("completed " << spec.base.to_string() << " as "
                                 << result.completed.to_string() << " after "
                                 << result.candidates_evaluated
                                 << " candidates");
        return result;
      }
    }
  }
  PF_LOG_INFO("no completing operations for " << spec.base.to_string()
                                              << " (not possible)");
  return result;
}

CompletionResult search_completing_ops_with_fallback(
    const CompletionSpec& spec_template, const RegionMap& base_map,
    faults::Ffm ffm, size_t rows_per_window, size_t max_windows,
    double max_ratio_below_top) {
  CompletionResult total;
  std::vector<double> rows = partial_rows(base_map, ffm);
  if (rows.empty()) return total;
  // Stay within the genuinely-floating regime near the top partial row.
  const double r_floor = rows.back() / max_ratio_below_top;
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [&](double r) { return r < r_floor; }),
             rows.end());
  const auto lines =
      dram::floating_lines_for(spec_template.defect, spec_template.params);
  PF_CHECK(spec_template.floating_line_index < lines.size());
  const dram::FloatingLine& line = lines[spec_template.floating_line_index];

  size_t window = 0;
  for (size_t top = rows.size(); top > 0 && window < max_windows; ++window) {
    CompletionSpec spec = spec_template;
    spec.probe_r.clear();
    for (size_t k = 0; k < rows_per_window && top > 0; ++k)
      spec.probe_r.push_back(rows[--top]);

    // Re-observe the base <F, R> at this window's top row, at the centre of
    // the observation band there.
    {
      dram::Defect probe = spec.defect;
      probe.resistance = spec.probe_r.front();
      size_t iy = 0;
      for (size_t i = 0; i < base_map.spec().r_axis.size(); ++i)
        if (base_map.spec().r_axis[i] == probe.resistance) iy = i;
      const pf::IntervalSet band = base_map.u_band(ffm, iy);
      const pf::Interval hull = band.hull();
      const double u_mid = band.empty()
                               ? (line.min_v + line.max_v) / 2
                               : (hull.lo + hull.hi) / 2;
      ExperimentContext ctx;
      ctx.key = completion_key(probe.resistance, u_mid);
      ctx.defect = dram::defect_name(spec.defect);
      ctx.line = line.label;
      ctx.r_def = probe.resistance;
      ctx.u = u_mid;
      ctx.sos = spec.base.sos.to_string();
      dram::DramParams probe_params = spec.params;
      probe_params.sim.cancel = spec.exec.cancel;
      const RobustOutcome ro = run_sos_robust(probe_params, probe, &line,
                                              u_mid, spec.base.sos,
                                              spec.exec.retry, ctx);
      ++total.sos_runs;
      if (!ro.solved) {
        ++total.solver_failures;
        continue;  // degrade to the next window
      }
      const SosOutcome& out = ro.outcome;
      if (!out.faulty || faults::classify(out.observed) != ffm) continue;
      spec.base.faulty_state = out.final_state;
      spec.base.read_result = out.read_result;
    }

    const CompletionResult attempt = search_completing_ops(spec);
    total.candidates_evaluated += attempt.candidates_evaluated;
    total.sos_runs += attempt.sos_runs;
    total.solver_failures += attempt.solver_failures;
    if (attempt.possible) {
      total.possible = true;
      total.completed = attempt.completed;
      return total;
    }
  }
  return total;
}

}  // namespace pf::analysis
