#include "pf/analysis/sos_runner.hpp"

#include <cmath>
#include <sstream>

#include "pf/util/error.hpp"

namespace pf::analysis {

using dram::DramColumn;
using faults::CellRole;
using faults::Op;
using faults::Sos;

SosOutcome run_sos_on(DramColumn& column, const dram::FloatingLine* line,
                      double u, const Sos& sos, bool idle_before_observe) {
  const int victim = DramColumn::kVictim;
  const int aggressor = DramColumn::kAggressorSameBl;

  // 1. Initializing states, applied as ordinary (defective) operations.
  if (sos.initial_aggressor >= 0) column.write(aggressor, sos.initial_aggressor);
  if (sos.initial_victim >= 0) column.write(victim, sos.initial_victim);

  // 2. Floating-voltage injection.
  if (line != nullptr) column.apply_floating_voltage(*line, u);

  // 3. Operations.
  int last_victim_read = -1;
  bool last_op_is_victim_read = false;
  for (const Op& op : sos.ops) {
    const int addr = op.target == CellRole::kVictim ? victim : aggressor;
    if (op.is_read()) {
      const int got = column.read(addr);
      if (op.target == CellRole::kVictim) last_victim_read = got;
    } else {
      column.write(addr, op.write_value());
    }
    last_op_is_victim_read =
        op.is_read() && op.target == CellRole::kVictim;
  }
  // Operation-free SOS (state faults): give the floating line one precharge
  // cycle to act on the cell.
  int pre_idle_state = -1;
  if (sos.ops.empty() || idle_before_observe) {
    pre_idle_state = column.cell_logical(victim);
    column.idle_cycle();
  }

  // 4. Observation and classification. Guard first: a non-finite storage
  // voltage (silently diverged solve) must surface as a retryable solver
  // failure — thresholding NaN would classify a bogus fault primitive.
  const double victim_v = column.cell_voltage(victim);
  if (!std::isfinite(victim_v)) {
    std::ostringstream os;
    os << "non-finite victim storage voltage (" << victim_v
       << ") before FFM classification";
    throw ConvergenceError(os.str());
  }
  SosOutcome out;
  out.final_state = column.cell_logical(victim);
  out.read_result = last_op_is_victim_read ? last_victim_read : -1;
  out.observed.sos = sos;
  out.observed.faulty_state = out.final_state;
  out.observed.read_result = out.read_result;
  out.faulty = out.observed.is_fault();
  // A state fault must be CAUSED by the memory during the idle cycle;
  // merely retaining the injected floating voltage is not a fault of the
  // cell's own dynamics (the injection itself encodes unknown history).
  if (sos.ops.empty() && out.final_state == pre_idle_state) out.faulty = false;
  if (out.faulty) out.ffm = faults::classify(out.observed);
  return out;
}

SosOutcome run_sos(const dram::DramParams& params, const dram::Defect& defect,
                   const dram::FloatingLine* line, double u, const Sos& sos,
                   bool idle_before_observe) {
  DramColumn column(params, defect);
  return run_sos_on(column, line, u, sos, idle_before_observe);
}

}  // namespace pf::analysis
