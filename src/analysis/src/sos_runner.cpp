#include "pf/analysis/sos_runner.hpp"

#include <cmath>
#include <sstream>

#include "pf/util/error.hpp"

namespace pf::analysis {

using dram::DramColumn;
using faults::CellRole;
using faults::Op;
using faults::Sos;

namespace {

// Step 1 of the recipe: the SOS's initializing states, applied as ordinary
// (defective) operations. Runs BEFORE the floating-voltage injection, so
// the resulting column state depends only on (configuration, initial
// states) — the invariant behind SosSession's post-init snapshot cache.
void apply_initial_states(DramColumn& column, const Sos& sos) {
  if (sos.initial_aggressor >= 0)
    column.write(DramColumn::kAggressorSameBl, sos.initial_aggressor);
  if (sos.initial_victim >= 0)
    column.write(DramColumn::kVictim, sos.initial_victim);
}

// Steps 2-4: floating-voltage injection, operations, observation and
// classification. The column must already carry the initializing states.
SosOutcome observe_sos(DramColumn& column, const dram::FloatingLine* line,
                       double u, const Sos& sos, bool idle_before_observe);

}  // namespace

SosOutcome run_sos_on(DramColumn& column, const dram::FloatingLine* line,
                      double u, const Sos& sos, bool idle_before_observe) {
  apply_initial_states(column, sos);
  return observe_sos(column, line, u, sos, idle_before_observe);
}

namespace {

SosOutcome observe_sos(DramColumn& column, const dram::FloatingLine* line,
                       double u, const Sos& sos, bool idle_before_observe) {
  const int victim = DramColumn::kVictim;
  const int aggressor = DramColumn::kAggressorSameBl;

  // 2. Floating-voltage injection.
  if (line != nullptr) column.apply_floating_voltage(*line, u);

  // 3. Operations.
  int last_victim_read = -1;
  bool last_op_is_victim_read = false;
  for (const Op& op : sos.ops) {
    const int addr = op.target == CellRole::kVictim ? victim : aggressor;
    if (op.is_read()) {
      const int got = column.read(addr);
      if (op.target == CellRole::kVictim) last_victim_read = got;
    } else {
      column.write(addr, op.write_value());
    }
    last_op_is_victim_read =
        op.is_read() && op.target == CellRole::kVictim;
  }
  // Operation-free SOS (state faults): give the floating line one precharge
  // cycle to act on the cell.
  int pre_idle_state = -1;
  if (sos.ops.empty() || idle_before_observe) {
    pre_idle_state = column.cell_logical(victim);
    column.idle_cycle();
  }

  // 4. Observation and classification. Guard first: a non-finite storage
  // voltage (silently diverged solve) must surface as a retryable solver
  // failure — thresholding NaN would classify a bogus fault primitive.
  const double victim_v = column.cell_voltage(victim);
  if (!std::isfinite(victim_v)) {
    std::ostringstream os;
    os << "non-finite victim storage voltage (" << victim_v
       << ") before FFM classification";
    throw ConvergenceError(os.str());
  }
  SosOutcome out;
  out.final_state = column.cell_logical(victim);
  out.read_result = last_op_is_victim_read ? last_victim_read : -1;
  out.observed.sos = sos;
  out.observed.faulty_state = out.final_state;
  out.observed.read_result = out.read_result;
  out.faulty = out.observed.is_fault();
  // A state fault must be CAUSED by the memory during the idle cycle;
  // merely retaining the injected floating voltage is not a fault of the
  // cell's own dynamics (the injection itself encodes unknown history).
  if (sos.ops.empty() && out.final_state == pre_idle_state) out.faulty = false;
  if (out.faulty) out.ffm = faults::classify(out.observed);
  return out;
}

}  // namespace

SosOutcome run_sos(const dram::DramParams& params, const dram::Defect& defect,
                   const dram::FloatingLine* line, double u, const Sos& sos,
                   bool idle_before_observe) {
  DramColumn column(params, defect);
  return run_sos_on(column, line, u, sos, idle_before_observe);
}

SosSession::SosSession(const dram::DramParams& params,
                       const dram::Defect& defect)
    : column_(params, defect) {}

SosOutcome SosSession::run(double r_def, const spice::SimOptions& options,
                           const dram::FloatingLine* line, double u,
                           const Sos& sos, bool idle_before_observe,
                           bool warm_start) {
  // Reconfigure through the compiled template: both setters are cheap
  // no-ops when the value is already stamped, so consecutive points of one
  // grid row (same R_def, same options) reset() via snapshot restore
  // without solving anything.
  column_.set_defect_resistance(r_def);
  column_.set_sim_options(options);
  if (warm_start) {
    column_.power_up();  // replay from the previous experiment's end state
    return run_sos_on(column_, line, u, sos, idle_before_observe);
  }
  // Cold path with post-init snapshot cache: the floating voltage is only
  // injected AFTER the initializing writes, so across one grid row (same
  // R_def, numerics and initial states, varying U) every experiment shares
  // the exact post-initialization state. Restoring it replays nothing and
  // is bit-identical to reset() + re-solved writes (deterministic engine).
  if (init_valid_ && r_def == init_r_ &&
      sos.initial_victim == init_victim_ &&
      sos.initial_aggressor == init_aggressor_ &&
      spice::same_numerics(options, init_options_)) {
    column_.restore_state(init_state_);
  } else {
    init_valid_ = false;  // stays false if power-up or an init write throws
    column_.reset();  // bit-identical to a freshly built column
    apply_initial_states(column_, sos);
    init_state_ = column_.save_state();
    init_options_ = options;
    init_r_ = r_def;
    init_victim_ = sos.initial_victim;
    init_aggressor_ = sos.initial_aggressor;
    init_valid_ = true;
  }
  return observe_sos(column_, line, u, sos, idle_before_observe);
}

}  // namespace pf::analysis
