#include "pf/analysis/sos_runner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pf/dram/batched_column.hpp"
#include "pf/util/error.hpp"

namespace pf::analysis {

using dram::DramColumn;
using faults::CellRole;
using faults::Op;
using faults::Sos;

namespace {

// Step 1 of the recipe: the SOS's initializing states, applied as ordinary
// (defective) operations. Runs BEFORE the floating-voltage injection, so
// the resulting column state depends only on (configuration, initial
// states) — the invariant behind SosSession's post-init snapshot cache.
void apply_initial_states(DramColumn& column, const Sos& sos) {
  if (sos.initial_aggressor >= 0)
    column.write(DramColumn::kAggressorSameBl, sos.initial_aggressor);
  if (sos.initial_victim >= 0)
    column.write(DramColumn::kVictim, sos.initial_victim);
}

// Steps 2-4: floating-voltage injection, operations, observation and
// classification. The column must already carry the initializing states.
SosOutcome observe_sos(DramColumn& column, const dram::FloatingLine* line,
                       double u, const Sos& sos, bool idle_before_observe);

}  // namespace

SosOutcome run_sos_on(DramColumn& column, const dram::FloatingLine* line,
                      double u, const Sos& sos, bool idle_before_observe) {
  apply_initial_states(column, sos);
  return observe_sos(column, line, u, sos, idle_before_observe);
}

namespace {

// Step 4's bookkeeping, shared by the scalar and batched observers so the
// classification rules cannot drift: fills the outcome from the observed
// final state / last read and applies the state-fault causality rule.
SosOutcome classify_observation(const Sos& sos, int final_state,
                                int last_victim_read,
                                bool last_op_is_victim_read,
                                int pre_idle_state) {
  SosOutcome out;
  out.final_state = final_state;
  out.read_result = last_op_is_victim_read ? last_victim_read : -1;
  out.observed.sos = sos;
  out.observed.faulty_state = out.final_state;
  out.observed.read_result = out.read_result;
  out.faulty = out.observed.is_fault();
  // A state fault must be CAUSED by the memory during the idle cycle;
  // merely retaining the injected floating voltage is not a fault of the
  // cell's own dynamics (the injection itself encodes unknown history).
  if (sos.ops.empty() && out.final_state == pre_idle_state) out.faulty = false;
  if (out.faulty) out.ffm = faults::classify(out.observed);
  return out;
}

std::string non_finite_victim_message(double victim_v) {
  std::ostringstream os;
  os << "non-finite victim storage voltage (" << victim_v
     << ") before FFM classification";
  return os.str();
}

SosOutcome observe_sos(DramColumn& column, const dram::FloatingLine* line,
                       double u, const Sos& sos, bool idle_before_observe) {
  const int victim = DramColumn::kVictim;
  const int aggressor = DramColumn::kAggressorSameBl;

  // 2. Floating-voltage injection.
  if (line != nullptr) column.apply_floating_voltage(*line, u);

  // 3. Operations.
  int last_victim_read = -1;
  bool last_op_is_victim_read = false;
  for (const Op& op : sos.ops) {
    const int addr = op.target == CellRole::kVictim ? victim : aggressor;
    if (op.is_read()) {
      const int got = column.read(addr);
      if (op.target == CellRole::kVictim) last_victim_read = got;
    } else {
      column.write(addr, op.write_value());
    }
    last_op_is_victim_read =
        op.is_read() && op.target == CellRole::kVictim;
  }
  // Operation-free SOS (state faults): give the floating line one precharge
  // cycle to act on the cell.
  int pre_idle_state = -1;
  if (sos.ops.empty() || idle_before_observe) {
    pre_idle_state = column.cell_logical(victim);
    column.idle_cycle();
  }

  // 4. Observation and classification. Guard first: a non-finite storage
  // voltage (silently diverged solve) must surface as a retryable solver
  // failure — thresholding NaN would classify a bogus fault primitive.
  const double victim_v = column.cell_voltage(victim);
  if (!std::isfinite(victim_v))
    throw ConvergenceError(non_finite_victim_message(victim_v));
  return classify_observation(sos, column.cell_logical(victim),
                              last_victim_read, last_op_is_victim_read,
                              pre_idle_state);
}

}  // namespace

SosOutcome run_sos(const dram::DramParams& params, const dram::Defect& defect,
                   const dram::FloatingLine* line, double u, const Sos& sos,
                   bool idle_before_observe) {
  DramColumn column(params, defect);
  return run_sos_on(column, line, u, sos, idle_before_observe);
}

SosSession::SosSession(const dram::DramParams& params,
                       const dram::Defect& defect)
    : column_(params, defect) {}

SosOutcome SosSession::run(double r_def, const spice::SimOptions& options,
                           const dram::FloatingLine* line, double u,
                           const Sos& sos, bool idle_before_observe,
                           bool warm_start) {
  // Reconfigure through the compiled template: both setters are cheap
  // no-ops when the value is already stamped, so consecutive points of one
  // grid row (same R_def, same options) reset() via snapshot restore
  // without solving anything.
  column_.set_defect_resistance(r_def);
  column_.set_sim_options(options);
  if (warm_start) {
    column_.power_up();  // replay from the previous experiment's end state
    return run_sos_on(column_, line, u, sos, idle_before_observe);
  }
  // Cold path with post-init snapshot cache: the floating voltage is only
  // injected AFTER the initializing writes, so across one grid row (same
  // R_def, numerics and initial states, varying U) every experiment shares
  // the exact post-initialization state. Restoring it replays nothing and
  // is bit-identical to reset() + re-solved writes (deterministic engine).
  ensure_post_init_state(r_def, options, sos);
  return observe_sos(column_, line, u, sos, idle_before_observe);
}

void SosSession::ensure_post_init_state(double r_def,
                                        const spice::SimOptions& options,
                                        const Sos& sos) {
  column_.set_defect_resistance(r_def);
  column_.set_sim_options(options);
  if (init_valid_ && r_def == init_r_ &&
      sos.initial_victim == init_victim_ &&
      sos.initial_aggressor == init_aggressor_ &&
      spice::same_numerics(options, init_options_)) {
    column_.restore_state(init_state_);
    return;
  }
  init_valid_ = false;  // stays false if power-up or an init write throws
  column_.reset();  // bit-identical to a freshly built column
  apply_initial_states(column_, sos);
  init_state_ = column_.save_state();
  init_options_ = options;
  init_r_ = r_def;
  init_victim_ = sos.initial_victim;
  init_aggressor_ = sos.initial_aggressor;
  init_valid_ = true;
}

std::vector<SosSession::LaneOutcome> SosSession::run_batch(
    double r_def, const spice::SimOptions& options,
    const dram::FloatingLine* line, const std::vector<double>& us,
    const Sos& sos, bool idle_before_observe) {
  // Chunk wide rows: past ~32 lanes the SoA working set outgrows cache and
  // a single diverging lane holds up ever more neighbours.
  constexpr size_t kMaxLanes = 32;
  std::vector<LaneOutcome> results(us.size());
  if (us.empty()) return results;
  ensure_post_init_state(r_def, options, sos);
  const int victim = DramColumn::kVictim;
  const int aggressor = DramColumn::kAggressorSameBl;
  for (size_t base = 0; base < us.size(); base += kMaxLanes) {
    const size_t lanes = std::min(kMaxLanes, us.size() - base);
    dram::BatchedColumnRun batch(column_, lanes);
    // Every lane starts from the SAME post-init snapshot a cold scalar
    // run() would restore — identical starting stats, so per-lane watchdog
    // trajectories match the scalar ones exactly.
    for (size_t l = 0; l < lanes; ++l) batch.load_state(l, init_state_);
    if (line != nullptr)
      for (size_t l = 0; l < lanes; ++l)
        batch.apply_floating_voltage(l, *line, us[base + l]);

    // Steps 3-4 of observe_sos, vectorized over lanes. The op sequence is
    // lane-invariant (one SOS per row), so control flow stays shared.
    std::vector<int> last_victim_read(lanes, -1);
    bool last_op_is_victim_read = false;
    for (const Op& op : sos.ops) {
      const int addr = op.target == CellRole::kVictim ? victim : aggressor;
      if (op.is_read()) {
        batch.read(addr);
        if (op.target == CellRole::kVictim)
          for (size_t l = 0; l < lanes; ++l)
            last_victim_read[l] = batch.read_value(l, addr);
      } else {
        batch.write(addr, op.write_value());
      }
      last_op_is_victim_read = op.is_read() && op.target == CellRole::kVictim;
    }
    std::vector<int> pre_idle_state(lanes, -1);
    if (sos.ops.empty() || idle_before_observe) {
      for (size_t l = 0; l < lanes; ++l)
        pre_idle_state[l] = batch.cell_logical(l, victim);
      batch.idle_cycle();
    }

    for (size_t l = 0; l < lanes; ++l) {
      LaneOutcome& lane = results[base + l];
      if (batch.lane_failed(l)) {
        lane.error = batch.lane_error(l);
        continue;
      }
      const double victim_v = batch.cell_voltage(l, victim);
      if (!std::isfinite(victim_v)) {
        lane.error = non_finite_victim_message(victim_v);
        continue;
      }
      lane.outcome = classify_observation(
          sos, batch.cell_logical(l, victim), last_victim_read[l],
          last_op_is_victim_read, pre_idle_state[l]);
      lane.solved = true;
    }
  }
  return results;
}

}  // namespace pf::analysis
