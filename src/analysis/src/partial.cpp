#include "pf/analysis/partial.hpp"

#include <algorithm>

namespace pf::analysis {

using faults::Ffm;

std::vector<PartialFaultFinding> identify_partial_faults(const RegionMap& map) {
  std::vector<PartialFaultFinding> findings;
  const pf::Interval domain = map.u_domain();
  for (Ffm ffm : map.observed_ffms()) {
    PartialFaultFinding f;
    f.ffm = ffm;
    f.min_r_def = map.min_r(ffm);
    double best_len = 0.0;
    pf::Interval best_hull;
    const auto& u = map.spec().u_axis;
    const double step =
        u.size() > 1 ? (u.back() - u.front()) / double(u.size() - 1) : 1.0;
    bool any_proper_subband = false;
    for (size_t iy = 0; iy < map.grid().height(); ++iy) {
      const pf::IntervalSet band = map.u_band(ffm, iy);
      if (band.empty()) continue;
      if (!band.covers(domain, step)) any_proper_subband = true;
      if (band.total_length() > best_len) {
        best_len = band.total_length();
        best_hull = band.hull();
      }
    }
    // Partial: at some defect resistance, sensitization depends on the
    // floating voltage. A chip with that R_def escapes a test that does not
    // control V_f — even if other resistances fault for every V_f.
    f.partial = any_proper_subband;
    f.band_hull = best_hull;
    f.best_coverage = domain.length() > 0 ? best_len / domain.length() : 1.0;
    findings.push_back(f);
  }
  return findings;
}

bool is_completed(const RegionMap& map, Ffm ffm) {
  return map.has_fully_covered_row(ffm);
}

}  // namespace pf::analysis
