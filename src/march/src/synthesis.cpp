#include "pf/march/synthesis.hpp"

#include <algorithm>

#include "pf/march/search.hpp"
#include "pf/util/log.hpp"

namespace pf::march {
namespace {

/// The synthesis targets as population classes: scoring runs at unit
/// (per-victim, per-pair) granularity, which keeps the greedy search
/// informed of partial progress — detection of a guarded fault usually
/// needs several cooperating elements, and whole-target scoring would
/// report zero gain until the last one lands. With MemEngine::kPlane the
/// whole unit matrix costs ONE march pass per candidate test.
std::vector<PopulationClass> population_classes(
    const std::vector<TargetFault>& targets) {
  std::vector<PopulationClass> classes;
  classes.reserve(targets.size());
  for (const TargetFault& t : targets)
    classes.push_back(t.coupling.has_value()
                          ? PopulationClass::coupled(*t.coupling, t.guard)
                          : PopulationClass::single(t.ffm, t.guard));
  return classes;
}

/// A test is self-consistent when a fault-free memory passes it (its read
/// expectations match the data its own writes establish).
bool self_consistent(const MarchTest& test, const memsim::Geometry& geom,
                     uint64_t& evaluations) {
  memsim::Memory mem(geom);
  ++evaluations;
  return !run_march(test, mem, mem.size()).detected;
}

MarchElement elem(Order order, std::initializer_list<MarchOp> ops) {
  MarchElement e;
  e.order = order;
  e.ops = ops;
  return e;
}

}  // namespace

std::string TargetFault::name() const {
  if (coupling.has_value()) return coupling->name();
  std::string n{faults::ffm_name(ffm)};
  switch (guard.kind) {
    case memsim::Guard::Kind::kNone:
      break;
    case memsim::Guard::Kind::kBitLine:
      n += "|BL=" + std::to_string(guard.value);
      break;
    case memsim::Guard::Kind::kBuffer:
      n += "|buf=" + std::to_string(guard.value);
      break;
    case memsim::Guard::Kind::kHidden:
      n += guard.hidden_active ? "|hidden+" : "|hidden-";
      break;
  }
  return n;
}

std::vector<MarchElement> default_candidate_pool() {
  using O = Order;
  const MarchOp w0 = MarchOp::w(0), w1 = MarchOp::w(1);
  const MarchOp r0 = MarchOp::r(0), r1 = MarchOp::r(1);
  std::vector<MarchElement> pool;
  for (Order order : {O::kUp, O::kDown}) {
    pool.push_back(elem(order, {r0, w1}));
    pool.push_back(elem(order, {r1, w0}));
    pool.push_back(elem(order, {r0, w1, r1}));
    pool.push_back(elem(order, {r1, w0, r0}));
    pool.push_back(elem(order, {r0, r0}));
    pool.push_back(elem(order, {r1, r1}));
    pool.push_back(elem(order, {r0, w1, w1}));
    pool.push_back(elem(order, {r1, w0, w0}));
    // March SS-style: non-transition write plus verification (WDF/CFwd).
    pool.push_back(elem(order, {r0, w0, r0}));
    pool.push_back(elem(order, {r1, w1, r1}));
    // The paper's March PF hammer elements.
    pool.push_back(elem(order, {r1, w1, w0, w0, w1, r1}));
    pool.push_back(elem(order, {r0, w0, w1, w1, w0, r0}));
  }
  pool.push_back(elem(O::kUp, {w0}));
  pool.push_back(elem(O::kUp, {w1}));
  pool.push_back(elem(O::kUp, {w0, w1}));
  pool.push_back(elem(O::kUp, {w1, w0}));
  pool.push_back(elem(O::kUp, {r0}));
  pool.push_back(elem(O::kUp, {r1}));
  return pool;
}

SynthesisResult synthesize_march(const std::vector<TargetFault>& targets,
                                 const SynthesisOptions& options) {
  PF_CHECK_MSG(!targets.empty(), "synthesis needs at least one target");
  if (options.strategy == SearchStrategy::kSearch) {
    // Route through the seeded anytime optimizer (pf/march/search.hpp);
    // greedy runs inside it as the seeding incumbent.
    SearchOptions search_options;
    search_options.synthesis = options;
    const SearchResult sr = search_march(targets, search_options);
    SynthesisResult out;
    out.test = sr.test;
    out.success = sr.success;
    out.total_targets = static_cast<int>(targets.size());
    out.detected_targets =
        sr.success ? out.total_targets : sr.greedy.detected_targets;
    out.evaluations = sr.evaluations + sr.greedy.evaluations;
    return out;
  }
  SynthesisResult result;
  result.total_targets = static_cast<int>(targets.size());

  std::vector<MarchElement> pool = default_candidate_pool();
  pool.insert(pool.end(), options.extra_candidates.begin(),
              options.extra_candidates.end());

  // Start from a blind initialization pass.
  MarchTest test;
  test.name = "synthesized";
  test.elements.push_back(elem(Order::kUp, {MarchOp::w(0)}));

  const std::vector<PopulationClass> classes = population_classes(targets);
  // Score through the SAME engine everywhere — greedy gain, reverse-pass
  // re-verification and the final report must agree on what is detected.
  // `score_bits` returns per-unit detection so the reverse pass can demand
  // a detection SUPERSET, not just an equal count: when synthesis falls
  // short of full detection, two tests can tie on count while detecting
  // different units, and count-equality pruning silently traded them.
  auto score_bits = [&](const MarchTest& t) {
    const PopulationCoverage coverage =
        evaluate_population(t, options.geometry, classes, options.engine);
    result.evaluations += coverage.march_passes;
    std::vector<bool> bits;
    for (const PopulationOutcome& po : coverage.classes)
      bits.insert(bits.end(), po.detected.begin(), po.detected.end());
    return bits;
  };
  auto count_units = [&](const MarchTest& t) {
    const std::vector<bool> bits = score_bits(t);
    return static_cast<int>(std::count(bits.begin(), bits.end(), true));
  };

  std::int64_t unit_count = 0;
  for (const PopulationClass& cls : classes)
    unit_count += cls.instances(options.geometry);
  const int total_units = static_cast<int>(unit_count);
  int best_count = count_units(test);

  while (best_count < total_units &&
         static_cast<int>(test.elements.size()) < options.max_elements) {
    int best_gain = 0;
    MarchElement best_elem;
    for (const MarchElement& candidate : pool) {
      MarchTest trial = test;
      trial.elements.push_back(candidate);
      if (!self_consistent(trial, options.geometry, result.evaluations))
        continue;
      const int count = count_units(trial);
      if (count - best_count > best_gain) {
        best_gain = count - best_count;
        best_elem = candidate;
      }
    }
    if (best_gain > 0) {
      test.elements.push_back(best_elem);
      best_count = count_units(test);
      continue;
    }
    // Stalled: no single element helps (e.g. detecting a guarded RDF1 needs
    // an initializing write pass AND a separate read pass). Look ahead one
    // level: try ordered pairs of pool elements.
    if (static_cast<int>(test.elements.size()) + 2 > options.max_elements)
      break;
    MarchElement best_a, best_b;
    for (const MarchElement& a : pool) {
      for (const MarchElement& b : pool) {
        MarchTest trial = test;
        trial.elements.push_back(a);
        trial.elements.push_back(b);
        if (!self_consistent(trial, options.geometry, result.evaluations))
          continue;
        const int count = count_units(trial);
        if (count - best_count > best_gain) {
          best_gain = count - best_count;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_gain == 0) break;  // even pairs do not help: stop
    test.elements.push_back(best_a);
    test.elements.push_back(best_b);
    best_count = count_units(test);
  }

  // Reverse pass: drop elements that are not needed. A drop is accepted
  // only when the shortened test still detects every unit the full test
  // detected (superset check on the per-unit bits, same engine as scoring).
  std::vector<bool> kept_bits = score_bits(test);
  for (size_t i = test.elements.size(); i-- > 0;) {
    if (test.elements.size() <= 1) break;
    MarchTest trial = test;
    trial.elements.erase(trial.elements.begin() + static_cast<long>(i));
    if (!self_consistent(trial, options.geometry, result.evaluations))
      continue;
    const std::vector<bool> trial_bits = score_bits(trial);
    bool covers = true;
    for (size_t u = 0; u < kept_bits.size(); ++u) {
      if (kept_bits[u] && !trial_bits[u]) {
        covers = false;
        break;
      }
    }
    if (covers) {
      test.elements.erase(test.elements.begin() + static_cast<long>(i));
      kept_bits = trial_bits;
      best_count =
          static_cast<int>(std::count(kept_bits.begin(), kept_bits.end(),
                                      true));
    }
  }

  result.test = std::move(test);
  result.success = best_count == total_units;
  // Report at target granularity: a target counts when all its units hold.
  {
    const PopulationCoverage coverage = evaluate_population(
        result.test, options.geometry, classes, options.engine);
    result.evaluations += coverage.march_passes;
    for (const PopulationOutcome& po : coverage.classes)
      result.detected_targets += po.outcome.detected_all;
  }
  PF_LOG_INFO("synthesized " << result.test.to_string() << " detecting "
                             << best_count << "/" << total_units
                             << " fault units (" << result.detected_targets
                             << "/" << result.total_targets << " targets)");
  return result;
}

}  // namespace pf::march
