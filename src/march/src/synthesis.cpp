#include "pf/march/synthesis.hpp"

#include <algorithm>

#include "pf/util/log.hpp"

namespace pf::march {
namespace {

/// One atomic detection obligation: a target fault at a specific victim
/// (and aggressor, for coupling targets). Scoring at unit granularity keeps
/// the greedy search informed of partial progress — detection of a guarded
/// fault usually needs several cooperating elements, and whole-target
/// scoring would report zero gain until the last one lands.
struct Unit {
  size_t target = 0;
  int aggressor = -1;  ///< -1 for single-cell targets
  int victim = 0;
};

std::vector<Unit> build_units(const std::vector<TargetFault>& targets,
                              const memsim::Geometry& geom) {
  std::vector<Unit> units;
  for (size_t t = 0; t < targets.size(); ++t) {
    if (targets[t].coupling.has_value()) {
      for (int a = 0; a < geom.num_cells(); ++a)
        for (int v = 0; v < geom.num_cells(); ++v)
          if (a != v) units.push_back({t, a, v});
    } else {
      for (int v = 0; v < geom.num_cells(); ++v) units.push_back({t, -1, v});
    }
  }
  return units;
}

bool detects_unit(const MarchTest& test, const memsim::Geometry& geom,
                  const std::vector<TargetFault>& targets, const Unit& unit,
                  uint64_t& evaluations) {
  memsim::Memory mem(geom);
  const TargetFault& target = targets[unit.target];
  if (target.coupling.has_value())
    mem.inject_coupling(
        {unit.aggressor, unit.victim, *target.coupling, target.guard});
  else
    mem.inject({unit.victim, target.ffm, target.guard});
  ++evaluations;
  return run_march(test, mem, mem.size()).detected;
}

/// A test is self-consistent when a fault-free memory passes it (its read
/// expectations match the data its own writes establish).
bool self_consistent(const MarchTest& test, const memsim::Geometry& geom,
                     uint64_t& evaluations) {
  memsim::Memory mem(geom);
  ++evaluations;
  return !run_march(test, mem, mem.size()).detected;
}

MarchElement elem(Order order, std::initializer_list<MarchOp> ops) {
  MarchElement e;
  e.order = order;
  e.ops = ops;
  return e;
}

}  // namespace

std::string TargetFault::name() const {
  if (coupling.has_value()) return coupling->name();
  std::string n{faults::ffm_name(ffm)};
  switch (guard.kind) {
    case memsim::Guard::Kind::kNone:
      break;
    case memsim::Guard::Kind::kBitLine:
      n += "|BL=" + std::to_string(guard.value);
      break;
    case memsim::Guard::Kind::kBuffer:
      n += "|buf=" + std::to_string(guard.value);
      break;
    case memsim::Guard::Kind::kHidden:
      n += guard.hidden_active ? "|hidden+" : "|hidden-";
      break;
  }
  return n;
}

std::vector<MarchElement> default_candidate_pool() {
  using O = Order;
  const MarchOp w0 = MarchOp::w(0), w1 = MarchOp::w(1);
  const MarchOp r0 = MarchOp::r(0), r1 = MarchOp::r(1);
  std::vector<MarchElement> pool;
  for (Order order : {O::kUp, O::kDown}) {
    pool.push_back(elem(order, {r0, w1}));
    pool.push_back(elem(order, {r1, w0}));
    pool.push_back(elem(order, {r0, w1, r1}));
    pool.push_back(elem(order, {r1, w0, r0}));
    pool.push_back(elem(order, {r0, r0}));
    pool.push_back(elem(order, {r1, r1}));
    pool.push_back(elem(order, {r0, w1, w1}));
    pool.push_back(elem(order, {r1, w0, w0}));
    // March SS-style: non-transition write plus verification (WDF/CFwd).
    pool.push_back(elem(order, {r0, w0, r0}));
    pool.push_back(elem(order, {r1, w1, r1}));
    // The paper's March PF hammer elements.
    pool.push_back(elem(order, {r1, w1, w0, w0, w1, r1}));
    pool.push_back(elem(order, {r0, w0, w1, w1, w0, r0}));
  }
  pool.push_back(elem(O::kUp, {w0}));
  pool.push_back(elem(O::kUp, {w1}));
  pool.push_back(elem(O::kUp, {w0, w1}));
  pool.push_back(elem(O::kUp, {w1, w0}));
  pool.push_back(elem(O::kUp, {r0}));
  pool.push_back(elem(O::kUp, {r1}));
  return pool;
}

SynthesisResult synthesize_march(const std::vector<TargetFault>& targets,
                                 const SynthesisOptions& options) {
  PF_CHECK_MSG(!targets.empty(), "synthesis needs at least one target");
  SynthesisResult result;
  result.total_targets = static_cast<int>(targets.size());

  std::vector<MarchElement> pool = default_candidate_pool();
  pool.insert(pool.end(), options.extra_candidates.begin(),
              options.extra_candidates.end());

  // Start from a blind initialization pass.
  MarchTest test;
  test.name = "synthesized";
  test.elements.push_back(elem(Order::kUp, {MarchOp::w(0)}));

  const std::vector<Unit> units = build_units(targets, options.geometry);
  auto count_units = [&](const MarchTest& t) {
    int detected = 0;
    for (const Unit& u : units)
      detected += detects_unit(t, options.geometry, targets, u,
                               result.evaluations);
    return detected;
  };

  const int total_units = static_cast<int>(units.size());
  int best_count = count_units(test);

  while (best_count < total_units &&
         static_cast<int>(test.elements.size()) < options.max_elements) {
    int best_gain = 0;
    MarchElement best_elem;
    for (const MarchElement& candidate : pool) {
      MarchTest trial = test;
      trial.elements.push_back(candidate);
      if (!self_consistent(trial, options.geometry, result.evaluations))
        continue;
      const int count = count_units(trial);
      if (count - best_count > best_gain) {
        best_gain = count - best_count;
        best_elem = candidate;
      }
    }
    if (best_gain > 0) {
      test.elements.push_back(best_elem);
      best_count = count_units(test);
      continue;
    }
    // Stalled: no single element helps (e.g. detecting a guarded RDF1 needs
    // an initializing write pass AND a separate read pass). Look ahead one
    // level: try ordered pairs of pool elements.
    if (static_cast<int>(test.elements.size()) + 2 > options.max_elements)
      break;
    MarchElement best_a, best_b;
    for (const MarchElement& a : pool) {
      for (const MarchElement& b : pool) {
        MarchTest trial = test;
        trial.elements.push_back(a);
        trial.elements.push_back(b);
        if (!self_consistent(trial, options.geometry, result.evaluations))
          continue;
        const int count = count_units(trial);
        if (count - best_count > best_gain) {
          best_gain = count - best_count;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_gain == 0) break;  // even pairs do not help: stop
    test.elements.push_back(best_a);
    test.elements.push_back(best_b);
    best_count = count_units(test);
  }

  // Reverse pass: drop elements that are not needed.
  for (size_t i = test.elements.size(); i-- > 0;) {
    if (test.elements.size() <= 1) break;
    MarchTest trial = test;
    trial.elements.erase(trial.elements.begin() + static_cast<long>(i));
    if (!self_consistent(trial, options.geometry, result.evaluations))
      continue;
    if (count_units(trial) == best_count)
      test.elements.erase(test.elements.begin() + static_cast<long>(i));
  }

  result.test = std::move(test);
  result.success = best_count == total_units;
  // Report at target granularity: a target counts when all its units hold.
  {
    std::vector<int> per_target_total(targets.size(), 0);
    std::vector<int> per_target_hit(targets.size(), 0);
    for (const Unit& u : units) {
      ++per_target_total[u.target];
      per_target_hit[u.target] += detects_unit(
          result.test, options.geometry, targets, u, result.evaluations);
    }
    for (size_t t = 0; t < targets.size(); ++t)
      result.detected_targets += per_target_hit[t] == per_target_total[t];
  }
  PF_LOG_INFO("synthesized " << result.test.to_string() << " detecting "
                             << best_count << "/" << result.total_targets);
  return result;
}

}  // namespace pf::march
